// Quickstart: build a small task graph by hand, schedule it with FTSA so
// it survives one processor failure, inspect the schedule, and execute it
// with and without a crash.
//
//   ./quickstart [--epsilon 1]
#include <iostream>

#include "ftsched/core/scheduler.hpp"
#include "ftsched/metrics/metrics.hpp"
#include "ftsched/platform/failure.hpp"
#include "ftsched/sim/event_sim.hpp"
#include "ftsched/sim/trace.hpp"
#include "ftsched/util/cli.hpp"

using namespace ftsched;

int main(int argc, char** argv) {
  CliParser cli("quickstart: schedule a hand-built DAG fault-tolerantly");
  cli.add_option("epsilon", "1", "number of processor failures to tolerate");
  if (!cli.parse(argc, argv)) return 0;
  const auto epsilon = static_cast<std::size_t>(cli.get_int("epsilon"));

  // 1. The application: a small diamond-shaped workflow.
  //       read -> {filterA, filterB} -> merge -> write
  TaskGraph g("quickstart");
  const TaskId read = g.add_task("read");
  const TaskId filter_a = g.add_task("filterA");
  const TaskId filter_b = g.add_task("filterB");
  const TaskId merge = g.add_task("merge");
  const TaskId write = g.add_task("write");
  g.add_edge(read, filter_a, /*volume=*/40.0);
  g.add_edge(read, filter_b, 40.0);
  g.add_edge(filter_a, merge, 25.0);
  g.add_edge(filter_b, merge, 25.0);
  g.add_edge(merge, write, 10.0);

  // 2. The platform: four processors, heterogeneous link delays.
  const Platform platform({{0.0, 0.6, 0.9, 0.7},
                           {0.6, 0.0, 0.5, 0.8},
                           {0.9, 0.5, 0.0, 0.6},
                           {0.7, 0.8, 0.6, 0.0}});

  // 3. Execution times E(t, P): unrelated-machines model.
  const CostModel costs(g, platform,
                        {{12, 16, 14, 20},     // read
                         {35, 28, 42, 30},     // filterA
                         {38, 33, 29, 36},     // filterB
                         {18, 15, 22, 17},     // merge
                         {8, 11, 9, 12}});     // write

  // 4. Schedule with FTSA (looked up by name in the SchedulerRegistry):
  //    every task is replicated onto epsilon+1 processors, so up to
  //    epsilon fail-stop crashes are masked.
  const SchedulerPtr scheduler =
      make_scheduler("ftsa:eps=" + std::to_string(epsilon));
  std::cout << scheduler->describe() << "\n\n";
  const ReplicatedSchedule schedule = scheduler->run(costs);
  schedule.validate();

  std::cout << schedule_listing(schedule) << '\n';
  std::cout << "planned schedule (Gantt):\n"
            << schedule_gantt(schedule) << '\n';
  std::cout << "guaranteed latency under <= " << epsilon
            << " failures (M): " << schedule.upper_bound() << '\n';
  std::cout << "failure-free latency (M*):   " << schedule.lower_bound()
            << '\n';
  std::cout << "inter-processor messages:    "
            << schedule.interproc_message_count() << '\n';

  // 5. Execute it: once failure-free, once with a crash at time 10.
  const SimulationResult ok = simulate(schedule);
  std::cout << "\nfailure-free execution: latency " << ok.latency << '\n';

  FailureScenario crash;
  crash.add(schedule.replicas(read)[0].proc, 10.0);
  const SimulationResult crashed = simulate(schedule, crash);
  std::cout << "with P" << schedule.replicas(read)[0].proc.value()
            << " crashing at t=10: success=" << crashed.success
            << ", latency " << crashed.latency << '\n';
  std::cout << "\nexecution trace with the crash:\n"
            << execution_gantt(schedule, crashed);
  return 0;
}
