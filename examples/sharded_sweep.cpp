// Domain scenario: a multi-machine sweep, simulated in-process.
//
// A coordinator builds a SweepPlan, splits it into N shards and ships one
// shard spec ("i/N" plus the FigureConfig) to each worker; every worker
// runs only its slice and streams single-sample statistics records to a
// JSONL shard file; the coordinator merges the files back in coordinate
// order.  This example plays all the roles in one process — each "worker"
// writes to its own buffer — and then *proves* the protocol's guarantee by
// comparing the merged result against the unsharded run: they are
// bit-identical, not merely close.
//
//   ./sharded_sweep [--figure 1] [--graphs 6] [--shards 3] [--procs 8]
//                   [--seed 42] [--failures "eps;bernoulli:p=0.1"]
#include <iostream>
#include <sstream>
#include <vector>

#include "ftsched/experiments/figures.hpp"
#include "ftsched/experiments/sweep_io.hpp"
#include "ftsched/experiments/sweep_plan.hpp"
#include "ftsched/util/cli.hpp"

using namespace ftsched;

int main(int argc, char** argv) {
  CliParser cli("sharded_sweep: plan/execute/merge pipeline demo — shard a "
                "sweep, merge the JSONL shards, verify bit-identity");
  cli.add_option("figure", "1", "paper figure whose config seeds the grid");
  cli.add_option("graphs", "6", "instances per (cell, granularity) point");
  cli.add_option("shards", "3", "worker count to split the grid across");
  cli.add_option("procs", "8", "processors in the generated platforms");
  cli.add_option("seed", "42", "root seed");
  cli.add_option("failures", "eps;bernoulli:p=0.1",
                 "';'-separated FailureModel specs — the bit-identity "
                 "contract covers the failure dimension too");
  if (!cli.parse(argc, argv)) return 0;

  FigureConfig config = figure_config(static_cast<int>(cli.get_int("figure")));
  config.graphs_per_point = static_cast<std::size_t>(cli.get_int("graphs"));
  config.proc_count = static_cast<std::size_t>(cli.get_int("procs"));
  config.workload.proc_count = config.proc_count;
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  {
    std::istringstream specs(cli.get("failures"));
    std::string item;
    while (std::getline(specs, item, ';')) {
      if (!item.empty()) config.failure_models.push_back(item);
    }
  }
  const auto shard_count = static_cast<std::size_t>(cli.get_int("shards"));

  // Coordinator: enumerate the grid.
  const SweepPlan plan(config);
  std::cout << "plan: " << plan.grid_size() << " instances ("
            << plan.workloads().size() << "x" << plan.scenarios().size()
            << "x" << plan.failures().size() << " cells, "
            << plan.granularities().size() << " granularities, "
            << plan.repetitions() << " reps)\n";
  std::cout << "fingerprint: " << plan.fingerprint() << "\n\n";

  // Workers: each runs its shard and streams records to "its" file.
  std::vector<std::stringstream> files(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    const SweepPlan shard = plan.shard(i, shard_count);
    ShardWriterSink sink(files[i], shard);
    run_plan(shard, sink);
    std::cout << "worker " << i << ": shard " << shard.shard_label() << ", "
              << sink.samples_written() << " instances -> "
              << files[i].str().size() << " bytes of JSONL\n";
  }

  // Coordinator again: parse + merge the shard files.
  std::vector<ShardFile> shards;
  for (std::size_t i = 0; i < shard_count; ++i) {
    shards.push_back(read_shard(files[i], "worker" + std::to_string(i)));
  }
  const SweepResult merged = merge_shards(shards);

  // The proof: one unsharded run, compared field by field, double by
  // double (sweep_results_identical is exact, not approximate).
  const SweepResult reference = run_sweep(config);
  const bool identical = sweep_results_identical(reference, merged);
  std::cout << "\nmerged vs unsharded run: "
            << (identical ? "bit-identical" : "DIVERGED") << "\n\n";
  if (!identical) return 2;

  std::cout << "merged CSV:\n" << sweep_to_csv(merged);
  return 0;
}
