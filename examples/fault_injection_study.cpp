// Domain scenario: probabilistic fault-injection study (the paper's §7
// future work on failure probabilities).
//
// Each processor fails independently with probability p.  We compare, for
// FTSA schedules at several ε: the analytic Theorem-4.1 reliability bound,
// the exact reliability (exhaustive subset enumeration + simulation), a
// Monte-Carlo estimate, and the latency distribution over surviving runs.
//
//   ./fault_injection_study [--procs 8] [--tasks 40] [--pfail 0.1]
//                           [--samples 2000] [--seed 5]
//                           [--workload <WorkloadRegistry spec>]
#include <iostream>

#include "ftsched/core/scheduler.hpp"
#include "ftsched/metrics/reliability.hpp"
#include "ftsched/platform/failure.hpp"
#include "ftsched/sim/event_sim.hpp"
#include "ftsched/util/cli.hpp"
#include "ftsched/util/stats.hpp"
#include "ftsched/util/table.hpp"
#include "ftsched/workload/workload_registry.hpp"

using namespace ftsched;

int main(int argc, char** argv) {
  CliParser cli("fault_injection_study: schedule reliability under "
                "probabilistic fail-stop failures");
  cli.add_option("procs", "8", "number of processors");
  cli.add_option("tasks", "40", "number of tasks");
  cli.add_option("pfail", "0.1", "per-processor failure probability");
  cli.add_option("samples", "2000", "Monte-Carlo samples");
  cli.add_option("seed", "5", "random seed");
  cli.add_option("workload", "",
                 "WorkloadRegistry spec (empty = paper generator with "
                 "--tasks tasks; see ftsched_cli list-workloads)");
  if (!cli.parse(argc, argv)) return 0;

  const auto procs = static_cast<std::size_t>(cli.get_int("procs"));
  const double pfail = cli.get_double("pfail");
  const auto samples = static_cast<std::size_t>(cli.get_int("samples"));

  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));
  const std::string tasks = cli.get("tasks");
  const std::string spec = cli.get("workload").empty()
                               ? "paper:tmin=" + tasks + ",tmax=" + tasks
                               : cli.get("workload");
  const WorkloadFamilyPtr family = make_workload_family(spec);
  const auto w = family->generate(rng, SweepPoint{1.0, procs});
  const std::vector<double> fail_prob(procs, pfail);

  std::cout << family->describe() << '\n';
  std::cout << "per-processor failure probability p = " << pfail << ", "
            << procs << " processors, " << w->graph().task_count()
            << " tasks\n\n";
  TextTable table({"epsilon", "thm-4.1 bound", "exact", "monte-carlo",
                   "mean latency | ok", "M* / M"});
  for (std::size_t eps : {0u, 1u, 2u, 3u}) {
    const auto s =
        make_scheduler("ftsa:eps=" + std::to_string(eps))->run(w->costs());
    const double bound = theorem_reliability_bound(procs, eps, fail_prob);
    const double exact = exact_reliability(s, fail_prob);
    Rng mc_rng = rng.split();
    const ReliabilityEstimate mc =
        monte_carlo_reliability(s, fail_prob, mc_rng, samples);
    table.add_row({std::to_string(eps), format_double(bound, 4),
                   format_double(exact, 4), format_double(mc.reliability, 4),
                   format_double(mc.mean_latency, 1),
                   format_double(s.lower_bound(), 1) + " / " +
                       format_double(s.upper_bound(), 1)});
  }
  table.print(std::cout);
  std::cout <<
      "\n(The theorem bound counts only <=epsilon simultaneous failures;\n"
      " the exact value is higher because many larger failure sets still\n"
      " happen to leave a working replica chain.)\n";

  // Latency distribution across surviving Monte-Carlo runs for eps = 2.
  const auto s2 = make_scheduler("ftsa:eps=2")->run(w->costs());
  std::vector<double> latencies;
  Rng mc_rng = rng.split();
  for (std::size_t i = 0; i < samples; ++i) {
    FailureScenario scenario;
    for (std::size_t p = 0; p < procs; ++p) {
      if (mc_rng.bernoulli(pfail)) scenario.add(ProcId{p}, 0.0);
    }
    const SimulationResult r = simulate(s2, scenario);
    if (r.success) latencies.push_back(r.latency);
  }
  const Summary summary = summarize(std::move(latencies));
  std::cout << "\nlatency distribution (epsilon=2, surviving runs):\n"
            << "  n=" << summary.count << "  mean=" << summary.mean
            << "  p25=" << summary.p25 << "  median=" << summary.median
            << "  p75=" << summary.p75 << "  max=" << summary.max
            << "\n  guaranteed M=" << s2.upper_bound() << '\n';
  return 0;
}
