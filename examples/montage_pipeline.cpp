// Domain scenario: a Montage-style astronomy image mosaicking workflow —
// the classic motivating application for DAG scheduling on heterogeneous
// platforms.  N input images are projected in parallel, overlapping pairs
// are background-matched, a global fit feeds per-image corrections, and a
// final mosaic gathers everything.
//
// The pipeline is time-critical (the paper's motivation): we schedule it
// with FTSA and MC-FTSA at ε = 2, compare message overhead, and replay the
// schedule under randomly drawn crashes.
//
//   ./montage_pipeline [--images 8] [--procs 8] [--epsilon 2] [--seed 1]
#include <iostream>

#include "ftsched/core/scheduler.hpp"
#include "ftsched/metrics/metrics.hpp"
#include "ftsched/platform/failure.hpp"
#include "ftsched/sim/event_sim.hpp"
#include "ftsched/sim/trace.hpp"
#include "ftsched/util/cli.hpp"
#include "ftsched/util/table.hpp"
#include "ftsched/workload/paper_workload.hpp"

using namespace ftsched;

namespace {

// Builds the Montage-like DAG: project_i -> diff_{i,i+1} -> bgmodel ->
// background_i -> mosaic, with an extra shrink/preview stage.
TaskGraph make_montage(std::size_t images) {
  TaskGraph g("montage");
  std::vector<TaskId> project(images);
  for (std::size_t i = 0; i < images; ++i) {
    project[i] = g.add_task("proj" + std::to_string(i));
  }
  // Overlap differences between neighbouring images.
  std::vector<TaskId> diff(images - 1);
  for (std::size_t i = 0; i + 1 < images; ++i) {
    diff[i] = g.add_task("diff" + std::to_string(i));
    g.add_edge(project[i], diff[i], 60.0);
    g.add_edge(project[i + 1], diff[i], 60.0);
  }
  const TaskId bgmodel = g.add_task("bgmodel");
  for (TaskId d : diff) g.add_edge(d, bgmodel, 20.0);
  std::vector<TaskId> background(images);
  for (std::size_t i = 0; i < images; ++i) {
    background[i] = g.add_task("bg" + std::to_string(i));
    g.add_edge(bgmodel, background[i], 15.0);
    g.add_edge(project[i], background[i], 80.0);
  }
  const TaskId mosaic = g.add_task("mosaic");
  for (TaskId b : background) g.add_edge(b, mosaic, 90.0);
  const TaskId preview = g.add_task("preview");
  g.add_edge(mosaic, preview, 30.0);
  return g;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("montage_pipeline: fault-tolerant scheduling of an image "
                "mosaicking workflow");
  cli.add_option("images", "8", "number of input images");
  cli.add_option("procs", "8", "number of processors");
  cli.add_option("epsilon", "2", "failures to tolerate");
  cli.add_option("seed", "1", "random seed for platform/costs/crashes");
  if (!cli.parse(argc, argv)) return 0;
  const auto images = static_cast<std::size_t>(cli.get_int("images"));
  const auto epsilon = static_cast<std::size_t>(cli.get_int("epsilon"));

  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));
  PaperWorkloadParams params;
  params.proc_count = static_cast<std::size_t>(cli.get_int("procs"));
  params.granularity = 1.2;  // computation-heavy pipeline
  const auto workload =
      make_workload_for_graph(rng, make_montage(images), params);
  const TaskGraph& g = workload->graph();
  std::cout << "montage workflow: " << g.task_count() << " tasks, "
            << g.edge_count() << " edges on " << params.proc_count
            << " processors, tolerating " << epsilon << " crashes\n\n";

  const std::string eps_opt = ":eps=" + std::to_string(epsilon);
  const auto ftsa = make_scheduler("ftsa" + eps_opt)->run(workload->costs());
  const auto mc = make_scheduler("mc-ftsa" + eps_opt)->run(workload->costs());

  for (const ReplicatedSchedule* s : {&ftsa, &mc}) {
    std::cout << s->algorithm() << ": M*=" << s->lower_bound()
              << "  M=" << s->upper_bound()
              << "  messages=" << s->interproc_message_count() << '\n';
  }
  std::cout << "\nMC-FTSA saves "
            << ftsa.interproc_message_count() - mc.interproc_message_count()
            << " messages ("
            << comm_stats(ftsa).ftsa_bound << " worst-case pairs vs "
            << comm_stats(mc).mc_bound << " linear bound)\n\n";

  // Replay under random crash scenarios; both must always succeed.
  for (int trial = 0; trial < 3; ++trial) {
    const FailureScenario scenario = random_timed_crashes(
        rng, params.proc_count, epsilon, ftsa.upper_bound());
    std::cout << "crash scenario" << " {";
    for (const Crash& c : scenario.crashes()) {
      std::cout << " P" << c.proc.value() << "@" << format_double(c.time, 1);
    }
    std::cout << " }: FTSA latency "
              << format_double(simulate(ftsa, scenario).latency, 1)
              << " (<= M=" << format_double(ftsa.upper_bound(), 1)
              << "), MC-FTSA latency "
              << format_double(simulate(mc, scenario).latency, 1)
              << " (<= M=" << format_double(mc.upper_bound(), 1) << ")\n";
  }

  std::cout << "\nFTSA planned Gantt:\n" << schedule_gantt(ftsa);
  return 0;
}
