// Domain scenario: the §4.3 bi-criteria trade-off on a real-time workload.
//
// Given a latency budget, how many processor failures can the system
// absorb (binary search on ε)?  And given both a budget and a required ε,
// is the combination feasible at all (deadline-based early detection)?
//
//   ./bicriteria_explorer [--tasks 60] [--procs 10] [--seed 3]
#include <iomanip>
#include <iostream>

#include "ftsched/core/bicriteria.hpp"
#include "ftsched/core/scheduler.hpp"
#include "ftsched/util/cli.hpp"
#include "ftsched/util/table.hpp"
#include "ftsched/workload/paper_workload.hpp"

using namespace ftsched;

int main(int argc, char** argv) {
  CliParser cli("bicriteria_explorer: latency budget vs supported failures");
  cli.add_option("tasks", "60", "number of tasks");
  cli.add_option("procs", "10", "number of processors");
  cli.add_option("seed", "3", "random seed");
  if (!cli.parse(argc, argv)) return 0;

  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));
  PaperWorkloadParams params;
  params.task_min = params.task_max =
      static_cast<std::size_t>(cli.get_int("tasks"));
  params.proc_count = static_cast<std::size_t>(cli.get_int("procs"));
  const auto w = make_paper_workload(rng, params);

  // Reference points: the latency FTSA achieves at a few ε values.
  std::cout << "latency vs failures (direct FTSA runs):\n";
  TextTable direct({"epsilon", "M* (no failure)", "M (guaranteed)"});
  for (std::size_t eps = 0; eps + 1 <= params.proc_count && eps <= 5; ++eps) {
    const auto s =
        make_scheduler("ftsa:eps=" + std::to_string(eps))->run(w->costs());
    direct.add_numeric_row(std::to_string(eps),
                           {s.lower_bound(), s.upper_bound()}, 1);
  }
  direct.print(std::cout);

  // Sweep latency budgets: maximum ε supported at each (binary search).
  const auto s0 = make_scheduler("ftsa")->run(w->costs());
  const double unit = s0.upper_bound();
  std::cout << "\nmax supported failures per latency budget "
               "(binary search on epsilon):\n";
  TextTable budget_table(
      {"budget", "max epsilon", "M of retained schedule", "FTSA runs"});
  for (double factor : {0.8, 1.0, 1.2, 1.5, 2.0, 3.0}) {
    const double budget = factor * unit;
    const auto result = max_supported_failures(w->costs(), budget);
    if (result.has_value()) {
      budget_table.add_row({format_double(budget, 1),
                            std::to_string(result->epsilon),
                            format_double(result->upper_bound, 1),
                            std::to_string(result->schedules_computed)});
    } else {
      budget_table.add_row(
          {format_double(budget, 1), "infeasible", "-", "-"});
    }
  }
  budget_table.print(std::cout);

  // Both criteria fixed: early infeasibility detection via deadlines.
  std::cout << "\nboth criteria fixed (deadline-checked scheduling):\n";
  for (const auto& [eps, factor] :
       std::initializer_list<std::pair<std::size_t, double>>{
           {1, 2.0}, {2, 1.1}, {4, 0.6}}) {
    FtsaOptions o;
    o.epsilon = eps;
    const double budget = factor * unit;
    const auto s = ftsa_schedule_with_deadline(w->costs(), budget, o);
    std::cout << "  epsilon=" << eps << ", budget=" << format_double(budget, 1)
              << ": "
              << (s.has_value()
                      ? "feasible, M=" + format_double(s->upper_bound(), 1)
                      : std::string(
                            "rejected early (criteria incompatible)"))
              << '\n';
  }
  return 0;
}
