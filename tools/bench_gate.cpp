// Perf-smoke regression gate over bench_sweep_cells' BENCH_sweep.json.
//
//   bench_gate <fresh.json> <baseline.json> [min_speedup_ratio]
//
// Compares a fresh bench record against the checked-in baseline
// (tests/perf/BENCH_sweep_baseline.json) and fails the build when the
// engine regressed:
//
//  * the two records must describe the same grid (seed, cell counts,
//    granularities, graphs/point, instances) — otherwise the comparison is
//    meaningless and the baseline needs regenerating;
//  * the fresh run must be bit-identical (grouped == ungrouped) — this
//    doubles the bench's own exit-2 guard;
//  * simulations_run / dedupe_hits must match the baseline *exactly*: the
//    counters are deterministic for a fixed grid whatever the thread count
//    or machine, so any drift means the dedupe or draw logic changed;
//    dedupe_hits must also be positive (the cache must actually fire);
//  * the grouped-vs-ungrouped speedup — a wall-time *ratio*, so largely
//    machine-independent — must be at least `min_speedup_ratio` (default
//    0.5) of the baseline's: a halved speedup on a quiet runner is a real
//    regression, while normal CI noise passes.
//
// Exit 0 = gate passed, 1 = usage/IO error, 3 = regression detected.
#include <charconv>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

namespace {

/// Minimal scanner for the one-line flat JSON bench_sweep_cells emits:
/// string keys, values either bare tokens (numbers, true/false) or quoted
/// strings.  Strict enough to reject truncated files loudly.
std::map<std::string, std::string> parse_flat(const std::string& text,
                                              const std::string& name) {
  std::map<std::string, std::string> out;
  std::size_t i = 0;
  const auto fail = [&](const std::string& why) -> void {
    std::cerr << "bench_gate: " << name << ": malformed JSON: " << why << "\n";
    std::exit(1);
  };
  const auto skip = [&] {
    while (i < text.size() &&
           (text[i] == ' ' || text[i] == '\t' || text[i] == '\n' ||
            text[i] == '\r')) {
      ++i;
    }
  };
  const auto string_token = [&]() -> std::string {
    if (i >= text.size() || text[i] != '"') fail("expected '\"'");
    ++i;
    std::string s;
    while (i < text.size() && text[i] != '"') {
      if (text[i] == '\\') ++i;
      if (i < text.size()) s.push_back(text[i]);
      ++i;
    }
    if (i >= text.size()) fail("unterminated string");
    ++i;
    return s;
  };
  skip();
  if (i >= text.size() || text[i] != '{') fail("expected '{'");
  ++i;
  while (true) {
    skip();
    const std::string key = string_token();
    skip();
    if (i >= text.size() || text[i] != ':') fail("expected ':'");
    ++i;
    skip();
    std::string value;
    if (i < text.size() && text[i] == '"') {
      value = string_token();
    } else {
      while (i < text.size() && text[i] != ',' && text[i] != '}') {
        value.push_back(text[i]);
        ++i;
      }
    }
    out[key] = value;
    skip();
    if (i >= text.size()) fail("unterminated object");
    if (text[i] == '}') break;
    if (text[i] != ',') fail("expected ',' or '}'");
    ++i;
  }
  return out;
}

std::map<std::string, std::string> load(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    std::cerr << "bench_gate: cannot open " << path << "\n";
    std::exit(1);
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return parse_flat(buffer.str(), path);
}

const std::string& field(const std::map<std::string, std::string>& record,
                         const std::string& key, const std::string& name) {
  const auto it = record.find(key);
  if (it == record.end()) {
    std::cerr << "bench_gate: " << name << ": missing key '" << key << "'\n";
    std::exit(1);
  }
  return it->second;
}

/// Locale-independent double parse (the record renders with '.' always).
double number(const std::map<std::string, std::string>& record,
              const std::string& key, const std::string& name) {
  const std::string& text = field(record, key, name);
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    std::cerr << "bench_gate: " << name << ": key '" << key
              << "' is not a number: '" << text << "'\n";
    std::exit(1);
  }
  return value;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3 || argc > 4) {
    std::cerr << "usage: bench_gate <fresh.json> <baseline.json>"
                 " [min_speedup_ratio]\n";
    return 1;
  }
  const std::string fresh_path = argv[1];
  const std::string base_path = argv[2];
  double min_ratio = 0.5;
  if (argc == 4) {
    const std::string arg = argv[3];
    const auto [ptr, ec] =
        std::from_chars(arg.data(), arg.data() + arg.size(), min_ratio);
    if (ec != std::errc{} || ptr != arg.data() + arg.size() ||
        min_ratio <= 0.0) {
      std::cerr << "bench_gate: bad min_speedup_ratio '" << arg << "'\n";
      return 1;
    }
  }

  const auto fresh = load(fresh_path);
  const auto base = load(base_path);
  int failures = 0;
  const auto flag = [&](const std::string& what) {
    std::cerr << "bench_gate: REGRESSION: " << what << "\n";
    ++failures;
  };

  // Same grid, or the comparison is meaningless.
  for (const char* key : {"bench", "figure", "workloads", "scenarios",
                          "failures", "granularities", "graphs_per_point",
                          "instances", "seed"}) {
    const std::string& got = field(fresh, key, fresh_path);
    const std::string& want = field(base, key, base_path);
    if (got != want) {
      std::cerr << "bench_gate: grid mismatch on '" << key << "': fresh="
                << got << " baseline=" << want
                << " (regenerate the baseline if the bench grid changed)\n";
      return 1;
    }
  }

  if (field(fresh, "identical", fresh_path) != "true") {
    flag("grouped sweep diverged from the ungrouped path");
  }

  // Deterministic counters: exact match, any drift is a logic change.
  for (const char* key : {"simulations_run", "dedupe_hits"}) {
    const std::string& got = field(fresh, key, fresh_path);
    const std::string& want = field(base, key, base_path);
    if (got != want) {
      flag(std::string(key) + " drifted: fresh=" + got + " baseline=" + want);
    }
  }
  if (number(fresh, "dedupe_hits", fresh_path) <= 0.0) {
    flag("dedupe cache never fired (dedupe_hits == 0)");
  }

  const double fresh_speedup = number(fresh, "speedup", fresh_path);
  const double base_speedup = number(base, "speedup", base_path);
  const double floor = base_speedup * min_ratio;
  if (fresh_speedup < floor) {
    std::ostringstream msg;
    msg << "grouped speedup " << fresh_speedup << "x fell below " << floor
        << "x (baseline " << base_speedup << "x * ratio " << min_ratio << ")";
    flag(msg.str());
  }

  if (failures != 0) {
    std::cerr << "bench_gate: " << failures << " check(s) failed\n";
    return 3;
  }
  std::cout << "bench_gate: OK — speedup " << fresh_speedup
            << "x (baseline " << base_speedup << "x, floor " << floor
            << "x), simulations_run=" << field(fresh, "simulations_run", fresh_path)
            << ", dedupe_hits=" << field(fresh, "dedupe_hits", fresh_path)
            << ", bit-identical\n";
  return 0;
}
