// Implementation of the `ftsched_cli` subcommands, separated from main()
// so the test suite can drive them with in-memory streams.
//
// Subcommands:
//   generate  — emit a task graph (any built-in family) in text format
//   info      — structural statistics of a graph file
//   plan      — enumerate the sweep grid / a shard's slice of it
//   schedule  — schedule a graph file with any algorithm; print bounds,
//               optionally an ASCII Gantt, JSON, or a schedule file
//   simulate  — execute a schedule under a crash scenario
//   sweep     — run a sweep to CSV, or one shard of it to JSONL (--shard)
//   merge     — combine sweep shards into the unsharded CSV (bit-identical)
//   validate  — exhaustive fault-tolerance validation + kill-set analysis
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ftsched::cli {

/// Dispatches `args` (argv[1..]) to a subcommand; writes results to `out`
/// and diagnostics to `err`. Returns a process exit code.
int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err);

/// Top-level usage text.
[[nodiscard]] std::string usage();

}  // namespace ftsched::cli
