#include "cli_commands.hpp"

#include <atomic>
#include <fstream>
#include <memory>
#include <ostream>
#include <sstream>
#include <thread>

#include "ftsched/core/bicriteria.hpp"
#include "ftsched/core/reschedule.hpp"
#include "ftsched/core/robustness.hpp"
#include "ftsched/core/scheduler.hpp"
#include "ftsched/core/schedule_io.hpp"
#include "ftsched/dag/analysis.hpp"
#include "ftsched/dag/dot.hpp"
#include "ftsched/dag/serialize.hpp"
#include "ftsched/metrics/metrics.hpp"
#include "ftsched/platform/failure.hpp"
#include "ftsched/sim/trace.hpp"
#include "ftsched/sim/validator.hpp"
#include "ftsched/service/coordinator.hpp"
#include "ftsched/service/worker.hpp"
#include "ftsched/experiments/backend.hpp"
#include "ftsched/experiments/figures.hpp"
#include "ftsched/experiments/sweep_io.hpp"
#include "ftsched/experiments/sweep_plan.hpp"
#include "ftsched/util/cli.hpp"
#include "ftsched/util/subprocess.hpp"
#include "ftsched/util/error.hpp"
#include "ftsched/util/table.hpp"
#include "ftsched/workload/classic.hpp"
#include "ftsched/workload/paper_workload.hpp"
#include "ftsched/workload/workload_registry.hpp"

namespace ftsched::cli {

namespace {

TaskGraph generate_family(const std::string& family, std::size_t tasks,
                          Rng& rng) {
  if (family == "layered") {
    LayeredDagParams params;
    params.task_count = tasks;
    return make_layered_dag(rng, params);
  }
  if (family == "gnp") {
    GnpDagParams params;
    params.task_count = tasks;
    return make_gnp_dag(rng, params);
  }
  if (family == "chain") return make_chain(tasks);
  if (family == "forkjoin") return make_fork_join(tasks);
  if (family == "intree") return make_in_tree(tasks);
  if (family == "outtree") return make_out_tree(tasks);
  if (family == "fft") return make_fft(tasks);
  if (family == "gauss") return make_gaussian_elimination(tasks);
  if (family == "wavefront") return make_wavefront(tasks, tasks);
  if (family == "sp") return make_series_parallel(rng, tasks);
  if (family == "cholesky") return make_cholesky(tasks);
  if (family == "lu") return make_lu(tasks);
  throw InvalidArgument("unknown graph family: " + family);
}

TaskGraph load_graph(const std::string& path) {
  std::ifstream in(path);
  FTSCHED_REQUIRE(in.good(), "cannot open graph file: " + path);
  return read_graph(in);
}

/// Builds a workload (platform + costs) from either --workload (a
/// WorkloadRegistry spec) or --graph (a graph file) using CLI options.
std::unique_ptr<Workload> load_workload(const CliParser& cli) {
  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));
  const auto procs = static_cast<std::size_t>(cli.get_int("procs"));
  const double granularity = cli.get_double("granularity");
  const std::string spec = cli.get("workload");
  if (!spec.empty()) {
    FTSCHED_REQUIRE(cli.get("graph").empty(),
                    "--graph and --workload are mutually exclusive");
    const SweepPoint point{granularity, procs};
    return make_workload_family(spec)->generate(rng, point);
  }
  PaperWorkloadParams params;
  params.proc_count = procs;
  params.granularity = granularity;
  return make_workload_for_graph(rng, load_graph(cli.get("graph")), params);
}

constexpr const char* kWorkloadHelp =
    "WorkloadRegistry spec instead of --graph, e.g. paper or fft:size=16 "
    "(see list-workloads)";

/// Splits a ';'-separated list (specs already use ',' and ':').  Items are
/// whitespace-trimmed and empty items are skipped, so "a; b;" means {a, b}
/// — a stray space after a ';' must not turn into a filename " b".
std::vector<std::string> split_list(const std::string& text) {
  std::vector<std::string> out;
  if (text.empty()) return out;
  std::istringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ';')) {
    const auto begin = item.find_first_not_of(" \t");
    if (begin == std::string::npos) continue;
    const auto end = item.find_last_not_of(" \t");
    out.push_back(item.substr(begin, end - begin + 1));
  }
  return out;
}

/// Resolves --algo through the SchedulerRegistry.  `algo` is a full
/// registry spec ("ftsa", "mc-ftsa:selector=matching,enforce=0", ...); the
/// --epsilon and --seed flags fill any eps/seed options the spec leaves
/// unset, for algorithms that take them.
ReplicatedSchedule run_algorithm(const std::string& algo,
                                 const CostModel& costs, std::size_t epsilon,
                                 std::uint64_t seed) {
  return make_scheduler(algo, {{"eps", std::to_string(epsilon)},
                               {"seed", std::to_string(seed)}})
      ->run(costs);
}

constexpr const char* kAlgoHelp =
    "registry spec, e.g. ftsa or mc-ftsa:selector=matching (see list-algos)";

/// Parses "0@0,3@12.5" into a failure scenario (proc@time pairs).
///
/// Strict: stoul-style parsing would read "3x@1" as processor 3 with the
/// "x" silently dropped, and wrap "-1" to a huge id before the narrowing
/// cast; parse_u64/parse_double reject trailing junk and signs loudly.
FailureScenario parse_crashes(const std::string& spec) {
  FailureScenario scenario;
  if (spec.empty()) return scenario;
  std::istringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const auto at = item.find('@');
    const std::string proc_part =
        at == std::string::npos ? item : item.substr(0, at);
    const std::string time_part =
        at == std::string::npos ? "0" : item.substr(at + 1);
    try {
      const std::uint64_t proc = spec_detail::parse_u64("proc", proc_part);
      FTSCHED_REQUIRE(proc < ProcId::kInvalid,
                      "processor id out of range: " + proc_part);
      const double time = spec_detail::parse_double("time", time_part);
      scenario.add(ProcId{static_cast<std::size_t>(proc)}, time);
    } catch (const InvalidArgument& e) {
      throw InvalidArgument("malformed crash spec item '" + item +
                            "' (expected proc@time): " + e.what());
    }
  }
  return scenario;
}

/// Flush + close an output file and fail loudly if *anything* went wrong.
/// Checking only at open time misses ENOSPC/EIO that strikes mid-write:
/// the stream would swallow the error and the CLI would exit 0 leaving a
/// silently truncated file.
void finish_output_file(std::ofstream& file, const std::string& path) {
  file.flush();
  FTSCHED_REQUIRE(file.good(),
                  "writing output file failed (disk full?): " + path);
  file.close();
  FTSCHED_REQUIRE(file.good(), "closing output file failed: " + path);
}

void write_or_print(const std::string& path, const std::string& content,
                    std::ostream& out) {
  if (path.empty()) {
    out << content;
  } else {
    std::ofstream file(path);
    FTSCHED_REQUIRE(file.good(), "cannot open output file: " + path);
    file << content;
    finish_output_file(file, path);
  }
}

// ----------------------------------------------------------------- commands

int cmd_generate(const std::vector<std::string>& args, std::ostream& out) {
  CliParser cli("ftsched_cli generate: emit a task graph in text format");
  cli.add_option("family", "layered",
                 "layered|gnp|chain|forkjoin|intree|outtree|fft|gauss|"
                 "wavefront|sp|cholesky|lu");
  cli.add_option("tasks", "100", "task count / family size parameter");
  cli.add_option("seed", "1", "random seed (random families)");
  cli.add_option("out", "", "output file (stdout when empty)");
  cli.add_flag("dot", "emit Graphviz DOT instead of the text format");
  std::vector<const char*> argv{"generate"};
  for (const auto& a : args) argv.push_back(a.c_str());
  if (!cli.parse(static_cast<int>(argv.size()), argv.data())) return 0;

  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));
  const TaskGraph g = generate_family(
      cli.get("family"), static_cast<std::size_t>(cli.get_int("tasks")), rng);
  write_or_print(cli.get("out"),
                 cli.get_flag("dot") ? to_dot(g) : graph_to_string(g), out);
  return 0;
}

int cmd_info(const std::vector<std::string>& args, std::ostream& out) {
  CliParser cli("ftsched_cli info: structural statistics of a graph file");
  cli.add_option("graph", "", "graph file (text format)");
  std::vector<const char*> argv{"info"};
  for (const auto& a : args) argv.push_back(a.c_str());
  if (!cli.parse(static_cast<int>(argv.size()), argv.data())) return 0;

  const TaskGraph g = load_graph(cli.get("graph"));
  out << "name:            " << g.name() << '\n';
  out << "tasks:           " << g.task_count() << '\n';
  out << "edges:           " << g.edge_count() << '\n';
  out << "entry tasks:     " << g.entry_tasks().size() << '\n';
  out << "exit tasks:      " << g.exit_tasks().size() << '\n';
  out << "depth (hops):    " << critical_path_hops(g) << '\n';
  out << "layer width:     " << layer_width(g) << '\n';
  if (g.task_count() <= 2000) {
    out << "exact width:     " << exact_width(g) << '\n';
  }
  out << "total volume:    " << g.total_volume() << '\n';
  return 0;
}

int cmd_schedule(const std::vector<std::string>& args, std::ostream& out) {
  CliParser cli("ftsched_cli schedule: schedule a graph file or workload");
  cli.add_option("graph", "", "graph file (text format)");
  cli.add_option("workload", "", kWorkloadHelp);
  cli.add_option("algo", "ftsa", kAlgoHelp);
  cli.add_option("epsilon", "1", "failures to tolerate");
  cli.add_option("procs", "8", "processors in the generated platform");
  cli.add_option("granularity", "1.0", "target granularity g(G,P)");
  cli.add_option("seed", "1", "platform/cost/tie-break seed");
  cli.add_option("out", "", "write the schedule (text format) to this file");
  cli.add_flag("gantt", "print an ASCII Gantt chart");
  cli.add_flag("json", "print the schedule as JSON");
  std::vector<const char*> argv{"schedule"};
  for (const auto& a : args) argv.push_back(a.c_str());
  if (!cli.parse(static_cast<int>(argv.size()), argv.data())) return 0;

  const auto workload = load_workload(cli);
  const auto epsilon = static_cast<std::size_t>(cli.get_int("epsilon"));
  const ReplicatedSchedule s =
      run_algorithm(cli.get("algo"), workload->costs(), epsilon,
                    static_cast<std::uint64_t>(cli.get_int("seed")));
  s.validate();
  out << "algorithm:            " << s.algorithm() << '\n';
  out << "epsilon:              " << s.epsilon() << '\n';
  out << "lower bound M*:       " << s.lower_bound() << '\n';
  out << "upper bound M:        " << s.upper_bound() << '\n';
  out << "interproc messages:   " << s.interproc_message_count() << '\n';
  out << "repaired tasks:       " << s.repaired_tasks().size() << '\n';
  const UtilizationStats u = utilization(s);
  out << "mean utilization:     " << format_double(u.mean, 3) << '\n';
  if (cli.get_flag("gantt")) out << '\n' << schedule_gantt(s);
  if (cli.get_flag("json")) out << '\n' << schedule_to_json(s);
  if (!cli.get("out").empty()) {
    write_or_print(cli.get("out"), schedule_to_string(s), out);
  }
  return 0;
}

int cmd_simulate(const std::vector<std::string>& args, std::ostream& out) {
  CliParser cli("ftsched_cli simulate: execute a schedule under crashes");
  cli.add_option("graph", "", "graph file (text format)");
  cli.add_option("workload", "", kWorkloadHelp);
  cli.add_option("algo", "ftsa", kAlgoHelp);
  cli.add_option("epsilon", "1", "failures to tolerate");
  cli.add_option("procs", "8", "processors in the generated platform");
  cli.add_option("granularity", "1.0", "target granularity g(G,P)");
  cli.add_option("seed", "1", "platform/cost/tie-break seed");
  cli.add_option("crashes", "", "crash spec, e.g. \"0@0,3@12.5\"");
  cli.add_option("failures", "",
                 "draw the crash scenario from a FailureModel spec instead "
                 "of --crashes, e.g. bernoulli:p=0.2 (victims crash at t=0; "
                 "see list-failure-laws)");
  cli.add_option("comm", "free", "free|oneport|multiport communication model");
  cli.add_option("ports", "2", "ports for the multiport model");
  cli.add_flag("gantt", "print the execution Gantt chart");
  cli.add_flag("json", "print schedule + execution as JSON");
  std::vector<const char*> argv{"simulate"};
  for (const auto& a : args) argv.push_back(a.c_str());
  if (!cli.parse(static_cast<int>(argv.size()), argv.data())) return 0;

  const auto workload = load_workload(cli);
  const auto epsilon = static_cast<std::size_t>(cli.get_int("epsilon"));
  const ReplicatedSchedule s =
      run_algorithm(cli.get("algo"), workload->costs(), epsilon,
                    static_cast<std::uint64_t>(cli.get_int("seed")));
  FailureScenario scenario;
  if (!cli.get("failures").empty()) {
    FTSCHED_REQUIRE(cli.get("crashes").empty(),
                    "--crashes and --failures are mutually exclusive");
    const FailureModel model = FailureModel::parse(cli.get("failures"));
    // A derived stream so the draw is independent of the generator draws
    // the workload consumed from the same seed.
    Rng rng = Rng(static_cast<std::uint64_t>(cli.get_int("seed"))).derive(1);
    const std::vector<std::size_t> victims =
        model.draw(rng, workload->platform().proc_count(), epsilon);
    for (std::size_t v : victims) scenario.add(ProcId{v}, 0.0);
    out << "failure model:        " << model.describe() << '\n';
    out << "drawn crashes:        " << victims.size() << " of "
        << workload->platform().proc_count() << " processors (epsilon "
        << epsilon << ")\n";
  } else {
    scenario = parse_crashes(cli.get("crashes"));
  }
  SimulationOptions options;
  const std::string comm = cli.get("comm");
  if (comm == "oneport") {
    options.comm.kind = CommModelKind::kOnePort;
  } else if (comm == "multiport") {
    options.comm.kind = CommModelKind::kBoundedMultiPort;
    options.comm.ports = static_cast<std::size_t>(cli.get_int("ports"));
  } else {
    FTSCHED_REQUIRE(comm == "free", "unknown comm model: " + comm);
  }
  const SimulationResult r = simulate(s, scenario, options);
  out << "success:              " << (r.success ? "yes" : "NO") << '\n';
  if (r.success) {
    out << "achieved latency:     " << r.latency << '\n';
    out << "guaranteed bound M:   " << s.upper_bound() << '\n';
  }
  out << "completed replicas:   " << r.completed_replicas << '\n';
  out << "dead replicas:        " << r.dead_replicas << '\n';
  out << "cancelled replicas:   " << r.cancelled_replicas << '\n';
  out << "messages delivered:   " << r.messages_delivered << '\n';
  if (cli.get_flag("gantt")) out << '\n' << execution_gantt(s, r);
  if (cli.get_flag("json")) out << '\n' << schedule_to_json(s, &r);
  return r.success ? 0 : 2;
}

int cmd_list_algos(const std::vector<std::string>& args, std::ostream& out) {
  CliParser cli(
      "ftsched_cli list-algos: scheduling algorithms registered in the "
      "SchedulerRegistry, with their option keys");
  std::vector<const char*> argv{"list-algos"};
  for (const auto& a : args) argv.push_back(a.c_str());
  if (!cli.parse(static_cast<int>(argv.size()), argv.data())) return 0;

  const SchedulerRegistry& registry = SchedulerRegistry::global();
  for (const std::string& name : registry.names()) {
    const SchedulerRegistry::Entry& entry = registry.entry(name);
    out << name << "\n    " << entry.summary << '\n';
    for (const SchedulerRegistry::OptionSpec& option : entry.options) {
      out << "    " << option.key << "=" << option.default_value << "  "
          << option.help << '\n';
    }
  }
  out << "\nspec syntax: name[:key=value[,key=value...]], e.g. "
         "\"ftsa:eps=2,prio=bl\"\n";
  return 0;
}

int cmd_list_workloads(const std::vector<std::string>& args,
                       std::ostream& out) {
  CliParser cli(
      "ftsched_cli list-workloads: workload families registered in the "
      "WorkloadRegistry, with their option keys");
  std::vector<const char*> argv{"list-workloads"};
  for (const auto& a : args) argv.push_back(a.c_str());
  if (!cli.parse(static_cast<int>(argv.size()), argv.data())) return 0;

  const WorkloadRegistry& registry = WorkloadRegistry::global();
  for (const std::string& name : registry.names()) {
    const WorkloadRegistry::Entry& entry = registry.entry(name);
    out << name << "\n    " << entry.summary << '\n';
    for (const SpecOptionSpec& option : entry.options) {
      out << "    " << option.key << "=" << option.default_value << "  "
          << option.help << '\n';
    }
  }
  out << "\nspec syntax: family[:key=value[,key=value...]], e.g. "
         "\"paper:tmin=100,tmax=150\" or \"fft:size=16\"\n"
         "crash laws (sweep --scenario): t0 | frac:f=F | uniform:hi=H | "
         "exp:mean=M\n";
  return 0;
}

int cmd_list_failure_laws(const std::vector<std::string>& args,
                          std::ostream& out) {
  CliParser cli(
      "ftsched_cli list-failure-laws: failure-model laws (--failures) and "
      "crash-time laws (--scenario) of the sweep engine");
  std::vector<const char*> argv{"list-failure-laws"};
  for (const auto& a : args) argv.push_back(a.c_str());
  if (!cli.parse(static_cast<int>(argv.size()), argv.data())) return 0;

  out << "failure models (sweep/simulate --failures): count law x victim "
         "law\n";
  for (const std::string& name : FailureModel::known()) {
    // Describe each law at its defaults.
    out << "  " << name << "\n      "
        << FailureModel::parse(name).describe() << '\n';
  }
  out << "  options: fixed takes k=<count>, bernoulli takes "
         "p=<probability>,\n"
         "  domain takes size=<rack width>; fixed/bernoulli accept "
         "domain=<rack\n"
         "  width> to draw correlated whole-domain victims, e.g. "
         "\"bernoulli:p=0.1,domain=4\"\n"
         "  repair takes mttr=<mean time to repair> (exponential restart "
         "delays),\n"
         "  burst takes width=<window> (time-correlated crash instants), "
         "hetero\n"
         "  takes base=<rate>,spread=<gradient> (per-processor failure "
         "rates);\n"
         "  counts above epsilon are simulated without the Theorem-4.1 "
         "guarantee;\n"
         "  sweeps then report per-cell success fractions (<algo>-Success "
         "series)\n\n";
  out << "crash-time laws (sweep --scenario): when the victims crash\n";
  for (const std::string& name : CrashTimeLaw::known()) {
    out << "  " << name << "\n      "
        << CrashTimeLaw::parse(name).describe() << '\n';
  }
  out << "  options: frac:f=F | uniform:hi=H | exp:mean=M, unit times "
         "anchored to M*\n";
  return 0;
}

int cmd_list_policies(const std::vector<std::string>& args,
                      std::ostream& out) {
  CliParser cli(
      "ftsched_cli list-policies: online rescheduling policies (--policy) "
      "of the sweep engine");
  std::vector<const char*> argv{"list-policies"};
  for (const auto& a : args) argv.push_back(a.c_str());
  if (!cli.parse(static_cast<int>(argv.size()), argv.data())) return 0;

  const PolicyRegistry& registry = PolicyRegistry::global();
  out << "rescheduling policies (sweep --policy): how the simulator reacts "
         "to crash/repair events\n";
  for (const std::string& name : registry.names()) {
    const PolicyRegistry::Entry& entry = registry.entry(name);
    out << "  " << name << "\n      " << entry.summary << '\n';
    for (const SpecOptionSpec& option : entry.options) {
      out << "      " << option.key << "=" << option.default_value << "  "
          << option.help << '\n';
    }
  }
  out << "  `none` replays the static schedule byte-identically; reactive "
         "policies remap\n"
         "  not-yet-started replicas onto survivors, pairing each cell's "
         "draws with the\n"
         "  static run (combine with --failures \"repair:...\" for "
         "restart dynamics)\n";
  return 0;
}

// The sweep-grid option set, its FigureConfig translation and the --shard
// chain applicator live in experiments/backend.hpp now (socket workers
// rebuild their plan from the same flags); the CLI only adds the backend
// resolution, which injects its own binary as the process-spawning
// backends' default `bin` so `--backend subprocess` / `socket` just work.
SweepBackendPtr backend_from_cli(const CliParser& cli) {
  return make_sweep_backend(cli.get("backend"),
                            {{"bin", self_executable_path()}});
}

int cmd_plan(const std::vector<std::string>& args, std::ostream& out) {
  CliParser cli(
      "ftsched_cli plan: enumerate the sweep grid (and a shard's slice of "
      "it) without running anything");
  add_sweep_grid_options(cli);
  cli.add_option("limit", "40", "coordinate rows to print (0 = all)");
  std::vector<const char*> argv{"plan"};
  for (const auto& a : args) argv.push_back(a.c_str());
  if (!cli.parse(static_cast<int>(argv.size()), argv.data())) return 0;

  const FigureConfig config = sweep_config_from_cli(cli);
  const SweepPlan plan =
      apply_shard_chain(SweepPlan(config), cli.get("shard"));
  const SweepBackendPtr backend = backend_from_cli(cli);
  out << "=== sweep plan (epsilon=" << config.epsilon
      << ", m=" << config.proc_count << ", graphs/point="
      << config.graphs_per_point << ", seed=" << config.seed << ") ===\n";
  out << "cells:        " << plan.workloads().size() << " workload(s) x "
      << plan.scenarios().size() << " scenario(s) x "
      << plan.failures().size() << " failure model(s) x "
      << plan.policies().size() << " polic"
      << (plan.policies().size() == 1 ? "y" : "ies") << "\n";
  out << "grid:         " << plan.grid_size() << " instances ("
      << plan.granularities().size() << " granularities x "
      << plan.repetitions() << " reps per cell)\n";
  out << "selected:     " << plan.size() << " [shard " << plan.shard_label()
      << "]\n";
  out << "backend:      " << backend->describe() << '\n';
  out << "fingerprint:  " << plan.fingerprint() << "\n\n";

  const auto limit = static_cast<std::size_t>(cli.get_int("limit"));
  const std::size_t rows =
      limit == 0 ? plan.size() : std::min(plan.size(), limit);
  TextTable table({"id", "workload", "scenario", "failure", "policy",
                   "granularity", "rep"});
  for (std::size_t k = 0; k < rows; ++k) {
    const InstanceCoord c = plan.coord(k);
    table.add_row({std::to_string(c.id), plan.workloads()[c.workload],
                   plan.scenarios()[c.scenario], plan.failures()[c.failure],
                   plan.policies()[c.policy],
                   format_double(plan.granularities()[c.gran], 2),
                   std::to_string(c.rep)});
  }
  table.print(out);
  if (rows < plan.size()) {
    out << "... (" << plan.size() - rows
        << " more; rerun with --limit 0 for all)\n";
  }
  return 0;
}

int cmd_sweep(const std::vector<std::string>& args, std::ostream& out) {
  CliParser cli(
      "ftsched_cli sweep: granularity sweep over (workload family x crash "
      "scenario) cells, deterministic for any thread count; with --shard, "
      "runs one slice of the grid and emits the JSONL shard protocol "
      "instead of CSV (recombine with 'merge')");
  add_sweep_grid_options(cli);
  cli.add_option("out", "",
                 "write the CSV (or JSONL shard) to this file (stdout when "
                 "empty)");
  cli.add_flag("ungrouped",
               "evaluate per coordinate (legacy path: every cell reruns all "
               "scheduler passes) instead of scheduling once per (workload, "
               "granularity, rep) group; output is bit-identical either way");
  std::vector<const char*> argv{"sweep"};
  for (const auto& a : args) argv.push_back(a.c_str());
  if (!cli.parse(static_cast<int>(argv.size()), argv.data())) return 0;

  const FigureConfig config = sweep_config_from_cli(cli);
  const SweepBackendPtr backend = backend_from_cli(cli);
  RunPlanOptions run_options;
  run_options.group = !cli.get_flag("ungrouped");

  if (!cli.get("shard").empty()) {
    const SweepPlan plan =
        apply_shard_chain(SweepPlan(config), cli.get("shard"));
    const std::string path = cli.get("out");
    if (path.empty()) {
      // Pure JSONL on stdout so the shard can be piped.
      ShardWriterSink sink(out, plan);
      backend->run(plan, sink, run_options);
    } else {
      std::ofstream file(path);
      FTSCHED_REQUIRE(file.good(), "cannot open output file: " + path);
      ShardWriterSink sink(file, plan);
      backend->run(plan, sink, run_options);
      finish_output_file(file, path);
      out << "=== sweep shard " << plan.shard_label() << " (" << plan.size()
          << " of " << plan.grid_size() << " instances) -> " << path
          << " ===\n";
    }
    return 0;
  }

  const SweepPlan plan(config);
  OnlineStatsSink sink(plan);
  backend->run(plan, sink, run_options);
  const SweepResult sweep = sink.take();
  out << "=== sweep (epsilon=" << config.epsilon << ", m=" << config.proc_count
      << ", graphs/point=" << config.graphs_per_point << ", seed="
      << config.seed << ", cells=" << sweep.workloads.size() << "x"
      << sweep.scenarios.size() << "x" << sweep.failures.size() << "x"
      << sweep.policies.size() << ") ===\n";
  write_or_print(cli.get("out"), sweep_to_csv(sweep), out);
  return 0;
}

int cmd_merge(const std::vector<std::string>& args, std::ostream& out) {
  CliParser cli(
      "ftsched_cli merge: combine JSONL sweep shards (from 'sweep --shard') "
      "covering a full partition of one plan's grid into the CSV of the "
      "unsharded run — bit-identical, any partition");
  cli.add_option("in", "", "';'-separated shard files");
  cli.add_option("out", "", "write the CSV to this file (stdout when empty)");
  std::vector<const char*> argv{"merge"};
  for (const auto& a : args) argv.push_back(a.c_str());
  if (!cli.parse(static_cast<int>(argv.size()), argv.data())) return 0;

  const std::vector<std::string> paths = split_list(cli.get("in"));
  FTSCHED_REQUIRE(!paths.empty(),
                  "merge needs --in \"a.jsonl;b.jsonl;...\" with at least "
                  "one non-empty path (got '" + cli.get("in") + "')");
  std::vector<ShardFile> shards;
  shards.reserve(paths.size());
  std::uint64_t covered = 0;
  for (const std::string& path : paths) {
    shards.push_back(read_shard_file(path));
    covered += shards.back().header.selected;
  }
  const SweepResult merged = merge_shards(shards);
  out << "=== merge (" << shards.size() << " shards, " << covered << " of "
      << shards.front().header.grid << " instances) ===\n";
  write_or_print(cli.get("out"), sweep_to_csv(merged), out);
  return 0;
}

int cmd_list_backends(const std::vector<std::string>& args,
                      std::ostream& out) {
  CliParser cli(
      "ftsched_cli list-backends: sweep execution backends (sweep/plan "
      "--backend) and their option keys");
  std::vector<const char*> argv{"list-backends"};
  for (const auto& a : args) argv.push_back(a.c_str());
  if (!cli.parse(static_cast<int>(argv.size()), argv.data())) return 0;

  const SweepBackendRegistry& registry = SweepBackendRegistry::global();
  for (const std::string& name : registry.names()) {
    const SweepBackendRegistry::Entry& entry = registry.entry(name);
    out << name << "\n    " << entry.summary << '\n';
    for (const SpecOptionSpec& option : entry.options) {
      out << "    " << option.key << "=" << option.default_value << "  "
          << option.help << '\n';
    }
  }
  out << "\nspec syntax: name[:key=value[,key=value...]], e.g. "
         "\"subprocess:workers=3,retries=1\" or\n"
         "\"socket:workers=3,manifest=/tmp/sweep-cache\"\n"
         "every backend delivers bit-identical samples in the same order, "
         "so CSV and\nJSONL shard output never depend on the backend "
         "choice; the socket backend is\nthe coordinator service "
         "(lease expiry, work stealing, resumable manifests) run\n"
         "in-process — 'serve' and 'worker' expose the same service as "
         "long-running\ncommands\n";
  return 0;
}

int cmd_serve(const std::vector<std::string>& args, std::ostream& out) {
  CliParser cli(
      "ftsched_cli serve: run the sweep coordinator — lease the grid to "
      "socket workers (local threads and/or external 'worker --connect' "
      "processes), tolerate worker deaths via lease expiry and work "
      "stealing, and emit the same CSV as an in-process sweep; with "
      "--manifest-dir, completed units are journaled so a killed serve "
      "re-runs only the missing cells");
  add_sweep_grid_options(cli);
  cli.add_option("port", "0", "listening port on 127.0.0.1 (0 = ephemeral)");
  cli.add_option("workers", "1",
                 "in-process worker threads serving this coordinator (0 = "
                 "wait for external workers only)");
  cli.add_option("lease", "0", "coordinates per lease (0 = auto)");
  cli.add_option("timeout", "30",
                 "seconds of worker silence before a lease expires");
  cli.add_option("manifest-dir", "",
                 "journal completed units here for resumable sweeps");
  cli.add_option("out", "", "write the CSV to this file (stdout when empty)");
  cli.add_flag("ungrouped",
               "workers evaluate per coordinate instead of the grouped "
               "schedule-once path (bit-identical either way)");
  std::vector<const char*> argv{"serve"};
  for (const auto& a : args) argv.push_back(a.c_str());
  if (!cli.parse(static_cast<int>(argv.size()), argv.data())) return 0;

  const FigureConfig config = sweep_config_from_cli(cli);
  const SweepPlan plan =
      apply_shard_chain(SweepPlan(config), cli.get("shard"));
  CoordinatorOptions copts;
  copts.port = static_cast<std::uint16_t>(cli.get_int("port"));
  copts.lease = static_cast<std::size_t>(cli.get_int("lease"));
  copts.timeout = cli.get_double("timeout");
  copts.manifest_dir = cli.get("manifest-dir");
  copts.group = !cli.get_flag("ungrouped");

  OnlineStatsSink sink(plan);
  Coordinator coordinator(plan, sink, copts);
  // Flushed immediately: scripts (and the CI) wait for this line to learn
  // the ephemeral port before pointing workers at the coordinator.
  out << "=== serve: listening on 127.0.0.1:" << coordinator.port()
      << " (" << plan.size() << " of " << plan.grid_size()
      << " instances, shard " << plan.shard_label() << ") ===" << std::endl;

  const auto local = static_cast<std::size_t>(cli.get_int("workers"));
  std::atomic<std::size_t> running{0};
  std::vector<std::thread> threads;
  threads.reserve(local);
  for (std::size_t i = 0; i < local; ++i) {
    running.fetch_add(1);
    threads.emplace_back([&, i] {
      WorkerOptions w;
      w.port = coordinator.port();
      w.name = "local" + std::to_string(i);
      try {
        (void)run_worker(w);
      } catch (const Error&) {
        // A dead local worker is the coordinator's problem (lease expiry
        // / requeue), not a serve failure; external workers may finish.
      }
      running.fetch_sub(1);
    });
  }

  coordinator.run();
  // Wind-down: keep answering parked workers' lease requests with bye
  // until the local threads have exited and every external worker has
  // taken its bye and hung up (bounded — a wedged worker that neither
  // requests nor disconnects must not pin the coordinator open).
  int grace = 200;
  while (running.load() != 0 ||
         (coordinator.connections() != 0 && grace-- > 0))
    coordinator.poll(50);
  for (std::thread& t : threads) t.join();

  const CoordinatorStats& stats = coordinator.stats();
  out << "=== serve: done (workers " << stats.workers_joined << ", leases "
      << stats.leases_granted << ", stolen " << stats.leases_stolen
      << ", expired " << stats.leases_expired << ", resumed "
      << stats.coords_resumed << " coords) ===\n";
  write_or_print(cli.get("out"), sweep_to_csv(sink.take()), out);
  return 0;
}

int cmd_worker(const std::vector<std::string>& args, std::ostream& out) {
  CliParser cli(
      "ftsched_cli worker: join a sweep coordinator ('serve' or the socket "
      "backend), rebuild its plan from the received flags and evaluate "
      "leased coordinates until told bye");
  cli.add_option("connect", "",
                 "coordinator address, host:port (e.g. 127.0.0.1:7000)");
  cli.add_option("name", "worker", "worker name for diagnostics");
  cli.add_option("max-leases", "0",
                 "fault injection: drop the connection after completing "
                 "this many leases (0 = work until bye)");
  cli.add_option("kill-after-leases", "0",
                 "fault injection: SIGKILL this process upon receiving the "
                 "n-th lease (0 = never)");
  cli.add_option("delay-ms", "0",
                 "fault injection: sleep before sending each sample "
                 "(straggler mode)");
  std::vector<const char*> argv{"worker"};
  for (const auto& a : args) argv.push_back(a.c_str());
  if (!cli.parse(static_cast<int>(argv.size()), argv.data())) return 0;

  const std::string target = cli.get("connect");
  const auto colon = target.rfind(':');
  FTSCHED_REQUIRE(colon != std::string::npos && colon > 0 &&
                      colon + 1 < target.size(),
                  "--connect expects host:port, e.g. 127.0.0.1:7000; got '" +
                      target + "'");
  WorkerOptions w;
  w.host = target.substr(0, colon);
  w.port = static_cast<std::uint16_t>(
      spec_detail::parse_u64("port", target.substr(colon + 1)));
  w.name = cli.get("name");
  w.max_leases = static_cast<std::size_t>(cli.get_int("max-leases"));
  w.kill_after_leases =
      static_cast<std::size_t>(cli.get_int("kill-after-leases"));
  w.sample_delay_ms = static_cast<std::size_t>(cli.get_int("delay-ms"));

  const WorkerReport report = run_worker(w);
  out << "worker " << w.name << ": " << report.leases_completed
      << " lease(s), " << report.samples_sent << " sample(s), "
      << (report.orderly ? "bye" : "early exit") << '\n';
  return 0;
}

int cmd_validate(const std::vector<std::string>& args, std::ostream& out) {
  CliParser cli(
      "ftsched_cli validate: exhaustive fault-tolerance validation "
      "(Theorem 4.1) plus kill-set analysis");
  cli.add_option("graph", "", "graph file (text format)");
  cli.add_option("workload", "", kWorkloadHelp);
  cli.add_option("algo", "ftsa", kAlgoHelp);
  cli.add_option("epsilon", "1", "failures to tolerate");
  cli.add_option("procs", "6", "processors (validation is C(m, eps) runs)");
  cli.add_option("granularity", "1.0", "target granularity g(G,P)");
  cli.add_option("seed", "1", "platform/cost/tie-break seed");
  std::vector<const char*> argv{"validate"};
  for (const auto& a : args) argv.push_back(a.c_str());
  if (!cli.parse(static_cast<int>(argv.size()), argv.data())) return 0;

  const auto workload = load_workload(cli);
  const auto epsilon = static_cast<std::size_t>(cli.get_int("epsilon"));
  const ReplicatedSchedule s =
      run_algorithm(cli.get("algo"), workload->costs(), epsilon,
                    static_cast<std::uint64_t>(cli.get_int("seed")));
  const RobustnessReport analysis = analyze_robustness(s);
  out << "kill-set analysis:    " << analysis.summary() << '\n';
  const ValidationReport report = validate_fault_tolerance(s);
  out << "exhaustive check:     "
      << (report.valid ? "valid" : report.failure_description) << '\n';
  out << "scenarios checked:    " << report.scenarios_checked << '\n';
  out << "worst latency:        " << report.worst_latency
      << "  (M = " << s.upper_bound() << ")\n";
  return report.valid ? 0 : 2;
}

}  // namespace

std::string usage() {
  return
      "ftsched_cli — fault-tolerant DAG scheduling toolbox\n"
      "\n"
      "usage: ftsched_cli <command> [options]   (--help per command)\n"
      "\n"
      "commands:\n"
      "  generate        emit a task graph (layered, gnp, fft, cholesky, ...)\n"
      "  info            structural statistics of a graph file\n"
      "  list-algos      registered scheduling algorithms and their options\n"
      "  list-backends   sweep execution backends (inproc, subprocess, ...)\n"
      "  list-failure-laws  failure-model and crash-time laws for sweeps\n"
      "  list-policies   online rescheduling policies for sweeps\n"
      "  list-workloads  registered workload families and their options\n"
      "  plan            enumerate the sweep grid / a shard's slice of it\n"
      "  schedule        schedule a graph or workload (--algo, --workload)\n"
      "  serve           run the sweep-coordinator service (leases, work\n"
      "                  stealing, resumable manifests) over socket workers\n"
      "  simulate        execute a schedule under a crash scenario\n"
      "  sweep           (workload x scenario x failure model x policy x\n"
      "                  granularity) sweep to CSV; --shard i/N emits a\n"
      "                  JSONL shard\n"
      "  merge           combine sweep shards into the unsharded CSV\n"
      "  validate        exhaustive Theorem-4.1 validation + kill-set "
      "analysis\n"
      "  worker          join a coordinator and evaluate leased coordinates\n";
}

int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  if (args.empty() || args[0] == "--help" || args[0] == "help") {
    out << usage();
    return args.empty() ? 1 : 0;
  }
  const std::string command = args[0];
  const std::vector<std::string> rest(args.begin() + 1, args.end());
  try {
    if (command == "generate") return cmd_generate(rest, out);
    if (command == "info") return cmd_info(rest, out);
    if (command == "list-algos") return cmd_list_algos(rest, out);
    if (command == "list-backends") return cmd_list_backends(rest, out);
    if (command == "list-failure-laws") {
      return cmd_list_failure_laws(rest, out);
    }
    if (command == "list-policies") return cmd_list_policies(rest, out);
    if (command == "list-workloads") return cmd_list_workloads(rest, out);
    if (command == "merge") return cmd_merge(rest, out);
    if (command == "plan") return cmd_plan(rest, out);
    if (command == "schedule") return cmd_schedule(rest, out);
    if (command == "serve") return cmd_serve(rest, out);
    if (command == "simulate") return cmd_simulate(rest, out);
    if (command == "sweep") return cmd_sweep(rest, out);
    if (command == "validate") return cmd_validate(rest, out);
    if (command == "worker") return cmd_worker(rest, out);
    err << "unknown command: " << command << "\n\n" << usage();
    return 1;
  } catch (const Error& e) {
    err << "error: " << e.what() << '\n';
    return 1;
  }
}

}  // namespace ftsched::cli
