// ftsched_cli — command-line toolbox over the ftsched library.
// See cli_commands.hpp for the subcommand list.
#include <iostream>
#include <string>
#include <vector>

#include "cli_commands.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return ftsched::cli::run_cli(args, std::cout, std::cerr);
}
