// Ablation: MC-FTSA channel selector — greedy (§4.2, used in the paper's
// experiments) vs binary-search + Hopcroft–Karp matching (the polynomial
// bottleneck-optimal selector also described in §4.2).
//
// Reports, per ε: normalized latency bounds, inter-processor messages,
// end-to-end repair rate, and selection wall time.
#include <iostream>

#include "ftsched/core/scheduler.hpp"
#include "ftsched/metrics/metrics.hpp"
#include "ftsched/util/cli.hpp"
#include "ftsched/util/stats.hpp"
#include "ftsched/util/table.hpp"
#include "ftsched/util/timer.hpp"
#include "ftsched/workload/paper_workload.hpp"

using namespace ftsched;

int main() {
  const auto graphs = static_cast<std::size_t>(env_int("FTSCHED_GRAPHS", 30));
  const auto seed = static_cast<std::uint64_t>(env_int("FTSCHED_SEED", 42));

  std::cout << "=== Ablation: MC-FTSA channel selector (greedy vs "
               "binary-search matching; "
            << graphs << " graphs, m=20) ===\n";
  TextTable table({"epsilon", "selector", "lower", "upper", "interproc-msgs",
                   "repair-rate", "sched-time-ms"});
  for (std::size_t epsilon : {1u, 2u, 5u}) {
    for (const char* selector : {"greedy", "matching"}) {
      OnlineStats lower;
      OnlineStats upper;
      OnlineStats msgs;
      OnlineStats repair;
      OnlineStats millis;
      Rng root(seed);
      for (std::size_t i = 0; i < graphs; ++i) {
        Rng rng = root.split();
        PaperWorkloadParams params;
        params.granularity = 1.0;
        const auto w = make_paper_workload(rng, params);
        const auto scheduler = make_scheduler(
            std::string("mc-ftsa:eps=") + std::to_string(epsilon) +
            ",selector=" + selector + ",seed=" + std::to_string(rng()));
        Stopwatch sw;
        const auto s = scheduler->run(w->costs());
        millis.add(sw.seconds() * 1e3);
        lower.add(normalized_latency(s.lower_bound(), w->costs()));
        upper.add(normalized_latency(s.upper_bound(), w->costs()));
        msgs.add(static_cast<double>(s.interproc_message_count()));
        repair.add(static_cast<double>(s.repaired_tasks().size()) /
                   static_cast<double>(w->graph().task_count()));
      }
      table.add_numeric_row(
          std::to_string(epsilon) + " " + selector,
          {lower.mean(), upper.mean(), msgs.mean(), repair.mean(),
           millis.mean()});
    }
  }
  table.print(std::cout);
  std::cout << "csv:\n" << table.csv();
  return 0;
}
