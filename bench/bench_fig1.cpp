// Reproduces paper Figure 1 (ε = 1, 20 processors): (a) schedule bounds,
// (b) simulated crash latencies, (c) overheads, vs granularity 0.2..2.0.
//
// Environment overrides: FTSCHED_GRAPHS (default 60 graphs per point, as
// in the paper), FTSCHED_SEED (default 42).
#include <iostream>

#include "ftsched/experiments/figures.hpp"

int main() {
  ftsched::run_figure(std::cout, 1);
  return 0;
}
