// Reproduces paper Figure 3 (ε = 5, 20 processors); see bench_fig1.cpp.
#include <iostream>

#include "ftsched/experiments/figures.hpp"

int main() {
  ftsched::run_figure(std::cout, 3);
  return 0;
}
