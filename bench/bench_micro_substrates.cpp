// google-benchmark microbenches for the substrates: AVL priority list,
// Hopcroft–Karp matching, DAG generation, bottom-level computation, and
// the execution simulator.
#include <benchmark/benchmark.h>

#include "ftsched/core/avl.hpp"
#include "ftsched/core/matching.hpp"
#include "ftsched/core/scheduler.hpp"
#include "ftsched/core/priorities.hpp"
#include "ftsched/sim/event_sim.hpp"
#include "ftsched/util/rng.hpp"
#include "ftsched/workload/paper_workload.hpp"

namespace {

using namespace ftsched;

void BM_AvlInsertExtract(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<double> keys(n);
  for (double& k : keys) k = rng.uniform();
  for (auto _ : state) {
    AvlTree<double> tree;
    for (double k : keys) tree.insert(k);
    while (!tree.empty()) benchmark::DoNotOptimize(tree.extract_max());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_AvlInsertExtract)->Arg(256)->Arg(4096);

void BM_HopcroftKarp(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  BipartiteGraph g(n, n);
  for (std::size_t l = 0; l < n; ++l) {
    g.add_edge(l, l);
    for (int k = 0; k < 4; ++k) {
      g.add_edge(l, static_cast<std::size_t>(
                        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1)));
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(hopcroft_karp(g).size);
  }
}
BENCHMARK(BM_HopcroftKarp)->Arg(64)->Arg(1024);

void BM_LayeredDagGeneration(benchmark::State& state) {
  const auto v = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Rng rng(3);
    LayeredDagParams params;
    params.task_count = v;
    benchmark::DoNotOptimize(make_layered_dag(rng, params).edge_count());
  }
}
BENCHMARK(BM_LayeredDagGeneration)->Arg(125)->Arg(1000);

std::unique_ptr<Workload> bench_workload(std::size_t tasks) {
  Rng rng(4);
  PaperWorkloadParams params;
  params.task_min = params.task_max = tasks;
  return make_paper_workload(rng, params);
}

void BM_BottomLevels(benchmark::State& state) {
  const auto w = bench_workload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bottom_levels(w->costs()).size());
  }
}
BENCHMARK(BM_BottomLevels)->Arg(125)->Arg(1000);

void BM_Simulate(benchmark::State& state) {
  const auto w = bench_workload(125);
  const auto s =
      make_scheduler("ftsa:eps=" + std::to_string(state.range(0)))
          ->run(w->costs());
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate(s).latency);
  }
}
BENCHMARK(BM_Simulate)->Arg(1)->Arg(5);

}  // namespace
