// google-benchmark microbenches for the three schedulers, the Table-1
// complexity story as a microbench: FTSA / MC-FTSA stay near-linear in the
// task count, FTBAR grows cubically.
#include <benchmark/benchmark.h>

#include "ftsched/core/scheduler.hpp"
#include "ftsched/workload/paper_workload.hpp"

namespace {

using namespace ftsched;

std::unique_ptr<Workload> bench_workload(std::size_t tasks,
                                         std::size_t procs) {
  Rng rng(7);
  PaperWorkloadParams params;
  params.task_min = params.task_max = tasks;
  params.proc_count = procs;
  return make_paper_workload(rng, params);
}

/// One iteration body shared by every scheduler microbench: resolve the
/// registry spec once, time only the scheduling runs.
void run_scheduler_bench(benchmark::State& state, const char* spec) {
  const auto w = bench_workload(static_cast<std::size_t>(state.range(0)), 20);
  const SchedulerPtr scheduler = make_scheduler(spec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler->run(w->costs()).lower_bound());
  }
  state.SetComplexityN(state.range(0));
}

void BM_Ftsa(benchmark::State& state) {
  run_scheduler_bench(state, "ftsa:eps=2");
}
BENCHMARK(BM_Ftsa)->Arg(125)->Arg(500)->Arg(2000)->Complexity();

void BM_McFtsaGreedy(benchmark::State& state) {
  run_scheduler_bench(state, "mc-ftsa:eps=2");
}
BENCHMARK(BM_McFtsaGreedy)->Arg(125)->Arg(500)->Arg(2000)->Complexity();

void BM_Ftbar(benchmark::State& state) {
  run_scheduler_bench(state, "ftbar:npf=2");
}
BENCHMARK(BM_Ftbar)->Arg(125)->Arg(250)->Arg(500)->Complexity();

void BM_Heft(benchmark::State& state) { run_scheduler_bench(state, "heft"); }
BENCHMARK(BM_Heft)->Arg(125)->Arg(1000);

}  // namespace
