// google-benchmark microbenches for the three schedulers, the Table-1
// complexity story as a microbench: FTSA / MC-FTSA stay near-linear in the
// task count, FTBAR grows cubically.
#include <benchmark/benchmark.h>

#include "ftsched/core/ftbar.hpp"
#include "ftsched/core/ftsa.hpp"
#include "ftsched/core/heft.hpp"
#include "ftsched/core/mc_ftsa.hpp"
#include "ftsched/workload/paper_workload.hpp"

namespace {

using namespace ftsched;

std::unique_ptr<Workload> bench_workload(std::size_t tasks,
                                         std::size_t procs) {
  Rng rng(7);
  PaperWorkloadParams params;
  params.task_min = params.task_max = tasks;
  params.proc_count = procs;
  return make_paper_workload(rng, params);
}

void BM_Ftsa(benchmark::State& state) {
  const auto w = bench_workload(static_cast<std::size_t>(state.range(0)), 20);
  FtsaOptions options;
  options.epsilon = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ftsa_schedule(w->costs(), options).lower_bound());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Ftsa)->Arg(125)->Arg(500)->Arg(2000)->Complexity();

void BM_McFtsaGreedy(benchmark::State& state) {
  const auto w = bench_workload(static_cast<std::size_t>(state.range(0)), 20);
  McFtsaOptions options;
  options.epsilon = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mc_ftsa_schedule(w->costs(), options).lower_bound());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_McFtsaGreedy)->Arg(125)->Arg(500)->Arg(2000)->Complexity();

void BM_Ftbar(benchmark::State& state) {
  const auto w = bench_workload(static_cast<std::size_t>(state.range(0)), 20);
  FtbarOptions options;
  options.npf = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ftbar_schedule(w->costs(), options).lower_bound());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Ftbar)->Arg(125)->Arg(250)->Arg(500)->Complexity();

void BM_Heft(benchmark::State& state) {
  const auto w = bench_workload(static_cast<std::size_t>(state.range(0)), 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(heft_schedule(w->costs()).lower_bound());
  }
}
BENCHMARK(BM_Heft)->Arg(125)->Arg(1000);

}  // namespace
