// Acceptance bench for the schedule-once/simulate-many sweep engine: a
// 3-scenario x 3-failure figure-1 grid is evaluated twice — grouped (one
// schedule phase per (workload, granularity, rep), all nine cells simulated
// off it) and ungrouped (the legacy path, every cell reruns all five
// scheduler passes) — results are checked bit-identical, and wall times plus
// the speedup are reported both as a table and as machine-readable
// BENCH_sweep.json, so the performance trajectory has data points CI can
// archive and diff across commits.
//
// Exit code 2 if the grouped result diverges from the ungrouped one (this
// doubles as a determinism guard), 0 otherwise; the speedup itself is
// reported, not asserted, so a loaded CI machine cannot turn noise into a
// red build.
//
// Environment overrides: FTSCHED_GRAPHS (default 4 graphs per point, small
// so CI stays fast), FTSCHED_SEED, FTSCHED_THREADS (default 0 = hardware).
// argv[1] overrides the JSON output path (default BENCH_sweep.json).
#include <fstream>
#include <iostream>
#include <string>

#include "ftsched/experiments/sweep_plan.hpp"
#include "ftsched/util/cli.hpp"
#include "ftsched/util/spec.hpp"
#include "ftsched/util/table.hpp"
#include "ftsched/util/timer.hpp"

using namespace ftsched;

namespace {

double timed_run(const SweepPlan& plan, bool group, SweepResult& out,
                 RunPlanStats* stats = nullptr) {
  OnlineStatsSink sink(plan);
  RunPlanOptions options;
  options.group = group;
  options.stats = stats;
  Stopwatch sw;
  run_plan(plan, sink, options);
  const double seconds = sw.seconds();
  out = sink.take();
  return seconds;
}

}  // namespace

int main(int argc, char** argv) {
  FigureConfig config = figure_config(1);
  config.graphs_per_point =
      static_cast<std::size_t>(env_int("FTSCHED_GRAPHS", 4));
  config.threads = static_cast<std::size_t>(env_int("FTSCHED_THREADS", 0));
  config.scenarios = {"t0", "frac:f=0.5", "uniform:hi=1"};
  config.failure_models = {"eps", "fixed:k=1", "bernoulli:p=0.3"};
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_sweep.json";

  const SweepPlan plan(config);
  const std::size_t cells = plan.workloads().size() * plan.scenarios().size() *
                            plan.failures().size();
  std::cout << "=== schedule-once/simulate-many (figure-1 grid, " << cells
            << " cells = " << plan.workloads().size() << "w x "
            << plan.scenarios().size() << "s x " << plan.failures().size()
            << "f, " << plan.granularities().size() << " granularities, "
            << config.graphs_per_point << " graphs/point, "
            << plan.size() << " instances) ===\n";

  SweepResult ungrouped;
  const double ungrouped_seconds = timed_run(plan, /*group=*/false, ungrouped);
  SweepResult grouped;
  RunPlanStats grouped_stats;
  const double grouped_seconds =
      timed_run(plan, /*group=*/true, grouped, &grouped_stats);
  const bool identical = sweep_results_identical(grouped, ungrouped);
  const double speedup =
      grouped_seconds > 0.0 ? ungrouped_seconds / grouped_seconds : 0.0;
  const auto cells_per_sec = [&](double seconds) {
    return seconds > 0.0 ? static_cast<double>(plan.size()) / seconds : 0.0;
  };

  TextTable table({"path", "schedule-phases", "wall-s", "cells/s", "speedup"});
  table.add_row({"ungrouped (legacy)",
                 std::to_string(plan.size() * 5),
                 format_double(ungrouped_seconds, 3),
                 format_double(cells_per_sec(ungrouped_seconds), 1), "1.00"});
  table.add_row({"grouped",
                 std::to_string((plan.size() / cells) * 5),
                 format_double(grouped_seconds, 3),
                 format_double(cells_per_sec(grouped_seconds), 1),
                 format_double(speedup, 2)});
  table.print(std::cout);
  std::cout << "bit-identical: " << (identical ? "yes" : "NO") << "\n";
  std::cout << "grouped dedupe: " << grouped_stats.simulations_run
            << " simulations run, " << grouped_stats.dedupe_hits
            << " served from the per-group draw cache\n";

  // Machine-readable trajectory record (locale-proof number rendering).
  std::ofstream json(json_path);
  if (!json.good()) {
    std::cout << "ERROR: cannot write " << json_path << "\n";
    return 1;
  }
  json << "{\"bench\":\"sweep_cells\",\"figure\":1"
       << ",\"workloads\":" << plan.workloads().size()
       << ",\"scenarios\":" << plan.scenarios().size()
       << ",\"failures\":" << plan.failures().size()
       << ",\"granularities\":" << plan.granularities().size()
       << ",\"graphs_per_point\":" << config.graphs_per_point
       << ",\"instances\":" << plan.size()
       << ",\"threads\":" << config.threads
       << ",\"seed\":" << config.seed
       << ",\"ungrouped_seconds\":"
       << spec_detail::render_double(ungrouped_seconds)
       << ",\"grouped_seconds\":"
       << spec_detail::render_double(grouped_seconds)
       << ",\"speedup\":" << spec_detail::render_double(speedup)
       << ",\"ungrouped_cells_per_sec\":"
       << spec_detail::render_double(cells_per_sec(ungrouped_seconds))
       << ",\"grouped_cells_per_sec\":"
       << spec_detail::render_double(cells_per_sec(grouped_seconds))
       << ",\"simulations_run\":" << grouped_stats.simulations_run
       << ",\"dedupe_hits\":" << grouped_stats.dedupe_hits
       << ",\"identical\":" << (identical ? "true" : "false") << "}\n";
  json.close();
  std::cout << "wrote " << json_path << "\n";

  if (!identical) {
    std::cout << "ERROR: grouped sweep diverged from the ungrouped path\n";
    return 2;
  }
  return 0;
}
