// Ablation: platform size.  Figure 4 shows that on a small platform (5
// processors) the crash overhead grows sharply with the number of
// failures, while on 20 processors replication absorbs crashes almost for
// free.  This bench sweeps the processor count explicitly.
#include <iostream>

#include "ftsched/core/scheduler.hpp"
#include "ftsched/metrics/metrics.hpp"
#include "ftsched/platform/failure.hpp"
#include "ftsched/sim/event_sim.hpp"
#include "ftsched/util/cli.hpp"
#include "ftsched/util/stats.hpp"
#include "ftsched/util/table.hpp"
#include "ftsched/workload/paper_workload.hpp"

using namespace ftsched;

int main() {
  const auto graphs = static_cast<std::size_t>(env_int("FTSCHED_GRAPHS", 30));
  const auto seed = static_cast<std::uint64_t>(env_int("FTSCHED_SEED", 42));
  const std::size_t epsilon = 2;

  std::cout << "=== Ablation: processor count (epsilon=2, " << graphs
            << " graphs; overhead % of FTSA with 2 crashes vs fault-free "
               "FTSA) ===\n";
  TextTable table({"procs", "FaultFree", "FTSA-lb", "FTSA-2crash",
                   "overhead-lb%", "overhead-crash%"});
  for (std::size_t procs : {4u, 5u, 8u, 12u, 20u, 32u}) {
    OnlineStats ff;
    OnlineStats lb;
    OnlineStats crash;
    OnlineStats oh_lb;
    OnlineStats oh_crash;
    Rng root(seed);
    for (std::size_t i = 0; i < graphs; ++i) {
      Rng rng = root.split();
      PaperWorkloadParams params;
      params.proc_count = procs;
      params.granularity = 1.0;
      const auto w = make_paper_workload(rng, params);
      const std::string s = std::to_string(rng());
      const auto base =
          make_scheduler("ftsa:eps=0,seed=" + s)->run(w->costs());
      const auto replicated =
          make_scheduler("ftsa:eps=" + std::to_string(epsilon) + ",seed=" + s)
              ->run(w->costs());
      FailureScenario scenario;
      for (std::size_t v :
           rng.sample_without_replacement(procs, epsilon)) {
        scenario.add(ProcId{v}, 0.0);
      }
      const SimulationResult r = simulate(replicated, scenario);
      auto norm = [&w](double latency) {
        return normalized_latency(latency, w->costs());
      };
      ff.add(norm(base.lower_bound()));
      lb.add(norm(replicated.lower_bound()));
      crash.add(norm(r.latency));
      oh_lb.add(overhead_percent(replicated.lower_bound(), base.lower_bound()));
      oh_crash.add(overhead_percent(r.latency, base.lower_bound()));
    }
    table.add_numeric_row(std::to_string(procs),
                          {ff.mean(), lb.mean(), crash.mean(), oh_lb.mean(),
                           oh_crash.mean()});
  }
  table.print(std::cout);
  std::cout << "csv:\n" << table.csv();
  return 0;
}
