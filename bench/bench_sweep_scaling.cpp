// Benchmark guard for the parallel sweep engine: the same granularity
// sweep plan is run serially and on growing thread counts, wall times and
// speedups are reported, and every parallel result is checked to be
// bit-identical to the serial one (the determinism contract of the
// plan/execute pipeline's per-instance RNG streams and ordered sample
// delivery).  Exit code 2 if any result diverges, so CI can run this as a
// guard.
//
// Environment overrides: FTSCHED_GRAPHS (default 8 graphs per point,
// small so the guard stays fast), FTSCHED_SEED, FTSCHED_MAXTHREADS.
#include <algorithm>
#include <iostream>
#include <thread>
#include <vector>

#include "ftsched/experiments/sweep_plan.hpp"
#include "ftsched/util/cli.hpp"
#include "ftsched/util/table.hpp"
#include "ftsched/util/timer.hpp"

using namespace ftsched;

int main() {
  FigureConfig config = figure_config(1);
  config.graphs_per_point =
      static_cast<std::size_t>(env_int("FTSCHED_GRAPHS", 8));

  const auto hw = static_cast<std::size_t>(
      std::max(1u, std::thread::hardware_concurrency()));
  const auto max_threads = static_cast<std::size_t>(
      env_int("FTSCHED_MAXTHREADS", static_cast<std::int64_t>(hw)));
  std::vector<std::size_t> thread_counts{1};
  for (std::size_t t = 2; t < max_threads; t *= 2) thread_counts.push_back(t);
  if (max_threads > 1) thread_counts.push_back(max_threads);

  std::cout << "=== run_plan scaling (figure-1 sweep, "
            << config.graphs_per_point << " graphs/point, "
            << config.granularities.size() << " granularities, hardware "
            << hw << " threads) ===\n";

  TextTable table({"threads", "wall-s", "speedup", "identical-to-serial"});
  SweepResult reference;
  double serial_seconds = 0.0;
  bool all_identical = true;
  for (const std::size_t threads : thread_counts) {
    config.threads = threads;
    const SweepPlan plan(config);
    OnlineStatsSink sink(plan);
    Stopwatch sw;
    run_plan(plan, sink);
    const double seconds = sw.seconds();
    const SweepResult result = sink.take();
    bool identical = true;
    if (threads == 1) {
      reference = result;
      serial_seconds = seconds;
    } else {
      identical = sweep_results_identical(reference, result);
      all_identical = all_identical && identical;
    }
    table.add_row({std::to_string(threads), format_double(seconds, 3),
                   format_double(serial_seconds / seconds, 2),
                   identical ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::cout << "csv:\n" << table.csv();
  if (!all_identical) {
    std::cout << "ERROR: parallel sweep diverged from the serial result\n";
    return 2;
  }
  return 0;
}
