// Ablation: contention-AWARE scheduling (the paper's §7 future work as a
// scheduler feature, not just an execution model).  Schedules computed
// with and without send-port awareness are executed under the matching
// one-port simulator.
//
// Spoiler (see EXPERIMENTS.md): this is a NEGATIVE result at paper scale.
// Port waits are source-side and nearly destination-independent, so the
// awareness barely changes placements — it mostly inflates the planned
// start times, and the resulting per-processor orders execute *worse*
// under one-port contention than the optimistic plan.  The effective
// lever against contention is the message volume itself (MC-FTSA), which
// is exactly what the paper's conclusion anticipates.
#include <iostream>

#include "ftsched/core/scheduler.hpp"
#include "ftsched/metrics/metrics.hpp"
#include "ftsched/sim/event_sim.hpp"
#include "ftsched/util/cli.hpp"
#include "ftsched/util/stats.hpp"
#include "ftsched/util/table.hpp"
#include "ftsched/workload/paper_workload.hpp"

using namespace ftsched;

int main() {
  const auto graphs = static_cast<std::size_t>(env_int("FTSCHED_GRAPHS", 30));
  const auto seed = static_cast<std::uint64_t>(env_int("FTSCHED_SEED", 42));
  const std::size_t epsilon = 2;

  std::cout << "=== Ablation: contention-aware scheduling (epsilon=2, m=20, "
            << graphs
            << " graphs; normalized latency of one-port execution) ===\n";
  TextTable table({"algorithm", "naive-oneport", "aware-oneport",
                   "improvement%", "naive-free", "aware-free"});
  for (const bool mc : {false, true}) {
    OnlineStats naive_oneport;
    OnlineStats aware_oneport;
    OnlineStats naive_free;
    OnlineStats aware_free;
    Rng root(seed);
    for (std::size_t i = 0; i < graphs; ++i) {
      Rng rng = root.split();
      PaperWorkloadParams params;
      params.granularity = 0.5;  // comm-heavy: contention matters most
      const auto w = make_paper_workload(rng, params);
      const std::string s = std::to_string(rng());
      auto make_schedule = [&](bool aware) {
        const std::string spec = std::string(mc ? "mc-ftsa" : "ftsa") +
                                 ":eps=" + std::to_string(epsilon) +
                                 ",seed=" + s + (aware ? ",ports=1" : "");
        return make_scheduler(spec)->run(w->costs());
      };
      SimulationOptions oneport;
      oneport.comm.kind = CommModelKind::kOnePort;
      const auto naive = make_schedule(false);
      const auto aware = make_schedule(true);
      auto norm = [&w](double latency) {
        return normalized_latency(latency, w->costs());
      };
      naive_oneport.add(norm(simulate(naive, {}, oneport).latency));
      aware_oneport.add(norm(simulate(aware, {}, oneport).latency));
      naive_free.add(norm(simulate(naive).latency));
      aware_free.add(norm(simulate(aware).latency));
    }
    table.add_numeric_row(
        mc ? "MC-FTSA" : "FTSA",
        {naive_oneport.mean(), aware_oneport.mean(),
         100.0 * (naive_oneport.mean() - aware_oneport.mean()) /
             naive_oneport.mean(),
         naive_free.mean(), aware_free.mean()});
  }
  table.print(std::cout);
  std::cout << "csv:\n" << table.csv();
  std::cout << "(negative improvement = the aware schedule executes slower; "
               "see the header comment and EXPERIMENTS.md)\n";
  return 0;
}
