// Ablation: the MC-FTSA end-to-end fault-tolerance repair (DESIGN.md §2).
//
// The paper's Prop. 4.3 guarantees only per-edge channel survival; our
// exhaustive validator showed that the paper-faithful selection can lose a
// task to a SINGLE crash.  This bench quantifies (a) how often random
// ε-crash scenarios actually break paper-mode schedules, and (b) what the
// repair costs in messages and latency bounds.
#include <iostream>

#include "ftsched/core/scheduler.hpp"
#include "ftsched/metrics/metrics.hpp"
#include "ftsched/platform/failure.hpp"
#include "ftsched/sim/event_sim.hpp"
#include "ftsched/util/cli.hpp"
#include "ftsched/util/stats.hpp"
#include "ftsched/util/table.hpp"
#include "ftsched/workload/paper_workload.hpp"

using namespace ftsched;

int main() {
  const auto graphs = static_cast<std::size_t>(env_int("FTSCHED_GRAPHS", 30));
  const auto seed = static_cast<std::uint64_t>(env_int("FTSCHED_SEED", 42));
  const std::size_t trials = 50;  // crash scenarios per schedule

  std::cout << "=== Ablation: MC-FTSA soundness repair (paper-faithful vs "
               "enforced; "
            << graphs << " graphs, m=20, " << trials
            << " random crash scenarios each) ===\n";
  TextTable table({"epsilon", "mode", "lower", "upper", "interproc-msgs",
                   "repair-rate", "crash-failure-rate"});
  for (std::size_t epsilon : {1u, 2u, 5u}) {
    for (const bool enforce : {false, true}) {
      OnlineStats lower;
      OnlineStats upper;
      OnlineStats msgs;
      OnlineStats repair;
      OnlineStats failures;
      Rng root(seed);
      for (std::size_t i = 0; i < graphs; ++i) {
        Rng rng = root.split();
        PaperWorkloadParams params;
        params.granularity = 1.0;
        const auto w = make_paper_workload(rng, params);
        const auto s =
            make_scheduler("mc-ftsa:eps=" + std::to_string(epsilon) +
                           ",seed=" + std::to_string(rng()) +
                           ",enforce=" + (enforce ? "1" : "0"))
                ->run(w->costs());
        lower.add(normalized_latency(s.lower_bound(), w->costs()));
        upper.add(normalized_latency(s.upper_bound(), w->costs()));
        msgs.add(static_cast<double>(s.interproc_message_count()));
        repair.add(static_cast<double>(s.repaired_tasks().size()) /
                   static_cast<double>(w->graph().task_count()));
        std::size_t failed = 0;
        for (std::size_t trial = 0; trial < trials; ++trial) {
          const FailureScenario scenario =
              random_crashes(rng, w->platform().proc_count(), epsilon);
          if (!simulate(s, scenario).success) ++failed;
        }
        failures.add(static_cast<double>(failed) /
                     static_cast<double>(trials));
      }
      table.add_numeric_row(
          std::to_string(epsilon) + " " +
              (enforce ? "enforced" : "paper"),
          {lower.mean(), upper.mean(), msgs.mean(), repair.mean(),
           failures.mean()});
    }
  }
  table.print(std::cout);
  std::cout << "csv:\n" << table.csv();
  std::cout << "(crash-failure-rate must be 0 in enforced mode; a non-zero\n"
               " rate in paper mode is the Prop.-4.3 soundness gap.)\n";
  return 0;
}
