// Ablation: fault-free baselines.  How do FTSA(ε=0) and FTBAR(Npf=0)
// compare against the classic heterogeneous list schedulers HEFT
// (insertion-based EFT) and CPOP (critical path on a processor)?
//
// This isolates the quality of the paper's processor-selection rule from
// the replication machinery.
#include <iostream>

#include "ftsched/core/scheduler.hpp"
#include "ftsched/metrics/metrics.hpp"
#include "ftsched/util/cli.hpp"
#include "ftsched/util/stats.hpp"
#include "ftsched/util/table.hpp"
#include "ftsched/workload/paper_workload.hpp"

using namespace ftsched;

int main() {
  const auto graphs = static_cast<std::size_t>(env_int("FTSCHED_GRAPHS", 30));
  const auto seed = static_cast<std::uint64_t>(env_int("FTSCHED_SEED", 42));

  std::cout << "=== Ablation: fault-free baselines (normalized latency; "
            << graphs << " graphs, m=20) ===\n";
  TextTable table(
      {"granularity", "FTSA(0)", "FTBAR(0)", "HEFT", "HEFT-noins", "CPOP"});
  for (double granularity : {0.2, 0.6, 1.0, 1.4, 2.0}) {
    OnlineStats stats[5];
    Rng root(seed);
    for (std::size_t i = 0; i < graphs; ++i) {
      Rng rng = root.split();
      PaperWorkloadParams params;
      params.granularity = granularity;
      const auto w = make_paper_workload(rng, params);
      const std::string s = std::to_string(rng());
      auto norm = [&w](double latency) {
        return normalized_latency(latency, w->costs());
      };
      const char* specs[5] = {"ftsa:eps=0", "ftbar:npf=0", "heft",
                              "heft:insertion=0", "cpop"};
      for (int a = 0; a < 5; ++a) {
        const auto schedule =
            make_scheduler(specs[a], {{"seed", s}})->run(w->costs());
        stats[a].add(norm(schedule.lower_bound()));
      }
    }
    table.add_numeric_row(format_double(granularity, 1),
                          {stats[0].mean(), stats[1].mean(), stats[2].mean(),
                           stats[3].mean(), stats[4].mean()});
  }
  table.print(std::cout);
  std::cout << "csv:\n" << table.csv();
  return 0;
}
