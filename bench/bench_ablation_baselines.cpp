// Ablation: fault-free baselines.  How do FTSA(ε=0) and FTBAR(Npf=0)
// compare against the classic heterogeneous list schedulers HEFT
// (insertion-based EFT) and CPOP (critical path on a processor)?
//
// This isolates the quality of the paper's processor-selection rule from
// the replication machinery.
#include <iostream>

#include "ftsched/core/cpop.hpp"
#include "ftsched/core/ftbar.hpp"
#include "ftsched/core/ftsa.hpp"
#include "ftsched/core/heft.hpp"
#include "ftsched/metrics/metrics.hpp"
#include "ftsched/util/cli.hpp"
#include "ftsched/util/stats.hpp"
#include "ftsched/util/table.hpp"
#include "ftsched/workload/paper_workload.hpp"

using namespace ftsched;

int main() {
  const auto graphs = static_cast<std::size_t>(env_int("FTSCHED_GRAPHS", 30));
  const auto seed = static_cast<std::uint64_t>(env_int("FTSCHED_SEED", 42));

  std::cout << "=== Ablation: fault-free baselines (normalized latency; "
            << graphs << " graphs, m=20) ===\n";
  TextTable table(
      {"granularity", "FTSA(0)", "FTBAR(0)", "HEFT", "HEFT-noins", "CPOP"});
  for (double granularity : {0.2, 0.6, 1.0, 1.4, 2.0}) {
    OnlineStats stats[5];
    Rng root(seed);
    for (std::size_t i = 0; i < graphs; ++i) {
      Rng rng = root.split();
      PaperWorkloadParams params;
      params.granularity = granularity;
      const auto w = make_paper_workload(rng, params);
      const std::uint64_t s = rng();
      auto norm = [&w](double latency) {
        return normalized_latency(latency, w->costs());
      };
      FtsaOptions fo;
      fo.epsilon = 0;
      fo.seed = s;
      stats[0].add(norm(ftsa_schedule(w->costs(), fo).lower_bound()));
      FtbarOptions bo;
      bo.npf = 0;
      bo.seed = s;
      stats[1].add(norm(ftbar_schedule(w->costs(), bo).lower_bound()));
      HeftOptions insertion;
      insertion.insertion = true;
      stats[2].add(norm(heft_schedule(w->costs(), insertion).lower_bound()));
      HeftOptions append;
      append.insertion = false;
      stats[3].add(norm(heft_schedule(w->costs(), append).lower_bound()));
      stats[4].add(norm(cpop_schedule(w->costs()).lower_bound()));
    }
    table.add_numeric_row(format_double(granularity, 1),
                          {stats[0].mean(), stats[1].mean(), stats[2].mean(),
                           stats[3].mean(), stats[4].mean()});
  }
  table.print(std::cout);
  std::cout << "csv:\n" << table.csv();
  return 0;
}
