// Ablation: FTSA free-task priority — the paper's criticalness (tℓ + bℓ)
// vs static bottom level only vs random order.  Quantifies how much of
// FTSA's quality comes from the §4.1 priority definition.
#include <iostream>

#include "ftsched/core/scheduler.hpp"
#include "ftsched/metrics/metrics.hpp"
#include "ftsched/util/cli.hpp"
#include "ftsched/util/stats.hpp"
#include "ftsched/util/table.hpp"
#include "ftsched/workload/paper_workload.hpp"

using namespace ftsched;

int main() {
  const auto graphs = static_cast<std::size_t>(env_int("FTSCHED_GRAPHS", 30));
  const auto seed = static_cast<std::uint64_t>(env_int("FTSCHED_SEED", 42));

  std::cout << "=== Ablation: FTSA priority function (criticalness vs "
               "bottom-level vs random; "
            << graphs << " graphs, m=20) ===\n";
  TextTable table({"epsilon", "granularity", "criticalness", "bottom-level",
                   "random"});
  for (std::size_t epsilon : {0u, 1u, 2u}) {
    for (double granularity : {0.4, 1.0, 2.0}) {
      OnlineStats by_mode[3];
      Rng root(seed);
      for (std::size_t i = 0; i < graphs; ++i) {
        Rng rng = root.split();
        PaperWorkloadParams params;
        params.granularity = granularity;
        const auto w = make_paper_workload(rng, params);
        const std::string tie_seed = std::to_string(rng());
        const char* modes[3] = {"crit", "bl", "random"};
        for (int mode = 0; mode < 3; ++mode) {
          const auto s =
              make_scheduler("ftsa:eps=" + std::to_string(epsilon) + ",seed=" +
                             tie_seed + ",prio=" + modes[mode])
                  ->run(w->costs());
          by_mode[mode].add(normalized_latency(s.lower_bound(), w->costs()));
        }
      }
      table.add_numeric_row(
          std::to_string(epsilon) + " " + format_double(granularity, 1),
          {by_mode[0].mean(), by_mode[1].mean(), by_mode[2].mean()});
    }
  }
  table.print(std::cout);
  std::cout << "csv:\n" << table.csv();
  return 0;
}
