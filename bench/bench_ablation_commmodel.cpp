// Ablation: communication contention models (the paper's §7 future work).
//
// The schedules are computed under the paper's contention-free model and
// then *executed* under contention-free, bounded multi-port (2 ports) and
// one-port send models.  MC-FTSA sends ~e(ε+1) messages instead of FTSA's
// ~e(ε+1)², so its achieved latency should degrade least — exactly the
// prediction the paper's conclusion makes.
#include <iostream>

#include "ftsched/core/scheduler.hpp"
#include "ftsched/metrics/metrics.hpp"
#include "ftsched/sim/event_sim.hpp"
#include "ftsched/util/cli.hpp"
#include "ftsched/util/stats.hpp"
#include "ftsched/util/table.hpp"
#include "ftsched/workload/paper_workload.hpp"

using namespace ftsched;

int main() {
  const auto graphs = static_cast<std::size_t>(env_int("FTSCHED_GRAPHS", 30));
  const auto seed = static_cast<std::uint64_t>(env_int("FTSCHED_SEED", 42));
  const std::size_t epsilon = 2;

  std::cout << "=== Ablation: failure-free execution under contention "
               "models (epsilon=2, "
            << graphs << " graphs, m=20) ===\n";
  TextTable table({"algorithm", "contention-free", "multiport-2", "one-port",
                   "one-port-slowdown"});

  const char* names[3] = {"FTSA", "MC-FTSA", "FTBAR"};
  OnlineStats latency[3][3];
  Rng root(seed);
  for (std::size_t i = 0; i < graphs; ++i) {
    Rng rng = root.split();
    PaperWorkloadParams params;
    params.granularity = 1.0;
    const auto w = make_paper_workload(rng, params);
    const std::vector<std::pair<std::string, std::string>> defaults{
        {"eps", std::to_string(epsilon)}, {"seed", std::to_string(rng())}};
    const ReplicatedSchedule schedules[3] = {
        make_scheduler("ftsa", defaults)->run(w->costs()),
        make_scheduler("mc-ftsa", defaults)->run(w->costs()),
        make_scheduler("ftbar", defaults)->run(w->costs())};
    const CommModelKind kinds[3] = {CommModelKind::kContentionFree,
                                    CommModelKind::kBoundedMultiPort,
                                    CommModelKind::kOnePort};
    for (int a = 0; a < 3; ++a) {
      for (int k = 0; k < 3; ++k) {
        SimulationOptions options;
        options.comm.kind = kinds[k];
        options.comm.ports = 2;
        const SimulationResult r = simulate(schedules[a], {}, options);
        latency[a][k].add(normalized_latency(r.latency, w->costs()));
      }
    }
  }
  for (int a = 0; a < 3; ++a) {
    table.add_numeric_row(
        names[a],
        {latency[a][0].mean(), latency[a][1].mean(), latency[a][2].mean(),
         latency[a][2].mean() / latency[a][0].mean()});
  }
  table.print(std::cout);
  std::cout << "csv:\n" << table.csv();
  return 0;
}
