// Reproduces paper Table 1: running times (seconds) of FTSA, MC-FTSA and
// FTBAR for 100..5000 tasks on 50 processors with ε = 5.
//
// The reproduced claim is the complexity *gap* (FTSA/MC-FTSA near-linear
// vs FTBAR cubic), not the absolute 2007-era timings.  FTBAR rows above
// 2000 tasks are skipped by default (the paper itself reports 465 s at
// 5000); set FTSCHED_FULL=1 to run them.  FTSCHED_REPS / FTSCHED_SEED
// override repetitions and seeding.
#include <iostream>

#include "ftsched/experiments/figures.hpp"

int main() {
  ftsched::run_table1(std::cout, ftsched::table1_config());
  return 0;
}
