// Ablation: static schedules vs online rescheduling policies under
// repair/restart failure dynamics.  The policy axis pairs every cell on
// identical workload instances and failure draws (the policy index is not
// part of the RNG stream), so each row of one failure law differs *only*
// in how the run reacts to the drawn crashes: `none` executes the static
// schedule as-is, `requeue-heft` / `reactive-ftsa` remap not-yet-started
// replicas onto survivors (and repaired processors) at every event.
//
// Under a plain `bernoulli:` law crashes are permanent and a move can only
// shuffle work between survivors; under `repair:` the reactive policies
// can park work through an outage and reclaim the repaired processor,
// which is where they must demonstrably beat the static baseline — the
// bench exits 2 when they don't, so CI catches a regression in the online
// path's usefulness, not just its determinism.
#include <iostream>
#include <string>
#include <vector>

#include "ftsched/experiments/figures.hpp"
#include "ftsched/experiments/runner.hpp"
#include "ftsched/util/cli.hpp"
#include "ftsched/util/table.hpp"

using namespace ftsched;

int main() {
  const auto graphs = static_cast<std::size_t>(env_int("FTSCHED_GRAPHS", 30));

  FigureConfig config = figure_config(2);  // epsilon = 2, m = 20
  config.granularities = {1.0};
  config.extra_crash_counts.clear();
  config.graphs_per_point = graphs;
  config.failure_models = {"bernoulli:p=0.2", "repair:p=0.2,mttr=0.5"};
  config.policies = {"none", "requeue-heft", "reactive-ftsa"};
  const SweepResult sweep = run_sweep(config);

  std::cout << "=== Ablation: rescheduling policies (epsilon="
            << config.epsilon << ", m=" << config.proc_count << ", "
            << graphs
            << " graphs; identical crash draws in every policy row) ===\n";
  TextTable table({"failure model / policy", "FTSA success",
                   "FTSA latency|ok", "FTSA moves", "MC-FTSA success"});
  auto stats_of = [&](const std::string& series, const std::string& failure,
                      const std::string& policy) {
    // A cell where no run survived never emits its survivor series at all;
    // report the empty accumulator instead of throwing.
    const auto it = sweep.series.find(
        sweep_series_name(sweep, series, "paper", "t0", failure, policy));
    return it == sweep.series.end() ? OnlineStats{} : it->second[0];
  };
  auto success_of = [&](const std::string& failure,
                        const std::string& policy) {
    return stats_of("FTSA-Success", failure, policy).mean();
  };
  for (const std::string& failure : sweep.failures) {
    for (const std::string& policy : sweep.policies) {
      const OnlineStats latency = stats_of("FTSA-DrawnCrash", failure, policy);
      const OnlineStats moves = stats_of("FTSA-Moves", failure, policy);
      table.add_numeric_row(
          failure + " / " + policy,
          {success_of(failure, policy),
           latency.count() ? latency.mean() : 0.0,
           moves.count() ? moves.mean() : 0.0,
           stats_of("MC-FTSA-Success", failure, policy).mean()});
    }
  }
  table.print(std::cout);
  std::cout << "csv:\n" << table.csv();
  std::cout << "(success = completed runs / all runs per cell; latency is "
               "normalized and averaged\n over the survivors only; moves = "
               "mean replica remaps the policy applied per run —\n 0 for "
               "`none`, which routes through the unchanged static path)\n";

  // The acceptance gate: with repairs in the timeline, reactive
  // rescheduling must recover strictly more runs than the static schedule.
  const double static_ok = success_of("repair:p=0.2,mttr=0.5", "none");
  const double reactive_ok =
      success_of("repair:p=0.2,mttr=0.5", "requeue-heft");
  std::cout << "gate: repair+requeue-heft success " << reactive_ok
            << " vs repair+none " << static_ok << "\n";
  if (!(reactive_ok > static_ok)) {
    std::cerr << "FAIL: requeue-heft did not beat the static baseline under "
                 "the repair law\n";
    return 2;
  }
  return 0;
}
