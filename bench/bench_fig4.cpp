// Reproduces paper Figure 4 (5 processors, ε = 2): FTSA latency and
// overhead with 0, 1 and 2 crashes; see bench_fig1.cpp.
#include <iostream>

#include "ftsched/experiments/figures.hpp"

int main() {
  ftsched::run_figure(std::cout, 4);
  return 0;
}
