// Ablation: crash-time sensitivity.  The paper's crash experiments kill
// processors at t = 0 (the worst case).  Here ε processors crash at a
// fraction f of the schedule's failure-free latency, f swept over [0, 1.2]:
// late crashes should cost almost nothing because the replicas that matter
// have already completed.
#include <iostream>

#include "ftsched/core/scheduler.hpp"
#include "ftsched/metrics/metrics.hpp"
#include "ftsched/platform/failure.hpp"
#include "ftsched/sim/event_sim.hpp"
#include "ftsched/util/cli.hpp"
#include "ftsched/util/stats.hpp"
#include "ftsched/util/table.hpp"
#include "ftsched/workload/paper_workload.hpp"

using namespace ftsched;

int main() {
  const auto graphs = static_cast<std::size_t>(env_int("FTSCHED_GRAPHS", 30));
  const auto seed = static_cast<std::uint64_t>(env_int("FTSCHED_SEED", 42));
  const std::size_t epsilon = 2;

  std::cout << "=== Ablation: crash-time sensitivity (epsilon=2, m=20, "
            << graphs << " graphs; latency overhead % vs crash instant) ===\n";
  TextTable table({"crash-frac", "FTSA-overhead%", "MC-FTSA-overhead%"});
  for (double frac : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0, 1.2}) {
    OnlineStats ftsa_oh;
    OnlineStats mc_oh;
    Rng root(seed);
    for (std::size_t i = 0; i < graphs; ++i) {
      Rng rng = root.split();
      PaperWorkloadParams params;
      params.granularity = 1.0;
      const auto w = make_paper_workload(rng, params);
      const std::vector<std::pair<std::string, std::string>> defaults{
          {"eps", std::to_string(epsilon)}, {"seed", std::to_string(rng())}};
      const auto ftsa = make_scheduler("ftsa", defaults)->run(w->costs());
      const auto mc = make_scheduler("mc-ftsa", defaults)->run(w->costs());
      const auto victims =
          rng.sample_without_replacement(w->platform().proc_count(), epsilon);
      auto run = [&](const ReplicatedSchedule& schedule) {
        FailureScenario scenario;
        for (std::size_t v : victims) {
          scenario.add(ProcId{v}, frac * schedule.lower_bound());
        }
        return simulate(schedule, scenario).latency;
      };
      ftsa_oh.add(overhead_percent(run(ftsa), ftsa.lower_bound()));
      mc_oh.add(overhead_percent(run(mc), mc.lower_bound()));
    }
    table.add_numeric_row(format_double(frac, 1),
                          {ftsa_oh.mean(), mc_oh.mean()});
  }
  table.print(std::cout);
  std::cout << "csv:\n" << table.csv();
  std::cout << "(overhead relative to each algorithm's own failure-free "
               "latency M*; f >= 1 crashes after completion)\n";
  return 0;
}
