// Ablation: crash-time sensitivity.  The paper's crash experiments kill
// processors at t = 0 (the worst case).  Here the crash instant is a sweep
// *scenario dimension* (CrashTimeLaw specs): ε processors crash at a
// fraction f of the schedule's failure-free latency for f in [0, 1.2],
// plus the probabilistic laws (uniform and exponential crash instants).
// Late crashes should cost almost nothing because the replicas that matter
// have already completed.
//
// Every scenario faces the same workload instances and crash victims
// (run_sweep pairs scenario cells on identical RNG streams), so the rows
// differ only in the crash instants.
#include <iostream>
#include <string>
#include <vector>

#include "ftsched/experiments/figures.hpp"
#include "ftsched/experiments/runner.hpp"
#include "ftsched/util/cli.hpp"
#include "ftsched/util/table.hpp"

using namespace ftsched;

int main() {
  const auto graphs = static_cast<std::size_t>(env_int("FTSCHED_GRAPHS", 30));

  FigureConfig config = figure_config(2);  // epsilon = 2, m = 20
  config.granularities = {1.0};
  config.extra_crash_counts.clear();
  config.graphs_per_point = graphs;
  config.scenarios = {"t0",          "frac:f=0.2",   "frac:f=0.4",
                      "frac:f=0.6",  "frac:f=0.8",   "frac:f=1.0",
                      "frac:f=1.2",  "uniform:hi=1", "exp:mean=0.5"};
  const SweepResult sweep = run_sweep(config);

  std::cout << "=== Ablation: crash-time sensitivity (epsilon="
            << config.epsilon << ", m=" << config.proc_count << ", " << graphs
            << " graphs; overhead % vs each algorithm's own M*, crash "
               "instants per CrashTimeLaw) ===\n";
  TextTable table({"scenario", "FTSA-overhead%", "MC-FTSA-overhead%"});
  const std::string eps = std::to_string(config.epsilon);
  // Overhead anchored to each algorithm's *own* failure-free latency (the
  // sweep's OH- series anchor to FTSA*, which would bake MC-FTSA's base
  // overhead into every row and hide the crash-time signal).  Computed
  // from the cell means rather than per-instance ratios.
  auto mean_of = [&](const std::string& series, const std::string& scenario) {
    return sweep.series
        .at(sweep_series_name(sweep, series, "paper", scenario))[0]
        .mean();
  };
  for (const std::string& scenario : sweep.scenarios) {
    auto overhead = [&](const std::string& algo) {
      return 100.0 * (mean_of(algo + "-" + eps + "Crash", scenario) /
                          mean_of(algo + "-LowerBound", scenario) -
                      1.0);
    };
    table.add_numeric_row(scenario, {overhead("FTSA"), overhead("MC-FTSA")});
  }
  table.print(std::cout);
  std::cout << "csv:\n" << table.csv();
  std::cout << "(overhead relative to each algorithm's own failure-free "
               "latency M*; frac:f>=1 crashes after completion, so those "
               "rows read ~0%)\n";
  return 0;
}
