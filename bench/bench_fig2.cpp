// Reproduces paper Figure 2 (ε = 2, 20 processors); see bench_fig1.cpp.
#include <iostream>

#include "ftsched/experiments/figures.hpp"

int main() {
  ftsched::run_figure(std::cout, 2);
  return 0;
}
