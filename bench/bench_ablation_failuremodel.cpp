// Ablation: graceful degradation under failure-model laws.  The paper
// fixes the crash count at ε and draws victims uniformly; here the count
// and victim laws are a sweep *failure dimension* (FailureModel specs):
// fixed counts pushed past ε, per-processor Bernoulli crashes whose
// Binomial count exceeds ε with growing probability, and correlated
// whole-rack failures over fault domains.
//
// Every failure cell faces the same workload instances (run_sweep pairs
// cells on identical RNG streams), so the rows differ only in the injected
// failures.  Past ε nothing is guaranteed: the table reports the fraction
// of runs that still completed (the <algo>-Success cell mean) and the
// latency over the survivors.
#include <iostream>
#include <string>
#include <vector>

#include "ftsched/experiments/figures.hpp"
#include "ftsched/experiments/runner.hpp"
#include "ftsched/util/cli.hpp"
#include "ftsched/util/table.hpp"

using namespace ftsched;

int main() {
  const auto graphs = static_cast<std::size_t>(env_int("FTSCHED_GRAPHS", 30));

  FigureConfig config = figure_config(2);  // epsilon = 2, m = 20
  config.granularities = {1.0};
  config.extra_crash_counts.clear();
  config.graphs_per_point = graphs;
  config.failure_models = {
      "eps",
      "fixed:k=1",         "fixed:k=4",          "fixed:k=8",
      "bernoulli:p=0.05",  "bernoulli:p=0.1",    "bernoulli:p=0.2",
      "bernoulli:p=0.4",
      "domain:size=2",     "domain:size=4",
      "fixed:k=4,domain=2", "bernoulli:p=0.2,domain=4",
  };
  const SweepResult sweep = run_sweep(config);

  std::cout << "=== Ablation: failure-model laws (epsilon=" << config.epsilon
            << ", m=" << config.proc_count << ", " << graphs
            << " graphs; counts above epsilon void the Theorem-4.1 "
               "guarantee) ===\n";
  TextTable table({"failure model", "mean crashes", "FTSA success",
                   "FTSA latency|ok", "MC-FTSA success"});
  const std::string eps = std::to_string(config.epsilon);
  auto stats_of = [&](const std::string& series, const std::string& failure) {
    // A cell where no run survived never emits its DrawnCrash series at
    // all; report the empty accumulator instead of throwing.
    const auto it = sweep.series.find(
        sweep_series_name(sweep, series, "paper", "t0", failure));
    return it == sweep.series.end() ? OnlineStats{} : it->second[0];
  };
  for (const std::string& failure : sweep.failures) {
    // The eps cell keeps the paper's exact layout: ε crashes, success
    // guaranteed, latency under the FTSA-<ε>Crash series.
    const bool is_eps = failure == "eps";
    const double drawn = is_eps ? static_cast<double>(config.epsilon)
                                : stats_of("DrawnCrashes", failure).mean();
    const double ftsa_ok =
        is_eps ? 1.0 : stats_of("FTSA-Success", failure).mean();
    const double mc_ok =
        is_eps ? 1.0 : stats_of("MC-FTSA-Success", failure).mean();
    const std::string latency_series =
        is_eps ? "FTSA-" + eps + "Crash" : "FTSA-DrawnCrash";
    const OnlineStats latency = stats_of(latency_series, failure);
    table.add_numeric_row(failure,
                          {drawn, ftsa_ok,
                           latency.count() ? latency.mean() : 0.0, mc_ok});
  }
  table.print(std::cout);
  std::cout << "csv:\n" << table.csv();
  std::cout << "(success = completed runs / all runs per cell; latency is "
               "normalized and averaged\n over the survivors only — a "
               "success fraction of 1.000 for counts <= epsilon is the\n "
               "Theorem-4.1 guarantee, also for correlated whole-domain "
               "victims)\n";
  return 0;
}
