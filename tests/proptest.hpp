// Lightweight property-based testing on top of GoogleTest.
//
// `proptest::check` runs a property over many independently-seeded RNG
// streams.  Every iteration is wrapped in a SCOPED_TRACE carrying the
// property's spec string and the exact seed, so any EXPECT/ASSERT failure
// inside the property automatically prints its counterexample and the
// one-liner that replays it:
//
//   FTSCHED_PROP_SEED=<seed> FTSCHED_PROP_ITERS=1 ./test_x --gtest_filter=...
//
// Environment knobs: FTSCHED_PROP_ITERS (iteration count; crank it up for
// a soak run), FTSCHED_PROP_SEED (base seed; iteration i runs on seed
// base + i, so replaying a single failing case is just the printed seed
// with ITERS=1).
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>

#include "ftsched/util/cli.hpp"
#include "ftsched/util/rng.hpp"

namespace ftsched::proptest {

struct PropConfig {
  std::size_t iterations = 25;
  std::uint64_t base_seed = 0x9e3779b9;
};

/// Runs `property(rng, case_seed)` once per iteration, each on a fresh
/// Rng(case_seed).  Stops early on a fatal (ASSERT_*) failure.
template <typename Property>
void check(const std::string& spec, Property&& property,
           PropConfig config = {}) {
  const auto iterations = static_cast<std::size_t>(env_int(
      "FTSCHED_PROP_ITERS", static_cast<std::int64_t>(config.iterations)));
  const auto base = static_cast<std::uint64_t>(env_int(
      "FTSCHED_PROP_SEED", static_cast<std::int64_t>(config.base_seed)));
  for (std::size_t i = 0; i < iterations; ++i) {
    const std::uint64_t case_seed = base + i;
    SCOPED_TRACE("property '" + spec +
                 "': counterexample at seed=" + std::to_string(case_seed) +
                 " (replay: FTSCHED_PROP_SEED=" + std::to_string(case_seed) +
                 " FTSCHED_PROP_ITERS=1)");
    Rng rng(case_seed);
    property(rng, case_seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace ftsched::proptest
