// Tests for the exhaustive Theorem-4.1 validator and the reliability
// estimators (§7 future-work feature).
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <tuple>

#include "ftsched/core/ftbar.hpp"
#include "ftsched/core/ftsa.hpp"
#include "ftsched/core/mc_ftsa.hpp"
#include "ftsched/metrics/reliability.hpp"
#include "ftsched/sim/validator.hpp"
#include "ftsched/util/error.hpp"
#include "ftsched/workload/paper_workload.hpp"

namespace ftsched {
namespace {

std::unique_ptr<Workload> small_workload(std::uint64_t seed,
                                         std::size_t procs = 5,
                                         std::size_t tasks = 20) {
  Rng rng(seed);
  PaperWorkloadParams params;
  params.task_min = params.task_max = tasks;
  params.proc_count = procs;
  return make_paper_workload(rng, params);
}

// Exhaustive Theorem-4.1 check over every algorithm and small ε values.
enum class Algo { kFtsa, kMcGreedy, kMcMatching, kFtbar };

using ValParam = std::tuple<std::uint64_t, std::size_t, Algo>;

class TheoremValidation : public ::testing::TestWithParam<ValParam> {};

TEST_P(TheoremValidation, EveryCrashSubsetSurvivesWithinBound) {
  const auto [seed, epsilon, algo] = GetParam();
  const auto w = small_workload(seed);
  ReplicatedSchedule s = [&]() -> ReplicatedSchedule {
    switch (algo) {
      case Algo::kFtsa:
        return ftsa_schedule(w->costs(), FtsaOptions{epsilon, seed});
      case Algo::kMcGreedy:
        return mc_ftsa_schedule(
            w->costs(), McFtsaOptions{epsilon, seed, McSelector::kGreedy});
      case Algo::kMcMatching:
        return mc_ftsa_schedule(
            w->costs(),
            McFtsaOptions{epsilon, seed, McSelector::kBinarySearchMatching});
      case Algo::kFtbar: {
        FtbarOptions o;
        o.npf = epsilon;
        o.seed = seed;
        return ftbar_schedule(w->costs(), o);
      }
    }
    throw std::logic_error("unreachable");
  }();
  const ValidationReport report = validate_fault_tolerance(s);
  EXPECT_TRUE(report.valid) << report.failure_description;
  EXPECT_GT(report.scenarios_checked, 0u);
  EXPECT_LE(report.worst_latency, s.upper_bound() * (1 + 1e-6));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TheoremValidation,
    ::testing::Combine(::testing::Values(1u, 2u, 3u),
                       ::testing::Values(1u, 2u),
                       ::testing::Values(Algo::kFtsa, Algo::kMcGreedy,
                                         Algo::kMcMatching, Algo::kFtbar)));

TEST(Validator, CountsScenarios) {
  const auto w = small_workload(4);
  const auto s = ftsa_schedule(w->costs(), FtsaOptions{2, 0});
  const ValidationReport report = validate_fault_tolerance(s);
  // C(5,0) + C(5,1) + C(5,2) = 1 + 5 + 10.
  EXPECT_EQ(report.scenarios_checked, 16u);
}

TEST(Validator, DetectsBrokenReplication) {
  // Hand-build a schedule that puts both replicas of every task on the
  // same processor pair in a way that violates Prop. 4.1 for one task.
  const auto w = small_workload(5, /*procs=*/3, /*tasks=*/1);
  ReplicatedSchedule s(w->costs(), 1, "broken");
  const TaskId t{0u};
  const double e0 = w->costs().exec(t, ProcId{0u});
  // Both replicas on P0 (violates space exclusion).
  s.place_task(t, {Replica{ProcId{0u}, 0, e0, 0, e0},
                   Replica{ProcId{0u}, e0, 2 * e0, e0, 2 * e0}});
  const ValidationReport report = validate_fault_tolerance(s);
  EXPECT_FALSE(report.valid);
  EXPECT_FALSE(report.failure_description.empty());
}

// ---------------------------------------------------------------- reliability

TEST(Reliability, ZeroFailureProbabilityIsCertain) {
  const auto w = small_workload(6);
  const auto s = ftsa_schedule(w->costs(), FtsaOptions{1, 0});
  const std::vector<double> p(5, 0.0);
  EXPECT_DOUBLE_EQ(exact_reliability(s, p), 1.0);
  EXPECT_DOUBLE_EQ(theorem_reliability_bound(5, 1, p), 1.0);
}

TEST(Reliability, CertainFailureIsFatal) {
  const auto w = small_workload(7);
  const auto s = ftsa_schedule(w->costs(), FtsaOptions{1, 0});
  const std::vector<double> p(5, 1.0);  // all five processors die
  EXPECT_DOUBLE_EQ(exact_reliability(s, p), 0.0);
  EXPECT_DOUBLE_EQ(theorem_reliability_bound(5, 1, p), 0.0);
}

TEST(Reliability, TheoremBoundIsALowerBound) {
  const auto w = small_workload(8);
  for (std::size_t epsilon : {0u, 1u, 2u}) {
    const auto s = ftsa_schedule(w->costs(), FtsaOptions{epsilon, 0});
    const std::vector<double> p(5, 0.15);
    const double exact = exact_reliability(s, p);
    const double bound = theorem_reliability_bound(5, epsilon, p);
    EXPECT_GE(exact, bound - 1e-12);
    EXPECT_GE(exact, 0.0);
    EXPECT_LE(exact, 1.0);
  }
}

TEST(Reliability, ReplicationImprovesReliability) {
  const auto w = small_workload(9);
  const std::vector<double> p(5, 0.2);
  const double r0 =
      exact_reliability(ftsa_schedule(w->costs(), FtsaOptions{0, 0}), p);
  const double r2 =
      exact_reliability(ftsa_schedule(w->costs(), FtsaOptions{2, 0}), p);
  EXPECT_GT(r2, r0);
}

TEST(Reliability, MonteCarloTracksExact) {
  const auto w = small_workload(10);
  const auto s = ftsa_schedule(w->costs(), FtsaOptions{1, 0});
  const std::vector<double> p(5, 0.25);
  const double exact = exact_reliability(s, p);
  Rng rng(123);
  const ReliabilityEstimate estimate =
      monte_carlo_reliability(s, p, rng, 4000);
  EXPECT_NEAR(estimate.reliability, exact, 0.03);
  EXPECT_EQ(estimate.samples, 4000u);
  EXPECT_EQ(estimate.failures,
            4000u - static_cast<std::size_t>(
                        std::round(estimate.reliability * 4000.0)));
}

TEST(Reliability, PoissonBinomialBound) {
  // Heterogeneous probabilities, epsilon = 1, m = 3:
  // P[#fail <= 1] = prod(1-p) + sum_i p_i prod_{j != i}(1-p_j).
  const std::vector<double> p{0.1, 0.2, 0.3};
  const double none = 0.9 * 0.8 * 0.7;
  const double one = 0.1 * 0.8 * 0.7 + 0.9 * 0.2 * 0.7 + 0.9 * 0.8 * 0.3;
  EXPECT_NEAR(theorem_reliability_bound(3, 1, p), none + one, 1e-12);
}

TEST(Reliability, InputValidation) {
  const auto w = small_workload(11);
  const auto s = ftsa_schedule(w->costs(), FtsaOptions{1, 0});
  EXPECT_THROW((void)exact_reliability(s, {0.1}), InvalidArgument);
  std::vector<double> bad(5, 0.1);
  bad[0] = 1.5;
  EXPECT_THROW((void)exact_reliability(s, bad), InvalidArgument);
  Rng rng(1);
  EXPECT_THROW((void)monte_carlo_reliability(s, std::vector<double>(5, 0.1),
                                             rng, 0),
               InvalidArgument);
}

}  // namespace
}  // namespace ftsched
