// Online rescheduling (PR 9 tentpole): the schedule→simulate inversion must
// be a strict generalisation of the static path.  `policy=none` (or a null
// policy) over a repair-free timeline is bit-exact with run_summary(); an
// empty timeline makes *every* registered policy reproduce the static run;
// the policy sweep axis is deterministic across thread counts and the
// grouped/ungrouped paths; the shard protocol round-trips the new policy
// field and still reads pre-policy shards (no "policies" header field, no
// "pol" record field) as an implicit `none` column.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "ftsched/core/ftsa.hpp"
#include "ftsched/core/reschedule.hpp"
#include "ftsched/experiments/sweep_io.hpp"
#include "ftsched/experiments/sweep_plan.hpp"
#include "ftsched/platform/failure.hpp"
#include "ftsched/sim/event_sim.hpp"
#include "ftsched/util/error.hpp"
#include "ftsched/workload/paper_workload.hpp"
#include "proptest.hpp"

namespace ftsched {
namespace {

/// Uniform draw from {0, ..., n-1}.
std::size_t below(Rng& rng, std::size_t n) {
  return static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

std::unique_ptr<Workload> random_workload(Rng& rng, std::size_t procs,
                                          std::size_t tasks) {
  PaperWorkloadParams params;
  params.task_min = params.task_max = tasks;
  params.proc_count = procs;
  return make_paper_workload(rng, params);
}

/// A scenario of `count` random victims at random instants — beyond the
/// tolerated ε half the time, so failed runs are exercised too.
FailureScenario random_scenario(Rng& rng, std::size_t procs, double anchor) {
  const std::size_t count = below(rng, procs);
  const auto victims = rng.sample_without_replacement(procs, count);
  FailureScenario scenario;
  for (const std::size_t v : victims) {
    scenario.add(ProcId{v}, rng.uniform(0.0, 1.5) * anchor);
  }
  return scenario;
}

void expect_same(const ScheduleSimulator::OnlineSummary& got,
                 const ScheduleSimulator::Summary& want) {
  EXPECT_EQ(got.success, want.success);
  if (std::isinf(want.latency)) {
    EXPECT_TRUE(std::isinf(got.latency));
  } else {
    EXPECT_EQ(got.latency, want.latency);
  }
}

TEST(OnlinePolicy, NoneAndNullPolicyMatchStaticBitExact) {
  proptest::check(
      "run_online(crashes-only timeline, none/null) == run_summary(), bit "
      "for bit",
      [](Rng& rng, std::uint64_t) {
        const std::size_t procs = 4 + below(rng, 4);
        const auto w = random_workload(rng, procs, 12 + below(rng, 20));
        const std::size_t eps = 1 + below(rng, 2);
        const auto s = ftsa_schedule(w->costs(), FtsaOptions{eps, 0});
        ScheduleSimulator sim(s);
        const ReschedulePolicyPtr none = make_reschedule_policy("none");
        ASSERT_TRUE(none->is_noop());

        for (std::size_t i = 0; i < 8; ++i) {
          const FailureScenario scenario =
              random_scenario(rng, procs, s.lower_bound());
          const FailureTimeline timeline =
              FailureTimeline::from_scenario(scenario);
          EXPECT_FALSE(timeline.has_repairs());
          const ScheduleSimulator::Summary want = sim.run_summary(scenario);

          const auto null_run = sim.run_online(timeline, nullptr);
          expect_same(null_run, want);
          EXPECT_EQ(null_run.moves, 0u);
          EXPECT_EQ(null_run.repairs, 0u);

          const auto none_run = sim.run_online(timeline, none.get());
          expect_same(none_run, want);
          EXPECT_EQ(none_run.moves, 0u);

          // Timeline↔scenario round trip is exact.
          EXPECT_EQ(timeline.crashes_only().crash_count(),
                    scenario.crash_count());
        }
      },
      {.iterations = 10});
}

TEST(OnlinePolicy, EmptyTimelineMatchesStaticForEveryRegisteredPolicy) {
  proptest::check(
      "zero-crash timeline: every registered policy == static run",
      [](Rng& rng, std::uint64_t) {
        const std::size_t procs = 4 + below(rng, 3);
        const auto w = random_workload(rng, procs, 12 + below(rng, 12));
        const auto s = ftsa_schedule(w->costs(), FtsaOptions{1, 0});
        ScheduleSimulator sim(s);
        const ScheduleSimulator::Summary want = sim.run_summary({});
        ASSERT_TRUE(want.success);

        for (const std::string& name : PolicyRegistry::global().names()) {
          const ReschedulePolicyPtr policy = make_reschedule_policy(name);
          policy->prepare(s);
          const auto got = sim.run_online(FailureTimeline{}, policy.get());
          expect_same(got, want);
          EXPECT_EQ(got.moves, 0u) << "policy '" << name
                                   << "' moved replicas with zero crashes";
        }
      },
      {.iterations = 6});
}

/// 2 workloads x 2 scenarios x 2 failure models x 3 policies x 2
/// granularities x 2 reps = 96 instances; one failure law has repairs so
/// the reactive policies actually fire.
FigureConfig policy_grid_config() {
  FigureConfig config = figure_config(1);
  config.granularities = {0.5, 1.0};
  config.graphs_per_point = 2;
  config.proc_count = 5;
  config.workload.proc_count = 5;
  config.seed = 17;
  config.threads = 2;
  config.workloads = {"paper", "chain:size=10"};
  config.scenarios = {"t0", "frac:f=0.5"};
  config.failure_models = {"bernoulli:p=0.3", "repair:p=0.3,mttr=0.5"};
  config.policies = {"none", "requeue-heft", "reactive-ftsa"};
  return config;
}

TEST(OnlinePolicy, PolicyAxisGridShapeAndLabels) {
  const SweepPlan plan(policy_grid_config());
  EXPECT_EQ(plan.policies(),
            (std::vector<std::string>{"none", "requeue-heft",
                                      "reactive-ftsa"}));
  EXPECT_EQ(plan.grid_size(), 2u * 2u * 2u * 3u * 2u * 2u);

  // The policy index cycles fastest among the cell-ish factors and the
  // series label carries a fourth "|policy" part on multi-policy grids.
  bool saw_reactive = false;
  for (std::size_t k = 0; k < plan.size(); ++k) {
    const InstanceCoord c = plan.coord(k);
    ASSERT_LT(c.policy, 3u);
    const std::string label = plan.series_label(c, "X");
    EXPECT_NE(label.find("|" + plan.policies()[c.policy]), std::string::npos)
        << label;
    saw_reactive = saw_reactive || c.policy == 2;
  }
  EXPECT_TRUE(saw_reactive);

  // Bad policy axes are rejected at plan construction.
  FigureConfig dup = policy_grid_config();
  dup.policies = {"none", "none"};
  EXPECT_THROW((void)SweepPlan(dup), InvalidArgument);
  FigureConfig unknown = policy_grid_config();
  unknown.policies = {"meteor"};
  EXPECT_THROW((void)SweepPlan(unknown), InvalidArgument);
}

TEST(OnlinePolicy, NoneColumnOfMultiPolicyGridMatchesSinglePolicyPlan) {
  // The policy axis must not perturb the instance streams: the `none`
  // column of a 3-policy grid is the same draws — and byte for byte the
  // same samples — as the legacy single-policy plan.
  const SweepPlan plan(policy_grid_config());
  FigureConfig base_config = policy_grid_config();
  base_config.policies.clear();
  const SweepPlan base(base_config);
  ASSERT_EQ(base.grid_size() * 3u, plan.grid_size());

  constexpr std::size_t kScenarios = 2, kFailures = 2, kGrans = 2, kReps = 2;
  for (std::size_t k = 0; k < plan.size(); ++k) {
    const InstanceCoord c = plan.coord(k);
    if (c.policy != 0) continue;
    const std::size_t base_id =
        (((c.workload * kScenarios + c.scenario) * kFailures + c.failure) *
             kGrans +
         c.gran) *
            kReps +
        c.rep;
    EXPECT_EQ(plan.evaluate(c), base.evaluate(base.coord(base_id)))
        << "none column diverged from the legacy plan at id " << c.id;
  }
}

TEST(OnlinePolicy, BitIdenticalAcrossThreadCountsAndGrouping) {
  FigureConfig config = policy_grid_config();
  config.threads = 1;
  const SweepPlan serial_plan(config);
  OnlineStatsSink reference_sink(serial_plan);
  run_plan(serial_plan, reference_sink, RunPlanOptions{.group = false});
  const SweepResult reference = reference_sink.take();
  EXPECT_EQ(reference.policies, serial_plan.policies());

  for (const std::size_t threads : {1u, 2u, 3u}) {
    for (const bool group : {false, true}) {
      config.threads = threads;
      const SweepPlan plan(config);
      OnlineStatsSink sink(plan);
      run_plan(plan, sink, RunPlanOptions{.group = group});
      EXPECT_TRUE(sweep_results_identical(reference, sink.take()))
          << "threads=" << threads << " group=" << group;
    }
  }
}

/// The sink-visible outcome of a run as the JSONL shard stream.
std::string shard_bytes(const SweepPlan& plan, const RunPlanOptions& options) {
  std::stringstream out;
  ShardWriterSink sink(out, plan);
  run_plan(plan, sink, options);
  return out.str();
}

TEST(OnlinePolicy, ShardMergeRoundTripsThePolicyAxis) {
  const SweepPlan plan(policy_grid_config());
  OnlineStatsSink full_sink(plan);
  run_plan(plan, full_sink, RunPlanOptions{.group = false});
  const SweepResult reference = full_sink.take();

  std::vector<ShardFile> shards;
  for (std::size_t i = 0; i < 3; ++i) {
    std::stringstream file(
        shard_bytes(plan.shard(i, 3), RunPlanOptions{.group = true}));
    shards.push_back(read_shard(file, "p" + std::to_string(i)));
  }
  const SweepResult merged = merge_shards(shards);
  EXPECT_EQ(merged.policies, plan.policies());
  EXPECT_TRUE(sweep_results_identical(reference, merged));
}

/// Removes every occurrence of `needle`, returning how many were cut.
std::size_t strip_all(std::string& text, const std::string& needle) {
  std::size_t cut = 0;
  for (std::size_t at = text.find(needle); at != std::string::npos;
       at = text.find(needle, at)) {
    text.erase(at, needle.size());
    ++cut;
  }
  return cut;
}

TEST(OnlinePolicy, PrePolicyShardsReadAsAnImplicitNoneColumn) {
  // A shard written before the policy axis existed has no "policies"
  // header field and no "pol" record field; synthesise one by stripping
  // exactly those bytes from a fresh default-policy shard and check the
  // reader treats it as the single `none` column it always was.
  FigureConfig config = policy_grid_config();
  config.policies.clear();
  config.failure_models = {"eps", "bernoulli:p=0.3"};
  const SweepPlan plan(config);
  OnlineStatsSink full_sink(plan);
  run_plan(plan, full_sink, RunPlanOptions{.group = false});
  const SweepResult reference = full_sink.take();

  std::string legacy = shard_bytes(plan, RunPlanOptions{.group = true});
  ASSERT_EQ(strip_all(legacy, ",\"policies\":\"none\""), 1u);
  ASSERT_GT(strip_all(legacy, ",\"pol\":\"0\""), 0u);

  std::stringstream file(legacy);
  const ShardFile shard = read_shard(file, "pre-policy");
  EXPECT_EQ(shard.header.policies, std::vector<std::string>{"none"});
  EXPECT_EQ(shard.header.fingerprint(), plan.fingerprint());
  EXPECT_TRUE(sweep_results_identical(reference, merge_shards({shard})));
}

TEST(OnlinePolicy, RepairDomainBeyondProcCountIsRejected) {
  // Satellite: a repair/burst law whose failure domain exceeds the
  // platform is one whole-platform mega-domain in disguise — reject it at
  // plan construction with the spec-style message.
  const FailureModel repair =
      FailureModel::parse("repair:p=0.2,mttr=0.5,domain=8");
  EXPECT_NO_THROW(repair.validate(8));
  try {
    repair.validate(4);
    FAIL() << "validate accepted domain=8 on 4 processors";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("domain"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW(
      FailureModel::parse("burst:p=0.2,domain=9").validate(5),
      InvalidArgument);
  // Plain bernoulli has no domain notion: nothing to validate.
  EXPECT_NO_THROW(FailureModel::parse("bernoulli:p=0.2").validate(1));

  FigureConfig config = policy_grid_config();
  config.failure_models = {"repair:p=0.2,mttr=0.5,domain=8"};
  EXPECT_THROW((void)SweepPlan(config), InvalidArgument);
}

}  // namespace
}  // namespace ftsched
