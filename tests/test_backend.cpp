// Tests of the pluggable sweep execution backends (experiments/backend.hpp)
// and the POSIX subprocess helper underneath them.
//
// The load-bearing property is backend equivalence: whatever executes the
// plan — the in-process executor or fork/exec'd CLI children — the sink
// sees the same samples in the same order, bit-identical, so CSV and JSONL
// output never depend on the backend choice.  Fault injection (killed
// workers, truncated shard files, always-failing binaries) goes through
// wrapper shell scripts around the real CLI binary, whose path CMake hands
// us as FTSCHED_CLI_PATH.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "ftsched/experiments/backend.hpp"
#include "ftsched/experiments/figures.hpp"
#include "ftsched/experiments/sweep_io.hpp"
#include "ftsched/util/subprocess.hpp"

namespace ftsched {
namespace {

/// Small but fully multi-cell grid: 2 workloads x 2 scenarios x 2
/// granularities x 2 reps = 16 instances.
FigureConfig small_config() {
  FigureConfig config = figure_config(1);
  config.graphs_per_point = 2;
  config.granularities = {0.6, 1.4};
  config.proc_count = 5;
  config.workload.proc_count = 5;
  config.seed = 13;
  config.threads = 1;
  config.workloads = {"paper", "chain:size=10"};
  config.scenarios = {"t0", "frac:f=0.5"};
  return config;
}

/// Records every delivered sample for exact (bitwise) comparison.
class RecordSink final : public SweepSink {
 public:
  void on_sample(const InstanceCoord& coord,
                 const SeriesSample& sample) override {
    ids.push_back(coord.id);
    samples.push_back(sample);
  }

  std::vector<std::uint64_t> ids;
  std::vector<SeriesSample> samples;
};

RecordSink record(const SweepBackend& backend, const SweepPlan& plan,
                  bool group = true) {
  RecordSink sink;
  RunPlanOptions options;
  options.group = group;
  backend.run(plan, sink, options);
  return sink;
}

std::string csv_via(const SweepBackend& backend, const SweepPlan& plan,
                    bool group = true) {
  OnlineStatsSink sink(plan);
  RunPlanOptions options;
  options.group = group;
  backend.run(plan, sink, options);
  return sweep_to_csv(sink.take());
}

std::string jsonl_via(const SweepBackend& backend, const SweepPlan& plan) {
  std::ostringstream os;
  ShardWriterSink sink(os, plan);
  backend.run(plan, sink);
  return os.str();
}

std::string cli_path() { return FTSCHED_CLI_PATH; }

/// Temp dir per test, removed afterwards.
class BackendTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("ftsched_backend_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Writes an executable wrapper script around the real CLI.  `body` runs
  /// with $@ = the CLI arguments and the helper variables shard (the
  /// --shard value), outfile (the --out value) and marker (a per-shard
  /// scratch path that survives across attempts) already bound.
  std::string write_wrapper(const std::string& name, const std::string& body) {
    const std::string path = (dir_ / name).string();
    std::ofstream script(path);
    script << "#!/bin/sh\n"
           << "shard=''\noutfile=''\nprev=''\n"
           << "for a in \"$@\"; do\n"
           << "  [ \"$prev\" = '--shard' ] && shard=\"$a\"\n"
           << "  [ \"$prev\" = '--out' ] && outfile=\"$a\"\n"
           << "  prev=\"$a\"\n"
           << "done\n"
           << "marker='" << (dir_ / "marker").string()
           << "'_$(echo \"$shard\" | tr '/,' '__')\n"
           << "CLI='" << cli_path() << "'\n"
           << body;
    script.close();
    ::chmod(path.c_str(), 0755);
    return path;
  }

  std::filesystem::path dir_;
};

// ------------------------------------------------------------- registry

TEST_F(BackendTest, RegistryListsAllBackends) {
  const std::vector<std::string> names = SweepBackendRegistry::global().names();
  EXPECT_NE(std::find(names.begin(), names.end(), "inproc"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "subprocess"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "socket"), names.end());
}

TEST_F(BackendTest, UnknownBackendAndOptionFailLoudly) {
  EXPECT_THROW((void)make_sweep_backend("teleport"), InvalidArgument);
  try {
    (void)make_sweep_backend("teleport");
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("inproc"), std::string::npos);
  }
  EXPECT_THROW((void)make_sweep_backend("inproc:workers=2"), InvalidArgument);
}

TEST_F(BackendTest, SocketBackendNeedsABinary) {
  ::unsetenv("FTSCHED_CLI");
  try {
    (void)make_sweep_backend("socket");
    FAIL() << "socket without bin should not construct";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("bin="), std::string::npos);
  }
  // With a binary it constructs and describes itself.
  const SweepBackendPtr backend =
      make_sweep_backend("socket:workers=2,lease=3", {{"bin", cli_path()}});
  EXPECT_NE(backend->describe().find("workers=2"), std::string::npos);
}

TEST_F(BackendTest, SubprocessNeedsABinary) {
  ::unsetenv("FTSCHED_CLI");
  try {
    (void)make_sweep_backend("subprocess");
    FAIL() << "subprocess without bin should not construct";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("bin="), std::string::npos);
  }
  // The FTSCHED_CLI environment fallback and the defaults seam both work.
  ::setenv("FTSCHED_CLI", cli_path().c_str(), 1);
  EXPECT_NE(make_sweep_backend("subprocess"), nullptr);
  ::unsetenv("FTSCHED_CLI");
  EXPECT_NE(make_sweep_backend("subprocess", {{"bin", cli_path()}}), nullptr);
}

// ------------------------------------------------- subprocess primitives

TEST_F(BackendTest, ChildProcessReportsExitsSignalsAndExecFailures) {
  ChildProcess ok = ChildProcess::spawn({"/bin/sh", "-c", "exit 5"}, "", "");
  const ChildOutcome exit5 = ok.wait();
  EXPECT_TRUE(exit5.exited);
  EXPECT_EQ(exit5.exit_code, 5);
  EXPECT_NE(exit5.describe().find("status 5"), std::string::npos);

  ChildProcess killed =
      ChildProcess::spawn({"/bin/sh", "-c", "kill -9 $$"}, "", "");
  const ChildOutcome sig = killed.wait();
  EXPECT_FALSE(sig.exited);
  EXPECT_EQ(sig.signal_number, 9);
  EXPECT_NE(sig.describe().find("signal 9"), std::string::npos);

  const std::string err_file = (dir_ / "exec.err").string();
  ChildProcess missing =
      ChildProcess::spawn({(dir_ / "no_such_binary").string()}, "", err_file);
  const ChildOutcome exec_fail = missing.wait();
  EXPECT_TRUE(exec_fail.exited);
  EXPECT_EQ(exec_fail.exit_code, 127);
  EXPECT_NE(exec_fail.describe().find("could not execute"), std::string::npos);
  std::ifstream err(err_file);
  std::stringstream ss;
  ss << err.rdbuf();
  EXPECT_NE(ss.str().find("exec failed"), std::string::npos);
}

TEST_F(BackendTest, SelfExecutablePathPointsAtTheTestBinary) {
  const std::string self = self_executable_path();
  ASSERT_FALSE(self.empty());
  EXPECT_NE(self.find("test_backend"), std::string::npos);
}

// --------------------------------------------------------- equivalence

TEST_F(BackendTest, InprocBackendMatchesRunPlanExactly) {
  const SweepPlan plan(small_config());
  RecordSink direct;
  run_plan(plan, direct);

  for (const char* spec : {"inproc", "inproc:threads=2"}) {
    const SweepBackendPtr backend = make_sweep_backend(spec);
    const RecordSink via = record(*backend, plan);
    EXPECT_EQ(via.ids, direct.ids) << spec;
    EXPECT_EQ(via.samples, direct.samples) << spec;
  }
}

TEST_F(BackendTest, SubprocessByteIdenticalAcrossWorkersAndGrouping) {
  const SweepPlan plan(small_config());
  const SweepBackendPtr inproc = make_sweep_backend("inproc");
  const std::string reference = csv_via(*inproc, plan);
  ASSERT_FALSE(reference.empty());
  EXPECT_EQ(reference, csv_via(*inproc, plan, /*group=*/false));

  for (const std::size_t workers : {1u, 2u, 3u}) {
    for (const bool group : {true, false}) {
      const SweepBackendPtr backend = make_sweep_backend(
          "subprocess:workers=" + std::to_string(workers),
          {{"bin", cli_path()}, {"dir", dir_.string()}});
      EXPECT_EQ(reference, csv_via(*backend, plan, group))
          << "workers=" << workers << " group=" << group;
    }
  }
}

TEST_F(BackendTest, SubprocessShardJsonlMatchesInproc) {
  const SweepPlan plan(small_config());
  const SweepBackendPtr inproc = make_sweep_backend("inproc");
  const SweepBackendPtr subprocess = make_sweep_backend(
      "subprocess:workers=2", {{"bin", cli_path()}, {"dir", dir_.string()}});
  EXPECT_EQ(jsonl_via(*inproc, plan), jsonl_via(*subprocess, plan));
}

TEST_F(BackendTest, SubprocessHandlesNestedShardsOfAShardedPlan) {
  const SweepPlan plan = SweepPlan(small_config()).shard(1, 2);
  const SweepBackendPtr inproc = make_sweep_backend("inproc");
  const SweepBackendPtr subprocess = make_sweep_backend(
      "subprocess:workers=3", {{"bin", cli_path()}, {"dir", dir_.string()}});
  const RecordSink direct = record(*inproc, plan);
  const RecordSink via = record(*subprocess, plan);
  EXPECT_EQ(via.ids, direct.ids);
  EXPECT_EQ(via.samples, direct.samples);
  // The shard really was a strict subset executed under a nested chain.
  EXPECT_EQ(direct.ids.size(), plan.size());
  EXPECT_LT(plan.size(), plan.grid_size());
}

// ------------------------------------------------------ fault injection

TEST_F(BackendTest, KilledWorkerIsRetriedAndStaysByteIdentical) {
  // First attempt of every shard: die by SIGKILL before doing anything.
  const std::string wrapper = write_wrapper(
      "kill_first.sh",
      "if [ ! -e \"$marker\" ]; then\n"
      "  : > \"$marker\"\n"
      "  kill -9 $$\n"
      "fi\n"
      "exec \"$CLI\" \"$@\"\n");
  const SweepPlan plan(small_config());
  const std::string reference =
      csv_via(*make_sweep_backend("inproc"), plan);
  const SweepBackendPtr backend = make_sweep_backend(
      "subprocess:workers=2,retries=1",
      {{"bin", wrapper}, {"dir", dir_.string()}});
  EXPECT_EQ(reference, csv_via(*backend, plan));
}

TEST_F(BackendTest, TruncatedShardFileIsRetriedAndStaysByteIdentical) {
  // First attempt: run the real CLI, then truncate its shard file and
  // exit 0 — the success-looking child with a corrupt file.
  const std::string wrapper = write_wrapper(
      "truncate_first.sh",
      "if [ ! -e \"$marker\" ]; then\n"
      "  : > \"$marker\"\n"
      "  \"$CLI\" \"$@\" || exit $?\n"
      "  head -c 60 \"$outfile\" > \"$outfile.tmp\"\n"
      "  mv \"$outfile.tmp\" \"$outfile\"\n"
      "  exit 0\n"
      "fi\n"
      "exec \"$CLI\" \"$@\"\n");
  const SweepPlan plan(small_config());
  const std::string reference =
      csv_via(*make_sweep_backend("inproc"), plan);
  const SweepBackendPtr backend = make_sweep_backend(
      "subprocess:workers=2,retries=1",
      {{"bin", wrapper}, {"dir", dir_.string()}});
  EXPECT_EQ(reference, csv_via(*backend, plan));
}

TEST_F(BackendTest, ExhaustedRetriesSurfaceAStructuredError) {
  const std::string wrapper = write_wrapper(
      "always_fail.sh", "echo 'synthetic shard failure' >&2\nexit 3\n");
  const SweepPlan plan(small_config());
  const SweepBackendPtr backend = make_sweep_backend(
      "subprocess:workers=2,retries=1",
      {{"bin", wrapper}, {"dir", dir_.string()}});
  RecordSink sink;
  try {
    backend->run(plan, sink);
    FAIL() << "an always-failing child must not produce a result";
  } catch (const SweepBackendError& e) {
    EXPECT_EQ(e.backend(), "subprocess");
    EXPECT_NE(e.shard().find('/'), std::string::npos);
    EXPECT_NE(e.cause().find("exited with status 3"), std::string::npos);
    EXPECT_NE(e.cause().find("attempt 2 of 2"), std::string::npos);
    EXPECT_NE(e.cause().find("synthetic shard failure"), std::string::npos)
        << "child stderr should be quoted in the cause";
    EXPECT_NE(std::string(e.what()).find("sweep backend 'subprocess'"),
              std::string::npos);
  }
}

TEST_F(BackendTest, MissingBinarySurfacesExecFailure) {
  const SweepPlan plan(small_config());
  const SweepBackendPtr backend = make_sweep_backend(
      "subprocess:workers=1,retries=0",
      {{"bin", (dir_ / "no_such_cli").string()}, {"dir", dir_.string()}});
  RecordSink sink;
  try {
    backend->run(plan, sink);
    FAIL() << "a missing binary must not produce a result";
  } catch (const SweepBackendError& e) {
    EXPECT_NE(e.cause().find("could not execute"), std::string::npos);
  }
}

TEST_F(BackendTest, UnrepresentableConfigFailsFastOnFingerprint) {
  // A programmatic tweak the CLI flag grammar cannot express: the child
  // rebuilds the default paper workload, its fingerprint disagrees, and
  // the backend must fail immediately (retrying is pointless) with a
  // cause that names the mismatch.
  FigureConfig config = small_config();
  config.workloads.clear();  // paper-configured cell => params are identity
  config.scenarios.clear();
  config.workload.task_min = 17;
  const SweepPlan plan(config);
  const SweepBackendPtr backend = make_sweep_backend(
      "subprocess:workers=1,retries=2",
      {{"bin", cli_path()}, {"dir", dir_.string()}});
  RecordSink sink;
  try {
    backend->run(plan, sink);
    FAIL() << "a fingerprint mismatch must not produce a result";
  } catch (const SweepBackendError& e) {
    EXPECT_NE(e.cause().find("fingerprint mismatch"), std::string::npos);
    // Fail-fast: attempt 1, not retries exhausted.
    EXPECT_NE(e.cause().find("attempt 1 of 3"), std::string::npos);
  }
}

// ------------------------------------------------------------ shard I/O

TEST_F(BackendTest, ReadShardAcceptsCrlfLineEndings) {
  const SweepPlan plan(small_config());
  const std::string jsonl = jsonl_via(*make_sweep_backend("inproc"), plan);
  ASSERT_FALSE(jsonl.empty());

  std::string crlf;
  crlf.reserve(jsonl.size() + 64);
  for (const char c : jsonl) {
    if (c == '\n') crlf += '\r';
    crlf += c;
  }
  std::istringstream unix_in(jsonl);
  std::istringstream dos_in(crlf);
  const ShardFile a = read_shard(unix_in, "unix");
  const ShardFile b = read_shard(dos_in, "dos");
  EXPECT_EQ(a.header.fingerprint(), b.header.fingerprint());
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].series, b.records[i].series);
    EXPECT_EQ(a.records[i].coord.id, b.records[i].coord.id);
    EXPECT_EQ(a.records[i].stats.mean(), b.records[i].stats.mean());
  }
}

}  // namespace
}  // namespace ftsched
