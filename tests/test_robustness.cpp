// Tests for the kill-set robustness analyzer, cross-checked against the
// exhaustive simulation validator.
#include <gtest/gtest.h>

#include <tuple>

#include "ftsched/core/ftbar.hpp"
#include "ftsched/core/ftsa.hpp"
#include "ftsched/core/mc_ftsa.hpp"
#include "ftsched/core/robustness.hpp"
#include "ftsched/platform/failure.hpp"
#include "ftsched/sim/event_sim.hpp"
#include "ftsched/sim/validator.hpp"
#include "ftsched/workload/paper_workload.hpp"

namespace ftsched {
namespace {

std::unique_ptr<Workload> small_workload(std::uint64_t seed,
                                         std::size_t procs = 5,
                                         std::size_t tasks = 25) {
  Rng rng(seed);
  PaperWorkloadParams params;
  params.task_min = params.task_max = tasks;
  params.proc_count = procs;
  return make_paper_workload(rng, params);
}

TEST(Robustness, FtsaIsCertified) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto w = small_workload(seed);
    for (std::size_t epsilon : {1u, 2u}) {
      const auto s = ftsa_schedule(w->costs(), FtsaOptions{epsilon, seed});
      const RobustnessReport report = analyze_robustness(s);
      EXPECT_EQ(report.verdict, RobustnessVerdict::kCertifiedRobust)
          << report.summary();
      EXPECT_TRUE(report.fatal_processors.empty());
    }
  }
}

TEST(Robustness, EnforcedMcIsCertified) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto w = small_workload(seed);
    for (const McSelector sel :
         {McSelector::kGreedy, McSelector::kBinarySearchMatching}) {
      const auto s =
          mc_ftsa_schedule(w->costs(), McFtsaOptions{2, seed, sel});
      const RobustnessReport report = analyze_robustness(s);
      EXPECT_EQ(report.verdict, RobustnessVerdict::kCertifiedRobust)
          << report.summary();
    }
  }
}

TEST(Robustness, FtbarIsCertified) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto w = small_workload(seed);
    FtbarOptions options;
    options.npf = 2;
    options.seed = seed;
    const auto s = ftbar_schedule(w->costs(), options);
    const RobustnessReport report = analyze_robustness(s);
    EXPECT_EQ(report.verdict, RobustnessVerdict::kCertifiedRobust)
        << report.summary();
  }
}

TEST(Robustness, FatalWitnessesAreRealCrashes) {
  // Paper-mode MC-FTSA schedules: every reported fatal processor, when
  // crashed alone in the simulator, must actually break the run — and
  // conversely a schedule with no fatal processor must survive every
  // single crash.
  std::size_t fatal_found = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto w = small_workload(seed);
    McFtsaOptions options;
    options.epsilon = 1;
    options.seed = seed;
    options.enforce_fault_tolerance = false;
    const auto s = mc_ftsa_schedule(w->costs(), options);
    const RobustnessReport report = analyze_robustness(s);
    if (report.verdict == RobustnessVerdict::kSingleCrashFatal) {
      ++fatal_found;
      ASSERT_FALSE(report.fatal_processors.empty());
      for (ProcId p : report.fatal_processors) {
        FailureScenario scenario;
        scenario.add(p, 0.0);
        EXPECT_FALSE(simulate(s, scenario).success)
            << "analysis claims P" << p.value() << " is fatal";
      }
    } else {
      // Exact single-crash analysis: no fatal processor => every single
      // crash survivable.
      for (std::size_t p = 0; p < 5; ++p) {
        FailureScenario scenario;
        scenario.add(ProcId{p}, 0.0);
        EXPECT_TRUE(simulate(s, scenario).success);
      }
    }
  }
  EXPECT_GE(fatal_found, 1u);  // the paper gap shows up in these seeds
}

TEST(Robustness, AgreesWithExhaustiveValidator) {
  // Certified => exhaustive validation passes; single-crash-fatal =>
  // exhaustive validation fails. (Inconclusive can go either way.)
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto w = small_workload(seed, /*procs=*/5, /*tasks=*/15);
    for (const bool enforce : {false, true}) {
      McFtsaOptions options;
      options.epsilon = 2;
      options.seed = seed;
      options.enforce_fault_tolerance = enforce;
      const auto s = mc_ftsa_schedule(w->costs(), options);
      const RobustnessReport analysis = analyze_robustness(s);
      const ValidationReport exhaustive = validate_fault_tolerance(s);
      if (analysis.verdict == RobustnessVerdict::kCertifiedRobust) {
        EXPECT_TRUE(exhaustive.valid) << exhaustive.failure_description;
      }
      if (analysis.verdict == RobustnessVerdict::kSingleCrashFatal) {
        EXPECT_FALSE(exhaustive.valid);
      }
    }
  }
}

TEST(Robustness, EpsilonZeroIsTriviallyCertified) {
  const auto w = small_workload(7);
  const auto s = ftsa_schedule(w->costs(), FtsaOptions{0, 0});
  // Against its own epsilon (0), the schedule is vacuously robust.
  EXPECT_EQ(analyze_robustness(s).verdict,
            RobustnessVerdict::kCertifiedRobust);
}

TEST(Robustness, SummaryIsHumanReadable) {
  const auto w = small_workload(8);
  const auto s = ftsa_schedule(w->costs(), FtsaOptions{1, 0});
  const std::string text = analyze_robustness(s).summary();
  EXPECT_NE(text.find("certified"), std::string::npos);
}

}  // namespace
}  // namespace ftsched
