// Unit tests for the DAG substrate: graph, analysis, DOT, serialization.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "ftsched/dag/analysis.hpp"
#include "ftsched/dag/dot.hpp"
#include "ftsched/dag/graph.hpp"
#include "ftsched/dag/serialize.hpp"
#include "ftsched/util/error.hpp"
#include "ftsched/util/rng.hpp"
#include "ftsched/workload/random_dag.hpp"

namespace ftsched {
namespace {

TaskGraph diamond() {
  // a -> b, a -> c, b -> d, c -> d
  TaskGraph g("diamond");
  const TaskId a = g.add_task("a");
  const TaskId b = g.add_task("b");
  const TaskId c = g.add_task("c");
  const TaskId d = g.add_task("d");
  g.add_edge(a, b, 1.0);
  g.add_edge(a, c, 2.0);
  g.add_edge(b, d, 3.0);
  g.add_edge(c, d, 4.0);
  return g;
}

// ---------------------------------------------------------------- graph

TEST(Graph, BasicCounts) {
  const TaskGraph g = diamond();
  EXPECT_EQ(g.task_count(), 4u);
  EXPECT_EQ(g.edge_count(), 4u);
  EXPECT_FALSE(g.empty());
}

TEST(Graph, Degrees) {
  const TaskGraph g = diamond();
  EXPECT_EQ(g.out_degree(TaskId{0u}), 2u);
  EXPECT_EQ(g.in_degree(TaskId{0u}), 0u);
  EXPECT_EQ(g.in_degree(TaskId{3u}), 2u);
}

TEST(Graph, EntryAndExit) {
  const TaskGraph g = diamond();
  EXPECT_EQ(g.entry_tasks(), (std::vector<TaskId>{TaskId{0u}}));
  EXPECT_EQ(g.exit_tasks(), (std::vector<TaskId>{TaskId{3u}}));
}

TEST(Graph, VolumeLookup) {
  const TaskGraph g = diamond();
  EXPECT_DOUBLE_EQ(g.volume(TaskId{0u}, TaskId{2u}), 2.0);
  EXPECT_TRUE(g.has_edge(TaskId{0u}, TaskId{1u}));
  EXPECT_FALSE(g.has_edge(TaskId{1u}, TaskId{0u}));
  EXPECT_THROW((void)g.volume(TaskId{1u}, TaskId{0u}), InvalidArgument);
}

TEST(Graph, TotalVolume) {
  EXPECT_DOUBLE_EQ(diamond().total_volume(), 10.0);
}

TEST(Graph, RejectsSelfLoop) {
  TaskGraph g;
  const TaskId a = g.add_task();
  EXPECT_THROW(g.add_edge(a, a, 1.0), InvalidArgument);
}

TEST(Graph, RejectsDuplicateEdge) {
  TaskGraph g;
  const TaskId a = g.add_task();
  const TaskId b = g.add_task();
  g.add_edge(a, b, 1.0);
  EXPECT_THROW(g.add_edge(a, b, 2.0), InvalidArgument);
}

TEST(Graph, RejectsUnknownTask) {
  TaskGraph g;
  const TaskId a = g.add_task();
  EXPECT_THROW(g.add_edge(a, TaskId{5u}, 1.0), InvalidArgument);
  EXPECT_THROW(g.add_edge(TaskId{}, a, 1.0), InvalidArgument);
}

TEST(Graph, RejectsNegativeVolume) {
  TaskGraph g;
  const TaskId a = g.add_task();
  const TaskId b = g.add_task();
  EXPECT_THROW(g.add_edge(a, b, -1.0), InvalidArgument);
}

TEST(Graph, TopologicalOrderRespectsEdges) {
  const TaskGraph g = diamond();
  const auto order = g.topological_order();
  ASSERT_EQ(order.size(), 4u);
  std::vector<std::size_t> pos(4);
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i].index()] = i;
  for (const Edge& e : g.edges()) {
    EXPECT_LT(pos[e.src.index()], pos[e.dst.index()]);
  }
}

TEST(Graph, CycleDetection) {
  TaskGraph g;
  const TaskId a = g.add_task();
  const TaskId b = g.add_task();
  const TaskId c = g.add_task();
  g.add_edge(a, b, 1.0);
  g.add_edge(b, c, 1.0);
  g.add_edge(c, a, 1.0);
  EXPECT_FALSE(g.is_acyclic());
  EXPECT_THROW((void)g.topological_order(), InvalidArgument);
}

TEST(Graph, DefaultLabels) {
  TaskGraph g;
  const TaskId t = g.add_task();
  EXPECT_EQ(g.label(t), "t0");
}

// ---------------------------------------------------------------- analysis

TEST(Analysis, DepthsOnDiamond) {
  const auto d = depths(diamond());
  EXPECT_EQ(d, (std::vector<std::size_t>{0, 1, 1, 2}));
}

TEST(Analysis, LayersOnDiamond) {
  const auto l = layers(diamond());
  ASSERT_EQ(l.size(), 3u);
  EXPECT_EQ(l[0].size(), 1u);
  EXPECT_EQ(l[1].size(), 2u);
  EXPECT_EQ(l[2].size(), 1u);
}

TEST(Analysis, WidthOfDiamond) {
  EXPECT_EQ(layer_width(diamond()), 2u);
  EXPECT_EQ(exact_width(diamond()), 2u);
}

TEST(Analysis, WidthOfChain) {
  TaskGraph g;
  TaskId prev = g.add_task();
  for (int i = 0; i < 9; ++i) {
    const TaskId cur = g.add_task();
    g.add_edge(prev, cur, 1.0);
    prev = cur;
  }
  EXPECT_EQ(layer_width(g), 1u);
  EXPECT_EQ(exact_width(g), 1u);
}

TEST(Analysis, WidthOfIndependentTasks) {
  TaskGraph g;
  for (int i = 0; i < 7; ++i) (void)g.add_task();
  EXPECT_EQ(layer_width(g), 7u);
  EXPECT_EQ(exact_width(g), 7u);
}

TEST(Analysis, ExactWidthCanExceedLayerWidth) {
  // a->b, c independent: layers put {a,c} together (width 2) but the
  // antichain {b, c} also has size 2; construct a case where layering
  // underestimates: a->b, a->c, b->d, c (no more edges).
  TaskGraph g;
  const TaskId a = g.add_task();
  const TaskId b = g.add_task();
  const TaskId c = g.add_task();
  const TaskId d = g.add_task();
  const TaskId e = g.add_task();
  g.add_edge(a, b, 1.0);
  g.add_edge(b, d, 1.0);
  g.add_edge(a, c, 1.0);
  (void)e;  // isolated task: independent of everything
  EXPECT_GE(exact_width(g), layer_width(g));
  EXPECT_EQ(exact_width(g), 3u);  // {b, c, e} or {d, c, e}
}

TEST(Analysis, ExactWidthMatchesLayerWidthOnLayeredGraphs) {
  Rng rng(5);
  LayeredDagParams params;
  params.task_count = 40;
  params.max_layer_jump = 1;  // strictly layered
  params.edge_probability = 0.9;
  const TaskGraph g = make_layered_dag(rng, params);
  EXPECT_GE(exact_width(g), layer_width(g));
}

TEST(Analysis, LongestPath) {
  const TaskGraph g = diamond();
  const std::vector<double> node_cost{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> edge_cost{10.0, 20.0, 30.0, 40.0};
  // a(1) -> c(3) -> d(4) with edges 20 + 40 = longest: 1+20+3+40+4 = 68.
  EXPECT_DOUBLE_EQ(longest_path(g, node_cost, edge_cost), 68.0);
}

TEST(Analysis, LongestPathSizeMismatchThrows) {
  const TaskGraph g = diamond();
  EXPECT_THROW((void)longest_path(g, {1.0}, {}), InvalidArgument);
}

TEST(Analysis, CriticalPathHops) {
  EXPECT_EQ(critical_path_hops(diamond()), 3u);
}

TEST(Analysis, TransitiveClosure) {
  const TaskGraph g = diamond();
  const auto closure = transitive_closure(g);
  const std::size_t v = g.task_count();
  EXPECT_TRUE(closure[0 * v + 3]);   // a reaches d
  EXPECT_TRUE(closure[0 * v + 1]);
  EXPECT_FALSE(closure[1 * v + 2]);  // b does not reach c
  EXPECT_FALSE(closure[3 * v + 0]);  // no back edges
  EXPECT_FALSE(closure[0 * v + 0]);  // irreflexive
}

// ---------------------------------------------------------------- dot

TEST(Dot, ContainsNodesAndEdges) {
  const std::string dot = to_dot(diamond());
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("\"a\""), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(dot.find("rankdir=LR"), std::string::npos);
}

TEST(Dot, VolumeAnnotationsOptional) {
  DotOptions options;
  options.show_volumes = false;
  const std::string dot = to_dot(diamond(), options);
  EXPECT_EQ(dot.find("label=\"1.0\""), std::string::npos);
}

// ---------------------------------------------------------------- serialize

TEST(Serialize, RoundTrip) {
  const TaskGraph g = diamond();
  const std::string text = graph_to_string(g);
  const TaskGraph h = graph_from_string(text);
  EXPECT_EQ(h.name(), "diamond");
  EXPECT_EQ(h.task_count(), g.task_count());
  EXPECT_EQ(h.edge_count(), g.edge_count());
  for (const Edge& e : g.edges()) {
    EXPECT_TRUE(h.has_edge(e.src, e.dst));
    EXPECT_DOUBLE_EQ(h.volume(e.src, e.dst), e.volume);
  }
}

TEST(Serialize, CommentsAndBlankLines) {
  const TaskGraph g = graph_from_string(
      "# a comment\n"
      "taskgraph demo\n"
      "\n"
      "task x\n"
      "task y\n"
      "edge 0 1 5.5\n");
  EXPECT_EQ(g.task_count(), 2u);
  EXPECT_DOUBLE_EQ(g.volume(TaskId{0u}, TaskId{1u}), 5.5);
}

TEST(Serialize, MissingHeaderThrows) {
  EXPECT_THROW((void)graph_from_string("task x\n"), InvalidArgument);
}

TEST(Serialize, UnknownDirectiveThrows) {
  EXPECT_THROW((void)graph_from_string("taskgraph g\nblob\n"),
               InvalidArgument);
}

TEST(Serialize, MalformedEdgeThrows) {
  EXPECT_THROW(
      (void)graph_from_string("taskgraph g\ntask a\ntask b\nedge 0\n"),
      InvalidArgument);
}

TEST(Serialize, PreservesVolumePrecision) {
  TaskGraph g("p");
  const TaskId a = g.add_task();
  const TaskId b = g.add_task();
  g.add_edge(a, b, 1.0 / 3.0);
  const TaskGraph h = graph_from_string(graph_to_string(g));
  EXPECT_DOUBLE_EQ(h.volume(TaskId{0u}, TaskId{1u}), 1.0 / 3.0);
}

}  // namespace
}  // namespace ftsched
