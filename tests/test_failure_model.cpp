// Tests for the FailureModel subsystem (platform/failure.hpp): spec
// parsing/round-trips, draw contracts (legacy-stream preservation, domain
// correlation, Bernoulli counts), the failure-model sweep dimension
// (threads=N ≡ threads=1 bit-identity, paired cells, decorated series,
// graceful-degradation success fractions), and shard/merge bit-identity
// when failure_models is part of the plan fingerprint.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "ftsched/experiments/sweep_io.hpp"
#include "ftsched/experiments/sweep_plan.hpp"
#include "ftsched/platform/failure.hpp"
#include "ftsched/util/error.hpp"
#include "proptest.hpp"

namespace ftsched {
namespace {

// ------------------------------------------------------------------ parsing

TEST(FailureModel, ParsesAndRoundTrips) {
  for (const char* spec :
       {"eps", "fixed:k=3", "fixed:k=0", "bernoulli:p=0.25", "domain:size=4",
        "fixed:k=6,domain=2", "bernoulli:p=0.1,domain=4"}) {
    const FailureModel model = FailureModel::parse(spec);
    EXPECT_EQ(FailureModel::parse(model.to_string()).to_string(),
              model.to_string())
        << spec;
    EXPECT_FALSE(model.describe().empty());
  }
  EXPECT_EQ(FailureModel().to_string(), "eps");
  EXPECT_TRUE(FailureModel().is_default());
  EXPECT_FALSE(FailureModel::parse("fixed:k=1").is_default());
  EXPECT_FALSE(FailureModel::parse("domain:size=4").is_default());
  // The shorthand and the explicit composition agree.
  EXPECT_EQ(FailureModel::parse("domain:size=3").count_kind(),
            FailureModel::CountKind::kEpsilon);
  EXPECT_EQ(FailureModel::parse("domain:size=3").victim_kind(),
            FailureModel::VictimKind::kDomain);
  EXPECT_EQ(FailureModel::parse("bernoulli").to_string(), "bernoulli:p=0.1");
  // Every count law takes the domain key; on eps it canonicalizes to the
  // shorthand.
  EXPECT_EQ(FailureModel::parse("eps:domain=3").to_string(), "domain:size=3");
}

TEST(FailureModel, RejectsUnknownLawsOptionsAndParameters) {
  EXPECT_THROW((void)FailureModel::parse("meteor"), InvalidArgument);
  EXPECT_THROW((void)FailureModel::parse(""), InvalidArgument);
  EXPECT_THROW((void)FailureModel::parse("eps:k=1"), InvalidArgument);
  EXPECT_THROW((void)FailureModel::parse("fixed:p=0.5"), InvalidArgument);
  EXPECT_THROW((void)FailureModel::parse("bernoulli:p=1.5"), InvalidArgument);
  EXPECT_THROW((void)FailureModel::parse("bernoulli:p=-0.1"),
               InvalidArgument);
  EXPECT_THROW((void)FailureModel::parse("bernoulli:p=nan"), InvalidArgument);
  EXPECT_THROW((void)FailureModel::parse("domain:size=0"), InvalidArgument);
  EXPECT_THROW((void)FailureModel::parse("fixed:k=2,domain=0"),
               InvalidArgument);
  EXPECT_THROW((void)FailureModel::parse("fixed:k=two"), InvalidArgument);
}

// -------------------------------------------------------------------- draws

TEST(FailureModel, DefaultDrawPreservesTheLegacyStream) {
  proptest::check(
      "eps/uniform draw == legacy sample_without_replacement, bit for bit",
      [&](Rng& rng, std::uint64_t) {
        const std::size_t m = 4 + rng() % 12;
        const std::size_t eps = rng() % 4;
        Rng a = rng;  // identical state for both draws
        Rng b = rng;
        const auto legacy = a.sample_without_replacement(m, eps);
        const auto model = FailureModel().draw(b, m, eps);
        EXPECT_EQ(legacy, model);
        EXPECT_EQ(a(), b());  // same stream position afterwards
      });
}

TEST(FailureModel, FixedAndBernoulliCountContracts) {
  proptest::check("count laws draw the promised counts", [&](Rng& rng,
                                                             std::uint64_t) {
    const std::size_t m = 4 + rng() % 12;
    // fixed:k draws exactly k distinct victims, clamped to m.
    const std::size_t k = rng() % (m + 4);
    const auto fixed = FailureModel::parse("fixed:k=" + std::to_string(k))
                           .draw(rng, m, 1);
    EXPECT_EQ(fixed.size(), std::min(k, m));
    const std::set<std::size_t> distinct(fixed.begin(), fixed.end());
    EXPECT_EQ(distinct.size(), fixed.size());
    for (std::size_t v : fixed) EXPECT_LT(v, m);
    // bernoulli:p=0 never crashes anything, p=1 crashes everything.
    EXPECT_TRUE(FailureModel::parse("bernoulli:p=0").draw(rng, m, 1).empty());
    EXPECT_EQ(FailureModel::parse("bernoulli:p=1").draw(rng, m, 1).size(), m);
    const auto some = FailureModel::parse("bernoulli:p=0.5").draw(rng, m, 1);
    EXPECT_LE(some.size(), m);
  });
}

TEST(FailureModel, DomainVictimsAreCorrelatedByRack) {
  proptest::check(
      "domain draws touch at most ceil(k/S) + boundary racks, whole racks "
      "first",
      [&](Rng& rng, std::uint64_t) {
        const std::size_t m = 6 + rng() % 10;
        const std::size_t size = 1 + rng() % 4;
        const std::size_t eps = 1 + rng() % std::min<std::size_t>(m - 1, 5);
        const auto victims =
            FailureModel::parse("domain:size=" + std::to_string(size))
                .draw(rng, m, eps);
        ASSERT_EQ(victims.size(), eps);  // the count law stays exact
        // Count the distinct domains hit; all but at most one of them must
        // be fully crashed (only the last drawn domain may be truncated).
        std::set<std::size_t> domains;
        for (std::size_t v : victims) domains.insert(v / size);
        std::size_t partial = 0;
        for (std::size_t d : domains) {
          const std::size_t members =
              std::min((d + 1) * size, m) - d * size;
          const std::size_t hit = static_cast<std::size_t>(std::count_if(
              victims.begin(), victims.end(),
              [&](std::size_t v) { return v / size == d; }));
          if (hit < members) ++partial;
        }
        EXPECT_LE(partial, 1u) << "more than one truncated domain";
      });
}

// --------------------------------------------------- the sweep dimension

FigureConfig failure_sweep_config(std::size_t threads) {
  FigureConfig config;
  config.epsilon = 1;
  config.proc_count = 6;
  config.workload.proc_count = 6;
  config.graphs_per_point = 3;
  config.seed = 29;
  config.granularities = {0.8, 1.6};
  config.threads = threads;
  config.workloads = {"paper:tmin=15,tmax=18"};
  config.scenarios = {"t0"};
  config.failure_models = {"eps", "bernoulli:p=0.3", "domain:size=2"};
  return config;
}

TEST(FailureSweep, ThreadCountsAreBitIdenticalWithFailureCells) {
  const SweepResult serial = run_sweep(failure_sweep_config(1));
  const SweepResult parallel4 = run_sweep(failure_sweep_config(4));
  const SweepResult parallel7 = run_sweep(failure_sweep_config(7));
  EXPECT_TRUE(sweep_results_identical(serial, parallel4));
  EXPECT_TRUE(sweep_results_identical(serial, parallel7));
  ASSERT_EQ(serial.failures.size(), 3u);
}

TEST(FailureSweep, SeriesCarryTheFailureLabelAndSuccessFractions) {
  const SweepResult sweep = run_sweep(failure_sweep_config(0));
  const std::string w = "paper:tmin=15,tmax=18";
  // Every failure cell decorates with its own label...
  for (const std::string& failure : sweep.failures) {
    ASSERT_TRUE(sweep.series.count(
        sweep_series_name(sweep, "FTSA-LowerBound", w, "t0", failure)))
        << failure;
  }
  // ...the eps cell keeps the legacy layout (no Success/DrawnCrash)...
  EXPECT_FALSE(sweep.series.count(
      sweep_series_name(sweep, "FTSA-Success", w, "t0", "eps")));
  EXPECT_FALSE(sweep.series.count(
      sweep_series_name(sweep, "DrawnCrashes", w, "t0", "eps")));
  // ...and non-default cells report success fractions in [0, 1] plus the
  // mean drawn crash count.
  for (const char* failure : {"bernoulli:p=0.3", "domain:size=2"}) {
    const auto& success = sweep.series.at(
        sweep_series_name(sweep, "FTSA-Success", w, "t0", failure));
    for (const OnlineStats& s : success) {
      EXPECT_EQ(s.count(), sweep.series
                               .at(sweep_series_name(sweep, "FaultFree-FTSA",
                                                     w, "t0", failure))[0]
                               .count());
      EXPECT_GE(s.mean(), 0.0);
      EXPECT_LE(s.mean(), 1.0);
    }
    EXPECT_TRUE(sweep.series.count(
        sweep_series_name(sweep, "DrawnCrashes", w, "t0", failure)))
        << failure;
  }
  // domain:size=2 draws exactly epsilon victims, so Theorem 4.1 still
  // guarantees success even though they are correlated.
  const auto& domain_success = sweep.series.at(
      sweep_series_name(sweep, "FTSA-Success", w, "t0", "domain:size=2"));
  for (const OnlineStats& s : domain_success) EXPECT_EQ(s.mean(), 1.0);
}

TEST(FailureSweep, FailureCellsArePairedOnIdenticalInstances) {
  // All failure cells of one (workload, scenario) share RNG streams, so the
  // crash-independent series (schedule bounds) agree exactly; eps and
  // domain:size=1 additionally draw the *same number* of victims.
  const SweepResult sweep = run_sweep(failure_sweep_config(0));
  const std::string w = "paper:tmin=15,tmax=18";
  const auto& eps = sweep.series.at(
      sweep_series_name(sweep, "FTSA-LowerBound", w, "t0", "eps"));
  for (const char* failure : {"bernoulli:p=0.3", "domain:size=2"}) {
    const auto& other = sweep.series.at(
        sweep_series_name(sweep, "FTSA-LowerBound", w, "t0", failure));
    for (std::size_t gi = 0; gi < eps.size(); ++gi) {
      EXPECT_EQ(eps[gi].mean(), other[gi].mean()) << failure << " gi=" << gi;
    }
  }
}

TEST(FailureSweep, ExceedingEpsilonDegradesInsteadOfThrowing) {
  // fixed:k=4 against epsilon=1 pushes every instance past its guarantee:
  // the sweep must complete and report a success fraction strictly below 1
  // somewhere instead of tripping the Theorem-4.1 assertion.
  FigureConfig config = failure_sweep_config(1);
  config.failure_models = {"fixed:k=4"};
  const SweepResult sweep = run_sweep(config);
  const auto& success = sweep.series.at("FTSA-Success");
  const auto& drawn = sweep.series.at("DrawnCrashes");
  double worst = 1.0;
  for (const OnlineStats& s : success) worst = std::min(worst, s.mean());
  EXPECT_LT(worst, 1.0) << "4 crashes on 6 processors never failed eps=1?";
  for (const OnlineStats& s : drawn) EXPECT_EQ(s.mean(), 4.0);
  // The DrawnCrash latency series only aggregates surviving runs.
  const auto it = sweep.series.find("FTSA-DrawnCrash");
  if (it != sweep.series.end()) {
    for (std::size_t gi = 0; gi < success.size(); ++gi) {
      EXPECT_LE(it->second[gi].count(),
                static_cast<std::size_t>(success[gi].count()));
    }
  }
}

// ------------------------------------------------------------ shard/merge

TEST(FailureSweep, ShardMergeIsBitIdenticalWithFailureCells) {
  const FigureConfig config = failure_sweep_config(2);
  const SweepResult reference = run_sweep(config);
  const SweepPlan plan(config);
  for (std::size_t n : {1u, 3u, 5u}) {
    std::vector<ShardFile> shards;
    for (std::size_t i = 0; i < n; ++i) {
      std::stringstream file;
      ShardWriterSink sink(file, plan.shard(i, n));
      run_plan(plan.shard(i, n), sink);
      shards.push_back(read_shard(file, "shard" + std::to_string(i)));
      EXPECT_EQ(shards.back().header.failures, config.failure_models);
    }
    EXPECT_TRUE(sweep_results_identical(reference, merge_shards(shards)))
        << n << "-way partition diverged";
  }
}

TEST(FailureSweep, MergeRejectsFailureModelDrift) {
  // Two workers configured with different failure grids must not merge:
  // failure_models is part of the plan fingerprint.
  const FigureConfig base = failure_sweep_config(1);
  FigureConfig drifted = base;
  drifted.failure_models = {"eps", "bernoulli:p=0.5", "domain:size=2"};
  auto shard_of = [](const FigureConfig& config, std::size_t i) {
    const SweepPlan plan(config);
    std::stringstream file;
    ShardWriterSink sink(file, plan.shard(i, 2));
    run_plan(plan.shard(i, 2), sink);
    return read_shard(file, "s" + std::to_string(i));
  };
  const std::vector<ShardFile> shards{shard_of(base, 0), shard_of(drifted, 1)};
  EXPECT_NE(shards[0].header.fingerprint(), shards[1].header.fingerprint());
  EXPECT_THROW((void)merge_shards(shards), InvalidArgument);
}

TEST(FailureSweep, CoordIdsCoverTheFailureAxis) {
  const SweepPlan plan(failure_sweep_config(1));
  // 1 workload x 1 scenario x 3 failures x 2 granularities x 3 reps.
  EXPECT_EQ(plan.grid_size(), 3u * 2u * 3u);
  EXPECT_EQ(plan.failures(),
            (std::vector<std::string>{"eps", "bernoulli:p=0.3",
                                      "domain:size=2"}));
  for (std::size_t k = 0; k < plan.size(); ++k) {
    const InstanceCoord c = plan.coord(k);
    EXPECT_EQ(c.id, ((c.workload * 1 + c.scenario) * 3 + c.failure) * 2 * 3 +
                        c.gran * 3 + c.rep);
    const InstanceCoord back = plan.coord_of_id(c.id);
    EXPECT_EQ(back.failure, c.failure);
    EXPECT_EQ(back.gran, c.gran);
    EXPECT_EQ(back.rep, c.rep);
  }
}

TEST(FailureSweep, RejectsDuplicateFailureCells) {
  FigureConfig config = failure_sweep_config(1);
  config.failure_models = {"bernoulli:p=0.3", "bernoulli:p=0.3"};
  EXPECT_THROW((void)SweepPlan(config), InvalidArgument);
}

}  // namespace
}  // namespace ftsched
