// Tests for the metrics layer and the experiment harness (configs, runner,
// small smoke sweeps of the paper figures).
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "ftsched/core/ftsa.hpp"
#include "ftsched/core/mc_ftsa.hpp"
#include "ftsched/experiments/figures.hpp"
#include "ftsched/experiments/runner.hpp"
#include "ftsched/metrics/metrics.hpp"
#include "ftsched/util/error.hpp"
#include "ftsched/workload/paper_workload.hpp"

namespace ftsched {
namespace {

std::unique_ptr<Workload> small_workload(std::uint64_t seed,
                                         std::size_t procs = 6,
                                         std::size_t tasks = 30) {
  Rng rng(seed);
  PaperWorkloadParams params;
  params.task_min = params.task_max = tasks;
  params.proc_count = procs;
  return make_paper_workload(rng, params);
}

// ---------------------------------------------------------------- metrics

TEST(Metrics, OverheadPercent) {
  EXPECT_DOUBLE_EQ(overhead_percent(150.0, 100.0), 50.0);
  EXPECT_DOUBLE_EQ(overhead_percent(100.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(overhead_percent(80.0, 100.0), -20.0);
  EXPECT_THROW((void)overhead_percent(1.0, 0.0), InvalidArgument);
}

TEST(Metrics, NormalizedLatency) {
  const auto w = small_workload(1);
  // Workloads with edges normalize by the mean edge communication cost
  // (granularity-invariant; see metrics.hpp).
  const double unit = w->costs().mean_avg_comm();
  ASSERT_GT(unit, 0.0);
  EXPECT_DOUBLE_EQ(normalized_latency(unit * 7.0, w->costs()), 7.0);
}

TEST(Metrics, NormalizedLatencyEdgelessFallsBackToExec) {
  TaskGraph g;
  (void)g.add_task();
  const Platform p(2, 1.0);
  const CostModel costs(g, p, {{4.0, 4.0}});
  EXPECT_DOUBLE_EQ(normalized_latency(8.0, costs), 2.0);
}

TEST(Metrics, NormalizedLatencyInvariantUnderGranularity) {
  // Rescaling execution times (what the granularity sweep does) must not
  // change the normalization unit.
  const auto w = small_workload(12);
  const double before = w->costs().mean_avg_comm();
  w->costs().scale_exec(3.0);
  EXPECT_DOUBLE_EQ(w->costs().mean_avg_comm(), before);
}

TEST(Metrics, CommStatsBounds) {
  const auto w = small_workload(2);
  const std::size_t e = w->graph().edge_count();
  const auto ftsa = ftsa_schedule(w->costs(), FtsaOptions{2, 0});
  McFtsaOptions mo;
  mo.epsilon = 2;
  mo.enforce_fault_tolerance = false;  // paper mode: exact linear count
  const auto mc = mc_ftsa_schedule(w->costs(), mo);
  const CommStats fs = comm_stats(ftsa);
  EXPECT_EQ(fs.ftsa_bound, e * 9);
  EXPECT_EQ(fs.mc_bound, e * 3);
  EXPECT_LE(fs.channels, fs.ftsa_bound);
  EXPECT_LE(fs.interproc_messages, fs.channels);
  const CommStats ms = comm_stats(mc);
  EXPECT_EQ(ms.channels, ms.mc_bound);
}

TEST(Metrics, Utilization) {
  const auto w = small_workload(3);
  const auto s = ftsa_schedule(w->costs(), FtsaOptions{1, 0});
  const UtilizationStats u = utilization(s);
  EXPECT_GT(u.mean, 0.0);
  EXPECT_LE(u.max, 1.0 + 1e-9);
  EXPECT_GE(u.min, 0.0);
  EXPECT_LE(u.min, u.mean);
  EXPECT_LE(u.mean, u.max);
}

// ---------------------------------------------------------------- configs

TEST(Config, FigureParameters) {
  EXPECT_EQ(figure_config(1).epsilon, 1u);
  EXPECT_EQ(figure_config(2).epsilon, 2u);
  EXPECT_EQ(figure_config(3).epsilon, 5u);
  EXPECT_EQ(figure_config(4).epsilon, 2u);
  EXPECT_EQ(figure_config(1).proc_count, 20u);
  EXPECT_EQ(figure_config(4).proc_count, 5u);
  EXPECT_EQ(figure_config(1).granularities.size(), 10u);
  EXPECT_DOUBLE_EQ(figure_config(1).granularities.front(), 0.2);
  EXPECT_NEAR(figure_config(1).granularities.back(), 2.0, 1e-12);
  EXPECT_THROW((void)figure_config(0), InvalidArgument);
  EXPECT_THROW((void)figure_config(5), InvalidArgument);
}

TEST(Config, EnvironmentOverrides) {
  ::setenv("FTSCHED_GRAPHS", "7", 1);
  ::setenv("FTSCHED_SEED", "99", 1);
  const FigureConfig c = figure_config(1);
  EXPECT_EQ(c.graphs_per_point, 7u);
  EXPECT_EQ(c.seed, 99u);
  ::unsetenv("FTSCHED_GRAPHS");
  ::unsetenv("FTSCHED_SEED");
}

TEST(Config, Table1Defaults) {
  const Table1Config c = table1_config();
  EXPECT_EQ(c.proc_count, 50u);
  EXPECT_EQ(c.epsilon, 5u);
  EXPECT_EQ(c.task_counts.size(), 6u);
}

// ---------------------------------------------------------------- runner

TEST(Runner, InstanceEmitsAllSeries) {
  const auto w = small_workload(5, /*procs=*/8, /*tasks=*/40);
  Rng rng(1);
  InstanceOptions options;
  options.epsilon = 2;
  options.extra_crash_counts = {1};
  const SeriesSample sample = evaluate_instance(*w, rng, options);
  for (const char* name :
       {"FTSA-LowerBound", "FTSA-UpperBound", "MC-FTSA-LowerBound",
        "MC-FTSA-UpperBound", "FTBAR-LowerBound", "FTBAR-UpperBound",
        "FaultFree-FTSA", "FaultFree-FTBAR", "FTSA-0Crash", "FTSA-1Crash",
        "FTSA-2Crash", "MC-FTSA-2Crash", "FTBAR-2Crash", "OH-FTSA-2Crash",
        "Msg-FTSA", "Msg-MC-FTSA"}) {
    ASSERT_TRUE(sample.count(name)) << "missing series " << name;
  }
  // Sanity relations.
  EXPECT_LE(sample.at("FTSA-LowerBound"),
            sample.at("FTSA-UpperBound") + 1e-9);
  EXPECT_LE(sample.at("MC-FTSA-LowerBound"),
            sample.at("MC-FTSA-UpperBound") + 1e-9);
  EXPECT_GT(sample.at("FaultFree-FTSA"), 0.0);
  EXPECT_LT(sample.at("Msg-MC-FTSA"), sample.at("Msg-FTSA"));
  // Crash latencies stay within the guaranteed bound.
  EXPECT_LE(sample.at("FTSA-2Crash"), sample.at("FTSA-UpperBound") + 1e-9);
}

TEST(Runner, SweepAggregatesSixtyMeansCorrectly) {
  FigureConfig config = figure_config(1);
  config.granularities = {0.5, 1.5};
  config.graphs_per_point = 3;
  config.proc_count = 6;
  config.workload.proc_count = 6;
  config.seed = 7;
  const SweepResult sweep = run_sweep(config);
  ASSERT_EQ(sweep.granularities.size(), 2u);
  const auto it = sweep.series.find("FTSA-LowerBound");
  ASSERT_NE(it, sweep.series.end());
  ASSERT_EQ(it->second.size(), 2u);
  EXPECT_EQ(it->second[0].count(), 3u);
  EXPECT_EQ(it->second[1].count(), 3u);
  EXPECT_GT(it->second[0].mean(), 0.0);
  // Coarser granularity => relatively cheaper comm => latency normalized by
  // task size grows with granularity in the paper's figures. We only check
  // positivity here; the trend is asserted in the integration test.
  EXPECT_GT(it->second[1].mean(), 0.0);
}

TEST(Runner, DeterministicForSeed) {
  FigureConfig config = figure_config(1);
  config.granularities = {1.0};
  config.graphs_per_point = 2;
  config.proc_count = 5;
  config.seed = 3;
  const SweepResult a = run_sweep(config);
  const SweepResult b = run_sweep(config);
  EXPECT_DOUBLE_EQ(a.series.at("FTSA-LowerBound")[0].mean(),
                   b.series.at("FTSA-LowerBound")[0].mean());
  EXPECT_DOUBLE_EQ(a.series.at("FaultFree-FTBAR")[0].mean(),
                   b.series.at("FaultFree-FTBAR")[0].mean());
  EXPECT_DOUBLE_EQ(a.series.at("FTSA-1Crash")[0].mean(),
                   b.series.at("FTSA-1Crash")[0].mean());
}

// ---------------------------------------------------------------- figures

TEST(Figures, PrintFigureProducesAllBlocks) {
  FigureConfig config = figure_config(2);
  config.granularities = {1.0};
  config.graphs_per_point = 2;
  config.proc_count = 6;
  config.workload.proc_count = 6;
  const SweepResult sweep = run_sweep(config);
  std::ostringstream os;
  print_figure(os, config, sweep);
  const std::string out = os.str();
  EXPECT_NE(out.find("Figure 2"), std::string::npos);
  EXPECT_NE(out.find("(a) normalized latency"), std::string::npos);
  EXPECT_NE(out.find("(b) normalized latency"), std::string::npos);
  EXPECT_NE(out.find("(c) average overhead"), std::string::npos);
  EXPECT_NE(out.find("FTSA-2Crash"), std::string::npos);
  EXPECT_NE(out.find("csv:"), std::string::npos);
}

TEST(Figures, Figure4SkipsBoundsBlock) {
  FigureConfig config = figure_config(4);
  config.granularities = {1.0};
  config.graphs_per_point = 2;
  const SweepResult sweep = run_sweep(config);
  std::ostringstream os;
  print_figure(os, config, sweep);
  EXPECT_EQ(os.str().find("(a) normalized latency: schedule bounds"),
            std::string::npos);
  EXPECT_NE(os.str().find("FTSA-1Crash"), std::string::npos);
}

TEST(Figures, Table1SmallRun) {
  Table1Config config;
  config.task_counts = {30, 60};
  config.proc_count = 8;
  config.epsilon = 2;
  config.repetitions = 1;
  std::ostringstream os;
  run_table1(os, config);
  const std::string out = os.str();
  EXPECT_NE(out.find("Table 1"), std::string::npos);
  EXPECT_NE(out.find("30"), std::string::npos);
  EXPECT_NE(out.find("FTBAR"), std::string::npos);
}

}  // namespace
}  // namespace ftsched
