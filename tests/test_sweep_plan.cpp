// The plan/execute/merge pipeline (experiments/sweep_plan.hpp +
// sweep_io.hpp): grid enumeration and stable ids, shard selection,
// sink-based execution, the JSONL shard protocol, and the acceptance
// contract of PR 3 — merge_shards over ANY shard partition of the grid is
// bit-identical (sweep_results_identical) to the unsharded run_sweep.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "ftsched/experiments/sweep_io.hpp"
#include "ftsched/experiments/sweep_plan.hpp"
#include "ftsched/util/error.hpp"

namespace ftsched {
namespace {

/// Small multi-cell grid: 2 workloads x 2 scenarios x 2 granularities x
/// 3 reps = 24 instances, decorated series names.
FigureConfig cross_config() {
  FigureConfig config = figure_config(1);
  config.granularities = {0.5, 1.0};
  config.graphs_per_point = 3;
  config.proc_count = 5;
  config.workload.proc_count = 5;
  config.seed = 11;
  config.threads = 2;
  config.workloads = {"paper", "chain:size=10"};
  config.scenarios = {"t0", "frac:f=0.5"};
  return config;
}

/// Single-cell grid (undecorated series, the legacy sweep shape).
FigureConfig single_cell_config() {
  FigureConfig config = figure_config(1);
  config.granularities = {0.8, 1.6};
  config.graphs_per_point = 4;
  config.proc_count = 6;
  config.workload.proc_count = 6;
  config.seed = 23;
  config.threads = 2;
  return config;
}

/// Runs `plan` through a ShardWriterSink and parses the JSONL back.
ShardFile roundtrip_shard(const SweepPlan& plan, const std::string& name) {
  std::stringstream file;
  ShardWriterSink sink(file, plan);
  run_plan(plan, sink);
  return read_shard(file, name);
}

// ------------------------------------------------------------------- plan

TEST(SweepPlan, EnumeratesTheFullGrid) {
  const SweepPlan plan(cross_config());
  EXPECT_EQ(plan.grid_size(), 2u * 2u * 2u * 3u);
  EXPECT_EQ(plan.size(), plan.grid_size());
  EXPECT_TRUE(plan.complete());
  EXPECT_EQ(plan.shard_label(), "full");
  EXPECT_EQ(plan.workloads(),
            (std::vector<std::string>{"paper", "chain:size=10"}));
  EXPECT_EQ(plan.scenarios(), (std::vector<std::string>{"t0", "frac:f=0.5"}));
}

TEST(SweepPlan, EmptyWorkloadListMeansPaperCell) {
  const SweepPlan plan(single_cell_config());
  EXPECT_EQ(plan.workloads(), (std::vector<std::string>{"paper"}));
  EXPECT_EQ(plan.scenarios(), (std::vector<std::string>{"t0"}));
  EXPECT_EQ(plan.grid_size(), 2u * 4u);
}

TEST(SweepPlan, CoordIdsAreStableAndDecomposable) {
  const SweepPlan plan(cross_config());
  for (std::size_t k = 0; k < plan.size(); ++k) {
    const InstanceCoord c = plan.coord(k);
    EXPECT_EQ(c.id, k);  // full plan: k-th selected == id k
    // id = ((w * S + s) * P + g) * R + r
    EXPECT_EQ(c.id, ((c.workload * 2 + c.scenario) * 2 + c.gran) * 3 + c.rep);
    const InstanceCoord back = plan.coord_of_id(c.id);
    EXPECT_EQ(back.workload, c.workload);
    EXPECT_EQ(back.scenario, c.scenario);
    EXPECT_EQ(back.gran, c.gran);
    EXPECT_EQ(back.rep, c.rep);
  }
  EXPECT_THROW((void)plan.coord(plan.size()), InvalidArgument);
  EXPECT_THROW((void)plan.coord_of_id(plan.grid_size()), InvalidArgument);
}

TEST(SweepPlan, ShardsPartitionTheSelection) {
  const SweepPlan plan(cross_config());
  for (std::size_t n : {2u, 3u, 5u, 24u, 30u}) {
    std::set<std::uint64_t> seen;
    std::size_t total = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const SweepPlan shard = plan.shard(i, n);
      EXPECT_FALSE(shard.complete() && n > 1);
      EXPECT_EQ(shard.shard_label(),
                std::to_string(i) + "/" + std::to_string(n));
      for (std::size_t k = 0; k < shard.size(); ++k) {
        EXPECT_TRUE(seen.insert(shard.coord(k).id).second)
            << "instance assigned to two shards";
      }
      total += shard.size();
    }
    EXPECT_EQ(total, plan.size()) << n << " shards";
    EXPECT_EQ(seen.size(), plan.size());
  }
  EXPECT_THROW((void)plan.shard(3, 3), InvalidArgument);
  EXPECT_THROW((void)plan.shard(0, 0), InvalidArgument);
}

TEST(SweepPlan, EvaluateDependsOnlyOnCoordinates) {
  const SweepPlan plan(cross_config());
  const SweepPlan shard = plan.shard(1, 3);
  // The same instance evaluated through the full plan and through a shard
  // yields the same sample map, double for double.
  const InstanceCoord c = shard.coord(0);
  const SeriesSample a = plan.evaluate(plan.coord_of_id(c.id));
  const SeriesSample b = shard.evaluate(c);
  EXPECT_EQ(a, b);
}

TEST(SweepPlan, RejectsDuplicateCells) {
  FigureConfig config = cross_config();
  config.workloads = {"paper", "paper"};
  EXPECT_THROW((void)SweepPlan(config), InvalidArgument);
}

// ------------------------------------------------------------------- sinks

TEST(SweepPlan, StatsSinkReproducesRunSweep) {
  const FigureConfig config = cross_config();
  const SweepPlan plan(config);
  OnlineStatsSink sink(plan);
  run_plan(plan, sink);
  const SweepResult via_sink = sink.take();
  EXPECT_TRUE(sweep_results_identical(via_sink, run_sweep(config)));
  // Series decoration matches the multi-cell rule.
  EXPECT_TRUE(via_sink.series.count("FTSA-LowerBound[paper|t0]"));
  EXPECT_TRUE(
      via_sink.series.count("FTSA-LowerBound[chain:size=10|frac:f=0.5]"));
}

TEST(SweepPlan, ShardWriterEmitsSingletonRecords) {
  const SweepPlan plan(single_cell_config());
  const ShardFile shard = roundtrip_shard(plan.shard(0, 2), "s0");
  EXPECT_EQ(shard.header.shard, "0/2");
  EXPECT_EQ(shard.header.grid, plan.grid_size());
  EXPECT_EQ(shard.header.selected, plan.shard(0, 2).size());
  ASSERT_FALSE(shard.records.empty());
  for (const ShardRecord& r : shard.records) {
    EXPECT_EQ(r.stats.count(), 1u);
    EXPECT_EQ(r.stats.m2(), 0.0);
    EXPECT_EQ(r.stats.min(), r.stats.mean());
    EXPECT_EQ(r.stats.max(), r.stats.mean());
    EXPECT_LT(r.coord.id, plan.grid_size());
  }
}

TEST(SweepPlan, HeaderFingerprintMatchesPlan) {
  const SweepPlan plan(cross_config());
  // Sharding must not change the grid identity, and a disk round trip
  // must preserve it exactly (hex-float granularities).
  const ShardFile shard = roundtrip_shard(plan.shard(2, 4), "s2");
  EXPECT_EQ(shard.header.fingerprint(), plan.fingerprint());
  EXPECT_EQ(shard_header(plan).fingerprint(), plan.fingerprint());
  EXPECT_EQ(shard.header.granularities, plan.granularities());
}

// ------------------------------------------------------------------- merge

/// The PR-3 acceptance criterion, for one config and several partitions.
void expect_merge_bit_identical(const FigureConfig& config) {
  const SweepResult reference = run_sweep(config);
  const SweepPlan plan(config);

  for (std::size_t n : {1u, 2u, 3u, 7u}) {
    std::vector<ShardFile> shards;
    for (std::size_t i = 0; i < n; ++i) {
      shards.push_back(roundtrip_shard(plan.shard(i, n),
                                       "shard" + std::to_string(i)));
    }
    EXPECT_TRUE(sweep_results_identical(reference, merge_shards(shards)))
        << n << "-way partition diverged";
  }

  // An uneven, nested partition: {0/2 then 0/2, 0/2 then 1/2, 1/2} —
  // three shards of different sizes produced by sharding a shard.
  const std::vector<ShardFile> nested{
      roundtrip_shard(plan.shard(0, 2).shard(0, 2), "n0"),
      roundtrip_shard(plan.shard(0, 2).shard(1, 2), "n1"),
      roundtrip_shard(plan.shard(1, 2), "n2"),
  };
  EXPECT_TRUE(sweep_results_identical(reference, merge_shards(nested)))
      << "nested uneven partition diverged";
}

TEST(MergeShards, BitIdenticalToUnshardedRun_MultiCell) {
  expect_merge_bit_identical(cross_config());
}

TEST(MergeShards, BitIdenticalToUnshardedRun_SingleCell) {
  expect_merge_bit_identical(single_cell_config());
}

TEST(MergeShards, ShardsRunWithDifferentThreadCountsStillMergeIdentically) {
  FigureConfig config = single_cell_config();
  const SweepResult reference = run_sweep(config);
  std::vector<ShardFile> shards;
  for (std::size_t i = 0; i < 3; ++i) {
    config.threads = i + 1;  // every "machine" uses a different pool size
    const SweepPlan plan(config);
    shards.push_back(roundtrip_shard(plan.shard(i, 3),
                                     "t" + std::to_string(i)));
  }
  EXPECT_TRUE(sweep_results_identical(reference, merge_shards(shards)));
}

TEST(MergeShards, RejectsIncompletePartition) {
  const SweepPlan plan(cross_config());
  std::vector<ShardFile> shards;
  shards.push_back(roundtrip_shard(plan.shard(0, 3), "s0"));
  shards.push_back(roundtrip_shard(plan.shard(1, 3), "s1"));
  // shard 2/3 missing
  EXPECT_THROW((void)merge_shards(shards), InvalidArgument);
}

TEST(MergeShards, RejectsOverlappingShards) {
  const SweepPlan plan(cross_config());
  std::vector<ShardFile> shards;
  shards.push_back(roundtrip_shard(plan.shard(0, 2), "s0"));
  shards.push_back(roundtrip_shard(plan.shard(1, 2), "s1"));
  shards.push_back(roundtrip_shard(plan.shard(0, 2), "dup"));
  EXPECT_THROW((void)merge_shards(shards), InvalidArgument);
}

TEST(MergeShards, RejectsPlanMismatch) {
  const SweepPlan plan(cross_config());
  FigureConfig other_config = cross_config();
  other_config.seed = 999;  // different grid identity
  const SweepPlan other(other_config);
  std::vector<ShardFile> shards;
  shards.push_back(roundtrip_shard(plan.shard(0, 2), "s0"));
  shards.push_back(roundtrip_shard(other.shard(1, 2), "alien"));
  EXPECT_THROW((void)merge_shards(shards), InvalidArgument);
}

TEST(MergeShards, RejectsPaperParamsDrift) {
  // Programmatic PaperWorkloadParams tweaks change the numbers without
  // showing in the "paper" cell label; the header must still catch them.
  const FigureConfig base = single_cell_config();
  FigureConfig tweaked = base;
  tweaked.workload.task_min = 40;  // config drift between two "workers"
  std::vector<ShardFile> shards;
  shards.push_back(roundtrip_shard(SweepPlan(base).shard(0, 2), "s0"));
  shards.push_back(roundtrip_shard(SweepPlan(tweaked).shard(1, 2), "s1"));
  EXPECT_THROW((void)merge_shards(shards), InvalidArgument);
  // Registry-spec cells carry their parameters in the label already; the
  // paper component is empty and ignored there.
  EXPECT_EQ(shard_header(SweepPlan(cross_config())).paper_params, "");
}

TEST(MergeShards, RejectsCorruptedRecordCoordinates) {
  const SweepPlan plan(cross_config());
  std::vector<ShardFile> shards{roundtrip_shard(plan, "full")};
  // A record whose granularity index disagrees with its id must fail
  // loudly — silently aggregating it onto the wrong point is exactly the
  // drift the protocol promises to prevent.
  ASSERT_FALSE(shards[0].records.empty());
  shards[0].records[0].coord.gran ^= 1;
  EXPECT_THROW((void)merge_shards(shards), InvalidArgument);
}

TEST(MergeShards, RejectsInconsistentHeaderGridCount) {
  const SweepPlan plan(cross_config());
  std::vector<ShardFile> shards{roundtrip_shard(plan, "full")};
  shards[0].header.grid = 999999;  // mangled count, dimensions unchanged
  EXPECT_THROW((void)merge_shards(shards), InvalidArgument);
}

TEST(MergeShards, RejectsGarbageStreams) {
  std::stringstream not_a_shard("{\"hello\":\"world\"}\n");
  EXPECT_THROW((void)read_shard(not_a_shard, "garbage"), InvalidArgument);
  std::stringstream empty;
  EXPECT_THROW((void)read_shard(empty, "empty"), InvalidArgument);
  std::stringstream truncated("{\"ftsched_sweep_shard\":1,\"seed\":\"1\"");
  EXPECT_THROW((void)read_shard(truncated, "truncated"), InvalidArgument);
  EXPECT_THROW((void)merge_shards({}), InvalidArgument);
  EXPECT_THROW((void)read_shard_file("/nonexistent/shard.jsonl"),
               InvalidArgument);
}

}  // namespace
}  // namespace ftsched
