// Unit tests for priorities (bottom/top levels) and the replicated-schedule
// representation.
#include <gtest/gtest.h>

#include <algorithm>

#include "ftsched/core/priorities.hpp"
#include "ftsched/core/schedule.hpp"
#include "ftsched/util/error.hpp"
#include "ftsched/workload/classic.hpp"
#include "ftsched/workload/paper_workload.hpp"

namespace ftsched {
namespace {

// A tiny fixed workload: chain of 3 tasks on 2 processors, unit delay 1,
// volumes 10, exec matrix chosen by each test.
struct Tiny {
  Tiny()
      : graph(make_chain(3, ClassicParams{10.0})),
        platform(2, 1.0),
        costs(graph, platform, {{2.0, 4.0}, {6.0, 8.0}, {1.0, 3.0}}) {}
  TaskGraph graph;
  Platform platform;
  CostModel costs;
};

// ---------------------------------------------------------------- priorities

TEST(Priorities, BottomLevelsOnChain) {
  const Tiny w;
  // avg exec: 3, 7, 2; avg comm = 10 * 1 = 10 per edge.
  // bl(t2) = 2; bl(t1) = 7 + 10 + 2 = 19; bl(t0) = 3 + 10 + 19 = 32.
  const auto bl = bottom_levels(w.costs);
  EXPECT_DOUBLE_EQ(bl[2], 2.0);
  EXPECT_DOUBLE_EQ(bl[1], 19.0);
  EXPECT_DOUBLE_EQ(bl[0], 32.0);
}

TEST(Priorities, StaticTopLevelsOnChain) {
  const Tiny w;
  const auto tl = static_top_levels(w.costs);
  EXPECT_DOUBLE_EQ(tl[0], 0.0);
  EXPECT_DOUBLE_EQ(tl[1], 13.0);  // 3 + 10
  EXPECT_DOUBLE_EQ(tl[2], 30.0);  // 13 + 7 + 10
}

TEST(Priorities, BottomLevelDominatesSuccessors) {
  Rng rng(1);
  PaperWorkloadParams params;
  params.task_min = params.task_max = 80;
  const auto w = make_paper_workload(rng, params);
  const auto bl = bottom_levels(w->costs());
  for (const Edge& e : w->graph().edges()) {
    // bl(src) >= E̅(src) + W̅(e) + bl(dst) for the maximizing successor;
    // in particular bl(src) > bl(dst).
    EXPECT_GT(bl[e.src.index()], bl[e.dst.index()]);
  }
}

TEST(Priorities, TopPlusBottomConstantOnChain) {
  // On a chain the (static) criticalness tl + bl is constant: every task
  // lies on the single path.
  const Tiny w;
  const auto bl = bottom_levels(w.costs);
  const auto tl = static_top_levels(w.costs);
  const double c0 = tl[0] + bl[0];
  for (std::size_t i = 1; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(tl[i] + bl[i], c0);
  }
}

// ---------------------------------------------------------------- schedule

TEST(Schedule, RequiresEnoughProcessors) {
  const Tiny w;
  EXPECT_THROW(ReplicatedSchedule(w.costs, 2, "x"), InvalidArgument);
  EXPECT_NO_THROW(ReplicatedSchedule(w.costs, 1, "x"));
}

TEST(Schedule, PlaceAndQuery) {
  const Tiny w;
  ReplicatedSchedule s(w.costs, 1, "manual");
  s.place_task(TaskId{0u}, {Replica{ProcId{0u}, 0, 2, 0, 2},
                            Replica{ProcId{1u}, 0, 4, 0, 4}});
  EXPECT_TRUE(s.is_placed(TaskId{0u}));
  EXPECT_FALSE(s.is_placed(TaskId{1u}));
  EXPECT_EQ(s.replicas(TaskId{0u}).size(), 2u);
  EXPECT_EQ(s.timeline(ProcId{0u}).size(), 1u);
  EXPECT_THROW(
      s.place_task(TaskId{0u}, {Replica{ProcId{0u}, 0, 2, 0, 2},
                                Replica{ProcId{1u}, 0, 4, 0, 4}}),
      InvalidArgument);  // already placed
}

TEST(Schedule, PlaceRejectsTooFewReplicas) {
  const Tiny w;
  ReplicatedSchedule s(w.costs, 1, "manual");
  EXPECT_THROW(s.place_task(TaskId{0u}, {Replica{ProcId{0u}, 0, 2, 0, 2}}),
               InvalidArgument);
}

// Builds a correct manual schedule of the tiny chain with epsilon = 1.
ReplicatedSchedule manual_tiny_schedule(const Tiny& w) {
  ReplicatedSchedule s(w.costs, 1, "manual");
  // t0: P0 [0,2), P1 [0,4).
  s.place_task(TaskId{0u}, {Replica{ProcId{0u}, 0, 2, 0, 2},
                            Replica{ProcId{1u}, 0, 4, 0, 4}});
  // t1 on P0: local from t0@P0 at 2 => [2,8). On P1: local at 4 => [4,12).
  s.place_task(TaskId{1u}, {Replica{ProcId{0u}, 2, 8, 2, 8},
                            Replica{ProcId{1u}, 4, 12, 4, 12}});
  // t2 on P0: local at 8 => [8,9). On P1: local at 12 => [12,15).
  s.place_task(TaskId{2u}, {Replica{ProcId{0u}, 8, 9, 8, 9},
                            Replica{ProcId{1u}, 12, 15, 12, 15}});
  // Channels: local pairs only (all-pairs with intra shortcut).
  s.set_channels(0, {Channel{0, 0}, Channel{1, 1}});
  s.set_channels(1, {Channel{0, 0}, Channel{1, 1}});
  return s;
}

TEST(Schedule, ValidateAcceptsCorrectSchedule) {
  const Tiny w;
  EXPECT_NO_THROW(manual_tiny_schedule(w).validate());
}

TEST(Schedule, Bounds) {
  const Tiny w;
  const auto s = manual_tiny_schedule(w);
  EXPECT_DOUBLE_EQ(s.lower_bound(), 9.0);   // earliest replica of exit task
  EXPECT_DOUBLE_EQ(s.upper_bound(), 15.0);  // latest pessimistic finish
}

TEST(Schedule, MessageCounts) {
  const Tiny w;
  const auto s = manual_tiny_schedule(w);
  EXPECT_EQ(s.channel_count(), 4u);
  EXPECT_EQ(s.interproc_message_count(), 0u);  // all channels are local
}

TEST(Schedule, MappingMatrix) {
  const Tiny w;
  const auto s = manual_tiny_schedule(w);
  const auto x = s.mapping_matrix();
  ASSERT_EQ(x.size(), 6u);  // 3 tasks × 2 procs
  for (char cell : x) EXPECT_EQ(cell, 1);  // every task on both procs here
}

TEST(Schedule, ValidateCatchesSharedProcessor) {
  const Tiny w;
  ReplicatedSchedule s(w.costs, 1, "bad");
  s.place_task(TaskId{0u}, {Replica{ProcId{0u}, 0, 2, 0, 2},
                            Replica{ProcId{0u}, 2, 4, 2, 4}});
  s.place_task(TaskId{1u}, {Replica{ProcId{0u}, 4, 10, 4, 10},
                            Replica{ProcId{1u}, 12, 20, 12, 20}});
  s.place_task(TaskId{2u}, {Replica{ProcId{0u}, 10, 11, 10, 11},
                            Replica{ProcId{1u}, 20, 23, 20, 23}});
  s.set_channels(0, {Channel{0, 0}, Channel{1, 1}});
  s.set_channels(1, {Channel{0, 0}, Channel{1, 1}});
  EXPECT_THROW(s.validate(), Error);
}

TEST(Schedule, ValidateCatchesOverlap) {
  const Tiny w;
  ReplicatedSchedule s(w.costs, 1, "bad");
  s.place_task(TaskId{0u}, {Replica{ProcId{0u}, 0, 2, 0, 2},
                            Replica{ProcId{1u}, 0, 4, 0, 4}});
  // t1 on P0 starts at 1 < t0's finish 2: overlap.
  s.place_task(TaskId{1u}, {Replica{ProcId{0u}, 1, 7, 1, 7},
                            Replica{ProcId{1u}, 4, 12, 4, 12}});
  s.place_task(TaskId{2u}, {Replica{ProcId{0u}, 8, 9, 8, 9},
                            Replica{ProcId{1u}, 12, 15, 12, 15}});
  s.set_channels(0, {Channel{0, 0}, Channel{1, 1}});
  s.set_channels(1, {Channel{0, 0}, Channel{1, 1}});
  EXPECT_THROW(s.validate(), Error);
}

TEST(Schedule, ValidateCatchesWrongDuration) {
  const Tiny w;
  ReplicatedSchedule s(w.costs, 1, "bad");
  // t0 on P0 takes 2.0 in the cost model but is recorded as 3.
  s.place_task(TaskId{0u}, {Replica{ProcId{0u}, 0, 3, 0, 3},
                            Replica{ProcId{1u}, 0, 4, 0, 4}});
  s.place_task(TaskId{1u}, {Replica{ProcId{0u}, 3, 9, 3, 9},
                            Replica{ProcId{1u}, 4, 12, 4, 12}});
  s.place_task(TaskId{2u}, {Replica{ProcId{0u}, 9, 10, 9, 10},
                            Replica{ProcId{1u}, 12, 15, 12, 15}});
  s.set_channels(0, {Channel{0, 0}, Channel{1, 1}});
  s.set_channels(1, {Channel{0, 0}, Channel{1, 1}});
  EXPECT_THROW(s.validate(), Error);
}

TEST(Schedule, ValidateCatchesMissingChannel) {
  const Tiny w;
  auto s = manual_tiny_schedule(w);
  // Overwrite edge 1 channels so t2@P1 has no inbound channel.
  s.set_channels(1, {});
  // set_channels replaces; rebuild with only one channel.
  ReplicatedSchedule s2(w.costs, 1, "bad");
  s2.place_task(TaskId{0u}, {Replica{ProcId{0u}, 0, 2, 0, 2},
                             Replica{ProcId{1u}, 0, 4, 0, 4}});
  s2.place_task(TaskId{1u}, {Replica{ProcId{0u}, 2, 8, 2, 8},
                             Replica{ProcId{1u}, 4, 12, 4, 12}});
  s2.place_task(TaskId{2u}, {Replica{ProcId{0u}, 8, 9, 8, 9},
                             Replica{ProcId{1u}, 12, 15, 12, 15}});
  s2.set_channels(0, {Channel{0, 0}, Channel{1, 1}});
  s2.set_channels(1, {Channel{0, 0}});  // t2 replica 1 starves
  EXPECT_THROW(s2.validate(), Error);
}

TEST(Schedule, ValidateCatchesPrematureStart) {
  const Tiny w;
  ReplicatedSchedule s(w.costs, 1, "bad");
  s.place_task(TaskId{0u}, {Replica{ProcId{0u}, 0, 2, 0, 2},
                            Replica{ProcId{1u}, 0, 4, 0, 4}});
  // t1 on P1 starts at 3 but its only input (local t0@P1) arrives at 4.
  s.place_task(TaskId{1u}, {Replica{ProcId{0u}, 2, 8, 2, 8},
                            Replica{ProcId{1u}, 3, 11, 3, 11}});
  s.place_task(TaskId{2u}, {Replica{ProcId{0u}, 8, 9, 8, 9},
                            Replica{ProcId{1u}, 11, 14, 11, 14}});
  s.set_channels(0, {Channel{0, 0}, Channel{1, 1}});
  s.set_channels(1, {Channel{0, 0}, Channel{1, 1}});
  EXPECT_THROW(s.validate(), Error);
}

TEST(Schedule, ValidateCatchesPessimisticBelowOptimistic) {
  const Tiny w;
  ReplicatedSchedule s(w.costs, 1, "bad");
  // pess_finish < finish on the first replica.
  s.place_task(TaskId{0u}, {Replica{ProcId{0u}, 0, 2, 0, 1},
                            Replica{ProcId{1u}, 0, 4, 0, 4}});
  s.place_task(TaskId{1u}, {Replica{ProcId{0u}, 2, 8, 2, 8},
                            Replica{ProcId{1u}, 4, 12, 4, 12}});
  s.place_task(TaskId{2u}, {Replica{ProcId{0u}, 8, 9, 8, 9},
                            Replica{ProcId{1u}, 12, 15, 12, 15}});
  s.set_channels(0, {Channel{0, 0}, Channel{1, 1}});
  s.set_channels(1, {Channel{0, 0}, Channel{1, 1}});
  EXPECT_THROW(s.validate(), Error);
}

}  // namespace
}  // namespace ftsched
