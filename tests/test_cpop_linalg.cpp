// Tests for the CPOP baseline and the tiled linear-algebra workloads
// (Cholesky / LU).
#include <gtest/gtest.h>

#include <set>

#include "ftsched/core/cpop.hpp"
#include "ftsched/core/ftsa.hpp"
#include "ftsched/core/heft.hpp"
#include "ftsched/dag/analysis.hpp"
#include "ftsched/platform/failure.hpp"
#include "ftsched/sim/event_sim.hpp"
#include "ftsched/util/error.hpp"
#include "ftsched/workload/classic.hpp"
#include "ftsched/workload/paper_workload.hpp"

namespace ftsched {
namespace {

std::unique_ptr<Workload> small_workload(std::uint64_t seed,
                                         std::size_t procs = 6,
                                         std::size_t tasks = 40) {
  Rng rng(seed);
  PaperWorkloadParams params;
  params.task_min = params.task_max = tasks;
  params.proc_count = procs;
  return make_paper_workload(rng, params);
}

// ---------------------------------------------------------------- cpop

TEST(Cpop, ValidSingleReplicaSchedule) {
  const auto w = small_workload(1);
  const auto s = cpop_schedule(w->costs());
  s.validate();
  EXPECT_EQ(s.epsilon(), 0u);
  for (TaskId t : w->graph().tasks()) {
    EXPECT_EQ(s.replicas(t).size(), 1u);
  }
}

TEST(Cpop, FailureFreeSimulationSucceeds) {
  const auto w = small_workload(2);
  const auto s = cpop_schedule(w->costs());
  const SimulationResult r = simulate(s);
  ASSERT_TRUE(r.success);
  EXPECT_LE(r.latency, s.lower_bound() * (1 + 1e-9));
}

TEST(Cpop, CriticalChainSharesOneProcessor) {
  // On a pure chain the whole graph is the critical path, so CPOP pins
  // everything onto the single best processor.
  TaskGraph g = make_chain(6, ClassicParams{50.0});
  const Platform p(4, 1.0);
  std::vector<std::vector<double>> exec(6, {7.0, 5.0, 9.0, 6.0});
  const CostModel costs(g, p, exec);
  const auto s = cpop_schedule(costs);
  for (TaskId t : g.tasks()) {
    EXPECT_EQ(s.replicas(t)[0].proc, ProcId{1u});  // fastest column
  }
  EXPECT_DOUBLE_EQ(s.lower_bound(), 30.0);
}

TEST(Cpop, CompetitiveWithHeftOnAverage) {
  double cpop_sum = 0.0;
  double heft_sum = 0.0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto w = small_workload(seed);
    cpop_sum += cpop_schedule(w->costs()).lower_bound();
    heft_sum += heft_schedule(w->costs()).lower_bound();
  }
  // CPOP and HEFT trade wins; neither should be wildly worse.
  EXPECT_LT(cpop_sum, heft_sum * 1.3);
  EXPECT_LT(heft_sum, cpop_sum * 1.3);
}

TEST(Cpop, WorksOnWideGraphs) {
  Rng rng(3);
  PaperWorkloadParams params;
  params.proc_count = 5;
  const auto w = make_workload_for_graph(rng, make_fork_join(12), params);
  const auto s = cpop_schedule(w->costs());
  s.validate();
  EXPECT_TRUE(simulate(s).success);
}

// ---------------------------------------------------------------- cholesky

TEST(Cholesky, TaskAndStructureCounts) {
  // b=3: k=0: potrf + 2 trsm + 3 updates; k=1: potrf + 1 trsm + 1 update;
  // k=2: potrf. Total = 6 + 3 + 1 + (potrfs... ) => count directly:
  const TaskGraph g = make_cholesky(3);
  // potrf: 3, trsm: 2+1 = 3, updates: (3) + (1) = 4 -> 10 tasks.
  EXPECT_EQ(g.task_count(), 10u);
  EXPECT_TRUE(g.is_acyclic());
  EXPECT_EQ(g.entry_tasks().size(), 1u);  // potrf0 starts everything
  EXPECT_EQ(g.exit_tasks().size(), 1u);   // final potrf
}

TEST(Cholesky, DependenciesFollowFactorization) {
  const TaskGraph g = make_cholesky(4);
  EXPECT_TRUE(g.is_acyclic());
  // Every trsm of panel k depends on potrf k (label-based lookup).
  std::vector<TaskId> potrf;
  for (TaskId t : g.tasks()) {
    if (g.label(t).rfind("potrf", 0) == 0) potrf.push_back(t);
  }
  ASSERT_EQ(potrf.size(), 4u);
  for (TaskId t : g.tasks()) {
    if (g.label(t).rfind("trsm", 0) == 0) {
      const char k = g.label(t).back();  // trsm<i>_<k>: last char = k
      bool depends_on_potrf = false;
      for (std::size_t e : g.in_edges(t)) {
        const std::string& src = g.label(g.edge(e).src);
        if (src.rfind("potrf", 0) == 0 && src[5] == k) {
          depends_on_potrf = true;
        }
      }
      EXPECT_TRUE(depends_on_potrf) << g.label(t);
    }
  }
}

TEST(Cholesky, GrowsCubically) {
  // Task count of tiled Cholesky is b(b+1)(b+2)/6 + O(b²)-ish; just check
  // strict superlinear growth and schedulability.
  const std::size_t small = make_cholesky(4).task_count();
  const std::size_t large = make_cholesky(8).task_count();
  EXPECT_GT(large, 4 * small / 2);
  Rng rng(4);
  PaperWorkloadParams params;
  params.proc_count = 6;
  const auto w = make_workload_for_graph(rng, make_cholesky(5), params);
  const auto s = ftsa_schedule(w->costs(), FtsaOptions{1, 0});
  s.validate();
  EXPECT_TRUE(simulate(s).success);
}

// ---------------------------------------------------------------- lu

TEST(Lu, TaskCountsAndStructure) {
  // b=3: k=0: getrf + 2+2 trsm + 4 gemm; k=1: getrf + 1+1 trsm + 1 gemm;
  // k=2: getrf. Total = 9 + 4 + 1 = 14.
  const TaskGraph g = make_lu(3);
  EXPECT_EQ(g.task_count(), 14u);
  EXPECT_TRUE(g.is_acyclic());
  EXPECT_EQ(g.entry_tasks().size(), 1u);
  EXPECT_EQ(g.exit_tasks().size(), 1u);
}

TEST(Lu, CriticalPathDepthGrowsLinearly) {
  const std::size_t d4 = critical_path_hops(make_lu(4));
  const std::size_t d8 = critical_path_hops(make_lu(8));
  EXPECT_GT(d8, d4);
  EXPECT_GE(d8, 2 * d4 - 4);  // roughly linear in b
}

TEST(Lu, SchedulableAndFaultTolerant) {
  Rng rng(5);
  PaperWorkloadParams params;
  params.proc_count = 5;
  const auto w = make_workload_for_graph(rng, make_lu(4), params);
  const auto s = ftsa_schedule(w->costs(), FtsaOptions{2, 0});
  s.validate();
  Rng crash_rng(6);
  for (int i = 0; i < 5; ++i) {
    const auto scenario = random_crashes(crash_rng, 5, 2);
    EXPECT_TRUE(simulate(s, scenario).success);
  }
}

TEST(LinAlg, RejectTrivialSizes) {
  EXPECT_THROW((void)make_cholesky(1), InvalidArgument);
  EXPECT_THROW((void)make_lu(0), InvalidArgument);
}

}  // namespace
}  // namespace ftsched
