// Tests for the polymorphic scheduler layer: the SchedulerRegistry (name
// lookup, option parsing, error paths, spec round-trips), the adapter
// classes, the ParallelExecutor, and the determinism contract of the
// parallel run_sweep.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include "ftsched/core/scheduler.hpp"
#include "ftsched/experiments/runner.hpp"
#include "ftsched/util/error.hpp"
#include "ftsched/util/parallel.hpp"
#include "ftsched/util/rng.hpp"
#include "ftsched/workload/paper_workload.hpp"

namespace ftsched {
namespace {

std::unique_ptr<Workload> small_workload(std::uint64_t seed = 3,
                                         std::size_t procs = 6) {
  Rng rng(seed);
  PaperWorkloadParams params;
  params.task_min = params.task_max = 30;
  params.proc_count = procs;
  return make_paper_workload(rng, params);
}

// ----------------------------------------------------------------- registry

TEST(SchedulerRegistry, AllBuiltinAlgorithmsConstructibleByName) {
  const auto w = small_workload();
  for (const char* name :
       {"ftsa", "mc-ftsa", "ftbar", "heft", "cpop", "random"}) {
    const SchedulerPtr s = SchedulerRegistry::global().create(name);
    ASSERT_NE(s, nullptr) << name;
    const ReplicatedSchedule schedule = s->run(w->costs());
    schedule.validate();
    EXPECT_FALSE(s->describe().empty());
  }
}

TEST(SchedulerRegistry, UnknownNameThrowsWithKnownNamesListed) {
  try {
    (void)SchedulerRegistry::global().create("nonsense");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("nonsense"), std::string::npos);
    EXPECT_NE(what.find("ftsa"), std::string::npos);  // alternatives listed
  }
}

TEST(SchedulerRegistry, UnknownOptionKeyThrowsWithSupportedKeysListed) {
  try {
    (void)SchedulerRegistry::global().create("ftsa:bogus=1");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bogus"), std::string::npos);
    EXPECT_NE(what.find("eps"), std::string::npos);
  }
}

TEST(SchedulerRegistry, MalformedOptionStringsThrow) {
  const SchedulerRegistry& registry = SchedulerRegistry::global();
  EXPECT_THROW((void)registry.create("ftsa:eps"), InvalidArgument);
  EXPECT_THROW((void)registry.create("ftsa:=2"), InvalidArgument);
  EXPECT_THROW((void)registry.create("ftsa:eps=1,eps=2"), InvalidArgument);
  EXPECT_THROW((void)registry.create("ftsa:eps=2,"), InvalidArgument);
  EXPECT_THROW((void)registry.create("ftsa:eps=two"), InvalidArgument);
  EXPECT_THROW((void)registry.create("ftsa:prio=zigzag"), InvalidArgument);
  EXPECT_THROW((void)registry.create("mc-ftsa:selector=x"), InvalidArgument);
  EXPECT_THROW((void)registry.create("heft:insertion=maybe"), InvalidArgument);
  EXPECT_THROW((void)registry.create("cpop:eps=1"), InvalidArgument);
}

TEST(SchedulerRegistry, NamesContainBuiltinsSorted) {
  const std::vector<std::string> names = SchedulerRegistry::global().names();
  const std::set<std::string> set(names.begin(), names.end());
  for (const char* expected :
       {"ftsa", "mc-ftsa", "mc-ftsa-paper", "ftbar", "heft", "cpop",
        "random"}) {
    EXPECT_TRUE(set.count(expected)) << expected;
  }
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(SchedulerRegistry, SpecRoundTripsThroughName) {
  const SchedulerRegistry& registry = SchedulerRegistry::global();
  for (const char* spec :
       {"ftsa", "ftsa:eps=2,prio=bl", "ftsa:eps=3,ports=1,seed=9",
        "mc-ftsa:enforce=0,eps=2,selector=matching", "ftbar:npf=2,seed=5",
        "ftbar:mst=0", "heft", "heft:insertion=0", "cpop",
        "mc-ftsa:seed=77", "random", "random:eps=2,seed=3"}) {
    const SchedulerPtr first = registry.create(spec);
    const SchedulerPtr second = registry.create(first->name());
    EXPECT_EQ(first->name(), second->name()) << "spec: " << spec;
  }
}

TEST(SchedulerRegistry, CanonicalNameOmitsDefaults) {
  const SchedulerRegistry& registry = SchedulerRegistry::global();
  EXPECT_EQ(registry.create("ftsa:eps=1,seed=0,prio=crit")->name(), "ftsa");
  EXPECT_EQ(registry.create("ftsa:eps=2,prio=bl")->name(),
            "ftsa:eps=2,prio=bl");
  EXPECT_EQ(registry.create("mc-ftsa-paper")->name(), "mc-ftsa:enforce=0");
  EXPECT_EQ(registry.create("ftbar:eps=2")->name(), "ftbar:npf=2");
}

TEST(SchedulerRegistry, OptionsParsedIntoAdapterStructs) {
  const SchedulerRegistry& registry = SchedulerRegistry::global();
  const SchedulerPtr s =
      registry.create("ftsa:eps=4,seed=123,prio=random,ports=2");
  const auto* ftsa = dynamic_cast<const FtsaScheduler*>(s.get());
  ASSERT_NE(ftsa, nullptr);
  EXPECT_EQ(ftsa->options().epsilon, 4u);
  EXPECT_EQ(ftsa->options().seed, 123u);
  EXPECT_EQ(ftsa->options().priority, FtsaPriority::kRandom);
  EXPECT_EQ(ftsa->options().comm.ports, 2u);

  const SchedulerPtr m = registry.create("mc-ftsa:selector=matching,enforce=0");
  const auto* mc = dynamic_cast<const McFtsaScheduler*>(m.get());
  ASSERT_NE(mc, nullptr);
  EXPECT_EQ(mc->options().selector, McSelector::kBinarySearchMatching);
  EXPECT_FALSE(mc->options().enforce_fault_tolerance);
}

TEST(SchedulerRegistry, AdaptersMatchDirectCalls) {
  const auto w = small_workload();
  FtsaOptions options;
  options.epsilon = 2;
  options.seed = 11;
  const ReplicatedSchedule direct = ftsa_schedule(w->costs(), options);
  const ReplicatedSchedule via_registry =
      SchedulerRegistry::global().create("ftsa:eps=2,seed=11")->run(w->costs());
  EXPECT_EQ(direct.lower_bound(), via_registry.lower_bound());
  EXPECT_EQ(direct.upper_bound(), via_registry.upper_bound());
  EXPECT_EQ(direct.interproc_message_count(),
            via_registry.interproc_message_count());
}

TEST(SchedulerRegistry, MakeSchedulerInjectsSupportedDefaultsOnly) {
  // eps/seed defaults land where the algorithm takes them...
  const SchedulerPtr s = make_scheduler("ftsa", {{"eps", "3"}, {"seed", "7"}});
  const auto* ftsa = dynamic_cast<const FtsaScheduler*>(s.get());
  ASSERT_NE(ftsa, nullptr);
  EXPECT_EQ(ftsa->options().epsilon, 3u);
  EXPECT_EQ(ftsa->options().seed, 7u);
  // ...explicit spec options win over the defaults...
  const SchedulerPtr pinned =
      make_scheduler("ftsa:eps=1", {{"eps", "3"}, {"seed", "7"}});
  const auto* pinned_ftsa = dynamic_cast<const FtsaScheduler*>(pinned.get());
  ASSERT_NE(pinned_ftsa, nullptr);
  EXPECT_EQ(pinned_ftsa->options().epsilon, 1u);
  // ...and algorithms without the key are unaffected instead of rejecting.
  EXPECT_NO_THROW((void)make_scheduler("cpop", {{"eps", "3"}, {"seed", "7"}}));
}

TEST(SchedulerRegistry, DuplicateRegistrationThrows) {
  SchedulerRegistry registry;
  SchedulerRegistry::Entry entry;
  entry.name = "dummy";
  entry.factory = [](const SchedulerOptions&) -> SchedulerPtr {
    return std::make_unique<CpopScheduler>();
  };
  registry.add(entry);
  EXPECT_THROW(registry.add(entry), InvalidArgument);
  EXPECT_TRUE(registry.contains("dummy"));
  EXPECT_FALSE(registry.contains("cpop"));  // separate from the global one
}

// --------------------------------------------------------- ParallelExecutor

TEST(ParallelExecutor, CoversEveryIndexExactlyOnce) {
  for (const std::size_t threads : {1u, 2u, 4u}) {
    ParallelExecutor executor(threads);
    constexpr std::size_t kCount = 1000;
    std::vector<std::atomic<int>> hits(kCount);
    executor.for_each(kCount, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < kCount; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "threads=" << threads << " i=" << i;
    }
  }
}

TEST(ParallelExecutor, ZeroCountIsANoop) {
  ParallelExecutor executor(4);
  executor.for_each(0, [](std::size_t) { FAIL(); });
}

TEST(ParallelExecutor, ReusableAcrossJobs) {
  ParallelExecutor executor(3);
  for (int round = 0; round < 5; ++round) {
    std::atomic<std::size_t> sum{0};
    executor.for_each(100, [&](std::size_t i) { sum += i; });
    EXPECT_EQ(sum.load(), 4950u);
  }
}

TEST(ParallelExecutor, ExceptionsPropagateToCaller) {
  for (const std::size_t threads : {1u, 4u}) {
    ParallelExecutor executor(threads);
    EXPECT_THROW(
        executor.for_each(64,
                          [](std::size_t i) {
                            if (i == 13) throw std::runtime_error("boom");
                          }),
        std::runtime_error)
        << "threads=" << threads;
    // The executor stays usable after an exception.
    std::atomic<int> ran{0};
    executor.for_each(8, [&](std::size_t) { ++ran; });
    EXPECT_EQ(ran.load(), 8);
  }
}

TEST(Rng, DeriveIsStableAndKeyed) {
  const Rng parent(42);
  Rng a = parent.derive(7);
  Rng b = parent.derive(7);
  Rng c = parent.derive(8);
  const std::uint64_t first_a = a();
  EXPECT_EQ(first_a, b());             // same key → same stream
  EXPECT_NE(first_a, c());             // different key → different stream
  Rng advanced(42);
  (void)advanced();
  (void)advanced();
  EXPECT_NE(advanced.derive(7)(), first_a);  // state-dependent
}

// ------------------------------------------------------- deterministic sweep

FigureConfig tiny_sweep_config(std::size_t threads) {
  FigureConfig config;
  config.epsilon = 1;
  config.proc_count = 6;
  config.graphs_per_point = 2;
  config.seed = 7;
  config.granularities = {0.6, 1.4};
  config.extra_crash_counts = {};
  config.threads = threads;
  config.workload.task_min = 20;
  config.workload.task_max = 25;
  config.workload.proc_count = 6;
  return config;
}

TEST(RunSweep, EmitsThePaperSeriesLayout) {
  const SweepResult sweep = run_sweep(tiny_sweep_config(1));
  for (const char* series :
       {"FTSA-LowerBound", "FTSA-UpperBound", "MC-FTSA-LowerBound",
        "MC-FTSA-UpperBound", "FTBAR-LowerBound", "FTBAR-UpperBound",
        "FaultFree-FTSA", "FaultFree-FTBAR", "FTSA-0Crash", "FTSA-1Crash",
        "MC-FTSA-1Crash", "FTBAR-1Crash", "OH-FTSA-LowerBound",
        "OH-FTBAR-LowerBound", "OH-FTSA-1Crash", "Msg-FTSA", "Msg-MC-FTSA",
        "Msg-FTBAR", "MC-RepairRate"}) {
    EXPECT_TRUE(sweep.series.count(series)) << "missing series " << series;
  }
  ASSERT_EQ(sweep.granularities.size(), 2u);
  for (const auto& [name, stats] : sweep.series) {
    ASSERT_EQ(stats.size(), 2u) << name;
    EXPECT_EQ(stats[0].count(), 2u) << name;
  }
}

TEST(RunSweep, ParallelIsBitIdenticalToSerial) {
  const SweepResult serial = run_sweep(tiny_sweep_config(1));
  const SweepResult parallel2 = run_sweep(tiny_sweep_config(2));
  const SweepResult parallel5 = run_sweep(tiny_sweep_config(5));
  EXPECT_TRUE(sweep_results_identical(serial, serial));
  EXPECT_TRUE(sweep_results_identical(serial, parallel2));
  EXPECT_TRUE(sweep_results_identical(serial, parallel5));
}

TEST(RunSweep, DifferentSeedsDiffer) {
  FigureConfig a = tiny_sweep_config(1);
  FigureConfig b = tiny_sweep_config(1);
  b.seed = 8;
  EXPECT_FALSE(sweep_results_identical(run_sweep(a), run_sweep(b)));
}

TEST(EvaluateInstance, CustomAlgoListViaRegistry) {
  const auto w = small_workload(5, 6);
  InstanceOptions options;
  options.epsilon = 1;
  options.seed = 9;
  InstanceAlgo heft;
  heft.key = "HEFT";
  heft.spec = "heft";
  options.algos = {heft};
  Rng rng(1);
  const SeriesSample sample = evaluate_instance(*w, rng, options);
  EXPECT_TRUE(sample.count("HEFT-LowerBound"));
  EXPECT_TRUE(sample.count("Msg-HEFT"));
  EXPECT_TRUE(sample.count("FaultFree-FTSA"));
  EXPECT_FALSE(sample.count("FTSA-LowerBound"));
}

// ------------------------------------------- random placement baseline

TEST(RandomScheduler, ProducesValidFaultTolerantSchedules) {
  const auto w = small_workload(3, 7);
  for (std::size_t eps : {0u, 1u, 2u}) {
    const auto s = make_scheduler("random:eps=" + std::to_string(eps) +
                                  ",seed=11")
                       ->run(w->costs());
    s.validate();
    EXPECT_EQ(s.epsilon(), eps);
    EXPECT_LE(s.lower_bound(), s.upper_bound() + 1e-9);
  }
}

TEST(RandomScheduler, DeterministicPerSeedAndSeedSensitive) {
  const auto w = small_workload(4, 6);
  const auto a = make_scheduler("random:seed=5")->run(w->costs());
  const auto b = make_scheduler("random:seed=5")->run(w->costs());
  const auto c = make_scheduler("random:seed=6")->run(w->costs());
  EXPECT_EQ(a.lower_bound(), b.lower_bound());
  EXPECT_EQ(a.upper_bound(), b.upper_bound());
  // Different placement seeds give different schedules (astronomically
  // likely for a 30-task workload on 6 processors).
  EXPECT_NE(a.mapping_matrix(), c.mapping_matrix());
}

TEST(RandomScheduler, SweepableViaInstanceAlgoList) {
  // The PR-1 seam end to end: a registry entry is all it takes for an
  // algorithm to be sweepable next to the paper's trio.
  const auto w = small_workload(5, 6);
  InstanceOptions options;
  options.epsilon = 1;
  options.seed = 9;
  InstanceAlgo random;
  random.key = "RANDOM";
  random.spec = "random";
  random.crash_counts = {1};
  options.algos = {random};
  Rng rng(1);
  const SeriesSample sample = evaluate_instance(*w, rng, options);
  EXPECT_TRUE(sample.count("RANDOM-LowerBound"));
  EXPECT_TRUE(sample.count("RANDOM-1Crash"));
  EXPECT_TRUE(sample.count("Msg-RANDOM"));
  // Simulated crash latency stays within the schedule's guaranteed bound.
  EXPECT_LE(sample.at("RANDOM-1Crash"), sample.at("RANDOM-UpperBound") + 1e-9);
}

}  // namespace
}  // namespace ftsched
