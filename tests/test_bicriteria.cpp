// Tests for the §4.3 bi-criteria drivers: deadlines, both-fixed feasibility
// detection, and the latency-fixed → max-ε searches.
#include <gtest/gtest.h>

#include "ftsched/core/bicriteria.hpp"
#include "ftsched/util/error.hpp"
#include "ftsched/workload/classic.hpp"
#include "ftsched/workload/paper_workload.hpp"

namespace ftsched {
namespace {

std::unique_ptr<Workload> small_workload(std::uint64_t seed,
                                         std::size_t procs = 6,
                                         std::size_t tasks = 30) {
  Rng rng(seed);
  PaperWorkloadParams params;
  params.task_min = params.task_max = tasks;
  params.proc_count = procs;
  return make_paper_workload(rng, params);
}

// ---------------------------------------------------------------- deadlines

TEST(Deadlines, ExitTasksGetTheLatency) {
  const auto w = small_workload(1);
  const double latency = 1000.0;
  const auto d = task_deadlines(w->costs(), latency, 1);
  for (TaskId t : w->graph().exit_tasks()) {
    EXPECT_DOUBLE_EQ(d[t.index()], latency);
  }
}

TEST(Deadlines, EarlierThanSuccessors) {
  const auto w = small_workload(2);
  const auto d = task_deadlines(w->costs(), 500.0, 2);
  for (const Edge& e : w->graph().edges()) {
    // d(ti) <= d(tj) − E*(tj) − W*(ti,tj) < d(tj).
    EXPECT_LT(d[e.src.index()], d[e.dst.index()]);
  }
}

TEST(Deadlines, ShiftEquivariantInLatency) {
  // The recursion is linear in L: d_{L+c}(t) = d_L(t) + c.
  const auto w = small_workload(3);
  const auto d1 = task_deadlines(w->costs(), 100.0, 1);
  const auto d2 = task_deadlines(w->costs(), 150.0, 1);
  for (std::size_t i = 0; i < d1.size(); ++i) {
    EXPECT_NEAR(d2[i] - d1[i], 50.0, 1e-9);
  }
}

TEST(Deadlines, RejectsBadEpsilon) {
  const auto w = small_workload(4, /*procs=*/3);
  EXPECT_THROW((void)task_deadlines(w->costs(), 10.0, 5), InvalidArgument);
}

// ---------------------------------------------------------------- both fixed

TEST(BothFixed, GenerousLatencyIsFeasible) {
  const auto w = small_workload(5);
  FtsaOptions options;
  options.epsilon = 1;
  const auto unconstrained = ftsa_schedule(w->costs(), options);
  // A latency far above what FTSA achieves must be feasible.
  const auto s = ftsa_schedule_with_deadline(
      w->costs(), 10.0 * unconstrained.upper_bound(), options);
  ASSERT_TRUE(s.has_value());
  s->validate();
  // The deadline test does not change any scheduling decision, only aborts
  // infeasible runs, so the schedule equals the unconstrained one.
  EXPECT_DOUBLE_EQ(s->lower_bound(), unconstrained.lower_bound());
  EXPECT_DOUBLE_EQ(s->upper_bound(), unconstrained.upper_bound());
}

TEST(BothFixed, ImpossibleLatencyIsRejectedEarly) {
  const auto w = small_workload(6);
  FtsaOptions options;
  options.epsilon = 2;
  const auto unconstrained = ftsa_schedule(w->costs(), options);
  // A latency far below the achievable one must be reported infeasible.
  const auto s = ftsa_schedule_with_deadline(
      w->costs(), 0.01 * unconstrained.lower_bound(), options);
  EXPECT_FALSE(s.has_value());
}

TEST(BothFixed, ChainWithTightBudget) {
  // Chain of 4 unit tasks, no comm heterogeneity: latency 4 is achievable
  // on identical processors, latency 3.5 is not.
  TaskGraph g = make_chain(4, ClassicParams{1.0});
  const Platform p(3, 1.0);
  std::vector<std::vector<double>> exec(4, std::vector<double>(3, 1.0));
  const CostModel costs(g, p, exec);
  FtsaOptions options;
  options.epsilon = 1;
  EXPECT_TRUE(ftsa_schedule_with_deadline(costs, 10.0, options).has_value());
  EXPECT_FALSE(ftsa_schedule_with_deadline(costs, 3.5, options).has_value());
}

// ---------------------------------------------------------------- max epsilon

TEST(MaxFailures, UnreachableLatencyReturnsNullopt) {
  const auto w = small_workload(7);
  const auto result = max_supported_failures(w->costs(), 1e-6);
  EXPECT_FALSE(result.has_value());
}

TEST(MaxFailures, HugeLatencySupportsMaximumEpsilon) {
  const auto w = small_workload(8, /*procs=*/5);
  const auto result = max_supported_failures(w->costs(), 1e9);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->epsilon, 4u);  // m − 1
}

TEST(MaxFailures, ResultIsFeasible) {
  const auto w = small_workload(9, /*procs=*/6);
  FtsaOptions base;
  const auto s1 = ftsa_schedule(w->costs(), FtsaOptions{1, 0});
  const double target = s1.upper_bound();  // ε = 1 definitely fits
  const auto result =
      max_supported_failures(w->costs(), target, LatencyBound::kUpper, base);
  ASSERT_TRUE(result.has_value());
  EXPECT_GE(result->epsilon, 1u);
  EXPECT_LE(result->upper_bound, target * (1 + 1e-12));
}

TEST(MaxFailures, BinaryAndLinearAgreeOnFeasibility) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto w = small_workload(seed, /*procs=*/5);
    const auto s1 = ftsa_schedule(w->costs(), FtsaOptions{1, 0});
    const double target = 1.2 * s1.upper_bound();
    const auto binary = max_supported_failures(
        w->costs(), target, LatencyBound::kUpper, {}, /*binary_search=*/true);
    const auto linear = max_supported_failures(
        w->costs(), target, LatencyBound::kUpper, {}, /*binary_search=*/false);
    ASSERT_TRUE(binary.has_value());
    ASSERT_TRUE(linear.has_value());
    // Both answers must themselves be feasible at the target.
    EXPECT_LE(binary->upper_bound, target * (1 + 1e-12));
    EXPECT_LE(linear->upper_bound, target * (1 + 1e-12));
  }
}

TEST(MaxFailures, BinarySearchUsesFewerSchedulesOnLargePlatforms) {
  Rng rng(11);
  PaperWorkloadParams params;
  params.task_min = params.task_max = 25;
  params.proc_count = 16;
  const auto w = make_paper_workload(rng, params);
  const auto binary = max_supported_failures(w->costs(), 1e9,
                                             LatencyBound::kUpper, {}, true);
  const auto linear = max_supported_failures(w->costs(), 1e9,
                                             LatencyBound::kUpper, {}, false);
  ASSERT_TRUE(binary.has_value());
  ASSERT_TRUE(linear.has_value());
  EXPECT_EQ(binary->epsilon, 15u);
  EXPECT_EQ(linear->epsilon, 15u);
  EXPECT_LT(binary->schedules_computed, linear->schedules_computed);
}

TEST(MaxFailures, LowerBoundModeIsMorePermissive) {
  // M* <= M, so for the same latency target the kLower criterion never
  // supports fewer failures than kUpper.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto w = small_workload(seed, /*procs=*/5);
    const auto s1 = ftsa_schedule(w->costs(), FtsaOptions{1, 0});
    const double target = s1.upper_bound();
    const auto lo =
        max_supported_failures(w->costs(), target, LatencyBound::kLower);
    const auto hi =
        max_supported_failures(w->costs(), target, LatencyBound::kUpper);
    ASSERT_TRUE(lo.has_value());
    ASSERT_TRUE(hi.has_value());
    EXPECT_GE(lo->epsilon, hi->epsilon);
  }
}

TEST(MaxFailures, RejectsNonPositiveLatency) {
  const auto w = small_workload(1);
  EXPECT_THROW((void)max_supported_failures(w->costs(), 0.0),
               InvalidArgument);
}

}  // namespace
}  // namespace ftsched
