// Unit + property tests for Hopcroft–Karp maximum bipartite matching.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <numeric>
#include <vector>

#include "ftsched/core/matching.hpp"
#include "ftsched/util/error.hpp"
#include "ftsched/util/rng.hpp"

namespace ftsched {
namespace {

// Exhaustive reference: maximum matching size by trying all left-node
// orderings with a recursive augmenting search (fine for <= 7 nodes).
std::size_t brute_force_matching(const BipartiteGraph& g) {
  std::vector<int> match_right(g.right_count(), -1);
  std::function<bool(std::size_t, std::vector<char>&)> try_augment =
      [&](std::size_t l, std::vector<char>& used) -> bool {
    for (std::size_t r : g.neighbors(l)) {
      if (used[r]) continue;
      used[r] = 1;
      if (match_right[r] < 0 ||
          try_augment(static_cast<std::size_t>(match_right[r]), used)) {
        match_right[r] = static_cast<int>(l);
        return true;
      }
    }
    return false;
  };
  std::size_t size = 0;
  for (std::size_t l = 0; l < g.left_count(); ++l) {
    std::vector<char> used(g.right_count(), 0);
    if (try_augment(l, used)) ++size;
  }
  return size;
}

bool matching_is_consistent(const BipartiteGraph& g, const Matching& m) {
  std::size_t count = 0;
  for (std::size_t l = 0; l < g.left_count(); ++l) {
    const std::size_t r = m.pair_of_left[l];
    if (r == Matching::kUnmatched) continue;
    ++count;
    if (m.pair_of_right[r] != l) return false;
    // The matched edge must exist.
    const auto& nbrs = g.neighbors(l);
    if (std::find(nbrs.begin(), nbrs.end(), r) == nbrs.end()) return false;
  }
  return count == m.size;
}

TEST(Matching, EmptyGraph) {
  const BipartiteGraph g(0, 0);
  const Matching m = hopcroft_karp(g);
  EXPECT_EQ(m.size, 0u);
  EXPECT_TRUE(m.saturates_left());
}

TEST(Matching, NoEdges) {
  const BipartiteGraph g(3, 3);
  const Matching m = hopcroft_karp(g);
  EXPECT_EQ(m.size, 0u);
  EXPECT_FALSE(m.saturates_left());
}

TEST(Matching, PerfectOnIdentity) {
  BipartiteGraph g(4, 4);
  for (std::size_t i = 0; i < 4; ++i) g.add_edge(i, i);
  const Matching m = hopcroft_karp(g);
  EXPECT_EQ(m.size, 4u);
  EXPECT_TRUE(m.saturates_left());
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(m.pair_of_left[i], i);
}

TEST(Matching, RequiresAugmentingPath) {
  // Classic case where the greedy matching must be augmented:
  // l0-{r0,r1}, l1-{r0}. Greedy l0->r0 blocks l1 unless augmented.
  BipartiteGraph g(2, 2);
  g.add_edge(0, 0);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  const Matching m = hopcroft_karp(g);
  EXPECT_EQ(m.size, 2u);
  EXPECT_EQ(m.pair_of_left[0], 1u);
  EXPECT_EQ(m.pair_of_left[1], 0u);
}

TEST(Matching, CompleteBipartite) {
  BipartiteGraph g(3, 5);
  for (std::size_t l = 0; l < 3; ++l) {
    for (std::size_t r = 0; r < 5; ++r) g.add_edge(l, r);
  }
  const Matching m = hopcroft_karp(g);
  EXPECT_EQ(m.size, 3u);
  EXPECT_TRUE(m.saturates_left());
  EXPECT_TRUE(matching_is_consistent(g, m));
}

TEST(Matching, KoenigStyleGap) {
  // Star: many lefts, one popular right => matching size 1.
  BipartiteGraph g(4, 1);
  for (std::size_t l = 0; l < 4; ++l) g.add_edge(l, 0);
  EXPECT_EQ(hopcroft_karp(g).size, 1u);
}

TEST(Matching, OutOfRangeEdgeThrows) {
  BipartiteGraph g(2, 2);
  EXPECT_THROW(g.add_edge(2, 0), InvalidArgument);
  EXPECT_THROW(g.add_edge(0, 2), InvalidArgument);
}

class MatchingProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MatchingProperty, AgreesWithBruteForceOnRandomGraphs) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 60; ++trial) {
    const auto lefts = static_cast<std::size_t>(rng.uniform_int(1, 7));
    const auto rights = static_cast<std::size_t>(rng.uniform_int(1, 7));
    BipartiteGraph g(lefts, rights);
    for (std::size_t l = 0; l < lefts; ++l) {
      for (std::size_t r = 0; r < rights; ++r) {
        if (rng.bernoulli(0.35)) g.add_edge(l, r);
      }
    }
    const Matching m = hopcroft_karp(g);
    EXPECT_TRUE(matching_is_consistent(g, m));
    EXPECT_EQ(m.size, brute_force_matching(g));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatchingProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

TEST(Matching, LargeBipartiteCompletesQuickly) {
  Rng rng(1);
  const std::size_t n = 500;
  BipartiteGraph g(n, n);
  for (std::size_t l = 0; l < n; ++l) {
    g.add_edge(l, l);  // guarantee a perfect matching exists
    for (int k = 0; k < 5; ++k) {
      g.add_edge(l, static_cast<std::size_t>(
                        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1)));
    }
  }
  const Matching m = hopcroft_karp(g);
  EXPECT_EQ(m.size, n);
}

}  // namespace
}  // namespace ftsched
