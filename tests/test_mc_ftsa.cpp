// Tests for MC-FTSA (§4.2): exact channel counts, Prop.-4.3 robustness of
// the selected channel sets, and selector equivalence properties.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "ftsched/core/ftsa.hpp"
#include "ftsched/core/mc_ftsa.hpp"
#include "ftsched/platform/failure.hpp"
#include "ftsched/sim/event_sim.hpp"
#include "ftsched/workload/paper_workload.hpp"

namespace ftsched {
namespace {

std::unique_ptr<Workload> small_workload(std::uint64_t seed,
                                         std::size_t procs = 6,
                                         std::size_t tasks = 30,
                                         double granularity = 1.0) {
  Rng rng(seed);
  PaperWorkloadParams params;
  params.task_min = params.task_max = tasks;
  params.proc_count = procs;
  params.granularity = granularity;
  return make_paper_workload(rng, params);
}

using McParam = std::tuple<std::uint64_t, std::size_t, McSelector>;

class McProperty : public ::testing::TestWithParam<McParam> {};

TEST_P(McProperty, LinearChannelCountModuloRepairs) {
  const auto [seed, epsilon, selector] = GetParam();
  const auto w = small_workload(seed);
  McFtsaOptions options;
  options.epsilon = epsilon;
  options.seed = seed;
  options.selector = selector;
  const auto s = mc_ftsa_schedule(w->costs(), options);
  s.validate();
  // §4.2's headline: e(ε+1) channels instead of e(ε+1)².  The end-to-end
  // repair may give individual (replica, edge) pairs the full source set,
  // so the count is exact only when nothing was repaired, and always stays
  // within the FTSA bound.
  const std::size_t n = epsilon + 1;
  const std::size_t e = w->graph().edge_count();
  EXPECT_GE(s.channel_count(), e * n);
  EXPECT_LE(s.channel_count(), e * n * n);
  if (s.repaired_tasks().empty()) {
    EXPECT_EQ(s.channel_count(), e * n);
  } else {
    EXPECT_GT(s.channel_count(), e * n);
  }
  EXPECT_LE(s.interproc_message_count(), s.channel_count());
}

TEST_P(McProperty, PaperModeIsExactlyLinear) {
  const auto [seed, epsilon, selector] = GetParam();
  const auto w = small_workload(seed);
  McFtsaOptions options;
  options.epsilon = epsilon;
  options.seed = seed;
  options.selector = selector;
  options.enforce_fault_tolerance = false;  // paper-faithful selection
  const auto s = mc_ftsa_schedule(w->costs(), options);
  s.validate();
  EXPECT_EQ(s.channel_count(), w->graph().edge_count() * (epsilon + 1));
  EXPECT_TRUE(s.repaired_tasks().empty());
}

TEST_P(McProperty, Prop43RobustChannelSets) {
  const auto [seed, epsilon, selector] = GetParam();
  const auto w = small_workload(seed, /*procs=*/5, /*tasks=*/20);
  McFtsaOptions options;
  options.epsilon = epsilon;
  options.seed = seed;
  options.selector = selector;
  const auto s = mc_ftsa_schedule(w->costs(), options);
  // Prop. 4.3: for every edge and every crash set S of size ε, some channel
  // has both endpoints outside S.
  const auto subsets = all_crash_subsets(5, epsilon);
  for (std::size_t e = 0; e < w->graph().edge_count(); ++e) {
    const Edge& edge = w->graph().edge(e);
    for (const FailureScenario& scenario : subsets) {
      bool survivor = false;
      for (const Channel& c : s.channels(e)) {
        const ProcId src = s.replicas(edge.src)[c.src_replica].proc;
        const ProcId dst = s.replicas(edge.dst)[c.dst_replica].proc;
        if (!scenario.is_failed(src) && !scenario.is_failed(dst)) {
          survivor = true;
          break;
        }
      }
      EXPECT_TRUE(survivor) << "edge " << e << " loses all channels";
    }
  }
}

TEST_P(McProperty, InternalChannelsAreForced) {
  const auto [seed, epsilon, selector] = GetParam();
  const auto w = small_workload(seed);
  McFtsaOptions options;
  options.epsilon = epsilon;
  options.seed = seed;
  options.selector = selector;
  options.enforce_fault_tolerance = false;  // property of the §4.2 selection
  const auto s = mc_ftsa_schedule(w->costs(), options);
  // Whenever a predecessor replica is co-located with a consumer replica,
  // the channel between them must be the intra-processor one (§4.2).
  for (std::size_t e = 0; e < w->graph().edge_count(); ++e) {
    const Edge& edge = w->graph().edge(e);
    const auto& src_reps = s.replicas(edge.src);
    const auto& dst_reps = s.replicas(edge.dst);
    for (std::size_t sk = 0; sk < src_reps.size(); ++sk) {
      for (std::size_t dk = 0; dk < dst_reps.size(); ++dk) {
        if (src_reps[sk].proc != dst_reps[dk].proc) continue;
        // Channel into dk must come from sk.
        for (const Channel& c : s.channels(e)) {
          if (c.dst_replica == dk) {
            EXPECT_EQ(c.src_replica, sk)
                << "edge " << e << ": co-located pair not using the "
                << "internal channel";
          }
        }
      }
    }
  }
}

TEST_P(McProperty, FailureFreeSimulationAchievesLowerBound) {
  const auto [seed, epsilon, selector] = GetParam();
  const auto w = small_workload(seed);
  McFtsaOptions options;
  options.epsilon = epsilon;
  options.seed = seed;
  options.selector = selector;
  const auto s = mc_ftsa_schedule(w->costs(), options);
  const SimulationResult r = simulate(s);
  ASSERT_TRUE(r.success);
  EXPECT_NEAR(r.latency, s.lower_bound(), 1e-9 * (1.0 + s.lower_bound()));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, McProperty,
    ::testing::Combine(::testing::Values(1u, 2u, 3u),
                       ::testing::Values(0u, 1u, 2u),
                       ::testing::Values(McSelector::kGreedy,
                                         McSelector::kBinarySearchMatching)));

TEST(McFtsa, EveryReplicaHasExactlyOneInboundChannelPerEdge) {
  const auto w = small_workload(4);
  McFtsaOptions options;
  options.epsilon = 2;
  options.enforce_fault_tolerance = false;  // property of the §4.2 selection
  const auto s = mc_ftsa_schedule(w->costs(), options);
  for (std::size_t e = 0; e < w->graph().edge_count(); ++e) {
    const Edge& edge = w->graph().edge(e);
    std::vector<int> inbound(s.replicas(edge.dst).size(), 0);
    std::vector<int> outbound(s.replicas(edge.src).size(), 0);
    for (const Channel& c : s.channels(e)) {
      ++inbound[c.dst_replica];
      ++outbound[c.src_replica];
    }
    for (int count : inbound) EXPECT_EQ(count, 1);
    for (int count : outbound) EXPECT_EQ(count, 1);  // one-to-one mapping
  }
}

TEST(McFtsa, FewerMessagesThanFtsa) {
  // The whole point of MC-FTSA: drastically fewer inter-processor messages.
  const auto w = small_workload(6, /*procs=*/10, /*tasks=*/60);
  FtsaOptions ftsa_opts;
  ftsa_opts.epsilon = 3;
  McFtsaOptions mc_opts;
  mc_opts.epsilon = 3;
  const auto ftsa = ftsa_schedule(w->costs(), ftsa_opts);
  const auto mc = mc_ftsa_schedule(w->costs(), mc_opts);
  EXPECT_LT(mc.interproc_message_count(), ftsa.interproc_message_count());
  EXPECT_LT(mc.channel_count(), ftsa.channel_count());
  // In paper mode the linear bound e(ε+1) is exact.
  mc_opts.enforce_fault_tolerance = false;
  const auto mc_paper = mc_ftsa_schedule(w->costs(), mc_opts);
  EXPECT_EQ(mc_paper.channel_count(), w->graph().edge_count() * 4);
}

TEST(McFtsa, LowerBoundAtLeastFtsa) {
  // Restricting channels can only delay data arrival: for the same replica
  // placement decisions MC-FTSA's bound is >= FTSA's. Placement decisions
  // are made with the same eq.-(1) evaluation, so this holds on average; we
  // assert the aggregate to stay robust to tie-break noise.
  double ftsa_sum = 0.0;
  double mc_sum = 0.0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto w = small_workload(seed);
    FtsaOptions fo;
    fo.epsilon = 2;
    fo.seed = seed;
    McFtsaOptions mo;
    mo.epsilon = 2;
    mo.seed = seed;
    ftsa_sum += ftsa_schedule(w->costs(), fo).lower_bound();
    mc_sum += mc_ftsa_schedule(w->costs(), mo).lower_bound();
  }
  EXPECT_GE(mc_sum, ftsa_sum * 0.999);
}

// Regression for the soundness gap we found in the paper (DESIGN.md §2):
// the paper-faithful per-edge selection produces schedules that a SINGLE
// crash can break, and the repair fixes exactly those cases.
TEST(McFtsa, RepairRestoresTheorem41) {
  std::size_t gap_instances = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto w = small_workload(seed, /*procs=*/5, /*tasks=*/20);
    McFtsaOptions paper;
    paper.epsilon = 1;
    paper.seed = seed;
    paper.enforce_fault_tolerance = false;
    const auto unsafe = mc_ftsa_schedule(w->costs(), paper);
    McFtsaOptions fixed = paper;
    fixed.enforce_fault_tolerance = true;
    const auto safe = mc_ftsa_schedule(w->costs(), fixed);
    bool unsafe_failed = false;
    for (const FailureScenario& scenario : all_crash_subsets(5, 1)) {
      if (!simulate(unsafe, scenario).success) unsafe_failed = true;
      // The repaired schedule must survive every single-crash scenario.
      EXPECT_TRUE(simulate(safe, scenario).success);
    }
    if (unsafe_failed) ++gap_instances;
  }
  // The gap is not a fluke: it shows up in several of the six instances.
  EXPECT_GE(gap_instances, 1u);
}

TEST(McFtsa, UpperBoundTighterThanFtsaOnAverage) {
  // With one inbound channel per replica, the pessimistic timeline no
  // longer takes a max over all replica pairs, so M should be much closer
  // to M* than FTSA's (the paper's Figure 1a observation).
  double ftsa_gap = 0.0;
  double mc_gap = 0.0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto w = small_workload(seed, /*procs=*/10, /*tasks=*/50);
    FtsaOptions fo;
    fo.epsilon = 2;
    McFtsaOptions mo;
    mo.epsilon = 2;
    const auto f = ftsa_schedule(w->costs(), fo);
    const auto m = mc_ftsa_schedule(w->costs(), mo);
    ftsa_gap += f.upper_bound() - f.lower_bound();
    mc_gap += m.upper_bound() - m.lower_bound();
  }
  EXPECT_LT(mc_gap, ftsa_gap);
}

}  // namespace
}  // namespace ftsched
