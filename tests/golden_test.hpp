// Shared scaffolding for golden-file regression tests.
//
// `expect_matches_golden(path, actual, what)` implements the repo's golden
// convention in one place: with FTSCHED_UPDATE_GOLDEN set it rewrites the
// committed file and skips (review + commit that diff — it IS the behavior
// change); otherwise it byte-compares `actual` against the file and fails
// with the regeneration hint.  Call it as the last statement of the test
// (GTEST_SKIP/ASSERT return from this helper, not from the caller).
#pragma once

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace ftsched::goldentest {

inline void expect_matches_golden(const char* path, const std::string& actual,
                                  const char* what) {
  if (std::getenv("FTSCHED_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    GTEST_SKIP() << "golden file regenerated at " << path
                 << " — review and commit the diff";
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good())
      << "missing golden file " << path
      << " (generate with FTSCHED_UPDATE_GOLDEN=1 and commit it)";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(expected.str(), actual)
      << what
      << " drifted from the committed golden.  If the change is "
         "intentional, regenerate with FTSCHED_UPDATE_GOLDEN=1 and commit "
         "the diff.";
}

}  // namespace ftsched::goldentest
