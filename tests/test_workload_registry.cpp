// Tests for the WorkloadRegistry: family lookup, canonical-name round
// trips, sweep-point pinning, the trace family, property-based generation
// checks (via proptest.hpp), and the extended determinism contract of
// run_sweep over (workload family × crash scenario) cells.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <iterator>
#include <set>
#include <string>
#include <vector>

#include "ftsched/core/scheduler.hpp"
#include "ftsched/dag/serialize.hpp"
#include "ftsched/experiments/runner.hpp"
#include "ftsched/sim/event_sim.hpp"
#include "ftsched/util/error.hpp"
#include "ftsched/workload/classic.hpp"
#include "ftsched/workload/workload_registry.hpp"
#include "proptest.hpp"

namespace ftsched {
namespace {

// ----------------------------------------------------------------- registry

TEST(WorkloadRegistry, HasAtLeastTheFourCoreFamilies) {
  const std::vector<std::string> names = WorkloadRegistry::global().names();
  const std::set<std::string> set(names.begin(), names.end());
  for (const char* expected : {"paper", "layered", "gnp", "trace", "fft",
                               "cholesky", "chain", "wavefront"}) {
    EXPECT_TRUE(set.count(expected)) << expected;
  }
  EXPECT_GE(names.size(), 4u);
}

TEST(WorkloadRegistry, CanonicalNamesOmitDefaultsAndRoundTrip) {
  const WorkloadRegistry& registry = WorkloadRegistry::global();
  EXPECT_EQ(registry.create("paper")->name(), "paper");
  EXPECT_EQ(registry.create("paper:tmin=100,tmax=150")->name(), "paper");
  EXPECT_EQ(registry.create("fft:size=8")->name(), "fft");  // 8 is default
  for (const char* spec :
       {"paper:tmin=20,tmax=24", "layered:tasks=40,width=4,p=0.5",
        "gnp:tasks=30,p=0.1", "fft:size=16", "cholesky:size=3,volume=50",
        "wavefront:size=4,procs=5,g=0.8", "sp:size=20"}) {
    const WorkloadFamilyPtr first = registry.create(spec);
    const WorkloadFamilyPtr second = registry.create(first->name());
    EXPECT_EQ(first->name(), second->name()) << "spec: " << spec;
    EXPECT_FALSE(first->describe().empty()) << spec;
  }
}

TEST(WorkloadRegistry, SweepPointSuppliesUnpinnedDimensions) {
  Rng rng(7);
  const SweepPoint point{0.7, 5};
  const auto unpinned = make_workload_family("paper:tmin=20,tmax=24");
  const auto w = unpinned->generate(rng, point);
  EXPECT_EQ(w->platform().proc_count(), 5u);
  EXPECT_NEAR(w->costs().granularity(), 0.7, 1e-9);

  // Spec-pinned procs/g win over the sweep point (like explicit scheduler
  // options win over injected defaults).
  Rng rng2(7);
  const auto pinned = make_workload_family("paper:tmin=20,tmax=24,procs=3,g=1.5");
  const auto w2 = pinned->generate(rng2, point);
  EXPECT_EQ(w2->platform().proc_count(), 3u);
  EXPECT_NEAR(w2->costs().granularity(), 1.5, 1e-9);
}

TEST(WorkloadRegistry, DefaultsInjectionBridgesFlagCallers) {
  // make_workload_family's defaults fill keys the spec left unset...
  const auto fam = make_workload_family("paper", {{"procs", "4"}, {"g", "0.5"}});
  Rng rng(3);
  const auto w = fam->generate(rng, SweepPoint{2.0, 9});  // point is ignored
  EXPECT_EQ(w->platform().proc_count(), 4u);
  EXPECT_NEAR(w->costs().granularity(), 0.5, 1e-9);
  // ...and keys a family does not support are skipped, not rejected.
  EXPECT_NO_THROW((void)make_workload_family("fft", {{"tmin", "10"}}));
}

TEST(WorkloadRegistry, TraceFamilyLoadsServedGraph) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("ftsched_trace_test_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "fft.txt").string();
  {
    std::ofstream out(path);
    write_graph(out, make_fft(8));
  }
  const auto family = make_workload_family("trace:file=" + path);
  EXPECT_EQ(family->name(), "trace:file=" + path);
  Rng rng(11);
  const auto w = family->generate(rng, SweepPoint{1.0, 4});
  EXPECT_EQ(w->graph().task_count(), make_fft(8).task_count());
  EXPECT_EQ(w->platform().proc_count(), 4u);
  // Missing files fail at construction, not at first generate().
  EXPECT_THROW((void)make_workload_family("trace:file=/nonexistent/g.txt"),
               InvalidArgument);
  EXPECT_THROW((void)make_workload_family("trace"), InvalidArgument);
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------- property tests

/// Specs covering every structural corner: random families, regular
/// graphs, and a heavy-tailed classic.  (trace is exercised separately —
/// it needs a file on disk.)
const char* const kPropertySpecs[] = {
    "paper:tmin=15,tmax=30", "layered:tasks=25,width=4", "gnp:tasks=20,p=0.2",
    "chain:size=10",         "forkjoin:size=8",          "intree:size=8",
    "outtree:size=8",        "fft:size=8",               "gauss:size=5",
    "wavefront:size=4",      "sp:size=18",               "cholesky:size=3",
    "lu:size=3",
};

TEST(WorkloadProperty, EveryFamilyGeneratesSchedulableWorkloads) {
  proptest::check(
      "random family x random sweep point -> valid FTSA schedule",
      [&](Rng& rng, std::uint64_t) {
        const std::string spec =
            kPropertySpecs[rng() % std::size(kPropertySpecs)];
        SCOPED_TRACE("spec: " + spec);
        const SweepPoint point{rng.uniform(0.3, 2.0),
                               static_cast<std::size_t>(rng.uniform_int(4, 8))};
        const auto family = make_workload_family(spec);
        const auto w = family->generate(rng, point);
        ASSERT_GT(w->graph().task_count(), 0u);
        EXPECT_EQ(w->platform().proc_count(), point.proc_count);
        if (w->graph().edge_count() > 0) {
          EXPECT_NEAR(w->costs().granularity(), point.granularity,
                      1e-9 * (1.0 + point.granularity));
        }
        const auto schedule =
            make_scheduler("ftsa:eps=1")->run(w->costs());
        schedule.validate();
        EXPECT_LE(schedule.lower_bound(), schedule.upper_bound() + 1e-9);
        // One crash is within epsilon: the execution must succeed within
        // the guaranteed bound (Prop. 4.2).
        FailureScenario crash;
        crash.add(ProcId{static_cast<std::size_t>(rng() % point.proc_count)},
                  0.0);
        const SimulationResult r = simulate(schedule, crash);
        EXPECT_TRUE(r.success);
        EXPECT_LE(r.latency, schedule.upper_bound() + 1e-9);
      });
}

TEST(WorkloadProperty, GenerationIsDeterministicGivenSeedAndPoint) {
  proptest::check(
      "same (spec, seed, point) -> identical workload and schedule",
      [&](Rng& rng, std::uint64_t case_seed) {
        const std::string spec =
            kPropertySpecs[rng() % std::size(kPropertySpecs)];
        SCOPED_TRACE("spec: " + spec);
        const SweepPoint point{rng.uniform(0.3, 2.0),
                               static_cast<std::size_t>(rng.uniform_int(4, 8))};
        const auto family = make_workload_family(spec);
        Rng a(case_seed);
        Rng b(case_seed);
        const auto wa = family->generate(a, point);
        const auto wb = family->generate(b, point);
        EXPECT_EQ(graph_to_string(wa->graph()), graph_to_string(wb->graph()));
        const auto sa = make_scheduler("ftsa")->run(wa->costs());
        const auto sb = make_scheduler("ftsa")->run(wb->costs());
        EXPECT_EQ(sa.lower_bound(), sb.lower_bound());
        EXPECT_EQ(sa.upper_bound(), sb.upper_bound());
      },
      proptest::PropConfig{.iterations = 15});
}

// ----------------------------------- determinism across families/scenarios

FigureConfig cross_sweep_config(std::size_t threads) {
  FigureConfig config;
  config.epsilon = 1;
  config.proc_count = 5;
  config.graphs_per_point = 2;
  config.seed = 13;
  config.granularities = {0.8, 1.6};
  config.threads = threads;
  config.workloads = {"paper:tmin=18,tmax=22", "fft:size=8"};
  config.scenarios = {"t0", "frac:f=0.5"};
  return config;
}

TEST(RunSweepCross, FamiliesTimesScenariosIsBitIdenticalAcrossThreadCounts) {
  // The ISSUE-2 determinism extension: >= 2 workload families x >= 2 crash
  // scenarios, threads=N bit-identical to threads=1.
  const SweepResult serial = run_sweep(cross_sweep_config(1));
  const SweepResult parallel4 = run_sweep(cross_sweep_config(4));
  const SweepResult parallel7 = run_sweep(cross_sweep_config(7));
  EXPECT_TRUE(sweep_results_identical(serial, parallel4));
  EXPECT_TRUE(sweep_results_identical(serial, parallel7));
  ASSERT_EQ(serial.workloads.size(), 2u);
  ASSERT_EQ(serial.scenarios.size(), 2u);
}

TEST(RunSweepCross, DecoratedSeriesCoverEveryCell) {
  const SweepResult sweep = run_sweep(cross_sweep_config(0));
  for (const std::string& workload : sweep.workloads) {
    for (const std::string& scenario : sweep.scenarios) {
      for (const char* series : {"FTSA-LowerBound", "FTSA-1Crash",
                                 "MC-FTSA-1Crash", "FaultFree-FTSA"}) {
        const std::string name =
            sweep_series_name(sweep, series, workload, scenario);
        ASSERT_TRUE(sweep.series.count(name)) << "missing " << name;
        EXPECT_EQ(sweep.series.at(name).size(), 2u) << name;
        EXPECT_EQ(sweep.series.at(name)[0].count(), 2u) << name;
      }
    }
  }
}

TEST(RunSweepCross, ScenarioCellsArePairedOnIdenticalInstances) {
  // Scenario cells of one family share RNG streams, so scenario curves are
  // paired: crash-independent series (schedule bounds) must agree exactly
  // across scenarios, while crash latencies may differ.
  const SweepResult sweep = run_sweep(cross_sweep_config(0));
  for (const std::string& workload : sweep.workloads) {
    const auto& t0 = sweep.series.at(
        sweep_series_name(sweep, "FTSA-LowerBound", workload, "t0"));
    const auto& frac = sweep.series.at(
        sweep_series_name(sweep, "FTSA-LowerBound", workload, "frac:f=0.5"));
    for (std::size_t gi = 0; gi < t0.size(); ++gi) {
      EXPECT_EQ(t0[gi].mean(), frac[gi].mean()) << workload << " gi=" << gi;
    }
  }
}

TEST(RunSweepCross, SingleCellSweepKeepsUndecoratedSeriesNames) {
  FigureConfig config = cross_sweep_config(1);
  config.workloads = {"fft:size=8"};
  config.scenarios = {"frac:f=0.5"};
  const SweepResult sweep = run_sweep(config);
  EXPECT_TRUE(sweep.series.count("FTSA-LowerBound"));
  EXPECT_EQ(sweep.workloads, std::vector<std::string>{"fft:size=8"});
  EXPECT_EQ(sweep.scenarios, std::vector<std::string>{"frac:f=0.5"});
}

TEST(RunSweepCross, LateCrashesCostNoMoreThanWorstCase) {
  // frac:f=1.2 crashes after every replica chain completed: the achieved
  // latency equals the fault-free execution, which can never exceed the
  // paired t=0 worst case.
  FigureConfig config = cross_sweep_config(1);
  config.workloads = {"paper:tmin=18,tmax=22"};
  config.scenarios = {"t0", "frac:f=1.2"};
  const SweepResult sweep = run_sweep(config);
  const std::string w = config.workloads[0];
  const auto& worst = sweep.series.at(
      sweep_series_name(sweep, "FTSA-1Crash", w, "t0"));
  const auto& late = sweep.series.at(
      sweep_series_name(sweep, "FTSA-1Crash", w, "frac:f=1.2"));
  for (std::size_t gi = 0; gi < worst.size(); ++gi) {
    EXPECT_LE(late[gi].mean(), worst[gi].mean() + 1e-9) << "gi=" << gi;
  }
}

}  // namespace
}  // namespace ftsched
