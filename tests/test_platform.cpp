// Unit tests for the platform substrate: Platform, CostModel, failures,
// generators.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "ftsched/platform/cost_model.hpp"
#include "ftsched/platform/failure.hpp"
#include "ftsched/platform/generator.hpp"
#include "ftsched/platform/platform.hpp"
#include "ftsched/util/error.hpp"
#include "ftsched/workload/classic.hpp"

namespace ftsched {
namespace {

// ---------------------------------------------------------------- platform

TEST(Platform, UniformDelays) {
  const Platform p(4, 0.5);
  EXPECT_EQ(p.proc_count(), 4u);
  EXPECT_DOUBLE_EQ(p.delay(ProcId{0u}, ProcId{1u}), 0.5);
  EXPECT_DOUBLE_EQ(p.delay(ProcId{2u}, ProcId{2u}), 0.0);
  EXPECT_DOUBLE_EQ(p.average_delay(), 0.5);
  EXPECT_DOUBLE_EQ(p.max_delay(), 0.5);
  EXPECT_DOUBLE_EQ(p.max_delay_from(ProcId{1u}), 0.5);
}

TEST(Platform, MatrixConstruction) {
  const Platform p({{0.0, 1.0, 2.0}, {3.0, 0.0, 4.0}, {5.0, 6.0, 0.0}});
  EXPECT_DOUBLE_EQ(p.delay(ProcId{0u}, ProcId{2u}), 2.0);
  EXPECT_DOUBLE_EQ(p.delay(ProcId{2u}, ProcId{1u}), 6.0);
  EXPECT_DOUBLE_EQ(p.average_delay(), 21.0 / 6.0);
  EXPECT_DOUBLE_EQ(p.max_delay(), 6.0);
  EXPECT_DOUBLE_EQ(p.max_delay_from(ProcId{0u}), 2.0);
}

TEST(Platform, RejectsBadMatrices) {
  EXPECT_THROW(Platform({{0.0, 1.0}}), InvalidArgument);          // not square
  EXPECT_THROW(Platform({{1.0, 1.0}, {1.0, 0.0}}), InvalidArgument);  // diag
  EXPECT_THROW(Platform({{0.0, -1.0}, {1.0, 0.0}}), InvalidArgument);
  EXPECT_THROW(Platform(0, 1.0), InvalidArgument);
}

TEST(Platform, SingleProcessor) {
  const Platform p(1, 1.0);
  EXPECT_DOUBLE_EQ(p.average_delay(), 0.0);
  EXPECT_EQ(p.procs().size(), 1u);
}

TEST(Platform, FastestLinks) {
  // P1 has cheap outgoing links, P0 expensive.
  const Platform p({{0.0, 9.0, 9.0}, {1.0, 0.0, 1.0}, {5.0, 5.0, 0.0}});
  const auto fastest = p.fastest_links(2);
  ASSERT_EQ(fastest.size(), 2u);
  EXPECT_EQ(fastest[0], ProcId{1u});
  EXPECT_EQ(fastest[1], ProcId{2u});
}

TEST(Platform, OffDiagonalDelays) {
  const Platform p(3, 2.0);
  const auto d = p.off_diagonal_delays();
  EXPECT_EQ(d.size(), 6u);
  for (double x : d) EXPECT_DOUBLE_EQ(x, 2.0);
}

// ---------------------------------------------------------------- cost model

class CostModelTest : public ::testing::Test {
 protected:
  CostModelTest()
      : graph_(make_chain(3, ClassicParams{10.0})),
        platform_(2, 1.0),
        costs_(graph_, platform_,
               {{2.0, 4.0}, {6.0, 8.0}, {1.0, 3.0}}) {}

  TaskGraph graph_;
  Platform platform_;
  CostModel costs_;
};

TEST_F(CostModelTest, ExecLookup) {
  EXPECT_DOUBLE_EQ(costs_.exec(TaskId{0u}, ProcId{1u}), 4.0);
  EXPECT_DOUBLE_EQ(costs_.exec(TaskId{2u}, ProcId{0u}), 1.0);
}

TEST_F(CostModelTest, Aggregates) {
  EXPECT_DOUBLE_EQ(costs_.avg_exec(TaskId{0u}), 3.0);
  EXPECT_DOUBLE_EQ(costs_.max_exec(TaskId{1u}), 8.0);
  EXPECT_DOUBLE_EQ(costs_.min_exec(TaskId{1u}), 6.0);
  EXPECT_DOUBLE_EQ(costs_.mean_avg_exec(), (3.0 + 7.0 + 2.0) / 3.0);
}

TEST_F(CostModelTest, AvgExecOnSubset) {
  EXPECT_DOUBLE_EQ(costs_.avg_exec_on(TaskId{0u}, {ProcId{1u}}), 4.0);
  EXPECT_THROW((void)costs_.avg_exec_on(TaskId{0u}, {}), InvalidArgument);
}

TEST_F(CostModelTest, CommCost) {
  // chain edges have volume 10, delay 1 inter-proc / 0 intra.
  EXPECT_DOUBLE_EQ(costs_.comm(0, ProcId{0u}, ProcId{1u}), 10.0);
  EXPECT_DOUBLE_EQ(costs_.comm(0, ProcId{0u}, ProcId{0u}), 0.0);
  EXPECT_DOUBLE_EQ(costs_.avg_comm(0), 10.0);
}

TEST_F(CostModelTest, Granularity) {
  // comp = 4 + 8 + 3 = 15; comm = 2 edges * 10 * 1 = 20.
  EXPECT_DOUBLE_EQ(costs_.granularity(), 15.0 / 20.0);
}

TEST_F(CostModelTest, ScaleExec) {
  costs_.scale_exec(2.0);
  EXPECT_DOUBLE_EQ(costs_.exec(TaskId{0u}, ProcId{0u}), 4.0);
  EXPECT_DOUBLE_EQ(costs_.granularity(), 30.0 / 20.0);
  EXPECT_THROW(costs_.scale_exec(0.0), InvalidArgument);
}

TEST(CostModel, GranularityInfiniteWithoutEdges) {
  TaskGraph g;
  (void)g.add_task();
  const Platform p(2, 1.0);
  const CostModel costs(g, p, {{1.0, 2.0}});
  EXPECT_TRUE(std::isinf(costs.granularity()));
}

TEST(CostModel, RejectsBadMatrices) {
  TaskGraph g;
  (void)g.add_task();
  const Platform p(2, 1.0);
  EXPECT_THROW(CostModel(g, p, {}), InvalidArgument);
  EXPECT_THROW(CostModel(g, p, {{1.0}}), InvalidArgument);
  EXPECT_THROW(CostModel(g, p, {{1.0, 0.0}}), InvalidArgument);  // zero exec
}

// ---------------------------------------------------------------- failures

TEST(Failure, BasicScenario) {
  FailureScenario s;
  s.add(ProcId{2u}, 5.0);
  EXPECT_EQ(s.crash_count(), 1u);
  EXPECT_TRUE(s.is_failed(ProcId{2u}));
  EXPECT_FALSE(s.is_failed(ProcId{1u}));
  EXPECT_DOUBLE_EQ(s.crash_time(ProcId{2u}), 5.0);
  EXPECT_TRUE(s.alive_at(ProcId{2u}, 4.9));
  EXPECT_FALSE(s.alive_at(ProcId{2u}, 5.0));
  EXPECT_TRUE(s.alive_at(ProcId{1u}, 1e9));
}

TEST(Failure, RejectsDuplicatesAndBadInput) {
  FailureScenario s;
  s.add(ProcId{0u});
  EXPECT_THROW(s.add(ProcId{0u}, 1.0), InvalidArgument);
  EXPECT_THROW(s.add(ProcId{1u}, -1.0), InvalidArgument);
  EXPECT_THROW(s.add(ProcId{}), InvalidArgument);
}

TEST(Failure, RandomCrashesDistinctVictims) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const FailureScenario s = random_crashes(rng, 10, 4);
    EXPECT_EQ(s.crash_count(), 4u);
    std::set<ProcId> victims;
    for (const Crash& c : s.crashes()) {
      victims.insert(c.proc);
      EXPECT_DOUBLE_EQ(c.time, 0.0);
      EXPECT_LT(c.proc.index(), 10u);
    }
    EXPECT_EQ(victims.size(), 4u);
  }
}

TEST(Failure, RandomTimedCrashesWithinHorizon) {
  Rng rng(3);
  const FailureScenario s = random_timed_crashes(rng, 8, 3, 100.0);
  for (const Crash& c : s.crashes()) {
    EXPECT_GE(c.time, 0.0);
    EXPECT_LT(c.time, 100.0);
  }
}

TEST(Failure, AllSubsetsCount) {
  EXPECT_EQ(all_crash_subsets(5, 0).size(), 1u);
  EXPECT_EQ(all_crash_subsets(5, 1).size(), 5u);
  EXPECT_EQ(all_crash_subsets(5, 2).size(), 10u);
  EXPECT_EQ(all_crash_subsets(5, 3).size(), 10u);
  EXPECT_EQ(all_crash_subsets(6, 3).size(), 20u);
}

TEST(Failure, AllSubsetsAreDistinctAndCorrectSize) {
  const auto subsets = all_crash_subsets(6, 2);
  std::set<std::set<std::uint32_t>> seen;
  for (const FailureScenario& s : subsets) {
    EXPECT_EQ(s.crash_count(), 2u);
    std::set<std::uint32_t> key;
    for (const Crash& c : s.crashes()) key.insert(c.proc.value());
    seen.insert(key);
  }
  EXPECT_EQ(seen.size(), subsets.size());
}

// ---------------------------------------------------------------- generators

TEST(Generator, RandomPlatformDelaysInRange) {
  Rng rng(1);
  PlatformParams params;
  params.proc_count = 10;
  params.delay_min = 0.5;
  params.delay_max = 1.0;
  const Platform p = make_random_platform(rng, params);
  EXPECT_EQ(p.proc_count(), 10u);
  for (ProcId a : p.procs()) {
    for (ProcId b : p.procs()) {
      const double d = p.delay(a, b);
      if (a == b) {
        EXPECT_DOUBLE_EQ(d, 0.0);
      } else {
        EXPECT_GE(d, 0.5);
        EXPECT_LT(d, 1.0);
      }
    }
  }
}

TEST(Generator, InconsistentExecCosts) {
  Rng rng(2);
  const TaskGraph g = make_chain(20);
  ExecCostParams params;
  params.base_min = 10.0;
  params.base_max = 50.0;
  params.spread = 1.0;
  const auto exec = make_exec_costs(rng, g, 5, params);
  ASSERT_EQ(exec.size(), 20u);
  for (const auto& row : exec) {
    ASSERT_EQ(row.size(), 5u);
    for (double e : row) {
      EXPECT_GE(e, 10.0);
      EXPECT_LE(e, 100.0);  // base_max * (1 + spread)
    }
  }
}

TEST(Generator, ConsistentExecCostsAreRatioConsistent) {
  Rng rng(2);
  const TaskGraph g = make_chain(10);
  ExecCostParams params;
  params.heterogeneity = Heterogeneity::kConsistent;
  const auto exec = make_exec_costs(rng, g, 4, params);
  // Under the uniform-machines model, exec[t][p] / exec[t][q] is the same
  // for every task t.
  for (std::size_t p = 0; p < 4; ++p) {
    for (std::size_t q = 0; q < 4; ++q) {
      const double ratio = exec[0][p] / exec[0][q];
      for (std::size_t t = 1; t < 10; ++t) {
        EXPECT_NEAR(exec[t][p] / exec[t][q], ratio, 1e-9);
      }
    }
  }
}

TEST(Generator, RejectsBadParams) {
  Rng rng(1);
  const TaskGraph g = make_chain(2);
  ExecCostParams bad;
  bad.base_min = 0.0;
  EXPECT_THROW((void)make_exec_costs(rng, g, 2, bad), InvalidArgument);
  PlatformParams badp;
  badp.proc_count = 0;
  EXPECT_THROW((void)make_random_platform(rng, badp), InvalidArgument);
}

}  // namespace
}  // namespace ftsched
