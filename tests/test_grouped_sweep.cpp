// Schedule-once/simulate-many sweep evaluation (PR 5 tentpole): the grouped
// path of run_plan / SweepPlan::evaluate_group must be bit-identical to the
// legacy per-coordinate path for every thread count, window size and shard
// partition — including shards whose base-key groups are partial (a strided
// shard keeps only some (scenario, failure) cells of a group).
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "ftsched/experiments/sweep_io.hpp"
#include "ftsched/experiments/sweep_plan.hpp"
#include "ftsched/util/error.hpp"

namespace ftsched {
namespace {

/// 2 workloads x 2 scenarios x 2 failure models x 2 granularities x 2 reps
/// = 32 instances in 8 base-key groups of 4 cells each.
FigureConfig grid_config() {
  FigureConfig config = figure_config(1);
  config.granularities = {0.5, 1.0};
  config.graphs_per_point = 2;
  config.proc_count = 5;
  config.workload.proc_count = 5;
  config.seed = 17;
  config.threads = 2;
  config.workloads = {"paper", "chain:size=10"};
  config.scenarios = {"t0", "frac:f=0.5"};
  config.failure_models = {"eps", "bernoulli:p=0.3"};
  return config;
}

/// The sink-visible outcome of a run, for byte-level comparison: the JSONL
/// shard stream captures every sample (hex-float exact) in delivery order.
std::string shard_bytes(const SweepPlan& plan, const RunPlanOptions& options) {
  std::stringstream out;
  ShardWriterSink sink(out, plan);
  run_plan(plan, sink, options);
  return out.str();
}

TEST(GroupedSweep, GroupSelectionPartitionsTheSelection) {
  const SweepPlan plan(grid_config());
  const auto groups = plan.group_selection();
  EXPECT_EQ(groups.size(), 2u * 2u * 2u);  // W x P x R base keys
  std::set<std::size_t> seen;
  for (const auto& group : groups) {
    ASSERT_FALSE(group.empty());
    const InstanceCoord first = plan.coord(group.front());
    for (std::size_t i = 0; i < group.size(); ++i) {
      EXPECT_TRUE(seen.insert(group[i]).second) << "index in two groups";
      const InstanceCoord c = plan.coord(group[i]);
      // Same base key: only the (scenario, failure) cell may differ.
      EXPECT_EQ(c.workload, first.workload);
      EXPECT_EQ(c.gran, first.gran);
      EXPECT_EQ(c.rep, first.rep);
      if (i > 0) {
        EXPECT_GT(group[i], group[i - 1]);  // members ascend
      }
    }
    // Full plan: every group carries all S x F cells.
    EXPECT_EQ(group.size(), 2u * 2u);
  }
  EXPECT_EQ(seen.size(), plan.size());
}

TEST(GroupedSweep, EvaluateGroupMatchesEvaluatePerCoordinate) {
  const SweepPlan plan(grid_config());
  for (const auto& group : plan.group_selection()) {
    const std::vector<SeriesSample> samples = plan.evaluate_group(group);
    ASSERT_EQ(samples.size(), group.size());
    for (std::size_t i = 0; i < group.size(); ++i) {
      EXPECT_EQ(samples[i], plan.evaluate(plan.coord(group[i])))
          << "group sample " << i << " diverged from the legacy path";
    }
  }
}

TEST(GroupedSweep, EvaluateGroupRejectsMixedBaseKeys) {
  const SweepPlan plan(grid_config());
  const auto groups = plan.group_selection();
  ASSERT_GE(groups.size(), 2u);
  // First member of two different groups: distinct base keys.
  const std::vector<std::size_t> mixed{groups[0].front(), groups[1].front()};
  EXPECT_THROW((void)plan.evaluate_group(mixed), InvalidArgument);
  EXPECT_THROW((void)plan.evaluate_group({}), InvalidArgument);
}

TEST(GroupedSweep, BitIdenticalAcrossThreadCountsAndWindows) {
  FigureConfig config = grid_config();
  config.threads = 1;
  const SweepPlan serial_plan(config);
  OnlineStatsSink reference_sink(serial_plan);
  run_plan(serial_plan, reference_sink, RunPlanOptions{.group = false});
  const SweepResult reference = reference_sink.take();

  for (const std::size_t threads : {1u, 2u, 3u}) {
    for (const bool group : {false, true}) {
      for (const std::size_t window : {0u, 1u, 2u}) {
        config.threads = threads;
        const SweepPlan plan(config);
        OnlineStatsSink sink(plan);
        run_plan(plan, sink, RunPlanOptions{.group = group, .window = window});
        EXPECT_TRUE(sweep_results_identical(reference, sink.take()))
            << "threads=" << threads << " group=" << group
            << " window=" << window;
      }
    }
  }
}

TEST(GroupedSweep, ShardsWithPartialGroupsStayByteIdentical) {
  const SweepPlan plan(grid_config());
  // A 3-way stride of a 4-cell-per-group grid leaves every shard with
  // partial groups; make sure that premise actually holds, then compare
  // the grouped shard stream byte for byte against the legacy path.
  for (std::size_t i = 0; i < 3; ++i) {
    const SweepPlan shard = plan.shard(i, 3);
    bool any_partial = false;
    for (const auto& group : shard.group_selection()) {
      if (group.size() < 4) any_partial = true;
    }
    EXPECT_TRUE(any_partial) << "shard " << i << " has only full groups";
    EXPECT_EQ(shard_bytes(shard, RunPlanOptions{.group = true}),
              shard_bytes(shard, RunPlanOptions{.group = false}))
        << "shard " << i;
  }
  // Nested uneven shard (a shard of a shard), small window.
  const SweepPlan nested = plan.shard(1, 2).shard(0, 3);
  EXPECT_EQ(shard_bytes(nested, RunPlanOptions{.group = true, .window = 1}),
            shard_bytes(nested, RunPlanOptions{.group = false, .window = 1}));
}

TEST(GroupedSweep, MergedShardsFromGroupedRunsMatchUngroupedFullRun) {
  const FigureConfig config = grid_config();
  const SweepPlan plan(config);
  OnlineStatsSink full_sink(plan);
  run_plan(plan, full_sink, RunPlanOptions{.group = false});
  const SweepResult reference = full_sink.take();

  std::vector<ShardFile> shards;
  for (std::size_t i = 0; i < 3; ++i) {
    std::stringstream file(
        shard_bytes(plan.shard(i, 3), RunPlanOptions{.group = true}));
    shards.push_back(read_shard(file, "g" + std::to_string(i)));
  }
  EXPECT_TRUE(sweep_results_identical(reference, merge_shards(shards)));
}

TEST(GroupedSweep, SingleCellGridGroupsAreSingletons) {
  // Without scenario/failure dimensions every group is one coordinate and
  // the grouped path degenerates to the legacy one.
  FigureConfig config = grid_config();
  config.workloads.clear();
  config.scenarios.clear();
  config.failure_models.clear();
  const SweepPlan plan(config);
  for (const auto& group : plan.group_selection()) {
    EXPECT_EQ(group.size(), 1u);
  }
  EXPECT_EQ(shard_bytes(plan, RunPlanOptions{.group = true}),
            shard_bytes(plan, RunPlanOptions{.group = false}));
}

}  // namespace
}  // namespace ftsched
