// Unit tests for the util substrate: rng, stats, table, cli, ids, timer.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <numeric>
#include <set>
#include <unordered_set>

#include "ftsched/util/cli.hpp"
#include "ftsched/util/error.hpp"
#include "ftsched/util/ids.hpp"
#include "ftsched/util/rng.hpp"
#include "ftsched/util/stats.hpp"
#include "ftsched/util/table.hpp"
#include "ftsched/util/timer.hpp"

namespace ftsched {
namespace {

// ---------------------------------------------------------------- ids

TEST(Ids, DefaultIsInvalid) {
  TaskId t;
  EXPECT_FALSE(t.valid());
}

TEST(Ids, ValueRoundTrip) {
  TaskId t{7u};
  EXPECT_TRUE(t.valid());
  EXPECT_EQ(t.value(), 7u);
  EXPECT_EQ(t.index(), 7u);
}

TEST(Ids, Ordering) {
  EXPECT_LT(TaskId{1u}, TaskId{2u});
  EXPECT_EQ(TaskId{3u}, TaskId{3u});
  EXPECT_NE(TaskId{3u}, TaskId{4u});
}

TEST(Ids, Hashable) {
  std::unordered_set<TaskId> set;
  set.insert(TaskId{1u});
  set.insert(TaskId{1u});
  set.insert(TaskId{2u});
  EXPECT_EQ(set.size(), 2u);
}

TEST(Ids, DistinctTagTypesAreDistinctTypes) {
  static_assert(!std::is_same_v<TaskId, ProcId>);
}

// ---------------------------------------------------------------- rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform(2.5, 9.0);
    EXPECT_GE(x, 2.5);
    EXPECT_LT(x, 9.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(11);
  OnlineStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.uniform());
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
}

TEST(Rng, UniformIntCoversClosedRange) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto x = rng.uniform_int(2, 5);
    EXPECT_GE(x, 2);
    EXPECT_LE(x, 5);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(9, 9), 9);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(5);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng rng(5);
  OnlineStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.exponential(2.0));
  EXPECT_NEAR(stats.mean(), 0.5, 0.02);
}

TEST(Rng, SplitStreamsAreIndependentAndDeterministic) {
  Rng a(42);
  Rng b(42);
  Rng child_a = a.split();
  Rng child_b = b.split();
  for (int i = 0; i < 32; ++i) EXPECT_EQ(child_a(), child_b());
  // Parent advanced past the split, still deterministic.
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(9);
  for (int trial = 0; trial < 50; ++trial) {
    const auto sample = rng.sample_without_replacement(20, 5);
    ASSERT_EQ(sample.size(), 5u);
    std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 5u);
    for (std::size_t s : sample) EXPECT_LT(s, 20u);
  }
}

TEST(Rng, SampleWholePopulation) {
  Rng rng(9);
  const auto sample = rng.sample_without_replacement(6, 6);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 6u);
}

TEST(Rng, SampleTooManyThrows) {
  Rng rng(9);
  EXPECT_THROW((void)rng.sample_without_replacement(3, 4), InvalidArgument);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(13);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto w = v;
  rng.shuffle(w);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), w.begin()));
  EXPECT_NE(v, w);  // astronomically unlikely to be identity
}

// ---------------------------------------------------------------- stats

TEST(OnlineStats, Empty) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, KnownValues) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, SingleSampleVarianceZero) {
  OnlineStats s;
  s.add(3.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(OnlineStats, MergeMatchesSequential) {
  Rng rng(17);
  OnlineStats whole;
  OnlineStats part1;
  OnlineStats part2;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-5, 5);
    whole.add(x);
    (i < 400 ? part1 : part2).add(x);
  }
  part1.merge(part2);
  EXPECT_EQ(part1.count(), whole.count());
  EXPECT_NEAR(part1.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(part1.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(part1.min(), whole.min());
  EXPECT_DOUBLE_EQ(part1.max(), whole.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a;
  a.add(1.0);
  OnlineStats b;
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(Summarize, Percentiles) {
  std::vector<double> xs;
  for (int i = 1; i <= 101; ++i) xs.push_back(i);
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 101u);
  EXPECT_DOUBLE_EQ(s.median, 51.0);
  EXPECT_DOUBLE_EQ(s.p25, 26.0);
  EXPECT_DOUBLE_EQ(s.p75, 76.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 101.0);
  EXPECT_DOUBLE_EQ(s.mean, 51.0);
}

TEST(Summarize, EmptyIsZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(PercentileSorted, Interpolates) {
  const std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile_sorted(xs, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(xs, 1.0), 10.0);
}

// ---------------------------------------------------------------- table

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "2.5"});
  const std::string out = t.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("long-name"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TextTable, Csv) {
  TextTable t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.csv(), "a,b\n1,2\n");
}

TEST(TextTable, NumericRow) {
  TextTable t({"label", "x", "y"});
  t.add_numeric_row("row", {1.23456, 2.0}, 2);
  EXPECT_NE(t.csv().find("1.23"), std::string::npos);
  EXPECT_NE(t.csv().find("2.00"), std::string::npos);
}

TEST(FormatDouble, Precision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(2.0, 0), "2");
}

// ---------------------------------------------------------------- cli

TEST(Cli, DefaultsAndOverrides) {
  CliParser cli("test");
  cli.add_option("count", "5", "a count");
  cli.add_flag("verbose", "talk more");
  const char* argv[] = {"prog", "--count", "9", "--verbose"};
  ASSERT_TRUE(cli.parse(4, argv));
  EXPECT_EQ(cli.get_int("count"), 9);
  EXPECT_TRUE(cli.get_flag("verbose"));
}

TEST(Cli, EqualsSyntax) {
  CliParser cli("test");
  cli.add_option("rate", "1.0", "a rate");
  const char* argv[] = {"prog", "--rate=2.5"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_DOUBLE_EQ(cli.get_double("rate"), 2.5);
}

TEST(Cli, UnknownOptionThrows) {
  CliParser cli("test");
  const char* argv[] = {"prog", "--nope", "1"};
  EXPECT_THROW((void)cli.parse(3, argv), InvalidArgument);
}

TEST(Cli, MissingValueThrows) {
  CliParser cli("test");
  cli.add_option("x", "0", "x");
  const char* argv[] = {"prog", "--x"};
  EXPECT_THROW((void)cli.parse(2, argv), InvalidArgument);
}

TEST(Cli, HelpReturnsFalse) {
  CliParser cli("test");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, BadIntegerThrows) {
  CliParser cli("test");
  cli.add_option("n", "abc", "n");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_THROW((void)cli.get_int("n"), InvalidArgument);
}

TEST(Cli, EnvInt) {
  ::setenv("FTSCHED_TEST_ENV", "17", 1);
  EXPECT_EQ(env_int("FTSCHED_TEST_ENV", 3), 17);
  ::setenv("FTSCHED_TEST_ENV", "junk", 1);
  EXPECT_EQ(env_int("FTSCHED_TEST_ENV", 3), 3);
  ::unsetenv("FTSCHED_TEST_ENV");
  EXPECT_EQ(env_int("FTSCHED_TEST_ENV", 3), 3);
}

// ---------------------------------------------------------------- misc

TEST(Stopwatch, MeasuresNonNegativeTime) {
  Stopwatch sw;
  volatile double sink = 0.0;
  for (int i = 0; i < 1000; ++i) sink = sink + std::sqrt(double(i));
  EXPECT_GE(sw.seconds(), 0.0);
  sw.reset();
  EXPECT_LT(sw.seconds(), 1.0);
}

TEST(Error, RequireMacroThrowsWithMessage) {
  try {
    FTSCHED_REQUIRE(1 == 2, "math is broken");
    FAIL() << "should have thrown";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("math is broken"), std::string::npos);
  }
}

}  // namespace
}  // namespace ftsched
