// Cross-family pipeline sweep: every workload family × every scheduler,
// through scheduling, structural validation, robustness analysis and
// failure-free + crashed execution.  This is the widest net in the suite:
// any structural assumption that only holds for layered random DAGs gets
// caught here.
#include <gtest/gtest.h>

#include <tuple>

#include "ftsched/core/cpop.hpp"
#include "ftsched/core/ftbar.hpp"
#include "ftsched/core/ftsa.hpp"
#include "ftsched/core/heft.hpp"
#include "ftsched/core/mc_ftsa.hpp"
#include "ftsched/core/robustness.hpp"
#include "ftsched/platform/failure.hpp"
#include "ftsched/sim/event_sim.hpp"
#include "ftsched/workload/classic.hpp"
#include "ftsched/workload/paper_workload.hpp"
#include "ftsched/workload/random_dag.hpp"

namespace ftsched {
namespace {

enum class Family {
  kLayered,
  kGnp,
  kChain,
  kForkJoin,
  kInTree,
  kOutTree,
  kFft,
  kGauss,
  kWavefront,
  kSeriesParallel,
  kCholesky,
  kLu,
};

TaskGraph build(Family family, Rng& rng) {
  switch (family) {
    case Family::kLayered: {
      LayeredDagParams p;
      p.task_count = 30;
      return make_layered_dag(rng, p);
    }
    case Family::kGnp: {
      GnpDagParams p;
      p.task_count = 25;
      p.edge_probability = 0.12;
      return make_gnp_dag(rng, p);
    }
    case Family::kChain:
      return make_chain(12);
    case Family::kForkJoin:
      return make_fork_join(10);
    case Family::kInTree:
      return make_in_tree(16);
    case Family::kOutTree:
      return make_out_tree(16);
    case Family::kFft:
      return make_fft(8);
    case Family::kGauss:
      return make_gaussian_elimination(5);
    case Family::kWavefront:
      return make_wavefront(4, 5);
    case Family::kSeriesParallel:
      return make_series_parallel(rng, 30);
    case Family::kCholesky:
      return make_cholesky(4);
    case Family::kLu:
      return make_lu(3);
  }
  throw std::logic_error("unreachable");
}

enum class Algo { kFtsa, kMc, kFtbar, kHeft, kCpop };

class FamilyPipeline
    : public ::testing::TestWithParam<std::tuple<Family, Algo>> {};

TEST_P(FamilyPipeline, ScheduleValidateAnalyzeExecute) {
  const auto [family, algo] = GetParam();
  Rng rng(99);
  PaperWorkloadParams params;
  params.proc_count = 5;
  params.granularity = 1.0;
  const auto w = make_workload_for_graph(rng, build(family, rng), params);
  const std::size_t epsilon =
      (algo == Algo::kHeft || algo == Algo::kCpop) ? 0 : 2;

  ReplicatedSchedule s = [&, algo = algo]() -> ReplicatedSchedule {
    switch (algo) {
      case Algo::kFtsa:
        return ftsa_schedule(w->costs(), FtsaOptions{epsilon, 7});
      case Algo::kMc:
        return mc_ftsa_schedule(w->costs(), McFtsaOptions{epsilon, 7});
      case Algo::kFtbar: {
        FtbarOptions o;
        o.npf = epsilon;
        o.seed = 7;
        return ftbar_schedule(w->costs(), o);
      }
      case Algo::kHeft:
        return heft_schedule(w->costs());
      case Algo::kCpop:
        return cpop_schedule(w->costs());
    }
    throw std::logic_error("unreachable");
  }();

  // Structural validity.
  s.validate();
  EXPECT_LE(s.lower_bound(), s.upper_bound() * (1 + 1e-12));

  // Kill-set analysis: every replicated algorithm must certify.
  if (epsilon > 0) {
    const RobustnessReport report = analyze_robustness(s);
    EXPECT_EQ(report.verdict, RobustnessVerdict::kCertifiedRobust)
        << "family " << static_cast<int>(family) << ": " << report.summary();
  }

  // Failure-free execution matches or beats the plan.
  const SimulationResult ok = simulate(s);
  ASSERT_TRUE(ok.success);
  EXPECT_LE(ok.latency, s.lower_bound() * (1 + 1e-9));

  // Crashed execution stays within the guaranteed bound.
  if (epsilon > 0) {
    Rng crash_rng(13);
    for (int trial = 0; trial < 3; ++trial) {
      const FailureScenario scenario = random_crashes(crash_rng, 5, epsilon);
      const SimulationResult r = simulate(s, scenario);
      ASSERT_TRUE(r.success);
      EXPECT_LE(r.latency, s.upper_bound() * (1 + 1e-9));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, FamilyPipeline,
    ::testing::Combine(
        ::testing::Values(Family::kLayered, Family::kGnp, Family::kChain,
                          Family::kForkJoin, Family::kInTree,
                          Family::kOutTree, Family::kFft, Family::kGauss,
                          Family::kWavefront, Family::kSeriesParallel,
                          Family::kCholesky, Family::kLu),
        ::testing::Values(Algo::kFtsa, Algo::kMc, Algo::kFtbar, Algo::kHeft,
                          Algo::kCpop)));

}  // namespace
}  // namespace ftsched
