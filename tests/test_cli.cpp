// End-to-end tests of the ftsched_cli subcommands (driven in-process via
// run_cli so output and exit codes are directly observable).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "cli_commands.hpp"
#include "golden_test.hpp"

namespace ftsched::cli {
namespace {

struct CliResult {
  int code = 0;
  std::string out;
  std::string err;
};

CliResult run(std::vector<std::string> args) {
  std::ostringstream out;
  std::ostringstream err;
  const int code = run_cli(args, out, err);
  return {code, out.str(), err.str()};
}

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("ftsched_cli_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    graph_file_ = (dir_ / "graph.txt").string();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
  std::string graph_file_;
};

TEST_F(CliTest, HelpAndUnknownCommand) {
  const CliResult help = run({"help"});
  EXPECT_EQ(help.code, 0);
  EXPECT_NE(help.out.find("generate"), std::string::npos);

  const CliResult nothing = run({});
  EXPECT_EQ(nothing.code, 1);

  const CliResult bogus = run({"frobnicate"});
  EXPECT_EQ(bogus.code, 1);
  EXPECT_NE(bogus.err.find("unknown command"), std::string::npos);
}

TEST_F(CliTest, GenerateInfoRoundTrip) {
  const CliResult gen = run({"generate", "--family", "layered", "--tasks",
                             "40", "--seed", "3", "--out", graph_file_});
  ASSERT_EQ(gen.code, 0) << gen.err;
  ASSERT_TRUE(std::filesystem::exists(graph_file_));

  const CliResult info = run({"info", "--graph", graph_file_});
  ASSERT_EQ(info.code, 0) << info.err;
  EXPECT_NE(info.out.find("tasks:           40"), std::string::npos);
  EXPECT_NE(info.out.find("layer width"), std::string::npos);
}

TEST_F(CliTest, GenerateAllFamilies) {
  for (const char* family :
       {"layered", "gnp", "chain", "forkjoin", "intree", "outtree", "fft",
        "gauss", "wavefront", "sp", "cholesky", "lu"}) {
    // Tree/FFT families need power-of-two sizes; 8 works everywhere.
    const CliResult r = run({"generate", "--family", family, "--tasks", "8"});
    EXPECT_EQ(r.code, 0) << family << ": " << r.err;
    EXPECT_NE(r.out.find("taskgraph"), std::string::npos) << family;
  }
}

TEST_F(CliTest, GenerateDotOutput) {
  const CliResult r =
      run({"generate", "--family", "chain", "--tasks", "4", "--dot"});
  ASSERT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("digraph"), std::string::npos);
}

TEST_F(CliTest, ScheduleAllAlgorithms) {
  ASSERT_EQ(run({"generate", "--family", "layered", "--tasks", "30",
                 "--out", graph_file_})
                .code,
            0);
  for (const char* algo :
       {"ftsa", "mc-ftsa", "mc-ftsa-paper", "ftbar", "heft", "cpop",
        "random"}) {
    const bool replicated = std::string(algo) != "heft" &&
                            std::string(algo) != "cpop";
    std::vector<std::string> args{"schedule", "--graph", graph_file_,
                                  "--algo", algo, "--procs", "6"};
    if (!replicated) {
      args.push_back("--epsilon");
      args.push_back("0");
    }
    const CliResult r = run(args);
    EXPECT_EQ(r.code, 0) << algo << ": " << r.err;
    EXPECT_NE(r.out.find("lower bound"), std::string::npos) << algo;
  }
}

TEST_F(CliTest, ScheduleWithGanttJsonAndFile) {
  ASSERT_EQ(run({"generate", "--family", "fft", "--tasks", "8", "--out",
                 graph_file_})
                .code,
            0);
  const std::string sched_file = (dir_ / "sched.txt").string();
  const CliResult r =
      run({"schedule", "--graph", graph_file_, "--algo", "ftsa", "--epsilon",
           "1", "--procs", "4", "--gantt", "--json", "--out", sched_file});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("P0"), std::string::npos);          // gantt row
  EXPECT_NE(r.out.find("\"algorithm\""), std::string::npos);  // json
  std::ifstream sched(sched_file);
  std::string first_line;
  std::getline(sched, first_line);
  EXPECT_EQ(first_line.rfind("schedule FTSA", 0), 0u);
}

TEST_F(CliTest, SimulateSurvivesCrashSpec) {
  ASSERT_EQ(run({"generate", "--family", "layered", "--tasks", "25",
                 "--out", graph_file_})
                .code,
            0);
  const CliResult r =
      run({"simulate", "--graph", graph_file_, "--algo", "ftsa", "--epsilon",
           "2", "--procs", "6", "--crashes", "0@0,3@50.5", "--gantt"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("success:              yes"), std::string::npos);
}

TEST_F(CliTest, SimulateRejectsMalformedCrashSpecs) {
  ASSERT_EQ(run({"generate", "--family", "chain", "--tasks", "5", "--out",
                 graph_file_})
                .code,
            0);
  // "3x@1" used to stoul-parse as processor 3 with the "x" silently
  // dropped, and "-1" wrapped to a huge processor id; both must be loud
  // errors now, as must junk times and out-of-range ids.
  for (const char* crashes :
       {"3x@1", "-1", "0@-5", "0@1x", "one@0", "0@", "99999999999"}) {
    const CliResult r =
        run({"simulate", "--graph", graph_file_, "--algo", "heft", "--procs",
             "2", "--epsilon", "0", "--crashes", crashes});
    EXPECT_EQ(r.code, 1) << crashes;
    EXPECT_NE(r.err.find("error:"), std::string::npos) << crashes;
  }
}

TEST_F(CliTest, SimulateDrawsScenarioFromFailureModel) {
  ASSERT_EQ(run({"generate", "--family", "layered", "--tasks", "25",
                 "--out", graph_file_})
                .code,
            0);
  // domain draws exactly epsilon victims: Thm 4.1 guarantees success.
  const CliResult ok =
      run({"simulate", "--graph", graph_file_, "--algo", "ftsa", "--epsilon",
           "2", "--procs", "6", "--failures", "domain:size=2"});
  ASSERT_EQ(ok.code, 0) << ok.err;
  EXPECT_NE(ok.out.find("failure model:"), std::string::npos);
  EXPECT_NE(ok.out.find("drawn crashes:        2 of 6"), std::string::npos);
  EXPECT_NE(ok.out.find("success:              yes"), std::string::npos);

  // Crashing every processor exceeds any epsilon: graceful degradation is
  // a reported failure (exit 2), not an exception.
  const CliResult dead =
      run({"simulate", "--graph", graph_file_, "--algo", "ftsa", "--epsilon",
           "1", "--procs", "4", "--failures", "bernoulli:p=1"});
  EXPECT_EQ(dead.code, 2);
  EXPECT_NE(dead.out.find("success:              NO"), std::string::npos);

  const CliResult both =
      run({"simulate", "--graph", graph_file_, "--failures", "eps",
           "--crashes", "0@0"});
  EXPECT_EQ(both.code, 1);
  EXPECT_NE(both.err.find("mutually exclusive"), std::string::npos);

  const CliResult bogus =
      run({"simulate", "--graph", graph_file_, "--failures", "meteor"});
  EXPECT_EQ(bogus.code, 1);
  EXPECT_NE(bogus.err.find("unknown failure model"), std::string::npos);
}

TEST_F(CliTest, ListFailureLawsShowsModelsAndCrashLaws) {
  const CliResult r = run({"list-failure-laws"});
  ASSERT_EQ(r.code, 0) << r.err;
  for (const char* name : {"eps", "fixed", "bernoulli", "domain"}) {
    EXPECT_NE(r.out.find("\n  " + std::string(name) + "\n"),
              std::string::npos)
        << name;
  }
  EXPECT_NE(r.out.find("success fraction"), std::string::npos);
  EXPECT_NE(r.out.find("crash-time laws"), std::string::npos);
  EXPECT_NE(r.out.find("frac:f=F"), std::string::npos);
}

TEST_F(CliTest, SimulateReportsFailureExitCode) {
  ASSERT_EQ(run({"generate", "--family", "chain", "--tasks", "5", "--out",
                 graph_file_})
                .code,
            0);
  // epsilon=0 and crash every processor: the run must fail with code 2.
  const CliResult r =
      run({"simulate", "--graph", graph_file_, "--algo", "heft", "--procs",
           "2", "--crashes", "0@0,1@0"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.out.find("success:              NO"), std::string::npos);
}

TEST_F(CliTest, SimulateCommModels) {
  ASSERT_EQ(run({"generate", "--family", "layered", "--tasks", "20",
                 "--out", graph_file_})
                .code,
            0);
  for (const char* comm : {"free", "oneport", "multiport"}) {
    const CliResult r = run({"simulate", "--graph", graph_file_, "--algo",
                             "ftsa", "--procs", "5", "--comm", comm});
    EXPECT_EQ(r.code, 0) << comm << ": " << r.err;
  }
}

TEST_F(CliTest, ValidateCertifiesFtsaAndFlagsPaperMc) {
  ASSERT_EQ(run({"generate", "--family", "layered", "--tasks", "20",
                 "--out", graph_file_})
                .code,
            0);
  const CliResult good = run({"validate", "--graph", graph_file_, "--algo",
                              "ftsa", "--epsilon", "2", "--procs", "5"});
  EXPECT_EQ(good.code, 0) << good.err;
  EXPECT_NE(good.out.find("certified robust"), std::string::npos);
  EXPECT_NE(good.out.find("valid"), std::string::npos);

  // Paper-mode MC-FTSA usually fails validation on these workloads; accept
  // either outcome, but a fatal kill-set analysis must imply an exhaustive
  // failure (exit code 2).
  const CliResult paper =
      run({"validate", "--graph", graph_file_, "--algo", "mc-ftsa-paper",
           "--epsilon", "2", "--procs", "5"});
  const bool analysis_fatal =
      paper.out.find("NOT fault tolerant") != std::string::npos;
  if (analysis_fatal) {
    EXPECT_EQ(paper.code, 2) << paper.out;
  }
}

TEST_F(CliTest, ListWorkloadsShowsAtLeastFourFamilies) {
  const CliResult r = run({"list-workloads"});
  ASSERT_EQ(r.code, 0) << r.err;
  std::size_t families = 0;
  for (const char* name : {"paper", "layered", "gnp", "trace", "fft",
                           "cholesky", "wavefront"}) {
    if (r.out.find("\n" + std::string(name) + "\n") != std::string::npos ||
        r.out.rfind(std::string(name) + "\n", 0) == 0) {
      ++families;
    }
  }
  EXPECT_GE(families, 4u) << r.out;
  EXPECT_NE(r.out.find("spec syntax"), std::string::npos);
  EXPECT_NE(r.out.find("crash laws"), std::string::npos);
}

TEST_F(CliTest, ScheduleAcceptsWorkloadSpecInsteadOfGraph) {
  const CliResult r = run({"schedule", "--workload", "fft:size=8", "--algo",
                           "ftsa", "--epsilon", "1", "--procs", "4"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("lower bound"), std::string::npos);

  const CliResult both =
      run({"schedule", "--workload", "fft:size=8", "--graph", "x.txt"});
  EXPECT_EQ(both.code, 1);
  EXPECT_NE(both.err.find("mutually exclusive"), std::string::npos);

  const CliResult bogus = run({"schedule", "--workload", "nonsense"});
  EXPECT_EQ(bogus.code, 1);
  EXPECT_NE(bogus.err.find("unknown workload family"), std::string::npos);
}

TEST_F(CliTest, SweepRangesOverWorkloadAndScenarioCells) {
  const CliResult r = run(
      {"sweep", "--granularities", "0.6;1.4", "--graphs", "1", "--procs", "5",
       "--workload", "paper:tmin=15,tmax=18;fft:size=8", "--scenario",
       "t0;frac:f=0.5", "--threads", "2"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("cells=2x2x1x1"), std::string::npos);
  EXPECT_NE(r.out.find("FTSA-1Crash[fft:size=8|t0]"), std::string::npos);
  EXPECT_NE(r.out.find("FTSA-1Crash[fft:size=8|frac:f=0.5]"),
            std::string::npos);
  EXPECT_NE(r.out.find("0.60"), std::string::npos);

  const CliResult bad = run({"sweep", "--scenario", "lightning"});
  EXPECT_EQ(bad.code, 1);
  EXPECT_NE(bad.err.find("unknown crash law"), std::string::npos);
}

TEST_F(CliTest, SimulateWithWorkloadSpecAndCrashes) {
  const CliResult r =
      run({"simulate", "--workload", "layered:tasks=25", "--algo", "ftsa",
           "--epsilon", "2", "--procs", "6", "--crashes", "0@0,3@50.5"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("success:              yes"), std::string::npos);
}

TEST_F(CliTest, ErrorsAreReportedNotThrown) {
  const CliResult r = run({"info", "--graph", "/nonexistent/file"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("error:"), std::string::npos);
}

// ------------------------------------------------- plan / shard / merge

/// The shared grid options of the sharding tests (small but multi-cell).
std::vector<std::string> shard_grid_args() {
  return {"--granularities", "0.6;1.4",  "--graphs",   "3",
          "--procs",         "5",        "--workload", "paper;chain:size=10",
          "--scenario",      "t0;frac:f=0.5", "--seed", "13"};
}

std::vector<std::string> with_grid(std::vector<std::string> args,
                                   std::vector<std::string> extra) {
  for (auto& a : shard_grid_args()) args.push_back(a);
  for (auto& a : extra) args.push_back(std::move(a));
  return args;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST_F(CliTest, PlanEnumeratesGridAndShards) {
  const CliResult full = run(with_grid({"plan"}, {"--limit", "0"}));
  ASSERT_EQ(full.code, 0) << full.err;
  EXPECT_NE(full.out.find("grid:         24 instances"), std::string::npos);
  EXPECT_NE(full.out.find("[shard full]"), std::string::npos);
  EXPECT_NE(full.out.find("fingerprint:  v1 seed=13"), std::string::npos);
  EXPECT_NE(full.out.find("chain:size=10"), std::string::npos);
  EXPECT_NE(full.out.find("frac:f=0.5"), std::string::npos);

  const CliResult shard = run(with_grid({"plan"}, {"--shard", "1/3"}));
  ASSERT_EQ(shard.code, 0) << shard.err;
  EXPECT_NE(shard.out.find("selected:     8 [shard 1/3]"), std::string::npos);

  const CliResult bad = run(with_grid({"plan"}, {"--shard", "3/3"}));
  EXPECT_EQ(bad.code, 1);
  EXPECT_NE(bad.err.find("shard index"), std::string::npos);

  const CliResult malformed = run(with_grid({"plan"}, {"--shard", "nope"}));
  EXPECT_EQ(malformed.code, 1);
}

TEST_F(CliTest, ShardedSweepMergesByteIdenticalToUnshardedCsv) {
  const std::string full_csv = (dir_ / "full.csv").string();
  ASSERT_EQ(run(with_grid({"sweep"}, {"--out", full_csv})).code, 0);

  std::string shard_list;
  for (int i = 0; i < 3; ++i) {
    const std::string part =
        (dir_ / ("part" + std::to_string(i) + ".jsonl")).string();
    const CliResult r = run(with_grid(
        {"sweep"}, {"--shard", std::to_string(i) + "/3", "--out", part}));
    ASSERT_EQ(r.code, 0) << r.err;
    EXPECT_NE(r.out.find("sweep shard " + std::to_string(i) + "/3"),
              std::string::npos);
    if (i) shard_list += ";";
    shard_list += part;
  }

  const std::string merged_csv = (dir_ / "merged.csv").string();
  const CliResult merged =
      run({"merge", "--in", shard_list, "--out", merged_csv});
  ASSERT_EQ(merged.code, 0) << merged.err;
  EXPECT_NE(merged.out.find("3 shards, 24 of 24 instances"),
            std::string::npos);

  const std::string full = read_file(full_csv);
  ASSERT_FALSE(full.empty());
  EXPECT_EQ(full, read_file(merged_csv))
      << "merged CSV is not byte-identical to the unsharded sweep";
}

TEST_F(CliTest, SweepRangesOverFailureModelCellsAndMergesByteIdentical) {
  // The ISSUE-4 acceptance criterion: a failure-model grid runs end to
  // end, and a 3-shard merge of it is byte-identical to the unsharded CSV.
  const std::vector<std::string> grid{
      "--granularities", "0.8",  "--graphs", "3",        "--procs", "6",
      "--epsilon",       "1",    "--seed",   "17",       "--workload",
      "paper:tmin=15,tmax=18",   "--failures",
      "eps;bernoulli:p=0.1;domain:size=4"};
  auto with = [&](std::vector<std::string> args,
                  std::vector<std::string> extra) {
    for (const auto& a : grid) args.push_back(a);
    for (auto& a : extra) args.push_back(std::move(a));
    return args;
  };

  const std::string full_csv = (dir_ / "failures_full.csv").string();
  const CliResult full = run(with({"sweep"}, {"--out", full_csv}));
  ASSERT_EQ(full.code, 0) << full.err;
  EXPECT_NE(full.out.find("cells=1x1x3x1"), std::string::npos);
  const std::string csv = read_file(full_csv);
  // Decorated with the failure label, including the degradation series.
  EXPECT_NE(csv.find("FTSA-1Crash[paper:tmin=15,tmax=18|t0|eps]"),
            std::string::npos);
  EXPECT_NE(
      csv.find("FTSA-Success[paper:tmin=15,tmax=18|t0|bernoulli:p=0.1]"),
      std::string::npos);
  EXPECT_NE(
      csv.find("DrawnCrashes[paper:tmin=15,tmax=18|t0|domain:size=4]"),
      std::string::npos);

  std::string shard_list;
  for (int i = 0; i < 3; ++i) {
    const std::string part =
        (dir_ / ("fpart" + std::to_string(i) + ".jsonl")).string();
    ASSERT_EQ(run(with({"sweep"}, {"--shard", std::to_string(i) + "/3",
                                   "--out", part}))
                  .code,
              0);
    if (i) shard_list += ";";
    shard_list += part;
  }
  const std::string merged_csv = (dir_ / "failures_merged.csv").string();
  ASSERT_EQ(run({"merge", "--in", shard_list, "--out", merged_csv}).code, 0);
  EXPECT_EQ(csv, read_file(merged_csv))
      << "merged failure-model CSV is not byte-identical";

  const CliResult bad = run({"sweep", "--failures", "meteor"});
  EXPECT_EQ(bad.code, 1);
  EXPECT_NE(bad.err.find("unknown failure model"), std::string::npos);
}

TEST_F(CliTest, PlanShowsTheFailureDimension) {
  const CliResult r = run(
      {"plan", "--granularities", "0.8", "--graphs", "2", "--failures",
       "eps;bernoulli:p=0.2", "--limit", "0"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("1 workload(s) x 1 scenario(s) x 2 failure model(s)"),
            std::string::npos);
  EXPECT_NE(r.out.find("failures=eps;bernoulli:p=0.2"), std::string::npos);
  EXPECT_NE(r.out.find("bernoulli:p=0.2"), std::string::npos);
}

TEST_F(CliTest, ShardedSweepWritesJsonlToStdout) {
  const CliResult r = run(with_grid({"sweep"}, {"--shard", "0/4"}));
  ASSERT_EQ(r.code, 0) << r.err;
  // Pure JSONL: first line is the protocol header, no banner.
  EXPECT_EQ(r.out.rfind("{\"ftsched_sweep_shard\":1", 0), 0u);
  EXPECT_NE(r.out.find("\"shard\":\"0/4\""), std::string::npos);
}

TEST_F(CliTest, MergeRejectsIncompleteShardSet) {
  const std::string part = (dir_ / "part0.jsonl").string();
  ASSERT_EQ(run(with_grid({"sweep"}, {"--shard", "0/3", "--out", part})).code,
            0);
  const CliResult r = run({"merge", "--in", part});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("incomplete partition"), std::string::npos);

  const CliResult none = run({"merge"});
  EXPECT_EQ(none.code, 1);
}

// ----------------------------------------------------- execution backends

TEST_F(CliTest, ListBackendsShowsRegistryEntries) {
  const CliResult r = run({"list-backends"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("inproc"), std::string::npos);
  EXPECT_NE(r.out.find("subprocess"), std::string::npos);
  EXPECT_NE(r.out.find("socket"), std::string::npos);
  EXPECT_NE(r.out.find("retries="), std::string::npos);
}

TEST_F(CliTest, SweepSubprocessBackendMatchesDefaultCsv) {
  // run_cli executes in-process here, so /proc/self/exe is the *test*
  // binary — the spec must name the real CLI explicitly, exactly like a
  // library embedder would.
  const std::string base_csv = (dir_ / "backend_base.csv").string();
  const std::string sub_csv = (dir_ / "backend_sub.csv").string();
  ASSERT_EQ(run(with_grid({"sweep"}, {"--out", base_csv})).code, 0);
  const CliResult r = run(with_grid(
      {"sweep"},
      {"--backend",
       "subprocess:workers=3,bin=" FTSCHED_CLI_PATH ",dir=" + dir_.string(),
       "--out", sub_csv}));
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_EQ(read_file(base_csv), read_file(sub_csv))
      << "subprocess-backend CSV is not byte-identical to the default";
}

TEST_F(CliTest, SweepRejectsBogusBackendSpecs) {
  const CliResult unknown = run(with_grid({"sweep"}, {"--backend", "warp"}));
  EXPECT_EQ(unknown.code, 1);
  EXPECT_NE(unknown.err.find("unknown sweep backend"), std::string::npos);

  // Never run a bare in-process "socket" here: bin would default to
  // /proc/self/exe — the *test* binary — and the spawned workers would
  // recurse into this very suite.  A bad option rejects before any spawn.
  const CliResult socket =
      run(with_grid({"sweep"}, {"--backend", "socket:retries=1"}));
  EXPECT_EQ(socket.code, 1);
  EXPECT_NE(socket.err.find("does not accept option"), std::string::npos);

  const CliResult badopt =
      run(with_grid({"sweep"}, {"--backend", "inproc:retries=1"}));
  EXPECT_EQ(badopt.code, 1);
  EXPECT_NE(badopt.err.find("does not accept option"), std::string::npos);
}

TEST_F(CliTest, PlanPrintsTheBackendLine) {
  const CliResult r = run(with_grid(
      {"plan"}, {"--backend", "subprocess:workers=2,bin=" FTSCHED_CLI_PATH}));
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("backend:      fork/exec shard workers (workers=2"),
            std::string::npos);
}

TEST_F(CliTest, ShardChainsNestLikeTheBackendDoes) {
  // 0/3,1/2 must equal shard(0,3).shard(1,2): the odd positions of the
  // stride-3 selection 0,3,...,21 — ids 3,9,15,21 on the 24-instance grid.
  const CliResult r = run(
      with_grid({"plan"}, {"--shard", "0/3,1/2", "--limit", "0"}));
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("[shard 0/3,1/2]"), std::string::npos);
  EXPECT_NE(r.out.find("selected:     4 "), std::string::npos);

  const CliResult bad = run(with_grid({"plan"}, {"--shard", "0/3,,1/2"}));
  EXPECT_EQ(bad.code, 1);
  EXPECT_NE(bad.err.find("--shard expects i/N"), std::string::npos);
}

// ------------------------------------------------------ hardened file I/O

TEST_F(CliTest, MergeTrimsListItemsAndRejectsAllEmptyLists) {
  std::string shard_list;
  for (int i = 0; i < 2; ++i) {
    const std::string part =
        (dir_ / ("trim" + std::to_string(i) + ".jsonl")).string();
    ASSERT_EQ(
        run(with_grid({"sweep"}, {"--shard", std::to_string(i) + "/2",
                                  "--out", part}))
            .code,
        0);
    if (i) shard_list += " ; ";  // spaces + a trailing ';' below
    shard_list += part;
  }
  const CliResult ok = run({"merge", "--in", shard_list + ";"});
  EXPECT_EQ(ok.code, 0) << ok.err;
  EXPECT_NE(ok.out.find("2 shards"), std::string::npos);

  const CliResult empty = run({"merge", "--in", " ; ;"});
  EXPECT_EQ(empty.code, 1);
  EXPECT_NE(empty.err.find("at least one non-empty path"), std::string::npos);
}

TEST_F(CliTest, WriteFailureAfterOpenExitsNonzeroNamingThePath) {
  // /dev/full opens fine and fails on flush with ENOSPC — exactly the
  // failure mode a file.good() check at open time misses.
  if (!std::filesystem::exists("/dev/full")) {
    GTEST_SKIP() << "/dev/full not available";
  }
  const CliResult gen = run({"generate", "--family", "chain", "--tasks",
                             "200", "--out", "/dev/full"});
  EXPECT_EQ(gen.code, 1);
  EXPECT_NE(gen.err.find("disk full"), std::string::npos);
  EXPECT_NE(gen.err.find("/dev/full"), std::string::npos);

  const CliResult sweep = run(with_grid({"sweep"}, {"--out", "/dev/full"}));
  EXPECT_EQ(sweep.code, 1);
  EXPECT_NE(sweep.err.find("/dev/full"), std::string::npos);

  const CliResult shard =
      run(with_grid({"sweep"}, {"--shard", "0/3", "--out", "/dev/full"}));
  EXPECT_EQ(shard.code, 1);
  EXPECT_NE(shard.err.find("/dev/full"), std::string::npos);
}

// ------------------------------------------------------------ CSV golden

const char* kSweepCsvGoldenPath =
    FTSCHED_SOURCE_DIR "/tests/golden/sweep_cli.csv";

/// Pins the `sweep` CLI end to end (grid config parsing through CSV
/// rendition).  Every option is passed explicitly so environment
/// overrides cannot leak in.  Regenerate after an intentional change:
///   FTSCHED_UPDATE_GOLDEN=1 ./test_cli --gtest_filter='*SweepCsvGolden*'
TEST_F(CliTest, SweepCsvMatchesCommittedGolden) {
  const std::string csv_file = (dir_ / "golden_run.csv").string();
  const CliResult r = run({"sweep", "--figure", "1", "--granularities",
                           "0.8;1.6", "--graphs", "2", "--procs", "6",
                           "--scenario", "t0;uniform:hi=1", "--seed", "42",
                           "--threads", "2", "--out", csv_file});
  ASSERT_EQ(r.code, 0) << r.err;
  goldentest::expect_matches_golden(kSweepCsvGoldenPath, read_file(csv_file),
                                    "sweep CLI CSV");
}

}  // namespace
}  // namespace ftsched::cli
