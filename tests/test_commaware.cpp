// Tests for contention-aware scheduling (send-port-aware arrival
// estimates; §7 future work implemented at the scheduler level).
#include <gtest/gtest.h>

#include "ftsched/core/ftsa.hpp"
#include "ftsched/core/mc_ftsa.hpp"
#include "ftsched/sim/event_sim.hpp"
#include "ftsched/sim/validator.hpp"
#include "ftsched/workload/paper_workload.hpp"

namespace ftsched {
namespace {

std::unique_ptr<Workload> small_workload(std::uint64_t seed,
                                         std::size_t procs = 6,
                                         std::size_t tasks = 30,
                                         double granularity = 0.5) {
  Rng rng(seed);
  PaperWorkloadParams params;
  params.task_min = params.task_max = tasks;
  params.proc_count = procs;
  params.granularity = granularity;
  return make_paper_workload(rng, params);
}

TEST(CommAware, DisabledByDefault) {
  FtsaOptions options;
  EXPECT_FALSE(options.comm.enabled());
  EXPECT_EQ(options.comm.ports, 0u);
}

TEST(CommAware, ZeroPortsMatchesBaseline) {
  const auto w = small_workload(1);
  FtsaOptions naive;
  naive.epsilon = 2;
  FtsaOptions zero = naive;
  zero.comm.ports = 0;
  const auto a = ftsa_schedule(w->costs(), naive);
  const auto b = ftsa_schedule(w->costs(), zero);
  EXPECT_DOUBLE_EQ(a.lower_bound(), b.lower_bound());
  EXPECT_DOUBLE_EQ(a.upper_bound(), b.upper_bound());
}

class CommAwareSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CommAwareSweep, AwareSchedulesAreStructurallyValid) {
  const auto w = small_workload(GetParam());
  for (std::size_t ports : {1u, 2u}) {
    FtsaOptions fo;
    fo.epsilon = 2;
    fo.seed = GetParam();
    fo.comm.ports = ports;
    const auto ftsa = ftsa_schedule(w->costs(), fo);
    ftsa.validate();
    McFtsaOptions mo;
    mo.epsilon = 2;
    mo.seed = GetParam();
    mo.comm.ports = ports;
    const auto mc = mc_ftsa_schedule(w->costs(), mo);
    mc.validate();
    // Failure-free execution (contention-free model) may start tasks
    // earlier than the port-aware plan, never later.
    const SimulationResult r = simulate(ftsa);
    ASSERT_TRUE(r.success);
    EXPECT_LE(r.latency, ftsa.lower_bound() * (1 + 1e-9));
  }
}

TEST_P(CommAwareSweep, AwareSchedulesStayFaultTolerant) {
  const auto w = small_workload(GetParam(), /*procs=*/5, /*tasks=*/20);
  FtsaOptions fo;
  fo.epsilon = 2;
  fo.seed = GetParam();
  fo.comm.ports = 1;
  const auto s = ftsa_schedule(w->costs(), fo);
  const ValidationReport report = validate_fault_tolerance(s);
  EXPECT_TRUE(report.valid) << report.failure_description;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CommAwareSweep,
                         ::testing::Values(1u, 2u, 3u, 4u));

TEST(CommAware, AwarenessChangesThePlanAndPlansConservatively) {
  // Port-aware arrival estimates must actually influence the plan, and the
  // planned (port-aware) bound must not be *below* the naive plan's on
  // average: queueing only delays estimated arrivals.
  //
  // Note bench_ablation_commaware: on paper-scale workloads the aware
  // schedules do NOT execute faster under the one-port simulator — a
  // negative result discussed in EXPERIMENTS.md (the replication scheme's
  // message volume, not placement, dominates one-port behaviour).
  double naive_bound = 0.0;
  double aware_bound = 0.0;
  std::size_t plans_differ = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto w = small_workload(seed, /*procs=*/8, /*tasks=*/40);
    FtsaOptions naive;
    naive.epsilon = 2;
    naive.seed = seed;
    FtsaOptions aware = naive;
    aware.comm.ports = 1;
    const auto a = ftsa_schedule(w->costs(), naive);
    const auto b = ftsa_schedule(w->costs(), aware);
    naive_bound += a.lower_bound();
    aware_bound += b.lower_bound();
    if (std::abs(a.lower_bound() - b.lower_bound()) > 1e-9) ++plans_differ;
  }
  EXPECT_GE(plans_differ, 6u);
  EXPECT_GE(aware_bound, naive_bound);
}

TEST(CommAware, PortAwareBoundsDominateContentionFree) {
  // Port queueing can only delay estimated arrivals, so the aware
  // schedule's planned latency is at least the naive one's under the same
  // tie-break seed... not guaranteed per instance (different placements),
  // but the aware plan must at least be internally consistent:
  const auto w = small_workload(9);
  FtsaOptions aware;
  aware.epsilon = 1;
  aware.comm.ports = 1;
  const auto s = ftsa_schedule(w->costs(), aware);
  EXPECT_LE(s.lower_bound(), s.upper_bound() * (1 + 1e-12));
  for (TaskId t : w->graph().tasks()) {
    for (const Replica& r : s.replicas(t)) {
      EXPECT_LE(r.start, r.pess_start + 1e-12);
    }
  }
}

}  // namespace
}  // namespace ftsched
