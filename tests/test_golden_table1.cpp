// Golden-file regression test for the Table-1 reproduction.
//
// run_table1 measures wall times, which are not reproducible — but the
// schedules behind them are: this test regenerates the Table-1 workloads
// through the exact same code path (make_table1_workload, one root split
// per row) and asserts the schedule bounds and message counts of the three
// contenders against tests/golden/table1_bounds.txt, committed to the
// repo.  A scheduler or workload-generator refactor that silently shifts
// the paper's numbers now fails loudly instead of drifting.
//
// Regenerate after an *intentional* change with:
//   FTSCHED_UPDATE_GOLDEN=1 ./test_golden_table1
// and commit the diff (review it — that diff IS the behavior change).
#include <gtest/gtest.h>

#include <iomanip>
#include <sstream>
#include <string>
#include <vector>

#include "ftsched/core/scheduler.hpp"
#include "ftsched/experiments/figures.hpp"
#include "golden_test.hpp"

#ifndef FTSCHED_SOURCE_DIR
#error "FTSCHED_SOURCE_DIR must point at the repository root"
#endif

namespace ftsched {
namespace {

const char* kGoldenPath = FTSCHED_SOURCE_DIR "/tests/golden/table1_bounds.txt";

/// Golden rows use small task counts so the test stays fast (FTBAR is
/// O(P·N³)); the RNG chain is identical to run_table1's for these rows.
Table1Config golden_config() {
  Table1Config config;  // deliberately NOT table1_config(): no env overrides
  config.task_counts = {100, 300};
  config.proc_count = 50;
  config.epsilon = 5;
  config.seed = 42;
  return config;
}

std::string render_golden(const Table1Config& config) {
  std::ostringstream os;
  os << std::setprecision(17);
  os << "# Table-1 schedule bounds (m=" << config.proc_count
     << ", epsilon=" << config.epsilon << ", seed=" << config.seed << ")\n"
     << "# tasks algo lower_bound upper_bound interproc_messages\n";
  const std::string eps = std::to_string(config.epsilon);
  Rng root(config.seed);
  for (std::size_t v : config.task_counts) {
    Rng rng = root.split();
    const auto workload = make_table1_workload(rng, v, config);
    for (const char* algo : {"ftsa", "mc-ftsa", "ftbar"}) {
      const auto schedule =
          make_scheduler(std::string(algo) + ":eps=" + eps)
              ->run(workload->costs());
      os << v << ' ' << algo << ' ' << schedule.lower_bound() << ' '
         << schedule.upper_bound() << ' '
         << schedule.interproc_message_count() << '\n';
    }
  }
  return os.str();
}

TEST(GoldenTable1, BoundsMatchCommittedGolden) {
  goldentest::expect_matches_golden(kGoldenPath,
                                    render_golden(golden_config()),
                                    "Table-1 schedule bounds");
}

}  // namespace
}  // namespace ftsched
