// Tests for FTSA (Algorithm 4.1): structural validity, bounds, and the
// simulation invariant that the failure-free execution achieves exactly M*.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "ftsched/core/ftsa.hpp"
#include "ftsched/sim/event_sim.hpp"
#include "ftsched/util/error.hpp"
#include "ftsched/workload/classic.hpp"
#include "ftsched/workload/paper_workload.hpp"

namespace ftsched {
namespace {

std::unique_ptr<Workload> small_workload(std::uint64_t seed,
                                         std::size_t procs = 6,
                                         std::size_t tasks = 40,
                                         double granularity = 1.0) {
  Rng rng(seed);
  PaperWorkloadParams params;
  params.task_min = params.task_max = tasks;
  params.proc_count = procs;
  params.granularity = granularity;
  return make_paper_workload(rng, params);
}

TEST(Ftsa, RejectsTooManyFailures) {
  const auto w = small_workload(1, /*procs=*/3);
  FtsaOptions options;
  options.epsilon = 3;  // epsilon+1 = 4 > 3 processors
  EXPECT_THROW((void)ftsa_schedule(w->costs(), options), InvalidArgument);
}

TEST(Ftsa, EpsilonZeroGivesOneReplicaPerTask) {
  const auto w = small_workload(2);
  FtsaOptions options;
  options.epsilon = 0;
  const auto s = ftsa_schedule(w->costs(), options);
  s.validate();
  for (TaskId t : w->graph().tasks()) {
    EXPECT_EQ(s.replicas(t).size(), 1u);
  }
  EXPECT_DOUBLE_EQ(s.lower_bound(), s.upper_bound());
}

TEST(Ftsa, ScheduleOnChainIsSequential) {
  // On a chain with epsilon = 0 the latency is just the sum of chosen
  // execution times + any communications; with identical processors and
  // intra-processor mapping, FTSA should keep the whole chain on one
  // processor (comm = 0 beats any migration).
  TaskGraph g = make_chain(5, ClassicParams{100.0});
  const Platform p(3, 1.0);
  std::vector<std::vector<double>> exec(5, std::vector<double>(3, 7.0));
  const CostModel costs(g, p, exec);
  FtsaOptions options;
  options.epsilon = 0;
  const auto s = ftsa_schedule(costs, options);
  s.validate();
  EXPECT_DOUBLE_EQ(s.lower_bound(), 35.0);
  const ProcId proc = s.replicas(TaskId{0u})[0].proc;
  for (TaskId t : g.tasks()) {
    EXPECT_EQ(s.replicas(t)[0].proc, proc);
  }
}

TEST(Ftsa, DeterministicForSameSeed) {
  const auto w = small_workload(3);
  FtsaOptions options;
  options.epsilon = 2;
  options.seed = 7;
  const auto a = ftsa_schedule(w->costs(), options);
  const auto b = ftsa_schedule(w->costs(), options);
  EXPECT_DOUBLE_EQ(a.lower_bound(), b.lower_bound());
  EXPECT_DOUBLE_EQ(a.upper_bound(), b.upper_bound());
  for (TaskId t : w->graph().tasks()) {
    ASSERT_EQ(a.replicas(t).size(), b.replicas(t).size());
    for (std::size_t k = 0; k < a.replicas(t).size(); ++k) {
      EXPECT_EQ(a.replicas(t)[k].proc, b.replicas(t)[k].proc);
      EXPECT_DOUBLE_EQ(a.replicas(t)[k].start, b.replicas(t)[k].start);
    }
  }
}

// Parameterized structural sweep: (seed, epsilon, granularity).
class FtsaProperty
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t, double>> {};

TEST_P(FtsaProperty, StructuralInvariants) {
  const auto [seed, epsilon, granularity] = GetParam();
  const auto w = small_workload(seed, /*procs=*/8, /*tasks=*/50, granularity);
  FtsaOptions options;
  options.epsilon = epsilon;
  options.seed = seed;
  const auto s = ftsa_schedule(w->costs(), options);
  // validate() checks Prop 4.1, timeline consistency, channel coverage.
  s.validate();
  // Exactly ε+1 replicas (FTSA never duplicates beyond that).
  for (TaskId t : w->graph().tasks()) {
    EXPECT_EQ(s.replicas(t).size(), epsilon + 1);
  }
  // Bounds ordered.
  EXPECT_LE(s.lower_bound(), s.upper_bound() * (1 + 1e-12));
  // Communication bound: at most e(ε+1)² channels.
  EXPECT_LE(s.channel_count(),
            w->graph().edge_count() * (epsilon + 1) * (epsilon + 1));
}

TEST_P(FtsaProperty, FailureFreeSimulationAchievesLowerBound) {
  const auto [seed, epsilon, granularity] = GetParam();
  const auto w = small_workload(seed, /*procs=*/8, /*tasks=*/50, granularity);
  FtsaOptions options;
  options.epsilon = epsilon;
  options.seed = seed;
  const auto s = ftsa_schedule(w->costs(), options);
  const SimulationResult r = simulate(s);
  ASSERT_TRUE(r.success);
  // The engine computes replica times with exactly the simulator's
  // semantics, so the failure-free run reproduces M* to the last ulp-ish.
  EXPECT_NEAR(r.latency, s.lower_bound(), 1e-9 * (1.0 + s.lower_bound()));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FtsaProperty,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u),
                       ::testing::Values(0u, 1u, 2u, 3u),
                       ::testing::Values(0.2, 1.0, 2.0)));

TEST(Ftsa, ReplicationIncreasesLatencyOnAverage) {
  // Not guaranteed instance-by-instance, but robust in aggregate: the
  // ε = 2 lower bound should not beat the fault-free latency on average.
  double sum0 = 0.0;
  double sum2 = 0.0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto w = small_workload(seed);
    FtsaOptions o0;
    o0.epsilon = 0;
    FtsaOptions o2;
    o2.epsilon = 2;
    sum0 += ftsa_schedule(w->costs(), o0).lower_bound();
    sum2 += ftsa_schedule(w->costs(), o2).lower_bound();
  }
  EXPECT_GE(sum2, sum0);
}

TEST(Ftsa, AllProcessorsUsableAsReplicas) {
  // epsilon + 1 == m: every task runs everywhere.
  const auto w = small_workload(5, /*procs=*/4, /*tasks=*/15);
  FtsaOptions options;
  options.epsilon = 3;
  const auto s = ftsa_schedule(w->costs(), options);
  s.validate();
  for (TaskId t : w->graph().tasks()) {
    std::set<ProcId> procs;
    for (const Replica& r : s.replicas(t)) procs.insert(r.proc);
    EXPECT_EQ(procs.size(), 4u);
  }
}

TEST(Ftsa, ForkJoinWithReplication) {
  Rng rng(8);
  PaperWorkloadParams params;
  params.proc_count = 5;
  const auto w = make_workload_for_graph(rng, make_fork_join(6), params);
  FtsaOptions options;
  options.epsilon = 2;
  const auto s = ftsa_schedule(w->costs(), options);
  s.validate();
  const SimulationResult r = simulate(s);
  EXPECT_TRUE(r.success);
  EXPECT_NEAR(r.latency, s.lower_bound(), 1e-9 * (1.0 + s.lower_bound()));
}

TEST(Ftsa, IndependentTasksNoChannels) {
  // A graph with no edges yields no channels and a latency equal to the
  // longest chosen execution time.
  TaskGraph g;
  for (int i = 0; i < 6; ++i) (void)g.add_task();
  const Platform p(4, 1.0);
  std::vector<std::vector<double>> exec(6, std::vector<double>(4, 5.0));
  const CostModel costs(g, p, exec);
  FtsaOptions options;
  options.epsilon = 1;
  const auto s = ftsa_schedule(costs, options);
  s.validate();
  EXPECT_EQ(s.channel_count(), 0u);
  // 12 replicas of 5 time units on 4 identical processors: the greedy
  // min-finish rule keeps the loads balanced, so every processor ends at
  // 15 and the last tasks' earliest replicas finish exactly then.
  EXPECT_NEAR(s.lower_bound(), 15.0, 1e-9);
  EXPECT_NEAR(s.upper_bound(), 15.0, 1e-9);
}

}  // namespace
}  // namespace ftsched
