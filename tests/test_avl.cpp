// Unit + property tests for the AVL-tree priority structure (paper §4.1's α).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "ftsched/core/avl.hpp"
#include "ftsched/util/rng.hpp"

namespace ftsched {
namespace {

TEST(Avl, EmptyTree) {
  AvlTree<int> t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_THROW((void)t.max(), InvalidArgument);
  EXPECT_THROW((void)t.min(), InvalidArgument);
}

TEST(Avl, InsertAndQuery) {
  AvlTree<int> t;
  for (int x : {5, 1, 9, 3, 7}) t.insert(x);
  EXPECT_EQ(t.size(), 5u);
  EXPECT_EQ(t.max(), 9);
  EXPECT_EQ(t.min(), 1);
  EXPECT_TRUE(t.contains(3));
  EXPECT_FALSE(t.contains(4));
  t.validate();
}

TEST(Avl, SortedTraversal) {
  AvlTree<int> t;
  for (int x : {4, 2, 8, 6, 0}) t.insert(x);
  EXPECT_EQ(t.to_sorted_vector(), (std::vector<int>{0, 2, 4, 6, 8}));
}

TEST(Avl, Duplicates) {
  AvlTree<int> t;
  t.insert(5);
  t.insert(5);
  t.insert(5);
  EXPECT_EQ(t.size(), 3u);
  EXPECT_TRUE(t.erase_one(5));
  EXPECT_EQ(t.size(), 2u);
  EXPECT_TRUE(t.contains(5));
  t.validate();
}

TEST(Avl, EraseMissingReturnsFalse) {
  AvlTree<int> t;
  t.insert(1);
  EXPECT_FALSE(t.erase_one(2));
  EXPECT_EQ(t.size(), 1u);
}

TEST(Avl, ExtractMaxDrainsInDescendingOrder) {
  AvlTree<int> t;
  Rng rng(1);
  for (int i = 0; i < 200; ++i)
    t.insert(static_cast<int>(rng.uniform_int(0, 1000)));
  int prev = 1001;
  while (!t.empty()) {
    const int x = t.extract_max();
    EXPECT_LE(x, prev);
    prev = x;
  }
}

TEST(Avl, SequentialInsertStaysBalanced) {
  // Ascending insertion is the classic unbalanced-BST killer.
  AvlTree<int> t;
  for (int i = 0; i < 4096; ++i) {
    t.insert(i);
  }
  t.validate();  // checks balance factors and stale heights everywhere
  EXPECT_EQ(t.size(), 4096u);
  EXPECT_EQ(t.max(), 4095);
}

TEST(Avl, DescendingInsertStaysBalanced) {
  AvlTree<int> t;
  for (int i = 4096; i-- > 0;) t.insert(i);
  t.validate();
  EXPECT_EQ(t.min(), 0);
}

TEST(Avl, Clear) {
  AvlTree<int> t;
  for (int i = 0; i < 100; ++i) t.insert(i);
  t.clear();
  EXPECT_TRUE(t.empty());
  t.insert(42);
  EXPECT_EQ(t.max(), 42);
}

TEST(Avl, CustomComparator) {
  AvlTree<int, std::greater<int>> t;  // reversed order
  for (int x : {1, 5, 3}) t.insert(x);
  EXPECT_EQ(t.max(), 1);  // "max" under greater<> is the smallest value
  EXPECT_EQ(t.min(), 5);
  t.validate();
}

TEST(Avl, MoveConstruction) {
  AvlTree<int> t;
  for (int i = 0; i < 10; ++i) t.insert(i);
  AvlTree<int> u = std::move(t);
  EXPECT_EQ(u.size(), 10u);
  u.validate();
  // The moved-from tree is empty and reusable (its arena moved away, so
  // its root/size must have been reset with it).
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  t.insert(5);
  EXPECT_EQ(t.max(), 5);
  t.validate();
}

TEST(Avl, MoveAssignmentResetsTheSource) {
  AvlTree<int> t;
  for (int i = 0; i < 10; ++i) t.insert(i);
  AvlTree<int> u;
  u.insert(42);
  u = std::move(t);
  EXPECT_EQ(u.size(), 10u);
  EXPECT_EQ(u.max(), 9);
  u.validate();
  EXPECT_TRUE(t.empty());
  t.insert(7);
  EXPECT_EQ(t.min(), 7);
  t.validate();
}

// Property sweep: random interleavings of insert/erase/extract keep the
// tree a valid AVL multiset that mirrors a reference sorted vector.
class AvlProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AvlProperty, MatchesReferenceMultiset) {
  Rng rng(GetParam());
  AvlTree<int> t;
  std::vector<int> reference;  // kept sorted
  for (int step = 0; step < 2000; ++step) {
    const double action = rng.uniform();
    if (action < 0.55 || reference.empty()) {
      const int x = static_cast<int>(rng.uniform_int(0, 50));
      t.insert(x);
      reference.insert(
          std::lower_bound(reference.begin(), reference.end(), x), x);
    } else if (action < 0.8) {
      const int x = static_cast<int>(rng.uniform_int(0, 50));
      const bool erased = t.erase_one(x);
      const auto it =
          std::lower_bound(reference.begin(), reference.end(), x);
      const bool expected = it != reference.end() && *it == x;
      EXPECT_EQ(erased, expected);
      if (expected) reference.erase(it);
    } else {
      const int x = t.extract_max();
      EXPECT_EQ(x, reference.back());
      reference.pop_back();
    }
    ASSERT_EQ(t.size(), reference.size());
  }
  t.validate();
  EXPECT_EQ(t.to_sorted_vector(), reference);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AvlProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

// --- node-pool (arena) stress -----------------------------------------------
// The tree stores nodes in an index-linked arena with a free list; these
// tests pin the ordering contract of the old pointer-based tree under heavy
// slot recycling.

TEST(AvlArena, SteadyStateChurnRecyclesSlots) {
  AvlTree<int> t;
  Rng rng(99);
  for (int i = 0; i < 512; ++i)
    t.insert(static_cast<int>(rng.uniform_int(0, 100000)));
  const std::size_t arena = t.arena_size();
  EXPECT_EQ(arena, 512u);
  // extract_max + insert churn: every freed slot must be reused, so the
  // arena never grows — the scheduling loop's allocation-free steady state.
  for (int step = 0; step < 5000; ++step) {
    (void)t.extract_max();
    t.insert(static_cast<int>(rng.uniform_int(0, 100000)));
    ASSERT_EQ(t.arena_size(), arena);
  }
  t.validate();
  EXPECT_EQ(t.size(), 512u);
}

TEST(AvlArena, ClearDropsSlotsAndRefillsCleanly) {
  AvlTree<int> t;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 300; ++i) t.insert((i * 7919 + round) % 503);
    t.validate();
    EXPECT_EQ(t.size(), 300u);
    t.clear();
    EXPECT_TRUE(t.empty());
    EXPECT_EQ(t.arena_size(), 0u);
  }
  t.insert(1);
  EXPECT_EQ(t.max(), 1);
}

TEST(AvlArena, DuplicateHeavyEraseKeepsMultisetSemantics) {
  // A narrow key range forces long runs of equal keys through the
  // successor-replacement erase path.
  AvlTree<int> t;
  std::multiset<int> reference;
  Rng rng(1234);
  for (int step = 0; step < 6000; ++step) {
    const int x = static_cast<int>(rng.uniform_int(0, 7));
    if (rng.uniform() < 0.6 || reference.empty()) {
      t.insert(x);
      reference.insert(x);
    } else {
      const bool erased = t.erase_one(x);
      const auto it = reference.find(x);
      EXPECT_EQ(erased, it != reference.end());
      if (it != reference.end()) reference.erase(it);
    }
    if (step % 500 == 0) t.validate();
    ASSERT_EQ(t.size(), reference.size());
  }
  t.validate();
  EXPECT_EQ(t.to_sorted_vector(),
            (std::vector<int>(reference.begin(), reference.end())));
}

/// Long-run stress against std::multiset: random interleavings of insert,
/// erase_one, extract_max and occasional clear over a large key range.
class AvlArenaStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AvlArenaStress, MatchesReferenceMultisetUnderRecycling) {
  Rng rng(GetParam());
  AvlTree<int> t;
  std::multiset<int> reference;
  for (int step = 0; step < 20000; ++step) {
    const double action = rng.uniform();
    if (action < 0.5 || reference.empty()) {
      const int x = static_cast<int>(rng.uniform_int(-1000, 1000));
      t.insert(x);
      reference.insert(x);
    } else if (action < 0.75) {
      const int x = static_cast<int>(rng.uniform_int(-1000, 1000));
      const bool erased = t.erase_one(x);
      const auto it = reference.find(x);
      EXPECT_EQ(erased, it != reference.end());
      if (it != reference.end()) reference.erase(it);
    } else if (action < 0.999) {
      const int x = t.extract_max();
      const auto last = std::prev(reference.end());
      EXPECT_EQ(x, *last);
      reference.erase(last);
    } else {
      t.clear();
      reference.clear();
    }
    ASSERT_EQ(t.size(), reference.size());
    if (step % 2500 == 0) {
      t.validate();
      ASSERT_EQ(t.to_sorted_vector(),
                (std::vector<int>(reference.begin(), reference.end())));
    }
  }
  t.validate();
  EXPECT_EQ(t.to_sorted_vector(),
            (std::vector<int>(reference.begin(), reference.end())));
}

INSTANTIATE_TEST_SUITE_P(Seeds, AvlArenaStress,
                         ::testing::Values(11u, 22u, 33u, 44u));

}  // namespace
}  // namespace ftsched
