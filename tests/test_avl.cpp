// Unit + property tests for the AVL-tree priority structure (paper §4.1's α).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "ftsched/core/avl.hpp"
#include "ftsched/util/rng.hpp"

namespace ftsched {
namespace {

TEST(Avl, EmptyTree) {
  AvlTree<int> t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_THROW((void)t.max(), InvalidArgument);
  EXPECT_THROW((void)t.min(), InvalidArgument);
}

TEST(Avl, InsertAndQuery) {
  AvlTree<int> t;
  for (int x : {5, 1, 9, 3, 7}) t.insert(x);
  EXPECT_EQ(t.size(), 5u);
  EXPECT_EQ(t.max(), 9);
  EXPECT_EQ(t.min(), 1);
  EXPECT_TRUE(t.contains(3));
  EXPECT_FALSE(t.contains(4));
  t.validate();
}

TEST(Avl, SortedTraversal) {
  AvlTree<int> t;
  for (int x : {4, 2, 8, 6, 0}) t.insert(x);
  EXPECT_EQ(t.to_sorted_vector(), (std::vector<int>{0, 2, 4, 6, 8}));
}

TEST(Avl, Duplicates) {
  AvlTree<int> t;
  t.insert(5);
  t.insert(5);
  t.insert(5);
  EXPECT_EQ(t.size(), 3u);
  EXPECT_TRUE(t.erase_one(5));
  EXPECT_EQ(t.size(), 2u);
  EXPECT_TRUE(t.contains(5));
  t.validate();
}

TEST(Avl, EraseMissingReturnsFalse) {
  AvlTree<int> t;
  t.insert(1);
  EXPECT_FALSE(t.erase_one(2));
  EXPECT_EQ(t.size(), 1u);
}

TEST(Avl, ExtractMaxDrainsInDescendingOrder) {
  AvlTree<int> t;
  Rng rng(1);
  for (int i = 0; i < 200; ++i)
    t.insert(static_cast<int>(rng.uniform_int(0, 1000)));
  int prev = 1001;
  while (!t.empty()) {
    const int x = t.extract_max();
    EXPECT_LE(x, prev);
    prev = x;
  }
}

TEST(Avl, SequentialInsertStaysBalanced) {
  // Ascending insertion is the classic unbalanced-BST killer.
  AvlTree<int> t;
  for (int i = 0; i < 4096; ++i) {
    t.insert(i);
  }
  t.validate();  // checks balance factors and stale heights everywhere
  EXPECT_EQ(t.size(), 4096u);
  EXPECT_EQ(t.max(), 4095);
}

TEST(Avl, DescendingInsertStaysBalanced) {
  AvlTree<int> t;
  for (int i = 4096; i-- > 0;) t.insert(i);
  t.validate();
  EXPECT_EQ(t.min(), 0);
}

TEST(Avl, Clear) {
  AvlTree<int> t;
  for (int i = 0; i < 100; ++i) t.insert(i);
  t.clear();
  EXPECT_TRUE(t.empty());
  t.insert(42);
  EXPECT_EQ(t.max(), 42);
}

TEST(Avl, CustomComparator) {
  AvlTree<int, std::greater<int>> t;  // reversed order
  for (int x : {1, 5, 3}) t.insert(x);
  EXPECT_EQ(t.max(), 1);  // "max" under greater<> is the smallest value
  EXPECT_EQ(t.min(), 5);
  t.validate();
}

TEST(Avl, MoveConstruction) {
  AvlTree<int> t;
  for (int i = 0; i < 10; ++i) t.insert(i);
  AvlTree<int> u = std::move(t);
  EXPECT_EQ(u.size(), 10u);
  u.validate();
}

// Property sweep: random interleavings of insert/erase/extract keep the
// tree a valid AVL multiset that mirrors a reference sorted vector.
class AvlProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AvlProperty, MatchesReferenceMultiset) {
  Rng rng(GetParam());
  AvlTree<int> t;
  std::vector<int> reference;  // kept sorted
  for (int step = 0; step < 2000; ++step) {
    const double action = rng.uniform();
    if (action < 0.55 || reference.empty()) {
      const int x = static_cast<int>(rng.uniform_int(0, 50));
      t.insert(x);
      reference.insert(
          std::lower_bound(reference.begin(), reference.end(), x), x);
    } else if (action < 0.8) {
      const int x = static_cast<int>(rng.uniform_int(0, 50));
      const bool erased = t.erase_one(x);
      const auto it =
          std::lower_bound(reference.begin(), reference.end(), x);
      const bool expected = it != reference.end() && *it == x;
      EXPECT_EQ(erased, expected);
      if (expected) reference.erase(it);
    } else {
      const int x = t.extract_max();
      EXPECT_EQ(x, reference.back());
      reference.pop_back();
    }
    ASSERT_EQ(t.size(), reference.size());
  }
  t.validate();
  EXPECT_EQ(t.to_sorted_vector(), reference);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AvlProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace ftsched
