// Tests for the ASCII chart renderer, trace/JSON details, and the
// communication models as standalone units.
#include <gtest/gtest.h>

#include <sstream>

#include "ftsched/core/ftsa.hpp"
#include "ftsched/sim/comm_model.hpp"
#include "ftsched/sim/trace.hpp"
#include "ftsched/util/ascii_chart.hpp"
#include "ftsched/util/error.hpp"
#include "ftsched/workload/paper_workload.hpp"

namespace ftsched {
namespace {

// ---------------------------------------------------------------- chart

TEST(Chart, RendersSeriesAndLegend) {
  const std::vector<double> xs{0.2, 0.4, 0.6, 0.8, 1.0};
  ChartSeries up{"rising", {1, 2, 3, 4, 5}, '*'};
  ChartSeries down{"falling", {5, 4, 3, 2, 1}, 'o'};
  const std::string chart = render_chart(xs, {up, down});
  EXPECT_NE(chart.find('*'), std::string::npos);
  EXPECT_NE(chart.find('o'), std::string::npos);
  EXPECT_NE(chart.find("legend:"), std::string::npos);
  EXPECT_NE(chart.find("rising"), std::string::npos);
  EXPECT_NE(chart.find("falling"), std::string::npos);
}

TEST(Chart, RisingSeriesSlopesUp) {
  const std::vector<double> xs{0, 1, 2, 3};
  ChartSeries s{"s", {0, 1, 2, 3}, '*'};
  ChartOptions options;
  options.width = 40;
  options.height = 10;
  const std::string chart = render_chart(xs, {s}, options);
  // Split into rows; the first '*' (top row containing one) must be in a
  // later column than the '*' of the bottom rows.
  std::vector<std::string> rows;
  std::istringstream is(chart);
  std::string line;
  while (std::getline(is, line)) rows.push_back(line);
  std::size_t top_col = 0;
  std::size_t bottom_col = 0;
  for (const std::string& row : rows) {
    const auto col = row.find('*');
    if (col == std::string::npos) continue;
    if (top_col == 0) top_col = col;  // first row with a marker = highest y
    bottom_col = col;                 // last row with a marker = lowest y
  }
  EXPECT_GT(top_col, bottom_col);
}

TEST(Chart, ValidatesInput) {
  EXPECT_THROW((void)render_chart({}, {}), InvalidArgument);
  ChartSeries bad{"bad", {1.0, 2.0}, '*'};
  EXPECT_THROW((void)render_chart({1.0}, {bad}), InvalidArgument);
  ChartOptions tiny;
  tiny.width = 2;
  EXPECT_THROW((void)render_chart({1.0}, {}, tiny), InvalidArgument);
}

TEST(Chart, SinglePoint) {
  ChartSeries s{"point", {2.5}, '#'};
  const std::string chart = render_chart({1.0}, {s});
  EXPECT_NE(chart.find('#'), std::string::npos);
}

// ---------------------------------------------------------------- comm models

TEST(CommModel, ContentionFreeIsStateless) {
  const auto model = make_comm_model(4, {});
  EXPECT_DOUBLE_EQ(model->deliver(ProcId{0u}, 10.0, 5.0), 15.0);
  EXPECT_DOUBLE_EQ(model->deliver(ProcId{0u}, 10.0, 5.0), 15.0);  // again
  EXPECT_EQ(model->kind(), CommModelKind::kContentionFree);
}

TEST(CommModel, OnePortSerializesSends) {
  CommModelOptions options;
  options.kind = CommModelKind::kOnePort;
  const auto model = make_comm_model(4, options);
  // Three messages ready at t=0, each taking 5: arrivals 5, 10, 15.
  EXPECT_DOUBLE_EQ(model->deliver(ProcId{0u}, 0.0, 5.0), 5.0);
  EXPECT_DOUBLE_EQ(model->deliver(ProcId{0u}, 0.0, 5.0), 10.0);
  EXPECT_DOUBLE_EQ(model->deliver(ProcId{0u}, 0.0, 5.0), 15.0);
  // A different sender is unaffected.
  EXPECT_DOUBLE_EQ(model->deliver(ProcId{1u}, 0.0, 5.0), 5.0);
}

TEST(CommModel, OnePortIntraProcessorBypasses) {
  CommModelOptions options;
  options.kind = CommModelKind::kOnePort;
  const auto model = make_comm_model(2, options);
  EXPECT_DOUBLE_EQ(model->deliver(ProcId{0u}, 3.0, 0.0), 3.0);
  // The zero-duration send must not have occupied the port.
  EXPECT_DOUBLE_EQ(model->deliver(ProcId{0u}, 0.0, 4.0), 4.0);
}

TEST(CommModel, MultiPortAllowsParallelSends) {
  CommModelOptions options;
  options.kind = CommModelKind::kBoundedMultiPort;
  options.ports = 2;
  const auto model = make_comm_model(4, options);
  EXPECT_DOUBLE_EQ(model->deliver(ProcId{0u}, 0.0, 5.0), 5.0);
  EXPECT_DOUBLE_EQ(model->deliver(ProcId{0u}, 0.0, 5.0), 5.0);   // 2nd port
  EXPECT_DOUBLE_EQ(model->deliver(ProcId{0u}, 0.0, 5.0), 10.0);  // queued
}

TEST(CommModel, LaterReadyTimeUsesIdlePort) {
  CommModelOptions options;
  options.kind = CommModelKind::kOnePort;
  const auto model = make_comm_model(2, options);
  EXPECT_DOUBLE_EQ(model->deliver(ProcId{0u}, 0.0, 2.0), 2.0);
  // Ready at 10, port free since 2: starts at 10.
  EXPECT_DOUBLE_EQ(model->deliver(ProcId{0u}, 10.0, 2.0), 12.0);
}

// ---------------------------------------------------------------- gantt

TEST(Gantt, WidthIsRespected) {
  Rng rng(1);
  PaperWorkloadParams params;
  params.task_min = params.task_max = 10;
  params.proc_count = 3;
  const auto w = make_paper_workload(rng, params);
  const auto s = ftsa_schedule(w->costs(), FtsaOptions{1, 0});
  GanttOptions options;
  options.width = 40;
  const std::string gantt = schedule_gantt(s, options);
  std::istringstream is(gantt);
  std::string line;
  while (std::getline(is, line)) {
    EXPECT_LE(line.size(), 40u + 6u);  // row label + axis slack
  }
}

TEST(Gantt, EveryProcessorGetsARow) {
  Rng rng(2);
  PaperWorkloadParams params;
  params.task_min = params.task_max = 8;
  params.proc_count = 5;
  const auto w = make_paper_workload(rng, params);
  const auto s = ftsa_schedule(w->costs(), FtsaOptions{0, 0});
  const std::string gantt = schedule_gantt(s);
  for (int p = 0; p < 5; ++p) {
    EXPECT_NE(gantt.find("P" + std::to_string(p)), std::string::npos);
  }
}

}  // namespace
}  // namespace ftsched
