// Tests for the shared spec-string utility (util/spec.hpp): option parsing
// edge cases — factored into one place and tested once for every consumer
// (SchedulerRegistry, WorkloadRegistry, CrashTimeLaw, FailureModel) — plus
// the generic SpecRegistry error contract across both registries and the
// locale-independence contract of the numeric parse/render helpers.
#include <gtest/gtest.h>

#include <clocale>
#include <locale>
#include <string>

#include "ftsched/core/scheduler.hpp"
#include "ftsched/platform/failure.hpp"
#include "ftsched/util/error.hpp"
#include "ftsched/util/spec.hpp"
#include "ftsched/util/stats.hpp"
#include "ftsched/workload/workload_registry.hpp"

namespace ftsched {
namespace {

// ------------------------------------------------------------- SpecOptions

TEST(SpecOptions, EmptyAndBasicParsing) {
  EXPECT_TRUE(SpecOptions::parse("").empty());
  const SpecOptions o = SpecOptions::parse("eps=2,prio=bl");
  EXPECT_TRUE(o.has("eps"));
  EXPECT_TRUE(o.has("prio"));
  EXPECT_FALSE(o.has("seed"));
  EXPECT_EQ(o.get("eps"), "2");
  EXPECT_EQ(o.get("prio"), "bl");
  EXPECT_EQ(o.to_string(), "eps=2,prio=bl");
}

TEST(SpecOptions, MalformedInputsThrow) {
  EXPECT_THROW((void)SpecOptions::parse("eps"), InvalidArgument);     // no '='
  EXPECT_THROW((void)SpecOptions::parse("=2"), InvalidArgument);      // no key
  EXPECT_THROW((void)SpecOptions::parse("a=1,"), InvalidArgument);    // trail
  EXPECT_THROW((void)SpecOptions::parse("a=1,a=2"), InvalidArgument); // dup
  EXPECT_THROW((void)SpecOptions::parse("a=1,,b=2"), InvalidArgument);
}

TEST(SpecOptions, EmptyValueIsAllowedButMissingKeyThrows) {
  const SpecOptions o = SpecOptions::parse("file=");
  EXPECT_TRUE(o.has("file"));
  EXPECT_EQ(o.get("file"), "");
  EXPECT_THROW((void)o.get("absent"), InvalidArgument);
  EXPECT_EQ(o.get("absent", "fallback"), "fallback");
}

TEST(SpecOptions, NumericAccessorsValidate) {
  const SpecOptions o = SpecOptions::parse("n=12,x=1.5,neg=-3,bad=two,b=1");
  EXPECT_EQ(o.get_size("n", 0), 12u);
  EXPECT_EQ(o.get_u64("n", 0), 12u);
  EXPECT_EQ(o.get_size("absent", 7), 7u);
  EXPECT_DOUBLE_EQ(o.get_double("x", 0.0), 1.5);
  EXPECT_DOUBLE_EQ(o.get_double("neg", 0.0), -3.0);
  EXPECT_DOUBLE_EQ(o.get_double("absent", 2.5), 2.5);
  EXPECT_THROW((void)o.get_size("bad", 0), InvalidArgument);
  EXPECT_THROW((void)o.get_size("neg", 0), InvalidArgument);  // unsigned
  EXPECT_THROW((void)o.get_size("x", 0), InvalidArgument);    // trailing .5
  EXPECT_THROW((void)o.get_double("bad", 0.0), InvalidArgument);
  EXPECT_TRUE(o.get_bool("b", false));
  EXPECT_THROW((void)o.get_bool("n", false), InvalidArgument);  // 12
}

TEST(SpecOptions, SetDefaultDoesNotOverride) {
  SpecOptions o = SpecOptions::parse("eps=2");
  o.set_default("eps", "9");
  o.set_default("seed", "7");
  EXPECT_EQ(o.get("eps"), "2");
  EXPECT_EQ(o.get("seed"), "7");
  o.set("eps", "4");
  EXPECT_EQ(o.get("eps"), "4");
}

TEST(SpecSplit, SplitsAtFirstColonOnly) {
  std::string name;
  std::string options;
  split_spec_string("trace:file=a:b.txt", name, options);
  EXPECT_EQ(name, "trace");
  EXPECT_EQ(options, "file=a:b.txt");
  split_spec_string("ftsa", name, options);
  EXPECT_EQ(name, "ftsa");
  EXPECT_EQ(options, "");
}

// --------------------------------------- shared registry error contract

/// Both registries reject unknown names listing the alternatives, reject
/// unknown option keys listing the supported keys, and reject malformed
/// option strings — the same code path (SpecRegistry), asserted once per
/// consumer here so a regression in either wiring is caught.
template <typename Registry>
void expect_registry_error_contract(const Registry& registry,
                                    const std::string& known_name,
                                    const std::string& known_key) {
  try {
    (void)registry.create("no-such-entry");
    FAIL() << "expected InvalidArgument for unknown name";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no-such-entry"), std::string::npos);
    EXPECT_NE(what.find(known_name), std::string::npos);  // alternatives
  }
  try {
    (void)registry.create(known_name + ":bogus=1");
    FAIL() << "expected InvalidArgument for unknown option";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bogus"), std::string::npos);
    EXPECT_NE(what.find(known_key), std::string::npos);  // supported keys
  }
  EXPECT_THROW((void)registry.create(known_name + ":" + known_key),
               InvalidArgument);
  EXPECT_THROW((void)registry.create(known_name + ":=1"), InvalidArgument);
  EXPECT_THROW((void)registry.create(known_name + ":" + known_key + "=1," +
                                     known_key + "=2"),
               InvalidArgument);
}

TEST(SpecRegistry, SchedulerRegistryErrorContract) {
  expect_registry_error_contract(SchedulerRegistry::global(), "ftsa", "eps");
}

TEST(SpecRegistry, WorkloadRegistryErrorContract) {
  expect_registry_error_contract(WorkloadRegistry::global(), "paper", "tmin");
}

TEST(SpecRegistry, BadNumericValuesRejectedByBothRegistries) {
  EXPECT_THROW((void)SchedulerRegistry::global().create("ftsa:eps=two"),
               InvalidArgument);
  EXPECT_THROW((void)WorkloadRegistry::global().create("paper:tmin=ten"),
               InvalidArgument);
  EXPECT_THROW((void)WorkloadRegistry::global().create("layered:p=often"),
               InvalidArgument);
}

TEST(SpecRegistry, EmptySpecIsUnknownName) {
  EXPECT_THROW((void)SchedulerRegistry::global().create(""), InvalidArgument);
  EXPECT_THROW((void)WorkloadRegistry::global().create(""), InvalidArgument);
  EXPECT_THROW((void)WorkloadRegistry::global().create(":tmin=1"),
               InvalidArgument);
}

// ------------------------------------------------------------ CrashTimeLaw

TEST(CrashTimeLaw, ParsesAndRoundTrips) {
  for (const char* spec :
       {"t0", "frac:f=0.5", "frac:f=1.2", "uniform:hi=1", "exp:mean=0.25"}) {
    const CrashTimeLaw law = CrashTimeLaw::parse(spec);
    EXPECT_EQ(CrashTimeLaw::parse(law.to_string()).to_string(),
              law.to_string())
        << spec;
    EXPECT_FALSE(law.describe().empty());
  }
  EXPECT_EQ(CrashTimeLaw().to_string(), "t0");
  EXPECT_EQ(CrashTimeLaw::parse("frac").to_string(), "frac:f=0.5");
}

TEST(CrashTimeLaw, RejectsUnknownLawsAndOptions) {
  EXPECT_THROW((void)CrashTimeLaw::parse("lightning"), InvalidArgument);
  EXPECT_THROW((void)CrashTimeLaw::parse("t0:f=1"), InvalidArgument);
  EXPECT_THROW((void)CrashTimeLaw::parse("frac:hi=1"), InvalidArgument);
  EXPECT_THROW((void)CrashTimeLaw::parse("frac:f=-1"), InvalidArgument);
  EXPECT_THROW((void)CrashTimeLaw::parse("exp:mean=0"), InvalidArgument);
  EXPECT_THROW((void)CrashTimeLaw::parse("frac:f=fast"), InvalidArgument);
}

TEST(CrashTimeLaw, RejectsDegenerateParametersWithSpecStyleMessages) {
  // NaN/inf parameters would otherwise surface only as NaN crash times
  // deep inside a sweep; the parse must reject them like unknown keys —
  // naming the law, the option and the constraint.
  for (const char* spec : {"frac:f=-1", "frac:f=nan", "frac:f=inf",
                           "uniform:hi=-2", "uniform:hi=nan", "exp:mean=0",
                           "exp:mean=-0.5", "exp:mean=inf"}) {
    try {
      (void)CrashTimeLaw::parse(spec);
      FAIL() << "expected InvalidArgument for " << spec;
    } catch (const InvalidArgument& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("crash law"), std::string::npos) << spec;
      EXPECT_NE(what.find("must be"), std::string::npos) << spec;
    }
  }
}

// ------------------------------------------------------ locale independence

/// Runs `body` under the de_DE.UTF-8 locale (',' radix) when the host has
/// it, restoring the global C and C++ locales afterwards.  Returns false
/// when the locale is unavailable (the caller skips).
template <typename Body>
bool with_german_locale(Body&& body) {
  const std::string old_c = std::setlocale(LC_ALL, nullptr);
  const std::locale old_cpp;
  bool available = false;
  for (const char* name : {"de_DE.UTF-8", "de_DE.utf8"}) {
    try {
      // Sets the C++ global locale AND the C locale (std::stod reads the
      // latter) — exactly the environment the bug corrupted specs under.
      std::locale::global(std::locale(name));
      available = true;
      break;
    } catch (const std::runtime_error&) {
    }
  }
  if (available) body();
  std::locale::global(old_cpp);
  std::setlocale(LC_ALL, old_c.c_str());
  return available;
}

/// A comma-radix numpunct facet: lets the render-side guard run even on
/// hosts without the de_DE locale installed (stream-based rendering would
/// pick the facet up; to_chars must not).
struct CommaPunct : std::numpunct<char> {
  char do_decimal_point() const override { return ','; }
};

TEST(SpecLocale, RenderIgnoresTheImbuedCppLocale) {
  const std::locale old_cpp;
  std::locale::global(std::locale(std::locale(), new CommaPunct));
  EXPECT_EQ(spec_detail::render_double(0.5), "0.5");
  EXPECT_EQ(spec_detail::render_double(-12.375), "-12.375");
  EXPECT_EQ(CrashTimeLaw::parse("frac:f=0.5").to_string(), "frac:f=0.5");
  EXPECT_EQ(FailureModel::parse("bernoulli:p=0.25").to_string(),
            "bernoulli:p=0.25");
  std::locale::global(old_cpp);
}

TEST(SpecLocale, NumericParsingIsLocaleIndependent) {
  const bool ran = with_german_locale([] {
    // Sanity: the locale really is comma-radix here (otherwise this test
    // silently stops guarding anything).
    ASSERT_EQ(std::localeconv()->decimal_point[0], ',');
    EXPECT_DOUBLE_EQ(spec_detail::parse_double("f", "0.5"), 0.5);
    EXPECT_DOUBLE_EQ(spec_detail::parse_double("f", "-1.25e2"), -125.0);
    EXPECT_THROW((void)spec_detail::parse_double("f", "0,5"),
                 InvalidArgument);
    EXPECT_EQ(spec_detail::render_double(0.5), "0.5");
    EXPECT_EQ(spec_detail::render_double(1234.75), "1234.75");
  });
  if (!ran) GTEST_SKIP() << "de_DE locale not installed on this host";
}

TEST(SpecLocale, CanonicalSpecsRoundTripUnderCommaRadix) {
  const bool ran = with_german_locale([] {
    // The full consumer chain: law/model specs parse, canonicalize and
    // re-parse identically whatever the host locale.
    for (const char* spec : {"frac:f=0.5", "uniform:hi=1.5", "exp:mean=0.25"}) {
      const CrashTimeLaw law = CrashTimeLaw::parse(spec);
      EXPECT_EQ(law.to_string(), spec);
      EXPECT_EQ(CrashTimeLaw::parse(law.to_string()).to_string(), spec);
    }
    for (const char* spec : {"bernoulli:p=0.1", "bernoulli:p=0.25,domain=4"}) {
      const FailureModel model = FailureModel::parse(spec);
      EXPECT_EQ(model.to_string(), spec);
    }
    // The shard protocol's hex-float pair is the other fingerprint
    // ingredient; it must stay exact too.
    for (double x : {0.2, -1.5, 1e-300, 3.14159}) {
      EXPECT_EQ(hex_to_double(double_to_hex(x)), x);
    }
  });
  if (!ran) GTEST_SKIP() << "de_DE locale not installed on this host";
}

TEST(CrashTimeLaw, SamplingContracts) {
  Rng rng(3);
  const auto before = rng;
  // t0 consumes no randomness (the legacy-stream guarantee) ...
  const std::vector<double> zeros = CrashTimeLaw().sample(rng, 4);
  EXPECT_EQ(zeros, std::vector<double>(4, 0.0));
  Rng copy = before;
  EXPECT_EQ(rng(), copy());
  // ... frac is deterministic, uniform/exp draw nonnegative times.
  const auto fracs = CrashTimeLaw::parse("frac:f=0.3").sample(rng, 3);
  EXPECT_EQ(fracs, std::vector<double>(3, 0.3));
  for (double t : CrashTimeLaw::parse("uniform:hi=2").sample(rng, 8)) {
    EXPECT_GE(t, 0.0);
    EXPECT_LT(t, 2.0);
  }
  for (double t : CrashTimeLaw::parse("exp:mean=0.5").sample(rng, 8)) {
    EXPECT_GE(t, 0.0);
  }
}

}  // namespace
}  // namespace ftsched
