// Tests for the shared spec-string utility (util/spec.hpp): option parsing
// edge cases — factored into one place and tested once for every consumer
// (SchedulerRegistry, WorkloadRegistry, CrashTimeLaw) — plus the generic
// SpecRegistry error contract across both registries.
#include <gtest/gtest.h>

#include <string>

#include "ftsched/core/scheduler.hpp"
#include "ftsched/platform/failure.hpp"
#include "ftsched/util/error.hpp"
#include "ftsched/util/spec.hpp"
#include "ftsched/workload/workload_registry.hpp"

namespace ftsched {
namespace {

// ------------------------------------------------------------- SpecOptions

TEST(SpecOptions, EmptyAndBasicParsing) {
  EXPECT_TRUE(SpecOptions::parse("").empty());
  const SpecOptions o = SpecOptions::parse("eps=2,prio=bl");
  EXPECT_TRUE(o.has("eps"));
  EXPECT_TRUE(o.has("prio"));
  EXPECT_FALSE(o.has("seed"));
  EXPECT_EQ(o.get("eps"), "2");
  EXPECT_EQ(o.get("prio"), "bl");
  EXPECT_EQ(o.to_string(), "eps=2,prio=bl");
}

TEST(SpecOptions, MalformedInputsThrow) {
  EXPECT_THROW((void)SpecOptions::parse("eps"), InvalidArgument);     // no '='
  EXPECT_THROW((void)SpecOptions::parse("=2"), InvalidArgument);      // no key
  EXPECT_THROW((void)SpecOptions::parse("a=1,"), InvalidArgument);    // trail
  EXPECT_THROW((void)SpecOptions::parse("a=1,a=2"), InvalidArgument); // dup
  EXPECT_THROW((void)SpecOptions::parse("a=1,,b=2"), InvalidArgument);
}

TEST(SpecOptions, EmptyValueIsAllowedButMissingKeyThrows) {
  const SpecOptions o = SpecOptions::parse("file=");
  EXPECT_TRUE(o.has("file"));
  EXPECT_EQ(o.get("file"), "");
  EXPECT_THROW((void)o.get("absent"), InvalidArgument);
  EXPECT_EQ(o.get("absent", "fallback"), "fallback");
}

TEST(SpecOptions, NumericAccessorsValidate) {
  const SpecOptions o = SpecOptions::parse("n=12,x=1.5,neg=-3,bad=two,b=1");
  EXPECT_EQ(o.get_size("n", 0), 12u);
  EXPECT_EQ(o.get_u64("n", 0), 12u);
  EXPECT_EQ(o.get_size("absent", 7), 7u);
  EXPECT_DOUBLE_EQ(o.get_double("x", 0.0), 1.5);
  EXPECT_DOUBLE_EQ(o.get_double("neg", 0.0), -3.0);
  EXPECT_DOUBLE_EQ(o.get_double("absent", 2.5), 2.5);
  EXPECT_THROW((void)o.get_size("bad", 0), InvalidArgument);
  EXPECT_THROW((void)o.get_size("neg", 0), InvalidArgument);  // unsigned
  EXPECT_THROW((void)o.get_size("x", 0), InvalidArgument);    // trailing .5
  EXPECT_THROW((void)o.get_double("bad", 0.0), InvalidArgument);
  EXPECT_TRUE(o.get_bool("b", false));
  EXPECT_THROW((void)o.get_bool("n", false), InvalidArgument);  // 12
}

TEST(SpecOptions, SetDefaultDoesNotOverride) {
  SpecOptions o = SpecOptions::parse("eps=2");
  o.set_default("eps", "9");
  o.set_default("seed", "7");
  EXPECT_EQ(o.get("eps"), "2");
  EXPECT_EQ(o.get("seed"), "7");
  o.set("eps", "4");
  EXPECT_EQ(o.get("eps"), "4");
}

TEST(SpecSplit, SplitsAtFirstColonOnly) {
  std::string name;
  std::string options;
  split_spec_string("trace:file=a:b.txt", name, options);
  EXPECT_EQ(name, "trace");
  EXPECT_EQ(options, "file=a:b.txt");
  split_spec_string("ftsa", name, options);
  EXPECT_EQ(name, "ftsa");
  EXPECT_EQ(options, "");
}

// --------------------------------------- shared registry error contract

/// Both registries reject unknown names listing the alternatives, reject
/// unknown option keys listing the supported keys, and reject malformed
/// option strings — the same code path (SpecRegistry), asserted once per
/// consumer here so a regression in either wiring is caught.
template <typename Registry>
void expect_registry_error_contract(const Registry& registry,
                                    const std::string& known_name,
                                    const std::string& known_key) {
  try {
    (void)registry.create("no-such-entry");
    FAIL() << "expected InvalidArgument for unknown name";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no-such-entry"), std::string::npos);
    EXPECT_NE(what.find(known_name), std::string::npos);  // alternatives
  }
  try {
    (void)registry.create(known_name + ":bogus=1");
    FAIL() << "expected InvalidArgument for unknown option";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bogus"), std::string::npos);
    EXPECT_NE(what.find(known_key), std::string::npos);  // supported keys
  }
  EXPECT_THROW((void)registry.create(known_name + ":" + known_key),
               InvalidArgument);
  EXPECT_THROW((void)registry.create(known_name + ":=1"), InvalidArgument);
  EXPECT_THROW((void)registry.create(known_name + ":" + known_key + "=1," +
                                     known_key + "=2"),
               InvalidArgument);
}

TEST(SpecRegistry, SchedulerRegistryErrorContract) {
  expect_registry_error_contract(SchedulerRegistry::global(), "ftsa", "eps");
}

TEST(SpecRegistry, WorkloadRegistryErrorContract) {
  expect_registry_error_contract(WorkloadRegistry::global(), "paper", "tmin");
}

TEST(SpecRegistry, BadNumericValuesRejectedByBothRegistries) {
  EXPECT_THROW((void)SchedulerRegistry::global().create("ftsa:eps=two"),
               InvalidArgument);
  EXPECT_THROW((void)WorkloadRegistry::global().create("paper:tmin=ten"),
               InvalidArgument);
  EXPECT_THROW((void)WorkloadRegistry::global().create("layered:p=often"),
               InvalidArgument);
}

TEST(SpecRegistry, EmptySpecIsUnknownName) {
  EXPECT_THROW((void)SchedulerRegistry::global().create(""), InvalidArgument);
  EXPECT_THROW((void)WorkloadRegistry::global().create(""), InvalidArgument);
  EXPECT_THROW((void)WorkloadRegistry::global().create(":tmin=1"),
               InvalidArgument);
}

// ------------------------------------------------------------ CrashTimeLaw

TEST(CrashTimeLaw, ParsesAndRoundTrips) {
  for (const char* spec :
       {"t0", "frac:f=0.5", "frac:f=1.2", "uniform:hi=1", "exp:mean=0.25"}) {
    const CrashTimeLaw law = CrashTimeLaw::parse(spec);
    EXPECT_EQ(CrashTimeLaw::parse(law.to_string()).to_string(),
              law.to_string())
        << spec;
    EXPECT_FALSE(law.describe().empty());
  }
  EXPECT_EQ(CrashTimeLaw().to_string(), "t0");
  EXPECT_EQ(CrashTimeLaw::parse("frac").to_string(), "frac:f=0.5");
}

TEST(CrashTimeLaw, RejectsUnknownLawsAndOptions) {
  EXPECT_THROW((void)CrashTimeLaw::parse("lightning"), InvalidArgument);
  EXPECT_THROW((void)CrashTimeLaw::parse("t0:f=1"), InvalidArgument);
  EXPECT_THROW((void)CrashTimeLaw::parse("frac:hi=1"), InvalidArgument);
  EXPECT_THROW((void)CrashTimeLaw::parse("frac:f=-1"), InvalidArgument);
  EXPECT_THROW((void)CrashTimeLaw::parse("exp:mean=0"), InvalidArgument);
  EXPECT_THROW((void)CrashTimeLaw::parse("frac:f=fast"), InvalidArgument);
}

TEST(CrashTimeLaw, SamplingContracts) {
  Rng rng(3);
  const auto before = rng;
  // t0 consumes no randomness (the legacy-stream guarantee) ...
  const std::vector<double> zeros = CrashTimeLaw().sample(rng, 4);
  EXPECT_EQ(zeros, std::vector<double>(4, 0.0));
  Rng copy = before;
  EXPECT_EQ(rng(), copy());
  // ... frac is deterministic, uniform/exp draw nonnegative times.
  const auto fracs = CrashTimeLaw::parse("frac:f=0.3").sample(rng, 3);
  EXPECT_EQ(fracs, std::vector<double>(3, 0.3));
  for (double t : CrashTimeLaw::parse("uniform:hi=2").sample(rng, 8)) {
    EXPECT_GE(t, 0.0);
    EXPECT_LT(t, 2.0);
  }
  for (double t : CrashTimeLaw::parse("exp:mean=0.5").sample(rng, 8)) {
    EXPECT_GE(t, 0.0);
  }
}

}  // namespace
}  // namespace ftsched
