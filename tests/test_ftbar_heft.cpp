// Tests for the FTBAR baseline (§5) and the HEFT fault-free baseline.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "ftsched/core/ftbar.hpp"
#include "ftsched/core/heft.hpp"
#include "ftsched/sim/event_sim.hpp"
#include "ftsched/util/error.hpp"
#include "ftsched/workload/classic.hpp"
#include "ftsched/workload/paper_workload.hpp"

namespace ftsched {
namespace {

std::unique_ptr<Workload> small_workload(std::uint64_t seed,
                                         std::size_t procs = 6,
                                         std::size_t tasks = 30) {
  Rng rng(seed);
  PaperWorkloadParams params;
  params.task_min = params.task_max = tasks;
  params.proc_count = procs;
  return make_paper_workload(rng, params);
}

// ---------------------------------------------------------------- ftbar

TEST(Ftbar, RejectsTooManyFailures) {
  const auto w = small_workload(1, /*procs=*/3);
  FtbarOptions options;
  options.npf = 3;
  EXPECT_THROW((void)ftbar_schedule(w->costs(), options), InvalidArgument);
}

using FtbarParam = std::tuple<std::uint64_t, std::size_t, bool>;

class FtbarProperty : public ::testing::TestWithParam<FtbarParam> {};

TEST_P(FtbarProperty, StructuralInvariants) {
  const auto [seed, npf, use_mst] = GetParam();
  const auto w = small_workload(seed);
  FtbarOptions options;
  options.npf = npf;
  options.seed = seed;
  options.use_minimize_start_time = use_mst;
  const auto s = ftbar_schedule(w->costs(), options);
  s.validate();
  for (TaskId t : w->graph().tasks()) {
    EXPECT_GE(s.replicas(t).size(), npf + 1);  // MST may add duplicates
    std::set<ProcId> procs;
    for (const Replica& r : s.replicas(t)) procs.insert(r.proc);
    EXPECT_EQ(procs.size(), s.replicas(t).size());  // all distinct
  }
  EXPECT_LE(s.lower_bound(), s.upper_bound() * (1 + 1e-12));
}

TEST_P(FtbarProperty, FailureFreeSimulationMatchesLowerBound) {
  const auto [seed, npf, use_mst] = GetParam();
  const auto w = small_workload(seed);
  FtbarOptions options;
  options.npf = npf;
  options.seed = seed;
  options.use_minimize_start_time = use_mst;
  const auto s = ftbar_schedule(w->costs(), options);
  const SimulationResult r = simulate(s);
  ASSERT_TRUE(r.success);
  // First-input-wins can only help, so the simulated latency never exceeds
  // the schedule's failure-free bound; with all-pairs channels it matches.
  EXPECT_LE(r.latency, s.lower_bound() * (1 + 1e-9));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FtbarProperty,
    ::testing::Combine(::testing::Values(1u, 2u, 3u),
                       ::testing::Values(0u, 1u, 2u),
                       ::testing::Values(false, true)));

TEST(Ftbar, MstNeverWorseOnAverage) {
  double with = 0.0;
  double without = 0.0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto w = small_workload(seed);
    FtbarOptions on;
    on.npf = 1;
    on.use_minimize_start_time = true;
    FtbarOptions off;
    off.npf = 1;
    off.use_minimize_start_time = false;
    with += ftbar_schedule(w->costs(), on).lower_bound();
    without += ftbar_schedule(w->costs(), off).lower_bound();
  }
  EXPECT_LE(with, without * 1.02);  // small tolerance for heuristic noise
}

TEST(Ftbar, DeterministicForSameSeed) {
  const auto w = small_workload(5);
  FtbarOptions options;
  options.npf = 2;
  options.seed = 11;
  const auto a = ftbar_schedule(w->costs(), options);
  const auto b = ftbar_schedule(w->costs(), options);
  EXPECT_DOUBLE_EQ(a.lower_bound(), b.lower_bound());
  EXPECT_EQ(a.channel_count(), b.channel_count());
}

// ---------------------------------------------------------------- heft

TEST(Heft, SingleReplicaPerTask) {
  const auto w = small_workload(2);
  const auto s = heft_schedule(w->costs());
  s.validate();
  EXPECT_EQ(s.epsilon(), 0u);
  for (TaskId t : w->graph().tasks()) {
    EXPECT_EQ(s.replicas(t).size(), 1u);
  }
}

TEST(Heft, FailureFreeSimulationSucceeds) {
  const auto w = small_workload(3);
  const auto s = heft_schedule(w->costs());
  const SimulationResult r = simulate(s);
  ASSERT_TRUE(r.success);
  // Insertion may start tasks earlier than planned, never later.
  EXPECT_LE(r.latency, s.lower_bound() * (1 + 1e-9));
}

TEST(Heft, InsertionHelpsOnAverage) {
  double with = 0.0;
  double without = 0.0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto w = small_workload(seed);
    HeftOptions on;
    on.insertion = true;
    HeftOptions off;
    off.insertion = false;
    with += heft_schedule(w->costs(), on).lower_bound();
    without += heft_schedule(w->costs(), off).lower_bound();
  }
  EXPECT_LE(with, without * 1.001);
}

TEST(Heft, ChainStaysOnBestProcessor) {
  TaskGraph g = make_chain(4, ClassicParams{100.0});
  const Platform p(3, 1.0);
  // P2 is uniformly fastest.
  std::vector<std::vector<double>> exec(4, {9.0, 8.0, 2.0});
  const CostModel costs(g, p, exec);
  const auto s = heft_schedule(costs);
  for (TaskId t : g.tasks()) {
    EXPECT_EQ(s.replicas(t)[0].proc, ProcId{2u});
  }
  EXPECT_DOUBLE_EQ(s.lower_bound(), 8.0);
}

TEST(Heft, SchedulesWideGraphAcrossProcessors) {
  Rng rng(4);
  PaperWorkloadParams params;
  params.proc_count = 4;
  const auto w = make_workload_for_graph(rng, make_fork_join(12), params);
  const auto s = heft_schedule(w->costs());
  s.validate();
  std::set<ProcId> used;
  for (TaskId t : w->graph().tasks()) used.insert(s.replicas(t)[0].proc);
  EXPECT_GT(used.size(), 1u);  // parallelism exploited
}

// FTBAR should generally lose to FTSA-style earliest-finish mapping; we do
// not assert that here (it is an experimental claim, verified by the
// benches), but FTBAR must at least beat the trivial serial schedule.
TEST(Ftbar, BeatsSerialExecution) {
  const auto w = small_workload(9, /*procs=*/8, /*tasks=*/40);
  FtbarOptions options;
  options.npf = 0;
  const auto s = ftbar_schedule(w->costs(), options);
  double serial = 0.0;
  for (TaskId t : w->graph().tasks()) serial += w->costs().max_exec(t);
  EXPECT_LT(s.lower_bound(), serial);
}

}  // namespace
}  // namespace ftsched
