// Unit + property tests for the workload generators.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "ftsched/dag/analysis.hpp"
#include "ftsched/util/error.hpp"
#include "ftsched/workload/classic.hpp"
#include "ftsched/workload/granularity.hpp"
#include "ftsched/workload/paper_workload.hpp"
#include "ftsched/workload/random_dag.hpp"

namespace ftsched {
namespace {

// ---------------------------------------------------------------- layered

class LayeredDag : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LayeredDag, StructuralInvariants) {
  Rng rng(GetParam());
  LayeredDagParams params;
  params.task_count = 120;
  params.volume_min = 50.0;
  params.volume_max = 150.0;
  const TaskGraph g = make_layered_dag(rng, params);
  EXPECT_EQ(g.task_count(), 120u);
  EXPECT_TRUE(g.is_acyclic());
  EXPECT_GT(g.edge_count(), 0u);
  for (const Edge& e : g.edges()) {
    EXPECT_GE(e.volume, 50.0);
    EXPECT_LT(e.volume, 150.0);
  }
  // connect=true: every task is on a path from an entry to an exit layer.
  const auto depth = depths(g);
  for (TaskId t : g.tasks()) {
    if (depth[t.index()] > 0) {
      EXPECT_GT(g.in_degree(t), 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LayeredDag,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(LayeredDagTest, EdgesRespectLayerJump) {
  Rng rng(7);
  LayeredDagParams params;
  params.task_count = 60;
  params.max_layer_jump = 1;
  const TaskGraph g = make_layered_dag(rng, params);
  // With jump 1 every edge goes between consecutive generator layers, so
  // graph-depth difference along any edge is exactly 1.
  const auto depth = depths(g);
  for (const Edge& e : g.edges()) {
    EXPECT_EQ(depth[e.dst.index()], depth[e.src.index()] + 1);
  }
}

TEST(LayeredDagTest, RejectsBadParams) {
  Rng rng(1);
  LayeredDagParams params;
  params.task_count = 0;
  EXPECT_THROW((void)make_layered_dag(rng, params), InvalidArgument);
  params.task_count = 10;
  params.edge_probability = 1.5;
  EXPECT_THROW((void)make_layered_dag(rng, params), InvalidArgument);
}

TEST(GnpDag, AcyclicAndDense) {
  Rng rng(11);
  GnpDagParams params;
  params.task_count = 50;
  params.edge_probability = 0.2;
  const TaskGraph g = make_gnp_dag(rng, params);
  EXPECT_EQ(g.task_count(), 50u);
  EXPECT_TRUE(g.is_acyclic());
  // E[edges] = p * C(50,2) = 245; allow generous slack.
  EXPECT_GT(g.edge_count(), 150u);
  EXPECT_LT(g.edge_count(), 350u);
}

// ---------------------------------------------------------------- classics

TEST(Classic, Chain) {
  const TaskGraph g = make_chain(5);
  EXPECT_EQ(g.task_count(), 5u);
  EXPECT_EQ(g.edge_count(), 4u);
  EXPECT_EQ(critical_path_hops(g), 5u);
  EXPECT_EQ(layer_width(g), 1u);
}

TEST(Classic, ForkJoin) {
  const TaskGraph g = make_fork_join(6);
  EXPECT_EQ(g.task_count(), 8u);
  EXPECT_EQ(g.edge_count(), 12u);
  EXPECT_EQ(g.entry_tasks().size(), 1u);
  EXPECT_EQ(g.exit_tasks().size(), 1u);
  EXPECT_EQ(layer_width(g), 6u);
}

TEST(Classic, InTree) {
  const TaskGraph g = make_in_tree(8);
  EXPECT_EQ(g.task_count(), 15u);
  EXPECT_EQ(g.edge_count(), 14u);
  EXPECT_EQ(g.entry_tasks().size(), 8u);
  EXPECT_EQ(g.exit_tasks().size(), 1u);
}

TEST(Classic, OutTree) {
  const TaskGraph g = make_out_tree(8);
  EXPECT_EQ(g.task_count(), 15u);
  EXPECT_EQ(g.entry_tasks().size(), 1u);
  EXPECT_EQ(g.exit_tasks().size(), 8u);
}

TEST(Classic, TreeRejectsNonPowerOfTwo) {
  EXPECT_THROW((void)make_in_tree(6), InvalidArgument);
  EXPECT_THROW((void)make_out_tree(0), InvalidArgument);
  EXPECT_THROW((void)make_fft(12), InvalidArgument);
}

TEST(Classic, Fft) {
  const TaskGraph g = make_fft(8);
  // log2(8)=3 stages + input rank = 4 ranks of 8 tasks.
  EXPECT_EQ(g.task_count(), 32u);
  EXPECT_EQ(g.edge_count(), 48u);  // 2 in-edges per non-input task
  EXPECT_EQ(g.entry_tasks().size(), 8u);
  EXPECT_EQ(g.exit_tasks().size(), 8u);
  EXPECT_TRUE(g.is_acyclic());
  for (TaskId t : g.tasks()) {
    if (g.in_degree(t) > 0) {
      EXPECT_EQ(g.in_degree(t), 2u);
    }
  }
}

TEST(Classic, GaussianElimination) {
  const TaskGraph g = make_gaussian_elimination(5);
  // tasks: sum_{k=0}^{3} (1 + (5-k-1)) = 4+1 + 3+1 + 2+1 + 1+1 = 14.
  EXPECT_EQ(g.task_count(), 14u);
  EXPECT_TRUE(g.is_acyclic());
  EXPECT_EQ(g.entry_tasks().size(), 1u);  // first pivot
  EXPECT_THROW((void)make_gaussian_elimination(1), InvalidArgument);
}

TEST(Classic, Wavefront) {
  const TaskGraph g = make_wavefront(3, 4);
  EXPECT_EQ(g.task_count(), 12u);
  // edges: (rows-1)*cols vertical + rows*(cols-1) horizontal = 8 + 9 = 17.
  EXPECT_EQ(g.edge_count(), 17u);
  EXPECT_EQ(g.entry_tasks().size(), 1u);
  EXPECT_EQ(g.exit_tasks().size(), 1u);
  EXPECT_EQ(critical_path_hops(g), 6u);  // 3+4-1
}

class SeriesParallel : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeriesParallel, Invariants) {
  Rng rng(GetParam());
  const TaskGraph g = make_series_parallel(rng, 60);
  EXPECT_TRUE(g.is_acyclic());
  EXPECT_GE(g.task_count(), 30u);  // parallel split may add join nodes
  EXPECT_EQ(g.entry_tasks().size(), 1u);
  EXPECT_EQ(g.exit_tasks().size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeriesParallel,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

// ---------------------------------------------------------------- granularity

TEST(Granularity, HitsTargetExactly) {
  Rng rng(3);
  const TaskGraph g = make_fork_join(5);
  const Platform p = make_random_platform(rng, PlatformParams{4, 0.5, 1.0});
  CostModel costs(g, p, make_exec_costs(rng, g, 4, ExecCostParams{}));
  for (double target : {0.2, 0.5, 1.0, 2.0}) {
    set_granularity(costs, target);
    EXPECT_NEAR(costs.granularity(), target, 1e-12);
  }
}

TEST(Granularity, RejectsGraphWithoutComm) {
  TaskGraph g;
  (void)g.add_task();
  const Platform p(2, 1.0);
  CostModel costs(g, p, {{1.0, 1.0}});
  EXPECT_THROW(set_granularity(costs, 1.0), InvalidArgument);
}

// ---------------------------------------------------------------- paper workload

class PaperWorkload : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PaperWorkload, MatchesPublishedParameters) {
  Rng rng(GetParam());
  PaperWorkloadParams params;
  params.granularity = 0.8;
  const auto w = make_paper_workload(rng, params);
  EXPECT_GE(w->graph().task_count(), 100u);
  EXPECT_LE(w->graph().task_count(), 150u);
  EXPECT_EQ(w->platform().proc_count(), 20u);
  EXPECT_NEAR(w->costs().granularity(), 0.8, 1e-9);
  EXPECT_TRUE(w->graph().is_acyclic());
  for (const Edge& e : w->graph().edges()) {
    EXPECT_GE(e.volume, 50.0);
    EXPECT_LT(e.volume, 150.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PaperWorkload,
                         ::testing::Values(10u, 20u, 30u));

TEST(PaperWorkloadTest, Deterministic) {
  PaperWorkloadParams params;
  Rng a(99);
  Rng b(99);
  const auto wa = make_paper_workload(a, params);
  const auto wb = make_paper_workload(b, params);
  EXPECT_EQ(wa->graph().task_count(), wb->graph().task_count());
  EXPECT_EQ(wa->graph().edge_count(), wb->graph().edge_count());
  EXPECT_DOUBLE_EQ(wa->costs().exec(TaskId{0u}, ProcId{0u}),
                   wb->costs().exec(TaskId{0u}, ProcId{0u}));
}

TEST(PaperWorkloadTest, WrapsExistingGraph) {
  Rng rng(5);
  PaperWorkloadParams params;
  params.proc_count = 6;
  params.granularity = 1.5;
  const auto w = make_workload_for_graph(rng, make_fft(8), params);
  EXPECT_EQ(w->graph().task_count(), 32u);
  EXPECT_EQ(w->platform().proc_count(), 6u);
  EXPECT_NEAR(w->costs().granularity(), 1.5, 1e-9);
}

}  // namespace
}  // namespace ftsched
