// Tests for the discrete-event execution simulator: failure-free fidelity,
// crash semantics, cancellation, contention models, and Prop. 4.2.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "ftsched/core/ftsa.hpp"
#include "ftsched/core/mc_ftsa.hpp"
#include "ftsched/platform/failure.hpp"
#include "ftsched/sim/event_sim.hpp"
#include "ftsched/sim/trace.hpp"
#include "ftsched/workload/classic.hpp"
#include "ftsched/workload/paper_workload.hpp"

namespace ftsched {
namespace {

std::unique_ptr<Workload> small_workload(std::uint64_t seed,
                                         std::size_t procs = 6,
                                         std::size_t tasks = 30) {
  Rng rng(seed);
  PaperWorkloadParams params;
  params.task_min = params.task_max = tasks;
  params.proc_count = procs;
  return make_paper_workload(rng, params);
}

TEST(Sim, FailureFreeChain) {
  TaskGraph g = make_chain(3, ClassicParams{10.0});
  const Platform p(2, 1.0);
  std::vector<std::vector<double>> exec(3, std::vector<double>(2, 5.0));
  const CostModel costs(g, p, exec);
  const auto s = ftsa_schedule(costs, FtsaOptions{1, 0});
  const SimulationResult r = simulate(s);
  ASSERT_TRUE(r.success);
  EXPECT_NEAR(r.latency, s.lower_bound(), 1e-9);
  EXPECT_EQ(r.dead_replicas, 0u);
  EXPECT_EQ(r.cancelled_replicas, 0u);
  EXPECT_EQ(r.completed_replicas, 6u);
}

TEST(Sim, CrashOfUnusedProcessorIsHarmless) {
  TaskGraph g = make_chain(3, ClassicParams{10.0});
  const Platform p(3, 1.0);
  // P2 is terrible: FTSA(ε=0) avoids it.
  std::vector<std::vector<double>> exec(3, {1.0, 1.0, 1000.0});
  const CostModel costs(g, p, exec);
  const auto s = ftsa_schedule(costs, FtsaOptions{0, 0});
  FailureScenario scenario;
  scenario.add(ProcId{2u}, 0.0);
  const SimulationResult r = simulate(s, scenario);
  ASSERT_TRUE(r.success);
  EXPECT_NEAR(r.latency, s.lower_bound(), 1e-9);
}

TEST(Sim, CrashKillsUnreplicatedSchedule) {
  const auto w = small_workload(1, /*procs=*/4);
  const auto s = ftsa_schedule(w->costs(), FtsaOptions{0, 0});
  // Crash whichever processor hosts the first task: the run must fail.
  const ProcId victim = s.replicas(TaskId{0u})[0].proc;
  FailureScenario scenario;
  scenario.add(victim, 0.0);
  const SimulationResult r = simulate(s, scenario);
  EXPECT_FALSE(r.success);
  EXPECT_TRUE(std::isinf(r.latency));
  EXPECT_GT(r.dead_replicas + r.cancelled_replicas, 0u);
}

TEST(Sim, SurvivesEpsilonCrashes) {
  const auto w = small_workload(2, /*procs=*/5);
  const auto s = ftsa_schedule(w->costs(), FtsaOptions{2, 0});
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const FailureScenario scenario = random_crashes(rng, 5, 2);
    const SimulationResult r = simulate(s, scenario);
    ASSERT_TRUE(r.success);
    // Prop. 4.2: the guaranteed bound holds. (The achieved latency may
    // even dip below M* when a cancelled replica unblocks its processor
    // early, so no lower-bound assertion here.)
    EXPECT_LE(r.latency, s.upper_bound() * (1 + 1e-9));
  }
}

TEST(Sim, MidExecutionCrash) {
  // Crash at half the lower bound: in-flight work on the victim dies but
  // the schedule (ε = 1) still completes.
  const auto w = small_workload(3, /*procs=*/5);
  const auto s = ftsa_schedule(w->costs(), FtsaOptions{1, 0});
  FailureScenario scenario;
  scenario.add(ProcId{0u}, 0.5 * s.lower_bound());
  const SimulationResult r = simulate(s, scenario);
  ASSERT_TRUE(r.success);
  EXPECT_LE(r.latency, s.upper_bound() * (1 + 1e-9));
}

TEST(Sim, LateCrashDoesNotHurt) {
  // A crash after the whole schedule finished changes nothing.
  const auto w = small_workload(4, /*procs=*/5);
  const auto s = ftsa_schedule(w->costs(), FtsaOptions{1, 0});
  FailureScenario scenario;
  scenario.add(ProcId{1u}, 10.0 * s.upper_bound());
  const SimulationResult r = simulate(s, scenario);
  ASSERT_TRUE(r.success);
  EXPECT_NEAR(r.latency, s.lower_bound(), 1e-9 * (1 + s.lower_bound()));
  EXPECT_EQ(r.dead_replicas, 0u);
}

TEST(Sim, AllProcessorsCrashFails) {
  const auto w = small_workload(5, /*procs=*/4);
  const auto s = ftsa_schedule(w->costs(), FtsaOptions{1, 0});
  FailureScenario scenario;
  for (std::size_t p = 0; p < 4; ++p) scenario.add(ProcId{p}, 0.0);
  const SimulationResult r = simulate(s, scenario);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.completed_replicas, 0u);
}

TEST(Sim, TaskCompletionTimes) {
  const auto w = small_workload(6, /*procs=*/4);
  const auto s = ftsa_schedule(w->costs(), FtsaOptions{1, 0});
  const SimulationResult r = simulate(s);
  for (TaskId t : w->graph().tasks()) {
    const double done = r.task_completion(t);
    EXPECT_TRUE(std::isfinite(done));
    // Completion equals the earliest replica's planned finish when nothing
    // fails.
    double planned = std::numeric_limits<double>::infinity();
    for (const Replica& rep : s.replicas(t)) {
      planned = std::min(planned, rep.finish);
    }
    EXPECT_NEAR(done, planned, 1e-9 * (1 + planned));
  }
}

TEST(Sim, DeterministicAcrossRuns) {
  const auto w = small_workload(7, /*procs=*/5);
  const auto s = ftsa_schedule(w->costs(), FtsaOptions{2, 0});
  FailureScenario scenario;
  scenario.add(ProcId{0u}, 0.0);
  scenario.add(ProcId{3u}, 12.0);
  const SimulationResult a = simulate(s, scenario);
  const SimulationResult b = simulate(s, scenario);
  EXPECT_EQ(a.success, b.success);
  EXPECT_DOUBLE_EQ(a.latency, b.latency);
  EXPECT_EQ(a.completed_replicas, b.completed_replicas);
  EXPECT_EQ(a.messages_delivered, b.messages_delivered);
}

TEST(Sim, CancelledReplicasAreSkippedNotBlocking) {
  // Force cancellation: ε = 1 on 2 processors; crash P0 at 0. Every replica
  // on P0 dies, every task still completes on P1 (the co-located chain).
  const auto w = small_workload(8, /*procs=*/2, /*tasks=*/15);
  const auto s = ftsa_schedule(w->costs(), FtsaOptions{1, 0});
  FailureScenario scenario;
  scenario.add(ProcId{0u}, 0.0);
  const SimulationResult r = simulate(s, scenario);
  ASSERT_TRUE(r.success);
  EXPECT_LE(r.latency, s.upper_bound() * (1 + 1e-9));
}

// ---------------------------------------------------------------- contention

using CommParam = std::tuple<std::uint64_t, CommModelKind>;

class CommModelProperty : public ::testing::TestWithParam<CommParam> {};

TEST_P(CommModelProperty, ContentionNeverBeatsContentionFree) {
  const auto [seed, kind] = GetParam();
  const auto w = small_workload(seed, /*procs=*/6, /*tasks=*/40);
  const auto s = ftsa_schedule(w->costs(), FtsaOptions{1, 0});
  SimulationOptions contended;
  contended.comm.kind = kind;
  contended.comm.ports = 2;
  const SimulationResult free_run = simulate(s);
  const SimulationResult slow_run = simulate(s, {}, contended);
  ASSERT_TRUE(free_run.success);
  ASSERT_TRUE(slow_run.success);
  EXPECT_GE(slow_run.latency, free_run.latency * (1 - 1e-9));
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, CommModelProperty,
    ::testing::Combine(::testing::Values(1u, 2u, 3u),
                       ::testing::Values(CommModelKind::kOnePort,
                                         CommModelKind::kBoundedMultiPort)));

TEST(CommModels, MorePortsHelp) {
  const auto w = small_workload(9, /*procs=*/8, /*tasks=*/60);
  const auto s = ftsa_schedule(w->costs(), FtsaOptions{3, 0});
  auto run_with_ports = [&s](std::size_t ports) {
    SimulationOptions options;
    options.comm.kind = CommModelKind::kBoundedMultiPort;
    options.comm.ports = ports;
    return simulate(s, {}, options).latency;
  };
  const double one = run_with_ports(1);
  const double four = run_with_ports(4);
  const double many = run_with_ports(64);
  EXPECT_GE(one, four * (1 - 1e-9));
  EXPECT_GE(four, many * (1 - 1e-9));
  // With effectively unlimited ports we recover the contention-free run.
  EXPECT_NEAR(many, simulate(s).latency, 1e-6 * (1 + many));
}

// ---------------------------------------------------------------- traces

TEST(Trace, GanttAndListingRender) {
  const auto w = small_workload(10, /*procs=*/4, /*tasks=*/10);
  const auto s = ftsa_schedule(w->costs(), FtsaOptions{1, 0});
  const std::string gantt = schedule_gantt(s);
  EXPECT_NE(gantt.find("P0"), std::string::npos);
  EXPECT_NE(gantt.find('#'), std::string::npos);
  const std::string listing = schedule_listing(s);
  EXPECT_NE(listing.find("FTSA"), std::string::npos);
  EXPECT_NE(listing.find("M*"), std::string::npos);

  FailureScenario scenario;
  scenario.add(ProcId{0u}, 0.0);
  const SimulationResult r = simulate(s, scenario);
  const std::string egantt = execution_gantt(s, r);
  EXPECT_NE(egantt.find("lost replicas"), std::string::npos);
}

}  // namespace
}  // namespace ftsched
