// Fuzz-style property tests: random mutations of valid schedules must be
// caught by the validator; random graph serialization round trips; the
// umbrella header compiles and exposes the API.
#include <gtest/gtest.h>

#include <algorithm>

#include "ftsched/ftsched.hpp"

namespace ftsched {
namespace {

std::unique_ptr<Workload> small_workload(std::uint64_t seed,
                                         std::size_t procs = 5,
                                         std::size_t tasks = 15) {
  Rng rng(seed);
  PaperWorkloadParams params;
  params.task_min = params.task_max = tasks;
  params.proc_count = procs;
  return make_paper_workload(rng, params);
}

/// Rebuilds a schedule from `s` applying `mutate` to the serialized
/// replica data, then reports whether validate() rejects it.
enum class Mutation {
  kShiftStartEarlier,   // replica starts before its inputs arrive
  kShrinkDuration,      // duration no longer matches E(t, P)
  kMoveToUsedProc,      // two replicas of one task on the same processor
  kDropChannel,         // a replica loses an inbound channel
  kOverlapOnProcessor,  // two replicas overlap on one processor
};

bool mutation_rejected(const ReplicatedSchedule& original,
                       const CostModel& costs, Mutation mutation, Rng& rng) {
  const TaskGraph& g = costs.graph();
  // Deep-copy replica and channel data.
  std::vector<std::vector<Replica>> replicas(g.task_count());
  for (TaskId t : g.tasks()) replicas[t.index()] = original.replicas(t);
  std::vector<std::vector<Channel>> channels(g.edge_count());
  for (std::size_t e = 0; e < g.edge_count(); ++e) {
    channels[e] = original.channels(e);
  }

  // Pick a random task with predecessors (most mutations need one).
  std::vector<TaskId> candidates;
  for (TaskId t : g.tasks()) {
    if (g.in_degree(t) > 0) candidates.push_back(t);
  }
  if (candidates.empty()) return true;  // nothing to mutate
  const TaskId victim = candidates[static_cast<std::size_t>(rng.uniform_int(
      0, static_cast<std::int64_t>(candidates.size()) - 1))];
  auto& reps = replicas[victim.index()];

  switch (mutation) {
    case Mutation::kShiftStartEarlier: {
      // Move the replica's whole slot well before time 0 arrivals allow;
      // keep duration consistent so only the precedence check can fire.
      Replica& r = reps[0];
      if (r.start <= 1e-9) return true;  // already at zero; skip
      const double shift = r.start;  // start at 0: inputs cannot be there
      r.start -= shift;
      r.finish -= shift;
      r.pess_start = std::max(r.pess_start - shift, r.start);
      r.pess_finish = r.pess_start + (r.finish - r.start);
      break;
    }
    case Mutation::kShrinkDuration: {
      Replica& r = reps[0];
      r.finish = r.start + 0.5 * (r.finish - r.start);
      r.pess_finish = std::max(r.pess_finish, r.finish);
      break;
    }
    case Mutation::kMoveToUsedProc: {
      if (reps.size() < 2) return true;
      reps[0].proc = reps[1].proc;  // Prop 4.1 violation
      break;
    }
    case Mutation::kDropChannel: {
      const auto in = g.in_edges(victim);
      const std::size_t e = in[0];
      auto& cs = channels[e];
      // Remove every channel into replica 0 of the victim.
      cs.erase(std::remove_if(cs.begin(), cs.end(),
                              [](const Channel& c) {
                                return c.dst_replica == 0;
                              }),
               cs.end());
      break;
    }
    case Mutation::kOverlapOnProcessor: {
      // Stretch replica 0 far enough to overlap the next slot on its
      // processor, keeping exec-duration mismatch out of the picture by
      // instead moving another replica of the same proc earlier.
      const ProcId p = reps[0].proc;
      // Find some other replica on p and slam it into reps[0]'s window.
      for (TaskId t : g.tasks()) {
        if (t == victim) continue;
        for (Replica& other : replicas[t.index()]) {
          if (other.proc == p) {
            const double duration = other.finish - other.start;
            other.start = reps[0].start;
            other.finish = other.start + duration;
            other.pess_start = std::max(other.pess_start, other.start);
            other.pess_finish =
                std::max(other.pess_finish, other.finish);
            goto mutated;
          }
        }
      }
      return true;  // no second replica on that processor; skip
    mutated:
      break;
    }
  }

  ReplicatedSchedule corrupted(costs, original.epsilon(), "fuzz");
  for (TaskId t : g.tasks()) {
    corrupted.place_task(t, replicas[t.index()]);
  }
  for (std::size_t e = 0; e < g.edge_count(); ++e) {
    corrupted.set_channels(e, channels[e]);
  }
  try {
    corrupted.validate();
    return false;  // mutation slipped through
  } catch (const Error&) {
    return true;
  }
}

class MutationFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MutationFuzz, ValidatorCatchesCorruptions) {
  const auto w = small_workload(GetParam());
  const auto s = ftsa_schedule(w->costs(), FtsaOptions{1, GetParam()});
  Rng rng(GetParam() * 977);
  for (const Mutation mutation :
       {Mutation::kShiftStartEarlier, Mutation::kShrinkDuration,
        Mutation::kMoveToUsedProc, Mutation::kDropChannel,
        Mutation::kOverlapOnProcessor}) {
    for (int trial = 0; trial < 5; ++trial) {
      EXPECT_TRUE(mutation_rejected(s, w->costs(), mutation, rng))
          << "mutation " << static_cast<int>(mutation)
          << " not rejected (trial " << trial << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

// Serialization fuzz: random graphs of every family round-trip exactly.
class SerializeFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SerializeFuzz, GraphRoundTrips) {
  Rng rng(GetParam());
  std::vector<TaskGraph> graphs;
  {
    LayeredDagParams lp;
    lp.task_count = 30 + static_cast<std::size_t>(rng.uniform_int(0, 40));
    graphs.push_back(make_layered_dag(rng, lp));
    GnpDagParams gp;
    gp.task_count = 25;
    graphs.push_back(make_gnp_dag(rng, gp));
    graphs.push_back(make_series_parallel(rng, 40));
    graphs.push_back(make_cholesky(4));
    graphs.push_back(make_lu(3));
  }
  for (const TaskGraph& g : graphs) {
    const TaskGraph h = graph_from_string(graph_to_string(g));
    ASSERT_EQ(h.task_count(), g.task_count()) << g.name();
    ASSERT_EQ(h.edge_count(), g.edge_count()) << g.name();
    for (const Edge& e : g.edges()) {
      EXPECT_TRUE(h.has_edge(e.src, e.dst));
      EXPECT_DOUBLE_EQ(h.volume(e.src, e.dst), e.volume);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializeFuzz,
                         ::testing::Values(11u, 12u, 13u, 14u));

// Schedule round-trip fuzz across algorithms and epsilons.
class ScheduleIoFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScheduleIoFuzz, AllAlgorithmsRoundTrip) {
  const auto w = small_workload(GetParam());
  std::vector<ReplicatedSchedule> schedules;
  schedules.push_back(ftsa_schedule(w->costs(), FtsaOptions{2, GetParam()}));
  schedules.push_back(
      mc_ftsa_schedule(w->costs(), McFtsaOptions{1, GetParam()}));
  FtbarOptions bo;
  bo.npf = 1;
  bo.seed = GetParam();
  schedules.push_back(ftbar_schedule(w->costs(), bo));
  schedules.push_back(heft_schedule(w->costs()));
  schedules.push_back(cpop_schedule(w->costs()));
  for (const ReplicatedSchedule& s : schedules) {
    const auto reloaded =
        schedule_from_string(schedule_to_string(s), w->costs());
    EXPECT_DOUBLE_EQ(reloaded.lower_bound(), s.lower_bound())
        << s.algorithm();
    EXPECT_DOUBLE_EQ(reloaded.upper_bound(), s.upper_bound())
        << s.algorithm();
    EXPECT_EQ(reloaded.channel_count(), s.channel_count()) << s.algorithm();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScheduleIoFuzz,
                         ::testing::Values(21u, 22u, 23u, 24u));

}  // namespace
}  // namespace ftsched
