// Tests of the sweep coordinator service (service/coordinator.hpp,
// service/worker.hpp, service/protocol.hpp) and the socket backend on top
// of it.
//
// The load-bearing property is the bit-identity oracle: however the grid
// is leased out — one worker or three, workers dying mid-lease, straggler
// leases stolen, runs resumed from a manifest — the sink sees exactly the
// samples an in-process run_plan delivers, in the same order, bit for bit.
// Fault injection uses the worker options' hooks (max_leases,
// kill_after_leases, sample_delay_ms) for in-process workers and wrapper
// shell scripts around the real CLI binary (FTSCHED_CLI_PATH) for worker
// processes.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "ftsched/experiments/backend.hpp"
#include "ftsched/experiments/figures.hpp"
#include "ftsched/experiments/sweep_io.hpp"
#include "ftsched/experiments/sweep_plan.hpp"
#include "ftsched/service/coordinator.hpp"
#include "ftsched/service/protocol.hpp"
#include "ftsched/service/worker.hpp"
#include "ftsched/util/net.hpp"
#include "ftsched/util/subprocess.hpp"

namespace ftsched {
namespace {

std::string cli_path() { return FTSCHED_CLI_PATH; }

/// Small but fully multi-cell grid: 2 workloads x 2 scenarios x 2
/// granularities x 2 reps = 16 instances.
FigureConfig small_config() {
  FigureConfig config = figure_config(1);
  config.graphs_per_point = 2;
  config.granularities = {0.6, 1.4};
  config.proc_count = 5;
  config.workload.proc_count = 5;
  config.seed = 13;
  config.threads = 1;
  config.workloads = {"paper", "chain:size=10"};
  config.scenarios = {"t0", "frac:f=0.5"};
  return config;
}

/// Records every delivered sample for exact comparison.
class RecordSink final : public SweepSink {
 public:
  void on_sample(const InstanceCoord& coord,
                 const SeriesSample& sample) override {
    ids.push_back(coord.id);
    samples.push_back(sample);
  }

  std::vector<std::uint64_t> ids;
  std::vector<SeriesSample> samples;
};

RecordSink inproc_reference(const SweepPlan& plan) {
  RecordSink sink;
  run_plan(plan, sink);
  return sink;
}

/// Runs a coordinator over `plan` with the given in-process worker threads
/// until every sample is delivered and all workers exited.
CoordinatorStats run_service(const SweepPlan& plan, SweepSink& sink,
                             CoordinatorOptions copts,
                             std::vector<WorkerOptions> workers) {
  Coordinator coordinator(plan, sink, copts);
  std::atomic<std::size_t> running{workers.size()};
  std::vector<std::thread> threads;
  threads.reserve(workers.size());
  for (const WorkerOptions& base : workers) {
    threads.emplace_back([&, base] {
      WorkerOptions w = base;
      w.port = coordinator.port();
      try {
        (void)run_worker(w);
      } catch (...) {
        // A worker death is the coordinator's problem, not the test's.
      }
      running.fetch_sub(1);
    });
  }
  coordinator.run(50);
  while (running.load() != 0) coordinator.poll(20);
  for (std::thread& t : threads) t.join();
  return coordinator.stats();
}

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("ftsched_service_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  /// Writes an executable wrapper script and returns its path.
  [[nodiscard]] std::string write_script(const std::string& name,
                                         const std::string& body) {
    const std::string path = (dir_ / name).string();
    std::ofstream out(path);
    out << "#!/bin/sh\n" << body;
    out.close();
    ::chmod(path.c_str(), 0755);
    return path;
  }

  std::filesystem::path dir_;
};

// ------------------------------------------------------- loopback identity

TEST_F(ServiceTest, LoopbackEquivalentToInprocForAnyWorkerCount) {
  const SweepPlan plan(small_config());
  const RecordSink expect = inproc_reference(plan);
  for (const std::size_t count : {std::size_t{1}, std::size_t{2},
                                  std::size_t{3}}) {
    RecordSink sink;
    std::vector<WorkerOptions> workers(count);
    for (std::size_t i = 0; i < count; ++i) {
      workers[i].name = "w" + std::to_string(i);
    }
    const CoordinatorStats stats = run_service(plan, sink, {}, workers);
    EXPECT_EQ(stats.workers_joined, count);
    EXPECT_EQ(sink.ids, expect.ids) << count << " workers";
    EXPECT_EQ(sink.samples, expect.samples) << count << " workers";
  }
}

TEST_F(ServiceTest, LoopbackCsvIsByteIdenticalToInproc) {
  const SweepPlan plan(small_config());
  OnlineStatsSink inproc(plan);
  run_plan(plan, inproc);
  const std::string want = sweep_to_csv(inproc.take());

  OnlineStatsSink sink(plan);
  (void)run_service(plan, sink, {}, {WorkerOptions{}, WorkerOptions{}});
  EXPECT_EQ(sweep_to_csv(sink.take()), want);
}

TEST_F(ServiceTest, ShardedPlanServesOnlyItsSlice) {
  const SweepPlan plan = SweepPlan(small_config()).shard(1, 2);
  const RecordSink expect = inproc_reference(plan);
  RecordSink sink;
  (void)run_service(plan, sink, {}, {WorkerOptions{}, WorkerOptions{}});
  EXPECT_EQ(sink.ids, expect.ids);
  EXPECT_EQ(sink.samples, expect.samples);
}

TEST_F(ServiceTest, UngroupedWorkersDeliverIdenticalSamples) {
  const SweepPlan plan(small_config());
  const RecordSink expect = inproc_reference(plan);
  CoordinatorOptions copts;
  copts.group = false;
  RecordSink sink;
  (void)run_service(plan, sink, copts, {WorkerOptions{}});
  EXPECT_EQ(sink.ids, expect.ids);
  EXPECT_EQ(sink.samples, expect.samples);
}

// --------------------------------------------------- faults and stealing

/// Drives one raw protocol exchange: polls the coordinator until the next
/// frame for `sock` arrives (both live in this thread).
bool pump_recv(Coordinator& coordinator, Socket& sock, std::string& payload,
               int rounds = 2000) {
  for (int i = 0; i < rounds; ++i) {
    coordinator.poll(0);
    if (sock.recv_message(payload, 5)) return true;
    if (sock.eof()) return false;
  }
  return false;
}

/// Joins as a raw client and acquires one lease, leaving the connection in
/// the given state afterwards.  Returns the socket (still holding the
/// lease).
Socket acquire_lease(Coordinator& coordinator, const SweepPlan& plan,
                     std::uint16_t port) {
  Socket sock = connect_to("127.0.0.1", port);
  sock.send_message(msg_hello("raw"));
  std::string payload;
  EXPECT_TRUE(pump_recv(coordinator, sock, payload));
  EXPECT_EQ(parse_service_message(payload, "raw").type, "plan");
  sock.send_message(msg_ready(plan.fingerprint()));
  sock.send_message(msg_lease_request());
  EXPECT_TRUE(pump_recv(coordinator, sock, payload));
  EXPECT_EQ(parse_service_message(payload, "raw").type, "lease");
  return sock;
}

TEST_F(ServiceTest, DisconnectedWorkersLeaseIsRequeued) {
  const SweepPlan plan(small_config());
  const RecordSink expect = inproc_reference(plan);
  RecordSink sink;
  CoordinatorOptions copts;
  copts.lease = 4;
  Coordinator coordinator(plan, sink, copts);
  {
    Socket sock = acquire_lease(coordinator, plan, coordinator.port());
    // Scope exit closes the socket: 4 leased coordinates die with it.
  }
  std::atomic<bool> done{false};
  std::thread worker([&] {
    WorkerOptions w;
    w.port = coordinator.port();
    (void)run_worker(w);
    done.store(true);
  });
  coordinator.run(50);
  while (!done.load()) coordinator.poll(20);
  worker.join();
  EXPECT_GE(coordinator.stats().leases_requeued, 1u);
  EXPECT_FALSE(coordinator.last_disconnect_cause().empty());
  EXPECT_EQ(sink.ids, expect.ids);
  EXPECT_EQ(sink.samples, expect.samples);
}

TEST_F(ServiceTest, SilentWorkersLeaseExpiresAndIsRequeued) {
  const SweepPlan plan(small_config());
  const RecordSink expect = inproc_reference(plan);
  RecordSink sink;
  CoordinatorOptions copts;
  copts.lease = 4;
  copts.timeout = 0.3;
  Coordinator coordinator(plan, sink, copts);
  // Holds a lease and goes silent — never computes, never heartbeats.
  Socket silent = acquire_lease(coordinator, plan, coordinator.port());
  std::atomic<bool> done{false};
  std::thread worker([&] {
    WorkerOptions w;
    w.heartbeat_ms = 50;
    w.port = coordinator.port();
    (void)run_worker(w);
    done.store(true);
  });
  coordinator.run(50);
  while (!done.load()) coordinator.poll(20);
  worker.join();
  EXPECT_GE(coordinator.stats().leases_expired, 1u);
  EXPECT_GE(coordinator.stats().leases_requeued, 1u);
  EXPECT_EQ(sink.ids, expect.ids);
  EXPECT_EQ(sink.samples, expect.samples);
}

TEST_F(ServiceTest, IdleWorkerStealsFromStraggler) {
  const SweepPlan plan(small_config());
  const RecordSink expect = inproc_reference(plan);
  RecordSink sink;
  CoordinatorOptions copts;
  copts.lease = 8;  // two big leases, so the straggler's can be split
  WorkerOptions slow;
  slow.name = "slow";
  slow.sample_delay_ms = 100;
  WorkerOptions fast;
  fast.name = "fast";
  const CoordinatorStats stats =
      run_service(plan, sink, copts, {slow, fast});
  EXPECT_GE(stats.leases_stolen, 1u);
  EXPECT_EQ(sink.ids, expect.ids);
  EXPECT_EQ(sink.samples, expect.samples);
}

TEST_F(ServiceTest, StragglerDelayBeyondLeaseTimeoutNeverExpires) {
  // Regression: heartbeats used to flow only while a worker was parked
  // between leases, so a straggler whose per-sample delay exceeded the
  // coordinator's timeout always read as dead mid-lease and had its work
  // stolen and recomputed.  The worker now heartbeats through throttled
  // samples (and after each completed evaluation group), so a slow-but-
  // alive worker completes its lease with zero expiries — and the stream
  // stays bit-identical to the in-process run.
  FigureConfig config = small_config();
  config.workloads = {"paper"};
  config.scenarios = {"t0"};
  config.granularities = {1.0};  // 2 instances total
  const SweepPlan plan(config);
  const RecordSink expect = inproc_reference(plan);
  CoordinatorOptions copts;
  copts.timeout = 0.4;
  WorkerOptions slow;
  slow.name = "throttled";
  slow.sample_delay_ms = 1200;  // 3x the lease timeout, per sample
  slow.heartbeat_ms = 50;
  RecordSink sink;
  const CoordinatorStats stats = run_service(plan, sink, copts, {slow});
  EXPECT_EQ(stats.leases_expired, 0u);
  EXPECT_EQ(stats.leases_requeued, 0u);
  EXPECT_EQ(sink.ids, expect.ids);
  EXPECT_EQ(sink.samples, expect.samples);
}

TEST_F(ServiceTest, DriftedFingerprintIsRejected) {
  const SweepPlan plan(small_config());
  RecordSink sink;
  Coordinator coordinator(plan, sink, {});
  Socket sock = connect_to("127.0.0.1", coordinator.port());
  sock.send_message(msg_hello("drifted"));
  std::string payload;
  ASSERT_TRUE(pump_recv(coordinator, sock, payload));
  ASSERT_EQ(parse_service_message(payload, "raw").type, "plan");
  sock.send_message(msg_ready("v1 something-else-entirely"));
  ASSERT_TRUE(pump_recv(coordinator, sock, payload));
  const ServiceMessage reject = parse_service_message(payload, "raw");
  EXPECT_EQ(reject.type, "reject");
  EXPECT_NE(reject.field("cause").find("fingerprint"), std::string::npos);
  EXPECT_EQ(coordinator.stats().workers_rejected, 1u);
  // The rejected worker never leases anything.
  EXPECT_EQ(coordinator.stats().leases_granted, 0u);
}

// ------------------------------------------------------------------ resume

TEST_F(ServiceTest, ResumeFromManifestRunsOnlyMissingShards) {
  const SweepPlan plan(small_config());
  const RecordSink expect = inproc_reference(plan);
  const std::string manifest = (dir_ / "manifest").string();
  CoordinatorOptions copts;
  copts.lease = 4;
  copts.manifest_dir = manifest;

  std::size_t units_written = 0;
  {
    // Partial run: the only worker quits after one lease (4 coordinates),
    // so exactly one manifest unit can be journaled; the coordinator is
    // then destroyed mid-sweep.
    RecordSink partial;
    Coordinator coordinator(plan, partial, copts);
    std::atomic<bool> done{false};
    std::thread worker([&] {
      WorkerOptions w;
      w.port = coordinator.port();
      w.max_leases = 1;
      (void)run_worker(w);
      done.store(true);
    });
    while (!done.load()) coordinator.poll(20);
    worker.join();
    units_written = coordinator.stats().manifest_units_written;
    EXPECT_GE(units_written, 1u);
    EXPECT_FALSE(coordinator.finished());
  }

  // The restarted coordinator resumes the journaled units and leases only
  // the rest; the delivered stream is still the full plan, bit-identical.
  RecordSink sink;
  Coordinator coordinator(plan, sink, copts);
  EXPECT_EQ(coordinator.stats().coords_resumed, units_written * 4);
  std::atomic<bool> done{false};
  std::thread worker([&] {
    WorkerOptions w;
    w.port = coordinator.port();
    (void)run_worker(w);
    done.store(true);
  });
  coordinator.run(50);
  while (!done.load()) coordinator.poll(20);
  worker.join();
  EXPECT_EQ(sink.ids, expect.ids);
  EXPECT_EQ(sink.samples, expect.samples);
  // The resumed coordinates were never re-leased.
  EXPECT_EQ(coordinator.stats().coords_leased,
            plan.size() - coordinator.stats().coords_resumed);
}

TEST_F(ServiceTest, FullyJournaledManifestFinishesWithoutWorkers) {
  const SweepPlan plan(small_config());
  const RecordSink expect = inproc_reference(plan);
  CoordinatorOptions copts;
  copts.manifest_dir = (dir_ / "manifest").string();
  {
    RecordSink first;
    (void)run_service(plan, first, copts, {WorkerOptions{}});
  }
  RecordSink sink;
  Coordinator coordinator(plan, sink, copts);
  EXPECT_TRUE(coordinator.finished());
  EXPECT_EQ(coordinator.stats().coords_resumed, plan.size());
  EXPECT_EQ(sink.ids, expect.ids);
  EXPECT_EQ(sink.samples, expect.samples);
}

TEST_F(ServiceTest, ManifestSubdirIsKeyedByShardAndFingerprint) {
  const SweepPlan plan(small_config());
  const std::string root = (dir_ / "manifest").string();
  const std::string full = manifest_subdir(root, plan);
  const std::string shard = manifest_subdir(root, plan.shard(0, 2));
  EXPECT_NE(full, shard);
  FigureConfig other = small_config();
  other.seed = 14;
  EXPECT_NE(manifest_subdir(root, SweepPlan(other)), full);
}

// -------------------------------------------------------- worker processes

TEST_F(ServiceTest, SocketBackendMatchesInprocWithRealWorkers) {
  const SweepPlan plan(small_config());
  const RecordSink expect = inproc_reference(plan);
  const SweepBackendPtr backend = make_sweep_backend(
      "socket:workers=2",
      {{"bin", cli_path()}, {"dir", dir_.string()}});
  RecordSink sink;
  backend->run(plan, sink);
  EXPECT_EQ(sink.ids, expect.ids);
  EXPECT_EQ(sink.samples, expect.samples);
}

TEST_F(ServiceTest, SigkilledWorkerProcessIsToleratedBitIdentically) {
  const SweepPlan plan(small_config());
  const RecordSink expect = inproc_reference(plan);
  // Exactly one of the two spawned workers (noclobber marker) SIGKILLs
  // itself upon its first lease; the survivor re-runs the lost coords.
  const std::string script = write_script(
      "kill_first.sh",
      "if ( set -C; : > \"" + (dir_ / "marker").string() +
          "\" ) 2>/dev/null; then\n"
          "  exec \"" + cli_path() + "\" \"$@\" --kill-after-leases 1\n"
          "fi\n"
          "exec \"" + cli_path() + "\" \"$@\"\n");
  const SweepBackendPtr backend = make_sweep_backend(
      "socket:workers=2,lease=4",
      {{"bin", script}, {"dir", dir_.string()}});
  RecordSink sink;
  backend->run(plan, sink);
  EXPECT_EQ(sink.ids, expect.ids);
  EXPECT_EQ(sink.samples, expect.samples);
}

TEST_F(ServiceTest, AllWorkersDeadSurfacesTheCause) {
  const std::string script = write_script(
      "always_fail.sh", "echo 'worker exploded' >&2\nexit 3\n");
  const SweepBackendPtr backend = make_sweep_backend(
      "socket:workers=2", {{"bin", script}, {"dir", dir_.string()}});
  const SweepPlan plan(small_config());
  RecordSink sink;
  try {
    backend->run(plan, sink);
    FAIL() << "a dead fleet must not complete the sweep";
  } catch (const SweepBackendError& e) {
    EXPECT_EQ(e.backend(), "socket");
    EXPECT_NE(e.cause().find("all socket workers died"), std::string::npos);
    // Satellite guarantee: the error carries the worker's stderr like the
    // subprocess backend's does.
    EXPECT_NE(e.cause().find("child stderr: worker exploded"),
              std::string::npos)
        << e.cause();
  }
}

}  // namespace
}  // namespace ftsched
