// Tests for schedule serialization (text round trip) and JSON export.
#include <gtest/gtest.h>

#include "ftsched/core/ftsa.hpp"
#include "ftsched/core/mc_ftsa.hpp"
#include "ftsched/core/schedule_io.hpp"
#include "ftsched/platform/failure.hpp"
#include "ftsched/sim/event_sim.hpp"
#include "ftsched/sim/trace.hpp"
#include "ftsched/util/error.hpp"
#include "ftsched/workload/paper_workload.hpp"

namespace ftsched {
namespace {

std::unique_ptr<Workload> small_workload(std::uint64_t seed,
                                         std::size_t procs = 5,
                                         std::size_t tasks = 20) {
  Rng rng(seed);
  PaperWorkloadParams params;
  params.task_min = params.task_max = tasks;
  params.proc_count = procs;
  return make_paper_workload(rng, params);
}

TEST(ScheduleIo, TextRoundTripPreservesEverything) {
  const auto w = small_workload(1);
  const auto original = ftsa_schedule(w->costs(), FtsaOptions{2, 7});
  const std::string text = schedule_to_string(original);
  const auto reloaded = schedule_from_string(text, w->costs());
  EXPECT_EQ(reloaded.algorithm(), "FTSA");
  EXPECT_EQ(reloaded.epsilon(), 2u);
  EXPECT_DOUBLE_EQ(reloaded.lower_bound(), original.lower_bound());
  EXPECT_DOUBLE_EQ(reloaded.upper_bound(), original.upper_bound());
  EXPECT_EQ(reloaded.channel_count(), original.channel_count());
  EXPECT_EQ(reloaded.interproc_message_count(),
            original.interproc_message_count());
  for (TaskId t : w->graph().tasks()) {
    const auto& a = original.replicas(t);
    const auto& b = reloaded.replicas(t);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t k = 0; k < a.size(); ++k) {
      EXPECT_EQ(a[k].proc, b[k].proc);
      EXPECT_DOUBLE_EQ(a[k].start, b[k].start);
      EXPECT_DOUBLE_EQ(a[k].pess_finish, b[k].pess_finish);
    }
  }
}

TEST(ScheduleIo, RoundTripPreservesRepairedTasks) {
  const auto w = small_workload(2);
  const auto original = mc_ftsa_schedule(w->costs(), McFtsaOptions{2, 3});
  const auto reloaded =
      schedule_from_string(schedule_to_string(original), w->costs());
  EXPECT_EQ(reloaded.repaired_tasks().size(),
            original.repaired_tasks().size());
}

TEST(ScheduleIo, ReloadedScheduleSimulatesIdentically) {
  const auto w = small_workload(3);
  const auto original = ftsa_schedule(w->costs(), FtsaOptions{2, 0});
  const auto reloaded =
      schedule_from_string(schedule_to_string(original), w->costs());
  Rng rng(5);
  const FailureScenario scenario = random_crashes(rng, 5, 2);
  const SimulationResult a = simulate(original, scenario);
  const SimulationResult b = simulate(reloaded, scenario);
  EXPECT_EQ(a.success, b.success);
  EXPECT_DOUBLE_EQ(a.latency, b.latency);
  EXPECT_EQ(a.messages_delivered, b.messages_delivered);
}

TEST(ScheduleIo, CommentsAndValidation) {
  const auto w = small_workload(4, /*procs=*/3, /*tasks=*/2);
  const auto s = ftsa_schedule(w->costs(), FtsaOptions{1, 0});
  std::string text = "# saved schedule\n" + schedule_to_string(s);
  EXPECT_NO_THROW((void)schedule_from_string(text, w->costs()));
}

TEST(ScheduleIo, RejectsMalformedInput) {
  const auto w = small_workload(5, /*procs=*/3, /*tasks=*/2);
  EXPECT_THROW((void)schedule_from_string("replica 0 0 0 1 0 1\n", w->costs()),
               InvalidArgument);  // missing header
  EXPECT_THROW(
      (void)schedule_from_string("schedule X 1\nbogus 1\n", w->costs()),
      InvalidArgument);
  EXPECT_THROW(
      (void)schedule_from_string("schedule X 1\nreplica 0 0\n", w->costs()),
      InvalidArgument);  // truncated replica
}

TEST(ScheduleIo, ValidateFlagCatchesCorruptedTimes) {
  const auto w = small_workload(6, /*procs=*/3, /*tasks=*/3);
  const auto s = ftsa_schedule(w->costs(), FtsaOptions{1, 0});
  std::string text = schedule_to_string(s);
  // Corrupt a finish time: shrink one replica's duration.
  const auto pos = text.find("replica");
  ASSERT_NE(pos, std::string::npos);
  // Replace the whole first replica line with an inconsistent one.
  const auto eol = text.find('\n', pos);
  text.replace(pos, eol - pos, "replica 0 0 0 0.001 0 0.001");
  EXPECT_THROW((void)schedule_from_string(text, w->costs()), Error);
  EXPECT_NO_THROW((void)schedule_from_string(text, w->costs(),
                                             /*validate=*/false));
}

TEST(ScheduleIo, JsonContainsScheduleAndExecution) {
  const auto w = small_workload(7);
  const auto s = ftsa_schedule(w->costs(), FtsaOptions{1, 0});
  const std::string plain = schedule_to_json(s);
  EXPECT_NE(plain.find("\"algorithm\": \"FTSA\""), std::string::npos);
  EXPECT_NE(plain.find("\"lower_bound\""), std::string::npos);
  EXPECT_EQ(plain.find("\"execution\""), std::string::npos);

  FailureScenario scenario;
  scenario.add(ProcId{0u}, 0.0);
  const SimulationResult r = simulate(s, scenario);
  const std::string with_exec = schedule_to_json(s, &r);
  EXPECT_NE(with_exec.find("\"execution\""), std::string::npos);
  EXPECT_NE(with_exec.find("\"success\": true"), std::string::npos);
  EXPECT_NE(with_exec.find("\"dead\""), std::string::npos);
  EXPECT_NE(with_exec.find("\"status\""), std::string::npos);
}

TEST(ScheduleIo, JsonBalancedBraces) {
  const auto w = small_workload(8);
  const auto s = ftsa_schedule(w->costs(), FtsaOptions{1, 0});
  const std::string json = schedule_to_json(s);
  long depth = 0;
  for (char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

}  // namespace
}  // namespace ftsched
