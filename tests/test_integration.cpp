// End-to-end integration tests: the full paper pipeline at reduced scale,
// cross-module invariants, and the qualitative claims of §6.
#include <gtest/gtest.h>

#include <sstream>

#include "ftsched/core/bicriteria.hpp"
#include "ftsched/core/ftbar.hpp"
#include "ftsched/core/ftsa.hpp"
#include "ftsched/core/heft.hpp"
#include "ftsched/core/mc_ftsa.hpp"
#include "ftsched/dag/serialize.hpp"
#include "ftsched/experiments/runner.hpp"
#include "ftsched/metrics/metrics.hpp"
#include "ftsched/platform/failure.hpp"
#include "ftsched/sim/validator.hpp"
#include "ftsched/workload/classic.hpp"
#include "ftsched/workload/paper_workload.hpp"

namespace ftsched {
namespace {

TEST(Integration, FullPipelineOnSmallPlatform) {
  // Generate → schedule with all four algorithms → exhaustively validate
  // fault tolerance → compare communication volumes.
  Rng rng(2024);
  PaperWorkloadParams params;
  params.task_min = params.task_max = 25;
  params.proc_count = 5;
  params.granularity = 1.0;
  const auto w = make_paper_workload(rng, params);
  const std::size_t epsilon = 2;

  const auto ftsa = ftsa_schedule(w->costs(), FtsaOptions{epsilon, 1});
  const auto mc = mc_ftsa_schedule(w->costs(), McFtsaOptions{epsilon, 1});
  FtbarOptions fo;
  fo.npf = epsilon;
  const auto ftbar = ftbar_schedule(w->costs(), fo);

  for (const ReplicatedSchedule* s : {&ftsa, &mc, &ftbar}) {
    s->validate();
    const ValidationReport report = validate_fault_tolerance(*s);
    EXPECT_TRUE(report.valid)
        << s->algorithm() << ": " << report.failure_description;
  }
  // §4.2 headline: MC-FTSA uses at most e(ε+1) channels, FTSA up to
  // e(ε+1)²; in a 5-processor platform most channels cross processors.
  EXPECT_LT(mc.interproc_message_count(), ftsa.interproc_message_count());
}

TEST(Integration, SerializationRoundTripPreservesSchedules) {
  Rng rng(7);
  PaperWorkloadParams params;
  params.task_min = params.task_max = 20;
  params.proc_count = 4;
  const auto w = make_paper_workload(rng, params);
  // Re-create the same cost model on a graph reloaded from text.
  const TaskGraph reloaded = graph_from_string(graph_to_string(w->graph()));
  std::vector<std::vector<double>> exec(reloaded.task_count());
  for (TaskId t : reloaded.tasks()) {
    for (ProcId p : w->platform().procs()) {
      exec[t.index()].push_back(w->costs().exec(t, p));
    }
  }
  const CostModel costs2(reloaded, w->platform(), exec);
  const auto a = ftsa_schedule(w->costs(), FtsaOptions{1, 5});
  const auto b = ftsa_schedule(costs2, FtsaOptions{1, 5});
  EXPECT_DOUBLE_EQ(a.lower_bound(), b.lower_bound());
  EXPECT_DOUBLE_EQ(a.upper_bound(), b.upper_bound());
}

TEST(Integration, LatencyGrowsWithGranularityTrend) {
  // The paper's figures all show normalized latency rising with
  // granularity (computation dominates more and more). Check the trend on
  // the sweep endpoints with a small sample.
  FigureConfig config = figure_config(1);
  config.granularities = {0.2, 2.0};
  config.graphs_per_point = 5;
  config.proc_count = 8;
  config.workload.proc_count = 8;
  config.seed = 11;
  const SweepResult sweep = run_sweep(config);
  const auto& ff = sweep.series.at("FaultFree-FTSA");
  EXPECT_GT(ff[1].mean(), ff[0].mean());
}

TEST(Integration, FtsaBeatsFtbarOnAverage) {
  // The paper's central experimental claim (§6): FTSA outperforms FTBAR in
  // terms of achieved lower bound. Checked in aggregate over instances.
  double ftsa_sum = 0.0;
  double ftbar_sum = 0.0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    PaperWorkloadParams params;
    params.task_min = params.task_max = 40;
    params.proc_count = 8;
    const auto w = make_paper_workload(rng, params);
    ftsa_sum += ftsa_schedule(w->costs(), FtsaOptions{1, seed}).lower_bound();
    FtbarOptions fo;
    fo.npf = 1;
    fo.seed = seed;
    ftbar_sum += ftbar_schedule(w->costs(), fo).lower_bound();
  }
  EXPECT_LT(ftsa_sum, ftbar_sum);
}

TEST(Integration, CrashLatencyStaysBelowUpperBoundAcrossWorkloads) {
  // Prop. 4.2 across structurally different graphs and both MC selectors.
  Rng rng(5);
  PaperWorkloadParams params;
  params.proc_count = 5;
  std::vector<TaskGraph> graphs;
  graphs.push_back(make_fft(8));
  graphs.push_back(make_gaussian_elimination(5));
  graphs.push_back(make_wavefront(4, 4));
  graphs.push_back(make_fork_join(10));
  Rng sp_rng(9);
  graphs.push_back(make_series_parallel(sp_rng, 30));
  for (auto& g : graphs) {
    const auto w = make_workload_for_graph(rng, std::move(g), params);
    for (const McSelector sel :
         {McSelector::kGreedy, McSelector::kBinarySearchMatching}) {
      const auto s =
          mc_ftsa_schedule(w->costs(), McFtsaOptions{2, 0, sel});
      Rng crash_rng(17);
      for (int trial = 0; trial < 5; ++trial) {
        const FailureScenario scenario = random_crashes(crash_rng, 5, 2);
        const SimulationResult r = simulate(s, scenario);
        ASSERT_TRUE(r.success) << w->graph().name();
        EXPECT_LE(r.latency, s.upper_bound() * (1 + 1e-9))
            << w->graph().name();
      }
    }
  }
}

TEST(Integration, BicriteriaConsistentWithDirectScheduling) {
  // If max_supported_failures says ε is achievable at latency L, then the
  // direct FTSA run at ε meets L, and the deadline-checked variant at a
  // generous L succeeds too.
  Rng rng(3);
  PaperWorkloadParams params;
  params.task_min = params.task_max = 30;
  params.proc_count = 6;
  const auto w = make_paper_workload(rng, params);
  const auto s2 = ftsa_schedule(w->costs(), FtsaOptions{2, 0});
  const double target = s2.upper_bound() * 1.05;
  const auto result = max_supported_failures(w->costs(), target);
  ASSERT_TRUE(result.has_value());
  EXPECT_GE(result->epsilon, 2u);
  FtsaOptions check;
  check.epsilon = result->epsilon;
  EXPECT_LE(ftsa_schedule(w->costs(), check).upper_bound(),
            target * (1 + 1e-12));
}

TEST(Integration, HeftCompetitiveWithFaultFreeFtsa) {
  // HEFT (insertion-based) should be at least as good as FTSA ε=0 (which
  // never back-fills) on average — an ablation of the ready-time policy.
  double heft_sum = 0.0;
  double ftsa_sum = 0.0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    PaperWorkloadParams params;
    params.task_min = params.task_max = 40;
    params.proc_count = 6;
    const auto w = make_paper_workload(rng, params);
    heft_sum += heft_schedule(w->costs()).lower_bound();
    ftsa_sum += ftsa_schedule(w->costs(), FtsaOptions{0, seed}).lower_bound();
  }
  EXPECT_LE(heft_sum, ftsa_sum * 1.05);
}

TEST(Integration, MessageCountScalesLinearlyForMc) {
  // Check the e(ε+1) vs e(ε+1)² scaling claim numerically for ε = 1..3.
  Rng rng(13);
  PaperWorkloadParams params;
  params.task_min = params.task_max = 40;
  params.proc_count = 10;
  const auto w = make_paper_workload(rng, params);
  const std::size_t e = w->graph().edge_count();
  for (std::size_t epsilon = 1; epsilon <= 3; ++epsilon) {
    McFtsaOptions mo;
    mo.epsilon = epsilon;
    mo.enforce_fault_tolerance = false;  // paper-mode scaling claim
    const auto mc = mc_ftsa_schedule(w->costs(), mo);
    const auto ftsa = ftsa_schedule(w->costs(), FtsaOptions{epsilon, 0});
    EXPECT_EQ(mc.channel_count(), e * (epsilon + 1));
    EXPECT_LE(ftsa.channel_count(), e * (epsilon + 1) * (epsilon + 1));
    EXPECT_GT(ftsa.channel_count(), e * (epsilon + 1));
  }
}

}  // namespace
}  // namespace ftsched
