// Golden-file regression test for the figure sweep pipeline.
//
// The Table-1 golden pins schedule construction; this one pins the other
// half of the experiment harness — the sweep path (paper-workload
// generation per granularity, per-instance RNG derivation, crash victims
// and simulation, series emission, OnlineStats aggregation) — by
// rendering one shrunken Figure-1 sweep cell with every accumulator field
// serialized as exact hex-floats.  Any change to a double anywhere in the
// pipeline fails this test instead of silently shifting figures.
//
// Regenerate after an *intentional* change with:
//   FTSCHED_UPDATE_GOLDEN=1 ./test_golden_sweep
// and commit the diff (review it — that diff IS the behavior change).
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "ftsched/experiments/runner.hpp"
#include "ftsched/util/stats.hpp"
#include "golden_test.hpp"

#ifndef FTSCHED_SOURCE_DIR
#error "FTSCHED_SOURCE_DIR must point at the repository root"
#endif

namespace ftsched {
namespace {

const char* kGoldenPath =
    FTSCHED_SOURCE_DIR "/tests/golden/fig1_sweep_cell.txt";

/// A shrunken Figure-1 cell: the figure's epsilon and series layout, a
/// small platform and instance count so the test stays fast.  Built
/// field-by-field (not via figure_config) so FTSCHED_GRAPHS/FTSCHED_SEED
/// cannot leak into the golden.
FigureConfig golden_config() {
  FigureConfig config;
  config.figure = 1;
  config.epsilon = 1;
  config.proc_count = 8;
  config.graphs_per_point = 3;
  config.seed = 42;
  config.granularities = {0.6, 1.4};
  config.threads = 2;  // determinism contract: thread count never matters
  config.workload.proc_count = 8;
  return config;
}

std::string render_golden(const FigureConfig& config) {
  const SweepResult sweep = run_sweep(config);
  std::ostringstream os;
  os << "# Figure-1 sweep cell (m=" << config.proc_count
     << ", epsilon=" << config.epsilon << ", graphs/point="
     << config.graphs_per_point << ", seed=" << config.seed << ")\n"
     << "# series granularity count mean m2 min max (hex-floats, exact)\n";
  for (const auto& [name, stats] : sweep.series) {
    for (std::size_t gi = 0; gi < sweep.granularities.size(); ++gi) {
      os << name << ' ' << double_to_hex(sweep.granularities[gi]) << ' '
         << stats[gi].count() << ' ' << double_to_hex(stats[gi].mean()) << ' '
         << double_to_hex(stats[gi].m2()) << ' '
         << double_to_hex(stats[gi].min()) << ' '
         << double_to_hex(stats[gi].max()) << '\n';
    }
  }
  return os.str();
}

TEST(GoldenSweep, Figure1CellMatchesCommittedGolden) {
  goldentest::expect_matches_golden(kGoldenPath,
                                    render_golden(golden_config()),
                                    "Figure-1 sweep cell");
}

}  // namespace
}  // namespace ftsched
