// Property tests for OnlineStats aggregation and its lossless hex-float
// serialization — the two primitives the sharded-sweep job protocol is
// built on (experiments/sweep_io.hpp):
//
//   * add(x) == merge(of(x)) bit-exactly, so merging single-sample
//     accumulators in coordinate order reproduces sequential aggregation
//     down to the last ulp, for ANY partition of the samples into shards;
//   * merge() is associative (exactly on count/min/max; to rounding on
//     mean/M2 — floating-point Chan merge is only approximately
//     associative, which is exactly why the merge tool restores the
//     canonical coordinate order instead of merging in file order);
//   * double_to_hex / hex_to_double round-trip every double bit-exactly.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "ftsched/util/error.hpp"
#include "ftsched/util/stats.hpp"
#include "proptest.hpp"

namespace ftsched {
namespace {

std::uint64_t bits(double x) { return std::bit_cast<std::uint64_t>(x); }

/// Exact state equality: the comparison the shard-merge contract is about.
void expect_bit_identical(const OnlineStats& a, const OnlineStats& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(bits(a.mean()), bits(b.mean()));
  EXPECT_EQ(bits(a.m2()), bits(b.m2()));
  EXPECT_EQ(bits(a.min()), bits(b.min()));
  EXPECT_EQ(bits(a.max()), bits(b.max()));
}

/// A value stream with awkward magnitudes mixed in.
double draw_value(Rng& rng) {
  switch (rng.uniform_int(0, 5)) {
    case 0: return rng.uniform(-1e12, 1e12);
    case 1: return rng.uniform(-1e-9, 1e-9);
    case 2: return rng.exponential(0.3);
    case 3: return -rng.exponential(2.0);
    case 4: return static_cast<double>(rng.uniform_int(-5, 5));
    default: return rng.uniform(-5, 5);
  }
}

TEST(StatsProperty, AddIsMergeOfSingleton) {
  proptest::check("add(x) == merge(of(x)), bit-exactly, at every prefix",
                  [](Rng& rng, std::uint64_t) {
                    OnlineStats added;
                    OnlineStats merged;
                    const auto n =
                        static_cast<std::size_t>(rng.uniform_int(1, 60));
                    for (std::size_t i = 0; i < n; ++i) {
                      const double x = draw_value(rng);
                      added.add(x);
                      merged.merge(OnlineStats::of(x));
                      expect_bit_identical(added, merged);
                    }
                  });
}

TEST(StatsProperty, CoordinateOrderMergeMatchesSequentialAnyPartition) {
  // The shard-merge theorem at the stats level: deal a sample stream
  // round-robin onto k "shards" as singleton accumulators, then merge the
  // singletons back in original (coordinate) order — bit-identical to
  // sequential adds no matter how the stream was partitioned.
  proptest::check(
      "ordered singleton merge == sequential add for any round-robin "
      "partition",
      [](Rng& rng, std::uint64_t) {
        const auto n = static_cast<std::size_t>(rng.uniform_int(1, 80));
        const auto shards = static_cast<std::size_t>(rng.uniform_int(1, 7));
        std::vector<double> stream;
        OnlineStats whole;
        for (std::size_t i = 0; i < n; ++i) {
          stream.push_back(draw_value(rng));
          whole.add(stream.back());
        }
        // Shard s holds the singletons of indices i with i % shards == s;
        // the merge walks indices 0..n-1 and pulls each from its shard.
        std::vector<std::vector<OnlineStats>> per_shard(shards);
        for (std::size_t i = 0; i < n; ++i) {
          per_shard[i % shards].push_back(OnlineStats::of(stream[i]));
        }
        OnlineStats merged;
        std::vector<std::size_t> cursor(shards, 0);
        for (std::size_t i = 0; i < n; ++i) {
          merged.merge(per_shard[i % shards][cursor[i % shards]++]);
        }
        expect_bit_identical(whole, merged);
      });
}

TEST(StatsProperty, MergeAssociative) {
  proptest::check(
      "merge is associative: exact on count/min/max, to rounding on "
      "mean/variance",
      [](Rng& rng, std::uint64_t) {
        OnlineStats a, b, c;
        for (OnlineStats* s : {&a, &b, &c}) {
          const auto n = static_cast<std::size_t>(rng.uniform_int(0, 30));
          for (std::size_t i = 0; i < n; ++i) s->add(rng.uniform(-100, 100));
        }
        OnlineStats left = a;   // (a ⊕ b) ⊕ c
        left.merge(b);
        left.merge(c);
        OnlineStats bc = b;     // a ⊕ (b ⊕ c)
        bc.merge(c);
        OnlineStats right = a;
        right.merge(bc);
        EXPECT_EQ(left.count(), right.count());
        EXPECT_EQ(bits(left.min()), bits(right.min()));
        EXPECT_EQ(bits(left.max()), bits(right.max()));
        if (left.count() == 0) return;
        EXPECT_NEAR(left.mean(), right.mean(),
                    1e-12 * (1.0 + std::abs(left.mean())));
        EXPECT_NEAR(left.variance(), right.variance(),
                    1e-9 * (1.0 + left.variance()));
      });
}

TEST(StatsProperty, HexFloatRoundTripsBitExactly) {
  proptest::check("hex_to_double(double_to_hex(x)) == x, bit-exactly",
                  [](Rng& rng, std::uint64_t) {
                    for (int i = 0; i < 8; ++i) {
                      // Uniform over bit patterns covers denormals, huge
                      // and tiny magnitudes, both signs; skip NaNs (no
                      // bit-stable text form, and stats never produce
                      // them from finite samples).
                      const double x = std::bit_cast<double>(rng());
                      if (std::isnan(x)) continue;
                      EXPECT_EQ(bits(hex_to_double(double_to_hex(x))),
                                bits(x))
                          << double_to_hex(x);
                    }
                  });
}

TEST(Stats, HexFloatSpecialValues) {
  for (double x :
       {0.0, -0.0, 1.0, -1.0, 1.0 / 3.0, std::numeric_limits<double>::min(),
        std::numeric_limits<double>::denorm_min(),
        std::numeric_limits<double>::max(),
        std::numeric_limits<double>::infinity(),
        -std::numeric_limits<double>::infinity()}) {
    EXPECT_EQ(bits(hex_to_double(double_to_hex(x))), bits(x))
        << double_to_hex(x);
  }
  EXPECT_THROW((void)hex_to_double(""), InvalidArgument);
  EXPECT_THROW((void)hex_to_double("0x1.8p+1 trailing"), InvalidArgument);
  EXPECT_THROW((void)hex_to_double("not-a-float"), InvalidArgument);
}

TEST(StatsProperty, FromPartsRoundTripsAccumulatorState) {
  proptest::check("from_parts(count, mean, m2, min, max) inverts the "
                  "accessors bit-exactly",
                  [](Rng& rng, std::uint64_t) {
                    OnlineStats s;
                    const auto n =
                        static_cast<std::size_t>(rng.uniform_int(0, 40));
                    for (std::size_t i = 0; i < n; ++i) s.add(draw_value(rng));
                    const OnlineStats back = OnlineStats::from_parts(
                        s.count(), s.mean(), s.m2(), s.min(), s.max());
                    expect_bit_identical(s, back);
                  });
}

TEST(Stats, FromPartsEmptyIgnoresFields) {
  const OnlineStats s = OnlineStats::from_parts(0, 3.0, 4.0, 5.0, 6.0);
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.m2(), 0.0);
}

}  // namespace
}  // namespace ftsched
