// Batch/SoA simulation engine equivalence (PR 6 tentpole): the reusable
// ScheduleSimulator — run(), run_summary(), run_batch() — must be bit-exact
// with a fresh one-shot simulate() for every scenario, in every order, on
// every comm model; and the cross-cell draw dedupe (SimulationCache /
// simulate_drawn_cell) must fan cached Summaries out without changing a
// single double, including graceful-degradation cells whose draws exceed ε.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "ftsched/core/ftsa.hpp"
#include "ftsched/experiments/runner.hpp"
#include "ftsched/experiments/sweep_plan.hpp"
#include "ftsched/platform/failure.hpp"
#include "ftsched/sim/event_sim.hpp"
#include "ftsched/workload/paper_workload.hpp"
#include "proptest.hpp"

namespace ftsched {
namespace {

/// Uniform draw from {0, ..., n-1}.
std::size_t below(Rng& rng, std::size_t n) {
  return static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

std::unique_ptr<Workload> random_workload(Rng& rng, std::size_t procs,
                                          std::size_t tasks) {
  PaperWorkloadParams params;
  params.task_min = params.task_max = tasks;
  params.proc_count = procs;
  return make_paper_workload(rng, params);
}

/// A scenario of `count` random victims at random instants — beyond the
/// tolerated ε half the time, so failure paths are exercised too.
FailureScenario random_scenario(Rng& rng, std::size_t procs, double anchor) {
  const std::size_t count = below(rng, procs);
  const auto victims = rng.sample_without_replacement(procs, count);
  FailureScenario scenario;
  for (const std::size_t v : victims) {
    scenario.add(ProcId{v}, rng.uniform(0.0, 1.5) * anchor);
  }
  return scenario;
}

/// Bit-exact Summary equality: same flag, same latency double (infinities
/// compare equal to themselves, which is what failed runs produce).
void expect_same(const ScheduleSimulator::Summary& got,
                 const SimulationResult& want) {
  EXPECT_EQ(got.success, want.success);
  if (std::isinf(want.latency)) {
    EXPECT_TRUE(std::isinf(got.latency));
  } else {
    EXPECT_EQ(got.latency, want.latency);
  }
}

TEST(BatchSim, RunBatchMatchesFreshSimulatePerScenario) {
  proptest::check(
      "run_batch / run_summary / run == fresh simulate(), bit for bit",
      [](Rng& rng, std::uint64_t) {
        const std::size_t procs = 4 + below(rng, 4);
        const auto w = random_workload(rng, procs, 12 + below(rng, 20));
        const std::size_t eps = 1 + below(rng, 2);
        const auto s = ftsa_schedule(w->costs(), FtsaOptions{eps, 0});

        std::vector<FailureScenario> scenarios;
        for (std::size_t i = 0; i < 8; ++i) {
          scenarios.push_back(random_scenario(rng, procs, s.lower_bound()));
        }

        // Reference: a brand-new engine per scenario (the one-shot path).
        std::vector<SimulationResult> fresh;
        fresh.reserve(scenarios.size());
        for (const FailureScenario& scenario : scenarios) {
          fresh.push_back(simulate(s, scenario));
        }

        // One reused simulator, batch call.
        ScheduleSimulator sim(s);
        std::vector<ScheduleSimulator::Summary> batch(scenarios.size());
        sim.run_batch(scenarios, batch);
        for (std::size_t i = 0; i < scenarios.size(); ++i) {
          expect_same(batch[i], fresh[i]);
        }

        // Same engine again, per-call and in *reverse* order: results must
        // not depend on what ran before (the reset contract).
        for (std::size_t i = scenarios.size(); i-- > 0;) {
          expect_same(sim.run_summary(scenarios[i]), fresh[i]);
          const SimulationResult rerun = sim.run(scenarios[i]);
          EXPECT_EQ(rerun.success, fresh[i].success);
          EXPECT_EQ(rerun.completed_replicas, fresh[i].completed_replicas);
          EXPECT_EQ(rerun.dead_replicas, fresh[i].dead_replicas);
          EXPECT_EQ(rerun.cancelled_replicas, fresh[i].cancelled_replicas);
        }
      },
      {.iterations = 10});
}

TEST(BatchSim, RunBatchMatchesFreshSimulateUnderPortedComm) {
  // The ported comm model carries per-run heap state; its reset() must make
  // a reused simulator indistinguishable from a fresh one.
  proptest::check(
      "run_batch == fresh simulate() under the one-port model",
      [](Rng& rng, std::uint64_t) {
        const std::size_t procs = 4 + below(rng, 3);
        const auto w = random_workload(rng, procs, 12 + below(rng, 12));
        const auto s = ftsa_schedule(w->costs(), FtsaOptions{1, 0});
        SimulationOptions options;
        options.comm.kind = CommModelKind::kOnePort;

        std::vector<FailureScenario> scenarios;
        for (std::size_t i = 0; i < 6; ++i) {
          scenarios.push_back(random_scenario(rng, procs, s.lower_bound()));
        }
        ScheduleSimulator sim(s, options);
        std::vector<ScheduleSimulator::Summary> batch(scenarios.size());
        sim.run_batch(scenarios, batch);
        for (std::size_t i = 0; i < scenarios.size(); ++i) {
          expect_same(batch[i], simulate(s, scenarios[i], options));
        }
      },
      {.iterations = 8});
}

TEST(BatchSim, DrawnCellWithCacheMatchesUncachedCell) {
  // simulate_drawn_cell must be bit-identical with and without a shared
  // SimulationCache, for default and non-default failure models (the latter
  // drawing past ε into the graceful-degradation series).
  proptest::check(
      "simulate_drawn_cell(cache) == simulate_instance_cell, bit for bit",
      [](Rng& rng, std::uint64_t) {
        const std::size_t procs = 5 + below(rng, 3);
        const auto w = random_workload(rng, procs, 14 + below(rng, 12));
        InstanceOptions options;
        options.epsilon = 1 + below(rng, 2);
        options.seed = rng();
        const InstanceSchedules schedules =
            build_instance_schedules(*w, options);

        const std::vector<CrashTimeLaw> laws = {
            CrashTimeLaw::parse("t0"), CrashTimeLaw::parse("uniform:hi=1")};
        // bernoulli:p=0.7 draws more than ε victims often, exercising the
        // >ε degradation path (success indicator, possibly failed runs).
        const std::vector<FailureModel> models = {
            FailureModel::parse("eps"), FailureModel::parse("bernoulli:p=0.7"),
            FailureModel::parse("fixed:k=" + std::to_string(options.epsilon))};

        SimulationCache cache;
        for (const CrashTimeLaw& law : laws) {
          for (const FailureModel& model : models) {
            Rng cell_rng = rng;  // each cell re-reads the shared stream
            Rng check_rng = rng;
            const CellDraw draw =
                draw_instance_cell(schedules, cell_rng, law, model);
            const SeriesSample with_cache =
                simulate_drawn_cell(schedules, draw, &cache);
            const SeriesSample reference =
                simulate_instance_cell(schedules, check_rng, law, model);
            EXPECT_EQ(with_cache, reference);
          }
        }
        // eps and fixed:k=ε consume identical draws per law, and the shared
        // k = 0 scenario repeats across all six cells: the cache must have
        // fanned out at least those.
        EXPECT_GT(cache.stats().hits, 0u);
        EXPECT_GT(cache.stats().simulations, 0u);

        // Replaying any cell against the warm cache is pure fan-out: the
        // hit counter grows, the simulation counter must not.
        Rng replay_rng = rng;
        const CellDraw replay = draw_instance_cell(schedules, replay_rng,
                                                   laws[0], models[0]);
        const std::uint64_t sims_before = cache.stats().simulations;
        const std::uint64_t hits_before = cache.stats().hits;
        const SeriesSample again = simulate_drawn_cell(schedules, replay, &cache);
        Rng ref_rng = rng;
        EXPECT_EQ(again, simulate_instance_cell(schedules, ref_rng, laws[0],
                                                models[0]));
        EXPECT_EQ(cache.stats().simulations, sims_before);
        EXPECT_GT(cache.stats().hits, hits_before);
      },
      {.iterations = 6});
}

TEST(BatchSim, EvaluateGroupStatsCountDedupedSimulations) {
  // A grid whose failure cells draw identical (victims, instants) tuples —
  // eps vs fixed:k=ε — plus the always-shared k = 0 scenario: the grouped
  // path must report cache hits while staying bit-identical to the
  // per-coordinate reference.
  FigureConfig config = figure_config(1);
  config.granularities = {0.5, 1.0};
  config.graphs_per_point = 2;
  config.proc_count = 6;
  config.workload.proc_count = 6;
  config.seed = 23;
  config.threads = 1;
  config.scenarios = {"t0", "uniform:hi=1"};
  config.failure_models = {"eps", "fixed:k=" + std::to_string(config.epsilon),
                           "bernoulli:p=0.5"};
  const SweepPlan plan(config);

  SimulationCache::Stats stats;
  for (const auto& group : plan.group_selection()) {
    const std::vector<SeriesSample> grouped =
        plan.evaluate_group(group, &stats);
    ASSERT_EQ(grouped.size(), group.size());
    for (std::size_t i = 0; i < group.size(); ++i) {
      EXPECT_EQ(grouped[i], plan.evaluate(plan.coord(group[i])))
          << "member " << i << " diverged from the per-coordinate path";
    }
  }
  EXPECT_GT(stats.simulations, 0u);
  EXPECT_GT(stats.hits, 0u);

  // The same counters surface through run_plan's options.
  RunPlanStats run_stats;
  OnlineStatsSink grouped_sink(plan);
  RunPlanOptions run_options;
  run_options.stats = &run_stats;
  run_plan(plan, grouped_sink, run_options);
  SweepResult grouped = grouped_sink.take();

  OnlineStatsSink ungrouped_sink(plan);
  RunPlanOptions ungrouped_options;
  ungrouped_options.group = false;
  run_plan(plan, ungrouped_sink, ungrouped_options);
  SweepResult ungrouped = ungrouped_sink.take();

  EXPECT_TRUE(sweep_results_identical(grouped, ungrouped));
  EXPECT_EQ(run_stats.simulations_run, stats.simulations);
  EXPECT_EQ(run_stats.dedupe_hits, stats.hits);
}

}  // namespace
}  // namespace ftsched
