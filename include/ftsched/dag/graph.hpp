// Weighted directed acyclic task graph G = (V, E).
//
// Nodes are tasks; an edge (ti, tj) carries the data volume V(ti, tj) that
// ti must send to tj (paper §2).  The graph is append-only: tasks and edges
// are added during construction and the structure is then treated as
// immutable by the schedulers.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "ftsched/util/ids.hpp"

namespace ftsched {

/// An edge of the task graph together with its data volume.
struct Edge {
  TaskId src;
  TaskId dst;
  double volume = 0.0;  ///< V(src, dst): data units sent from src to dst.
};

class TaskGraph {
 public:
  TaskGraph() = default;
  explicit TaskGraph(std::string name) : name_(std::move(name)) {}

  /// Adds a task and returns its id. `label` is for diagnostics/DOT only.
  TaskId add_task(std::string label = {});

  /// Adds a precedence edge src -> dst carrying `volume` data units.
  /// Throws InvalidArgument on self-loops, duplicate edges, or unknown ids.
  void add_edge(TaskId src, TaskId dst, double volume);

  [[nodiscard]] std::size_t task_count() const noexcept {
    return labels_.size();
  }
  [[nodiscard]] std::size_t edge_count() const noexcept {
    return edges_.size();
  }
  [[nodiscard]] bool empty() const noexcept { return labels_.empty(); }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  [[nodiscard]] const std::string& label(TaskId t) const;

  /// Γ⁻(t): immediate predecessors (as indices into edges()).
  [[nodiscard]] std::span<const std::size_t> in_edges(TaskId t) const;
  /// Γ⁺(t): immediate successors (as indices into edges()).
  [[nodiscard]] std::span<const std::size_t> out_edges(TaskId t) const;

  [[nodiscard]] const Edge& edge(std::size_t e) const { return edges_[e]; }
  [[nodiscard]] const std::vector<Edge>& edges() const noexcept {
    return edges_;
  }

  [[nodiscard]] std::size_t in_degree(TaskId t) const {
    return in_edges(t).size();
  }
  [[nodiscard]] std::size_t out_degree(TaskId t) const {
    return out_edges(t).size();
  }

  /// Data volume on edge (src, dst); throws if the edge does not exist.
  [[nodiscard]] double volume(TaskId src, TaskId dst) const;
  /// True iff the edge (src, dst) exists.
  [[nodiscard]] bool has_edge(TaskId src, TaskId dst) const noexcept;

  /// Tasks with no predecessors / no successors.
  [[nodiscard]] std::vector<TaskId> entry_tasks() const;
  [[nodiscard]] std::vector<TaskId> exit_tasks() const;

  /// All task ids, 0..v-1.
  [[nodiscard]] std::vector<TaskId> tasks() const;

  /// Kahn topological order. Throws InvalidArgument if the graph has a
  /// cycle (i.e. it is not actually a DAG).
  [[nodiscard]] std::vector<TaskId> topological_order() const;

  /// True iff the edge set is acyclic.
  [[nodiscard]] bool is_acyclic() const;

  /// Sum of all edge volumes.
  [[nodiscard]] double total_volume() const noexcept;

 private:
  void check_task(TaskId t, const char* what) const;

  std::string name_;
  std::vector<std::string> labels_;
  std::vector<Edge> edges_;
  std::vector<std::vector<std::size_t>> in_;   // per task: edge indices
  std::vector<std::vector<std::size_t>> out_;  // per task: edge indices
};

}  // namespace ftsched
