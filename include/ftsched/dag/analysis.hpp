// Structural analyses of task graphs: levels, width, critical path.
//
// The paper uses the graph width ω (maximum number of pairwise-independent
// tasks) to bound the size of the priority list α, and the granularity
// g(G,P) to parameterize the experiments.
#pragma once

#include <cstddef>
#include <vector>

#include "ftsched/dag/graph.hpp"

namespace ftsched {

/// Per-task depth: length (in hops) of the longest path from an entry task.
/// Entry tasks have depth 0.
[[nodiscard]] std::vector<std::size_t> depths(const TaskGraph& g);

/// Tasks grouped by depth; layer 0 holds the entry tasks.
[[nodiscard]] std::vector<std::vector<TaskId>> layers(const TaskGraph& g);

/// Lower bound on the width ω: the largest number of tasks sharing a depth
/// layer. Cheap (O(v+e)); exact on layered graphs where all edges go between
/// consecutive layers (our generators produce mostly such graphs).
[[nodiscard]] std::size_t layer_width(const TaskGraph& g);

/// Exact width ω: size of a maximum antichain, computed via Dilworth's
/// theorem as v − (maximum matching in the transitive-closure bipartite
/// graph). O(v³) worst case — intended for graphs up to a few thousand
/// tasks or for validating layer_width in tests.
[[nodiscard]] std::size_t exact_width(const TaskGraph& g);

/// Length of the longest path where each task contributes `node_cost[t]`
/// and each edge contributes `edge_cost[e]` (both indexed as in the graph).
/// This is the static critical-path length used for bℓ-style computations.
[[nodiscard]] double longest_path(const TaskGraph& g,
                                  const std::vector<double>& node_cost,
                                  const std::vector<double>& edge_cost);

/// Number of tasks on the longest (hop-count) path, i.e. depth+1.
[[nodiscard]] std::size_t critical_path_hops(const TaskGraph& g);

/// Reachability: closure[i*v + j] == true iff j is reachable from i by a
/// non-empty path. O(v·e) bitset-free implementation for test-scale graphs.
[[nodiscard]] std::vector<char> transitive_closure(const TaskGraph& g);

}  // namespace ftsched
