// Graphviz DOT export for task graphs (debugging / documentation aid).
#pragma once

#include <string>

#include "ftsched/dag/graph.hpp"

namespace ftsched {

struct DotOptions {
  bool show_volumes = true;   ///< annotate edges with V(ti,tj)
  bool left_to_right = true;  ///< rankdir=LR instead of top-down
};

/// Renders the graph in Graphviz DOT syntax.
[[nodiscard]] std::string to_dot(const TaskGraph& g, const DotOptions& options = {});

}  // namespace ftsched
