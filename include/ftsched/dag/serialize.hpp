// Plain-text serialization of task graphs.
//
// Format (line oriented, '#' comments allowed):
//   taskgraph <name>
//   task <label>                # tasks are numbered in order of appearance
//   edge <src-index> <dst-index> <volume>
#pragma once

#include <iosfwd>
#include <string>

#include "ftsched/dag/graph.hpp"

namespace ftsched {

/// Writes `g` in the text format above.
void write_graph(std::ostream& os, const TaskGraph& g);
[[nodiscard]] std::string graph_to_string(const TaskGraph& g);

/// Parses a graph; throws InvalidArgument on malformed input.
[[nodiscard]] TaskGraph read_graph(std::istream& is);
[[nodiscard]] TaskGraph graph_from_string(const std::string& text);

}  // namespace ftsched
