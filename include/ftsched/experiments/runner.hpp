// Per-instance evaluation and granularity-sweep aggregation.
//
// For one workload instance the runner computes every series the paper's
// figures plot — schedule bounds, fault-free latencies, simulated crash
// latencies and overheads — as a name → value map; the sweep averages the
// maps over `graphs_per_point` random instances per granularity.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "ftsched/core/mc_ftsa.hpp"
#include "ftsched/experiments/config.hpp"
#include "ftsched/sim/event_sim.hpp"
#include "ftsched/util/rng.hpp"
#include "ftsched/util/stats.hpp"

namespace ftsched {

/// Series name → value (normalized latency or overhead %), one instance.
using SeriesSample = std::map<std::string, double>;

struct InstanceOptions {
  std::size_t epsilon = 1;
  /// FTSA crash counts to simulate besides 0 and epsilon.
  std::vector<std::size_t> extra_crash_counts;
  McSelector mc_selector = McSelector::kGreedy;
  SimulationOptions sim;
  std::uint64_t seed = 0;  ///< scheduler tie-break seed
};

/// Evaluates one instance.  Crash victims are drawn from `rng` once and
/// shared across algorithms (and truncated for smaller crash counts), so
/// every curve faces the same failures.
///
/// Emitted series (see DESIGN.md §4):
///   FTSA-LowerBound, FTSA-UpperBound, MC-FTSA-LowerBound,
///   MC-FTSA-UpperBound, FTBAR-LowerBound, FTBAR-UpperBound,
///   FaultFree-FTSA, FaultFree-FTBAR,
///   FTSA-<k>Crash (k in {0, extras, ε}), MC-FTSA-<ε>Crash,
///   FTBAR-<ε>Crash, and OH-<series> overhead twins of the crash/bound
///   series (relative to FaultFree-FTSA, in percent).
[[nodiscard]] SeriesSample evaluate_instance(const Workload& workload,
                                             Rng& rng,
                                             const InstanceOptions& options);

/// Aggregated sweep: per granularity, per series, an OnlineStats over the
/// instances.
struct SweepResult {
  std::vector<double> granularities;
  /// result[series][granularity index]
  std::map<std::string, std::vector<OnlineStats>> series;
};

/// Runs the full granularity sweep described by `config`.
[[nodiscard]] SweepResult run_sweep(const FigureConfig& config);

}  // namespace ftsched
