// Per-instance evaluation and granularity-sweep aggregation.
//
// For one workload instance the runner computes every series the paper's
// figures plot — schedule bounds, fault-free latencies, simulated crash
// latencies and overheads — as a name → value map; the sweep averages the
// maps over `graphs_per_point` random instances per granularity.
//
// Algorithms are resolved through the SchedulerRegistry: each evaluated
// algorithm is a registry spec ("ftsa", "mc-ftsa:selector=matching", ...)
// plus the series it emits, so registering a new scheduler makes it
// sweepable without touching the runner.  The sweep runs on a
// ParallelExecutor with one RNG stream per (granularity, instance) pair,
// giving bit-identical results for every thread count.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "ftsched/core/mc_ftsa.hpp"
#include "ftsched/core/scheduler.hpp"
#include "ftsched/experiments/config.hpp"
#include "ftsched/platform/failure.hpp"
#include "ftsched/sim/event_sim.hpp"
#include "ftsched/util/rng.hpp"
#include "ftsched/util/stats.hpp"
#include "ftsched/workload/workload_registry.hpp"

namespace ftsched {

/// Series name → value (normalized latency or overhead %), one instance.
using SeriesSample = std::map<std::string, double>;

/// One algorithm evaluated by evaluate_instance, with the series it emits.
///
/// `spec` is a SchedulerRegistry spec; the runner injects the instance's
/// epsilon (as `eps`) and tie-break seed (as `seed`) unless the spec pins
/// them explicitly and the algorithm supports the key.
struct InstanceAlgo {
  /// Series name prefix, e.g. "FTSA" → FTSA-LowerBound, FTSA-<k>Crash, ...
  std::string key;
  /// Registry spec, e.g. "ftsa" or "mc-ftsa:selector=matching".
  std::string spec;
  /// Crash counts simulated (deduplicated and sorted before use).
  std::vector<std::size_t> crash_counts;
  /// Emit the OH-<key>-LowerBound overhead twin.
  bool overhead_of_lower_bound = false;
  /// Non-empty: emit this series with the fraction of tasks repaired by
  /// MC-FTSA's end-to-end enforcement.
  std::string repair_series;
};

struct InstanceOptions {
  std::size_t epsilon = 1;
  /// FTSA crash counts to simulate besides 0 and epsilon.
  std::vector<std::size_t> extra_crash_counts;
  McSelector mc_selector = McSelector::kGreedy;
  SimulationOptions sim;
  std::uint64_t seed = 0;  ///< scheduler tie-break seed
  /// Crash-instant law (scenario dimension).  Unit times are drawn once per
  /// instance right after the victims and shared across algorithms, each
  /// anchored to that algorithm's failure-free lower bound.  The default
  /// t=0 law draws nothing, preserving legacy RNG streams bit-exactly.
  CrashTimeLaw crash_law;
  /// Failure-model law (count + victim dimension).  The default (ε uniform
  /// victims) consumes exactly the legacy draws and emits exactly the
  /// legacy series.  A non-default model draws the instance's victim set —
  /// possibly more than ε victims — and adds, per algorithm, the simulated
  /// "<A>-DrawnCrash" latency plus an "<A>-Success" indicator whose cell
  /// mean is the graceful-degradation success fraction (the simulator is
  /// *not* asserted to succeed past ε), and a per-instance "DrawnCrashes"
  /// count series.  Legacy fixed-count series are kept for counts the draw
  /// covers (k <= both ε and the drawn count), paired on victim prefixes.
  FailureModel failure_model;
  /// Algorithms to evaluate; empty = the paper's trio (FTSA, MC-FTSA,
  /// FTBAR) with the series layout described below.
  std::vector<InstanceAlgo> algos;
};

/// The default algorithm list evaluate_instance uses when `options.algos`
/// is empty (exposed so callers can extend rather than replace it).
[[nodiscard]] std::vector<InstanceAlgo> default_instance_algos(
    const InstanceOptions& options);

/// The schedule phase of one instance: the fault-free references, every
/// algorithm's schedule and all schedule-derived series, bundled for reuse.
///
/// A ReplicatedSchedule depends only on (costs, epsilon, seed) — never on
/// the crash-time law or failure model — so one InstanceSchedules can be
/// simulated under many (scenario, failure) cells.  This is the
/// schedule-once/simulate-many seam the grouped sweep engine
/// (experiments/sweep_plan.hpp) exploits: scheduling dominates the
/// per-instance cost (FTBAR is cubic), so reusing it across S×F cells
/// removes the hot path's redundant work.  `workload` must outlive the
/// bundle (the schedules point into its cost model).
struct InstanceSchedules {
  struct Algo {
    InstanceAlgo algo;
    std::unique_ptr<ReplicatedSchedule> schedule;
    /// Build-once/simulate-many engine over *schedule: its static structure
    /// is reused by every crash simulation of every cell.  Reset per run —
    /// one InstanceSchedules must not be simulated from two threads
    /// concurrently.
    std::unique_ptr<ScheduleSimulator> simulator;
    /// algo.crash_counts, deduplicated and sorted.
    std::vector<std::size_t> crash_counts;
    /// Series names for crash_counts[i]: {"<A>-<k>Crash", "OH-<A>-<k>Crash"}.
    /// Built once with the schedules so the simulate phase never assembles
    /// strings per cell.
    std::vector<std::pair<std::string, std::string>> crash_series_names;
    /// Graceful-degradation names: "<A>-Success", "<A>-DrawnCrash",
    /// "OH-<A>-DrawnCrash" (used only under non-default failure models).
    std::string success_series;
    std::string drawn_series;
    std::string oh_drawn_series;
    /// Online-rescheduling name "<A>-Moves" (policy-driven cells only):
    /// replica moves the policy applied in the run.
    std::string moves_series;
  };

  const Workload* workload = nullptr;
  std::size_t epsilon = 1;
  double ftsa_star = 0.0;  ///< FTSA* reference anchoring overhead series
  /// Schedule-derived series, identical for every cell: FaultFree-*,
  /// <A>-LowerBound/-UpperBound, OH-<A>-LowerBound, Msg-<A>, repair rate.
  SeriesSample schedule_series;
  std::vector<Algo> algos;
};

/// Runs the schedule phase: fault-free references plus one schedule per
/// algorithm (options.crash_law / options.failure_model are not consulted —
/// the result is shared by every cell).  Draws nothing from any RNG: all
/// scheduler randomness is keyed off options.seed.
[[nodiscard]] InstanceSchedules build_instance_schedules(
    const Workload& workload, const InstanceOptions& options);

/// The random half of one (scenario, failure) cell: the drawn victim set
/// and per-victim unit crash instants, separated from the deterministic
/// simulation so identical draws can be recognised across cells.
struct CellDraw {
  std::vector<std::size_t> victims;   ///< distinct processor indices
  std::vector<double> unit_times;     ///< unit crash instants, one per victim
  bool default_model = true;          ///< legacy ε-uniform model?
  /// Unit repair delays, one per victim — non-empty only under a failure
  /// model with a repair law (FailureModel::has_repair()).  victims[i]
  /// restarts at (unit_times[i] + unit_repair_delays[i]) × anchor; the
  /// static simulate path ignores them (crashed processors never return),
  /// which is exactly the static-vs-reactive comparison the policy sweep
  /// axis pairs.
  std::vector<double> unit_repair_delays;
};

/// Draws one cell's randomness from `rng` — victims first, then unit
/// times — consuming exactly the stream simulate_instance_cell consumes.
/// Models with new-in-PR-9 laws draw *after* the legacy stream: a burst law
/// re-anchors the unit times on a common onset plus per-victim offsets, and
/// a repair law appends the unit repair delays — so every pre-existing
/// model's stream stays bit-identical.
[[nodiscard]] CellDraw draw_instance_cell(const InstanceSchedules& schedules,
                                          Rng& rng,
                                          const CrashTimeLaw& crash_law,
                                          const FailureModel& failure_model);

/// Memo of crash-simulation results shared by the cells of one group.
///
/// A simulation is keyed by everything that determines its outcome on a
/// fixed InstanceSchedules: the algorithm index and the *content* of the
/// (victims, unit-times) prefix actually simulated — bit patterns, not
/// model labels — so any two cells whose draws coincide (the shared k = 0
/// scenario, fixed:k=ε vs eps, coinciding Bernoulli draws, ...) run the
/// event simulation once and fan the Summary out.  Single-threaded: one
/// cache serves one group on one worker, mirroring the InstanceSchedules
/// threading contract.
class SimulationCache {
 public:
  struct Stats {
    std::uint64_t simulations = 0;  ///< event simulations actually run
    std::uint64_t hits = 0;         ///< simulations answered from the memo
  };

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  friend SeriesSample simulate_drawn_cell(const InstanceSchedules& schedules,
                                          const CellDraw& draw,
                                          SimulationCache* cache);

  struct Key {
    std::size_t algo = 0;
    std::vector<std::size_t> victims;
    std::vector<std::uint64_t> times;  ///< unit-time bit patterns
    [[nodiscard]] friend bool operator<(const Key& a, const Key& b) {
      if (a.algo != b.algo) return a.algo < b.algo;
      if (a.victims != b.victims) return a.victims < b.victims;
      return a.times < b.times;
    }
  };

  std::map<Key, ScheduleSimulator::Summary> memo_;
  Stats stats_;
};

/// Runs the simulate phase of one cell on a fixed draw.  Misses are batched
/// through ScheduleSimulator::run_batch (one batch per algorithm); with a
/// cache, repeated draws are served from the memo.  The result is
/// bit-identical with and without a cache.
[[nodiscard]] SeriesSample simulate_drawn_cell(const InstanceSchedules& schedules,
                                               const CellDraw& draw,
                                               SimulationCache* cache);

/// Runs the *online* simulate phase of one cell on a fixed draw: per
/// algorithm, builds the failure timeline (crash instants anchored exactly
/// like the static path; repairs from draw.unit_repair_delays, or never)
/// and executes ScheduleSimulator::run_online with `policy` reacting to
/// every crash/repair event.  Emits "DrawnCrashes" plus, per algorithm,
/// "<A>-Success", "<A>-DrawnCrash"/"OH-<A>-DrawnCrash" on success, and
/// "<A>-Moves" — the same graceful-degradation layout as a non-default
/// static model (the policy part of the series *label* is what tells the
/// cells apart), never the legacy fixed-count series.  The policy is
/// re-prepared per algorithm; one call owns it for the duration.
[[nodiscard]] SeriesSample simulate_online_cell(
    const InstanceSchedules& schedules, const CellDraw& draw,
    ReschedulePolicy& policy);

/// Runs the simulate phase of one (scenario, failure) cell on prebuilt
/// schedules: draws the victim set and crash instants from `rng` and emits
/// the cell-dependent series (crash latencies, overheads, graceful
/// degradation) merged with the shared schedule-derived series.
/// evaluate_instance(w, rng, o) ==
/// simulate_instance_cell(build_instance_schedules(w, o), rng, o.crash_law,
/// o.failure_model), double for double.  Equivalent to draw_instance_cell
/// followed by simulate_drawn_cell without a cache.
[[nodiscard]] SeriesSample simulate_instance_cell(
    const InstanceSchedules& schedules, Rng& rng, const CrashTimeLaw& crash_law,
    const FailureModel& failure_model);

/// Evaluates one instance.  Crash victims are drawn from `rng` once and
/// shared across algorithms (and truncated for smaller crash counts), so
/// every curve faces the same failures.
///
/// Emitted series (see DESIGN.md §4): per algorithm <A>,
///   <A>-LowerBound, <A>-UpperBound, <A>-<k>Crash (k in crash_counts),
///   Msg-<A>, and OH- overhead twins (relative to FaultFree-FTSA, in
///   percent) of the crash series and (per flag) the lower bound; plus the
///   FaultFree-FTSA and FaultFree-FTBAR reference series.  The default
///   trio reproduces the paper's exact series set.
[[nodiscard]] SeriesSample evaluate_instance(const Workload& workload,
                                             Rng& rng,
                                             const InstanceOptions& options);

/// Aggregated sweep: per granularity, per series, an OnlineStats over the
/// instances.
///
/// With more than one (workload, scenario) cell, every series name carries
/// a "[workload|scenario]" suffix; `workloads`/`scenarios` record the cell
/// labels in sweep order.
struct SweepResult {
  std::vector<double> granularities;
  /// Workload-family labels swept (always at least {"paper"}).
  std::vector<std::string> workloads;
  /// Crash-scenario labels swept (always at least {"t0"}).
  std::vector<std::string> scenarios;
  /// Failure-model labels swept (always at least {"eps"}).
  std::vector<std::string> failures;
  /// Rescheduling-policy labels swept (always at least {"none"}).
  std::vector<std::string> policies;
  /// result[series][granularity index]
  std::map<std::string, std::vector<OnlineStats>> series;
};

/// The one renderer of the cell-decoration rule: undecorated for a
/// single-cell sweep, "series[workload|scenario]" otherwise, with a third
/// "|failure" part only when the failure dimension itself is swept
/// (multi_failure) and a fourth "|policy" part only when the policy
/// dimension is swept (multi_policy) — so grids without --failures /
/// --policy keep their exact legacy names.  Shared by sweep_series_name
/// and SweepPlan::series_label, so aggregated results and shard records
/// can never disagree on series names.
[[nodiscard]] std::string decorate_series_name(const std::string& series,
                                               const std::string& workload,
                                               const std::string& scenario,
                                               bool multi_cell,
                                               const std::string& failure = "",
                                               bool multi_failure = false,
                                               const std::string& policy = "",
                                               bool multi_policy = false);

/// The name a sweep series gets inside cell (workload, scenario, failure,
/// policy) of `sweep` (see decorate_series_name).  The shorter forms are
/// for sweeps whose policy (resp. failure) dimension is unswept — the
/// missing label defaults to the sweep's single cell label.
[[nodiscard]] std::string sweep_series_name(const SweepResult& sweep,
                                            const std::string& series,
                                            const std::string& workload,
                                            const std::string& scenario);
[[nodiscard]] std::string sweep_series_name(const SweepResult& sweep,
                                            const std::string& series,
                                            const std::string& workload,
                                            const std::string& scenario,
                                            const std::string& failure);
[[nodiscard]] std::string sweep_series_name(const SweepResult& sweep,
                                            const std::string& series,
                                            const std::string& workload,
                                            const std::string& scenario,
                                            const std::string& failure,
                                            const std::string& policy);

/// True iff the two results are bit-identical (same series, same per-point
/// statistics down to the last double) — the determinism contract of the
/// parallel sweep.
[[nodiscard]] bool sweep_results_identical(const SweepResult& a,
                                           const SweepResult& b);

/// Runs the full sweep described by `config` on `config.threads` workers
/// (0 = hardware_concurrency), ranging over the full cross product
/// (workload family × crash scenario × failure model × granularity ×
/// graphs_per_point).
///
/// Thin wrapper over the plan/execute/merge pipeline
/// (experiments/sweep_plan.hpp): `SweepPlan` enumerates the grid,
/// `run_plan` evaluates it in parallel (one Rng::derive stream per
/// instance) and streams samples in coordinate order into an
/// OnlineStatsSink.  The result is bit-identical for every thread count,
/// and to any sharded run of the same plan combined with `merge_shards`
/// (experiments/sweep_io.hpp).
[[nodiscard]] SweepResult run_sweep(const FigureConfig& config);

}  // namespace ftsched
