// Pluggable sweep execution backends.
//
// `run_plan` is the in-process engine; a `SweepBackend` decides *where*
// the plan's shards execute while keeping the exact same contract: samples
// are delivered to the SweepSink serially in increasing-id order, and the
// delivered doubles are bit-identical whatever backend ran them.  Backends
// are selected by spec string through the same SpecRegistry seam as
// schedulers, workload families and failure models:
//
//   inproc[:threads=N]                  the current ParallelExecutor path
//   subprocess[:workers=K,retries=R]    fork/exec `ftsched_cli sweep
//                                       --shard j/K` children speaking the
//                                       JSONL shard protocol
//   socket                              reserved for the sweep-coordinator
//                                       service (registered, unimplemented)
//
// The subprocess backend dogfoods the repo's own robustness story: a dead
// child (nonzero exit, signal), a truncated or corrupt shard file, and a
// grid mismatch are all detected per shard; failed shards are retried up
// to R times and an exhausted shard surfaces a SweepBackendError naming
// the shard and the cause.  Because every child speaks the bit-exact shard
// protocol and delivery re-imposes id order, a subprocess run is
// byte-identical to the in-process run by construction — the CI
// byte-compare extends the threads=N≡1 and grouped≡ungrouped guarantees
// across the process boundary.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "ftsched/experiments/sweep_plan.hpp"
#include "ftsched/util/error.hpp"
#include "ftsched/util/spec.hpp"

namespace ftsched {

class CliParser;

/// Structured failure of a backend run: which shard died and why.  The
/// what() string carries both; the accessors keep them separable for
/// callers that want to reschedule rather than print.
class SweepBackendError : public Error {
 public:
  SweepBackendError(const std::string& backend, const std::string& shard,
                    const std::string& cause)
      : Error("sweep backend '" + backend + "': shard " + shard + ": " +
              cause),
        backend_(backend),
        shard_(shard),
        cause_(cause) {}

  [[nodiscard]] const std::string& backend() const noexcept {
    return backend_;
  }
  /// Shard chain label of the failed shard, e.g. "1/3" or "0/3,1/2".
  [[nodiscard]] const std::string& shard() const noexcept { return shard_; }
  [[nodiscard]] const std::string& cause() const noexcept { return cause_; }

 private:
  std::string backend_;
  std::string shard_;
  std::string cause_;
};

/// Where a sweep plan executes.  Implementations must deliver samples to
/// the sink exactly like run_plan does — serially, in increasing-id order,
/// bit-identical doubles — so every sink (OnlineStatsSink, ShardWriterSink)
/// works under every backend unchanged.
class SweepBackend {
 public:
  virtual ~SweepBackend() = default;

  /// One-line human description ("in-process (threads=4)", ...).
  [[nodiscard]] virtual std::string describe() const = 0;

  /// Executes the plan's selected instances and streams the samples into
  /// `sink`.  Throws SweepBackendError when a shard cannot be completed.
  virtual void run(const SweepPlan& plan, SweepSink& sink,
                   const RunPlanOptions& options = {}) const = 0;
};

using SweepBackendPtr = std::unique_ptr<SweepBackend>;

/// Backend registry ("name:key=value" specs, like every other registry).
class SweepBackendRegistry : public SpecRegistry<SweepBackendPtr> {
 public:
  SweepBackendRegistry() : SpecRegistry<SweepBackendPtr>("sweep backend") {}

  /// The global registry with the built-in backends (inproc, subprocess,
  /// and the reserved socket entry) pre-registered.
  [[nodiscard]] static const SweepBackendRegistry& global();
};

/// Resolves a backend spec through the global registry, filling `defaults`
/// for supported keys the spec leaves unset (the CLI injects its own
/// binary path as the `bin` default this way).
[[nodiscard]] SweepBackendPtr make_sweep_backend(
    const std::string& spec,
    const std::vector<std::pair<std::string, std::string>>& defaults = {});

/// Renders the `ftsched_cli sweep` flags that rebuild `config`'s grid in a
/// child process: figure base plus every dimension the CLI can express
/// (granularities round-trip exactly via the canonical double rendition).
/// Programmatic tweaks the CLI grammar cannot carry (custom
/// PaperWorkloadParams, hand-edited extra crash counts) are *not* rendered;
/// the subprocess backend detects the resulting grid drift by comparing
/// the child's shard fingerprint against the plan's and fails loudly.
[[nodiscard]] std::vector<std::string> sweep_cli_args(
    const FigureConfig& config);

// The inverse direction — flags back to a config — lives here too (not in
// the CLI), because every distributed executor needs it: the sweep/plan/
// serve commands declare the options, while subprocess children and socket
// workers rebuild their plan from a received flag vector.

/// Declares the sweep-grid options (figure, workload, scenario, failures,
/// granularities, graphs, epsilon, procs, threads, seed, shard, backend)
/// on `cli` — shared by the plan/sweep/serve commands.
void add_sweep_grid_options(CliParser& cli);

/// Builds the FigureConfig the declared sweep-grid options describe.
[[nodiscard]] FigureConfig sweep_config_from_cli(const CliParser& cli);

/// Parses a flag vector (e.g. the output of sweep_cli_args, or the
/// coordinator's plan message) back into its FigureConfig.
[[nodiscard]] FigureConfig sweep_config_from_args(
    const std::vector<std::string>& args);

/// Applies a shard chain: a comma chain of "i/N" steps applied left to
/// right ("0/3,1/2" = the second half of shard 0/3).  "" and "full" are
/// the identity.  Throws InvalidArgument on malformed steps.
[[nodiscard]] SweepPlan apply_shard_chain(SweepPlan plan,
                                          const std::string& chain);

}  // namespace ftsched
