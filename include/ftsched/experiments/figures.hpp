// Drivers that print the paper's figures and table as text/CSV blocks.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <memory>
#include <string>

#include "ftsched/experiments/config.hpp"
#include "ftsched/experiments/runner.hpp"

namespace ftsched {

/// Prints blocks (a) bounds, (b) crash latencies, (c) overheads for the
/// given figure (1, 2, 3 or 4), exactly the series the paper plots.
void print_figure(std::ostream& os, const FigureConfig& config,
                  const SweepResult& sweep);

/// Convenience: run_sweep + print_figure.
void run_figure(std::ostream& os, int figure);

/// Generic sweep rendition for arbitrary (workload × scenario) sweeps:
/// one CSV row per granularity, one column per series (sorted), means only.
[[nodiscard]] std::string sweep_to_csv(const SweepResult& sweep);

/// The workload Table 1 times for row `tasks`, drawn exactly as run_table1
/// draws it (`row_rng` is the row's split of the root seed).  Shared with
/// the golden regression test so generator drift is caught.
[[nodiscard]] std::unique_ptr<Workload> make_table1_workload(
    Rng& row_rng, std::size_t tasks, const Table1Config& config);

/// Table 1: running times (seconds) of FTSA / MC-FTSA / FTBAR.
void run_table1(std::ostream& os, const Table1Config& config);

}  // namespace ftsched
