// Drivers that print the paper's figures and table as text/CSV blocks.
#pragma once

#include <iosfwd>

#include "ftsched/experiments/config.hpp"
#include "ftsched/experiments/runner.hpp"

namespace ftsched {

/// Prints blocks (a) bounds, (b) crash latencies, (c) overheads for the
/// given figure (1, 2, 3 or 4), exactly the series the paper plots.
void print_figure(std::ostream& os, const FigureConfig& config,
                  const SweepResult& sweep);

/// Convenience: run_sweep + print_figure.
void run_figure(std::ostream& os, int figure);

/// Table 1: running times (seconds) of FTSA / MC-FTSA / FTBAR.
void run_table1(std::ostream& os, const Table1Config& config);

}  // namespace ftsched
