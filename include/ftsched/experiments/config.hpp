// Experiment configurations matching the paper's §6 setup.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "ftsched/workload/paper_workload.hpp"

namespace ftsched {

struct FigureConfig {
  int figure = 1;
  std::size_t epsilon = 1;
  std::size_t proc_count = 20;
  /// Graphs averaged per granularity point (paper: 60).
  std::size_t graphs_per_point = 60;
  std::uint64_t seed = 42;
  /// Granularity sweep (paper: 0.2 .. 2.0, step 0.2).
  std::vector<double> granularities;
  /// Additional FTSA crash counts plotted besides 0 and ε
  /// (Figure 2 adds 1; Figures 3 and 4 add 2 resp. 1).
  std::vector<std::size_t> extra_crash_counts;
  /// Worker threads for run_sweep: 0 = hardware_concurrency, 1 = serial.
  /// Results are bit-identical for every value (per-instance RNG streams).
  std::size_t threads = 0;
  PaperWorkloadParams workload;
  /// Workload-family dimension: WorkloadRegistry specs ("paper",
  /// "fft:size=16", "trace:file=g.txt", ...).  Empty = the paper §6 family
  /// configured by `workload` above (the figure reproductions).
  std::vector<std::string> workloads;
  /// Crash-scenario dimension: CrashTimeLaw specs ("t0", "frac:f=0.5",
  /// "uniform:hi=1", "exp:mean=0.3").  Empty = {"t0"}, the paper's worst
  /// case.  With more than one (workload, scenario) cell, run_sweep
  /// decorates series names with a "[workload|scenario]" suffix.
  std::vector<std::string> scenarios;
  /// Failure-model dimension: FailureModel specs ("eps", "fixed:k=3",
  /// "bernoulli:p=0.1", "domain:size=4").  Empty = {"eps"}, the paper's ε
  /// uniform victims — byte-identical legacy RNG streams and series.  With
  /// more than one failure cell the series suffix grows a third part:
  /// "[workload|scenario|failure]".
  std::vector<std::string> failure_models;
  /// Online-rescheduling policy dimension: PolicyRegistry specs ("none",
  /// "requeue-heft", "reactive-ftsa").  Empty = {"none"}, the static
  /// schedule replayed unchanged — byte-identical legacy streams, series
  /// and shards.  A non-none policy reruns each drawn failure cell through
  /// the online simulator (ScheduleSimulator::run_online), letting the
  /// policy remap pending replicas on every crash/repair event.  With more
  /// than one policy cell the series suffix grows a fourth part:
  /// "[workload|scenario|failure|policy]".
  std::vector<std::string> policies;
};

/// Configuration for paper Figure 1 (ε=1), 2 (ε=2), 3 (ε=5) or
/// 4 (m=5, ε=2).  Honors the environment overrides FTSCHED_GRAPHS and
/// FTSCHED_SEED so benches stay fast in CI and exact for reproduction.
[[nodiscard]] FigureConfig figure_config(int figure);

struct Table1Config {
  std::vector<std::size_t> task_counts{100, 500, 1000, 2000, 3000, 5000};
  std::size_t proc_count = 50;  ///< paper: 50 processors
  std::size_t epsilon = 5;      ///< paper: 5 supported failures
  std::size_t repetitions = 3;  ///< timing repetitions per size
  std::uint64_t seed = 42;
  /// FTBAR is O(P·N³); sizes above this are skipped for FTBAR unless
  /// FTSCHED_FULL=1 (the paper itself reports 465 s at N=5000).
  std::size_t ftbar_task_limit = 2000;
};

/// Honors FTSCHED_SEED / FTSCHED_REPS / FTSCHED_FULL.
[[nodiscard]] Table1Config table1_config();

}  // namespace ftsched
