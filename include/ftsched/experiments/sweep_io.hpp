// Stage 3 of the plan/execute/merge sweep pipeline: the shard job
// protocol and the merge tool.
//
// A *shard file* is JSONL (one JSON object per line, flat string values):
//
//   header   {"ftsched_sweep_shard":1,"seed":"42","epsilon":"1","m":"20",
//             "reps":"60","extra":"1","granularities":"0x1.9...p-3;...",
//             "workloads":"paper","scenarios":"t0","failures":"eps",
//             "policies":"none","grid":"600","selected":"200","shard":"0/3"}
//   records  {"id":"17","w":"0","s":"0","f":"0","pol":"0","g":"2","r":"5",
//             "series":"FTSA-LowerBound","n":"1","mean":"0x1.8p+0",
//             "m2":"0x0p+0","min":"0x1.8p+0","max":"0x1.8p+0"}
//
// Every record is a partial OnlineStats for one (instance, series) —
// ShardWriterSink emits single-sample accumulators — with count/mean/M2/
// min/max serialized losslessly as hex-floats, so nothing is rounded on
// the way to disk.  merge_shards restores the canonical coordinate order
// (records sorted by full-grid instance id) and combines the partials via
// OnlineStats::merge(); because OnlineStats::add(x) is defined as
// merge(of(x)), the merged SweepResult is bit-identical to the unsharded
// run_sweep for ANY shard partition of the grid — the same doubles, down
// to the last ulp, whatever machines the shards ran on (same
// architecture/ABI assumed; the protocol itself is exact).
//
// merge_shards fails loudly on shards from different plans (fingerprint
// mismatch), overlapping shards (an instance appearing in two files) and
// incomplete partitions (an instance missing from every file).
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "ftsched/experiments/sweep_plan.hpp"
#include "ftsched/util/jsonl.hpp"
#include "ftsched/util/stats.hpp"

namespace ftsched {

/// Shard-file header: the plan identity (everything that determines the
/// grid and its numbers, independent of sharding and thread count) plus
/// this shard's bookkeeping.
struct ShardHeader {
  std::uint64_t seed = 0;
  std::size_t epsilon = 0;
  std::size_t procs = 0;
  std::size_t reps = 0;
  std::vector<std::size_t> extra_crash_counts;
  std::vector<double> granularities;
  std::vector<std::string> workloads;
  std::vector<std::string> scenarios;
  /// Failure-model cell labels.  Shard files written before the failure
  /// dimension existed omit the field; the reader restores the implicit
  /// single {"eps"} cell, so old default-grid shards still merge.
  std::vector<std::string> failures;
  /// Rescheduling-policy cell labels.  Shard files written before the
  /// policy dimension existed omit the field; the reader restores the
  /// implicit single {"none"} cell (and records omit "pol" the same way),
  /// so pre-policy shards still merge.
  std::vector<std::string> policies;
  /// Full PaperWorkloadParams rendition when the grid uses the
  /// paper-configured cell (FigureConfig::workloads empty) — programmatic
  /// tweaks like task_min or exec spread change the numbers without
  /// showing in the cell label, so they must be part of the identity.
  /// Empty when every cell comes from a registry spec.
  std::string paper_params;
  std::uint64_t grid = 0;      ///< full-grid instance count
  std::uint64_t selected = 0;  ///< instances this shard covers
  std::string shard = "full";  ///< shard chain label, e.g. "0/3"

  /// Canonical grid identity; equals SweepPlan::fingerprint() of the plan
  /// that wrote the shard.  merge_shards requires all shards to agree.
  [[nodiscard]] std::string fingerprint() const;
};

/// One partial-statistics record: the accumulator state of `series` over
/// the instance `id` (single-sample as written by ShardWriterSink).
struct ShardRecord {
  InstanceCoord coord;
  std::string series;  ///< decorated series name (cell suffix included)
  OnlineStats stats;
};

/// A parsed shard file.
struct ShardFile {
  ShardHeader header;
  std::vector<ShardRecord> records;
};

/// Streaming sink that serializes every sample to `os` as JSONL: the
/// header on construction, then one record per (instance, series).
class ShardWriterSink final : public SweepSink {
 public:
  /// `os` and `plan` must outlive the sink; the header is written here.
  ShardWriterSink(std::ostream& os, const SweepPlan& plan);

  void on_sample(const InstanceCoord& coord,
                 const SeriesSample& sample) override;

  [[nodiscard]] std::size_t samples_written() const noexcept {
    return samples_;
  }

 private:
  std::ostream* os_;
  const SweepPlan* plan_;
  std::size_t samples_ = 0;
  std::string buffer_;  ///< per-sample render scratch, capacity reused
};

/// The header a ShardWriterSink over `plan` would write (exposed for the
/// CLI's plan command and for tests).
[[nodiscard]] ShardHeader shard_header(const SweepPlan& plan);

// The shard-record vocabulary is also the coordinator service's wire and
// manifest format (service/protocol.hpp), so the line renderers/parsers
// are shared helpers rather than ShardWriterSink/read_shard internals —
// one renderer per line shape keeps the formats bit-identical by
// construction.

/// The newline-terminated header line ShardWriterSink writes for `plan`.
[[nodiscard]] std::string render_shard_header(const SweepPlan& plan);

/// Appends one newline-terminated record line per series of `sample` to
/// `out`, decorated via plan.series_label — exactly what ShardWriterSink
/// writes for the same sample.
void append_sample_records(std::string& out, const SweepPlan& plan,
                           const InstanceCoord& coord,
                           const SeriesSample& sample);

/// Converts one parsed non-header line of the shard protocol into a
/// ShardRecord; `where` labels diagnostics.  Throws InvalidArgument on
/// missing fields or unparsable numbers.
[[nodiscard]] ShardRecord shard_record_from(const FlatJsonObject& object,
                                            const std::string& where);

/// parse + shard_record_from for one line (callers with many lines keep a
/// FlatJsonObject scratch and use shard_record_from directly).
[[nodiscard]] ShardRecord parse_shard_record(const std::string& line,
                                             const std::string& where);

/// Strips the cell suffix of `coord` (series_label's decoration, a pure
/// suffix) from `series` in place.  Returns false — leaving `series`
/// untouched — when the suffix is absent, i.e. the record cannot be a
/// well-formed sample of `coord` under `plan`.
[[nodiscard]] bool undecorate_series(const SweepPlan& plan,
                                     const InstanceCoord& coord,
                                     std::string& series);

/// Parses one shard stream; `name` labels diagnostics.  Throws
/// InvalidArgument on malformed lines or a missing/alien header.
[[nodiscard]] ShardFile read_shard(std::istream& in,
                                   const std::string& name = "<stream>");

/// Opens and parses `path`; throws InvalidArgument when unreadable.
[[nodiscard]] ShardFile read_shard_file(const std::string& path);

/// Combines shard files covering a full partition of one plan's grid into
/// the SweepResult of the unsharded run — bit-identical (see file
/// comment).  Throws InvalidArgument on fingerprint mismatch, overlap,
/// incomplete coverage, or out-of-range records.
[[nodiscard]] SweepResult merge_shards(const std::vector<ShardFile>& shards);

/// read_shard_file + merge_shards over a list of paths.
[[nodiscard]] SweepResult merge_shard_files(
    const std::vector<std::string>& paths);

}  // namespace ftsched
