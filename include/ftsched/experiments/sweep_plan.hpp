// Stage 1 and 2 of the plan/execute/merge sweep pipeline.
//
// `SweepPlan` makes the sweep grid explicit: built from a FigureConfig, it
// enumerates every instance of the (workload family × crash scenario ×
// failure model × rescheduling policy × granularity × repetition) cross
// product as an addressable InstanceCoord
// with a stable id, and `plan.shard(i, n)` deterministically selects the
// i-th of n disjoint subsets — the unit of work a coordinator hands to one
// machine.  `run_plan(plan, sink)` executes the selected instances on a
// ParallelExecutor and streams every per-instance sample into a SweepSink,
// decoupling execution from aggregation:
//
//   * OnlineStatsSink aggregates in memory and reproduces exactly the
//     SweepResult the monolithic run_sweep used to build (run_sweep is now
//     a thin wrapper over this pair);
//   * ShardWriterSink (experiments/sweep_io.hpp) serializes the samples
//     losslessly to a JSONL shard file, and merge_shards combines shard
//     files back into a SweepResult that is bit-identical to the unsharded
//     run for any shard partition of the grid.
//
// Every instance runs on an RNG stream keyed off the root seed by its
// coordinates via Rng::derive (scenario cells share streams for paired
// comparison), so any subset of the grid is computable in isolation and
// results never depend on thread count or shard layout.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ftsched/experiments/config.hpp"
#include "ftsched/experiments/runner.hpp"
#include "ftsched/platform/failure.hpp"
#include "ftsched/util/rng.hpp"
#include "ftsched/workload/workload_registry.hpp"

namespace ftsched {

/// Address of one sweep instance inside the full grid.
///
/// `id` is the stable linear id: with W workload families, S scenarios,
/// F failure models, L rescheduling policies, P granularity points and R
/// repetitions,
///   id = ((((workload * S + scenario) * F + failure) * L + policy) * P +
///         gran) * R + rep,
/// i.e. exactly the serial aggregation order of the unsharded sweep (and,
/// with the default single policy cell L = 1 — resp. single failure cell
/// F = 1 — exactly the pre-policy-dimension resp. pre-failure-dimension
/// id).  Ids are invariant under sharding — a shard keeps the full-grid
/// ids of the instances it selects — which is what lets merge_shards
/// restore the canonical coordinate order.
struct InstanceCoord {
  std::size_t workload = 0;  ///< workload-family index
  std::size_t scenario = 0;  ///< crash-scenario index
  std::size_t failure = 0;   ///< failure-model index
  std::size_t policy = 0;    ///< rescheduling-policy index
  std::size_t gran = 0;      ///< granularity index
  std::size_t rep = 0;       ///< repetition
  std::uint64_t id = 0;      ///< stable linear id within the full grid
};

/// Streaming consumer of per-instance samples.  run_plan invokes
/// on_sample once per selected instance, serially, in increasing-id order
/// (instances are *evaluated* in parallel; delivery is ordered), so sinks
/// need no locking and deterministic aggregation comes for free.
class SweepSink {
 public:
  virtual ~SweepSink() = default;

  virtual void on_sample(const InstanceCoord& coord,
                         const SeriesSample& sample) = 0;
};

/// An addressable sweep grid plus a selected subset of it.
///
/// Construction resolves the (workload × scenario) cells once — specs
/// parsed, trace files loaded — and validates cell labels; shard() only
/// narrows the selection, so sharding is cheap and repeatable.  Copyable;
/// cells are shared between copies (families are immutable).
class SweepPlan {
 public:
  /// Builds the full-grid plan for `config` (every instance selected).
  explicit SweepPlan(const FigureConfig& config);

  [[nodiscard]] const FigureConfig& config() const noexcept { return config_; }
  [[nodiscard]] const std::vector<double>& granularities() const noexcept {
    return config_.granularities;
  }
  /// Workload-family labels, sweep order (always at least {"paper"}).
  [[nodiscard]] const std::vector<std::string>& workloads() const noexcept {
    return workload_labels_;
  }
  /// Crash-scenario labels, sweep order (always at least {"t0"}).
  [[nodiscard]] const std::vector<std::string>& scenarios() const noexcept {
    return scenario_labels_;
  }
  /// Failure-model labels, sweep order (always at least {"eps"}).
  [[nodiscard]] const std::vector<std::string>& failures() const noexcept {
    return failure_labels_;
  }
  /// Rescheduling-policy labels, sweep order (always at least {"none"}).
  [[nodiscard]] const std::vector<std::string>& policies() const noexcept {
    return policy_labels_;
  }
  [[nodiscard]] std::size_t repetitions() const noexcept {
    return config_.graphs_per_point;
  }

  /// Instances in the full grid (W × S × F × L × P × R).
  [[nodiscard]] std::uint64_t grid_size() const noexcept;
  /// Instances selected by this plan (== grid_size() before sharding).
  [[nodiscard]] std::size_t size() const noexcept { return selected_.size(); }
  [[nodiscard]] bool complete() const noexcept {
    return selected_.size() == grid_size();
  }
  /// "full", or the "i/n" shard chain ("0/3" / "0/3,1/2" when nested).
  [[nodiscard]] const std::string& shard_label() const noexcept {
    return shard_label_;
  }

  /// Coordinates of the k-th *selected* instance (k < size()).
  [[nodiscard]] InstanceCoord coord(std::size_t k) const;
  /// Decomposes a full-grid id (id < grid_size()).
  [[nodiscard]] InstanceCoord coord_of_id(std::uint64_t id) const;

  /// The i-th of `count` disjoint strided subsets of this plan's selection
  /// (instance k goes to shard k mod count).  Shards of the full plan
  /// partition the grid; sharding a shard partitions further.  Throws
  /// InvalidArgument unless index < count.
  [[nodiscard]] SweepPlan shard(std::size_t index, std::size_t count) const;

  /// The series name samples of `coord` aggregate under: undecorated for a
  /// single-cell grid, "name[workload|scenario]" otherwise, with a third
  /// "|failure" part when the failure dimension is swept and a fourth
  /// "|policy" part when the policy dimension is swept (the same rule as
  /// sweep_series_name).
  [[nodiscard]] std::string series_label(const InstanceCoord& coord,
                                         const std::string& series) const;

  /// Canonical one-line identity of the *grid* (seed, epsilon, processor
  /// count, repetitions, crash counts, exact granularities, workload /
  /// scenario / failure-model / policy cell labels) — independent of
  /// sharding and thread count.  merge_shards refuses to combine shards
  /// whose fingerprints differ.
  [[nodiscard]] std::string fingerprint() const;

  /// Evaluates one instance on its own derived RNG stream; the result
  /// depends only on (config, coord), never on what else ran.  This is the
  /// legacy per-coordinate path — it reruns every scheduler pass per cell —
  /// kept as the equivalence reference for the grouped path below.
  [[nodiscard]] SeriesSample evaluate(const InstanceCoord& coord) const;

  /// Selected-instance indices (arguments for coord()) grouped by base key
  /// (workload, granularity, repetition): every index of one group shares
  /// the derived RNG stream, hence the workload instance and all schedules
  /// — the groups differ only in their (scenario, failure, policy) cell.
  /// Groups
  /// are ordered by their first selected index and members ascend, so a
  /// shard's partial groups are exactly the selected subset of the full
  /// plan's groups.
  [[nodiscard]] std::vector<std::vector<std::size_t>> group_selection() const;

  /// Schedule-once/simulate-many evaluation of one group_selection() group:
  /// generates the workload and runs the schedule phase once, then
  /// simulates each member's (scenario, failure, policy) cell off a
  /// snapshot of the shared RNG stream — `none` cells through the static
  /// replay (shared SimulationCache), reactive cells through the online
  /// simulator.  Returns one sample per member, in order —
  /// bit-identical to evaluate(coord(k)) for each member, because the
  /// schedule phase draws nothing from the instance stream.  Throws if the
  /// indices do not all share one base key.
  ///
  /// All members share one SimulationCache, so cells whose (victims,
  /// instants) draws coincide run the event simulation once (cross-cell
  /// draw dedupe — the shared schedules make cached Summaries valid across
  /// the whole group).  When `stats` is non-null the cache counters are
  /// accumulated into it.
  [[nodiscard]] std::vector<SeriesSample> evaluate_group(
      const std::vector<std::size_t>& members,
      SimulationCache::Stats* stats = nullptr) const;

 private:
  struct Cell {
    std::shared_ptr<const WorkloadFamily> family;
    CrashTimeLaw law;
    FailureModel model;
  };

  /// The (workload, granularity, repetition) key shared by all cells of one
  /// instance: both the Rng::derive key and the schedule-reuse group key.
  [[nodiscard]] std::uint64_t base_key(const InstanceCoord& coord) const noexcept;
  [[nodiscard]] const Cell& cell(const InstanceCoord& coord) const;

  FigureConfig config_;
  /// workload-major: (workload * S + scenario) * F + failure.  The policy
  /// dimension is deliberately *not* a cell factor: a policy never changes
  /// the workload, law or model — only how the drawn cell is simulated —
  /// so policy cells share Cell state (and, via the shared base key,
  /// instance streams: paired static-vs-reactive draws).
  std::vector<Cell> cells_;
  std::vector<std::string> workload_labels_;
  std::vector<std::string> scenario_labels_;
  std::vector<std::string> failure_labels_;
  std::vector<std::string> policy_labels_;
  Rng root_;
  std::vector<std::uint64_t> selected_;  ///< sorted full-grid ids
  std::string shard_label_ = "full";
};

/// Execution counters of one run_plan call (grouped path only — the legacy
/// per-coordinate path runs without a cache and reports nothing).
struct RunPlanStats {
  std::uint64_t simulations_run = 0;  ///< event simulations actually run
  std::uint64_t dedupe_hits = 0;      ///< simulations served from group caches
};

/// Execution options of run_plan (the grid identity — fingerprint, ids,
/// sample values — never depends on them).
struct RunPlanOptions {
  /// Schedule-once/simulate-many: group the selected coordinates by their
  /// (workload, granularity, repetition) base key and run the schedule
  /// phase once per group, simulating every selected (scenario, failure)
  /// cell off the shared schedules.  false = the legacy per-coordinate
  /// path; both deliver bit-identical samples in the same order, the
  /// grouped path just skips the redundant scheduler passes.
  bool group = true;
  /// Bounded reordering window, in jobs: a worker may start job j only
  /// once fewer than `window` earlier jobs are still incomplete, and every
  /// completed order-prefix is delivered to the sink while workers run —
  /// so a large shard no longer materialises all its samples before the
  /// first delivery.  0 = auto (max(16, 4 × worker count)); any value >= 1
  /// is deadlock-free (the job at the window's base always proceeds).
  std::size_t window = 0;
  /// Optional dedupe counters, accumulated across all groups under the
  /// delivery lock (grouped path only).  Must outlive the run_plan call.
  RunPlanStats* stats = nullptr;
  /// Worker-thread override for the in-process executor; unset = use
  /// plan.config().threads (where 0 = hardware concurrency).  Execution
  /// backends (experiments/backend.hpp) route their `threads` spec option
  /// through this, so one plan can be re-run under different worker counts
  /// without rebuilding its FigureConfig.
  std::optional<std::size_t> threads;
};

/// Evaluates the plan's selected instances on `plan.config().threads`
/// workers (0 = hardware_concurrency) and streams the samples into `sink`
/// serially in increasing-id order.  Bit-identical for every thread count,
/// shard partition and RunPlanOptions choice; samples are delivered as
/// their order-prefix completes (so a sink may have consumed a prefix if
/// run_plan later throws).
void run_plan(const SweepPlan& plan, SweepSink& sink,
              const RunPlanOptions& options = {});

/// In-memory aggregation sink: accumulates every sample into per-series
/// OnlineStats, reproducing the monolithic run_sweep's SweepResult —
/// bit-identically when run over the full grid in coordinate order.
class OnlineStatsSink final : public SweepSink {
 public:
  /// `plan` must outlive the sink (labels and series decoration).
  explicit OnlineStatsSink(const SweepPlan& plan);

  void on_sample(const InstanceCoord& coord,
                 const SeriesSample& sample) override;

  /// Moves the aggregated result out (the sink is spent afterwards).
  [[nodiscard]] SweepResult take();

 private:
  const SweepPlan* plan_;
  SweepResult result_;
  /// Per-cell memo of undecorated series name → aggregated column, filled
  /// on first sight: steady-state aggregation builds no decorated-label
  /// strings and does no lookup in the decorated series map.  std::map
  /// nodes are stable, so the cached pointers stay valid until take()
  /// moves the result out (which drops the cache).
  std::vector<std::map<std::string, std::vector<OnlineStats>*>> label_cache_;
};

}  // namespace ftsched
