// Granularity targeting (paper §2, §6).
//
// The experiments sweep the granularity g(G,P) from 0.2 (fine grain) to 2.0
// (coarse grain).  Because g is a ratio of total computation to total
// communication, multiplying every execution time by a constant rescales g
// exactly; `set_granularity` exploits this to hit the target precisely.
#pragma once

#include "ftsched/platform/cost_model.hpp"

namespace ftsched {

/// Rescales the cost model's execution times so granularity() == target.
/// Throws InvalidArgument when the graph has no communication (granularity
/// would be infinite regardless of scaling).
void set_granularity(CostModel& costs, double target);

}  // namespace ftsched
