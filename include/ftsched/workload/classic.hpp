// Classic application task graphs from the scheduling literature.
//
// These give the examples and property tests structurally diverse DAGs:
// chains, fork-joins, trees, FFT butterflies, Gaussian elimination,
// 2-D wavefront stencils, and random series-parallel graphs.
#pragma once

#include <cstddef>

#include "ftsched/dag/graph.hpp"
#include "ftsched/util/rng.hpp"

namespace ftsched {

/// Uniform message volume assigned to every edge of the classic generators.
struct ClassicParams {
  double volume = 100.0;
};

/// t0 -> t1 -> ... -> t(n-1).
[[nodiscard]] TaskGraph make_chain(std::size_t length,
                                   const ClassicParams& params = {});

/// One source fanning out to `width` parallel tasks joined by one sink.
[[nodiscard]] TaskGraph make_fork_join(std::size_t width,
                                       const ClassicParams& params = {});

/// Complete binary in-tree (reduction) with `leaves` leaves (power of two).
[[nodiscard]] TaskGraph make_in_tree(std::size_t leaves,
                                     const ClassicParams& params = {});

/// Complete binary out-tree (broadcast) with `leaves` leaves (power of two).
[[nodiscard]] TaskGraph make_out_tree(std::size_t leaves,
                                      const ClassicParams& params = {});

/// FFT butterfly graph over `points` inputs (power of two):
/// log2(points)+1 ranks of `points` tasks each, butterfly wiring.
[[nodiscard]] TaskGraph make_fft(std::size_t points,
                                 const ClassicParams& params = {});

/// Gaussian-elimination task graph for an n×n matrix: pivot column tasks
/// plus update tasks, the standard wavefront of dependences.
[[nodiscard]] TaskGraph make_gaussian_elimination(
    std::size_t n, const ClassicParams& params = {});

/// 2-D wavefront (stencil) over a rows×cols grid: each cell depends on its
/// north and west neighbors.
[[nodiscard]] TaskGraph make_wavefront(std::size_t rows, std::size_t cols,
                                       const ClassicParams& params = {});

/// Random series-parallel DAG built by recursive series/parallel expansion
/// of a single edge until it has ~`task_count` tasks.
[[nodiscard]] TaskGraph make_series_parallel(Rng& rng, std::size_t task_count,
                                             const ClassicParams& params = {});

/// Tiled Cholesky factorization DAG over a b×b tile matrix: POTRF / TRSM /
/// SYRK / GEMM tasks with the standard dependence pattern.
[[nodiscard]] TaskGraph make_cholesky(std::size_t tiles,
                                      const ClassicParams& params = {});

/// Tiled LU factorization (no pivoting) DAG over a b×b tile matrix:
/// GETRF / TRSM (row+column) / GEMM updates.
[[nodiscard]] TaskGraph make_lu(std::size_t tiles,
                                const ClassicParams& params = {});

}  // namespace ftsched
