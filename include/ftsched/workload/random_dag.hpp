// Random task graph generators.
//
// The paper evaluates on "randomly generated graphs, whose parameters are
// consistent with those used in the literature": 100–150 tasks, message
// volumes ~ U[50, 150].  The layered generator below is the standard
// construction from that literature (Dogan & Ozguner; Qin & Jiang): tasks
// are arranged in layers, and each task draws predecessors from nearby
// earlier layers.  An Erdős–Rényi-style DAG generator is also provided.
#pragma once

#include <cstddef>

#include "ftsched/dag/graph.hpp"
#include "ftsched/util/rng.hpp"

namespace ftsched {

struct LayeredDagParams {
  std::size_t task_count = 120;
  /// Average number of tasks per layer; the actual layer sizes are drawn
  /// uniformly from [1, 2*avg_layer_width - 1].
  std::size_t avg_layer_width = 8;
  /// Probability of an edge between a task and each candidate predecessor
  /// in the previous `max_layer_jump` layers.
  double edge_probability = 0.25;
  /// How far back (in layers) an edge may reach.
  std::size_t max_layer_jump = 2;
  /// Message volumes ~ U[volume_min, volume_max] (paper: [50, 150]).
  double volume_min = 50.0;
  double volume_max = 150.0;
  /// Guarantee that every non-layer-0 task has at least one predecessor and
  /// every non-final task at least one successor (keeps the DAG connected).
  bool connect = true;
};

/// Layered random DAG. Deterministic given `rng`'s state.
[[nodiscard]] TaskGraph make_layered_dag(Rng& rng,
                                         const LayeredDagParams& params);

struct GnpDagParams {
  std::size_t task_count = 100;
  /// Each pair (i, j) with i < j (in a random topological permutation)
  /// becomes an edge with this probability.
  double edge_probability = 0.05;
  double volume_min = 50.0;
  double volume_max = 150.0;
};

/// Erdős–Rényi DAG over a random permutation of the tasks.
[[nodiscard]] TaskGraph make_gnp_dag(Rng& rng, const GnpDagParams& params);

}  // namespace ftsched
