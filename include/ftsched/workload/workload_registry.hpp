// Workload registry: the workload-side mirror of the SchedulerRegistry.
//
// A `WorkloadFamily` turns an RNG stream and a sweep point (granularity,
// processor count) into a complete workload instance (graph + platform +
// cost model).  Families are selected by spec strings like
// "paper:tmin=100,tmax=150", "layered:tasks=120,width=8", "fft:size=16" or
// "trace:file=graph.txt", so experiment drivers, benches and the CLI can
// range over workload families exactly like they range over algorithms.
//
// Built-in families:
//   paper    — the paper's §6 generator (layered DAG, published parameters)
//   layered  — layered random DAGs with every knob exposed
//   gnp      — Erdős–Rényi DAGs
//   chain | forkjoin | intree | outtree | fft | gauss | wavefront | sp |
//   cholesky | lu — the classic application graphs (workload/classic.hpp)
//   trace    — a DAG loaded from a dag/serialize.hpp text file
//
// Every family draws its platform and execution costs with the paper's
// randomized cost model; `procs` and `g` (granularity) options pin those
// dimensions, otherwise the sweep point supplies them.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "ftsched/util/spec.hpp"
#include "ftsched/workload/paper_workload.hpp"

namespace ftsched {

/// Per-point context a granularity sweep injects into workload generation:
/// the values used for any dimension the family's spec does not pin.
struct SweepPoint {
  double granularity = 1.0;
  std::size_t proc_count = 20;
};

/// Abstract workload family: maps an RNG stream (and the sweep point) to a
/// fresh workload instance.  Implementations are immutable and reusable;
/// `generate` is const and must be safe to call concurrently — the parallel
/// sweep invokes one family from many worker threads.
class WorkloadFamily {
 public:
  virtual ~WorkloadFamily() = default;

  /// Canonical spec string (only non-default options are listed).
  /// Round-trips through the registry: `create(f.name())->name() == f.name()`.
  [[nodiscard]] virtual std::string name() const = 0;

  /// One-line human-readable description of the configured family.
  [[nodiscard]] virtual std::string describe() const = 0;

  /// Draws one workload instance.  Deterministic given `rng`'s state and
  /// `point`; all randomness flows through `rng`.
  [[nodiscard]] virtual std::unique_ptr<Workload> generate(
      Rng& rng, const SweepPoint& point = {}) const = 0;
};

using WorkloadFamilyPtr = std::unique_ptr<WorkloadFamily>;

/// Name → factory registry of workload families (see util/spec.hpp for the
/// spec syntax and error contract).
class WorkloadRegistry : public SpecRegistry<WorkloadFamilyPtr> {
 public:
  WorkloadRegistry() : SpecRegistry("workload family") {}

  /// The process-wide registry, pre-populated with the built-in families.
  [[nodiscard]] static WorkloadRegistry& global();
};

/// Creates a family from `spec` through the global registry, filling
/// `defaults` (key → value) for keys the family supports and the spec
/// leaves unset — the bridge between flag-style callers (the CLI's
/// --procs/--granularity) and spec strings.
[[nodiscard]] WorkloadFamilyPtr make_workload_family(
    const std::string& spec,
    const std::vector<std::pair<std::string, std::string>>& defaults = {});

/// The paper's §6 family built directly from parameter structs (the route
/// run_sweep takes for FigureConfig::workload, bypassing spec parsing).
/// `procs`/`granularity` stay unpinned: the sweep point supplies them.
[[nodiscard]] WorkloadFamilyPtr make_paper_family(
    const PaperWorkloadParams& params);

}  // namespace ftsched
