// Factory for the paper's exact experimental workload (§6).
//
// One call produces a (graph, platform, cost model) triple drawn with the
// published parameters: v ~ U[100, 150] tasks, message volumes ~ U[50, 150],
// unit link delays ~ U[0.5, 1], m processors, execution costs rescaled to a
// target granularity.
#pragma once

#include <cstddef>
#include <memory>

#include "ftsched/platform/cost_model.hpp"
#include "ftsched/platform/generator.hpp"
#include "ftsched/workload/random_dag.hpp"

namespace ftsched {

struct PaperWorkloadParams {
  std::size_t task_min = 100;   ///< paper: v ~ U[100, 150]
  std::size_t task_max = 150;
  /// Average tasks per layer of the generated DAG; 0 = auto (v/15, min 8),
  /// which keeps the paper's shape at v ~ 125 and lets the graph width —
  /// and with it FTBAR's free-list — grow with v for the Table-1 sizes.
  std::size_t avg_layer_width = 0;
  std::size_t proc_count = 20;  ///< paper: 20 (5 for Figure 4)
  double granularity = 1.0;     ///< paper sweep: 0.2 .. 2.0
  double volume_min = 50.0;     ///< paper: U[50, 150]
  double volume_max = 150.0;
  double delay_min = 0.5;       ///< paper: U[0.5, 1]
  double delay_max = 1.0;
  ExecCostParams exec;          ///< heterogeneity of E(t, P)
};

/// A self-owning workload instance: the cost model keeps references into
/// `graph` and `platform`, so the three are bundled and non-copyable.
class Workload {
 public:
  Workload(TaskGraph graph, Platform platform,
           std::vector<std::vector<double>> exec);

  Workload(const Workload&) = delete;
  Workload& operator=(const Workload&) = delete;

  [[nodiscard]] const TaskGraph& graph() const noexcept { return *graph_; }
  [[nodiscard]] const Platform& platform() const noexcept {
    return *platform_;
  }
  [[nodiscard]] const CostModel& costs() const noexcept { return *costs_; }
  [[nodiscard]] CostModel& costs() noexcept { return *costs_; }

 private:
  std::unique_ptr<TaskGraph> graph_;
  std::unique_ptr<Platform> platform_;
  std::unique_ptr<CostModel> costs_;
};

/// Draws one paper-style workload; granularity is hit exactly.
[[nodiscard]] std::unique_ptr<Workload> make_paper_workload(
    Rng& rng, const PaperWorkloadParams& params);

/// Wraps an existing graph with a random paper-style platform/cost model
/// (used by examples running classic application graphs).
[[nodiscard]] std::unique_ptr<Workload> make_workload_for_graph(
    Rng& rng, TaskGraph graph, const PaperWorkloadParams& params);

}  // namespace ftsched
