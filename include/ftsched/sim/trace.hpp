// Human-readable schedule and execution traces (ASCII Gantt charts).
#pragma once

#include <string>

#include "ftsched/core/schedule.hpp"
#include "ftsched/sim/event_sim.hpp"

namespace ftsched {

struct GanttOptions {
  std::size_t width = 100;  ///< characters available for the time axis
};

/// Gantt chart of the planned (failure-free) schedule, one row per
/// processor, replicas labelled with their task label.
[[nodiscard]] std::string schedule_gantt(const ReplicatedSchedule& schedule,
                                         const GanttOptions& options = {});

/// Gantt chart of an actual execution: completed replicas only, plus a
/// legend of dead/cancelled replicas.
[[nodiscard]] std::string execution_gantt(const ReplicatedSchedule& schedule,
                                          const SimulationResult& result,
                                          const GanttOptions& options = {});

/// One-line-per-replica textual dump of the schedule (debugging aid).
[[nodiscard]] std::string schedule_listing(const ReplicatedSchedule& schedule);

/// JSON export: schedule structure, bounds, message counts, and (when
/// given) the per-replica outcomes of an execution.  Intended for external
/// plotting/tooling; the text round-trip format lives in
/// ftsched/core/schedule_io.hpp.
[[nodiscard]] std::string schedule_to_json(
    const ReplicatedSchedule& schedule,
    const SimulationResult* execution = nullptr);

}  // namespace ftsched
