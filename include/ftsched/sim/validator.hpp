// Exhaustive fault-tolerance validation (Theorem 4.1 / Prop. 4.2 / 4.3).
//
// For every subset of up to ε processors crashing at time 0, simulate the
// schedule and check that it still succeeds and meets the guaranteed upper
// bound M.  Exponential in ε (C(m, ε) scenarios) — meant for tests and for
// certifying small deployments, not for the 20-processor sweeps.
#pragma once

#include <cstddef>
#include <string>

#include "ftsched/core/schedule.hpp"
#include "ftsched/sim/event_sim.hpp"

namespace ftsched {

struct ValidationReport {
  bool valid = true;
  std::size_t scenarios_checked = 0;
  double worst_latency = 0.0;       ///< max achieved latency over scenarios
  std::string failure_description;  ///< empty when valid
};

struct ValidatorOptions {
  /// Also require achieved latency <= schedule.upper_bound() (Prop. 4.2).
  bool check_upper_bound = true;
  /// Relative tolerance for the bound comparison.
  double tolerance = 1e-6;
  SimulationOptions sim;
};

/// Checks every crash subset of size 0..epsilon (inclusive).
[[nodiscard]] ValidationReport validate_fault_tolerance(
    const ReplicatedSchedule& schedule, const ValidatorOptions& options = {});

}  // namespace ftsched
