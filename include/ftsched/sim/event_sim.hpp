// Discrete-event execution of a replicated schedule under fail-stop
// processor crashes (the paper's §6 "crash" experiments).
//
// Semantics (documented in DESIGN.md):
//  * each processor executes its replicas in scheduled order, data-driven:
//    a replica starts once the processor is free and every incoming edge
//    has delivered at least one message (first input wins, Prop. 4.2);
//  * a replica on a processor that crashes before the replica's completion
//    produces nothing; completed replicas' messages are always delivered;
//  * a replica is *cancelled* (and skipped, unblocking its processor) when
//    for some incoming edge every channel source is dead or cancelled —
//    i.e. when it provably can never become ready;
//  * the run succeeds when every exit task has a completed replica; the
//    achieved latency is then max over exit tasks of the earliest completed
//    replica finish time.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "ftsched/core/schedule.hpp"
#include "ftsched/platform/failure.hpp"
#include "ftsched/sim/comm_model.hpp"

namespace ftsched {

enum class ReplicaStatus {
  kNotStarted,  ///< never became ready before the simulation drained
  kCompleted,
  kDead,       ///< on a processor that crashed before completion
  kCancelled,  ///< provably never-ready; skipped by its processor
};

struct ReplicaOutcome {
  ReplicaStatus status = ReplicaStatus::kNotStarted;
  double start = 0.0;   ///< actual start (valid unless kNotStarted/kCancelled)
  double finish = 0.0;  ///< actual finish (valid when kCompleted)
};

struct SimulationResult {
  bool success = false;
  /// max over exit tasks of earliest completed replica finish;
  /// +infinity when the run failed.
  double latency = std::numeric_limits<double>::infinity();
  std::size_t completed_replicas = 0;
  std::size_t dead_replicas = 0;
  std::size_t cancelled_replicas = 0;
  std::size_t messages_delivered = 0;  ///< inter-processor messages only
  /// Outcome per (task, replica), indexed like the schedule's replica lists.
  std::vector<std::vector<ReplicaOutcome>> outcomes;

  /// Actual completion time of task t (earliest completed replica), or
  /// +infinity if no replica of t completed.
  [[nodiscard]] double task_completion(TaskId t) const;
};

struct SimulationOptions {
  CommModelOptions comm;
};

/// Executes `schedule` under `failures` and returns the outcome.
/// The schedule is not modified; any number of crashes is allowed (with
/// more than ε the run may legitimately fail).
[[nodiscard]] SimulationResult simulate(const ReplicatedSchedule& schedule,
                                        const FailureScenario& failures = {},
                                        const SimulationOptions& options = {});

}  // namespace ftsched
