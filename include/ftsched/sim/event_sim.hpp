// Discrete-event execution of a replicated schedule under fail-stop
// processor crashes (the paper's §6 "crash" experiments).
//
// Semantics (documented in DESIGN.md):
//  * each processor executes its replicas in scheduled order, data-driven:
//    a replica starts once the processor is free and every incoming edge
//    has delivered at least one message (first input wins, Prop. 4.2);
//  * a replica on a processor that crashes before the replica's completion
//    produces nothing; completed replicas' messages are always delivered;
//  * a replica is *cancelled* (and skipped, unblocking its processor) when
//    for some incoming edge every channel source is dead or cancelled —
//    i.e. when it provably can never become ready;
//  * the run succeeds when every exit task has a completed replica; the
//    achieved latency is then max over exit tasks of the earliest completed
//    replica finish time.
#pragma once

#include <cstddef>
#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "ftsched/core/schedule.hpp"
#include "ftsched/platform/failure.hpp"
#include "ftsched/sim/comm_model.hpp"

namespace ftsched {

class ReschedulePolicy;

enum class ReplicaStatus {
  kNotStarted,  ///< never became ready before the simulation drained
  kCompleted,
  kDead,       ///< on a processor that crashed before completion
  kCancelled,  ///< provably never-ready; skipped by its processor
};

struct ReplicaOutcome {
  ReplicaStatus status = ReplicaStatus::kNotStarted;
  double start = 0.0;   ///< actual start (valid unless kNotStarted/kCancelled)
  double finish = 0.0;  ///< actual finish (valid when kCompleted)
};

struct SimulationResult {
  bool success = false;
  /// max over exit tasks of earliest completed replica finish;
  /// +infinity when the run failed.
  double latency = std::numeric_limits<double>::infinity();
  std::size_t completed_replicas = 0;
  std::size_t dead_replicas = 0;
  std::size_t cancelled_replicas = 0;
  std::size_t messages_delivered = 0;  ///< inter-processor messages only
  /// Outcome per (task, replica), indexed like the schedule's replica lists.
  std::vector<std::vector<ReplicaOutcome>> outcomes;

  /// Actual completion time of task t (earliest completed replica), or
  /// +infinity if no replica of t completed.
  [[nodiscard]] double task_completion(TaskId t) const;
};

struct SimulationOptions {
  CommModelOptions comm;
};

/// Build-once/simulate-many event simulator for one schedule.
///
/// Construction precomputes everything that depends only on the schedule —
/// flat replica arrays, CSR channel fan-out lists, the sorted per-processor
/// execution queues — and each run(failures) resets just the dynamic state,
/// so simulating the same schedule under many failure scenarios (crash
/// counts, sweep cells) skips the per-call rebuild the one-shot simulate()
/// pays.  run() is bit-identical to simulate() with the same arguments.
///
/// All dynamic state is structure-of-arrays: flat parallel arrays indexed
/// by a build-once replica numbering (status bytes, in-edge satisfaction
/// flags and live-source counts in one contiguous slot arena, start/finish
/// times), so the per-run reset is a handful of fill/copy sweeps over
/// contiguous memory instead of per-node touches, and the event queue is an
/// arena-backed binary heap whose storage is retained across runs — steady
/// state allocates nothing.
///
/// The schedule must outlive the simulator.  run() mutates internal state:
/// one simulator must not be run from two threads concurrently (use one
/// per thread, or one per schedule per worker — they are cheap after the
/// first run).
class ScheduleSimulator {
 public:
  explicit ScheduleSimulator(const ReplicatedSchedule& schedule,
                             const SimulationOptions& options = {});
  ~ScheduleSimulator();
  ScheduleSimulator(ScheduleSimulator&&) noexcept;
  ScheduleSimulator& operator=(ScheduleSimulator&&) noexcept;
  ScheduleSimulator(const ScheduleSimulator&) = delete;
  ScheduleSimulator& operator=(const ScheduleSimulator&) = delete;

  /// Executes the schedule under `failures` and returns the outcome.
  [[nodiscard]] SimulationResult run(const FailureScenario& failures = {});

  /// Success + achieved latency of one run, computed exactly like run()'s
  /// (same event loop, same doubles) but without materialising the
  /// per-replica outcome lists — the right call for tight simulate-many
  /// loops that only chart latencies.
  struct Summary {
    bool success = false;
    double latency = std::numeric_limits<double>::infinity();
  };
  [[nodiscard]] Summary run_summary(const FailureScenario& failures = {});

  /// Batch entry of the simulate-many loop: runs every scenario in order,
  /// writing summaries[i] = run_summary(scenarios[i]).  One call amortises
  /// the per-call plumbing and keeps the static structure and the dynamic
  /// arenas hot in cache across all crash simulations of one schedule.
  /// summaries must have at least scenarios.size() elements.
  void run_batch(std::span<const FailureScenario> scenarios,
                 std::span<Summary> summaries);

  /// Outcome of one policy-driven (online) run.
  struct OnlineSummary {
    bool success = false;
    double latency = std::numeric_limits<double>::infinity();
    std::size_t moves = 0;    ///< replica moves applied by the policy
    std::size_t repairs = 0;  ///< repair events applied
  };

  /// The schedule→simulate inversion: executes the schedule under a failure
  /// *timeline* (crashes with optional repairs) and calls back into
  /// `policy` on every crash and repair event, applying the moves it emits
  /// (core/reschedule.hpp).  A null or no-op policy reproduces the static
  /// semantics exactly — same event ordering, same doubles as run() —
  /// *when the timeline has no repairs*; repairs restart the processor
  /// with its remaining queue (pending replicas are parked through the
  /// outage instead of dying).  The online run keeps its own copy of the
  /// dynamic placement state, so it interleaves freely with run()/
  /// run_batch() on the same simulator (not concurrently).
  [[nodiscard]] OnlineSummary run_online(const FailureTimeline& timeline,
                                         ReschedulePolicy* policy = nullptr);

 private:
  class Impl;
  std::unique_ptr<Impl> impl_;
};

/// Executes `schedule` under `failures` and returns the outcome.
/// The schedule is not modified; any number of crashes is allowed (with
/// more than ε the run may legitimately fail).  One-shot convenience over
/// ScheduleSimulator: callers simulating one schedule repeatedly should
/// construct the simulator once instead.
[[nodiscard]] SimulationResult simulate(const ReplicatedSchedule& schedule,
                                        const FailureScenario& failures = {},
                                        const SimulationOptions& options = {});

}  // namespace ftsched
