// Communication contention models for the execution simulator.
//
// The paper's model is contention-free: a message of volume V from Pk to Ph
// occupies nothing and arrives V·d(Pk,Ph) after it is sent.  §7 names the
// one-port and bounded multi-port models as future work; both are
// implemented here so the ablation benches can quantify their impact on the
// achieved latency of FTSA/MC-FTSA/FTBAR schedules (MC-FTSA, with e(ε+1)
// messages instead of e(ε+1)², is expected to degrade least).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "ftsched/util/ids.hpp"

namespace ftsched {

enum class CommModelKind {
  kContentionFree,   ///< paper's model: unlimited parallel sends
  kOnePort,          ///< a processor sends one message at a time
  kBoundedMultiPort  ///< at most `ports` concurrent sends per processor
};

/// Stateful per-run send scheduler.  Given that a message of `duration`
/// time units becomes ready on `src` at `ready`, returns its arrival time
/// at the destination and books the required sender capacity.
class CommModel {
 public:
  virtual ~CommModel() = default;
  virtual double deliver(ProcId src, double ready, double duration) = 0;
  [[nodiscard]] virtual CommModelKind kind() const noexcept = 0;

  /// Restores the freshly-constructed state so one instance can serve many
  /// simulation runs without reallocating (contention-free models hold no
  /// state; ported models rewind their port-free times).  After reset() the
  /// model behaves exactly like a new make_comm_model product.
  virtual void reset() {}
};

struct CommModelOptions {
  CommModelKind kind = CommModelKind::kContentionFree;
  std::size_t ports = 2;  ///< only for kBoundedMultiPort
};

/// Fresh model instance for one simulation run over `proc_count` processors.
[[nodiscard]] std::unique_ptr<CommModel> make_comm_model(
    std::size_t proc_count, const CommModelOptions& options);

}  // namespace ftsched
