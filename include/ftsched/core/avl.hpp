// AVL-tree ordered multiset.
//
// The paper specifies that the free-task priority list α "is implemented by
// using a balanced search tree data structure (AVL)" with O(log ω) insert,
// erase and head extraction.  This is that structure: a self-balancing BST
// storing keys in ascending order; the scheduler's head H(α) is max().
//
// Nodes live in a contiguous arena (index-linked, with a free list) instead
// of one heap allocation per node, and insert/erase retrace the search path
// iteratively through an explicit stack — so the scheduling loop's
// insert/extract_max churn is allocation-free in steady state (freed slots
// are recycled) and never risks deep recursion.  The multiset semantics are
// unchanged from the pointer-based tree: equal keys go right on insert, and
// erase_one removes some occurrence of an equal key.
//
// Header-only template so tests can instantiate it with simple key types.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "ftsched/util/error.hpp"

namespace ftsched {

template <typename Key, typename Compare = std::less<Key>>
class AvlTree {
 public:
  AvlTree() = default;
  explicit AvlTree(Compare cmp) : cmp_(std::move(cmp)) {}

  [[nodiscard]] bool empty() const noexcept { return root_ == kNil; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  void insert(const Key& key) {
    const std::uint32_t node = allocate(key);
    ++size_;
    if (root_ == kNil) {
      root_ = node;
      return;
    }
    path_.clear();
    std::uint32_t cur = root_;
    for (;;) {
      // Equal keys go right: the multiset keeps duplicates.
      const bool left = cmp_(key, pool_[cur].key);
      path_.push_back(PathEntry{cur, left});
      const std::uint32_t next = left ? pool_[cur].left : pool_[cur].right;
      if (next == kNil) {
        (left ? pool_[cur].left : pool_[cur].right) = node;
        break;
      }
      cur = next;
    }
    retrace();
  }

  /// Removes one occurrence of `key`; returns false if absent.
  bool erase_one(const Key& key) {
    path_.clear();
    std::uint32_t cur = root_;
    while (cur != kNil) {
      if (cmp_(key, pool_[cur].key)) {
        path_.push_back(PathEntry{cur, true});
        cur = pool_[cur].left;
      } else if (cmp_(pool_[cur].key, key)) {
        path_.push_back(PathEntry{cur, false});
        cur = pool_[cur].right;
      } else {
        break;
      }
    }
    if (cur == kNil) return false;
    remove_node(cur);
    --size_;
    return true;
  }

  [[nodiscard]] bool contains(const Key& key) const {
    std::uint32_t n = root_;
    while (n != kNil) {
      if (cmp_(key, pool_[n].key)) {
        n = pool_[n].left;
      } else if (cmp_(pool_[n].key, key)) {
        n = pool_[n].right;
      } else {
        return true;
      }
    }
    return false;
  }

  /// Largest key. Precondition: !empty().
  [[nodiscard]] const Key& max() const {
    FTSCHED_REQUIRE(root_ != kNil, "max() on empty AVL tree");
    std::uint32_t n = root_;
    while (pool_[n].right != kNil) n = pool_[n].right;
    return pool_[n].key;
  }

  /// Smallest key. Precondition: !empty().
  [[nodiscard]] const Key& min() const {
    FTSCHED_REQUIRE(root_ != kNil, "min() on empty AVL tree");
    std::uint32_t n = root_;
    while (pool_[n].left != kNil) n = pool_[n].left;
    return pool_[n].key;
  }

  /// Removes and returns the largest key. Precondition: !empty().
  Key extract_max() {
    Key k = max();
    (void)erase_one(k);
    return k;
  }

  /// Drops every key.  The arena (and its capacity) is retained, so a
  /// cleared tree refills without allocating.
  void clear() noexcept {
    pool_.clear();
    free_.clear();
    root_ = kNil;
    size_ = 0;
  }

  ~AvlTree() = default;
  AvlTree(const AvlTree&) = delete;
  AvlTree& operator=(const AvlTree&) = delete;
  // Hand-written moves: vector moves empty the arena, so the scalar
  // root_/size_ must be reset too or the moved-from tree would index an
  // empty pool (the pointer-based tree's moved-from state was a safe
  // empty root; keep that contract).
  AvlTree(AvlTree&& other) noexcept
      : pool_(std::move(other.pool_)),
        free_(std::move(other.free_)),
        path_(std::move(other.path_)),
        root_(other.root_),
        size_(other.size_),
        cmp_(std::move(other.cmp_)) {
    other.root_ = kNil;
    other.size_ = 0;
  }
  AvlTree& operator=(AvlTree&& other) noexcept {
    if (this != &other) {
      pool_ = std::move(other.pool_);
      free_ = std::move(other.free_);
      path_ = std::move(other.path_);
      root_ = other.root_;
      size_ = other.size_;
      cmp_ = std::move(other.cmp_);
      other.root_ = kNil;
      other.size_ = 0;
    }
    return *this;
  }

  /// Keys in ascending order (testing / debugging).
  [[nodiscard]] std::vector<Key> to_sorted_vector() const {
    std::vector<Key> out;
    out.reserve(size_);
    // Explicit-stack in-order traversal over node indices.
    std::vector<std::uint32_t> stack;
    std::uint32_t n = root_;
    while (n != kNil || !stack.empty()) {
      while (n != kNil) {
        stack.push_back(n);
        n = pool_[n].left;
      }
      n = stack.back();
      stack.pop_back();
      out.push_back(pool_[n].key);
      n = pool_[n].right;
    }
    return out;
  }

  /// Arena slots currently allocated (live nodes + free-listed ones);
  /// exposed so tests can assert steady-state slot recycling.
  [[nodiscard]] std::size_t arena_size() const noexcept { return pool_.size(); }

  /// Validates BST ordering and the AVL balance invariant; throws on
  /// violation. Exposed for the test suite.
  void validate() const { (void)validate_node(root_); }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  struct Node {
    Key key;
    std::uint32_t left = kNil;
    std::uint32_t right = kNil;
    std::int32_t height = 1;
  };

  /// One step of a root-to-node search path: the node and the direction
  /// taken out of it (true = left).  AVL height is < 1.45·log2(n), so the
  /// reused path stack stays tiny.
  struct PathEntry {
    std::uint32_t node;
    bool left;
  };

  [[nodiscard]] std::uint32_t allocate(const Key& key) {
    if (!free_.empty()) {
      const std::uint32_t slot = free_.back();
      free_.pop_back();
      pool_[slot].key = key;
      pool_[slot].left = kNil;
      pool_[slot].right = kNil;
      pool_[slot].height = 1;
      return slot;
    }
    FTSCHED_REQUIRE(pool_.size() < kNil, "AVL arena exhausted");
    pool_.push_back(Node{key, kNil, kNil, 1});
    return static_cast<std::uint32_t>(pool_.size() - 1);
  }

  [[nodiscard]] std::int32_t height(std::uint32_t n) const noexcept {
    return n == kNil ? 0 : pool_[n].height;
  }
  [[nodiscard]] std::int32_t balance_factor(std::uint32_t n) const noexcept {
    return n == kNil ? 0 : height(pool_[n].left) - height(pool_[n].right);
  }
  void update_height(std::uint32_t n) noexcept {
    const std::int32_t hl = height(pool_[n].left);
    const std::int32_t hr = height(pool_[n].right);
    pool_[n].height = 1 + (hl > hr ? hl : hr);
  }

  [[nodiscard]] std::uint32_t rotate_right(std::uint32_t y) noexcept {
    const std::uint32_t x = pool_[y].left;
    pool_[y].left = pool_[x].right;
    update_height(y);
    pool_[x].right = y;
    update_height(x);
    return x;
  }

  [[nodiscard]] std::uint32_t rotate_left(std::uint32_t x) noexcept {
    const std::uint32_t y = pool_[x].right;
    pool_[x].right = pool_[y].left;
    update_height(x);
    pool_[y].left = x;
    update_height(y);
    return y;
  }

  [[nodiscard]] std::uint32_t rebalance(std::uint32_t n) noexcept {
    update_height(n);
    const std::int32_t bf = balance_factor(n);
    if (bf > 1) {
      if (balance_factor(pool_[n].left) < 0) {
        pool_[n].left = rotate_left(pool_[n].left);
      }
      return rotate_right(n);
    }
    if (bf < -1) {
      if (balance_factor(pool_[n].right) > 0) {
        pool_[n].right = rotate_right(pool_[n].right);
      }
      return rotate_left(n);
    }
    return n;
  }

  /// Walks path_ back to the root, rebalancing every node on it and
  /// rewiring the parent (or root) link — the iterative equivalent of the
  /// classic recursive return-path rebalance.
  void retrace() noexcept {
    for (std::size_t i = path_.size(); i-- > 0;) {
      const std::uint32_t updated = rebalance(path_[i].node);
      if (i == 0) {
        root_ = updated;
      } else {
        Node& parent = pool_[path_[i - 1].node];
        (path_[i - 1].left ? parent.left : parent.right) = updated;
      }
    }
  }

  /// Unlinks `cur` (whose ancestor path is in path_) and retraces.
  void remove_node(std::uint32_t cur) {
    if (pool_[cur].left != kNil && pool_[cur].right != kNil) {
      // Two children: take the in-order successor's key, then unlink the
      // successor (which has no left child) instead.
      path_.push_back(PathEntry{cur, false});
      std::uint32_t succ = pool_[cur].right;
      while (pool_[succ].left != kNil) {
        path_.push_back(PathEntry{succ, true});
        succ = pool_[succ].left;
      }
      pool_[cur].key = pool_[succ].key;
      cur = succ;
    }
    const std::uint32_t child =
        pool_[cur].left != kNil ? pool_[cur].left : pool_[cur].right;
    if (path_.empty()) {
      root_ = child;
    } else {
      Node& parent = pool_[path_.back().node];
      (path_.back().left ? parent.left : parent.right) = child;
    }
    free_.push_back(cur);
    retrace();
  }

  // Returns subtree height; throws if invariants are broken.  (Recursion
  // depth is the tree height, which the AVL invariant keeps logarithmic.)
  std::int32_t validate_node(std::uint32_t n) const {
    if (n == kNil) return 0;
    const std::int32_t hl = validate_node(pool_[n].left);
    const std::int32_t hr = validate_node(pool_[n].right);
    FTSCHED_REQUIRE(pool_[n].height == 1 + (hl > hr ? hl : hr),
                    "AVL node height is stale");
    FTSCHED_REQUIRE(hl - hr >= -1 && hl - hr <= 1,
                    "AVL balance factor out of range");
    if (pool_[n].left != kNil) {
      FTSCHED_REQUIRE(!cmp_(pool_[n].key, pool_[pool_[n].left].key),
                      "BST order violated (left)");
    }
    if (pool_[n].right != kNil) {
      FTSCHED_REQUIRE(!cmp_(pool_[pool_[n].right].key, pool_[n].key),
                      "BST order violated (right)");
    }
    return pool_[n].height;
  }

  std::vector<Node> pool_;          ///< arena: nodes linked by index
  std::vector<std::uint32_t> free_; ///< recycled arena slots
  std::vector<PathEntry> path_;     ///< reused retrace stack
  std::uint32_t root_ = kNil;
  std::size_t size_ = 0;
  Compare cmp_;
};

}  // namespace ftsched
