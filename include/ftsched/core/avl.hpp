// AVL-tree ordered multiset.
//
// The paper specifies that the free-task priority list α "is implemented by
// using a balanced search tree data structure (AVL)" with O(log ω) insert,
// erase and head extraction.  This is that structure: a self-balancing BST
// storing keys in ascending order; the scheduler's head H(α) is max().
//
// Header-only template so tests can instantiate it with simple key types.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "ftsched/util/error.hpp"

namespace ftsched {

template <typename Key, typename Compare = std::less<Key>>
class AvlTree {
 public:
  AvlTree() = default;
  explicit AvlTree(Compare cmp) : cmp_(std::move(cmp)) {}

  [[nodiscard]] bool empty() const noexcept { return root_ == nullptr; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  void insert(const Key& key) {
    root_ = insert_node(std::move(root_), key);
    ++size_;
  }

  /// Removes one occurrence of `key`; returns false if absent.
  bool erase_one(const Key& key) {
    bool erased = false;
    root_ = erase_node(std::move(root_), key, erased);
    if (erased) --size_;
    return erased;
  }

  [[nodiscard]] bool contains(const Key& key) const {
    const Node* n = root_.get();
    while (n != nullptr) {
      if (cmp_(key, n->key)) {
        n = n->left.get();
      } else if (cmp_(n->key, key)) {
        n = n->right.get();
      } else {
        return true;
      }
    }
    return false;
  }

  /// Largest key. Precondition: !empty().
  [[nodiscard]] const Key& max() const {
    FTSCHED_REQUIRE(root_ != nullptr, "max() on empty AVL tree");
    const Node* n = root_.get();
    while (n->right) n = n->right.get();
    return n->key;
  }

  /// Smallest key. Precondition: !empty().
  [[nodiscard]] const Key& min() const {
    FTSCHED_REQUIRE(root_ != nullptr, "min() on empty AVL tree");
    const Node* n = root_.get();
    while (n->left) n = n->left.get();
    return n->key;
  }

  /// Removes and returns the largest key. Precondition: !empty().
  Key extract_max() {
    Key k = max();
    (void)erase_one(k);
    return k;
  }

  void clear() noexcept {
    // Iterative teardown: the default recursive unique_ptr destruction can
    // overflow the stack on long chains.
    std::vector<NodePtr> pending;
    if (root_) pending.push_back(std::move(root_));
    while (!pending.empty()) {
      NodePtr n = std::move(pending.back());
      pending.pop_back();
      if (n->left) pending.push_back(std::move(n->left));
      if (n->right) pending.push_back(std::move(n->right));
    }
    size_ = 0;
  }

  ~AvlTree() { clear(); }
  AvlTree(const AvlTree&) = delete;
  AvlTree& operator=(const AvlTree&) = delete;
  AvlTree(AvlTree&&) noexcept = default;
  AvlTree& operator=(AvlTree&&) noexcept = default;

  /// Keys in ascending order (testing / debugging).
  [[nodiscard]] std::vector<Key> to_sorted_vector() const {
    std::vector<Key> out;
    out.reserve(size_);
    in_order(root_.get(), out);
    return out;
  }

  /// Validates BST ordering and the AVL balance invariant; throws on
  /// violation. Exposed for the test suite.
  void validate() const { (void)validate_node(root_.get()); }

 private:
  struct Node;
  using NodePtr = std::unique_ptr<Node>;

  struct Node {
    explicit Node(const Key& k) : key(k) {}
    Key key;
    NodePtr left;
    NodePtr right;
    int height = 1;
  };

  static int height(const Node* n) noexcept { return n ? n->height : 0; }
  static int balance_factor(const Node* n) noexcept {
    return n ? height(n->left.get()) - height(n->right.get()) : 0;
  }
  static void update_height(Node* n) noexcept {
    const int hl = height(n->left.get());
    const int hr = height(n->right.get());
    n->height = 1 + (hl > hr ? hl : hr);
  }

  static NodePtr rotate_right(NodePtr y) noexcept {
    NodePtr x = std::move(y->left);
    y->left = std::move(x->right);
    update_height(y.get());
    x->right = std::move(y);
    update_height(x.get());
    return x;
  }

  static NodePtr rotate_left(NodePtr x) noexcept {
    NodePtr y = std::move(x->right);
    x->right = std::move(y->left);
    update_height(x.get());
    y->left = std::move(x);
    update_height(y.get());
    return y;
  }

  static NodePtr rebalance(NodePtr n) noexcept {
    update_height(n.get());
    const int bf = balance_factor(n.get());
    if (bf > 1) {
      if (balance_factor(n->left.get()) < 0) {
        n->left = rotate_left(std::move(n->left));
      }
      return rotate_right(std::move(n));
    }
    if (bf < -1) {
      if (balance_factor(n->right.get()) > 0) {
        n->right = rotate_right(std::move(n->right));
      }
      return rotate_left(std::move(n));
    }
    return n;
  }

  NodePtr insert_node(NodePtr n, const Key& key) {
    if (!n) return std::make_unique<Node>(key);
    if (cmp_(key, n->key)) {
      n->left = insert_node(std::move(n->left), key);
    } else {
      // Equal keys go right: the multiset keeps duplicates.
      n->right = insert_node(std::move(n->right), key);
    }
    return rebalance(std::move(n));
  }

  NodePtr erase_node(NodePtr n, const Key& key, bool& erased) {
    if (!n) return nullptr;
    if (cmp_(key, n->key)) {
      n->left = erase_node(std::move(n->left), key, erased);
    } else if (cmp_(n->key, key)) {
      n->right = erase_node(std::move(n->right), key, erased);
    } else {
      erased = true;
      if (!n->left) return std::move(n->right);
      if (!n->right) return std::move(n->left);
      // Two children: replace with the in-order successor's key.
      Node* succ = n->right.get();
      while (succ->left) succ = succ->left.get();
      n->key = succ->key;
      bool dummy = false;
      n->right = erase_node(std::move(n->right), n->key, dummy);
    }
    return rebalance(std::move(n));
  }

  void in_order(const Node* n, std::vector<Key>& out) const {
    if (!n) return;
    in_order(n->left.get(), out);
    out.push_back(n->key);
    in_order(n->right.get(), out);
  }

  // Returns subtree height; throws if invariants are broken.
  int validate_node(const Node* n) const {
    if (!n) return 0;
    const int hl = validate_node(n->left.get());
    const int hr = validate_node(n->right.get());
    FTSCHED_REQUIRE(n->height == 1 + (hl > hr ? hl : hr),
                    "AVL node height is stale");
    FTSCHED_REQUIRE(hl - hr >= -1 && hl - hr <= 1,
                    "AVL balance factor out of range");
    if (n->left) {
      FTSCHED_REQUIRE(!cmp_(n->key, n->left->key), "BST order violated (left)");
    }
    if (n->right) {
      FTSCHED_REQUIRE(!cmp_(n->right->key, n->key),
                      "BST order violated (right)");
    }
    return n->height;
  }

  NodePtr root_;
  std::size_t size_ = 0;
  Compare cmp_;
};

}  // namespace ftsched
