// Polymorphic scheduler layer.
//
// A uniform `Scheduler` interface over the concrete algorithms (FTSA,
// MC-FTSA, FTBAR, HEFT, CPOP) plus a name → factory `SchedulerRegistry`
// with option-string parsing, so experiment drivers, benches, examples and
// the CLI select algorithms by spec strings like "ftsa:eps=2,prio=bl"
// instead of hard-coding per-algorithm calls.  New algorithms and ablation
// variants register in one place and become reachable from every consumer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "ftsched/core/cpop.hpp"
#include "ftsched/core/ftbar.hpp"
#include "ftsched/core/ftsa.hpp"
#include "ftsched/core/heft.hpp"
#include "ftsched/core/mc_ftsa.hpp"
#include "ftsched/core/schedule.hpp"
#include "ftsched/platform/cost_model.hpp"
#include "ftsched/util/spec.hpp"

namespace ftsched {

/// Abstract scheduling algorithm: maps a workload (cost model) to a
/// replicated schedule.  Implementations are immutable and reusable; one
/// instance may schedule many workloads (possibly concurrently, as `run`
/// is const and algorithms keep no mutable state).
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Canonical spec string, e.g. "ftsa:eps=2,prio=bl" (only non-default
  /// options are listed).  Round-trips through the registry:
  /// `create(s.name())->name() == s.name()`.
  [[nodiscard]] virtual std::string name() const = 0;

  /// One-line human-readable description of the configured algorithm.
  [[nodiscard]] virtual std::string describe() const = 0;

  /// Computes a schedule for the given workload.
  [[nodiscard]] virtual ReplicatedSchedule run(const CostModel& costs) const = 0;
};

using SchedulerPtr = std::unique_ptr<Scheduler>;

/// Scheduler option strings share the generic spec syntax (util/spec.hpp).
using SchedulerOptions = SpecOptions;

// ------------------------------------------------------------------ adapters

/// FTSA (paper §4.1) behind the Scheduler interface.
class FtsaScheduler final : public Scheduler {
 public:
  explicit FtsaScheduler(FtsaOptions options = {}) : options_(options) {}
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] ReplicatedSchedule run(const CostModel& costs) const override;
  [[nodiscard]] const FtsaOptions& options() const noexcept { return options_; }

 private:
  FtsaOptions options_;
};

/// MC-FTSA (paper §4.2) behind the Scheduler interface.
class McFtsaScheduler final : public Scheduler {
 public:
  explicit McFtsaScheduler(McFtsaOptions options = {}) : options_(options) {}
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] ReplicatedSchedule run(const CostModel& costs) const override;
  [[nodiscard]] const McFtsaOptions& options() const noexcept {
    return options_;
  }

 private:
  McFtsaOptions options_;
};

/// FTBAR (paper §5 competitor) behind the Scheduler interface.
class FtbarScheduler final : public Scheduler {
 public:
  explicit FtbarScheduler(FtbarOptions options = {}) : options_(options) {}
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] ReplicatedSchedule run(const CostModel& costs) const override;
  [[nodiscard]] const FtbarOptions& options() const noexcept {
    return options_;
  }

 private:
  FtbarOptions options_;
};

/// HEFT fault-free baseline behind the Scheduler interface.
class HeftScheduler final : public Scheduler {
 public:
  explicit HeftScheduler(HeftOptions options = {}) : options_(options) {}
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] ReplicatedSchedule run(const CostModel& costs) const override;
  [[nodiscard]] const HeftOptions& options() const noexcept { return options_; }

 private:
  HeftOptions options_;
};

/// CPOP fault-free baseline behind the Scheduler interface.
class CpopScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] ReplicatedSchedule run(const CostModel& costs) const override;
};

struct RandomPlacementOptions {
  std::size_t epsilon = 1;
  std::uint64_t seed = 0;
};

/// Random-placement control baseline: the FTSA engine (criticalness order,
/// all-pairs channels, eq. (1)/(3) timing) with the ε+1 target processors
/// drawn uniformly at random per task instead of minimizing finish time.
/// Still a valid ε-fault-tolerant schedule — it isolates how much of the
/// paper's performance comes from informed processor selection.
class RandomScheduler final : public Scheduler {
 public:
  explicit RandomScheduler(RandomPlacementOptions options = {})
      : options_(options) {}
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] ReplicatedSchedule run(const CostModel& costs) const override;
  [[nodiscard]] const RandomPlacementOptions& options() const noexcept {
    return options_;
  }

 private:
  RandomPlacementOptions options_;
};

// ------------------------------------------------------------------ registry

/// Name → factory registry of scheduling algorithms: a SpecRegistry over
/// SchedulerPtr (see util/spec.hpp for the spec syntax and error contract).
class SchedulerRegistry : public SpecRegistry<SchedulerPtr> {
 public:
  SchedulerRegistry() : SpecRegistry("scheduler") {}

  /// The process-wide registry, pre-populated with the five built-in
  /// algorithms plus the "mc-ftsa-paper" alias (enforcement disabled).
  [[nodiscard]] static SchedulerRegistry& global();
};

/// Creates a scheduler from `spec` through the global registry, filling
/// `defaults` (key → value) for keys the algorithm supports and the spec
/// leaves unset — the bridge between flag-style callers (the CLI's
/// --epsilon/--seed, the experiment runner's per-instance values) and
/// spec strings.
[[nodiscard]] SchedulerPtr make_scheduler(
    const std::string& spec,
    const std::vector<std::pair<std::string, std::string>>& defaults = {});

}  // namespace ftsched
