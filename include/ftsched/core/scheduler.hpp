// Polymorphic scheduler layer.
//
// A uniform `Scheduler` interface over the concrete algorithms (FTSA,
// MC-FTSA, FTBAR, HEFT, CPOP) plus a name → factory `SchedulerRegistry`
// with option-string parsing, so experiment drivers, benches, examples and
// the CLI select algorithms by spec strings like "ftsa:eps=2,prio=bl"
// instead of hard-coding per-algorithm calls.  New algorithms and ablation
// variants register in one place and become reachable from every consumer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "ftsched/core/cpop.hpp"
#include "ftsched/core/ftbar.hpp"
#include "ftsched/core/ftsa.hpp"
#include "ftsched/core/heft.hpp"
#include "ftsched/core/mc_ftsa.hpp"
#include "ftsched/core/schedule.hpp"
#include "ftsched/platform/cost_model.hpp"

namespace ftsched {

/// Abstract scheduling algorithm: maps a workload (cost model) to a
/// replicated schedule.  Implementations are immutable and reusable; one
/// instance may schedule many workloads (possibly concurrently, as `run`
/// is const and algorithms keep no mutable state).
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Canonical spec string, e.g. "ftsa:eps=2,prio=bl" (only non-default
  /// options are listed).  Round-trips through the registry:
  /// `create(s.name())->name() == s.name()`.
  [[nodiscard]] virtual std::string name() const = 0;

  /// One-line human-readable description of the configured algorithm.
  [[nodiscard]] virtual std::string describe() const = 0;

  /// Computes a schedule for the given workload.
  [[nodiscard]] virtual ReplicatedSchedule run(const CostModel& costs) const = 0;
};

using SchedulerPtr = std::unique_ptr<Scheduler>;

/// Parsed scheduler option string: the "eps=2,prio=bl" tail of a spec.
///
/// Purely syntactic — key validity is checked by the registry against the
/// algorithm's declared options, value validity by the adapter factories.
class SchedulerOptions {
 public:
  SchedulerOptions() = default;

  /// Parses "key=value,key=value" (empty string → no options).  Throws
  /// InvalidArgument on items without '=', empty keys, or duplicate keys.
  [[nodiscard]] static SchedulerOptions parse(const std::string& text);

  [[nodiscard]] bool has(const std::string& key) const;
  /// Sets `key` unless already present (CLI flag defaults).
  void set_default(const std::string& key, const std::string& value);
  void set(const std::string& key, const std::string& value);

  /// Raw value; throws InvalidArgument when absent.
  [[nodiscard]] const std::string& get(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const;
  [[nodiscard]] std::size_t get_size(const std::string& key,
                                     std::size_t fallback) const;
  [[nodiscard]] std::uint64_t get_u64(const std::string& key,
                                      std::uint64_t fallback) const;
  /// Accepts 0|1|false|true.
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  [[nodiscard]] std::vector<std::string> keys() const;
  [[nodiscard]] bool empty() const noexcept { return values_.empty(); }

  /// Canonical "k=v,k=v" rendition (keys sorted).
  [[nodiscard]] std::string to_string() const;

 private:
  std::map<std::string, std::string> values_;
};

// ------------------------------------------------------------------ adapters

/// FTSA (paper §4.1) behind the Scheduler interface.
class FtsaScheduler final : public Scheduler {
 public:
  explicit FtsaScheduler(FtsaOptions options = {}) : options_(options) {}
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] ReplicatedSchedule run(const CostModel& costs) const override;
  [[nodiscard]] const FtsaOptions& options() const noexcept { return options_; }

 private:
  FtsaOptions options_;
};

/// MC-FTSA (paper §4.2) behind the Scheduler interface.
class McFtsaScheduler final : public Scheduler {
 public:
  explicit McFtsaScheduler(McFtsaOptions options = {}) : options_(options) {}
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] ReplicatedSchedule run(const CostModel& costs) const override;
  [[nodiscard]] const McFtsaOptions& options() const noexcept {
    return options_;
  }

 private:
  McFtsaOptions options_;
};

/// FTBAR (paper §5 competitor) behind the Scheduler interface.
class FtbarScheduler final : public Scheduler {
 public:
  explicit FtbarScheduler(FtbarOptions options = {}) : options_(options) {}
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] ReplicatedSchedule run(const CostModel& costs) const override;
  [[nodiscard]] const FtbarOptions& options() const noexcept {
    return options_;
  }

 private:
  FtbarOptions options_;
};

/// HEFT fault-free baseline behind the Scheduler interface.
class HeftScheduler final : public Scheduler {
 public:
  explicit HeftScheduler(HeftOptions options = {}) : options_(options) {}
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] ReplicatedSchedule run(const CostModel& costs) const override;
  [[nodiscard]] const HeftOptions& options() const noexcept { return options_; }

 private:
  HeftOptions options_;
};

/// CPOP fault-free baseline behind the Scheduler interface.
class CpopScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] ReplicatedSchedule run(const CostModel& costs) const override;
};

// ------------------------------------------------------------------ registry

/// Name → factory registry of scheduling algorithms.
///
/// Spec syntax: `name[:key=value[,key=value...]]`.  Unknown names and
/// unknown option keys fail loudly with the known alternatives listed.
class SchedulerRegistry {
 public:
  using Factory = std::function<SchedulerPtr(const SchedulerOptions&)>;

  /// A declared option of a registered algorithm (drives validation and
  /// the CLI `list-algos` output).
  struct OptionSpec {
    std::string key;
    std::string default_value;
    std::string help;
  };

  struct Entry {
    std::string name;
    std::string summary;
    std::vector<OptionSpec> options;
    Factory factory;

    [[nodiscard]] bool supports(const std::string& key) const;
  };

  /// The process-wide registry, pre-populated with the five built-in
  /// algorithms plus the "mc-ftsa-paper" alias (enforcement disabled).
  [[nodiscard]] static SchedulerRegistry& global();

  /// Registers an algorithm; throws InvalidArgument on duplicate names.
  void add(Entry entry);

  [[nodiscard]] bool contains(const std::string& name) const;
  /// Throws InvalidArgument (listing known names) when absent.
  [[nodiscard]] const Entry& entry(const std::string& name) const;
  /// Registered names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

  /// Creates a scheduler from a full spec string ("ftsa:eps=2,prio=bl").
  [[nodiscard]] SchedulerPtr create(const std::string& spec) const;
  /// Creates a scheduler from a name and pre-parsed options.
  [[nodiscard]] SchedulerPtr create(const std::string& name,
                                    const SchedulerOptions& options) const;

  /// Splits a spec string into its name and option tail.
  static void split_spec(const std::string& spec, std::string& name,
                         std::string& option_text);

 private:
  std::map<std::string, Entry> entries_;
};

/// Creates a scheduler from `spec` through the global registry, filling
/// `defaults` (key → value) for keys the algorithm supports and the spec
/// leaves unset — the bridge between flag-style callers (the CLI's
/// --epsilon/--seed, the experiment runner's per-instance values) and
/// spec strings.
[[nodiscard]] SchedulerPtr make_scheduler(
    const std::string& spec,
    const std::vector<std::pair<std::string, std::string>>& defaults = {});

}  // namespace ftsched
