// Communication awareness of the scheduling engine (paper §7 future work).
//
// The paper schedules under the contention-free model and only names
// one-port / bounded multi-port models as future work.  When awareness is
// enabled, the engine books outgoing-message *send ports* per processor
// while it schedules: every committed channel occupies a port of its
// source processor for the message's duration, and the eq.-(1) arrival
// estimates query the port state.  Schedules then adapt to serialization —
// favouring co-location and less message fan-out — and execute markedly
// better under the matching simulator contention model
// (sim/comm_model.hpp; see bench_ablation_commaware).
#pragma once

#include <cstddef>

namespace ftsched {

struct CommAwareness {
  /// Send ports per processor. 0 = contention-free (the paper's model);
  /// 1 = one-port; k > 1 = bounded multi-port.
  std::size_t ports = 0;

  [[nodiscard]] bool enabled() const noexcept { return ports > 0; }
};

}  // namespace ftsched
