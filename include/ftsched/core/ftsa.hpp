// FTSA — Fault Tolerant Scheduling Algorithm (paper §4.1, Algorithm 4.1).
//
// Greedy list scheduling driven by task criticalness (dynamic top level +
// static bottom level).  Each selected task is replicated onto the ε+1
// processors minimizing its eq.-(1) finish time, which tolerates ε
// arbitrary fail-silent processor failures (Theorem 4.1).  The resulting
// schedule carries both the failure-free lower bound M* (eq. 2) and the
// guaranteed upper bound M (eq. 4).
#pragma once

#include <cstddef>
#include <cstdint>

#include "ftsched/core/comm_awareness.hpp"
#include "ftsched/core/schedule.hpp"
#include "ftsched/platform/cost_model.hpp"

namespace ftsched {

/// Free-task priority (ablation knob; the paper uses kCriticalness).
enum class FtsaPriority {
  kCriticalness,  ///< tℓ(t) + bℓ(t), the paper's §4.1 definition
  kBottomLevel,   ///< bℓ(t) only (static priority)
  kRandom,        ///< uniformly random order (control)
};

struct FtsaOptions {
  /// ε: number of fail-silent processor failures to tolerate.
  /// Requires epsilon + 1 <= number of processors.  epsilon == 0 yields the
  /// paper's "fault free" (no-replication) schedule.
  std::size_t epsilon = 1;
  /// Seed for the random tie-breaking in the priority list α.
  std::uint64_t seed = 0;
  FtsaPriority priority = FtsaPriority::kCriticalness;
  /// Contention awareness of the arrival estimates (default: the paper's
  /// contention-free model). See core/comm_awareness.hpp.
  CommAwareness comm;
};

/// Runs FTSA on the given workload. Complexity O(e·m² + v·log ω).
[[nodiscard]] ReplicatedSchedule ftsa_schedule(const CostModel& costs,
                                               const FtsaOptions& options = {});

}  // namespace ftsched
