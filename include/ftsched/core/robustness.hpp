// Post-hoc fault-tolerance analysis of replicated schedules.
//
// Complements the exhaustive simulator-based validator: instead of
// simulating C(m, ε) crash subsets, this analyzes the channel structure
// directly via *kill sets* — for each replica, the set of processors whose
// individual failure prevents it from ever producing output (its own
// processor, plus failures propagated through its input channels).
//
// For a (replica, edge) pair with channel sources S the edge is starved by
// a single crash of q iff q starves every source, i.e. q ∈ ∩_{s∈S} kill(s).
// This makes the single-crash analysis *exact* for any channel structure
// (FTSA, MC-FTSA with or without repair, FTBAR with duplication).
//
// For ε ≥ 2 the analysis provides a *certificate*: if within every task the
// replica kill sets are pairwise disjoint and every multi-channel
// (replica, edge) pair has at least ε+1 sources with pairwise-disjoint kill
// sets, then no set of ≤ ε crashes can kill any task (Theorem 4.1 holds).
// Schedules produced by FTSA and by MC-FTSA with enforcement satisfy the
// certificate by construction.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "ftsched/core/schedule.hpp"

namespace ftsched {

enum class RobustnessVerdict {
  /// Certified: no ≤ ε crash set can kill any task.
  kCertifiedRobust,
  /// A single processor crash kills some task outright (witness below).
  kSingleCrashFatal,
  /// No single fatal processor, but the ε-robustness certificate does not
  /// apply (a coalition of 2..ε crashes might still kill a task; use the
  /// exhaustive validator to decide).
  kInconclusive,
};

struct RobustnessReport {
  RobustnessVerdict verdict = RobustnessVerdict::kInconclusive;
  /// Processors whose lone failure kills at least one task.
  std::vector<ProcId> fatal_processors;
  /// One (task, processor) witness per fatal processor, aligned with
  /// fatal_processors.
  std::vector<TaskId> fatal_tasks;
  /// Tasks whose replica kill sets overlap pairwise (vulnerable to some
  /// 2..ε coalition even if no single crash is fatal).
  std::vector<TaskId> overlapping_tasks;
  /// Human-readable summary.
  [[nodiscard]] std::string summary() const;
};

/// Analyzes `schedule` against its own ε. O(v·(ε+1)²·m/64 + channels).
[[nodiscard]] RobustnessReport analyze_robustness(
    const ReplicatedSchedule& schedule);

}  // namespace ftsched
