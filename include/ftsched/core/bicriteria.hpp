// Bi-criteria drivers (paper §4.3).
//
// Three modes beyond plain FTSA (latency minimized for fixed ε):
//  1. latency fixed → maximize the number of supported failures ε, by
//     linear scan or binary search over ε;
//  2. both fixed → per-task deadlines d(ti) computed in reverse topological
//     order; scheduling aborts as soon as a task provably misses d(ti),
//     detecting infeasibility early on very large graphs;
//  3. the deadline computation itself, exposed for tests and tooling.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "ftsched/core/ftsa.hpp"
#include "ftsched/core/schedule.hpp"

namespace ftsched {

/// Which schedule bound must meet the latency target.
enum class LatencyBound {
  kLower,  ///< M* (eq. 2): latency promised when nothing fails
  kUpper,  ///< M  (eq. 4): latency guaranteed under <= ε failures
};

struct MaxFailuresResult {
  std::size_t epsilon = 0;   ///< largest supported failure count
  double lower_bound = 0.0;  ///< M* of the retained schedule
  double upper_bound = 0.0;  ///< M of the retained schedule
  std::size_t schedules_computed = 0;  ///< FTSA invocations performed
};

/// Maximizes ε such that the FTSA schedule's `bound` stays <= `latency`.
/// Returns nullopt when even ε = 0 misses the target.  `binary_search`
/// selects the §4.3 bisection (O(log m) FTSA runs) over the linear scan;
/// both assume the bound is non-decreasing in ε (true in practice, and the
/// linear scan stops at the first violation either way).
[[nodiscard]] std::optional<MaxFailuresResult> max_supported_failures(
    const CostModel& costs, double latency,
    LatencyBound bound = LatencyBound::kUpper, const FtsaOptions& base = {},
    bool binary_search = true);

/// §4.3 deadlines: d(ti) = L for exit tasks, otherwise
/// min over successors tj of { d(tj) − E*(tj) − W*(ti,tj) }, with E* the
/// average execution time on the task's ε+1 fastest processors and W* the
/// average communication cost over the ε+1 fastest links.
[[nodiscard]] std::vector<double> task_deadlines(const CostModel& costs,
                                                 double latency,
                                                 std::size_t epsilon);

/// FTSA with both criteria fixed: schedules under the deadlines above and
/// returns nullopt as soon as some task provably misses its deadline
/// ("Failed to satisfy both criteria simultaneously").
[[nodiscard]] std::optional<ReplicatedSchedule> ftsa_schedule_with_deadline(
    const CostModel& costs, double latency, const FtsaOptions& options = {});

}  // namespace ftsched
