// Maximum bipartite matching (Hopcroft–Karp).
//
// MC-FTSA's optimal channel selector (paper §4.2) binary-searches a weight
// threshold T and, at each probe, asks whether the bipartite channel graph
// restricted to edges of weight <= T admits a matching saturating every
// left node.  Hopcroft–Karp answers each probe in O(E·sqrt(V)).
#pragma once

#include <cstddef>
#include <vector>

namespace ftsched {

/// A bipartite graph with `left_count` left and `right_count` right nodes;
/// adjacency is left -> list of right indices.
class BipartiteGraph {
 public:
  BipartiteGraph(std::size_t left_count, std::size_t right_count);

  void add_edge(std::size_t left, std::size_t right);

  [[nodiscard]] std::size_t left_count() const noexcept { return adj_.size(); }
  [[nodiscard]] std::size_t right_count() const noexcept {
    return right_count_;
  }
  [[nodiscard]] const std::vector<std::size_t>& neighbors(
      std::size_t left) const {
    return adj_[left];
  }

 private:
  std::vector<std::vector<std::size_t>> adj_;
  std::size_t right_count_;
};

/// Result of a maximum matching: `pair_of_left[l]` is the matched right
/// node of left node l, or kUnmatched.
struct Matching {
  static constexpr std::size_t kUnmatched = static_cast<std::size_t>(-1);
  std::vector<std::size_t> pair_of_left;
  std::vector<std::size_t> pair_of_right;
  std::size_t size = 0;

  [[nodiscard]] bool saturates_left() const noexcept {
    return size == pair_of_left.size();
  }
};

/// Hopcroft–Karp maximum matching. O(E·sqrt(V)).
[[nodiscard]] Matching hopcroft_karp(const BipartiteGraph& g);

}  // namespace ftsched
