// Online rescheduling policies: the schedule→simulate inversion.
//
// The static pipeline commits a full fault-tolerant schedule offline and
// replays failures against it.  The online mode inverts that boundary: the
// simulator owns the loop and, on every crash and repair event, calls back
// into a ReschedulePolicy that may remap not-yet-started replicas onto
// surviving processors.  Policies are selected by spec strings on the
// shared util/spec.hpp seam (`none`, `requeue-heft:`, `reactive-ftsa:`) and
// become a sweep dimension in experiments/.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "ftsched/core/schedule.hpp"
#include "ftsched/util/ids.hpp"
#include "ftsched/util/spec.hpp"

namespace ftsched {

/// A decision point in an online run.
struct OnlineEvent {
  enum class Kind { kCrash, kRepair };
  Kind kind = Kind::kCrash;
  std::size_t proc = 0;
  double time = 0.0;
};

/// One remapping decision: replica `replica` of `task` (which must still be
/// pending) moves to processor `to`, where it will take `duration` time
/// units.  The policy computes `duration` from the cost model — the
/// simulator itself stays cost-model-free.
struct ReplicaMove {
  TaskId task;
  std::size_t replica = 0;
  ProcId to;
  double duration = 0.0;
};

/// The simulator state a policy may observe at a decision point.  All
/// queries reflect the *current* (post-event) dynamic state, including the
/// effect of earlier moves.
class OnlineView {
 public:
  virtual ~OnlineView() = default;

  [[nodiscard]] virtual std::size_t proc_count() const = 0;
  /// False while `p` is crashed (before its repair, if any).
  [[nodiscard]] virtual bool alive(std::size_t p) const = 0;
  /// True iff the replica has not started, died, or been cancelled —
  /// only pending replicas may move.
  [[nodiscard]] virtual bool pending(TaskId t, std::size_t replica) const = 0;
  /// The processor currently hosting the replica (after any moves).
  [[nodiscard]] virtual std::size_t proc_of(TaskId t,
                                            std::size_t replica) const = 0;
  /// Finish time of the replica running on `p`, or 0 when idle; policies
  /// max() this with the event time to get the processor's availability.
  [[nodiscard]] virtual double backlog(std::size_t p) const = 0;
  /// Appends `p`'s pending replicas in queue order.
  virtual void pending_on(
      std::size_t p,
      std::vector<std::pair<TaskId, std::size_t>>& out) const = 0;
  /// True iff `p` hosts a non-lost (pending, running or completed) replica
  /// of `t` — used to keep a task's replicas on distinct processors.
  [[nodiscard]] virtual bool hosts_live_replica(TaskId t,
                                                std::size_t p) const = 0;
};

/// Policy callback invoked by ScheduleSimulator::run_online on every crash
/// and repair event.
class ReschedulePolicy {
 public:
  virtual ~ReschedulePolicy() = default;

  /// Canonical spec string (round-trips through the registry).
  [[nodiscard]] virtual std::string spec() const = 0;

  /// Binds the policy to a schedule before any run: memoised bottom levels,
  /// replica layout, cost model.  The schedule must outlive the binding.
  virtual void prepare(const ReplicatedSchedule& schedule) { (void)schedule; }

  /// Called at the start of every simulation run.
  virtual void begin_run() {}

  /// The decision point: after the simulator applied `event`'s direct
  /// consequences (killed the running replica on a crashed processor,
  /// marked the processor alive again on repair), append moves of pending
  /// replicas onto live processors.  Moves are applied in emitted order.
  virtual void on_event(const OnlineView& view, const OnlineEvent& event,
                        std::vector<ReplicaMove>& moves) = 0;

  /// True for the no-op policy: the simulator then keeps the static
  /// semantics (crashed processors never come back, stranded replicas die).
  [[nodiscard]] virtual bool is_noop() const { return false; }
};

using ReschedulePolicyPtr = std::unique_ptr<ReschedulePolicy>;

/// Spec-string registry of rescheduling policies:
///
///   none                 keep the static schedule (the degenerate case)
///   requeue-heft         on each crash, greedily remap the crashed
///                        processor's stranded pending replicas onto the
///                        survivor minimizing earliest finish, in
///                        descending bottom-level (HEFT) order
///   reactive-ftsa        on each crash *and* repair, re-run the list
///                        engine's greedy earliest-finish placement over
///                        all pending replicas on the survivor platform
class PolicyRegistry : public SpecRegistry<ReschedulePolicyPtr> {
 public:
  PolicyRegistry();
  /// The process-wide registry with the built-in policies.
  [[nodiscard]] static const PolicyRegistry& global();
};

/// Creates a policy from a spec string via the global registry.
[[nodiscard]] ReschedulePolicyPtr make_reschedule_policy(
    const std::string& spec);

}  // namespace ftsched
