// Task priority computations (paper §4.1).
//
// The static bottom level bℓ(t) is the length of the longest path from t to
// an exit task, counting average execution times E̅ and average
// communication costs W̅ = V·d̅.  The dynamic top level tℓ(t) depends on the
// partial mapping and is computed inside the scheduling loops; this header
// provides the static quantities shared by FTSA, FTBAR and HEFT.
#pragma once

#include <vector>

#include "ftsched/platform/cost_model.hpp"

namespace ftsched {

/// bℓ(t) for every task: bℓ(t) = E̅(t) if Γ⁺(t) = ∅, otherwise
/// max over successors t* of { E̅(t) + W̅(t,t*) + bℓ(t*) }.
///
/// Memoised per thread on CostModel::revision(): repeated calls for the
/// same (unmutated) cost model — e.g. the five scheduler passes of one
/// instance evaluation — skip the graph traversal and return a copy of the
/// cached vector.
[[nodiscard]] std::vector<double> bottom_levels(const CostModel& costs);

/// Static top level: tℓ̄(t) = 0 for entry tasks, otherwise
/// max over predecessors t* of { tℓ̄(t*) + E̅(t*) + W̅(t*,t) }.
/// (Average-cost analogue used by tests and ablations; the scheduling loops
/// use the dynamic, mapping-aware tℓ.)
[[nodiscard]] std::vector<double> static_top_levels(const CostModel& costs);

/// HEFT's upward rank: identical recursion to bℓ (kept as an alias with the
/// standard name so HEFT reads like the literature).
[[nodiscard]] inline std::vector<double> upward_ranks(const CostModel& costs) {
  return bottom_levels(costs);
}

}  // namespace ftsched
