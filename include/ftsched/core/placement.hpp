// Incremental greedy-placement state shared by the list engine and the
// online rescheduling policies.
//
// Both consumers track "when does each processor become free" and pick
// targets by the same earliest-finish rule: finish(p) = max(ready(p),
// earliest(p)) + exec(p), ties broken toward the lower processor index (the
// engine's stable-sort order).  Factoring the state out of
// src/core/engine.cpp lets a policy maintain it incrementally across events
// instead of rebuilding it from the schedule on every crash.
#pragma once

#include <cstddef>
#include <vector>

namespace ftsched {

/// Per-processor availability (the engine's `ready` array) plus the shared
/// earliest-finish selection rule.
class ProcReadyState {
 public:
  ProcReadyState() = default;
  explicit ProcReadyState(std::size_t proc_count) : ready_(proc_count, 0.0) {}

  void reset(std::size_t proc_count) { ready_.assign(proc_count, 0.0); }

  [[nodiscard]] std::size_t size() const noexcept { return ready_.size(); }
  [[nodiscard]] double ready(std::size_t p) const { return ready_[p]; }

  /// Commits a placement: processor `p` is busy until `finish`.
  void commit(std::size_t p, double finish) { ready_[p] = finish; }

  /// Raises `p`'s availability to at least `t` (external backlog).
  void raise(std::size_t p, double t) {
    if (t > ready_[p]) ready_[p] = t;
  }

  /// The earliest-finish processor among those `eligible(p)` admits:
  /// finish(p) = max(ready(p), earliest(p)) + exec(p).  Ties break to the
  /// lower index.  Returns size() when no processor is eligible; the chosen
  /// finish time lands in *out_finish when non-null.
  template <typename Eligible, typename Earliest, typename Exec>
  [[nodiscard]] std::size_t best_finish(Eligible&& eligible,
                                        Earliest&& earliest, Exec&& exec,
                                        double* out_finish = nullptr) const {
    std::size_t best = ready_.size();
    double best_time = 0.0;
    for (std::size_t p = 0; p < ready_.size(); ++p) {
      if (!eligible(p)) continue;
      const double at = earliest(p);
      const double finish = (ready_[p] > at ? ready_[p] : at) + exec(p);
      if (best == ready_.size() || finish < best_time) {
        best = p;
        best_time = finish;
      }
    }
    if (best != ready_.size() && out_finish != nullptr) {
      *out_finish = best_time;
    }
    return best;
  }

 private:
  std::vector<double> ready_;
};

}  // namespace ftsched
