// CPOP — Critical-Path-On-a-Processor (Topcuoglu, Hariri, Wu).
//
// Second classic fault-free baseline besides HEFT: tasks are prioritized
// by upward + downward rank; the tasks of the critical path are all pinned
// to the single processor that minimizes the path's total execution time,
// every other task is mapped by insertion-based earliest finish time.
// Useful for ablations of FTSA's ε = 0 behaviour.
#pragma once

#include "ftsched/core/schedule.hpp"
#include "ftsched/platform/cost_model.hpp"

namespace ftsched {

/// Runs CPOP; returns a ReplicatedSchedule with ε = 0.
[[nodiscard]] ReplicatedSchedule cpop_schedule(const CostModel& costs);

}  // namespace ftsched
