// MC-FTSA — Minimum Communications FTSA (paper §4.2).
//
// Same scheduling loop as FTSA, but each precedence edge is realized by
// only ε+1 channels instead of (ε+1)²: for every predecessor, a bipartite
// channel graph is built between the predecessor's replicas and the newly
// chosen processors, internal (co-located) channels are forced, and a
// one-to-one channel set is selected.  Prop. 4.3 shows any such set
// survives ε failures.  Two selectors are provided:
//  * kGreedy — internal channels first, then channels by non-decreasing
//    completion estimate (the selector used in the paper's experiments);
//  * kBinarySearchMatching — binary search on the bottleneck weight with a
//    Hopcroft–Karp feasibility probe (the polynomial optimal selector).
#pragma once

#include <cstddef>
#include <cstdint>

#include "ftsched/core/comm_awareness.hpp"
#include "ftsched/core/schedule.hpp"
#include "ftsched/platform/cost_model.hpp"

namespace ftsched {

enum class McSelector {
  kGreedy,
  kBinarySearchMatching,
};

struct McFtsaOptions {
  std::size_t epsilon = 1;
  std::uint64_t seed = 0;
  McSelector selector = McSelector::kGreedy;
  /// Enforce end-to-end ε-fault-tolerance (Theorem 4.1).
  ///
  /// The paper's Prop. 4.3 guarantees that each *edge* keeps a live
  /// channel under ε failures, but with several predecessors one processor
  /// can be the selected source of two different replicas via two
  /// different edges, so a single crash may starve every replica of a task
  /// — our exhaustive validator finds such counterexamples (see DESIGN.md).
  /// When true (default), the scheduler tracks per-replica kill sets and
  /// locally reverts a vulnerable task's inbound channels to the full
  /// channel set, restoring the theorem at the cost of a few extra
  /// messages; repaired tasks are reported via
  /// ReplicatedSchedule::repaired_tasks().  Set to false for the
  /// paper-faithful (but unsound) selection.
  bool enforce_fault_tolerance = true;
  /// Contention awareness of the arrival estimates (default: the paper's
  /// contention-free model). See core/comm_awareness.hpp.
  CommAwareness comm;
};

/// Runs MC-FTSA. With enforcement disabled (or no repairs needed) the
/// schedule satisfies channel_count() == e·(ε+1).
[[nodiscard]] ReplicatedSchedule mc_ftsa_schedule(
    const CostModel& costs, const McFtsaOptions& options = {});

}  // namespace ftsched
