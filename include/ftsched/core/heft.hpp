// HEFT — Heterogeneous Earliest Finish Time (Topcuoglu et al.).
//
// Not part of the paper, but the de-facto fault-free list-scheduling
// baseline on heterogeneous platforms; included so ablations can compare
// the paper's "fault free FTSA" (ε = 0, no back-filling) against an
// insertion-based scheduler.  Produces a ReplicatedSchedule with ε = 0.
#pragma once

#include <cstdint>

#include "ftsched/core/schedule.hpp"
#include "ftsched/platform/cost_model.hpp"

namespace ftsched {

struct HeftOptions {
  /// Use insertion-based earliest-finish-time (the classic HEFT policy);
  /// when false, tasks are appended after the processor's last replica.
  bool insertion = true;
};

/// Runs HEFT: tasks in non-increasing upward-rank order, each mapped to the
/// processor minimizing its (insertion-based) earliest finish time.
[[nodiscard]] ReplicatedSchedule heft_schedule(const CostModel& costs,
                                               const HeftOptions& options = {});

}  // namespace ftsched
