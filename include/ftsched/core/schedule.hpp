// Fault-tolerant (replicated) schedule representation (paper §4).
//
// Every task is mapped onto ε+1 distinct processors (its *replicas*); each
// precedence edge is realized by explicit *channels* between replicas.
// FTSA materializes all replica pairs (minus the intra-processor shortcut);
// MC-FTSA keeps exactly one inbound channel per replica per edge.
//
// Each replica carries two time pairs:
//  * (start, finish)       — the failure-free (lower-bound) timeline, eq. (1);
//  * (pess_start, pess_finish) — the all-messages-late timeline, eq. (3),
//    whose maximum over exit replicas is the guaranteed upper bound M.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "ftsched/platform/cost_model.hpp"
#include "ftsched/util/ids.hpp"

namespace ftsched {

struct Replica {
  ProcId proc;
  double start = 0.0;
  double finish = 0.0;
  double pess_start = 0.0;
  double pess_finish = 0.0;
};

/// A realized communication: replica `src_replica` of edge.src sends the
/// edge's data to replica `dst_replica` of edge.dst.
struct Channel {
  std::size_t src_replica = 0;
  std::size_t dst_replica = 0;
};

/// One replica's slot in a processor timeline.
struct PlacedReplica {
  TaskId task;
  std::size_t replica = 0;
  double start = 0.0;
  double finish = 0.0;
};

class ReplicatedSchedule {
 public:
  ReplicatedSchedule(const CostModel& costs, std::size_t epsilon,
                     std::string algorithm);

  [[nodiscard]] const CostModel& costs() const noexcept { return *costs_; }
  [[nodiscard]] const TaskGraph& graph() const noexcept {
    return costs_->graph();
  }
  [[nodiscard]] const Platform& platform() const noexcept {
    return costs_->platform();
  }

  /// Number of failures tolerated; every task has epsilon()+1 replicas.
  [[nodiscard]] std::size_t epsilon() const noexcept { return epsilon_; }
  [[nodiscard]] std::size_t replica_count() const noexcept {
    return epsilon_ + 1;
  }
  [[nodiscard]] const std::string& algorithm() const noexcept {
    return algorithm_;
  }

  /// Registers the replicas of `t` (must be called once per task, replicas
  /// on pairwise-distinct processors). Also appends to processor timelines.
  /// At least ε+1 replicas are required; algorithms using duplication
  /// (FTBAR's minimize-start-time) may register more.
  void place_task(TaskId t, std::vector<Replica> replicas);

  /// Registers the channels realizing graph edge `edge_index`.
  void set_channels(std::size_t edge_index, std::vector<Channel> channels);

  [[nodiscard]] bool is_placed(TaskId t) const {
    return !replicas_[t.index()].empty();
  }
  [[nodiscard]] const std::vector<Replica>& replicas(TaskId t) const {
    return replicas_[t.index()];
  }
  [[nodiscard]] const std::vector<Channel>& channels(
      std::size_t edge_index) const {
    return channels_[edge_index];
  }
  [[nodiscard]] const std::vector<PlacedReplica>& timeline(ProcId p) const {
    return timeline_[p.index()];
  }

  /// Lower bound M* (eq. 2): latency if no processor fails.
  [[nodiscard]] double lower_bound() const;
  /// Upper bound M (eq. 4): guaranteed latency under <= ε failures.
  [[nodiscard]] double upper_bound() const;

  /// Total number of inter-processor messages (intra-processor channels are
  /// free and not counted). FTSA ~ e(ε+1)², MC-FTSA <= e(ε+1).
  [[nodiscard]] std::size_t interproc_message_count() const;
  /// All realized channels, including intra-processor ones.
  [[nodiscard]] std::size_t channel_count() const;

  /// The paper's v×m binary mapping matrix X (row-major).
  [[nodiscard]] std::vector<char> mapping_matrix() const;

  /// Tasks whose channels were repaired by MC-FTSA's end-to-end
  /// fault-tolerance enforcement (see mc_ftsa.hpp); empty for other
  /// algorithms or when no repair was needed.
  [[nodiscard]] const std::vector<TaskId>& repaired_tasks() const noexcept {
    return repaired_;
  }
  void set_repaired_tasks(std::vector<TaskId> tasks) {
    repaired_ = std::move(tasks);
  }

  /// Structural + temporal validation; throws Error with a diagnostic when
  /// any invariant is violated:
  ///  * every task placed, exactly ε+1 replicas on distinct processors
  ///    (Prop. 4.1);
  ///  * replicas on one processor do not overlap in time;
  ///  * execution times match the cost model;
  ///  * every replica has >= 1 inbound channel per incoming edge, and its
  ///    start is >= the earliest channel arrival (failure-free times);
  ///  * pessimistic times dominate failure-free times.
  void validate() const;

 private:
  const CostModel* costs_;
  std::size_t epsilon_;
  std::string algorithm_;
  std::vector<std::vector<Replica>> replicas_;   // per task
  std::vector<std::vector<Channel>> channels_;   // per edge
  std::vector<std::vector<PlacedReplica>> timeline_;  // per processor
  std::vector<TaskId> repaired_;
};

}  // namespace ftsched
