// FTBAR — Fault Tolerance Based Active Replication (paper §5; Girault,
// Kalla, Sighireanu, Sorel, DSN'03).
//
// The paper's direct competitor, reimplemented from the §5 description.
// At each step, for every free task ti and processor pj the *schedule
// pressure* σ(ti, pj) = S(ti, pj) + s(ti) − R is evaluated (S: earliest
// start of ti on pj; s: static latest-start bottom level; R: current
// schedule length).  Each free task keeps its Npf+1 minimum-pressure
// processors; the free task whose kept set is most *urgent* (maximum σ)
// is scheduled on all of them.  Complexity O(P·N³): the full pressure
// table is recomputed every step — this is the complexity gap Table 1
// demonstrates against FTSA.
//
// The recursive Minimize-Start-Time duplication of Ahmad & Kwok is
// implemented one level deep: after the processors are chosen, the
// predecessor whose message dominates a replica's start time is duplicated
// onto that processor when this strictly lowers the start.
#pragma once

#include <cstddef>
#include <cstdint>

#include "ftsched/core/schedule.hpp"
#include "ftsched/platform/cost_model.hpp"

namespace ftsched {

struct FtbarOptions {
  /// Npf: number of failures tolerated (each task gets Npf+1 replicas).
  std::size_t npf = 1;
  /// Seed for random tie-breaking among equally urgent tasks.
  std::uint64_t seed = 0;
  /// Enable the one-level minimize-start-time duplication.
  bool use_minimize_start_time = true;
};

/// Runs FTBAR. Channels are materialized all-pairs (with the intra-processor
/// shortcut), as the original algorithm does not minimize communications.
[[nodiscard]] ReplicatedSchedule ftbar_schedule(
    const CostModel& costs, const FtbarOptions& options = {});

}  // namespace ftsched
