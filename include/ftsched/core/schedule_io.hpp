// Serialization of replicated schedules.
//
// Text format (line oriented, '#' comments allowed):
//   schedule <algorithm> <epsilon>
//   replica <task> <proc> <start> <finish> <pess_start> <pess_finish>
//   channel <edge-index> <src-replica> <dst-replica>
//   repaired <task>
//
// Reading requires the cost model the schedule was built against (the
// format stores no graph/platform data); `read_schedule` cross-checks the
// replica durations against it via ReplicatedSchedule::validate().
//
// The JSON export (with optional execution results) lives in
// ftsched/sim/trace.hpp, next to the other trace emitters.
#pragma once

#include <iosfwd>
#include <string>

#include "ftsched/core/schedule.hpp"

namespace ftsched {

void write_schedule(std::ostream& os, const ReplicatedSchedule& schedule);
[[nodiscard]] std::string schedule_to_string(
    const ReplicatedSchedule& schedule);

/// Parses the text format; `validate` controls whether the reloaded
/// schedule is checked against `costs` before returning.
[[nodiscard]] ReplicatedSchedule read_schedule(std::istream& is,
                                               const CostModel& costs,
                                               bool validate = true);
[[nodiscard]] ReplicatedSchedule schedule_from_string(const std::string& text,
                                                      const CostModel& costs,
                                                      bool validate = true);

}  // namespace ftsched
