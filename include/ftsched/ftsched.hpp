// Umbrella header: pulls in the whole public API.
//
// Fine-grained headers remain available under ftsched/<module>/ for
// builds that care about compile times.
#pragma once

// util: deterministic RNG, statistics, ids, CLI, specs, tables, logging,
// timing, parallel execution.
#include "ftsched/util/cli.hpp"
#include "ftsched/util/error.hpp"
#include "ftsched/util/ids.hpp"
#include "ftsched/util/jsonl.hpp"
#include "ftsched/util/log.hpp"
#include "ftsched/util/net.hpp"
#include "ftsched/util/parallel.hpp"
#include "ftsched/util/rng.hpp"
#include "ftsched/util/spec.hpp"
#include "ftsched/util/stats.hpp"
#include "ftsched/util/subprocess.hpp"
#include "ftsched/util/table.hpp"
#include "ftsched/util/timer.hpp"

// dag: task graphs and analyses.
#include "ftsched/dag/analysis.hpp"
#include "ftsched/dag/dot.hpp"
#include "ftsched/dag/graph.hpp"
#include "ftsched/dag/serialize.hpp"

// platform: processors, costs, failures.
#include "ftsched/platform/cost_model.hpp"
#include "ftsched/platform/failure.hpp"
#include "ftsched/platform/generator.hpp"
#include "ftsched/platform/platform.hpp"

// workload: graph generators, the paper's experimental workload, and the
// workload-family registry.
#include "ftsched/workload/classic.hpp"
#include "ftsched/workload/granularity.hpp"
#include "ftsched/workload/paper_workload.hpp"
#include "ftsched/workload/random_dag.hpp"
#include "ftsched/workload/workload_registry.hpp"

// core: the schedulers and schedule tooling.
#include "ftsched/core/avl.hpp"
#include "ftsched/core/bicriteria.hpp"
#include "ftsched/core/cpop.hpp"
#include "ftsched/core/ftbar.hpp"
#include "ftsched/core/ftsa.hpp"
#include "ftsched/core/heft.hpp"
#include "ftsched/core/matching.hpp"
#include "ftsched/core/mc_ftsa.hpp"
#include "ftsched/core/placement.hpp"
#include "ftsched/core/priorities.hpp"
#include "ftsched/core/reschedule.hpp"
#include "ftsched/core/robustness.hpp"
#include "ftsched/core/schedule.hpp"
#include "ftsched/core/schedule_io.hpp"
#include "ftsched/core/scheduler.hpp"

// sim: execution, fault injection, validation, traces.
#include "ftsched/sim/comm_model.hpp"
#include "ftsched/sim/event_sim.hpp"
#include "ftsched/sim/trace.hpp"
#include "ftsched/sim/validator.hpp"

// service: the sweep-coordinator daemon and its socket workers.
#include "ftsched/service/coordinator.hpp"
#include "ftsched/service/protocol.hpp"
#include "ftsched/service/worker.hpp"

// metrics + experiments.
#include "ftsched/experiments/backend.hpp"
#include "ftsched/experiments/config.hpp"
#include "ftsched/experiments/figures.hpp"
#include "ftsched/experiments/runner.hpp"
#include "ftsched/experiments/sweep_io.hpp"
#include "ftsched/experiments/sweep_plan.hpp"
#include "ftsched/metrics/metrics.hpp"
#include "ftsched/metrics/reliability.hpp"
