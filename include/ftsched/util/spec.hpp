// Spec strings: the "name:key=value,key=value" syntax shared by every
// registry in the system (schedulers, workload families, crash-time laws).
//
// `SpecOptions` is the purely syntactic option parser; `SpecRegistry<Ptr>`
// is the name → factory table with declared-option validation and loud
// error messages listing the known alternatives.  SchedulerRegistry and
// WorkloadRegistry are thin subclasses that only fix the noun used in
// diagnostics ("scheduler" vs "workload family").
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "ftsched/util/error.hpp"

namespace ftsched {

namespace spec_detail {

[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               const char* sep);
[[nodiscard]] std::uint64_t parse_u64(const std::string& key,
                                      const std::string& value);
[[nodiscard]] double parse_double(const std::string& key,
                                  const std::string& value);
/// Compact, stable rendition of a numeric option value — the one
/// convention every canonical spec string (scheduler names, workload
/// family names, crash laws) uses, so to_string/parse round-trips agree.
[[nodiscard]] std::string render_double(double value);

}  // namespace spec_detail

/// Parsed option string: the "eps=2,prio=bl" tail of a spec.
///
/// Purely syntactic — key validity is checked by the registry against the
/// entry's declared options, value validity by the factories.
class SpecOptions {
 public:
  SpecOptions() = default;

  /// Parses "key=value,key=value" (empty string → no options).  Throws
  /// InvalidArgument on items without '=', empty keys, duplicate keys, or a
  /// trailing comma.
  [[nodiscard]] static SpecOptions parse(const std::string& text);

  [[nodiscard]] bool has(const std::string& key) const;
  /// Sets `key` unless already present (CLI flag defaults).
  void set_default(const std::string& key, const std::string& value);
  void set(const std::string& key, const std::string& value);

  /// Raw value; throws InvalidArgument when absent.
  [[nodiscard]] const std::string& get(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const;
  [[nodiscard]] std::size_t get_size(const std::string& key,
                                     std::size_t fallback) const;
  [[nodiscard]] std::uint64_t get_u64(const std::string& key,
                                      std::uint64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  /// Accepts 0|1|false|true.
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  [[nodiscard]] std::vector<std::string> keys() const;
  [[nodiscard]] bool empty() const noexcept { return values_.empty(); }

  /// Canonical "k=v,k=v" rendition (keys sorted).
  [[nodiscard]] std::string to_string() const;

 private:
  std::map<std::string, std::string> values_;
};

/// A declared option of a registry entry (drives spec validation and the
/// CLI list-* output).
struct SpecOptionSpec {
  std::string key;
  std::string default_value;
  std::string help;
};

/// Splits a spec string into its name and option tail at the first ':'.
void split_spec_string(const std::string& spec, std::string& name,
                       std::string& option_text);

/// Name → factory registry over spec strings.
///
/// Spec syntax: `name[:key=value[,key=value...]]`.  Unknown names and
/// unknown option keys fail loudly with the known alternatives listed;
/// `kind` is the noun used in those diagnostics.
template <typename Ptr>
class SpecRegistry {
 public:
  using Factory = std::function<Ptr(const SpecOptions&)>;

  using OptionSpec = SpecOptionSpec;

  struct Entry {
    std::string name;
    std::string summary;
    std::vector<SpecOptionSpec> options;
    Factory factory;

    [[nodiscard]] bool supports(const std::string& key) const {
      return std::any_of(options.begin(), options.end(),
                         [&](const SpecOptionSpec& o) { return o.key == key; });
    }
  };

  explicit SpecRegistry(std::string kind) : kind_(std::move(kind)) {}

  /// Registers an entry; throws InvalidArgument on duplicate names.
  void add(Entry entry) {
    FTSCHED_REQUIRE(!entry.name.empty(), kind_ + " name must not be empty");
    FTSCHED_REQUIRE(entry.name.find(':') == std::string::npos,
                    kind_ + " name must not contain ':'");
    FTSCHED_REQUIRE(entries_.find(entry.name) == entries_.end(),
                    kind_ + " '" + entry.name + "' already registered");
    const std::string name = entry.name;
    entries_.emplace(name, std::move(entry));
  }

  [[nodiscard]] bool contains(const std::string& name) const {
    return entries_.find(name) != entries_.end();
  }

  /// Throws InvalidArgument (listing known names) when absent.
  [[nodiscard]] const Entry& entry(const std::string& name) const {
    const auto it = entries_.find(name);
    if (it == entries_.end()) {
      throw InvalidArgument("unknown " + kind_ + " '" + name + "' (known: " +
                            spec_detail::join(names(), "|") + ")");
    }
    return it->second;
  }

  /// Registered names, sorted.
  [[nodiscard]] std::vector<std::string> names() const {
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto& [name, e] : entries_) out.push_back(name);
    return out;
  }

  /// Creates an object from a full spec string ("ftsa:eps=2,prio=bl").
  [[nodiscard]] Ptr create(const std::string& spec) const {
    std::string name;
    std::string option_text;
    split_spec_string(spec, name, option_text);
    return create(name, SpecOptions::parse(option_text));
  }

  /// Creates an object from a name and pre-parsed options.
  [[nodiscard]] Ptr create(const std::string& name,
                           const SpecOptions& options) const {
    const Entry& e = entry(name);
    for (const std::string& key : options.keys()) {
      if (!e.supports(key)) {
        std::vector<std::string> supported;
        supported.reserve(e.options.size());
        for (const SpecOptionSpec& o : e.options) supported.push_back(o.key);
        throw InvalidArgument(
            kind_ + " '" + name + "' does not accept option '" + key + "'" +
            (supported.empty()
                 ? std::string(" (no options)")
                 : " (supported: " + spec_detail::join(supported, "|") + ")"));
      }
    }
    return e.factory(options);
  }

  /// Resolves `spec` like create(), filling `defaults` (key → value) for
  /// keys the entry supports and the spec leaves unset — the bridge between
  /// flag-style callers (--epsilon/--seed/--procs) and spec strings.
  [[nodiscard]] Ptr create_with_defaults(
      const std::string& spec,
      const std::vector<std::pair<std::string, std::string>>& defaults) const {
    std::string name;
    std::string option_text;
    split_spec_string(spec, name, option_text);
    SpecOptions options = SpecOptions::parse(option_text);
    const Entry& e = entry(name);
    for (const auto& [key, value] : defaults) {
      if (e.supports(key)) options.set_default(key, value);
    }
    return create(name, options);
  }

 private:
  std::string kind_;
  std::map<std::string, Entry> entries_;
};

}  // namespace ftsched
