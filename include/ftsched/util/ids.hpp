// Strong integer identifier types.
//
// The scheduler juggles three id spaces (tasks, processors, replicas); using
// a distinct wrapper per space turns accidental cross-space indexing into a
// compile error while keeping the runtime representation a plain integer.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>

namespace ftsched {

/// A strongly-typed, trivially-copyable integer id.
///
/// `Tag` only disambiguates the type; it is never instantiated.
template <typename Tag>
class Id {
 public:
  using underlying_type = std::uint32_t;

  /// Sentinel for "no id"; also the default-constructed value.
  static constexpr underlying_type kInvalid =
      std::numeric_limits<underlying_type>::max();

  constexpr Id() noexcept = default;
  constexpr explicit Id(underlying_type v) noexcept : value_(v) {}
  constexpr explicit Id(std::size_t v) noexcept
      : value_(static_cast<underlying_type>(v)) {}
  constexpr explicit Id(int v) noexcept
      : value_(static_cast<underlying_type>(v)) {}

  [[nodiscard]] constexpr underlying_type value() const noexcept {
    return value_;
  }
  /// Convenience for indexing into std:: containers.
  [[nodiscard]] constexpr std::size_t index() const noexcept { return value_; }
  [[nodiscard]] constexpr bool valid() const noexcept {
    return value_ != kInvalid;
  }

  friend constexpr auto operator<=>(Id, Id) noexcept = default;

 private:
  underlying_type value_ = kInvalid;
};

struct TaskTag;
struct ProcTag;

/// Identifies a task (node) of a task graph.
using TaskId = Id<TaskTag>;
/// Identifies a processor of a platform.
using ProcId = Id<ProcTag>;

}  // namespace ftsched

template <typename Tag>
struct std::hash<ftsched::Id<Tag>> {
  std::size_t operator()(ftsched::Id<Tag> id) const noexcept {
    return std::hash<typename ftsched::Id<Tag>::underlying_type>{}(id.value());
  }
};
