// Deterministic random number generation.
//
// Every experiment in the paper reproduction is driven through this RNG so
// figures and tables regenerate bit-identically from a seed.  We implement
// xoshiro256** (Blackman & Vigna) seeded through SplitMix64 rather than rely
// on std::mt19937 so that the stream is stable across standard libraries.
#pragma once

#include <cstdint>
#include <vector>

namespace ftsched {

/// SplitMix64: used for seeding and as a cheap stateless mixer.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** pseudo-random generator.
///
/// Satisfies `std::uniform_random_bit_generator`, so it can also be plugged
/// into <random> distributions if callers prefer those.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four-word state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return ~static_cast<result_type>(0);
  }

  /// Next 64 random bits.
  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;

  /// Uniform double in [lo, hi). Requires lo <= hi.
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// Uniform integer in the closed range [lo, hi]. Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo,
                                         std::int64_t hi) noexcept;

  /// Bernoulli trial with success probability p.
  [[nodiscard]] bool bernoulli(double p) noexcept;

  /// Exponentially distributed value with the given rate (lambda > 0).
  [[nodiscard]] double exponential(double rate) noexcept;

  /// A derived generator whose stream is independent of this one's future
  /// output: used to give each experiment repetition its own substream.
  [[nodiscard]] Rng split() noexcept;

  /// A generator keyed off this one's *current* state and `key`, without
  /// advancing this generator: derive(k) is stable no matter how the parent
  /// is used afterwards, and distinct keys give independent streams.
  ///
  /// This is the primitive for order-free keyed derivation: run_sweep keys
  /// every instance stream by its (workload, granularity, repetition)
  /// coordinates, so any subset of the sweep grid can be recomputed in
  /// isolation (the seam for the ROADMAP's sharded multi-machine sweeps,
  /// where no serial split chain exists).
  [[nodiscard]] Rng derive(std::uint64_t key) const noexcept;

  /// k distinct values sampled uniformly from {0, 1, ..., n-1}.
  [[nodiscard]] std::vector<std::size_t> sample_without_replacement(
      std::size_t n, std::size_t k);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j =
          static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace ftsched
