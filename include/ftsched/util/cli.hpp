// Minimal command-line option parser for benches and examples.
//
// Supported syntax: `--name value`, `--name=value`, and boolean `--flag`.
// Unknown options raise InvalidArgument so typos fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ftsched {

class CliParser {
 public:
  CliParser(std::string program_description);

  /// Declares an option with a default value (all values parsed as strings).
  void add_option(const std::string& name, const std::string& default_value,
                  const std::string& help);
  /// Declares a boolean flag (false unless present).
  void add_flag(const std::string& name, const std::string& help);

  /// Parses argv; throws InvalidArgument on unknown/malformed options.
  /// Returns false if `--help` was requested (help text printed to stdout).
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] std::string get(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_flag(const std::string& name) const;

  [[nodiscard]] std::string help() const;

 private:
  struct Option {
    std::string default_value;
    std::string help;
    bool is_flag = false;
  };
  std::string description_;
  std::map<std::string, Option> options_;
  std::map<std::string, std::string> values_;
};

/// Reads an environment variable as integer, or `fallback` when unset/bad.
[[nodiscard]] std::int64_t env_int(const char* name, std::int64_t fallback);

}  // namespace ftsched
