// Minimal POSIX child-process spawning for the subprocess sweep backend.
//
// `ChildProcess::spawn` fork/execs one command with stdout/stderr
// redirected to files, `wait()` reaps it into a `ChildOutcome` that
// distinguishes the three failure shapes a dead worker can take — nonzero
// exit, termination by signal, unrunnable binary — so callers can name the
// cause instead of reporting a generic failure.  Spawning is deliberately
// synchronous and file-based (no pipes to drain): the sweep protocol
// already streams through shard files, and a worker fleet is managed as
// "spawn K, wait K" waves.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace ftsched {

/// How one child terminated.
struct ChildOutcome {
  bool exited = false;   ///< normal exit (vs. killed by a signal)
  int exit_code = -1;    ///< valid when `exited`
  int signal_number = 0; ///< valid when not `exited`

  [[nodiscard]] bool success() const noexcept {
    return exited && exit_code == 0;
  }
  /// "exited with status 3" / "killed by signal 9 (Killed)"; exec failures
  /// inside the child surface as status 127.
  [[nodiscard]] std::string describe() const;
};

/// One spawned child.  Move-only handle; the destructor does NOT reap —
/// call wait() exactly once per spawned child (the backend always does, so
/// no zombie is left even on the error paths).
class ChildProcess {
 public:
  /// Fork/execs `argv` (argv[0] is the executable path, resolved via PATH
  /// when it contains no '/').  Non-empty `stdout_path`/`stderr_path`
  /// redirect the respective stream to that file (created/truncated);
  /// empty inherits the parent's stream.  Throws Error when the process
  /// cannot be created; a failed exec *inside* the child is reported by
  /// wait() as exit status 127 (the shell convention), with the reason on
  /// the child's stderr.
  [[nodiscard]] static ChildProcess spawn(const std::vector<std::string>& argv,
                                          const std::string& stdout_path,
                                          const std::string& stderr_path);

  /// Blocks until the child terminates and reports how.
  [[nodiscard]] ChildOutcome wait();

  /// Non-blocking reap (WNOHANG, EINTR-retried): the outcome when the
  /// child has terminated, nullopt while it is still running.  After a
  /// non-null return the handle is empty — do not also call wait().
  [[nodiscard]] std::optional<ChildOutcome> try_wait();

  /// Sends `sig` to the child (no-op on an empty handle — the child was
  /// already reaped).  The caller still reaps via wait()/try_wait().
  void kill(int sig) noexcept;

  [[nodiscard]] long pid() const noexcept { return pid_; }
  [[nodiscard]] bool running() const noexcept { return pid_ > 0; }

 private:
  long pid_ = -1;
};

/// Last ~`limit` bytes of `path`, whitespace-trimmed — enough child stderr
/// to make a worker-failure diagnostic actionable without dumping a log.
/// Empty when the file is missing or unreadable.  Shared by the subprocess
/// sweep backend and the coordinator service's worker supervision.
[[nodiscard]] std::string stderr_tail(const std::string& path,
                                      std::size_t limit = 400);

/// Absolute path of the running executable (/proc/self/exe); empty when it
/// cannot be resolved.  This is how ftsched_cli finds itself when spawning
/// subprocess-backend workers.
[[nodiscard]] std::string self_executable_path();

}  // namespace ftsched
