// Streaming and batch statistics used by the experiment harness.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ftsched {

/// Numerically-stable streaming mean/variance (Welford/Chan).
///
/// Contract for distributed aggregation (the sharded-sweep merge relies on
/// it): `add(x)` is implemented as `merge(OnlineStats::of(x))`, so adding
/// samples one by one and merging the equivalent single-sample accumulators
/// in the same order produce *bit-identical* state.  Merging multi-sample
/// accumulators is mathematically equivalent but may differ in the last
/// ulp (floating-point merge is only approximately associative).
class OnlineStats {
 public:
  void add(double x) noexcept;

  /// A single-sample accumulator: count 1, mean x, m2 0, min = max = x.
  [[nodiscard]] static OnlineStats of(double x) noexcept;

  /// Rebuilds an accumulator from raw state, the inverse of the
  /// (count, mean, m2, min, max) accessors.  count == 0 yields the empty
  /// accumulator regardless of the other fields.
  [[nodiscard]] static OnlineStats from_parts(std::size_t count, double mean,
                                              double m2, double min,
                                              double max) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Raw second central moment sum (Welford's M2); variance * (n-1).
  /// Exposed for lossless serialization of partial aggregates.
  [[nodiscard]] double m2() const noexcept { return n_ ? m2_ : 0.0; }
  /// Unbiased sample variance; 0 when fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  /// Half-width of the ~95% normal confidence interval on the mean.
  [[nodiscard]] double ci95_halfwidth() const noexcept;

  /// Merge another accumulator into this one (parallel-friendly).
  void merge(const OnlineStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact (lossless) text rendition of a double as a C99-style hex-float
/// ("0x1.91eb851eb851fp+1"); hex_to_double parses it back bit-identically,
/// including negative zero, denormals and infinities.  Locale-independent
/// in both directions (std::to_chars/from_chars).  The shard job protocol
/// serializes every statistic through this pair.
[[nodiscard]] std::string double_to_hex(double x);

/// Parses double_to_hex output (hex-float only — digits are *always* read
/// as hex, with or without the "0x" prefix; do not feed decimal
/// literals).  Throws InvalidArgument when `text` is not one complete
/// literal.
[[nodiscard]] double hex_to_double(const std::string& text);

/// Batch summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double max = 0.0;
};

/// Summarizes `xs` (copied and sorted internally; `xs` may be empty).
[[nodiscard]] Summary summarize(std::vector<double> xs);

/// Linear-interpolation percentile of a *sorted* sample, q in [0,1].
[[nodiscard]] double percentile_sorted(const std::vector<double>& sorted,
                                       double q) noexcept;

}  // namespace ftsched
