// Streaming and batch statistics used by the experiment harness.
#pragma once

#include <cstddef>
#include <vector>

namespace ftsched {

/// Numerically-stable streaming mean/variance (Welford's algorithm).
class OnlineStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 when fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  /// Half-width of the ~95% normal confidence interval on the mean.
  [[nodiscard]] double ci95_halfwidth() const noexcept;

  /// Merge another accumulator into this one (parallel-friendly).
  void merge(const OnlineStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double max = 0.0;
};

/// Summarizes `xs` (copied and sorted internally; `xs` may be empty).
[[nodiscard]] Summary summarize(std::vector<double> xs);

/// Linear-interpolation percentile of a *sorted* sample, q in [0,1].
[[nodiscard]] double percentile_sorted(const std::vector<double>& sorted,
                                       double q) noexcept;

}  // namespace ftsched
