// Wall-clock stopwatch used for the Table-1 running-time reproduction.
#pragma once

#include <chrono>

namespace ftsched {

class Stopwatch {
 public:
  Stopwatch() noexcept : start_(clock::now()) {}

  void reset() noexcept { start_ = clock::now(); }

  /// Elapsed seconds since construction / last reset.
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace ftsched
