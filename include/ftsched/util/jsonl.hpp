// Flat JSONL objects: the wire vocabulary shared by the sweep shard
// protocol (experiments/sweep_io.hpp) and the coordinator service
// (service/protocol.hpp).
//
// Every line the system ever puts on a wire or in a shard file is one flat
// JSON object whose values are strings (or a bare token like a protocol
// version number), so a full JSON parser is not needed: `FlatJsonObject`
// is a strict scanner for exactly that shape, and `json_escape` is the
// matching writer-side escaper.  The parser is a reusable scratch object —
// parse() recycles its key/value strings, so a million-line stream settles
// into zero allocations per line once capacities plateau.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ftsched {

/// Escapes `text` for embedding in a JSON string literal.  Raw newlines
/// are escaped too: the protocols are line-oriented, so an unescaped '\n'
/// (e.g. from a weird trace-file path in a workload spec) would split the
/// record and make the line the writer just produced unreadable.
[[nodiscard]] std::string json_escape(const std::string& text);

/// Reusable parse target for one flat JSON object {"k":"v",...} (values:
/// strings or bare tokens).  Throws InvalidArgument on malformed input,
/// prefixing diagnostics with `where` (e.g. "file.jsonl:17").  Records
/// hold a dozen-odd fields, so lookups scan linearly.
class FlatJsonObject {
 public:
  /// Parses `line`; previously parsed fields are recycled.
  void parse(const std::string& line, const std::string& where);

  /// Value of `key`, or nullptr when absent.
  [[nodiscard]] const std::string* find(const char* key) const;

  /// Value of `key`; throws InvalidArgument (naming `where`) when absent.
  [[nodiscard]] const std::string& field(const char* key,
                                         const std::string& where) const;

  /// Like field(), but absent keys fall back — for fields added to a
  /// protocol after version 1 shipped (old streams must stay readable).
  [[nodiscard]] std::string field_or(const char* key,
                                     const char* fallback) const;

 private:
  struct Field {
    std::string key;
    std::string value;
  };
  std::vector<Field> fields_;  ///< fields_[0..used_) valid after parse()
  std::size_t used_ = 0;
};

}  // namespace ftsched
