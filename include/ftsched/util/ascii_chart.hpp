// Terminal line charts for the figure benches.
//
// The paper's evaluation is a set of line plots (latency/overhead vs
// granularity); besides the numeric tables and CSV blocks, the benches
// render the same series as an ASCII chart so the figure shape is visible
// directly in the terminal output.
#pragma once

#include <string>
#include <vector>

namespace ftsched {

struct ChartSeries {
  std::string name;
  std::vector<double> y;  ///< one value per x position
  char marker = '*';
};

struct ChartOptions {
  std::size_t width = 72;   ///< plot area width in characters
  std::size_t height = 20;  ///< plot area height in characters
  bool y_from_zero = true;  ///< include 0 in the y range
};

/// Renders `series` against the common x axis `xs` (must all have the same
/// length).  Series are drawn in order; later series overwrite earlier
/// markers on collisions.  Returns a multi-line string including axes,
/// y-tick labels and a legend.
[[nodiscard]] std::string render_chart(const std::vector<double>& xs,
                                       const std::vector<ChartSeries>& series,
                                       const ChartOptions& options = {});

}  // namespace ftsched
