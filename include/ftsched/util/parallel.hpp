// Deterministic-friendly parallel index execution.
//
// A small persistent std::thread pool driving `for_each(count, fn)` loops:
// indices are handed out through an atomic counter, so any partitioning of
// work across threads is possible — callers that need determinism must
// make fn(i) independent of execution order (write to slot i, seed from a
// per-index RNG stream) and aggregate serially afterwards.  With one
// thread (or zero workers) the loop runs inline on the caller, byte-for-
// byte identical to a plain for loop.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ftsched {

class ParallelExecutor {
 public:
  /// `threads` = total worker count including the calling thread;
  /// 0 = std::thread::hardware_concurrency().  threads=1 keeps everything
  /// on the caller (no pool threads are spawned).
  explicit ParallelExecutor(std::size_t threads = 0);
  ~ParallelExecutor();

  ParallelExecutor(const ParallelExecutor&) = delete;
  ParallelExecutor& operator=(const ParallelExecutor&) = delete;

  /// Total threads participating in for_each (pool workers + caller).
  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size() + 1;
  }

  /// Runs fn(0..count-1), distributing indices over the pool; the calling
  /// thread participates.  Blocks until every index completed.  The first
  /// exception thrown by fn is rethrown on the caller (remaining indices
  /// are abandoned once an exception is recorded).
  void for_each(std::size_t count, const std::function<void(std::size_t)>& fn);

  /// Resolves the `threads` convention (0 → hardware_concurrency, minimum 1)
  /// without constructing an executor.
  [[nodiscard]] static std::size_t resolve_thread_count(
      std::size_t threads) noexcept;

 private:
  void worker_loop();
  void run_indices(const std::function<void(std::size_t)>& fn);

  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;  ///< incremented per for_each job
  bool stop_ = false;

  // Current job (valid while running_workers_ > 0 or a job is posted).
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::size_t count_ = 0;
  std::atomic<std::size_t> next_{0};
  std::size_t running_workers_ = 0;

  std::mutex error_mutex_;
  std::exception_ptr first_error_;
};

}  // namespace ftsched
