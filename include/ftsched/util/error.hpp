// Error handling primitives.
//
// Library invariant violations throw `ftsched::Error` (a std::runtime_error)
// so callers can distinguish library failures from standard-library ones.
// `FTSCHED_REQUIRE` guards public-API preconditions and is always on;
// `FTSCHED_ASSERT` guards internal invariants and compiles out in NDEBUG.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace ftsched {

/// Base exception for all ftsched errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when an input (graph, platform, parameters) is malformed.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown when a requested bi-criteria combination is infeasible.
class Infeasible : public Error {
 public:
  explicit Infeasible(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_require_failure(const char* expr,
                                               const char* file, int line,
                                               const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": requirement failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw InvalidArgument(os.str());
}
}  // namespace detail

}  // namespace ftsched

#define FTSCHED_REQUIRE(cond, msg)                                       \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::ftsched::detail::throw_require_failure(#cond, __FILE__, __LINE__, \
                                               (msg));                   \
    }                                                                    \
  } while (false)

#ifdef NDEBUG
#define FTSCHED_ASSERT(cond, msg) ((void)0)
#else
#define FTSCHED_ASSERT(cond, msg) FTSCHED_REQUIRE(cond, msg)
#endif
