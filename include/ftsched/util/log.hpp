// Leveled logging to stderr.
//
// Kept deliberately tiny: the experiment drivers print their results to
// stdout through TextTable; the log is for diagnostics only.
#pragma once

#include <sstream>
#include <string>

namespace ftsched {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped. Default: kWarn.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

namespace detail {
void log_emit(LogLevel level, const std::string& message);
}

}  // namespace ftsched

#define FTSCHED_LOG(level, expr)                                  \
  do {                                                            \
    if (static_cast<int>(level) >=                                \
        static_cast<int>(::ftsched::log_level())) {               \
      std::ostringstream ftsched_log_os;                          \
      ftsched_log_os << expr;                                     \
      ::ftsched::detail::log_emit(level, ftsched_log_os.str());   \
    }                                                             \
  } while (false)

#define FTSCHED_DEBUG(expr) FTSCHED_LOG(::ftsched::LogLevel::kDebug, expr)
#define FTSCHED_INFO(expr) FTSCHED_LOG(::ftsched::LogLevel::kInfo, expr)
#define FTSCHED_WARN(expr) FTSCHED_LOG(::ftsched::LogLevel::kWarn, expr)
#define FTSCHED_ERROR(expr) FTSCHED_LOG(::ftsched::LogLevel::kError, expr)
