// Minimal POSIX TCP sockets with length-prefixed message framing, for the
// sweep coordinator service (service/coordinator.hpp) and its workers.
//
// A *message* is an opaque byte payload framed by a 4-byte big-endian
// length prefix; the service puts one JSONL fragment (one or more flat
// JSON-object lines) in each frame.  The layer is deliberately tiny:
// loopback/LAN TCP, blocking workers, a poll()-driven coordinator — no
// TLS, no name resolution beyond numeric hosts, no portability shims
// beyond POSIX.  Every syscall is retried on EINTR and writes use
// MSG_NOSIGNAL, so a dying peer surfaces as an Error (or clean EOF), never
// as SIGPIPE or a spurious failure under signals — the coordinator reaps
// child workers with signals in flight, so this hardening is load-bearing,
// not cosmetic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace ftsched {

/// Frames larger than this are protocol corruption, not data (the largest
/// legitimate frame is one coordinate's record lines).
inline constexpr std::uint32_t kMaxNetFrameBytes = 1u << 26;  // 64 MiB

/// One connected stream socket.  Move-only; the destructor closes.
class Socket {
 public:
  Socket() = default;
  /// Adopts an already-connected file descriptor.
  explicit Socket(int fd) noexcept : fd_(fd) {}
  ~Socket() { close(); }
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }
  void close() noexcept;

  /// Sends one framed message.  Handles short writes, EINTR and EAGAIN
  /// (waits for writability); throws Error when the peer is gone (EPIPE /
  /// ECONNRESET — never SIGPIPE).
  void send_message(std::string_view payload);

  /// Blocking receive of one framed message into `payload` (capacity
  /// reused).  Returns false on clean EOF at a frame boundary; throws
  /// Error on mid-frame EOF, oversized frames, or socket errors.  With
  /// `timeout_ms` >= 0, returns false *without consuming anything* when no
  /// frame byte arrives in time (distinguish via eof()).
  bool recv_message(std::string& payload, int timeout_ms = -1);

  /// True once recv_message observed end-of-stream.
  [[nodiscard]] bool eof() const noexcept { return eof_; }

  /// Switches O_NONBLOCK (the coordinator pumps connections non-blocking).
  void set_nonblocking(bool on);

  /// Non-blocking read of whatever is available, appended to `buf`.
  /// Returns the byte count (> 0), 0 when the read would block, or -1 on
  /// end-of-stream.  Throws Error on socket errors (ECONNRESET included —
  /// the caller treats both as a dead peer, but an error names the cause).
  int read_available(std::string& buf);

 private:
  int fd_ = -1;
  bool eof_ = false;
  std::string recv_scratch_;  ///< partial frame across timed-out receives
};

/// Incremental decoder of the length-prefixed framing over an append-only
/// byte buffer (one per coordinator connection).
class FrameDecoder {
 public:
  /// Appends raw bytes.
  void feed(const char* data, std::size_t n) { buf_.append(data, n); }
  [[nodiscard]] std::string& buffer() noexcept { return buf_; }

  /// Extracts the next complete frame into `payload` (capacity reused).
  /// Returns false when no complete frame is buffered; throws Error on an
  /// oversized length prefix.
  bool next(std::string& payload);

  /// True when a partial frame is buffered (EOF here = truncation).
  [[nodiscard]] bool mid_frame() const noexcept { return !buf_.empty(); }

 private:
  std::string buf_;
};

/// Connects to `host`:`port` (numeric IPv4 host, e.g. "127.0.0.1").
/// Throws Error when the connection cannot be established.
[[nodiscard]] Socket connect_to(const std::string& host, std::uint16_t port);

/// A listening loopback TCP socket.  Binds 127.0.0.1 only: the service is
/// a single-host fleet coordinator, not an internet-facing daemon.
class Listener {
 public:
  /// Binds and listens on 127.0.0.1:`port` (0 = ephemeral; see port()).
  explicit Listener(std::uint16_t port);
  ~Listener() { close(); }
  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// The bound port (the kernel's choice when constructed with 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] int fd() const noexcept { return fd_; }
  void close() noexcept;

  /// Accepts one pending connection, waiting up to `timeout_ms`
  /// (-1 = forever).  Returns an invalid Socket on timeout.
  [[nodiscard]] Socket accept(int timeout_ms);

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// poll(2) for readability of `fd`, retrying EINTR.  Returns true when
/// readable (or in error/hup — a subsequent read reports the cause).
[[nodiscard]] bool wait_readable(int fd, int timeout_ms);

}  // namespace ftsched
