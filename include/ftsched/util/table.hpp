// Plain-text table and CSV emission for benches and examples.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ftsched {

/// Column-aligned text table with an optional header row.
///
/// Usage:
///   TextTable t({"granularity", "FTSA", "FTBAR"});
///   t.add_row({"0.2", "4.1", "5.3"});
///   std::cout << t.str();
class TextTable {
 public:
  TextTable() = default;
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Formats a numeric row with fixed precision.
  void add_numeric_row(const std::string& label,
                       const std::vector<double>& values, int precision = 3);

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }
  [[nodiscard]] std::string str() const;
  void print(std::ostream& os) const;

  /// Comma-separated rendition (header first if present).
  [[nodiscard]] std::string csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `precision` digits after the point.
[[nodiscard]] std::string format_double(double v, int precision = 3);

}  // namespace ftsched
