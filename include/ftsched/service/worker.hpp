// The worker half of the sweep coordinator service: connects to a
// coordinator (service/coordinator.hpp), rebuilds the sweep plan from the
// received CLI-flag vector, and evaluates leased coordinate sets through
// the grouped schedule-once path — exactly the engine run_plan uses, so a
// worker's samples are bit-identical to an in-process run by construction.
//
// The worker is deliberately single-threaded: parallelism in the service
// comes from running more worker processes, which keeps every worker an
// independently killable / restartable unit (the fault-tolerance story the
// coordinator's leases are built around).
//
// The options carry three fault-injection hooks (max_leases,
// kill_after_leases, sample_delay_ms) used by the CLI's worker command and
// the tests to script worker deaths, stragglers and partial runs — the
// scenarios the lease-expiry / work-stealing / resume machinery exists for.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace ftsched {

struct WorkerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Name reported in `hello` (diagnostics on the coordinator side).
  std::string name = "worker";
  /// Fault injection: complete this many leases, then drop the connection
  /// without a goodbye (0 = keep working until bye).  Exercises the
  /// disconnect-requeue path and partial-manifest resumes.
  std::size_t max_leases = 0;
  /// Fault injection: raise(SIGKILL) upon *receiving* the n-th lease,
  /// before computing anything (0 = never).  Only meaningful in a worker
  /// process, not an in-process test thread.
  std::size_t kill_after_leases = 0;
  /// Fault injection: sleep this long before sending each sample, turning
  /// the worker into a straggler for the work-stealing tests (0 = none).
  /// The sleep is taken in heartbeat_ms slices with a heartbeat between
  /// them, so a straggler is slow but never reads as dead — even with a
  /// delay far beyond the coordinator's lease timeout.
  std::size_t sample_delay_ms = 0;
  /// Heartbeat period: while waiting for the coordinator's reply, between
  /// slices of a throttled sample, and after each completed evaluation
  /// group — so neither a parked nor a busy worker trips the lease timeout.
  int heartbeat_ms = 500;
};

/// What a completed worker loop did; the CLI prints it, tests assert on it.
struct WorkerReport {
  std::size_t leases_completed = 0;
  std::size_t samples_sent = 0;
  /// True when the coordinator said `bye` (all work delivered); false when
  /// the loop ended early (max_leases hook, or the coordinator went away —
  /// normal during wind-down races, the samples are already delivered).
  bool orderly = false;
};

/// Runs the worker loop to completion.  Throws Error on connection
/// failures, protocol violations, and coordinator rejects (fingerprint
/// mismatch / version skew) — a rejected worker must exit loudly, not
/// retry.
WorkerReport run_worker(const WorkerOptions& options);

}  // namespace ftsched
