// The sweep coordinator: owns a SweepPlan, leases slices of its selection
// to socket workers (service/protocol.hpp), and delivers the merged
// samples to a SweepSink exactly like run_plan would — serially, in
// increasing full-grid-id order, bit-identical doubles — regardless of
// worker count, worker deaths, steal order, or resume history.
//
// Fault tolerance (dogfooding the paper's philosophy on our own infra):
//   * a worker that disconnects or goes silent past the timeout loses its
//     leases; their unfinished coordinates are re-queued for other workers;
//   * an idle worker with nothing queued *steals* work by splitting the
//     unfinished half of the most-laden active lease, so one straggler
//     cannot stall the sweep's tail;
//   * duplicate results (the victim of a steal finishing anyway, or an
//     expired worker resurfacing) are resolved first-arrival — safe, since
//     every correct worker produces bit-identical samples;
//   * a worker whose rebuilt plan fingerprint differs is rejected before
//     it can lease anything, so a drifted binary never contributes.
//
// Resumability: with a manifest directory configured, the coordinator
// journals each completed fixed slice of the selection as an ordinary
// shard-protocol JSONL file under a (fingerprint, shard)-keyed
// subdirectory, written atomically (tmp + rename).  A restarted
// coordinator loads the manifest, delivers the resumed prefix, and leases
// only the missing coordinates — a killed sweep loses at most the
// unjournaled units.
//
// Threading: none.  The coordinator is a single-threaded poll loop; call
// poll() (one event-loop turn) or run() from one thread.  Workers live in
// other processes (or test threads) and talk through sockets only.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ftsched/experiments/sweep_plan.hpp"
#include "ftsched/service/protocol.hpp"
#include "ftsched/util/net.hpp"

namespace ftsched {

struct CoordinatorOptions {
  /// Listening port on 127.0.0.1 (0 = kernel-chosen; see port()).
  std::uint16_t port = 0;
  /// Coordinates per lease (0 = auto: selection/32, clamped to [1, 64]).
  /// Also the manifest journaling unit.
  std::size_t lease = 0;
  /// Seconds of silence (no sample/done/heartbeat) before an active lease
  /// expires and its unfinished coordinates are re-queued.
  double timeout = 30.0;
  /// Manifest root for resumable sweeps ("" = no journaling, no resume).
  std::string manifest_dir;
  /// Workers evaluate leases via the grouped schedule-once path.
  bool group = true;
};

/// Observable counters, primarily for tests and the serve command's
/// summary line.
struct CoordinatorStats {
  std::size_t workers_joined = 0;      ///< hello frames accepted
  std::size_t workers_rejected = 0;    ///< fingerprint/protocol rejects
  std::size_t leases_granted = 0;      ///< includes stolen re-grants
  std::size_t coords_leased = 0;       ///< coordinates over all grants
  std::size_t leases_requeued = 0;     ///< expiry + disconnect requeues
  std::size_t leases_stolen = 0;       ///< grants carved from a straggler
  std::size_t leases_expired = 0;      ///< silent past the timeout
  std::size_t duplicate_samples = 0;   ///< re-computed coords, dropped
  std::size_t coords_resumed = 0;      ///< restored from the manifest
  std::size_t manifest_units_written = 0;
};

class Coordinator {
 public:
  /// Binds the listener, loads the manifest (when configured) and delivers
  /// any resumed order-prefix to `sink` immediately.  `plan` and `sink`
  /// must outlive the coordinator.  Throws Error/InvalidArgument on bind
  /// or manifest failures.
  Coordinator(const SweepPlan& plan, SweepSink& sink,
              CoordinatorOptions options = {});
  ~Coordinator();
  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// The bound listening port.
  [[nodiscard]] std::uint16_t port() const noexcept;

  /// True once every selected coordinate has been delivered to the sink.
  /// poll() remains callable — it answers residual lease requests with
  /// bye so workers wind down cleanly.
  [[nodiscard]] bool finished() const noexcept;

  /// One event-loop turn: accept joiners, pump connections, expire silent
  /// leases, grant/steal/park lease requests, deliver the completed
  /// order-prefix, journal completed manifest units.  Waits up to
  /// `timeout_ms` for activity (0 = non-blocking).  Per-connection
  /// protocol violations drop that worker (its leases re-queue); they do
  /// not throw.
  void poll(int timeout_ms);

  /// poll(tick_ms) until finished().
  void run(int tick_ms = 200);

  /// Live worker connections.  After finished(), keep polling until this
  /// drains so every worker receives its bye instead of a reset socket.
  [[nodiscard]] std::size_t connections() const noexcept;

  [[nodiscard]] const CoordinatorStats& stats() const noexcept;

  /// Human-readable cause of the most recent worker disconnect/reject
  /// ("worker-2: peer closed mid-frame ..."); empty when none.  The socket
  /// backend folds this into SweepBackendError like the subprocess
  /// backend folds child stderr.
  [[nodiscard]] const std::string& last_disconnect_cause() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// The manifest subdirectory a coordinator over `plan` journals into:
/// `<manifest_dir>/<fnv1a64(fingerprint | shard)>` — keyed by the grid
/// identity *and* the shard chain, since two shards of one grid share the
/// fingerprint but select different coordinates.  Exposed for tests and
/// tooling (e.g. cleaning a sweep's cache).
[[nodiscard]] std::string manifest_subdir(const std::string& manifest_dir,
                                          const SweepPlan& plan);

}  // namespace ftsched
