// Wire protocol of the sweep coordinator service (service/coordinator.hpp
// ⇄ service/worker.hpp).
//
// Every frame (util/net.hpp framing) carries newline-separated lines; the
// first line is one flat JSON object (util/jsonl.hpp) whose "type" field
// names the message, and only "sample" frames have further lines — raw
// shard-protocol record lines, the exact vocabulary ShardWriterSink writes
// (experiments/sweep_io.hpp).  Reusing the shard line shapes verbatim is
// what makes the coordinator's manifest units ordinary shard files and the
// bit-identity argument a composition of already-tested pieces.
//
//   worker → coordinator      coordinator → worker
//   ------------------        --------------------
//   hello   {worker}          plan    {args, shard, fingerprint, group}
//   ready   {fingerprint}     lease   {lease, ks}
//   lease_request {}          reject  {cause}        (terminal)
//   sample  {lease, k} + recs bye     {}             (all work done)
//   done    {lease}
//   heartbeat {}
//
// A worker joins with `hello`, receives the `plan` (the sweep grid as CLI
// flags plus the plan's shard chain and fingerprint), rebuilds the plan
// locally and answers `ready` with the fingerprint *it* computed — the
// coordinator rejects a mismatch before leasing anything, so a drifted
// binary can never contribute samples.  Work then flows as
// `lease_request` → `lease` (a set of selected-instance indices) →
// `sample` per coordinate → `done`, until the coordinator answers a
// request with `bye` (or `reject` on protocol violations).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "ftsched/util/jsonl.hpp"

namespace ftsched {

/// Bumped when a frame shape changes incompatibly; `hello` carries it so
/// version skew is a clean reject, not a parse error.
inline constexpr const char* kCoordProtocolVersion = "1";

/// One parsed frame: the typed head line plus any record lines.
struct ServiceMessage {
  std::string type;
  FlatJsonObject head;                    ///< parsed first line
  std::vector<std::string> record_lines;  ///< raw shard-record lines
  std::string where;                      ///< diagnostics label ("peer 3")

  [[nodiscard]] const std::string& field(const char* key) const {
    return head.field(key, where);
  }
  [[nodiscard]] std::string field_or(const char* key,
                                     const char* fallback) const {
    return head.field_or(key, fallback);
  }
};

/// Parses one frame payload; `from` labels diagnostics.  Throws
/// InvalidArgument on malformed head lines or a missing "type".
[[nodiscard]] ServiceMessage parse_service_message(const std::string& payload,
                                                   const std::string& from);

// Frame builders (single-line messages return the full payload; the
// "sample" head expects the caller to append record lines).
[[nodiscard]] std::string msg_hello(const std::string& worker);
[[nodiscard]] std::string msg_plan(const std::vector<std::string>& sweep_args,
                                   const std::string& shard,
                                   const std::string& fingerprint, bool group);
[[nodiscard]] std::string msg_ready(const std::string& fingerprint);
[[nodiscard]] std::string msg_lease_request();
[[nodiscard]] std::string msg_lease(std::uint64_t lease,
                                    const std::vector<std::size_t>& ks);
[[nodiscard]] std::string msg_sample_head(std::uint64_t lease, std::size_t k);
[[nodiscard]] std::string msg_done(std::uint64_t lease);
[[nodiscard]] std::string msg_heartbeat();
[[nodiscard]] std::string msg_reject(const std::string& cause);
[[nodiscard]] std::string msg_bye();

/// The `plan` message's "args" field joins the sweep CLI flags with '\n'
/// (flags never contain newlines); these convert both ways.
[[nodiscard]] std::string join_plan_args(const std::vector<std::string>& args);
[[nodiscard]] std::vector<std::string> split_plan_args(
    const std::string& joined);

/// The `lease` message's "ks" field: semicolon-joined decimal
/// selected-instance indices (a set, not a range — steal splits make
/// leases non-contiguous).
[[nodiscard]] std::string render_index_list(const std::vector<std::size_t>& ks);
[[nodiscard]] std::vector<std::size_t> parse_index_list(
    const std::string& joined, const std::string& where);

}  // namespace ftsched
