// Schedule reliability under probabilistic processor failures.
//
// The paper's conclusion (§7) names "a more complex failure model, in which
// we would also account for the failure probability of the application" as
// future work.  This module implements it for fail-stop-at-start failures:
// each processor independently fails with probability p (or its own p_k),
// and the *reliability* of a replicated schedule is the probability that
// every exit task still completes.
//
// Two estimators:
//  * exact over processor subsets (exponential in m, for small platforms);
//  * Monte Carlo with the execution simulator (any m).
#pragma once

#include <cstddef>
#include <vector>

#include "ftsched/core/schedule.hpp"
#include "ftsched/sim/event_sim.hpp"
#include "ftsched/util/rng.hpp"

namespace ftsched {

/// Exact reliability by enumerating all 2^m crash subsets and simulating
/// each. Requires proc_count <= 20 (2^20 simulations at most; keep small).
[[nodiscard]] double exact_reliability(const ReplicatedSchedule& schedule,
                                       const std::vector<double>& fail_prob);

/// Monte Carlo reliability estimate with `samples` independent scenarios.
struct ReliabilityEstimate {
  double reliability = 0.0;  ///< fraction of successful runs
  double mean_latency = 0.0; ///< mean achieved latency over successful runs
  std::size_t samples = 0;
  std::size_t failures = 0;  ///< runs where the application failed
};

[[nodiscard]] ReliabilityEstimate monte_carlo_reliability(
    const ReplicatedSchedule& schedule, const std::vector<double>& fail_prob,
    Rng& rng, std::size_t samples);

/// Analytic lower bound: the schedule survives whenever at most ε
/// processors fail (Theorem 4.1), so reliability >= P[#failures <= ε].
/// Computed exactly via dynamic programming over the Poisson-binomial
/// distribution of the failure count.
[[nodiscard]] double theorem_reliability_bound(
    std::size_t proc_count, std::size_t epsilon,
    const std::vector<double>& fail_prob);

/// Per-processor heterogeneous failure probabilities: a linear gradient
/// p_k = base · (1 + spread · (m-1-k)/(m-1)), clamped to [0, 1] — the first
/// processors are the flakiest, the last one fails at exactly `base`.  The
/// vector feeds both the reliability estimators above and the `hetero:`
/// failure-model law.
[[nodiscard]] std::vector<double> heterogeneous_fail_probs(
    std::size_t proc_count, double base, double spread);

}  // namespace ftsched
