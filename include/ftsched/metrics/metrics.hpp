// Evaluation metrics (paper §6).
#pragma once

#include <cstddef>

#include "ftsched/core/schedule.hpp"

namespace ftsched {

/// Fault-tolerance overhead in percent (paper §6):
///   Overhead = (latency − fault_free_latency) / fault_free_latency · 100.
/// `latency` may be a bound (ℓb) or a simulated crash latency (c); the
/// reference FTSA* is the latency of the no-replication schedule.
[[nodiscard]] double overhead_percent(double latency,
                                      double fault_free_latency);

/// Latency expressed in units of the workload's mean edge communication
/// cost (falling back to the mean task execution cost for edgeless
/// graphs).  The paper plots "normalized latency" without defining the
/// normalization; a granularity-invariant unit is required to reproduce
/// the figures' rising-with-granularity shape, and communication costs are
/// exactly what the granularity sweep holds fixed (see DESIGN.md).
[[nodiscard]] double normalized_latency(double latency,
                                        const CostModel& costs);

/// Communication statistics of a replicated schedule.
struct CommStats {
  std::size_t channels = 0;            ///< all realized channels
  std::size_t interproc_messages = 0;  ///< channels crossing processors
  /// Paper's bounds for reference: e(ε+1)² for FTSA, e(ε+1) for MC-FTSA.
  std::size_t ftsa_bound = 0;
  std::size_t mc_bound = 0;
};

[[nodiscard]] CommStats comm_stats(const ReplicatedSchedule& schedule);

/// Per-processor busy-time utilization over the failure-free makespan.
struct UtilizationStats {
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
};

[[nodiscard]] UtilizationStats utilization(const ReplicatedSchedule& schedule);

}  // namespace ftsched
