// Cost model binding a task graph to a platform (paper §2).
//
// E(t, Pk) — execution time of each task on each processor — is an arbitrary
// v×m matrix (unrelated machines model).  W(ti,tj) = V(ti,tj)·d(Pk,Ph) is
// derived from the graph's volumes and the platform's delays.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ftsched/dag/graph.hpp"
#include "ftsched/platform/platform.hpp"

namespace ftsched {

class CostModel {
 public:
  /// `exec[t][p]` = E(t, Pp); must be v×m with strictly positive entries.
  CostModel(const TaskGraph& graph, const Platform& platform,
            std::vector<std::vector<double>> exec);

  [[nodiscard]] const TaskGraph& graph() const noexcept { return *graph_; }
  [[nodiscard]] const Platform& platform() const noexcept {
    return *platform_;
  }

  /// E(t, Pk).
  [[nodiscard]] double exec(TaskId t, ProcId p) const {
    return exec_[t.index() * m_ + p.index()];
  }

  /// E̅(t) = (Σ_j E(t,Pj)) / m — average execution time over all processors.
  [[nodiscard]] double avg_exec(TaskId t) const {
    return avg_exec_[t.index()];
  }

  /// max_j E(t, Pj) — slowest execution (used by granularity).
  [[nodiscard]] double max_exec(TaskId t) const {
    return max_exec_[t.index()];
  }

  /// min_j E(t, Pj) — fastest execution.
  [[nodiscard]] double min_exec(TaskId t) const {
    return min_exec_[t.index()];
  }

  /// Mean over all processors of E restricted to `procs` (the paper §4.3
  /// uses the average over the ε+1 fastest processors).
  [[nodiscard]] double avg_exec_on(TaskId t,
                                   const std::vector<ProcId>& procs) const;

  /// Communication time W(ti,tj) when ti is on `from` and tj on `to`:
  /// V(ti,tj) · d(from, to). Zero when from == to.
  [[nodiscard]] double comm(std::size_t edge_index, ProcId from,
                            ProcId to) const {
    return graph_->edge(edge_index).volume * platform_->delay(from, to);
  }

  /// Average communication cost W̅(ti,tj) = V(ti,tj)·d̅ of an edge.
  [[nodiscard]] double avg_comm(std::size_t edge_index) const {
    return graph_->edge(edge_index).volume * platform_->average_delay();
  }

  /// Mean of E̅(t) over all tasks.
  [[nodiscard]] double mean_avg_exec() const noexcept {
    return mean_avg_exec_;
  }

  /// Mean of W̅(e) over all edges (0 for edgeless graphs).  Granularity
  /// sweeps rescale execution times and leave communication untouched, so
  /// this is the granularity-invariant unit used for "normalized latency".
  [[nodiscard]] double mean_avg_comm() const;

  /// Granularity g(G,P) = Σ_t max_j E(t,Pj) / Σ_e V(e)·max d (paper §2:
  /// sum of slowest computations over sum of slowest communications).
  /// Returns +inf for graphs without (positive-volume) edges.
  [[nodiscard]] double granularity() const;

  /// Multiplies all execution times by `factor` (used by the workload
  /// generators to hit a target granularity exactly).
  void scale_exec(double factor);

  /// Process-wide-unique identity of this cost model's *values*:
  /// reassigned on construction and on every scale_exec.  Derived-quantity
  /// memos (the bottom-level cache in core/priorities) key on it, so stale
  /// reuse across mutation — or across address reuse — is impossible.
  [[nodiscard]] std::uint64_t revision() const noexcept { return revision_; }

 private:
  const TaskGraph* graph_;
  const Platform* platform_;
  std::size_t m_;
  std::vector<double> exec_;  // row-major v×m
  std::vector<double> avg_exec_;
  std::vector<double> max_exec_;
  std::vector<double> min_exec_;
  double mean_avg_exec_ = 0.0;
  std::uint64_t revision_ = 0;

  void recompute_aggregates();
};

}  // namespace ftsched
