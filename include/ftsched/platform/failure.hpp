// Fail-silent (fail-stop) processor failure scenarios (paper §1, §6).
//
// A scenario is a set of (processor, crash time) pairs.  A crashed processor
// executes nothing whose finish time exceeds its crash time and sends no
// messages after it.  crash time 0 models a processor dead from the start —
// the worst case used for the paper's "crash" curves.
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "ftsched/util/ids.hpp"
#include "ftsched/util/rng.hpp"

namespace ftsched {

struct Crash {
  ProcId proc;
  double time = 0.0;
};

class FailureScenario {
 public:
  FailureScenario() = default;
  explicit FailureScenario(std::vector<Crash> crashes);

  /// Adds a crash; a processor may appear at most once.
  void add(ProcId proc, double time = 0.0);

  [[nodiscard]] std::size_t crash_count() const noexcept {
    return crashes_.size();
  }
  [[nodiscard]] const std::vector<Crash>& crashes() const noexcept {
    return crashes_;
  }

  /// Crash time of `proc`, or +infinity if it never fails.
  [[nodiscard]] double crash_time(ProcId proc) const noexcept;

  [[nodiscard]] bool is_failed(ProcId proc) const noexcept {
    return crash_time(proc) < std::numeric_limits<double>::infinity();
  }

  /// True iff `proc` is alive at `time` (strictly before its crash).
  [[nodiscard]] bool alive_at(ProcId proc, double time) const noexcept {
    return time < crash_time(proc);
  }

 private:
  std::vector<Crash> crashes_;
};

/// `count` distinct victims drawn uniformly from the m processors, all
/// crashing at time `crash_time` (paper §6 crash experiments).
[[nodiscard]] FailureScenario random_crashes(Rng& rng, std::size_t proc_count,
                                             std::size_t count,
                                             double crash_time = 0.0);

/// Like random_crashes but each victim gets an independent crash time drawn
/// uniformly from [0, horizon).
[[nodiscard]] FailureScenario random_timed_crashes(Rng& rng,
                                                   std::size_t proc_count,
                                                   std::size_t count,
                                                   double horizon);

/// Every subset of exactly `count` processors out of `proc_count`, crashing
/// at time 0. Used by the exhaustive Theorem-4.1 validator; the number of
/// scenarios is C(proc_count, count), so keep the inputs small.
[[nodiscard]] std::vector<FailureScenario> all_crash_subsets(
    std::size_t proc_count, std::size_t count);

/// Crash-instant law: the scenario dimension of the sweep engine.
///
/// A law draws *unit-less* crash times — fractions of a reference latency
/// (the schedule's failure-free lower bound M*) — so one draw per instance
/// is comparable across algorithms whose absolute latencies differ.
/// Selected by spec strings (the shared util/spec.hpp syntax):
///
///   t0             crashes at time 0, the paper's worst case (default)
///   frac:f=0.5     all victims crash at f · M*
///   uniform:hi=1   victim times ~ U[0, hi · M*)   (failure.hpp's
///                  random_timed_crashes law as a sweep dimension)
///   exp:mean=0.5   victim times ~ Exponential with mean `mean` · M*
///                  (constant-rate fail-stop law)
class CrashTimeLaw {
 public:
  enum class Kind { kAtZero, kFraction, kUniform, kExponential };

  /// The default law is the paper's t=0 worst case.
  CrashTimeLaw() = default;

  /// Parses a law spec; throws InvalidArgument on unknown names/options.
  [[nodiscard]] static CrashTimeLaw parse(const std::string& spec);

  /// Canonical spec string (round-trips through parse).
  [[nodiscard]] std::string to_string() const;
  /// One-line human-readable description.
  [[nodiscard]] std::string describe() const;

  [[nodiscard]] Kind kind() const noexcept { return kind_; }

  /// Draws `count` unit crash times.  kAtZero consumes no randomness and
  /// returns zeros, so the default preserves legacy RNG streams exactly.
  [[nodiscard]] std::vector<double> sample(Rng& rng, std::size_t count) const;

  /// Known law names (for diagnostics and the CLI).
  [[nodiscard]] static std::vector<std::string> known();

 private:
  Kind kind_ = Kind::kAtZero;
  double param_ = 0.0;
};

}  // namespace ftsched
