// Fail-silent (fail-stop) processor failure scenarios (paper §1, §6).
//
// A scenario is a set of (processor, crash time) pairs.  A crashed processor
// executes nothing whose finish time exceeds its crash time and sends no
// messages after it.  crash time 0 models a processor dead from the start —
// the worst case used for the paper's "crash" curves.
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "ftsched/util/ids.hpp"
#include "ftsched/util/rng.hpp"

namespace ftsched {

struct Crash {
  ProcId proc;
  double time = 0.0;
};

class FailureScenario {
 public:
  FailureScenario() = default;
  explicit FailureScenario(std::vector<Crash> crashes);

  /// Adds a crash; a processor may appear at most once.
  void add(ProcId proc, double time = 0.0);

  [[nodiscard]] std::size_t crash_count() const noexcept {
    return crashes_.size();
  }
  [[nodiscard]] const std::vector<Crash>& crashes() const noexcept {
    return crashes_;
  }

  /// Crash time of `proc`, or +infinity if it never fails.
  [[nodiscard]] double crash_time(ProcId proc) const noexcept;

  [[nodiscard]] bool is_failed(ProcId proc) const noexcept {
    return crash_time(proc) < std::numeric_limits<double>::infinity();
  }

  /// True iff `proc` is alive at `time` (strictly before its crash).
  [[nodiscard]] bool alive_at(ProcId proc, double time) const noexcept {
    return time < crash_time(proc);
  }

 private:
  std::vector<Crash> crashes_;
};

/// `count` distinct victims drawn uniformly from the m processors, all
/// crashing at time `crash_time` (paper §6 crash experiments).
[[nodiscard]] FailureScenario random_crashes(Rng& rng, std::size_t proc_count,
                                             std::size_t count,
                                             double crash_time = 0.0);

/// Like random_crashes but each victim gets an independent crash time drawn
/// uniformly from [0, horizon).
[[nodiscard]] FailureScenario random_timed_crashes(Rng& rng,
                                                   std::size_t proc_count,
                                                   std::size_t count,
                                                   double horizon);

/// Every subset of exactly `count` processors out of `proc_count`, crashing
/// at time 0. Used by the exhaustive Theorem-4.1 validator; the number of
/// scenarios is C(proc_count, count), so keep the inputs small.
[[nodiscard]] std::vector<FailureScenario> all_crash_subsets(
    std::size_t proc_count, std::size_t count);

/// Crash-instant law: the scenario dimension of the sweep engine.
///
/// A law draws *unit-less* crash times — fractions of a reference latency
/// (the schedule's failure-free lower bound M*) — so one draw per instance
/// is comparable across algorithms whose absolute latencies differ.
/// Selected by spec strings (the shared util/spec.hpp syntax):
///
///   t0             crashes at time 0, the paper's worst case (default)
///   frac:f=0.5     all victims crash at f · M*
///   uniform:hi=1   victim times ~ U[0, hi · M*)   (failure.hpp's
///                  random_timed_crashes law as a sweep dimension)
///   exp:mean=0.5   victim times ~ Exponential with mean `mean` · M*
///                  (constant-rate fail-stop law)
class CrashTimeLaw {
 public:
  enum class Kind { kAtZero, kFraction, kUniform, kExponential };

  /// The default law is the paper's t=0 worst case.
  CrashTimeLaw() = default;

  /// Parses a law spec; throws InvalidArgument on unknown names/options.
  [[nodiscard]] static CrashTimeLaw parse(const std::string& spec);

  /// Canonical spec string (round-trips through parse).
  [[nodiscard]] std::string to_string() const;
  /// One-line human-readable description.
  [[nodiscard]] std::string describe() const;

  [[nodiscard]] Kind kind() const noexcept { return kind_; }

  /// Draws `count` unit crash times.  kAtZero consumes no randomness and
  /// returns zeros, so the default preserves legacy RNG streams exactly.
  [[nodiscard]] std::vector<double> sample(Rng& rng, std::size_t count) const;

  /// Known law names (for diagnostics and the CLI).
  [[nodiscard]] static std::vector<std::string> known();

 private:
  Kind kind_ = Kind::kAtZero;
  double param_ = 0.0;
};

/// Failure-model law: how many processors crash and which ones — the third
/// scenario axis of the sweep engine, layered under CrashTimeLaw (when the
/// victims crash).
///
/// A model composes a *count law* with a *victim law*.  Count laws:
///
///   eps              exactly ε victims, the paper's §6 setup (default)
///   fixed:k=K        exactly K victims; K may exceed ε to measure graceful
///                    degradation (clamped to the m available processors)
///   bernoulli:p=P    every processor crashes independently with
///                    probability P: the count is Binomial(m, P) and can
///                    exceed ε, so schedules are pushed past their
///                    guarantee (the ROADMAP's probabilistic-failure item)
///
/// Victim laws:
///
///   uniform          victims drawn uniformly at random (default)
///   domain (size=S)  the m processors are partitioned into fault domains
///                    (racks/switches) of S consecutive processors; whole
///                    domains crash together in random order, the last one
///                    truncated so the count law stays exact — correlated
///                    failures over a structured interconnect topology
///
/// Spec syntax: the count-law name picks the model; every count law takes
/// an optional `domain=S` key to switch the victim law, and `domain:size=S`
/// is the canonical shorthand for ε whole-domain victims:
///
///   eps | fixed:k=6 | bernoulli:p=0.1 | domain:size=4
///   fixed:k=6,domain=2 | bernoulli:p=0.1,domain=4
///
/// The default model consumes exactly the legacy RNG draws (one
/// sample_without_replacement(m, ε)), so empty specs keep every legacy
/// stream and golden byte-identical.
class FailureModel {
 public:
  enum class CountKind { kEpsilon, kFixed, kBernoulli };
  enum class VictimKind { kUniform, kDomain };

  /// The default model is the paper's setup: ε uniform victims.
  FailureModel() = default;

  /// Parses a model spec; throws InvalidArgument on unknown names/options
  /// and on meaningless parameters (p outside [0,1], domain size 0, ...).
  [[nodiscard]] static FailureModel parse(const std::string& spec);

  /// Canonical spec string (round-trips through parse).
  [[nodiscard]] std::string to_string() const;
  /// One-line human-readable description.
  [[nodiscard]] std::string describe() const;

  [[nodiscard]] CountKind count_kind() const noexcept { return count_; }
  [[nodiscard]] VictimKind victim_kind() const noexcept { return victims_; }
  /// Victims per fixed draw / fault-domain width (meaningful per kind).
  [[nodiscard]] std::size_t fixed_count() const noexcept { return fixed_k_; }
  [[nodiscard]] std::size_t domain_size() const noexcept {
    return domain_size_;
  }
  [[nodiscard]] double probability() const noexcept { return prob_; }

  /// True for the paper default (ε uniform victims): evaluate_instance
  /// keeps its legacy RNG stream and series layout exactly.
  [[nodiscard]] bool is_default() const noexcept {
    return count_ == CountKind::kEpsilon && victims_ == VictimKind::kUniform;
  }

  /// Draws one instance's victim set: the count law decides how many (may
  /// exceed `epsilon`; never more than `proc_count`), the victim law which
  /// ones.  The order matters downstream — the runner pairs its fixed
  /// crash-count series on prefixes of this vector.
  [[nodiscard]] std::vector<std::size_t> draw(Rng& rng,
                                              std::size_t proc_count,
                                              std::size_t epsilon) const;

  /// Known model names (for diagnostics and the CLI).
  [[nodiscard]] static std::vector<std::string> known();

 private:
  CountKind count_ = CountKind::kEpsilon;
  VictimKind victims_ = VictimKind::kUniform;
  std::size_t fixed_k_ = 1;      ///< kFixed count
  double prob_ = 0.1;            ///< kBernoulli per-processor probability
  std::size_t domain_size_ = 4;  ///< kDomain rack width
};

}  // namespace ftsched
