// Fail-silent (fail-stop) processor failure scenarios (paper §1, §6).
//
// A scenario is a set of (processor, crash time) pairs.  A crashed processor
// executes nothing whose finish time exceeds its crash time and sends no
// messages after it.  crash time 0 models a processor dead from the start —
// the worst case used for the paper's "crash" curves.
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "ftsched/util/ids.hpp"
#include "ftsched/util/rng.hpp"

namespace ftsched {

struct Crash {
  ProcId proc;
  double time = 0.0;
};

class FailureScenario {
 public:
  FailureScenario() = default;
  explicit FailureScenario(std::vector<Crash> crashes);

  /// Adds a crash; a processor may appear at most once.
  void add(ProcId proc, double time = 0.0);

  [[nodiscard]] std::size_t crash_count() const noexcept {
    return crashes_.size();
  }
  [[nodiscard]] const std::vector<Crash>& crashes() const noexcept {
    return crashes_;
  }

  /// Crash time of `proc`, or +infinity if it never fails.
  [[nodiscard]] double crash_time(ProcId proc) const noexcept;

  [[nodiscard]] bool is_failed(ProcId proc) const noexcept {
    return crash_time(proc) < std::numeric_limits<double>::infinity();
  }

  /// True iff `proc` is alive at `time` (strictly before its crash).
  [[nodiscard]] bool alive_at(ProcId proc, double time) const noexcept {
    return time < crash_time(proc);
  }

 private:
  std::vector<Crash> crashes_;
};

/// One processor's downtime window: it crashes at `crash_time` and — when
/// `repair_time` is finite — comes back empty (restarted, all local state
/// lost) at `repair_time`.  +infinity means the crash is permanent, which
/// makes a repair-free timeline equivalent to a FailureScenario.
struct ProcOutage {
  ProcId proc;
  double crash_time = 0.0;
  double repair_time = std::numeric_limits<double>::infinity();
};

/// A failure *timeline*: the generalisation of FailureScenario the online
/// (policy-driven) simulator consumes.  Where a scenario is a one-shot
/// victim set, a timeline orders crash and repair events on the time axis,
/// so repair/restart failure dynamics (`repair:mttr=`, `burst:`) become
/// expressible.  Repair-free timelines round-trip to scenarios exactly.
class FailureTimeline {
 public:
  FailureTimeline() = default;

  /// Adds an outage; a processor may appear at most once and its repair
  /// (when finite) must come strictly after its crash.
  void add(ProcId proc, double crash_time,
           double repair_time = std::numeric_limits<double>::infinity());

  [[nodiscard]] const std::vector<ProcOutage>& outages() const noexcept {
    return outages_;
  }
  [[nodiscard]] bool empty() const noexcept { return outages_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return outages_.size(); }

  /// True iff any outage ends in a finite repair.
  [[nodiscard]] bool has_repairs() const noexcept;

  /// Embeds a one-shot victim set as a timeline of permanent crashes.
  [[nodiscard]] static FailureTimeline from_scenario(
      const FailureScenario& scenario);

  /// Drops the repair half: the conservative static view of this timeline.
  [[nodiscard]] FailureScenario crashes_only() const;

 private:
  std::vector<ProcOutage> outages_;
};

/// `count` distinct victims drawn uniformly from the m processors, all
/// crashing at time `crash_time` (paper §6 crash experiments).
[[nodiscard]] FailureScenario random_crashes(Rng& rng, std::size_t proc_count,
                                             std::size_t count,
                                             double crash_time = 0.0);

/// Like random_crashes but each victim gets an independent crash time drawn
/// uniformly from [0, horizon).
[[nodiscard]] FailureScenario random_timed_crashes(Rng& rng,
                                                   std::size_t proc_count,
                                                   std::size_t count,
                                                   double horizon);

/// Every subset of exactly `count` processors out of `proc_count`, crashing
/// at time 0. Used by the exhaustive Theorem-4.1 validator; the number of
/// scenarios is C(proc_count, count), so keep the inputs small.
[[nodiscard]] std::vector<FailureScenario> all_crash_subsets(
    std::size_t proc_count, std::size_t count);

/// Crash-instant law: the scenario dimension of the sweep engine.
///
/// A law draws *unit-less* crash times — fractions of a reference latency
/// (the schedule's failure-free lower bound M*) — so one draw per instance
/// is comparable across algorithms whose absolute latencies differ.
/// Selected by spec strings (the shared util/spec.hpp syntax):
///
///   t0             crashes at time 0, the paper's worst case (default)
///   frac:f=0.5     all victims crash at f · M*
///   uniform:hi=1   victim times ~ U[0, hi · M*)   (failure.hpp's
///                  random_timed_crashes law as a sweep dimension)
///   exp:mean=0.5   victim times ~ Exponential with mean `mean` · M*
///                  (constant-rate fail-stop law)
class CrashTimeLaw {
 public:
  enum class Kind { kAtZero, kFraction, kUniform, kExponential };

  /// The default law is the paper's t=0 worst case.
  CrashTimeLaw() = default;

  /// Parses a law spec; throws InvalidArgument on unknown names/options.
  [[nodiscard]] static CrashTimeLaw parse(const std::string& spec);

  /// Canonical spec string (round-trips through parse).
  [[nodiscard]] std::string to_string() const;
  /// One-line human-readable description.
  [[nodiscard]] std::string describe() const;

  [[nodiscard]] Kind kind() const noexcept { return kind_; }

  /// Draws `count` unit crash times.  kAtZero consumes no randomness and
  /// returns zeros, so the default preserves legacy RNG streams exactly.
  [[nodiscard]] std::vector<double> sample(Rng& rng, std::size_t count) const;

  /// Known law names (for diagnostics and the CLI).
  [[nodiscard]] static std::vector<std::string> known();

 private:
  Kind kind_ = Kind::kAtZero;
  double param_ = 0.0;
};

/// Failure-model law: how many processors crash and which ones — the third
/// scenario axis of the sweep engine, layered under CrashTimeLaw (when the
/// victims crash).
///
/// A model composes a *count law* with a *victim law*.  Count laws:
///
///   eps              exactly ε victims, the paper's §6 setup (default)
///   fixed:k=K        exactly K victims; K may exceed ε to measure graceful
///                    degradation (clamped to the m available processors)
///   bernoulli:p=P    every processor crashes independently with
///                    probability P: the count is Binomial(m, P) and can
///                    exceed ε, so schedules are pushed past their
///                    guarantee (the ROADMAP's probabilistic-failure item)
///   repair:mttr=M    bernoulli victims (p=P, default 0.1) whose crashes
///                    are *transient*: each victim restarts after an
///                    Exponential(mean M) unit delay, producing a failure
///                    timeline instead of a one-shot victim set
///   burst:p=P        time-correlated bernoulli burst: all victims crash
///                    within a window of `width` (unit, default 0.25) after
///                    a common onset drawn from the crash-time law; an
///                    optional mttr=M adds repairs as for `repair:`
///   hetero:base=B    per-processor heterogeneous rates fed from
///                    metrics/reliability.hpp: processor k crashes with
///                    probability heterogeneous_fail_probs(m, B, spread)[k]
///                    (a linear gradient, spread default 1 — the first
///                    processors are the flakiest); mttr=M adds repairs
///
/// Victim laws:
///
///   uniform          victims drawn uniformly at random (default)
///   domain (size=S)  the m processors are partitioned into fault domains
///                    (racks/switches) of S consecutive processors; whole
///                    domains crash together in random order, the last one
///                    truncated so the count law stays exact — correlated
///                    failures over a structured interconnect topology
///
/// Spec syntax: the count-law name picks the model; every count law takes
/// an optional `domain=S` key to switch the victim law, and `domain:size=S`
/// is the canonical shorthand for ε whole-domain victims:
///
///   eps | fixed:k=6 | bernoulli:p=0.1 | domain:size=4
///   fixed:k=6,domain=2 | bernoulli:p=0.1,domain=4
///
/// The default model consumes exactly the legacy RNG draws (one
/// sample_without_replacement(m, ε)), so empty specs keep every legacy
/// stream and golden byte-identical.
class FailureModel {
 public:
  enum class CountKind { kEpsilon, kFixed, kBernoulli, kHetero };
  enum class VictimKind { kUniform, kDomain };

  /// The default model is the paper's setup: ε uniform victims.
  FailureModel() = default;

  /// Parses a model spec; throws InvalidArgument on unknown names/options
  /// and on meaningless parameters (p outside [0,1], domain size 0, ...).
  [[nodiscard]] static FailureModel parse(const std::string& spec);

  /// Canonical spec string (round-trips through parse).
  [[nodiscard]] std::string to_string() const;
  /// One-line human-readable description.
  [[nodiscard]] std::string describe() const;

  [[nodiscard]] CountKind count_kind() const noexcept { return count_; }
  [[nodiscard]] VictimKind victim_kind() const noexcept { return victims_; }
  /// Victims per fixed draw / fault-domain width (meaningful per kind).
  [[nodiscard]] std::size_t fixed_count() const noexcept { return fixed_k_; }
  [[nodiscard]] std::size_t domain_size() const noexcept {
    return domain_size_;
  }
  [[nodiscard]] double probability() const noexcept { return prob_; }

  /// True for the paper default (ε uniform victims): evaluate_instance
  /// keeps its legacy RNG stream and series layout exactly.
  [[nodiscard]] bool is_default() const noexcept {
    return count_ == CountKind::kEpsilon && victims_ == VictimKind::kUniform;
  }

  /// Draws one instance's victim set: the count law decides how many (may
  /// exceed `epsilon`; never more than `proc_count`), the victim law which
  /// ones.  The order matters downstream — the runner pairs its fixed
  /// crash-count series on prefixes of this vector.
  [[nodiscard]] std::vector<std::size_t> draw(Rng& rng,
                                              std::size_t proc_count,
                                              std::size_t epsilon) const;

  /// True when crashes are transient (mttr set): victims restart, so cells
  /// under this model carry a failure timeline rather than a victim set.
  [[nodiscard]] bool has_repair() const noexcept { return repair_mttr_ > 0; }
  /// Mean unit time to repair (Exponential mean); 0 when has_repair() is
  /// false.
  [[nodiscard]] double mttr() const noexcept { return repair_mttr_; }
  /// True for the time-correlated `burst:` law.
  [[nodiscard]] bool is_burst() const noexcept {
    return count_ == CountKind::kBernoulli && burst_width_ > 0;
  }
  [[nodiscard]] double burst_width() const noexcept { return burst_width_; }

  /// Draws one unit repair delay per victim (Exponential, mean mttr()).
  /// Requires has_repair().
  [[nodiscard]] std::vector<double> sample_repair_delays(
      Rng& rng, std::size_t count) const;

  /// Draws one unit in-burst offset per victim, ~ U[0, burst_width()).
  /// Requires is_burst().
  [[nodiscard]] std::vector<double> sample_burst_offsets(
      Rng& rng, std::size_t count) const;

  /// Platform-dependent validation the parser cannot do: a repair/burst law
  /// with `domain=` wider than the platform would silently collapse into a
  /// single mega-domain, so reject it loudly instead.  (The legacy one-shot
  /// laws keep the historical truncating behaviour for back-compat.)
  void validate(std::size_t proc_count) const;

  /// Known model names (for diagnostics and the CLI).
  [[nodiscard]] static std::vector<std::string> known();

 private:
  CountKind count_ = CountKind::kEpsilon;
  VictimKind victims_ = VictimKind::kUniform;
  std::size_t fixed_k_ = 1;      ///< kFixed count
  double prob_ = 0.1;            ///< kBernoulli per-processor probability
  std::size_t domain_size_ = 4;  ///< kDomain rack width
  double repair_mttr_ = 0.0;     ///< mean unit repair delay; 0 = permanent
  double burst_width_ = 0.0;     ///< unit burst window; 0 = uncorrelated
  double hetero_base_ = 0.1;     ///< kHetero base probability
  double hetero_spread_ = 1.0;   ///< kHetero gradient strength
};

}  // namespace ftsched
