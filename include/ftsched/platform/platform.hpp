// Heterogeneous, fully-connected platform model (paper §2).
//
// A platform is a set of m processors {P1..Pm} plus the unit-data delay
// matrix d(Pk, Ph); d is zero on the diagonal (intra-processor communication
// is free) and strictly positive elsewhere.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "ftsched/util/ids.hpp"

namespace ftsched {

class Platform {
 public:
  /// Homogeneous-link platform: every inter-processor delay is `unit_delay`.
  Platform(std::size_t proc_count, double unit_delay);

  /// Fully general platform from a delay matrix (row-major m×m, zero
  /// diagonal, non-negative entries).
  explicit Platform(std::vector<std::vector<double>> delay);

  [[nodiscard]] std::size_t proc_count() const noexcept { return m_; }

  /// All processor ids, 0..m-1.
  [[nodiscard]] std::vector<ProcId> procs() const;

  /// d(Pk, Ph): time to send one data unit from k to h. d(k,k) == 0.
  [[nodiscard]] double delay(ProcId from, ProcId to) const;

  /// Average of d over ordered pairs k != h (the paper's d̄).
  [[nodiscard]] double average_delay() const noexcept { return avg_delay_; }

  /// max_h d(k, h): worst-case outgoing delay from k (used by tℓ).
  [[nodiscard]] double max_delay_from(ProcId from) const;

  /// Largest entry of the whole delay matrix (used by granularity).
  [[nodiscard]] double max_delay() const noexcept { return max_delay_; }

  /// The `count` processors with the smallest average outgoing delay,
  /// i.e. "the ε+1 fastest links" used by the §4.3 deadline computation.
  [[nodiscard]] std::vector<ProcId> fastest_links(std::size_t count) const;

  /// All off-diagonal delay entries (m·(m−1) values, unsorted).
  [[nodiscard]] std::vector<double> off_diagonal_delays() const;

 private:
  void finalize();

  std::size_t m_ = 0;
  std::vector<double> delay_;  // row-major m×m
  std::vector<double> max_from_;
  double avg_delay_ = 0.0;
  double max_delay_ = 0.0;
};

}  // namespace ftsched
