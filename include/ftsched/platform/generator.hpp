// Random platform and execution-cost generation.
//
// The paper draws unit link delays uniformly from [0.5, 1] and models task
// computational heterogeneity with an arbitrary E(t, P) matrix; we offer the
// two standard heterogeneity structures from the scheduling literature
// (consistent = uniform machines with per-processor speeds; inconsistent =
// unrelated machines) so ablations can compare them.
#pragma once

#include <cstddef>
#include <vector>

#include "ftsched/dag/graph.hpp"
#include "ftsched/platform/platform.hpp"
#include "ftsched/util/rng.hpp"

namespace ftsched {

struct PlatformParams {
  std::size_t proc_count = 20;
  double delay_min = 0.5;  ///< paper: unit message delay ~ U[0.5, 1]
  double delay_max = 1.0;
};

/// Fully-connected platform with i.i.d. uniform link delays.
[[nodiscard]] Platform make_random_platform(Rng& rng,
                                            const PlatformParams& params);

enum class Heterogeneity {
  kConsistent,    ///< E(t,P) = base(t) / speed(P): uniform machines
  kInconsistent,  ///< E(t,P) i.i.d.: unrelated machines (paper's model)
};

struct ExecCostParams {
  double base_min = 10.0;  ///< per-task base cost ~ U[base_min, base_max]
  double base_max = 50.0;
  /// Per-(task, processor) multiplicative jitter ~ U[1, 1+spread]
  /// (kInconsistent) or per-processor speed ~ U[1, 1+spread] (kConsistent).
  double spread = 1.0;
  Heterogeneity heterogeneity = Heterogeneity::kInconsistent;
};

/// E(t, P) matrix (v rows, m columns), strictly positive.
[[nodiscard]] std::vector<std::vector<double>> make_exec_costs(
    Rng& rng, const TaskGraph& graph, std::size_t proc_count,
    const ExecCostParams& params);

}  // namespace ftsched
