#include "ftsched/sim/event_sim.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "ftsched/core/reschedule.hpp"
#include "ftsched/util/error.hpp"

namespace ftsched {

double SimulationResult::task_completion(TaskId t) const {
  double best = std::numeric_limits<double>::infinity();
  for (const ReplicaOutcome& o : outcomes[t.index()]) {
    if (o.status == ReplicaStatus::kCompleted) best = std::min(best, o.finish);
  }
  return best;
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// kRepair sorts after kCrash at equal time: a processor that crashes and
// restarts at the same instant still loses its running replica.  The static
// path never pushes repair events, so the order of the first three is
// untouched.
enum class EventType : std::uint8_t {
  kFinish = 0,
  kMessage = 1,
  kCrash = 2,
  kRepair = 3
};

struct Event {
  double time;
  std::uint32_t seq;  // FIFO tie-break for full determinism
  std::uint32_t a;    // finish: replica; message: dst replica; crash: proc
  std::uint32_t b;    // message: flat in-slot of dst
  EventType type;
};

// Min-queue order: earlier time, then finish < message < crash, then FIFO.
// The order is total (seq is unique), so any heap implementation pops the
// exact same event sequence — the bit-identity anchor of this rewrite.
struct EventLater {
  bool operator()(const Event& x, const Event& y) const {
    if (x.time != y.time) return x.time > y.time;
    if (x.type != y.type) return x.type > y.type;
    return x.seq > y.seq;
  }
};

enum class State : std::uint8_t {
  kPending,
  kRunning,
  kCompleted,
  kDead,
  kCancelled
};

struct OutChannel {
  std::uint32_t dst;     // flat destination replica
  std::uint32_t slot;    // flat in-slot of the destination (slot arena index)
  double comm_duration;  // volume * delay (0 for intra-processor)
  double volume;         // edge volume: the online mode recomputes the
                         // duration from the *current* processors (the same
                         // multiplication, so unmoved channels match
                         // comm_duration bit for bit)
  bool interproc;
};

constexpr std::uint32_t kNoReplica = std::numeric_limits<std::uint32_t>::max();

}  // namespace

/// The simulator split along the static/dynamic line: everything derived
/// from the schedule alone is computed once at construction (flat replica
/// arrays, CSR out-channel and per-processor queues, pristine copies of the
/// countdown arrays); run() resets only the per-scenario state with
/// fill/copy sweeps over flat arrays — structure-of-arrays, no per-node
/// touches, no allocation in steady state — and replays the event loop on
/// an arena-backed binary heap whose storage is retained across runs.
class ScheduleSimulator::Impl {
 public:
  Impl(const ReplicatedSchedule& schedule, const SimulationOptions& options)
      : schedule_(schedule),
        options_(options),
        g_(schedule.graph()),
        platform_(schedule.platform()),
        contention_free_(options.comm.kind == CommModelKind::kContentionFree),
        comm_(make_comm_model(schedule.platform().proc_count(), options.comm)) {
    build_static();
  }

  SimulationResult run(const FailureScenario& failures) {
    drive(failures);
    return collect();
  }

  ScheduleSimulator::Summary run_summary(const FailureScenario& failures) {
    drive(failures);
    return summarize();
  }

  void run_batch(std::span<const FailureScenario> scenarios,
                 std::span<ScheduleSimulator::Summary> summaries) {
    FTSCHED_REQUIRE(summaries.size() >= scenarios.size(),
                    "run_batch: summary span shorter than the scenario span");
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      drive(scenarios[i]);
      summaries[i] = summarize();
    }
  }

  ScheduleSimulator::OnlineSummary run_online(const FailureTimeline& timeline,
                                              ReschedulePolicy* policy) {
    drive_online(timeline, policy);
    ScheduleSimulator::OnlineSummary s;
    const ScheduleSimulator::Summary base = summarize();
    s.success = base.success;
    s.latency = base.latency;
    s.moves = moves_applied_;
    s.repairs = repairs_applied_;
    return s;
  }

 private:
  void drive(const FailureScenario& failures) {
    reset();
    seed(failures);
    while (!events_.empty()) {
      const Event ev = pop();
      switch (ev.type) {
        case EventType::kFinish:
          on_finish(ev.a, ev.time);
          break;
        case EventType::kMessage:
          on_message(ev.a, ev.b, ev.time);
          break;
        case EventType::kCrash:
          on_crash(ev.a, ev.time);
          break;
        case EventType::kRepair:
          FTSCHED_ASSERT(false, "repair event in a static run");
          break;
      }
    }
  }

  // --- static structure (depends only on the schedule) ----------------------

  void build_static() {
    const std::size_t v = g_.task_count();
    offset_.assign(v + 1, 0);
    for (std::size_t t = 0; t < v; ++t) {
      offset_[t + 1] = offset_[t] + schedule_.replicas(TaskId{t}).size();
    }
    const std::size_t total = offset_[v];
    proc_of_.resize(total);
    duration_.resize(total);
    sched_start_.resize(total);
    task_of_.resize(total);
    for (std::size_t t = 0; t < v; ++t) {
      for (std::size_t flat = offset_[t]; flat < offset_[t + 1]; ++flat) {
        task_of_[flat] = static_cast<std::uint32_t>(t);
      }
    }

    // In-edge slots live in one arena: replica `flat` owns the contiguous
    // range [in_offset_[flat], in_offset_[flat + 1]), one slot per in-edge
    // of its task, in in-edge-list order.  slot_of_edge[e] is the position
    // of edge e within its destination's in-edge list.
    std::vector<std::size_t> slot_of_edge(g_.edge_count(), 0);
    in_offset_.assign(total + 1, 0);
    unsatisfied0_.assign(total, 0);
    for (TaskId t : g_.tasks()) {
      const auto in = g_.in_edges(t);
      for (std::size_t pos = 0; pos < in.size(); ++pos) {
        slot_of_edge[in[pos]] = pos;
      }
      const auto& reps = schedule_.replicas(t);
      for (std::size_t k = 0; k < reps.size(); ++k) {
        const std::size_t flat = offset_[t.index()] + k;
        proc_of_[flat] = static_cast<std::uint32_t>(reps[k].proc.index());
        duration_[flat] = reps[k].finish - reps[k].start;
        sched_start_[flat] = reps[k].start;
        in_offset_[flat + 1] = in.size();
        unsatisfied0_[flat] = static_cast<std::uint32_t>(in.size());
      }
    }
    for (std::size_t flat = 0; flat < total; ++flat) {
      in_offset_[flat + 1] += in_offset_[flat];
    }
    const std::size_t total_slots = in_offset_[total];
    live_sources0_.assign(total_slots, 0);

    // Channels -> CSR outgoing lists and live-source counts.  Two passes:
    // count, then fill, preserving the per-source channel order of the
    // schedule (edge-major, channel order within the edge).
    out_offset_.assign(total + 1, 0);
    for (std::size_t e = 0; e < g_.edge_count(); ++e) {
      const Edge& edge = g_.edge(e);
      for (const Channel& c : schedule_.channels(e)) {
        ++out_offset_[offset_[edge.src.index()] + c.src_replica + 1];
      }
    }
    for (std::size_t flat = 0; flat < total; ++flat) {
      out_offset_[flat + 1] += out_offset_[flat];
    }
    out_.resize(out_offset_[total]);
    std::vector<std::size_t> fill(total, 0);
    for (std::size_t e = 0; e < g_.edge_count(); ++e) {
      const Edge& edge = g_.edge(e);
      for (const Channel& c : schedule_.channels(e)) {
        const std::size_t src = offset_[edge.src.index()] + c.src_replica;
        const std::size_t dst = offset_[edge.dst.index()] + c.dst_replica;
        const std::size_t slot = in_offset_[dst] + slot_of_edge[e];
        const double d = platform_.delay(ProcId{proc_of_[src]}, ProcId{proc_of_[dst]});
        out_[out_offset_[src] + fill[src]++] =
            OutChannel{static_cast<std::uint32_t>(dst),
                       static_cast<std::uint32_t>(slot), edge.volume * d,
                       edge.volume, proc_of_[src] != proc_of_[dst]};
        ++live_sources0_[slot];
      }
    }

    // Per-processor execution order (CSR): scheduled start, then flat id.
    const std::size_t m = platform_.proc_count();
    queue_offset_.assign(m + 1, 0);
    for (std::size_t flat = 0; flat < total; ++flat) {
      ++queue_offset_[proc_of_[flat] + 1];
    }
    for (std::size_t p = 0; p < m; ++p) {
      queue_offset_[p + 1] += queue_offset_[p];
    }
    queue_.resize(total);
    std::vector<std::size_t> qfill(m, 0);
    for (std::size_t flat = 0; flat < total; ++flat) {
      const std::size_t p = proc_of_[flat];
      queue_[queue_offset_[p] + qfill[p]++] = static_cast<std::uint32_t>(flat);
    }
    for (std::size_t p = 0; p < m; ++p) {
      std::sort(queue_.begin() + static_cast<std::ptrdiff_t>(queue_offset_[p]),
                queue_.begin() + static_cast<std::ptrdiff_t>(queue_offset_[p + 1]),
                [this](std::uint32_t a, std::uint32_t b) {
                  if (sched_start_[a] != sched_start_[b])
                    return sched_start_[a] < sched_start_[b];
                  return a < b;
                });
    }

    // Exit-task replica ranges, for the summary fold.
    for (TaskId t : g_.exit_tasks()) {
      exit_ranges_.emplace_back(offset_[t.index()], offset_[t.index() + 1]);
    }

    // Size the dynamic arrays once; reset() only overwrites them.
    state_.assign(total, State::kPending);
    actual_start_.assign(total, 0.0);
    actual_finish_.assign(total, 0.0);
    unsatisfied_ = unsatisfied0_;
    satisfied_.assign(total_slots, 0);
    live_sources_ = live_sources0_;
    head_.assign(m, 0);
    busy_.assign(m, 0);
    crashed_.assign(m, 0);
    // Worst-case live events: one finish per replica + one message per
    // channel in flight + the crashes; reserving the replica+channel part
    // up front makes the heap allocation-free for every scenario whose
    // crash count fits the slack of the round-up.
    events_.reserve(total + out_.size() + 16);
  }

  // --- per-run reset --------------------------------------------------------

  void reset() {
    // Contiguous fill/copy sweeps over the flat arrays — this is the whole
    // per-run cost of the build-once split, so it must stay memset-shaped.
    std::fill(state_.begin(), state_.end(), State::kPending);
    std::fill(actual_start_.begin(), actual_start_.end(), 0.0);
    std::fill(actual_finish_.begin(), actual_finish_.end(), 0.0);
    std::copy(unsatisfied0_.begin(), unsatisfied0_.end(), unsatisfied_.begin());
    std::fill(satisfied_.begin(), satisfied_.end(), std::uint8_t{0});
    std::copy(live_sources0_.begin(), live_sources0_.end(),
              live_sources_.begin());
    std::fill(head_.begin(), head_.end(), 0u);
    std::fill(busy_.begin(), busy_.end(), std::uint8_t{0});
    std::fill(crashed_.begin(), crashed_.end(), std::uint8_t{0});
    events_.clear();  // storage retained
    seq_ = 0;
    messages_delivered_ = 0;
    // Contention-aware models are stateful (they book delivery lanes as
    // messages flow); rewind instead of reallocating.  The contention-free
    // default is stateless and bypassed entirely in on_finish.
    if (!contention_free_) comm_->reset();
  }

  void seed(const FailureScenario& failures) {
    for (const Crash& c : failures.crashes()) {
      push(Event{c.time, seq_++, static_cast<std::uint32_t>(c.proc.index()), 0,
                 EventType::kCrash});
    }
    const std::size_t m = platform_.proc_count();
    for (std::size_t p = 0; p < m; ++p) {
      try_start(p, 0.0);
    }
  }

  void push(const Event& ev) {
    events_.push_back(ev);
    std::push_heap(events_.begin(), events_.end(), EventLater{});
  }

  Event pop() {
    std::pop_heap(events_.begin(), events_.end(), EventLater{});
    const Event ev = events_.back();
    events_.pop_back();
    return ev;
  }

  // --- event handlers -------------------------------------------------------

  void try_start(std::size_t p, double now) {
    if (crashed_[p] || busy_[p]) return;
    const std::size_t end = queue_offset_[p + 1];
    std::size_t cursor = queue_offset_[p] + head_[p];
    for (; cursor < end; ++cursor) {
      const std::uint32_t flat = queue_[cursor];
      const State s = state_[flat];
      if (s == State::kCancelled || s == State::kDead) {
        ++head_[p];  // skip provably-never-ready / lost replicas
        continue;
      }
      if (s != State::kPending || unsatisfied_[flat] > 0) return;  // wait
      state_[flat] = State::kRunning;
      busy_[p] = 1;
      actual_start_[flat] = now;
      const double finish = now + duration_[flat];
      push(Event{finish, seq_++, flat, 0, EventType::kFinish});
      return;
    }
  }

  void on_finish(std::uint32_t flat, double now) {
    if (state_[flat] != State::kRunning) return;  // killed by a crash
    state_[flat] = State::kCompleted;
    actual_finish_[flat] = now;
    const std::size_t p = proc_of_[flat];
    busy_[p] = 0;
    ++head_[p];
    // Emit all outgoing messages (active replication: send unconditionally).
    const std::size_t out_end = out_offset_[flat + 1];
    for (std::size_t i = out_offset_[flat]; i < out_end; ++i) {
      const OutChannel& ch = out_[i];
      if (ch.interproc) {
        // Contention-free arrival is ready + duration exactly; skipping the
        // virtual dispatch changes no double.
        const double arrival =
            contention_free_
                ? now + ch.comm_duration
                : comm_->deliver(ProcId{proc_of_[flat]}, now, ch.comm_duration);
        ++messages_delivered_;
        push(Event{arrival, seq_++, ch.dst, ch.slot, EventType::kMessage});
      } else {
        push(Event{now, seq_++, ch.dst, ch.slot, EventType::kMessage});
      }
    }
    try_start(p, now);
  }

  void on_message(std::uint32_t dst, std::uint32_t slot, double now) {
    if (satisfied_[slot]) return;  // first input wins; ignore the rest
    satisfied_[slot] = 1;
    FTSCHED_ASSERT(unsatisfied_[dst] > 0, "satisfied count underflow");
    --unsatisfied_[dst];
    if (state_[dst] == State::kPending && unsatisfied_[dst] == 0) {
      try_start(proc_of_[dst], now);
    }
  }

  void on_crash(std::uint32_t p, double now) {
    if (crashed_[p]) return;
    crashed_[p] = 1;
    // Kill everything on p that has not completed by `now`.  A replica
    // finishing exactly at the crash instant counts as completed (its
    // finish event sorts before the crash event at equal time).
    const std::size_t end = queue_offset_[p + 1];
    for (std::size_t i = queue_offset_[p] + head_[p]; i < end; ++i) {
      const std::uint32_t flat = queue_[i];
      if (state_[flat] == State::kPending || state_[flat] == State::kRunning) {
        mark_lost(flat, State::kDead, now);
      }
    }
    busy_[p] = 0;
  }

  /// Marks a replica dead/cancelled and propagates doomed-input
  /// cancellations downstream.
  void mark_lost(std::uint32_t flat, State lost_state, double now) {
    FTSCHED_ASSERT(state_[flat] == State::kPending ||
                       state_[flat] == State::kRunning,
                   "losing a replica twice");
    state_[flat] = lost_state;
    const std::size_t out_end = out_offset_[flat + 1];
    for (std::size_t i = out_offset_[flat]; i < out_end; ++i) {
      const OutChannel& ch = out_[i];
      FTSCHED_ASSERT(live_sources_[ch.slot] > 0, "live source count underflow");
      if (--live_sources_[ch.slot] == 0 && !satisfied_[ch.slot] &&
          state_[ch.dst] == State::kPending) {
        const std::size_t dp = proc_of_[ch.dst];
        mark_lost(ch.dst, State::kCancelled, now);
        // Skipping the cancelled head may unblock the processor.
        if (!crashed_[dp]) try_start(dp, now);
      }
    }
  }

  // --- online (policy-driven) mode ------------------------------------------
  //
  // The online run keeps its own copies of the placement-dependent state
  // (current processor, current duration, per-processor runtime queues) so
  // the static arrays — and therefore run()/run_batch() — stay untouched.
  // With a null/no-op policy and a repair-free timeline the handlers below
  // execute the exact static arithmetic in the exact static order, which is
  // what the `policy=none` bit-identity property pins down.

  /// The OnlineView the policies observe: a window onto the current
  /// (post-move) dynamic state.
  class ViewAdapter final : public OnlineView {
   public:
    explicit ViewAdapter(const Impl& impl) : impl_(impl) {}

    [[nodiscard]] std::size_t proc_count() const override {
      return impl_.crashed_.size();
    }
    [[nodiscard]] bool alive(std::size_t p) const override {
      return impl_.crashed_[p] == 0;
    }
    [[nodiscard]] bool pending(TaskId t, std::size_t replica) const override {
      return impl_.state_[impl_.offset_[t.index()] + replica] ==
             State::kPending;
    }
    [[nodiscard]] std::size_t proc_of(TaskId t,
                                      std::size_t replica) const override {
      return impl_.cur_proc_[impl_.offset_[t.index()] + replica];
    }
    [[nodiscard]] double backlog(std::size_t p) const override {
      return impl_.busy_[p] ? impl_.run_finish_[p] : 0.0;
    }
    void pending_on(
        std::size_t p,
        std::vector<std::pair<TaskId, std::size_t>>& out) const override {
      const auto& q = impl_.rt_queue_[p];
      for (std::size_t i = impl_.rt_head_[p]; i < q.size(); ++i) {
        const std::uint32_t flat = q[i];
        if (impl_.cur_proc_[flat] != p) continue;  // moved away
        if (impl_.state_[flat] != State::kPending) continue;
        const std::uint32_t t = impl_.task_of_[flat];
        out.emplace_back(TaskId{t}, flat - impl_.offset_[t]);
      }
      // Replicas moved *onto* p live in the fill-in pool, not the queue.
      for (const std::uint32_t flat : impl_.moved_pool_[p]) {
        if (impl_.cur_proc_[flat] != p) continue;  // moved on again
        if (impl_.state_[flat] != State::kPending) continue;
        const std::uint32_t t = impl_.task_of_[flat];
        out.emplace_back(TaskId{t}, flat - impl_.offset_[t]);
      }
    }
    [[nodiscard]] bool hosts_live_replica(TaskId t,
                                          std::size_t p) const override {
      for (std::size_t flat = impl_.offset_[t.index()];
           flat < impl_.offset_[t.index() + 1]; ++flat) {
        if (impl_.cur_proc_[flat] != p) continue;
        const State s = impl_.state_[flat];
        if (s == State::kPending || s == State::kRunning ||
            s == State::kCompleted) {
          return true;
        }
      }
      return false;
    }

   private:
    const Impl& impl_;
  };

  void drive_online(const FailureTimeline& timeline,
                    ReschedulePolicy* policy) {
    reset();
    reset_online();
    if (policy != nullptr) policy->begin_run();
    // A no-op policy is never consulted: the handlers then run the static
    // code paths verbatim (no view construction, no move application).
    ReschedulePolicy* active =
        (policy == nullptr || policy->is_noop()) ? nullptr : policy;
    const std::size_t m = platform_.proc_count();
    for (const ProcOutage& o : timeline.outages()) {
      FTSCHED_REQUIRE(o.proc.index() < m, "timeline names an unknown processor");
      push(Event{o.crash_time, seq_++,
                 static_cast<std::uint32_t>(o.proc.index()), 0,
                 EventType::kCrash});
      if (o.repair_time < kInf) {
        repair_at_[o.proc.index()] = o.repair_time;
        push(Event{o.repair_time, seq_++,
                   static_cast<std::uint32_t>(o.proc.index()), 0,
                   EventType::kRepair});
      }
    }
    for (std::size_t p = 0; p < m; ++p) {
      try_start_online(p, 0.0);
    }
    while (!events_.empty()) {
      const Event ev = pop();
      switch (ev.type) {
        case EventType::kFinish:
          on_finish_online(ev.a, ev.time);
          break;
        case EventType::kMessage:
          on_message_online(ev.a, ev.b, ev.time);
          break;
        case EventType::kCrash:
          on_crash_online(ev.a, ev.time, active);
          break;
        case EventType::kRepair:
          on_repair_online(ev.a, ev.time, active);
          break;
      }
    }
  }

  void reset_online() {
    const std::size_t m = platform_.proc_count();
    cur_proc_.assign(proc_of_.begin(), proc_of_.end());
    cur_duration_.assign(duration_.begin(), duration_.end());
    rt_queue_.resize(m);
    for (std::size_t p = 0; p < m; ++p) {
      rt_queue_[p].assign(
          queue_.begin() + static_cast<std::ptrdiff_t>(queue_offset_[p]),
          queue_.begin() + static_cast<std::ptrdiff_t>(queue_offset_[p + 1]));
    }
    rt_head_.assign(m, 0);
    moved_pool_.resize(m);
    for (auto& pool : moved_pool_) pool.clear();  // storage retained
    running_.assign(m, kNoReplica);
    run_finish_.assign(m, 0.0);
    repair_at_.assign(m, kInf);
    moves_applied_ = 0;
    repairs_applied_ = 0;
  }

  /// try_start against the *runtime* queue: entries that moved away are
  /// skipped; otherwise the scan is the static in-order rule verbatim.
  /// Replicas a policy moved onto p do NOT join that in-order queue — they
  /// sit in a fill-in pool consulted when the static scan is blocked or
  /// exhausted.  Tail-appending them instead would make every rescue
  /// useless (it runs after the whole static queue) and deadlock-prone (a
  /// blocked static entry waiting on a moved replica parked behind another
  /// blocked entry).  With no moves the pool is empty and the scan is the
  /// static rule exactly, which the policy=none bit-identity pins down.
  void try_start_online(std::size_t p, double now) {
    if (crashed_[p] || busy_[p]) return;
    const auto& q = rt_queue_[p];
    std::size_t& head = rt_head_[p];
    while (head < q.size()) {
      const std::uint32_t flat = q[head];
      if (cur_proc_[flat] != p) {
        ++head;  // moved to another processor by a policy
        continue;
      }
      const State s = state_[flat];
      if (s == State::kCancelled || s == State::kDead ||
          s == State::kCompleted) {
        ++head;
        continue;
      }
      if (s != State::kPending || unsatisfied_[flat] > 0) break;  // blocked
      start_online(p, flat, now);
      return;
    }
    // Fill in with the first ready moved replica, in arrival order (the
    // policies emit moves highest-priority-first, so arrival order is the
    // policy's own order).  Entries that moved on or resolved are dropped.
    auto& pool = moved_pool_[p];
    std::size_t keep = 0;
    std::uint32_t chosen = kNoReplica;
    for (const std::uint32_t flat : pool) {
      if (cur_proc_[flat] != p || state_[flat] != State::kPending) continue;
      if (chosen == kNoReplica && unsatisfied_[flat] == 0) {
        chosen = flat;  // leaves the pool by starting
        continue;
      }
      pool[keep++] = flat;
    }
    pool.resize(keep);
    if (chosen != kNoReplica) start_online(p, chosen, now);
  }

  void start_online(std::size_t p, std::uint32_t flat, double now) {
    state_[flat] = State::kRunning;
    busy_[p] = 1;
    running_[p] = flat;
    actual_start_[flat] = now;
    const double finish = now + cur_duration_[flat];
    run_finish_[p] = finish;
    push(Event{finish, seq_++, flat, 0, EventType::kFinish});
  }

  void on_finish_online(std::uint32_t flat, double now) {
    if (state_[flat] != State::kRunning) return;  // killed by a crash
    state_[flat] = State::kCompleted;
    actual_finish_[flat] = now;
    const std::size_t p = cur_proc_[flat];
    busy_[p] = 0;
    running_[p] = kNoReplica;
    // A queue-scan start is always the head; a pool (fill-in) start is not,
    // and must leave the blocked static head alone.
    if (rt_head_[p] < rt_queue_[p].size() && rt_queue_[p][rt_head_[p]] == flat) {
      ++rt_head_[p];
    }
    const std::size_t out_end = out_offset_[flat + 1];
    for (std::size_t i = out_offset_[flat]; i < out_end; ++i) {
      const OutChannel& ch = out_[i];
      const std::size_t dp = cur_proc_[ch.dst];
      if (p != dp) {
        // Recomputed from the *current* processors with the static
        // operands (volume * delay): unmoved channels produce the exact
        // precomputed comm_duration double.
        const double d = ch.volume * platform_.delay(ProcId{p}, ProcId{dp});
        const double arrival = contention_free_
                                   ? now + d
                                   : comm_->deliver(ProcId{p}, now, d);
        ++messages_delivered_;
        push(Event{arrival, seq_++, ch.dst, ch.slot, EventType::kMessage});
      } else {
        push(Event{now, seq_++, ch.dst, ch.slot, EventType::kMessage});
      }
    }
    try_start_online(p, now);
  }

  void on_message_online(std::uint32_t dst, std::uint32_t slot, double now) {
    if (satisfied_[slot]) return;  // first input wins; ignore the rest
    satisfied_[slot] = 1;
    FTSCHED_ASSERT(unsatisfied_[dst] > 0, "satisfied count underflow");
    --unsatisfied_[dst];
    if (state_[dst] == State::kPending && unsatisfied_[dst] == 0) {
      try_start_online(cur_proc_[dst], now);
    }
  }

  void on_crash_online(std::uint32_t p, double now, ReschedulePolicy* policy) {
    if (crashed_[p]) return;
    crashed_[p] = 1;
    // The running replica dies first (it is the queue head, so this is the
    // static kill order); pending replicas get their fate below, after the
    // policy had its chance to move them.
    if (running_[p] != kNoReplica) {
      const std::uint32_t flat = running_[p];
      running_[p] = kNoReplica;
      if (state_[flat] == State::kRunning) {
        mark_lost_online(flat, State::kDead, now);
      }
    }
    busy_[p] = 0;
    const bool will_repair = repair_at_[p] > now && repair_at_[p] < kInf;
    if (policy != nullptr) {
      moves_scratch_.clear();
      const ViewAdapter view(*this);
      policy->on_event(view, OnlineEvent{OnlineEvent::Kind::kCrash, p, now},
                       moves_scratch_);
      apply_moves(now);
    }
    if (!will_repair) {
      // Permanent crash: every pending replica still on p dies in queue
      // order — the static rule — then the fill-in pool in arrival order.
      // With a scheduled repair they are parked through the outage instead
      // and resume when the processor returns.
      const auto& q = rt_queue_[p];
      for (std::size_t i = rt_head_[p]; i < q.size(); ++i) {
        const std::uint32_t flat = q[i];
        if (cur_proc_[flat] != p) continue;
        if (state_[flat] == State::kPending) {
          mark_lost_online(flat, State::kDead, now);
        }
      }
      for (const std::uint32_t flat : moved_pool_[p]) {
        if (cur_proc_[flat] != p) continue;
        if (state_[flat] == State::kPending) {
          mark_lost_online(flat, State::kDead, now);
        }
      }
      moved_pool_[p].clear();
    }
  }

  void on_repair_online(std::uint32_t p, double now,
                        ReschedulePolicy* policy) {
    if (!crashed_[p]) return;
    crashed_[p] = 0;
    repair_at_[p] = kInf;
    ++repairs_applied_;
    if (policy != nullptr) {
      moves_scratch_.clear();
      const ViewAdapter view(*this);
      policy->on_event(view, OnlineEvent{OnlineEvent::Kind::kRepair, p, now},
                       moves_scratch_);
      apply_moves(now);
    }
    try_start_online(p, now);
  }

  /// Applies the policy's moves in emitted order, then wakes the affected
  /// processors.  Structural violations (unknown replica, dead target,
  /// non-pending replica) are policy bugs and fail loudly.
  void apply_moves(double now) {
    for (const ReplicaMove& mv : moves_scratch_) {
      FTSCHED_REQUIRE(mv.task.index() < g_.task_count(),
                      "policy move: unknown task");
      const std::size_t count =
          offset_[mv.task.index() + 1] - offset_[mv.task.index()];
      FTSCHED_REQUIRE(mv.replica < count, "policy move: unknown replica");
      const std::uint32_t flat =
          static_cast<std::uint32_t>(offset_[mv.task.index()] + mv.replica);
      const std::size_t to = mv.to.index();
      FTSCHED_REQUIRE(to < crashed_.size(), "policy move: unknown processor");
      FTSCHED_REQUIRE(crashed_[to] == 0, "policy move: target is crashed");
      FTSCHED_REQUIRE(state_[flat] == State::kPending,
                      "policy move: replica is not pending");
      FTSCHED_REQUIRE(std::isfinite(mv.duration) && mv.duration >= 0.0,
                      "policy move: duration must be finite and >= 0");
      if (cur_proc_[flat] == to) continue;  // staying put: not a move
      cur_proc_[flat] = static_cast<std::uint32_t>(to);
      cur_duration_[flat] = mv.duration;
      moved_pool_[to].push_back(flat);
      ++moves_applied_;
    }
    // A moved replica may be ready right now, and its departure may have
    // unblocked the queue behind it; wake targets in emitted order, then
    // every live processor (deterministic sweep, try_start is idempotent).
    for (const ReplicaMove& mv : moves_scratch_) {
      if (crashed_[mv.to.index()] == 0) try_start_online(mv.to.index(), now);
    }
    for (std::size_t p = 0; p < crashed_.size(); ++p) {
      if (crashed_[p] == 0) try_start_online(p, now);
    }
  }

  /// mark_lost against the runtime placement: identical cascade, but the
  /// unblock probe targets the destination's *current* processor.
  void mark_lost_online(std::uint32_t flat, State lost_state, double now) {
    FTSCHED_ASSERT(state_[flat] == State::kPending ||
                       state_[flat] == State::kRunning,
                   "losing a replica twice");
    state_[flat] = lost_state;
    const std::size_t out_end = out_offset_[flat + 1];
    for (std::size_t i = out_offset_[flat]; i < out_end; ++i) {
      const OutChannel& ch = out_[i];
      FTSCHED_ASSERT(live_sources_[ch.slot] > 0, "live source count underflow");
      if (--live_sources_[ch.slot] == 0 && !satisfied_[ch.slot] &&
          state_[ch.dst] == State::kPending) {
        const std::size_t dp = cur_proc_[ch.dst];
        mark_lost_online(ch.dst, State::kCancelled, now);
        if (!crashed_[dp]) try_start_online(dp, now);
      }
    }
  }

  // --- results --------------------------------------------------------------

  /// Success + achieved latency straight off the flat state arrays: the
  /// latency fold of collect() without materialising per-replica outcomes.
  ScheduleSimulator::Summary summarize() const {
    ScheduleSimulator::Summary s;
    s.success = true;
    double latency = 0.0;
    for (const auto& [begin, end] : exit_ranges_) {
      double done = kInf;
      for (std::size_t flat = begin; flat < end; ++flat) {
        if (state_[flat] == State::kCompleted) {
          done = std::min(done, actual_finish_[flat]);
        }
      }
      if (done == kInf) {
        s.success = false;
        s.latency = kInf;
        return s;
      }
      latency = std::max(latency, done);
    }
    s.latency = latency;
    return s;
  }

  SimulationResult collect() const {
    SimulationResult r;
    r.outcomes.resize(g_.task_count());
    for (TaskId t : g_.tasks()) {
      const std::size_t count = offset_[t.index() + 1] - offset_[t.index()];
      r.outcomes[t.index()].resize(count);
      for (std::size_t k = 0; k < count; ++k) {
        const std::size_t flat = offset_[t.index()] + k;
        ReplicaOutcome& o = r.outcomes[t.index()][k];
        switch (state_[flat]) {
          case State::kCompleted:
            o.status = ReplicaStatus::kCompleted;
            o.start = actual_start_[flat];
            o.finish = actual_finish_[flat];
            ++r.completed_replicas;
            break;
          case State::kDead:
            o.status = ReplicaStatus::kDead;
            o.start = actual_start_[flat];
            ++r.dead_replicas;
            break;
          case State::kCancelled:
            o.status = ReplicaStatus::kCancelled;
            ++r.cancelled_replicas;
            break;
          case State::kPending:
          case State::kRunning:
            o.status = ReplicaStatus::kNotStarted;
            break;
        }
      }
    }
    r.messages_delivered = messages_delivered_;
    r.success = true;
    double latency = 0.0;
    for (TaskId t : g_.exit_tasks()) {
      const double done = r.task_completion(t);
      if (done == kInf) {
        r.success = false;
        r.latency = kInf;
        return r;
      }
      latency = std::max(latency, done);
    }
    r.latency = latency;
    return r;
  }

  const ReplicatedSchedule& schedule_;
  SimulationOptions options_;
  const TaskGraph& g_;
  const Platform& platform_;
  bool contention_free_;
  std::unique_ptr<CommModel> comm_;  ///< built once, reset per run

  // Static (built once from the schedule).
  std::vector<std::size_t> offset_;       ///< task -> flat replica range
  std::vector<std::uint32_t> proc_of_;    ///< flat replica -> processor
  std::vector<double> duration_;
  std::vector<double> sched_start_;
  std::vector<std::size_t> out_offset_;   ///< flat replica -> out_ CSR range
  std::vector<OutChannel> out_;
  std::vector<std::size_t> in_offset_;    ///< flat replica -> slot arena range
  std::vector<std::uint32_t> unsatisfied0_;
  std::vector<std::uint32_t> live_sources0_;
  std::vector<std::size_t> queue_offset_;  ///< processor -> queue_ CSR range
  std::vector<std::uint32_t> queue_;
  std::vector<std::pair<std::size_t, std::size_t>> exit_ranges_;

  // Dynamic (overwritten by reset(); all flat, nothing nested).
  std::vector<State> state_;
  std::vector<double> actual_start_;
  std::vector<double> actual_finish_;
  std::vector<std::uint32_t> unsatisfied_;   ///< copied from unsatisfied0_
  std::vector<std::uint8_t> satisfied_;      ///< slot arena, zero-filled
  std::vector<std::uint32_t> live_sources_;  ///< copied from live_sources0_
  std::vector<std::uint32_t> head_;
  std::vector<std::uint8_t> busy_;
  std::vector<std::uint8_t> crashed_;
  std::vector<Event> events_;  ///< binary min-heap, storage retained
  std::uint32_t seq_ = 0;
  std::size_t messages_delivered_ = 0;

  // Online-mode state (only touched by drive_online; static runs never
  // read these).  task_of_ is static, built alongside the flat numbering.
  std::vector<std::uint32_t> task_of_;  ///< flat replica -> task index
  std::vector<std::uint32_t> cur_proc_;
  std::vector<double> cur_duration_;
  std::vector<std::vector<std::uint32_t>> rt_queue_;  ///< runtime queues
  std::vector<std::size_t> rt_head_;
  /// Per proc: replicas a policy moved here, in arrival order.  Fill-in
  /// work for when the in-order queue scan is blocked or exhausted.
  std::vector<std::vector<std::uint32_t>> moved_pool_;
  std::vector<std::uint32_t> running_;  ///< per proc: running flat replica
  std::vector<double> run_finish_;      ///< per proc: running finish time
  std::vector<double> repair_at_;       ///< per proc: scheduled repair time
  std::vector<ReplicaMove> moves_scratch_;
  std::size_t moves_applied_ = 0;
  std::size_t repairs_applied_ = 0;
};

ScheduleSimulator::ScheduleSimulator(const ReplicatedSchedule& schedule,
                                     const SimulationOptions& options)
    : impl_(std::make_unique<Impl>(schedule, options)) {}

ScheduleSimulator::~ScheduleSimulator() = default;
ScheduleSimulator::ScheduleSimulator(ScheduleSimulator&&) noexcept = default;
ScheduleSimulator& ScheduleSimulator::operator=(ScheduleSimulator&&) noexcept =
    default;

SimulationResult ScheduleSimulator::run(const FailureScenario& failures) {
  return impl_->run(failures);
}

ScheduleSimulator::Summary ScheduleSimulator::run_summary(
    const FailureScenario& failures) {
  return impl_->run_summary(failures);
}

void ScheduleSimulator::run_batch(std::span<const FailureScenario> scenarios,
                                  std::span<Summary> summaries) {
  impl_->run_batch(scenarios, summaries);
}

ScheduleSimulator::OnlineSummary ScheduleSimulator::run_online(
    const FailureTimeline& timeline, ReschedulePolicy* policy) {
  return impl_->run_online(timeline, policy);
}

SimulationResult simulate(const ReplicatedSchedule& schedule,
                          const FailureScenario& failures,
                          const SimulationOptions& options) {
  return ScheduleSimulator(schedule, options).run(failures);
}

}  // namespace ftsched
