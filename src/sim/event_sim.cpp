#include "ftsched/sim/event_sim.hpp"

#include <algorithm>
#include <queue>

#include "ftsched/util/error.hpp"

namespace ftsched {

double SimulationResult::task_completion(TaskId t) const {
  double best = std::numeric_limits<double>::infinity();
  for (const ReplicaOutcome& o : outcomes[t.index()]) {
    if (o.status == ReplicaStatus::kCompleted) best = std::min(best, o.finish);
  }
  return best;
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

enum class EventType : int { kFinish = 0, kMessage = 1, kCrash = 2 };

struct Event {
  double time;
  EventType type;
  std::uint64_t seq;   // FIFO tie-break for full determinism
  std::size_t a = 0;   // finish: replica; message: dst replica; crash: proc
  std::size_t b = 0;   // message: in-edge slot of dst
};

struct EventLater {
  bool operator()(const Event& x, const Event& y) const {
    if (x.time != y.time) return x.time > y.time;
    if (x.type != y.type) return static_cast<int>(x.type) > static_cast<int>(y.type);
    return x.seq > y.seq;
  }
};

enum class State { kPending, kRunning, kCompleted, kDead, kCancelled };

struct OutChannel {
  std::size_t dst;       // flat destination replica
  std::size_t slot;      // in-edge slot within the destination
  double comm_duration;  // volume * delay (0 for intra-processor)
  bool interproc;
};

}  // namespace

/// The simulator split along the static/dynamic line: everything derived
/// from the schedule alone is computed once at construction; run() resets
/// only the per-scenario state (assignments into retained buffers — no
/// allocation in steady state) and replays the event loop.
class ScheduleSimulator::Impl {
 public:
  Impl(const ReplicatedSchedule& schedule, const SimulationOptions& options)
      : schedule_(schedule),
        options_(options),
        g_(schedule.graph()),
        platform_(schedule.platform()) {
    build_static();
  }

  SimulationResult run(const FailureScenario& failures) {
    drive(failures);
    return collect();
  }

  ScheduleSimulator::Summary run_summary(const FailureScenario& failures) {
    drive(failures);
    // The latency fold of collect(), straight off the flat state arrays.
    ScheduleSimulator::Summary s;
    s.success = true;
    double latency = 0.0;
    for (TaskId t : g_.exit_tasks()) {
      double done = kInf;
      for (std::size_t flat = offset_[t.index()];
           flat < offset_[t.index() + 1]; ++flat) {
        if (state_[flat] == State::kCompleted) {
          done = std::min(done, actual_finish_[flat]);
        }
      }
      if (done == kInf) {
        s.success = false;
        s.latency = kInf;
        return s;
      }
      latency = std::max(latency, done);
    }
    s.latency = latency;
    return s;
  }

 private:
  void drive(const FailureScenario& failures) {
    reset(failures);
    seed(failures);
    while (!events_.empty()) {
      const Event ev = events_.top();
      events_.pop();
      switch (ev.type) {
        case EventType::kFinish:
          on_finish(ev.a, ev.time);
          break;
        case EventType::kMessage:
          on_message(ev.a, ev.b, ev.time);
          break;
        case EventType::kCrash:
          on_crash(ev.a, ev.time);
          break;
      }
    }
  }

  // --- static structure (depends only on the schedule) ----------------------

  void build_static() {
    const std::size_t v = g_.task_count();
    offset_.assign(v + 1, 0);
    for (std::size_t t = 0; t < v; ++t) {
      offset_[t + 1] = offset_[t] + schedule_.replicas(TaskId{t}).size();
    }
    const std::size_t total = offset_[v];
    task_of_.resize(total);
    proc_of_.resize(total);
    duration_.resize(total);
    sched_start_.resize(total);
    out_.assign(total, {});

    // In-edge slot bookkeeping: slot_of_edge_[e] is the position of edge e
    // within its destination's in-edge list.
    slot_of_edge_.assign(g_.edge_count(), 0);
    for (TaskId t : g_.tasks()) {
      const auto in = g_.in_edges(t);
      for (std::size_t pos = 0; pos < in.size(); ++pos) {
        slot_of_edge_[in[pos]] = pos;
      }
      const auto& reps = schedule_.replicas(t);
      for (std::size_t k = 0; k < reps.size(); ++k) {
        const std::size_t flat = offset_[t.index()] + k;
        task_of_[flat] = t;
        proc_of_[flat] = reps[k].proc;
        duration_[flat] = reps[k].finish - reps[k].start;
        sched_start_[flat] = reps[k].start;
      }
      unsatisfied0_.insert(unsatisfied0_.end(), reps.size(), in.size());
      for (std::size_t k = 0; k < reps.size(); ++k) {
        satisfied_.emplace_back(in.size(), 0);
        live_sources0_.emplace_back(in.size(), 0);
      }
    }
    // Channels -> outgoing lists and live-source counts.
    for (std::size_t e = 0; e < g_.edge_count(); ++e) {
      const Edge& edge = g_.edge(e);
      for (const Channel& c : schedule_.channels(e)) {
        const std::size_t src = offset_[edge.src.index()] + c.src_replica;
        const std::size_t dst = offset_[edge.dst.index()] + c.dst_replica;
        const std::size_t slot = slot_of_edge_[e];
        const double d = platform_.delay(proc_of_[src], proc_of_[dst]);
        out_[src].push_back(
            OutChannel{dst, slot, edge.volume * d, proc_of_[src] != proc_of_[dst]});
        ++live_sources0_[dst][slot];
      }
    }
    // Per-processor execution order: scheduled start, then finish, then id.
    queue_.assign(platform_.proc_count(), {});
    for (std::size_t flat = 0; flat < total; ++flat) {
      queue_[proc_of_[flat].index()].push_back(flat);
    }
    for (auto& q : queue_) {
      std::sort(q.begin(), q.end(), [this](std::size_t a, std::size_t b) {
        if (sched_start_[a] != sched_start_[b])
          return sched_start_[a] < sched_start_[b];
        return a < b;
      });
    }
  }

  // --- per-run reset --------------------------------------------------------

  void reset(const FailureScenario& failures) {
    const std::size_t total = task_of_.size();
    const std::size_t m = platform_.proc_count();
    state_.assign(total, State::kPending);
    actual_start_.assign(total, 0.0);
    actual_finish_.assign(total, 0.0);
    unsatisfied_ = unsatisfied0_;
    for (auto& s : satisfied_) std::fill(s.begin(), s.end(), 0);
    // Element-wise copy-assign: the inner vectors keep their allocations.
    live_sources_ = live_sources0_;
    head_.assign(m, 0);
    busy_.assign(m, 0);
    crashed_.assign(m, 0);
    crash_time_.assign(m, kInf);
    for (const Crash& c : failures.crashes()) {
      crash_time_[c.proc.index()] = c.time;
    }
    // The event loop drains the queue before returning, but a defensive
    // clear keeps a failed previous run from leaking events into this one.
    while (!events_.empty()) events_.pop();
    seq_ = 0;
    messages_delivered_ = 0;
    // Fresh communication model per run: contention-aware models are
    // stateful (they book delivery lanes as messages flow).
    comm_ = make_comm_model(m, options_.comm);
  }

  void seed(const FailureScenario& failures) {
    for (const Crash& c : failures.crashes()) {
      push(Event{c.time, EventType::kCrash, seq_++, c.proc.index(), 0});
    }
    for (std::size_t p = 0; p < queue_.size(); ++p) {
      try_start(p, 0.0);
    }
  }

  void push(Event ev) { events_.push(ev); }

  // --- event handlers ---------------------------------------------------------

  void try_start(std::size_t p, double now) {
    if (crashed_[p] || busy_[p]) return;
    auto& q = queue_[p];
    while (head_[p] < q.size()) {
      const std::size_t flat = q[head_[p]];
      const State s = state_[flat];
      if (s == State::kCancelled || s == State::kDead) {
        ++head_[p];  // skip provably-never-ready / lost replicas
        continue;
      }
      if (s != State::kPending || unsatisfied_[flat] > 0) return;  // wait
      state_[flat] = State::kRunning;
      busy_[p] = 1;
      actual_start_[flat] = now;
      const double finish = now + duration_[flat];
      push(Event{finish, EventType::kFinish, seq_++, flat, 0});
      return;
    }
  }

  void on_finish(std::size_t flat, double now) {
    if (state_[flat] != State::kRunning) return;  // killed by a crash
    state_[flat] = State::kCompleted;
    actual_finish_[flat] = now;
    const std::size_t p = proc_of_[flat].index();
    busy_[p] = 0;
    ++head_[p];
    // Emit all outgoing messages (active replication: send unconditionally).
    for (const OutChannel& ch : out_[flat]) {
      if (ch.interproc) {
        const double arrival = comm_->deliver(proc_of_[flat], now, ch.comm_duration);
        ++messages_delivered_;
        push(Event{arrival, EventType::kMessage, seq_++, ch.dst, ch.slot});
      } else {
        push(Event{now, EventType::kMessage, seq_++, ch.dst, ch.slot});
      }
    }
    try_start(p, now);
  }

  void on_message(std::size_t dst, std::size_t slot, double now) {
    if (satisfied_[dst][slot]) return;  // first input wins; ignore the rest
    satisfied_[dst][slot] = 1;
    FTSCHED_ASSERT(unsatisfied_[dst] > 0, "satisfied count underflow");
    --unsatisfied_[dst];
    if (state_[dst] == State::kPending && unsatisfied_[dst] == 0) {
      try_start(proc_of_[dst].index(), now);
    }
  }

  void on_crash(std::size_t p, double now) {
    if (crashed_[p]) return;
    crashed_[p] = 1;
    // Kill everything on p that has not completed by `now`.  A replica
    // finishing exactly at the crash instant counts as completed (its
    // finish event sorts before the crash event at equal time).
    for (std::size_t i = head_[p]; i < queue_[p].size(); ++i) {
      const std::size_t flat = queue_[p][i];
      if (state_[flat] == State::kPending || state_[flat] == State::kRunning) {
        mark_lost(flat, State::kDead, now);
      }
    }
    busy_[p] = 0;
  }

  /// Marks a replica dead/cancelled and propagates doomed-input
  /// cancellations downstream.
  void mark_lost(std::size_t flat, State lost_state, double now) {
    FTSCHED_ASSERT(state_[flat] == State::kPending ||
                       state_[flat] == State::kRunning,
                   "losing a replica twice");
    state_[flat] = lost_state;
    for (const OutChannel& ch : out_[flat]) {
      FTSCHED_ASSERT(live_sources_[ch.dst][ch.slot] > 0,
                     "live source count underflow");
      if (--live_sources_[ch.dst][ch.slot] == 0 && !satisfied_[ch.dst][ch.slot] &&
          state_[ch.dst] == State::kPending) {
        const std::size_t dp = proc_of_[ch.dst].index();
        mark_lost(ch.dst, State::kCancelled, now);
        // Skipping the cancelled head may unblock the processor.
        if (!crashed_[dp]) try_start(dp, now);
      }
    }
  }

  // --- results -----------------------------------------------------------------

  SimulationResult collect() const {
    SimulationResult r;
    r.outcomes.resize(g_.task_count());
    for (TaskId t : g_.tasks()) {
      const std::size_t count = offset_[t.index() + 1] - offset_[t.index()];
      r.outcomes[t.index()].resize(count);
      for (std::size_t k = 0; k < count; ++k) {
        const std::size_t flat = offset_[t.index()] + k;
        ReplicaOutcome& o = r.outcomes[t.index()][k];
        switch (state_[flat]) {
          case State::kCompleted:
            o.status = ReplicaStatus::kCompleted;
            o.start = actual_start_[flat];
            o.finish = actual_finish_[flat];
            ++r.completed_replicas;
            break;
          case State::kDead:
            o.status = ReplicaStatus::kDead;
            o.start = actual_start_[flat];
            ++r.dead_replicas;
            break;
          case State::kCancelled:
            o.status = ReplicaStatus::kCancelled;
            ++r.cancelled_replicas;
            break;
          case State::kPending:
          case State::kRunning:
            o.status = ReplicaStatus::kNotStarted;
            break;
        }
      }
    }
    r.messages_delivered = messages_delivered_;
    r.success = true;
    double latency = 0.0;
    for (TaskId t : g_.exit_tasks()) {
      const double done = r.task_completion(t);
      if (done == kInf) {
        r.success = false;
        r.latency = kInf;
        return r;
      }
      latency = std::max(latency, done);
    }
    r.latency = latency;
    return r;
  }

  const ReplicatedSchedule& schedule_;
  SimulationOptions options_;
  const TaskGraph& g_;
  const Platform& platform_;
  std::unique_ptr<CommModel> comm_;

  // Static (built once from the schedule).
  std::vector<std::size_t> offset_;
  std::vector<TaskId> task_of_;
  std::vector<ProcId> proc_of_;
  std::vector<double> duration_;
  std::vector<double> sched_start_;
  std::vector<std::vector<OutChannel>> out_;
  std::vector<std::size_t> slot_of_edge_;
  std::vector<std::vector<std::size_t>> queue_;
  std::vector<std::size_t> unsatisfied0_;
  std::vector<std::vector<std::size_t>> live_sources0_;

  // Dynamic (reset per run; buffers retained across runs).
  std::vector<State> state_;
  std::vector<double> actual_start_;
  std::vector<double> actual_finish_;
  std::vector<std::size_t> unsatisfied_;
  std::vector<std::vector<char>> satisfied_;
  std::vector<std::vector<std::size_t>> live_sources_;
  std::vector<std::size_t> head_;
  std::vector<char> busy_;
  std::vector<char> crashed_;
  std::vector<double> crash_time_;
  std::priority_queue<Event, std::vector<Event>, EventLater> events_;
  std::uint64_t seq_ = 0;
  std::size_t messages_delivered_ = 0;
};

ScheduleSimulator::ScheduleSimulator(const ReplicatedSchedule& schedule,
                                     const SimulationOptions& options)
    : impl_(std::make_unique<Impl>(schedule, options)) {}

ScheduleSimulator::~ScheduleSimulator() = default;
ScheduleSimulator::ScheduleSimulator(ScheduleSimulator&&) noexcept = default;
ScheduleSimulator& ScheduleSimulator::operator=(ScheduleSimulator&&) noexcept =
    default;

SimulationResult ScheduleSimulator::run(const FailureScenario& failures) {
  return impl_->run(failures);
}

ScheduleSimulator::Summary ScheduleSimulator::run_summary(
    const FailureScenario& failures) {
  return impl_->run_summary(failures);
}

SimulationResult simulate(const ReplicatedSchedule& schedule,
                          const FailureScenario& failures,
                          const SimulationOptions& options) {
  return ScheduleSimulator(schedule, options).run(failures);
}

}  // namespace ftsched
