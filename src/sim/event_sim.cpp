#include "ftsched/sim/event_sim.hpp"

#include <algorithm>
#include <cstdint>

#include "ftsched/util/error.hpp"

namespace ftsched {

double SimulationResult::task_completion(TaskId t) const {
  double best = std::numeric_limits<double>::infinity();
  for (const ReplicaOutcome& o : outcomes[t.index()]) {
    if (o.status == ReplicaStatus::kCompleted) best = std::min(best, o.finish);
  }
  return best;
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

enum class EventType : std::uint8_t { kFinish = 0, kMessage = 1, kCrash = 2 };

struct Event {
  double time;
  std::uint32_t seq;  // FIFO tie-break for full determinism
  std::uint32_t a;    // finish: replica; message: dst replica; crash: proc
  std::uint32_t b;    // message: flat in-slot of dst
  EventType type;
};

// Min-queue order: earlier time, then finish < message < crash, then FIFO.
// The order is total (seq is unique), so any heap implementation pops the
// exact same event sequence — the bit-identity anchor of this rewrite.
struct EventLater {
  bool operator()(const Event& x, const Event& y) const {
    if (x.time != y.time) return x.time > y.time;
    if (x.type != y.type) return x.type > y.type;
    return x.seq > y.seq;
  }
};

enum class State : std::uint8_t {
  kPending,
  kRunning,
  kCompleted,
  kDead,
  kCancelled
};

struct OutChannel {
  std::uint32_t dst;     // flat destination replica
  std::uint32_t slot;    // flat in-slot of the destination (slot arena index)
  double comm_duration;  // volume * delay (0 for intra-processor)
  bool interproc;
};

}  // namespace

/// The simulator split along the static/dynamic line: everything derived
/// from the schedule alone is computed once at construction (flat replica
/// arrays, CSR out-channel and per-processor queues, pristine copies of the
/// countdown arrays); run() resets only the per-scenario state with
/// fill/copy sweeps over flat arrays — structure-of-arrays, no per-node
/// touches, no allocation in steady state — and replays the event loop on
/// an arena-backed binary heap whose storage is retained across runs.
class ScheduleSimulator::Impl {
 public:
  Impl(const ReplicatedSchedule& schedule, const SimulationOptions& options)
      : schedule_(schedule),
        options_(options),
        g_(schedule.graph()),
        platform_(schedule.platform()),
        contention_free_(options.comm.kind == CommModelKind::kContentionFree),
        comm_(make_comm_model(schedule.platform().proc_count(), options.comm)) {
    build_static();
  }

  SimulationResult run(const FailureScenario& failures) {
    drive(failures);
    return collect();
  }

  ScheduleSimulator::Summary run_summary(const FailureScenario& failures) {
    drive(failures);
    return summarize();
  }

  void run_batch(std::span<const FailureScenario> scenarios,
                 std::span<ScheduleSimulator::Summary> summaries) {
    FTSCHED_REQUIRE(summaries.size() >= scenarios.size(),
                    "run_batch: summary span shorter than the scenario span");
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      drive(scenarios[i]);
      summaries[i] = summarize();
    }
  }

 private:
  void drive(const FailureScenario& failures) {
    reset();
    seed(failures);
    while (!events_.empty()) {
      const Event ev = pop();
      switch (ev.type) {
        case EventType::kFinish:
          on_finish(ev.a, ev.time);
          break;
        case EventType::kMessage:
          on_message(ev.a, ev.b, ev.time);
          break;
        case EventType::kCrash:
          on_crash(ev.a, ev.time);
          break;
      }
    }
  }

  // --- static structure (depends only on the schedule) ----------------------

  void build_static() {
    const std::size_t v = g_.task_count();
    offset_.assign(v + 1, 0);
    for (std::size_t t = 0; t < v; ++t) {
      offset_[t + 1] = offset_[t] + schedule_.replicas(TaskId{t}).size();
    }
    const std::size_t total = offset_[v];
    proc_of_.resize(total);
    duration_.resize(total);
    sched_start_.resize(total);

    // In-edge slots live in one arena: replica `flat` owns the contiguous
    // range [in_offset_[flat], in_offset_[flat + 1]), one slot per in-edge
    // of its task, in in-edge-list order.  slot_of_edge[e] is the position
    // of edge e within its destination's in-edge list.
    std::vector<std::size_t> slot_of_edge(g_.edge_count(), 0);
    in_offset_.assign(total + 1, 0);
    unsatisfied0_.assign(total, 0);
    for (TaskId t : g_.tasks()) {
      const auto in = g_.in_edges(t);
      for (std::size_t pos = 0; pos < in.size(); ++pos) {
        slot_of_edge[in[pos]] = pos;
      }
      const auto& reps = schedule_.replicas(t);
      for (std::size_t k = 0; k < reps.size(); ++k) {
        const std::size_t flat = offset_[t.index()] + k;
        proc_of_[flat] = static_cast<std::uint32_t>(reps[k].proc.index());
        duration_[flat] = reps[k].finish - reps[k].start;
        sched_start_[flat] = reps[k].start;
        in_offset_[flat + 1] = in.size();
        unsatisfied0_[flat] = static_cast<std::uint32_t>(in.size());
      }
    }
    for (std::size_t flat = 0; flat < total; ++flat) {
      in_offset_[flat + 1] += in_offset_[flat];
    }
    const std::size_t total_slots = in_offset_[total];
    live_sources0_.assign(total_slots, 0);

    // Channels -> CSR outgoing lists and live-source counts.  Two passes:
    // count, then fill, preserving the per-source channel order of the
    // schedule (edge-major, channel order within the edge).
    out_offset_.assign(total + 1, 0);
    for (std::size_t e = 0; e < g_.edge_count(); ++e) {
      const Edge& edge = g_.edge(e);
      for (const Channel& c : schedule_.channels(e)) {
        ++out_offset_[offset_[edge.src.index()] + c.src_replica + 1];
      }
    }
    for (std::size_t flat = 0; flat < total; ++flat) {
      out_offset_[flat + 1] += out_offset_[flat];
    }
    out_.resize(out_offset_[total]);
    std::vector<std::size_t> fill(total, 0);
    for (std::size_t e = 0; e < g_.edge_count(); ++e) {
      const Edge& edge = g_.edge(e);
      for (const Channel& c : schedule_.channels(e)) {
        const std::size_t src = offset_[edge.src.index()] + c.src_replica;
        const std::size_t dst = offset_[edge.dst.index()] + c.dst_replica;
        const std::size_t slot = in_offset_[dst] + slot_of_edge[e];
        const double d = platform_.delay(ProcId{proc_of_[src]}, ProcId{proc_of_[dst]});
        out_[out_offset_[src] + fill[src]++] =
            OutChannel{static_cast<std::uint32_t>(dst),
                       static_cast<std::uint32_t>(slot), edge.volume * d,
                       proc_of_[src] != proc_of_[dst]};
        ++live_sources0_[slot];
      }
    }

    // Per-processor execution order (CSR): scheduled start, then flat id.
    const std::size_t m = platform_.proc_count();
    queue_offset_.assign(m + 1, 0);
    for (std::size_t flat = 0; flat < total; ++flat) {
      ++queue_offset_[proc_of_[flat] + 1];
    }
    for (std::size_t p = 0; p < m; ++p) {
      queue_offset_[p + 1] += queue_offset_[p];
    }
    queue_.resize(total);
    std::vector<std::size_t> qfill(m, 0);
    for (std::size_t flat = 0; flat < total; ++flat) {
      const std::size_t p = proc_of_[flat];
      queue_[queue_offset_[p] + qfill[p]++] = static_cast<std::uint32_t>(flat);
    }
    for (std::size_t p = 0; p < m; ++p) {
      std::sort(queue_.begin() + static_cast<std::ptrdiff_t>(queue_offset_[p]),
                queue_.begin() + static_cast<std::ptrdiff_t>(queue_offset_[p + 1]),
                [this](std::uint32_t a, std::uint32_t b) {
                  if (sched_start_[a] != sched_start_[b])
                    return sched_start_[a] < sched_start_[b];
                  return a < b;
                });
    }

    // Exit-task replica ranges, for the summary fold.
    for (TaskId t : g_.exit_tasks()) {
      exit_ranges_.emplace_back(offset_[t.index()], offset_[t.index() + 1]);
    }

    // Size the dynamic arrays once; reset() only overwrites them.
    state_.assign(total, State::kPending);
    actual_start_.assign(total, 0.0);
    actual_finish_.assign(total, 0.0);
    unsatisfied_ = unsatisfied0_;
    satisfied_.assign(total_slots, 0);
    live_sources_ = live_sources0_;
    head_.assign(m, 0);
    busy_.assign(m, 0);
    crashed_.assign(m, 0);
    // Worst-case live events: one finish per replica + one message per
    // channel in flight + the crashes; reserving the replica+channel part
    // up front makes the heap allocation-free for every scenario whose
    // crash count fits the slack of the round-up.
    events_.reserve(total + out_.size() + 16);
  }

  // --- per-run reset --------------------------------------------------------

  void reset() {
    // Contiguous fill/copy sweeps over the flat arrays — this is the whole
    // per-run cost of the build-once split, so it must stay memset-shaped.
    std::fill(state_.begin(), state_.end(), State::kPending);
    std::fill(actual_start_.begin(), actual_start_.end(), 0.0);
    std::fill(actual_finish_.begin(), actual_finish_.end(), 0.0);
    std::copy(unsatisfied0_.begin(), unsatisfied0_.end(), unsatisfied_.begin());
    std::fill(satisfied_.begin(), satisfied_.end(), std::uint8_t{0});
    std::copy(live_sources0_.begin(), live_sources0_.end(),
              live_sources_.begin());
    std::fill(head_.begin(), head_.end(), 0u);
    std::fill(busy_.begin(), busy_.end(), std::uint8_t{0});
    std::fill(crashed_.begin(), crashed_.end(), std::uint8_t{0});
    events_.clear();  // storage retained
    seq_ = 0;
    messages_delivered_ = 0;
    // Contention-aware models are stateful (they book delivery lanes as
    // messages flow); rewind instead of reallocating.  The contention-free
    // default is stateless and bypassed entirely in on_finish.
    if (!contention_free_) comm_->reset();
  }

  void seed(const FailureScenario& failures) {
    for (const Crash& c : failures.crashes()) {
      push(Event{c.time, seq_++, static_cast<std::uint32_t>(c.proc.index()), 0,
                 EventType::kCrash});
    }
    const std::size_t m = platform_.proc_count();
    for (std::size_t p = 0; p < m; ++p) {
      try_start(p, 0.0);
    }
  }

  void push(const Event& ev) {
    events_.push_back(ev);
    std::push_heap(events_.begin(), events_.end(), EventLater{});
  }

  Event pop() {
    std::pop_heap(events_.begin(), events_.end(), EventLater{});
    const Event ev = events_.back();
    events_.pop_back();
    return ev;
  }

  // --- event handlers -------------------------------------------------------

  void try_start(std::size_t p, double now) {
    if (crashed_[p] || busy_[p]) return;
    const std::size_t end = queue_offset_[p + 1];
    std::size_t cursor = queue_offset_[p] + head_[p];
    for (; cursor < end; ++cursor) {
      const std::uint32_t flat = queue_[cursor];
      const State s = state_[flat];
      if (s == State::kCancelled || s == State::kDead) {
        ++head_[p];  // skip provably-never-ready / lost replicas
        continue;
      }
      if (s != State::kPending || unsatisfied_[flat] > 0) return;  // wait
      state_[flat] = State::kRunning;
      busy_[p] = 1;
      actual_start_[flat] = now;
      const double finish = now + duration_[flat];
      push(Event{finish, seq_++, flat, 0, EventType::kFinish});
      return;
    }
  }

  void on_finish(std::uint32_t flat, double now) {
    if (state_[flat] != State::kRunning) return;  // killed by a crash
    state_[flat] = State::kCompleted;
    actual_finish_[flat] = now;
    const std::size_t p = proc_of_[flat];
    busy_[p] = 0;
    ++head_[p];
    // Emit all outgoing messages (active replication: send unconditionally).
    const std::size_t out_end = out_offset_[flat + 1];
    for (std::size_t i = out_offset_[flat]; i < out_end; ++i) {
      const OutChannel& ch = out_[i];
      if (ch.interproc) {
        // Contention-free arrival is ready + duration exactly; skipping the
        // virtual dispatch changes no double.
        const double arrival =
            contention_free_
                ? now + ch.comm_duration
                : comm_->deliver(ProcId{proc_of_[flat]}, now, ch.comm_duration);
        ++messages_delivered_;
        push(Event{arrival, seq_++, ch.dst, ch.slot, EventType::kMessage});
      } else {
        push(Event{now, seq_++, ch.dst, ch.slot, EventType::kMessage});
      }
    }
    try_start(p, now);
  }

  void on_message(std::uint32_t dst, std::uint32_t slot, double now) {
    if (satisfied_[slot]) return;  // first input wins; ignore the rest
    satisfied_[slot] = 1;
    FTSCHED_ASSERT(unsatisfied_[dst] > 0, "satisfied count underflow");
    --unsatisfied_[dst];
    if (state_[dst] == State::kPending && unsatisfied_[dst] == 0) {
      try_start(proc_of_[dst], now);
    }
  }

  void on_crash(std::uint32_t p, double now) {
    if (crashed_[p]) return;
    crashed_[p] = 1;
    // Kill everything on p that has not completed by `now`.  A replica
    // finishing exactly at the crash instant counts as completed (its
    // finish event sorts before the crash event at equal time).
    const std::size_t end = queue_offset_[p + 1];
    for (std::size_t i = queue_offset_[p] + head_[p]; i < end; ++i) {
      const std::uint32_t flat = queue_[i];
      if (state_[flat] == State::kPending || state_[flat] == State::kRunning) {
        mark_lost(flat, State::kDead, now);
      }
    }
    busy_[p] = 0;
  }

  /// Marks a replica dead/cancelled and propagates doomed-input
  /// cancellations downstream.
  void mark_lost(std::uint32_t flat, State lost_state, double now) {
    FTSCHED_ASSERT(state_[flat] == State::kPending ||
                       state_[flat] == State::kRunning,
                   "losing a replica twice");
    state_[flat] = lost_state;
    const std::size_t out_end = out_offset_[flat + 1];
    for (std::size_t i = out_offset_[flat]; i < out_end; ++i) {
      const OutChannel& ch = out_[i];
      FTSCHED_ASSERT(live_sources_[ch.slot] > 0, "live source count underflow");
      if (--live_sources_[ch.slot] == 0 && !satisfied_[ch.slot] &&
          state_[ch.dst] == State::kPending) {
        const std::size_t dp = proc_of_[ch.dst];
        mark_lost(ch.dst, State::kCancelled, now);
        // Skipping the cancelled head may unblock the processor.
        if (!crashed_[dp]) try_start(dp, now);
      }
    }
  }

  // --- results --------------------------------------------------------------

  /// Success + achieved latency straight off the flat state arrays: the
  /// latency fold of collect() without materialising per-replica outcomes.
  ScheduleSimulator::Summary summarize() const {
    ScheduleSimulator::Summary s;
    s.success = true;
    double latency = 0.0;
    for (const auto& [begin, end] : exit_ranges_) {
      double done = kInf;
      for (std::size_t flat = begin; flat < end; ++flat) {
        if (state_[flat] == State::kCompleted) {
          done = std::min(done, actual_finish_[flat]);
        }
      }
      if (done == kInf) {
        s.success = false;
        s.latency = kInf;
        return s;
      }
      latency = std::max(latency, done);
    }
    s.latency = latency;
    return s;
  }

  SimulationResult collect() const {
    SimulationResult r;
    r.outcomes.resize(g_.task_count());
    for (TaskId t : g_.tasks()) {
      const std::size_t count = offset_[t.index() + 1] - offset_[t.index()];
      r.outcomes[t.index()].resize(count);
      for (std::size_t k = 0; k < count; ++k) {
        const std::size_t flat = offset_[t.index()] + k;
        ReplicaOutcome& o = r.outcomes[t.index()][k];
        switch (state_[flat]) {
          case State::kCompleted:
            o.status = ReplicaStatus::kCompleted;
            o.start = actual_start_[flat];
            o.finish = actual_finish_[flat];
            ++r.completed_replicas;
            break;
          case State::kDead:
            o.status = ReplicaStatus::kDead;
            o.start = actual_start_[flat];
            ++r.dead_replicas;
            break;
          case State::kCancelled:
            o.status = ReplicaStatus::kCancelled;
            ++r.cancelled_replicas;
            break;
          case State::kPending:
          case State::kRunning:
            o.status = ReplicaStatus::kNotStarted;
            break;
        }
      }
    }
    r.messages_delivered = messages_delivered_;
    r.success = true;
    double latency = 0.0;
    for (TaskId t : g_.exit_tasks()) {
      const double done = r.task_completion(t);
      if (done == kInf) {
        r.success = false;
        r.latency = kInf;
        return r;
      }
      latency = std::max(latency, done);
    }
    r.latency = latency;
    return r;
  }

  const ReplicatedSchedule& schedule_;
  SimulationOptions options_;
  const TaskGraph& g_;
  const Platform& platform_;
  bool contention_free_;
  std::unique_ptr<CommModel> comm_;  ///< built once, reset per run

  // Static (built once from the schedule).
  std::vector<std::size_t> offset_;       ///< task -> flat replica range
  std::vector<std::uint32_t> proc_of_;    ///< flat replica -> processor
  std::vector<double> duration_;
  std::vector<double> sched_start_;
  std::vector<std::size_t> out_offset_;   ///< flat replica -> out_ CSR range
  std::vector<OutChannel> out_;
  std::vector<std::size_t> in_offset_;    ///< flat replica -> slot arena range
  std::vector<std::uint32_t> unsatisfied0_;
  std::vector<std::uint32_t> live_sources0_;
  std::vector<std::size_t> queue_offset_;  ///< processor -> queue_ CSR range
  std::vector<std::uint32_t> queue_;
  std::vector<std::pair<std::size_t, std::size_t>> exit_ranges_;

  // Dynamic (overwritten by reset(); all flat, nothing nested).
  std::vector<State> state_;
  std::vector<double> actual_start_;
  std::vector<double> actual_finish_;
  std::vector<std::uint32_t> unsatisfied_;   ///< copied from unsatisfied0_
  std::vector<std::uint8_t> satisfied_;      ///< slot arena, zero-filled
  std::vector<std::uint32_t> live_sources_;  ///< copied from live_sources0_
  std::vector<std::uint32_t> head_;
  std::vector<std::uint8_t> busy_;
  std::vector<std::uint8_t> crashed_;
  std::vector<Event> events_;  ///< binary min-heap, storage retained
  std::uint32_t seq_ = 0;
  std::size_t messages_delivered_ = 0;
};

ScheduleSimulator::ScheduleSimulator(const ReplicatedSchedule& schedule,
                                     const SimulationOptions& options)
    : impl_(std::make_unique<Impl>(schedule, options)) {}

ScheduleSimulator::~ScheduleSimulator() = default;
ScheduleSimulator::ScheduleSimulator(ScheduleSimulator&&) noexcept = default;
ScheduleSimulator& ScheduleSimulator::operator=(ScheduleSimulator&&) noexcept =
    default;

SimulationResult ScheduleSimulator::run(const FailureScenario& failures) {
  return impl_->run(failures);
}

ScheduleSimulator::Summary ScheduleSimulator::run_summary(
    const FailureScenario& failures) {
  return impl_->run_summary(failures);
}

void ScheduleSimulator::run_batch(std::span<const FailureScenario> scenarios,
                                  std::span<Summary> summaries) {
  impl_->run_batch(scenarios, summaries);
}

SimulationResult simulate(const ReplicatedSchedule& schedule,
                          const FailureScenario& failures,
                          const SimulationOptions& options) {
  return ScheduleSimulator(schedule, options).run(failures);
}

}  // namespace ftsched
