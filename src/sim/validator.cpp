#include "ftsched/sim/validator.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "ftsched/platform/failure.hpp"

namespace ftsched {

ValidationReport validate_fault_tolerance(const ReplicatedSchedule& schedule,
                                          const ValidatorOptions& options) {
  ValidationReport report;
  const double upper = schedule.upper_bound();
  const std::size_t m = schedule.platform().proc_count();
  for (std::size_t k = 0; k <= schedule.epsilon(); ++k) {
    for (const FailureScenario& scenario : all_crash_subsets(m, k)) {
      const SimulationResult result =
          simulate(schedule, scenario, SimulationOptions{options.sim});
      ++report.scenarios_checked;
      auto describe = [&scenario](const char* what) {
        std::ostringstream os;
        os << what << " with crashes {";
        for (std::size_t i = 0; i < scenario.crashes().size(); ++i) {
          if (i) os << ", ";
          os << 'P' << scenario.crashes()[i].proc.value();
        }
        os << '}';
        return os.str();
      };
      if (!result.success) {
        report.valid = false;
        report.failure_description = describe("execution failed");
        return report;
      }
      report.worst_latency = std::max(report.worst_latency, result.latency);
      if (options.check_upper_bound &&
          result.latency > upper * (1.0 + options.tolerance)) {
        report.valid = false;
        std::ostringstream os;
        os << describe("latency bound violated") << ": achieved "
           << result.latency << " > M = " << upper;
        report.failure_description = os.str();
        return report;
      }
    }
  }
  return report;
}

}  // namespace ftsched
