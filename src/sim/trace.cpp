#include "ftsched/sim/trace.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <vector>

namespace ftsched {

namespace {

struct Bar {
  double start;
  double finish;
  std::string label;
};

std::string render_gantt(const std::vector<std::vector<Bar>>& rows,
                         double horizon, std::size_t width) {
  std::ostringstream os;
  if (horizon <= 0.0) horizon = 1.0;
  const double scale = static_cast<double>(width) / horizon;
  for (std::size_t p = 0; p < rows.size(); ++p) {
    std::string line(width, '.');
    for (const Bar& b : rows[p]) {
      auto from = static_cast<std::size_t>(b.start * scale);
      auto to = static_cast<std::size_t>(b.finish * scale);
      from = std::min(from, width - 1);
      to = std::min(std::max(to, from + 1), width);
      for (std::size_t i = from; i < to; ++i) line[i] = '#';
      // Write as much of the label as fits inside the bar.
      for (std::size_t i = 0; i < b.label.size() && from + i < to; ++i) {
        line[from + i] = b.label[i];
      }
    }
    os << 'P' << std::setw(2) << std::left << p << ' ' << line << '\n';
  }
  os << "     0" << std::string(width > 12 ? width - 12 : 0, ' ')
     << std::fixed << std::setprecision(1) << horizon << '\n';
  return os.str();
}

}  // namespace

std::string schedule_gantt(const ReplicatedSchedule& schedule,
                           const GanttOptions& options) {
  const std::size_t m = schedule.platform().proc_count();
  std::vector<std::vector<Bar>> rows(m);
  double horizon = 0.0;
  for (TaskId t : schedule.graph().tasks()) {
    for (const Replica& r : schedule.replicas(t)) {
      rows[r.proc.index()].push_back(
          Bar{r.start, r.finish, schedule.graph().label(t)});
      horizon = std::max(horizon, r.finish);
    }
  }
  return render_gantt(rows, horizon, options.width);
}

std::string execution_gantt(const ReplicatedSchedule& schedule,
                            const SimulationResult& result,
                            const GanttOptions& options) {
  const std::size_t m = schedule.platform().proc_count();
  std::vector<std::vector<Bar>> rows(m);
  double horizon = 0.0;
  std::ostringstream legend;
  for (TaskId t : schedule.graph().tasks()) {
    const auto& reps = schedule.replicas(t);
    for (std::size_t k = 0; k < reps.size(); ++k) {
      const ReplicaOutcome& o = result.outcomes[t.index()][k];
      switch (o.status) {
        case ReplicaStatus::kCompleted:
          rows[reps[k].proc.index()].push_back(
              Bar{o.start, o.finish, schedule.graph().label(t)});
          horizon = std::max(horizon, o.finish);
          break;
        case ReplicaStatus::kDead:
          legend << "  dead:      " << schedule.graph().label(t) << " on P"
                 << reps[k].proc.value() << '\n';
          break;
        case ReplicaStatus::kCancelled:
          legend << "  cancelled: " << schedule.graph().label(t) << " on P"
                 << reps[k].proc.value() << '\n';
          break;
        case ReplicaStatus::kNotStarted:
          legend << "  unstarted: " << schedule.graph().label(t) << " on P"
                 << reps[k].proc.value() << '\n';
          break;
      }
    }
  }
  std::string chart = render_gantt(rows, horizon, options.width);
  const std::string extra = legend.str();
  if (!extra.empty()) chart += "lost replicas:\n" + extra;
  return chart;
}

std::string schedule_listing(const ReplicatedSchedule& schedule) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2);
  os << "schedule (" << schedule.algorithm()
     << ", epsilon=" << schedule.epsilon()
     << ", M*=" << schedule.lower_bound() << ", M=" << schedule.upper_bound()
     << ")\n";
  for (TaskId t : schedule.graph().tasks()) {
    os << "  " << schedule.graph().label(t) << ':';
    for (const Replica& r : schedule.replicas(t)) {
      os << "  P" << r.proc.value() << " [" << r.start << ", " << r.finish
         << ')';
    }
    os << '\n';
  }
  return os.str();
}

namespace {

const char* status_name(ReplicaStatus status) {
  switch (status) {
    case ReplicaStatus::kCompleted:
      return "completed";
    case ReplicaStatus::kDead:
      return "dead";
    case ReplicaStatus::kCancelled:
      return "cancelled";
    case ReplicaStatus::kNotStarted:
      return "not_started";
  }
  return "?";
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string schedule_to_json(const ReplicatedSchedule& schedule,
                             const SimulationResult* execution) {
  std::ostringstream os;
  os << std::setprecision(15);
  os << "{\n";
  os << "  \"algorithm\": \"" << json_escape(schedule.algorithm()) << "\",\n";
  os << "  \"epsilon\": " << schedule.epsilon() << ",\n";
  os << "  \"lower_bound\": " << schedule.lower_bound() << ",\n";
  os << "  \"upper_bound\": " << schedule.upper_bound() << ",\n";
  os << "  \"interproc_messages\": " << schedule.interproc_message_count()
     << ",\n";
  os << "  \"tasks\": [\n";
  const auto tasks = schedule.graph().tasks();
  for (std::size_t ti = 0; ti < tasks.size(); ++ti) {
    const TaskId t = tasks[ti];
    os << "    {\"id\": " << t.value() << ", \"label\": \""
       << json_escape(schedule.graph().label(t)) << "\", \"replicas\": [";
    const auto& reps = schedule.replicas(t);
    for (std::size_t k = 0; k < reps.size(); ++k) {
      if (k) os << ", ";
      os << "{\"proc\": " << reps[k].proc.value()
         << ", \"start\": " << reps[k].start
         << ", \"finish\": " << reps[k].finish;
      if (execution != nullptr) {
        const ReplicaOutcome& o = execution->outcomes[t.index()][k];
        os << ", \"status\": \"" << status_name(o.status) << '"';
        if (o.status == ReplicaStatus::kCompleted) {
          os << ", \"actual_start\": " << o.start
             << ", \"actual_finish\": " << o.finish;
        }
      }
      os << '}';
    }
    os << "]}" << (ti + 1 < tasks.size() ? "," : "") << '\n';
  }
  os << "  ]";
  if (execution != nullptr) {
    os << ",\n  \"execution\": {\"success\": "
       << (execution->success ? "true" : "false");
    if (execution->success) os << ", \"latency\": " << execution->latency;
    os << ", \"completed\": " << execution->completed_replicas
       << ", \"dead\": " << execution->dead_replicas
       << ", \"cancelled\": " << execution->cancelled_replicas << "}";
  }
  os << "\n}\n";
  return os.str();
}

}  // namespace ftsched
