#include "ftsched/sim/comm_model.hpp"

#include <algorithm>
#include <queue>

#include "ftsched/util/error.hpp"

namespace ftsched {

namespace {

class ContentionFreeModel final : public CommModel {
 public:
  double deliver(ProcId, double ready, double duration) override {
    return ready + duration;
  }
  [[nodiscard]] CommModelKind kind() const noexcept override {
    return CommModelKind::kContentionFree;
  }
};

/// k-port model: each processor owns k independent send ports; a message
/// occupies one port for its whole duration.  k = 1 is the one-port model.
class PortedModel final : public CommModel {
 public:
  PortedModel(std::size_t proc_count, std::size_t ports, CommModelKind kind)
      : kind_(kind), ports_(proc_count) {
    FTSCHED_REQUIRE(ports > 0, "port count must be positive");
    for (auto& heap : ports_) {
      heap.assign(ports, 0.0);
      std::make_heap(heap.begin(), heap.end(), std::greater<>{});
    }
  }

  double deliver(ProcId src, double ready, double duration) override {
    if (duration <= 0.0) return ready;  // intra-processor: no port needed
    auto& heap = ports_[src.index()];
    std::pop_heap(heap.begin(), heap.end(), std::greater<>{});
    const double port_free = heap.back();
    const double start = std::max(ready, port_free);
    heap.back() = start + duration;
    std::push_heap(heap.begin(), heap.end(), std::greater<>{});
    return start + duration;
  }

  [[nodiscard]] CommModelKind kind() const noexcept override { return kind_; }

  void reset() override {
    // All ports free at t = 0 again; a heap of equal keys is trivially valid.
    for (auto& heap : ports_) std::fill(heap.begin(), heap.end(), 0.0);
  }

 private:
  CommModelKind kind_;
  std::vector<std::vector<double>> ports_;  // min-heaps of port-free times
};

}  // namespace

std::unique_ptr<CommModel> make_comm_model(std::size_t proc_count,
                                           const CommModelOptions& options) {
  switch (options.kind) {
    case CommModelKind::kContentionFree:
      return std::make_unique<ContentionFreeModel>();
    case CommModelKind::kOnePort:
      return std::make_unique<PortedModel>(proc_count, 1,
                                           CommModelKind::kOnePort);
    case CommModelKind::kBoundedMultiPort:
      return std::make_unique<PortedModel>(proc_count, options.ports,
                                           CommModelKind::kBoundedMultiPort);
  }
  throw InvalidArgument("unknown communication model");
}

}  // namespace ftsched
