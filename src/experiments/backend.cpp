#include "ftsched/experiments/backend.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unistd.h>

#include "ftsched/experiments/sweep_io.hpp"
#include "ftsched/util/parallel.hpp"
#include "ftsched/util/subprocess.hpp"

namespace ftsched {

namespace {

std::string join_semicolons(const std::vector<std::string>& items) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i) out += ';';
    out += items[i];
  }
  return out;
}

// ------------------------------------------------------------------ inproc

class InprocBackend final : public SweepBackend {
 public:
  explicit InprocBackend(std::optional<std::size_t> threads)
      : threads_(threads) {}

  [[nodiscard]] std::string describe() const override {
    return "in-process ParallelExecutor (threads=" +
           (threads_ ? std::to_string(*threads_) : std::string("config")) +
           ")";
  }

  void run(const SweepPlan& plan, SweepSink& sink,
           const RunPlanOptions& options) const override {
    RunPlanOptions o = options;
    if (threads_) o.threads = threads_;
    run_plan(plan, sink, o);
  }

 private:
  std::optional<std::size_t> threads_;  ///< unset = plan.config().threads
};

// -------------------------------------------------------------- subprocess

/// Last ~`limit` bytes of `path`, whitespace-trimmed — enough child stderr
/// to make a SweepBackendError actionable without dumping a log.
std::string stderr_tail(const std::filesystem::path& path,
                        std::size_t limit = 400) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return {};
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string text = ss.str();
  if (text.size() > limit) text.erase(0, text.size() - limit);
  while (!text.empty() &&
         (text.back() == '\n' || text.back() == '\r' || text.back() == ' ')) {
    text.pop_back();
  }
  return text;
}

/// Scratch directory for one backend run, removed on scope exit.
struct TempDir {
  std::filesystem::path path;

  explicit TempDir(const std::string& base) {
    static std::atomic<std::uint64_t> counter{0};
    const std::filesystem::path root =
        base.empty() ? std::filesystem::temp_directory_path()
                     : std::filesystem::path(base);
    path = root / ("ftsched_backend_" + std::to_string(::getpid()) + "_" +
                   std::to_string(counter.fetch_add(1)));
    std::filesystem::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);  // best effort
  }
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;
};

/// One undecorated sample value extracted from a validated shard record.
struct BackendSample {
  std::uint64_t id = 0;
  std::string series;  ///< undecorated (cell suffix stripped)
  double value = 0.0;
};

/// Why one shard attempt failed, and whether another attempt could help.
struct ShardFailure {
  std::string cause;
  bool retryable = true;
};

class SubprocessBackend final : public SweepBackend {
 public:
  SubprocessBackend(std::size_t workers, std::size_t retries, std::string bin,
                    std::size_t child_threads, std::string dir)
      : workers_(workers),
        retries_(retries),
        bin_(std::move(bin)),
        child_threads_(child_threads),
        dir_(std::move(dir)) {}

  [[nodiscard]] std::string describe() const override {
    return "fork/exec shard workers (workers=" +
           (workers_ == 0 ? std::string("hw")
                          : std::to_string(workers_)) +
           ", retries=" + std::to_string(retries_) + ", bin=" + bin_ + ")";
  }

  void run(const SweepPlan& plan, SweepSink& sink,
           const RunPlanOptions& options) const override;

 private:
  std::size_t workers_;        ///< 0 = hardware concurrency
  std::size_t retries_;        ///< extra attempts per shard
  std::string bin_;            ///< ftsched_cli binary (never empty)
  std::size_t child_threads_;  ///< --threads passed to each child
  std::string dir_;            ///< scratch root ("" = system temp dir)
};

/// Reads and validates one child's shard file against exactly the slice it
/// was asked to produce, appending the undecorated samples to `out`.
/// Returns a failure description instead of throwing so the caller can
/// retry; the shard protocol errors (read_shard's malformed-line context)
/// become the cause text verbatim.
std::optional<ShardFailure> collect_shard(const SweepPlan& plan,
                                          const SweepPlan& expected,
                                          const std::filesystem::path& file,
                                          std::vector<BackendSample>& out) {
  ShardFile shard;
  try {
    shard = read_shard_file(file.string());
  } catch (const Error& e) {
    return ShardFailure{std::string("shard file unreadable (truncated "
                                    "or corrupt?): ") +
                        e.what()};
  }
  if (shard.header.fingerprint() != plan.fingerprint()) {
    // Deterministic: the CLI flag rendition cannot express this plan (e.g.
    // programmatic PaperWorkloadParams tweaks), so retrying cannot help.
    return ShardFailure{
        "grid fingerprint mismatch — the child rebuilt a different grid "
        "from the CLI flags (programmatic FigureConfig tweaks the flag "
        "grammar cannot express?)\n  want: " +
            plan.fingerprint() + "\n  got:  " + shard.header.fingerprint(),
        /*retryable=*/false};
  }
  if (shard.header.shard != expected.shard_label()) {
    return ShardFailure{"child covered shard '" + shard.header.shard +
                        "' instead of '" + expected.shard_label() + "'"};
  }
  std::vector<std::uint64_t> expected_ids;
  expected_ids.reserve(expected.size());
  for (std::size_t k = 0; k < expected.size(); ++k) {
    expected_ids.push_back(expected.coord(k).id);
  }
  std::vector<char> covered(expected_ids.size(), 0);
  std::size_t distinct = 0;
  const std::size_t first = out.size();
  for (const ShardRecord& r : shard.records) {
    const auto it = std::lower_bound(expected_ids.begin(), expected_ids.end(),
                                     r.coord.id);
    if (it == expected_ids.end() || *it != r.coord.id) {
      out.resize(first);
      return ShardFailure{"record instance id " + std::to_string(r.coord.id) +
                          " outside the shard's slice"};
    }
    if (r.stats.count() != 1) {
      out.resize(first);
      return ShardFailure{"record of instance " + std::to_string(r.coord.id) +
                          " is not a single-sample accumulator (n=" +
                          std::to_string(r.stats.count()) + ")"};
    }
    char& seen = covered[static_cast<std::size_t>(it - expected_ids.begin())];
    if (!seen) {
      seen = 1;
      ++distinct;
    }
    // Undecorate: the cell suffix is a pure suffix ("series[w|s|f]"), and
    // series_label(coord, "") renders exactly it (empty for single-cell
    // grids), so stripping is exact — no guessing at '[' characters that
    // may legitimately appear in series names.
    const std::string suffix = plan.series_label(r.coord, "");
    std::string series = r.series;
    if (!suffix.empty()) {
      if (series.size() < suffix.size() ||
          series.compare(series.size() - suffix.size(), suffix.size(),
                         suffix) != 0) {
        out.resize(first);
        return ShardFailure{"record series '" + r.series +
                            "' lacks the cell suffix '" + suffix +
                            "' of instance " + std::to_string(r.coord.id)};
      }
      series.resize(series.size() - suffix.size());
    }
    out.push_back(BackendSample{r.coord.id, std::move(series),
                                r.stats.mean()});
  }
  if (distinct != expected_ids.size()) {
    out.resize(first);
    return ShardFailure{"shard file covers " + std::to_string(distinct) +
                        " of " + std::to_string(expected_ids.size()) +
                        " instances (truncated write or dead worker?)"};
  }
  return std::nullopt;
}

void SubprocessBackend::run(const SweepPlan& plan, SweepSink& sink,
                            const RunPlanOptions& options) const {
  const std::size_t n = plan.size();
  if (n == 0) return;
  const std::size_t shard_count = std::min(
      n, workers_ == 0 ? ParallelExecutor::resolve_thread_count(0) : workers_);

  const TempDir tmp(dir_);
  const std::vector<std::string> grid_args = sweep_cli_args(plan.config());

  struct Job {
    SweepPlan expected;        ///< the slice this child must produce
    std::string chain;         ///< --shard chain from the *full* grid
    std::filesystem::path out_file;
    std::filesystem::path log_file;
    std::filesystem::path err_file;
    std::size_t attempts = 0;

    explicit Job(SweepPlan plan) : expected(std::move(plan)) {}
  };

  std::vector<Job> jobs;
  jobs.reserve(shard_count);
  for (std::size_t j = 0; j < shard_count; ++j) {
    Job job(plan.shard(j, shard_count));
    // The child rebuilds the slice from the full grid, so its --shard is
    // the parent's chain (empty when the parent is the full plan) extended
    // by this worker's step — nested shards compose naturally.
    const std::string step =
        std::to_string(j) + "/" + std::to_string(shard_count);
    job.chain = plan.shard_label() == "full" ? step
                                             : plan.shard_label() + "," + step;
    const std::string base = "shard" + std::to_string(j);
    job.out_file = tmp.path / (base + ".jsonl");
    job.log_file = tmp.path / (base + ".log");
    job.err_file = tmp.path / (base + ".err");
    jobs.push_back(std::move(job));
  }

  std::vector<BackendSample> samples;
  std::vector<std::size_t> pending(jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) pending[j] = j;

  while (!pending.empty()) {
    // Spawn the wave concurrently, then reap and validate each child.
    std::vector<ChildProcess> children;
    children.reserve(pending.size());
    for (const std::size_t j : pending) {
      Job& job = jobs[j];
      ++job.attempts;
      std::error_code ec;
      std::filesystem::remove(job.out_file, ec);  // drop a stale attempt
      std::vector<std::string> argv{bin_, "sweep"};
      argv.insert(argv.end(), grid_args.begin(), grid_args.end());
      argv.push_back("--threads");
      argv.push_back(std::to_string(child_threads_));
      argv.push_back("--shard");
      argv.push_back(job.chain);
      argv.push_back("--out");
      argv.push_back(job.out_file.string());
      if (!options.group) argv.push_back("--ungrouped");
      children.push_back(ChildProcess::spawn(argv, job.log_file.string(),
                                             job.err_file.string()));
    }

    std::vector<std::size_t> failed;
    for (std::size_t i = 0; i < pending.size(); ++i) {
      Job& job = jobs[pending[i]];
      const ChildOutcome outcome = children[i].wait();
      std::optional<ShardFailure> failure;
      if (!outcome.success()) {
        failure = ShardFailure{"child " + outcome.describe()};
      } else {
        failure = collect_shard(plan, job.expected, job.out_file, samples);
      }
      if (!failure) continue;
      const std::string err = stderr_tail(job.err_file);
      if (!err.empty()) failure->cause += "\n  child stderr: " + err;
      const std::size_t budget = 1 + retries_;
      if (!failure->retryable || job.attempts >= budget) {
        throw SweepBackendError(
            "subprocess", job.chain,
            failure->cause + " (attempt " + std::to_string(job.attempts) +
                " of " + std::to_string(budget) + ")");
      }
      failed.push_back(pending[i]);
    }
    pending = std::move(failed);
  }

  // Canonical delivery: ascending full-grid id, exactly run_plan's order.
  // Shard validation proved the samples cover the plan's selection exactly
  // once, so walking the selection in order consumes every sample.
  std::stable_sort(samples.begin(), samples.end(),
                   [](const BackendSample& a, const BackendSample& b) {
                     return a.id < b.id;
                   });
  std::size_t at = 0;
  for (std::size_t k = 0; k < n; ++k) {
    const InstanceCoord coord = plan.coord(k);
    SeriesSample sample;
    while (at < samples.size() && samples[at].id == coord.id) {
      const bool fresh =
          sample.emplace(std::move(samples[at].series), samples[at].value)
              .second;
      if (!fresh) {
        throw SweepBackendError(
            "subprocess", plan.shard_label(),
            "duplicate series record for instance " + std::to_string(coord.id));
      }
      ++at;
    }
    sink.on_sample(coord, sample);
  }
}

// ------------------------------------------------------------------ registry

std::optional<std::size_t> optional_size(const SpecOptions& options,
                                         const char* key) {
  if (!options.has(key)) return std::nullopt;
  return static_cast<std::size_t>(
      spec_detail::parse_u64(key, options.get(key)));
}

SweepBackendRegistry build_registry() {
  SweepBackendRegistry registry;

  registry.add({
      "inproc",
      "in-process ParallelExecutor threads (the default engine)",
      {{"threads", "config",
        "worker threads (0 = hardware concurrency; default: the plan's "
        "configured thread count)"}},
      [](const SpecOptions& options) -> SweepBackendPtr {
        return std::make_unique<InprocBackend>(
            optional_size(options, "threads"));
      },
  });

  registry.add({
      "subprocess",
      "fork/exec 'ftsched_cli sweep --shard j/K' workers over the JSONL "
      "shard protocol; dead or corrupt shards are retried",
      {{"workers", "0", "child processes / shards (0 = hardware concurrency)"},
       {"retries", "2", "extra attempts per failed shard"},
       {"bin", "",
        "ftsched_cli binary to exec (default: the running CLI itself, or "
        "$FTSCHED_CLI for library embedders)"},
       {"threads", "1", "worker threads inside each child"},
       {"dir", "", "scratch directory for shard files (default: $TMPDIR)"}},
      [](const SpecOptions& options) -> SweepBackendPtr {
        std::string bin = options.get("bin", "");
        if (bin.empty()) {
          const char* env = std::getenv("FTSCHED_CLI");
          if (env != nullptr) bin = env;
        }
        FTSCHED_REQUIRE(
            !bin.empty(),
            "subprocess backend needs bin=<path to ftsched_cli> (or "
            "FTSCHED_CLI in the environment) when not run from the CLI");
        return std::make_unique<SubprocessBackend>(
            options.get_size("workers", 0), options.get_size("retries", 2),
            std::move(bin), options.get_size("threads", 1),
            options.get("dir", ""));
      },
  });

  registry.add({
      "socket",
      "remote socket workers leased by the sweep-coordinator service "
      "(reserved; see ROADMAP.md)",
      {},
      [](const SpecOptions&) -> SweepBackendPtr {
        throw InvalidArgument(
            "sweep backend 'socket' is reserved for the sweep-coordinator "
            "service and not implemented yet (see ROADMAP.md); use inproc "
            "or subprocess");
      },
  });

  return registry;
}

}  // namespace

const SweepBackendRegistry& SweepBackendRegistry::global() {
  static const SweepBackendRegistry registry = build_registry();
  return registry;
}

SweepBackendPtr make_sweep_backend(
    const std::string& spec,
    const std::vector<std::pair<std::string, std::string>>& defaults) {
  return SweepBackendRegistry::global().create_with_defaults(spec, defaults);
}

std::vector<std::string> sweep_cli_args(const FigureConfig& config) {
  std::vector<std::string> args;
  const auto flag = [&args](const char* name, std::string value) {
    args.emplace_back(name);
    args.push_back(std::move(value));
  };
  flag("--figure", std::to_string(config.figure));
  flag("--graphs", std::to_string(config.graphs_per_point));
  flag("--seed", std::to_string(config.seed));
  // The CLI treats 0 as "keep the figure default" for these two, so 0 is
  // simply not rendered (no real grid uses epsilon or procs of 0).
  if (config.epsilon != 0) flag("--epsilon", std::to_string(config.epsilon));
  if (config.proc_count != 0) {
    flag("--procs", std::to_string(config.proc_count));
  }
  if (!config.granularities.empty()) {
    std::string grans;
    for (std::size_t i = 0; i < config.granularities.size(); ++i) {
      if (i) grans += ';';
      grans += spec_detail::render_double(config.granularities[i]);
    }
    flag("--granularities", grans);
  }
  if (!config.workloads.empty()) {
    flag("--workload", join_semicolons(config.workloads));
  }
  if (!config.scenarios.empty()) {
    flag("--scenario", join_semicolons(config.scenarios));
  }
  if (!config.failure_models.empty()) {
    flag("--failures", join_semicolons(config.failure_models));
  }
  return args;
}

}  // namespace ftsched
