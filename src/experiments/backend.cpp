#include "ftsched/experiments/backend.hpp"

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unistd.h>

#include "ftsched/experiments/config.hpp"
#include "ftsched/experiments/sweep_io.hpp"
#include "ftsched/service/coordinator.hpp"
#include "ftsched/util/cli.hpp"
#include "ftsched/util/parallel.hpp"
#include "ftsched/util/subprocess.hpp"

namespace ftsched {

namespace {

std::string join_semicolons(const std::vector<std::string>& items) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i) out += ';';
    out += items[i];
  }
  return out;
}

/// Splits a ';'-separated list (specs already use ',' and ':').  Items are
/// whitespace-trimmed and empty items are skipped, so "a; b;" means {a, b}.
std::vector<std::string> split_list(const std::string& text) {
  std::vector<std::string> out;
  if (text.empty()) return out;
  std::istringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ';')) {
    const auto begin = item.find_first_not_of(" \t");
    if (begin == std::string::npos) continue;
    const auto end = item.find_last_not_of(" \t");
    out.push_back(item.substr(begin, end - begin + 1));
  }
  return out;
}

// ------------------------------------------------------------------ inproc

class InprocBackend final : public SweepBackend {
 public:
  explicit InprocBackend(std::optional<std::size_t> threads)
      : threads_(threads) {}

  [[nodiscard]] std::string describe() const override {
    return "in-process ParallelExecutor (threads=" +
           (threads_ ? std::to_string(*threads_) : std::string("config")) +
           ")";
  }

  void run(const SweepPlan& plan, SweepSink& sink,
           const RunPlanOptions& options) const override {
    RunPlanOptions o = options;
    if (threads_) o.threads = threads_;
    run_plan(plan, sink, o);
  }

 private:
  std::optional<std::size_t> threads_;  ///< unset = plan.config().threads
};

// -------------------------------------------------------------- subprocess

/// Folds a dead worker's stderr tail (util/subprocess.hpp) into a failure
/// cause — the one formatting both process-spawning backends (subprocess
/// and socket) share, so their errors stay equally actionable.
std::string with_child_stderr(std::string cause,
                              const std::filesystem::path& err_file) {
  const std::string err = stderr_tail(err_file.string());
  if (!err.empty()) cause += "\n  child stderr: " + err;
  return cause;
}

/// Scratch directory for one backend run, removed on scope exit.
struct TempDir {
  std::filesystem::path path;

  explicit TempDir(const std::string& base) {
    static std::atomic<std::uint64_t> counter{0};
    const std::filesystem::path root =
        base.empty() ? std::filesystem::temp_directory_path()
                     : std::filesystem::path(base);
    path = root / ("ftsched_backend_" + std::to_string(::getpid()) + "_" +
                   std::to_string(counter.fetch_add(1)));
    std::filesystem::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);  // best effort
  }
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;
};

/// One undecorated sample value extracted from a validated shard record.
struct BackendSample {
  std::uint64_t id = 0;
  std::string series;  ///< undecorated (cell suffix stripped)
  double value = 0.0;
};

/// Why one shard attempt failed, and whether another attempt could help.
struct ShardFailure {
  std::string cause;
  bool retryable = true;
};

class SubprocessBackend final : public SweepBackend {
 public:
  SubprocessBackend(std::size_t workers, std::size_t retries, std::string bin,
                    std::size_t child_threads, std::string dir)
      : workers_(workers),
        retries_(retries),
        bin_(std::move(bin)),
        child_threads_(child_threads),
        dir_(std::move(dir)) {}

  [[nodiscard]] std::string describe() const override {
    return "fork/exec shard workers (workers=" +
           (workers_ == 0 ? std::string("hw")
                          : std::to_string(workers_)) +
           ", retries=" + std::to_string(retries_) + ", bin=" + bin_ + ")";
  }

  void run(const SweepPlan& plan, SweepSink& sink,
           const RunPlanOptions& options) const override;

 private:
  std::size_t workers_;        ///< 0 = hardware concurrency
  std::size_t retries_;        ///< extra attempts per shard
  std::string bin_;            ///< ftsched_cli binary (never empty)
  std::size_t child_threads_;  ///< --threads passed to each child
  std::string dir_;            ///< scratch root ("" = system temp dir)
};

/// Reads and validates one child's shard file against exactly the slice it
/// was asked to produce, appending the undecorated samples to `out`.
/// Returns a failure description instead of throwing so the caller can
/// retry; the shard protocol errors (read_shard's malformed-line context)
/// become the cause text verbatim.
std::optional<ShardFailure> collect_shard(const SweepPlan& plan,
                                          const SweepPlan& expected,
                                          const std::filesystem::path& file,
                                          std::vector<BackendSample>& out) {
  ShardFile shard;
  try {
    shard = read_shard_file(file.string());
  } catch (const Error& e) {
    return ShardFailure{std::string("shard file unreadable (truncated "
                                    "or corrupt?): ") +
                        e.what()};
  }
  if (shard.header.fingerprint() != plan.fingerprint()) {
    // Deterministic: the CLI flag rendition cannot express this plan (e.g.
    // programmatic PaperWorkloadParams tweaks), so retrying cannot help.
    return ShardFailure{
        "grid fingerprint mismatch — the child rebuilt a different grid "
        "from the CLI flags (programmatic FigureConfig tweaks the flag "
        "grammar cannot express?)\n  want: " +
            plan.fingerprint() + "\n  got:  " + shard.header.fingerprint(),
        /*retryable=*/false};
  }
  if (shard.header.shard != expected.shard_label()) {
    return ShardFailure{"child covered shard '" + shard.header.shard +
                        "' instead of '" + expected.shard_label() + "'"};
  }
  std::vector<std::uint64_t> expected_ids;
  expected_ids.reserve(expected.size());
  for (std::size_t k = 0; k < expected.size(); ++k) {
    expected_ids.push_back(expected.coord(k).id);
  }
  std::vector<char> covered(expected_ids.size(), 0);
  std::size_t distinct = 0;
  const std::size_t first = out.size();
  for (const ShardRecord& r : shard.records) {
    const auto it = std::lower_bound(expected_ids.begin(), expected_ids.end(),
                                     r.coord.id);
    if (it == expected_ids.end() || *it != r.coord.id) {
      out.resize(first);
      return ShardFailure{"record instance id " + std::to_string(r.coord.id) +
                          " outside the shard's slice"};
    }
    if (r.stats.count() != 1) {
      out.resize(first);
      return ShardFailure{"record of instance " + std::to_string(r.coord.id) +
                          " is not a single-sample accumulator (n=" +
                          std::to_string(r.stats.count()) + ")"};
    }
    char& seen = covered[static_cast<std::size_t>(it - expected_ids.begin())];
    if (!seen) {
      seen = 1;
      ++distinct;
    }
    std::string series = r.series;
    if (!undecorate_series(plan, r.coord, series)) {
      out.resize(first);
      return ShardFailure{"record series '" + r.series +
                          "' lacks the cell suffix of instance " +
                          std::to_string(r.coord.id)};
    }
    out.push_back(BackendSample{r.coord.id, std::move(series),
                                r.stats.mean()});
  }
  if (distinct != expected_ids.size()) {
    out.resize(first);
    return ShardFailure{"shard file covers " + std::to_string(distinct) +
                        " of " + std::to_string(expected_ids.size()) +
                        " instances (truncated write or dead worker?)"};
  }
  return std::nullopt;
}

void SubprocessBackend::run(const SweepPlan& plan, SweepSink& sink,
                            const RunPlanOptions& options) const {
  const std::size_t n = plan.size();
  if (n == 0) return;
  const std::size_t shard_count = std::min(
      n, workers_ == 0 ? ParallelExecutor::resolve_thread_count(0) : workers_);

  const TempDir tmp(dir_);
  const std::vector<std::string> grid_args = sweep_cli_args(plan.config());

  struct Job {
    SweepPlan expected;        ///< the slice this child must produce
    std::string chain;         ///< --shard chain from the *full* grid
    std::filesystem::path out_file;
    std::filesystem::path log_file;
    std::filesystem::path err_file;
    std::size_t attempts = 0;

    explicit Job(SweepPlan plan) : expected(std::move(plan)) {}
  };

  std::vector<Job> jobs;
  jobs.reserve(shard_count);
  for (std::size_t j = 0; j < shard_count; ++j) {
    Job job(plan.shard(j, shard_count));
    // The child rebuilds the slice from the full grid, so its --shard is
    // the parent's chain (empty when the parent is the full plan) extended
    // by this worker's step — nested shards compose naturally.
    const std::string step =
        std::to_string(j) + "/" + std::to_string(shard_count);
    job.chain = plan.shard_label() == "full" ? step
                                             : plan.shard_label() + "," + step;
    const std::string base = "shard" + std::to_string(j);
    job.out_file = tmp.path / (base + ".jsonl");
    job.log_file = tmp.path / (base + ".log");
    job.err_file = tmp.path / (base + ".err");
    jobs.push_back(std::move(job));
  }

  std::vector<BackendSample> samples;
  std::vector<std::size_t> pending(jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) pending[j] = j;

  while (!pending.empty()) {
    // Spawn the wave concurrently, then reap and validate each child.
    std::vector<ChildProcess> children;
    children.reserve(pending.size());
    for (const std::size_t j : pending) {
      Job& job = jobs[j];
      ++job.attempts;
      std::error_code ec;
      std::filesystem::remove(job.out_file, ec);  // drop a stale attempt
      std::vector<std::string> argv{bin_, "sweep"};
      argv.insert(argv.end(), grid_args.begin(), grid_args.end());
      argv.push_back("--threads");
      argv.push_back(std::to_string(child_threads_));
      argv.push_back("--shard");
      argv.push_back(job.chain);
      argv.push_back("--out");
      argv.push_back(job.out_file.string());
      if (!options.group) argv.push_back("--ungrouped");
      children.push_back(ChildProcess::spawn(argv, job.log_file.string(),
                                             job.err_file.string()));
    }

    std::vector<std::size_t> failed;
    for (std::size_t i = 0; i < pending.size(); ++i) {
      Job& job = jobs[pending[i]];
      const ChildOutcome outcome = children[i].wait();
      std::optional<ShardFailure> failure;
      if (!outcome.success()) {
        failure = ShardFailure{"child " + outcome.describe()};
      } else {
        failure = collect_shard(plan, job.expected, job.out_file, samples);
      }
      if (!failure) continue;
      failure->cause = with_child_stderr(std::move(failure->cause),
                                         job.err_file);
      const std::size_t budget = 1 + retries_;
      if (!failure->retryable || job.attempts >= budget) {
        throw SweepBackendError(
            "subprocess", job.chain,
            failure->cause + " (attempt " + std::to_string(job.attempts) +
                " of " + std::to_string(budget) + ")");
      }
      failed.push_back(pending[i]);
    }
    pending = std::move(failed);
  }

  // Canonical delivery: ascending full-grid id, exactly run_plan's order.
  // Shard validation proved the samples cover the plan's selection exactly
  // once, so walking the selection in order consumes every sample.
  std::stable_sort(samples.begin(), samples.end(),
                   [](const BackendSample& a, const BackendSample& b) {
                     return a.id < b.id;
                   });
  std::size_t at = 0;
  for (std::size_t k = 0; k < n; ++k) {
    const InstanceCoord coord = plan.coord(k);
    SeriesSample sample;
    while (at < samples.size() && samples[at].id == coord.id) {
      const bool fresh =
          sample.emplace(std::move(samples[at].series), samples[at].value)
              .second;
      if (!fresh) {
        throw SweepBackendError(
            "subprocess", plan.shard_label(),
            "duplicate series record for instance " + std::to_string(coord.id));
      }
      ++at;
    }
    sink.on_sample(coord, sample);
  }
}

// ------------------------------------------------------------------ socket

/// The coordinator-service backend: runs the Coordinator in-process and
/// spawns local `ftsched_cli worker --connect` children that lease slices
/// over the socket protocol.  Worker deaths are tolerated while at least
/// one worker lives (the coordinator re-queues their leases); only a fully
/// dead fleet fails the run, with the last death and disconnect causes in
/// the error.  With manifest=<dir>, completed units are journaled and a
/// re-run resumes from them.
class SocketBackend final : public SweepBackend {
 public:
  SocketBackend(std::uint16_t port, std::size_t workers, std::size_t lease,
                double timeout, std::string manifest, std::string bin,
                std::string dir)
      : port_(port),
        workers_(workers),
        lease_(lease),
        timeout_(timeout),
        manifest_(std::move(manifest)),
        bin_(std::move(bin)),
        dir_(std::move(dir)) {}

  [[nodiscard]] std::string describe() const override {
    return "sweep-coordinator service with local socket workers (workers=" +
           (workers_ == 0 ? std::string("hw") : std::to_string(workers_)) +
           ", lease=" +
           (lease_ == 0 ? std::string("auto") : std::to_string(lease_)) +
           ", timeout=" + std::to_string(timeout_) + "s" +
           (manifest_.empty() ? std::string()
                              : ", manifest=" + manifest_) +
           ")";
  }

  void run(const SweepPlan& plan, SweepSink& sink,
           const RunPlanOptions& options) const override;

 private:
  std::uint16_t port_;    ///< 0 = kernel-chosen
  std::size_t workers_;   ///< 0 = hardware concurrency
  std::size_t lease_;     ///< coords per lease (0 = auto)
  double timeout_;        ///< lease-expiry seconds
  std::string manifest_;  ///< manifest dir ("" = no resume)
  std::string bin_;       ///< ftsched_cli binary (never empty)
  std::string dir_;       ///< scratch root for worker logs ("" = temp)
};

void SocketBackend::run(const SweepPlan& plan, SweepSink& sink,
                        const RunPlanOptions& options) const {
  const std::size_t n = plan.size();
  if (n == 0) return;

  CoordinatorOptions copts;
  copts.port = port_;
  copts.lease = lease_;
  copts.timeout = timeout_;
  copts.manifest_dir = manifest_;
  copts.group = options.group;
  Coordinator coordinator(plan, sink, copts);
  if (coordinator.finished()) return;  // fully served from the manifest

  const std::size_t fleet = std::min(
      n, workers_ == 0 ? ParallelExecutor::resolve_thread_count(0) : workers_);
  const TempDir tmp(dir_);

  struct WorkerChild {
    ChildProcess proc;
    std::filesystem::path err_file;
    std::optional<ChildOutcome> outcome;
  };
  std::vector<WorkerChild> children;
  children.reserve(fleet);

  try {
    for (std::size_t i = 0; i < fleet; ++i) {
      const std::string base = "worker" + std::to_string(i);
      std::vector<std::string> argv{
          bin_,
          "worker",
          "--connect",
          "127.0.0.1:" + std::to_string(coordinator.port()),
          "--name",
          base,
      };
      WorkerChild child{
          ChildProcess::spawn(argv, (tmp.path / (base + ".log")).string(),
                              (tmp.path / (base + ".err")).string()),
          tmp.path / (base + ".err"), std::nullopt};
      children.push_back(std::move(child));
    }

    std::string last_death;
    const auto reap = [&]() {
      std::size_t alive = 0;
      for (std::size_t i = 0; i < children.size(); ++i) {
        WorkerChild& child = children[i];
        if (child.outcome) continue;
        child.outcome = child.proc.try_wait();
        if (!child.outcome) {
          ++alive;
        } else if (!child.outcome->success()) {
          last_death = with_child_stderr(
              "worker " + std::to_string(i) + " " + child.outcome->describe(),
              child.err_file);
        }
      }
      return alive;
    };

    while (!coordinator.finished()) {
      coordinator.poll(100);
      if (reap() == 0 && !coordinator.finished()) {
        // Final frames may still be buffered; one non-blocking turn drains
        // them before concluding the fleet died short of the goal.
        coordinator.poll(0);
        if (coordinator.finished()) break;
        std::string cause = "all socket workers died before the sweep "
                            "completed";
        if (!last_death.empty()) cause += "\n  last death: " + last_death;
        if (!coordinator.last_disconnect_cause().empty()) {
          cause += "\n  last disconnect: " + coordinator.last_disconnect_cause();
        }
        throw SweepBackendError("socket", plan.shard_label(), cause);
      }
    }
    // Wind-down: keep answering residual lease requests with bye until the
    // fleet has exited (workers that died mid-sweep were tolerated — their
    // leases were re-run — so only the samples matter by now, and those
    // are all delivered).
    while (reap() > 0) coordinator.poll(50);
  } catch (...) {
    for (WorkerChild& child : children) {
      if (!child.outcome && child.proc.running()) child.proc.kill(SIGKILL);
    }
    for (WorkerChild& child : children) {
      if (!child.outcome && child.proc.running()) (void)child.proc.wait();
    }
    throw;
  }
}

// ------------------------------------------------------------------ registry

std::optional<std::size_t> optional_size(const SpecOptions& options,
                                         const char* key) {
  if (!options.has(key)) return std::nullopt;
  return static_cast<std::size_t>(
      spec_detail::parse_u64(key, options.get(key)));
}

SweepBackendRegistry build_registry() {
  SweepBackendRegistry registry;

  registry.add({
      "inproc",
      "in-process ParallelExecutor threads (the default engine)",
      {{"threads", "config",
        "worker threads (0 = hardware concurrency; default: the plan's "
        "configured thread count)"}},
      [](const SpecOptions& options) -> SweepBackendPtr {
        return std::make_unique<InprocBackend>(
            optional_size(options, "threads"));
      },
  });

  registry.add({
      "subprocess",
      "fork/exec 'ftsched_cli sweep --shard j/K' workers over the JSONL "
      "shard protocol; dead or corrupt shards are retried",
      {{"workers", "0", "child processes / shards (0 = hardware concurrency)"},
       {"retries", "2", "extra attempts per failed shard"},
       {"bin", "",
        "ftsched_cli binary to exec (default: the running CLI itself, or "
        "$FTSCHED_CLI for library embedders)"},
       {"threads", "1", "worker threads inside each child"},
       {"dir", "", "scratch directory for shard files (default: $TMPDIR)"}},
      [](const SpecOptions& options) -> SweepBackendPtr {
        std::string bin = options.get("bin", "");
        if (bin.empty()) {
          const char* env = std::getenv("FTSCHED_CLI");
          if (env != nullptr) bin = env;
        }
        FTSCHED_REQUIRE(
            !bin.empty(),
            "subprocess backend needs bin=<path to ftsched_cli> (or "
            "FTSCHED_CLI in the environment) when not run from the CLI");
        return std::make_unique<SubprocessBackend>(
            options.get_size("workers", 0), options.get_size("retries", 2),
            std::move(bin), options.get_size("threads", 1),
            options.get("dir", ""));
      },
  });

  registry.add({
      "socket",
      "sweep-coordinator service: leases grid slices to 'ftsched_cli "
      "worker' processes over a loopback socket, with lease expiry, work "
      "stealing and (with manifest=) resumable sweeps",
      {{"port", "0", "listening port on 127.0.0.1 (0 = kernel-chosen)"},
       {"workers", "0", "local worker processes (0 = hardware concurrency)"},
       {"lease", "0", "coordinates per lease (0 = auto: selection/32)"},
       {"timeout", "30",
        "seconds of worker silence before a lease expires and re-queues"},
       {"manifest", "",
        "manifest directory for resumable sweeps (empty = no journaling)"},
       {"bin", "",
        "ftsched_cli binary to exec (default: the running CLI itself, or "
        "$FTSCHED_CLI for library embedders)"},
       {"dir", "", "scratch directory for worker logs (default: $TMPDIR)"}},
      [](const SpecOptions& options) -> SweepBackendPtr {
        std::string bin = options.get("bin", "");
        if (bin.empty()) {
          const char* env = std::getenv("FTSCHED_CLI");
          if (env != nullptr) bin = env;
        }
        FTSCHED_REQUIRE(
            !bin.empty(),
            "socket backend needs bin=<path to ftsched_cli> (or "
            "FTSCHED_CLI in the environment) when not run from the CLI");
        return std::make_unique<SocketBackend>(
            static_cast<std::uint16_t>(
                spec_detail::parse_u64("port", options.get("port", "0"))),
            options.get_size("workers", 0), options.get_size("lease", 0),
            spec_detail::parse_double("timeout", options.get("timeout", "30")),
            options.get("manifest", ""), std::move(bin),
            options.get("dir", ""));
      },
  });

  return registry;
}

}  // namespace

const SweepBackendRegistry& SweepBackendRegistry::global() {
  static const SweepBackendRegistry registry = build_registry();
  return registry;
}

SweepBackendPtr make_sweep_backend(
    const std::string& spec,
    const std::vector<std::pair<std::string, std::string>>& defaults) {
  return SweepBackendRegistry::global().create_with_defaults(spec, defaults);
}

std::vector<std::string> sweep_cli_args(const FigureConfig& config) {
  std::vector<std::string> args;
  const auto flag = [&args](const char* name, std::string value) {
    args.emplace_back(name);
    args.push_back(std::move(value));
  };
  flag("--figure", std::to_string(config.figure));
  flag("--graphs", std::to_string(config.graphs_per_point));
  flag("--seed", std::to_string(config.seed));
  // The CLI treats 0 as "keep the figure default" for these two, so 0 is
  // simply not rendered (no real grid uses epsilon or procs of 0).
  if (config.epsilon != 0) flag("--epsilon", std::to_string(config.epsilon));
  if (config.proc_count != 0) {
    flag("--procs", std::to_string(config.proc_count));
  }
  if (!config.granularities.empty()) {
    std::string grans;
    for (std::size_t i = 0; i < config.granularities.size(); ++i) {
      if (i) grans += ';';
      grans += spec_detail::render_double(config.granularities[i]);
    }
    flag("--granularities", grans);
  }
  if (!config.workloads.empty()) {
    flag("--workload", join_semicolons(config.workloads));
  }
  if (!config.scenarios.empty()) {
    flag("--scenario", join_semicolons(config.scenarios));
  }
  if (!config.failure_models.empty()) {
    flag("--failures", join_semicolons(config.failure_models));
  }
  if (!config.policies.empty()) {
    flag("--policy", join_semicolons(config.policies));
  }
  return args;
}

void add_sweep_grid_options(CliParser& cli) {
  cli.add_option("figure", "1", "base config: paper figure 1..4");
  cli.add_option("workload", "",
                 "';'-separated WorkloadRegistry specs (empty = the paper "
                 "§6 generator)");
  cli.add_option("scenario", "",
                 "';'-separated crash-law specs (empty = t0)");
  cli.add_option("failures", "",
                 "';'-separated failure-model specs (empty = eps; see "
                 "list-failure-laws)");
  cli.add_option("policy", "",
                 "';'-separated rescheduling-policy specs (empty = none; "
                 "see list-policies)");
  cli.add_option("granularities", "",
                 "';'-separated granularity values (empty = the 0.2..2.0 "
                 "paper grid)");
  cli.add_option("graphs", "8", "instances per (cell, granularity) point");
  cli.add_option("epsilon", "0", "failures tolerated (0 = figure default)");
  cli.add_option("procs", "0", "processors (0 = figure default)");
  cli.add_option("threads", "0", "worker threads (0 = hardware concurrency)");
  cli.add_option("seed", "42", "root seed");
  cli.add_option("shard", "",
                 "run only shard i/N of the grid, e.g. 0/3; chains nest "
                 "shards, e.g. 0/3,1/2 = half of shard 0/3 (empty = full "
                 "grid)");
  cli.add_option("backend", "inproc",
                 "execution backend spec, e.g. inproc or "
                 "subprocess:workers=3 (see list-backends)");
}

FigureConfig sweep_config_from_cli(const CliParser& cli) {
  FigureConfig config = figure_config(static_cast<int>(cli.get_int("figure")));
  config.graphs_per_point = static_cast<std::size_t>(cli.get_int("graphs"));
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  config.threads = static_cast<std::size_t>(cli.get_int("threads"));
  if (cli.get_int("epsilon") != 0) {
    config.epsilon = static_cast<std::size_t>(cli.get_int("epsilon"));
  }
  if (cli.get_int("procs") != 0) {
    config.proc_count = static_cast<std::size_t>(cli.get_int("procs"));
    config.workload.proc_count = config.proc_count;
  }
  // Lowering epsilon below a figure's extra crash counts would trip the
  // runner's k <= epsilon requirement; keep only the counts still tolerated.
  std::erase_if(config.extra_crash_counts,
                [&](std::size_t k) { return k > config.epsilon; });
  config.workloads = split_list(cli.get("workload"));
  config.scenarios = split_list(cli.get("scenario"));
  config.failure_models = split_list(cli.get("failures"));
  config.policies = split_list(cli.get("policy"));
  const std::vector<std::string> grans = split_list(cli.get("granularities"));
  if (!grans.empty()) {
    config.granularities.clear();
    for (const std::string& g : grans) {
      config.granularities.push_back(
          spec_detail::parse_double("granularities", g));
    }
  }
  return config;
}

FigureConfig sweep_config_from_args(const std::vector<std::string>& args) {
  CliParser cli("sweep grid flags");
  add_sweep_grid_options(cli);
  std::vector<const char*> argv{"plan-args"};
  argv.reserve(args.size() + 1);
  for (const std::string& a : args) argv.push_back(a.c_str());
  FTSCHED_REQUIRE(cli.parse(static_cast<int>(argv.size()), argv.data()),
                  "sweep grid flag vector asked for --help");
  return sweep_config_from_cli(cli);
}

SweepPlan apply_shard_chain(SweepPlan plan, const std::string& chain) {
  if (chain.empty() || chain == "full") return plan;
  std::istringstream ss(chain);
  std::string step;
  while (std::getline(ss, step, ',')) {
    const auto slash = step.find('/');
    FTSCHED_REQUIRE(slash != std::string::npos && slash > 0 &&
                        slash + 1 < step.size(),
                    "--shard expects i/N steps, e.g. 0/3 or 0/3,1/2; got '" +
                        chain + "'");
    plan = plan.shard(spec_detail::parse_u64("shard", step.substr(0, slash)),
                      spec_detail::parse_u64("shard", step.substr(slash + 1)));
  }
  return plan;
}

}  // namespace ftsched
