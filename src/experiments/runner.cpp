#include "ftsched/experiments/runner.hpp"

#include <algorithm>

#include "ftsched/core/ftbar.hpp"
#include "ftsched/core/ftsa.hpp"
#include "ftsched/metrics/metrics.hpp"
#include "ftsched/platform/failure.hpp"
#include "ftsched/util/error.hpp"

namespace ftsched {

namespace {

/// Simulated latency of `schedule` with the first `count` victims of
/// `victims` crashing at time 0.
double crash_latency(const ReplicatedSchedule& schedule,
                     const std::vector<std::size_t>& victims,
                     std::size_t count, const SimulationOptions& sim) {
  FailureScenario scenario;
  for (std::size_t i = 0; i < count; ++i) {
    scenario.add(ProcId{victims[i]}, 0.0);
  }
  const SimulationResult result = simulate(schedule, scenario, sim);
  FTSCHED_REQUIRE(result.success,
                  "simulation failed with <= epsilon crashes (Thm 4.1 bug)");
  return result.latency;
}

}  // namespace

SeriesSample evaluate_instance(const Workload& workload, Rng& rng,
                               const InstanceOptions& options) {
  const CostModel& costs = workload.costs();
  const std::size_t m = workload.platform().proc_count();
  FTSCHED_REQUIRE(options.epsilon < m, "epsilon must be < proc count");

  // Shared crash victims for this instance.
  const std::vector<std::size_t> victims =
      rng.sample_without_replacement(m, options.epsilon);

  FtsaOptions ftsa_opts;
  ftsa_opts.epsilon = options.epsilon;
  ftsa_opts.seed = options.seed;
  const ReplicatedSchedule ftsa = ftsa_schedule(costs, ftsa_opts);

  McFtsaOptions mc_opts;
  mc_opts.epsilon = options.epsilon;
  mc_opts.seed = options.seed;
  mc_opts.selector = options.mc_selector;
  const ReplicatedSchedule mc = mc_ftsa_schedule(costs, mc_opts);

  FtbarOptions ftbar_opts;
  ftbar_opts.npf = options.epsilon;
  ftbar_opts.seed = options.seed;
  const ReplicatedSchedule ftbar = ftbar_schedule(costs, ftbar_opts);

  FtsaOptions ff_opts;
  ff_opts.epsilon = 0;
  ff_opts.seed = options.seed;
  const ReplicatedSchedule ff_ftsa = ftsa_schedule(costs, ff_opts);
  FtbarOptions ff_ftbar_opts;
  ff_ftbar_opts.npf = 0;
  ff_ftbar_opts.seed = options.seed;
  const ReplicatedSchedule ff_ftbar = ftbar_schedule(costs, ff_ftbar_opts);

  const double ftsa_star = ff_ftsa.lower_bound();  // FTSA* reference

  SeriesSample sample;
  auto norm = [&costs](double latency) {
    return normalized_latency(latency, costs);
  };
  sample["FTSA-LowerBound"] = norm(ftsa.lower_bound());
  sample["FTSA-UpperBound"] = norm(ftsa.upper_bound());
  sample["MC-FTSA-LowerBound"] = norm(mc.lower_bound());
  sample["MC-FTSA-UpperBound"] = norm(mc.upper_bound());
  sample["FTBAR-LowerBound"] = norm(ftbar.lower_bound());
  sample["FTBAR-UpperBound"] = norm(ftbar.upper_bound());
  sample["FaultFree-FTSA"] = norm(ftsa_star);
  sample["FaultFree-FTBAR"] = norm(ff_ftbar.lower_bound());
  sample["OH-FTSA-LowerBound"] =
      overhead_percent(ftsa.lower_bound(), ftsa_star);
  sample["OH-FTBAR-LowerBound"] =
      overhead_percent(ftbar.lower_bound(), ftsa_star);

  // Crash series: FTSA at 0, the extras, and ε; MC/FTBAR at ε.
  std::vector<std::size_t> counts{0};
  counts.insert(counts.end(), options.extra_crash_counts.begin(),
                options.extra_crash_counts.end());
  counts.push_back(options.epsilon);
  std::sort(counts.begin(), counts.end());
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());
  for (std::size_t k : counts) {
    const double latency = crash_latency(ftsa, victims, k, options.sim);
    const std::string name = "FTSA-" + std::to_string(k) + "Crash";
    sample[name] = norm(latency);
    sample["OH-" + name] = overhead_percent(latency, ftsa_star);
  }
  {
    const double latency =
        crash_latency(mc, victims, options.epsilon, options.sim);
    const std::string name =
        "MC-FTSA-" + std::to_string(options.epsilon) + "Crash";
    sample[name] = norm(latency);
    sample["OH-" + name] = overhead_percent(latency, ftsa_star);
  }
  {
    const double latency =
        crash_latency(ftbar, victims, options.epsilon, options.sim);
    const std::string name =
        "FTBAR-" + std::to_string(options.epsilon) + "Crash";
    sample[name] = norm(latency);
    sample["OH-" + name] = overhead_percent(latency, ftsa_star);
  }
  // Communication accounting for the ablation tables.
  sample["Msg-FTSA"] = static_cast<double>(ftsa.interproc_message_count());
  sample["Msg-MC-FTSA"] = static_cast<double>(mc.interproc_message_count());
  sample["Msg-FTBAR"] = static_cast<double>(ftbar.interproc_message_count());
  // Fraction of tasks whose channels the end-to-end repair touched
  // (quantifies the cost of fixing the paper's Prop.-4.3 gap).
  sample["MC-RepairRate"] =
      static_cast<double>(mc.repaired_tasks().size()) /
      static_cast<double>(costs.graph().task_count());
  return sample;
}

SweepResult run_sweep(const FigureConfig& config) {
  SweepResult result;
  result.granularities = config.granularities;
  Rng root(config.seed);

  InstanceOptions options;
  options.epsilon = config.epsilon;
  options.extra_crash_counts = config.extra_crash_counts;

  for (std::size_t gi = 0; gi < config.granularities.size(); ++gi) {
    Rng point_rng = root.split();
    for (std::size_t rep = 0; rep < config.graphs_per_point; ++rep) {
      Rng instance_rng = point_rng.split();
      PaperWorkloadParams params = config.workload;
      params.proc_count = config.proc_count;
      params.granularity = config.granularities[gi];
      const auto workload = make_paper_workload(instance_rng, params);
      options.seed = instance_rng();
      const SeriesSample sample =
          evaluate_instance(*workload, instance_rng, options);
      for (const auto& [name, value] : sample) {
        auto& stats = result.series[name];
        if (stats.size() != config.granularities.size()) {
          stats.resize(config.granularities.size());
        }
        stats[gi].add(value);
      }
    }
  }
  return result;
}

}  // namespace ftsched
