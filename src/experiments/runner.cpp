#include "ftsched/experiments/runner.hpp"

#include <algorithm>
#include <memory>

#include "ftsched/experiments/sweep_plan.hpp"
#include "ftsched/metrics/metrics.hpp"
#include "ftsched/platform/failure.hpp"
#include "ftsched/util/error.hpp"

namespace ftsched {

namespace {

/// Simulated latency of `schedule` with the first `count` victims of
/// `victims` crashing at their unit time scaled by the schedule's
/// failure-free lower bound (unit time 0 = the paper's t=0 worst case).
double crash_latency(const ReplicatedSchedule& schedule,
                     const std::vector<std::size_t>& victims,
                     const std::vector<double>& unit_times, std::size_t count,
                     const SimulationOptions& sim) {
  FailureScenario scenario;
  const double anchor = schedule.lower_bound();
  for (std::size_t i = 0; i < count; ++i) {
    scenario.add(ProcId{victims[i]}, unit_times[i] * anchor);
  }
  const SimulationResult result = simulate(schedule, scenario, sim);
  FTSCHED_REQUIRE(result.success,
                  "simulation failed with <= epsilon crashes (Thm 4.1 bug)");
  return result.latency;
}

/// Resolves a registry spec, injecting the instance's epsilon and seed as
/// defaults for algorithms that take them (explicit spec options win).
SchedulerPtr make_instance_scheduler(const std::string& spec,
                                     std::size_t epsilon, std::uint64_t seed) {
  return make_scheduler(spec, {{"eps", std::to_string(epsilon)},
                               {"seed", std::to_string(seed)}});
}

}  // namespace

std::vector<InstanceAlgo> default_instance_algos(
    const InstanceOptions& options) {
  // FTSA is simulated at 0 crashes, the extras, and epsilon; the others at
  // epsilon only — the paper's figure layout.
  InstanceAlgo ftsa;
  ftsa.key = "FTSA";
  ftsa.spec = "ftsa";
  ftsa.crash_counts.push_back(0);
  ftsa.crash_counts.insert(ftsa.crash_counts.end(),
                           options.extra_crash_counts.begin(),
                           options.extra_crash_counts.end());
  ftsa.crash_counts.push_back(options.epsilon);
  ftsa.overhead_of_lower_bound = true;

  InstanceAlgo mc;
  mc.key = "MC-FTSA";
  mc.spec = options.mc_selector == McSelector::kGreedy
                ? "mc-ftsa"
                : "mc-ftsa:selector=matching";
  mc.crash_counts.push_back(options.epsilon);
  mc.repair_series = "MC-RepairRate";

  InstanceAlgo ftbar;
  ftbar.key = "FTBAR";
  ftbar.spec = "ftbar";
  ftbar.crash_counts.push_back(options.epsilon);
  ftbar.overhead_of_lower_bound = true;

  return {ftsa, mc, ftbar};
}

SeriesSample evaluate_instance(const Workload& workload, Rng& rng,
                               const InstanceOptions& options) {
  const CostModel& costs = workload.costs();
  const std::size_t m = workload.platform().proc_count();
  FTSCHED_REQUIRE(options.epsilon < m, "epsilon must be < proc count");

  // Shared crash victims and unit crash instants for this instance: every
  // algorithm's curve faces the same failures (the default t=0 law draws no
  // randomness, keeping legacy streams bit-identical).
  const std::vector<std::size_t> victims =
      rng.sample_without_replacement(m, options.epsilon);
  const std::vector<double> unit_times =
      options.crash_law.sample(rng, options.epsilon);

  // Fault-free reference schedules; FTSA* anchors every overhead series.
  const ReplicatedSchedule ff_ftsa =
      make_instance_scheduler("ftsa:eps=0", 0, options.seed)->run(costs);
  const ReplicatedSchedule ff_ftbar =
      make_instance_scheduler("ftbar:npf=0", 0, options.seed)->run(costs);
  const double ftsa_star = ff_ftsa.lower_bound();  // FTSA* reference

  SeriesSample sample;
  auto norm = [&costs](double latency) {
    return normalized_latency(latency, costs);
  };
  sample["FaultFree-FTSA"] = norm(ftsa_star);
  sample["FaultFree-FTBAR"] = norm(ff_ftbar.lower_bound());

  const std::vector<InstanceAlgo> algos =
      options.algos.empty() ? default_instance_algos(options) : options.algos;
  for (const InstanceAlgo& algo : algos) {
    const ReplicatedSchedule schedule =
        make_instance_scheduler(algo.spec, options.epsilon, options.seed)
            ->run(costs);
    sample[algo.key + "-LowerBound"] = norm(schedule.lower_bound());
    sample[algo.key + "-UpperBound"] = norm(schedule.upper_bound());
    if (algo.overhead_of_lower_bound) {
      sample["OH-" + algo.key + "-LowerBound"] =
          overhead_percent(schedule.lower_bound(), ftsa_star);
    }

    std::vector<std::size_t> counts = algo.crash_counts;
    std::sort(counts.begin(), counts.end());
    counts.erase(std::unique(counts.begin(), counts.end()), counts.end());
    for (std::size_t k : counts) {
      FTSCHED_REQUIRE(k <= options.epsilon,
                      "crash count exceeds the tolerated epsilon");
      const double latency =
          crash_latency(schedule, victims, unit_times, k, options.sim);
      const std::string series =
          algo.key + "-" + std::to_string(k) + "Crash";
      sample[series] = norm(latency);
      sample["OH-" + series] = overhead_percent(latency, ftsa_star);
    }

    // Communication accounting for the ablation tables.
    sample["Msg-" + algo.key] =
        static_cast<double>(schedule.interproc_message_count());
    if (!algo.repair_series.empty()) {
      // Fraction of tasks whose channels the end-to-end repair touched
      // (quantifies the cost of fixing the paper's Prop.-4.3 gap).
      sample[algo.repair_series] =
          static_cast<double>(schedule.repaired_tasks().size()) /
          static_cast<double>(costs.graph().task_count());
    }
  }
  return sample;
}

std::string decorate_series_name(const std::string& series,
                                 const std::string& workload,
                                 const std::string& scenario,
                                 bool multi_cell) {
  if (!multi_cell) return series;
  return series + "[" + workload + "|" + scenario + "]";
}

std::string sweep_series_name(const SweepResult& sweep,
                              const std::string& series,
                              const std::string& workload,
                              const std::string& scenario) {
  return decorate_series_name(
      series, workload, scenario,
      sweep.workloads.size() * sweep.scenarios.size() > 1);
}

bool sweep_results_identical(const SweepResult& a, const SweepResult& b) {
  if (a.granularities != b.granularities) return false;
  if (a.workloads != b.workloads || a.scenarios != b.scenarios) return false;
  if (a.series.size() != b.series.size()) return false;
  for (auto ita = a.series.begin(), itb = b.series.begin();
       ita != a.series.end(); ++ita, ++itb) {
    if (ita->first != itb->first) return false;
    const auto& sa = ita->second;
    const auto& sb = itb->second;
    if (sa.size() != sb.size()) return false;
    for (std::size_t i = 0; i < sa.size(); ++i) {
      if (sa[i].count() != sb[i].count() || sa[i].mean() != sb[i].mean() ||
          sa[i].variance() != sb[i].variance() || sa[i].min() != sb[i].min() ||
          sa[i].max() != sb[i].max()) {
        return false;
      }
    }
  }
  return true;
}

SweepResult run_sweep(const FigureConfig& config) {
  // Thin wrapper over the plan/execute pipeline: enumerate the full grid,
  // evaluate it in parallel, aggregate through the in-memory sink.  The
  // serial coordinate-order delivery of run_plan pins every OnlineStats
  // rounding, so the result is bit-identical for every thread count — and
  // to any sharded run of the same plan merged back with merge_shards.
  const SweepPlan plan(config);
  OnlineStatsSink sink(plan);
  run_plan(plan, sink);
  return sink.take();
}

}  // namespace ftsched
