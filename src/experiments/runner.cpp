#include "ftsched/experiments/runner.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <memory>
#include <span>

#include "ftsched/core/reschedule.hpp"
#include "ftsched/experiments/sweep_plan.hpp"
#include "ftsched/metrics/metrics.hpp"
#include "ftsched/platform/failure.hpp"
#include "ftsched/util/error.hpp"

namespace ftsched {

namespace {

/// Builds the failure scenario of the first `count` victims of `draw`, each
/// crashing at its unit time scaled by `anchor` (the schedule's failure-free
/// lower bound; unit time 0 = the paper's t=0 worst case).
FailureScenario make_scenario(const CellDraw& draw, double anchor,
                              std::size_t count) {
  FailureScenario scenario;
  for (std::size_t i = 0; i < count; ++i) {
    scenario.add(ProcId{draw.victims[i]}, draw.unit_times[i] * anchor);
  }
  return scenario;
}

/// Resolves a registry spec, injecting the instance's epsilon and seed as
/// defaults for algorithms that take them (explicit spec options win).
SchedulerPtr make_instance_scheduler(const std::string& spec,
                                     std::size_t epsilon, std::uint64_t seed) {
  return make_scheduler(spec, {{"eps", std::to_string(epsilon)},
                               {"seed", std::to_string(seed)}});
}

}  // namespace

std::vector<InstanceAlgo> default_instance_algos(
    const InstanceOptions& options) {
  // FTSA is simulated at 0 crashes, the extras, and epsilon; the others at
  // epsilon only — the paper's figure layout.
  InstanceAlgo ftsa;
  ftsa.key = "FTSA";
  ftsa.spec = "ftsa";
  ftsa.crash_counts.push_back(0);
  ftsa.crash_counts.insert(ftsa.crash_counts.end(),
                           options.extra_crash_counts.begin(),
                           options.extra_crash_counts.end());
  ftsa.crash_counts.push_back(options.epsilon);
  ftsa.overhead_of_lower_bound = true;

  InstanceAlgo mc;
  mc.key = "MC-FTSA";
  mc.spec = options.mc_selector == McSelector::kGreedy
                ? "mc-ftsa"
                : "mc-ftsa:selector=matching";
  mc.crash_counts.push_back(options.epsilon);
  mc.repair_series = "MC-RepairRate";

  InstanceAlgo ftbar;
  ftbar.key = "FTBAR";
  ftbar.spec = "ftbar";
  ftbar.crash_counts.push_back(options.epsilon);
  ftbar.overhead_of_lower_bound = true;

  return {ftsa, mc, ftbar};
}

InstanceSchedules build_instance_schedules(const Workload& workload,
                                           const InstanceOptions& options) {
  const CostModel& costs = workload.costs();
  const std::size_t m = workload.platform().proc_count();
  FTSCHED_REQUIRE(options.epsilon < m, "epsilon must be < proc count");

  InstanceSchedules out;
  out.workload = &workload;
  out.epsilon = options.epsilon;

  auto norm = [&costs](double latency) {
    return normalized_latency(latency, costs);
  };

  // Fault-free reference schedules; FTSA* anchors every overhead series.
  const ReplicatedSchedule ff_ftsa =
      make_instance_scheduler("ftsa:eps=0", 0, options.seed)->run(costs);
  const ReplicatedSchedule ff_ftbar =
      make_instance_scheduler("ftbar:npf=0", 0, options.seed)->run(costs);
  out.ftsa_star = ff_ftsa.lower_bound();  // FTSA* reference
  out.schedule_series["FaultFree-FTSA"] = norm(out.ftsa_star);
  out.schedule_series["FaultFree-FTBAR"] = norm(ff_ftbar.lower_bound());

  const std::vector<InstanceAlgo> algos =
      options.algos.empty() ? default_instance_algos(options) : options.algos;
  out.algos.reserve(algos.size());
  for (const InstanceAlgo& algo : algos) {
    auto schedule = std::make_unique<ReplicatedSchedule>(
        make_instance_scheduler(algo.spec, options.epsilon, options.seed)
            ->run(costs));
    out.schedule_series[algo.key + "-LowerBound"] =
        norm(schedule->lower_bound());
    out.schedule_series[algo.key + "-UpperBound"] =
        norm(schedule->upper_bound());
    if (algo.overhead_of_lower_bound) {
      out.schedule_series["OH-" + algo.key + "-LowerBound"] =
          overhead_percent(schedule->lower_bound(), out.ftsa_star);
    }
    // Communication accounting for the ablation tables.
    out.schedule_series["Msg-" + algo.key] =
        static_cast<double>(schedule->interproc_message_count());
    if (!algo.repair_series.empty()) {
      // Fraction of tasks whose channels the end-to-end repair touched
      // (quantifies the cost of fixing the paper's Prop.-4.3 gap).
      out.schedule_series[algo.repair_series] =
          static_cast<double>(schedule->repaired_tasks().size()) /
          static_cast<double>(costs.graph().task_count());
    }

    std::vector<std::size_t> counts = algo.crash_counts;
    std::sort(counts.begin(), counts.end());
    counts.erase(std::unique(counts.begin(), counts.end()), counts.end());
    for (std::size_t k : counts) {
      FTSCHED_REQUIRE(k <= options.epsilon,
                      "crash count exceeds the tolerated epsilon");
    }
    auto simulator =
        std::make_unique<ScheduleSimulator>(*schedule, options.sim);

    InstanceSchedules::Algo entry;
    entry.algo = algo;
    entry.schedule = std::move(schedule);
    entry.simulator = std::move(simulator);
    entry.crash_counts = std::move(counts);
    // Precompute every series name the simulate phase can emit, so cells
    // never assemble strings on the hot path.
    entry.crash_series_names.reserve(entry.crash_counts.size());
    for (std::size_t k : entry.crash_counts) {
      std::string series = algo.key + "-" + std::to_string(k) + "Crash";
      entry.crash_series_names.emplace_back(series, "OH-" + series);
    }
    entry.success_series = algo.key + "-Success";
    entry.drawn_series = algo.key + "-DrawnCrash";
    entry.oh_drawn_series = "OH-" + algo.key + "-DrawnCrash";
    entry.moves_series = algo.key + "-Moves";
    out.algos.push_back(std::move(entry));
  }
  return out;
}

CellDraw draw_instance_cell(const InstanceSchedules& schedules, Rng& rng,
                            const CrashTimeLaw& crash_law,
                            const FailureModel& failure_model) {
  const std::size_t m = schedules.workload->platform().proc_count();

  // Shared crash victims and unit crash instants for this instance: every
  // algorithm's curve faces the same failures.  The default failure model
  // draws exactly the legacy sample_without_replacement(m, ε), and the
  // default t=0 law draws nothing, keeping legacy streams bit-identical.
  CellDraw draw;
  draw.victims = failure_model.draw(rng, m, schedules.epsilon);
  draw.unit_times = crash_law.sample(rng, draw.victims.size());
  draw.default_model = failure_model.is_default();
  // New-in-PR-9 laws draw strictly after the legacy stream, so every
  // pre-existing model keeps its exact draws.  A burst law correlates the
  // crash instants: common onset (the first drawn unit time) plus a
  // uniform per-victim offset.  A repair law appends per-victim restart
  // delays; the static path ignores them, the online path anchors them.
  const std::size_t count = draw.victims.size();
  if (failure_model.is_burst() && count > 0) {
    const double onset = draw.unit_times.front();
    const std::vector<double> offsets =
        failure_model.sample_burst_offsets(rng, count);
    for (std::size_t i = 0; i < count; ++i) {
      draw.unit_times[i] = onset + offsets[i];
    }
  }
  if (failure_model.has_repair()) {
    draw.unit_repair_delays = failure_model.sample_repair_delays(rng, count);
  }
  return draw;
}

SeriesSample simulate_drawn_cell(const InstanceSchedules& schedules,
                                 const CellDraw& draw,
                                 SimulationCache* cache) {
  const CostModel& costs = schedules.workload->costs();
  const std::size_t drawn = draw.victims.size();

  SeriesSample sample = schedules.schedule_series;
  auto norm = [&costs](double latency) {
    return normalized_latency(latency, costs);
  };
  if (!draw.default_model) {
    // How many crashes the model actually drew (cell mean = the average
    // injected failure count, for degradation plots against ε).
    sample["DrawnCrashes"] = static_cast<double>(drawn);
  }

  // Per-algorithm scratch, reused across the loop.
  std::vector<std::size_t> counts;
  std::vector<ScheduleSimulator::Summary> summaries;
  std::vector<SimulationCache::Key> miss_keys;
  std::vector<std::size_t> miss_slots;
  std::vector<FailureScenario> miss_scenarios;
  std::vector<ScheduleSimulator::Summary> miss_summaries;

  for (std::size_t ai = 0; ai < schedules.algos.size(); ++ai) {
    const InstanceSchedules::Algo& a = schedules.algos[ai];
    const double anchor = a.schedule->lower_bound();

    // Counts simulated for this cell: the legacy counts the draw covers (a
    // prefix of the sorted crash_counts — a probabilistic model may draw
    // fewer victims than a fixed series asks for, and then the instance
    // simply doesn't sample that series; the default model always draws ε,
    // covering every legacy count) plus, under a non-default model, the
    // drawn scenario itself — all `drawn` victims, which may exceed ε.
    counts.clear();
    for (std::size_t k : a.crash_counts) {
      if (k > drawn) break;
      counts.push_back(k);
    }
    const std::size_t legacy = counts.size();
    if (!draw.default_model) counts.push_back(drawn);
    // When the drawn count coincides with the last legacy count the two
    // slots are the same scenario: simulate once and alias.
    const bool drawn_dup =
        !draw.default_model && legacy > 0 && counts[legacy - 1] == drawn;
    const std::size_t simulated = counts.size() - (drawn_dup ? 1 : 0);

    summaries.assign(counts.size(), {});
    miss_keys.clear();
    miss_slots.clear();
    miss_scenarios.clear();
    for (std::size_t i = 0; i < simulated; ++i) {
      if (cache != nullptr) {
        SimulationCache::Key key;
        key.algo = ai;
        key.victims.assign(draw.victims.begin(),
                           draw.victims.begin() +
                               static_cast<std::ptrdiff_t>(counts[i]));
        key.times.reserve(counts[i]);
        for (std::size_t j = 0; j < counts[i]; ++j) {
          key.times.push_back(std::bit_cast<std::uint64_t>(draw.unit_times[j]));
        }
        if (const auto it = cache->memo_.find(key);
            it != cache->memo_.end()) {
          summaries[i] = it->second;
          ++cache->stats_.hits;
          continue;
        }
        miss_keys.push_back(std::move(key));
      }
      miss_slots.push_back(i);
      miss_scenarios.push_back(make_scenario(draw, anchor, counts[i]));
    }

    if (!miss_scenarios.empty()) {
      miss_summaries.assign(miss_scenarios.size(), {});
      a.simulator->run_batch(miss_scenarios, miss_summaries);
      for (std::size_t j = 0; j < miss_slots.size(); ++j) {
        summaries[miss_slots[j]] = miss_summaries[j];
        if (cache != nullptr) {
          cache->memo_.emplace(std::move(miss_keys[j]), miss_summaries[j]);
        }
      }
      if (cache != nullptr) {
        cache->stats_.simulations += miss_scenarios.size();
      }
    }
    if (drawn_dup) {
      summaries.back() = summaries[legacy - 1];
      if (cache != nullptr) ++cache->stats_.hits;
    }

    for (std::size_t i = 0; i < legacy; ++i) {
      const ScheduleSimulator::Summary& result = summaries[i];
      FTSCHED_REQUIRE(result.success,
                      "simulation failed with <= epsilon crashes (Thm 4.1 "
                      "bug)");
      const auto& [series, oh_series] = a.crash_series_names[i];
      sample[series] = norm(result.latency);
      sample[oh_series] = overhead_percent(result.latency, schedules.ftsa_star);
    }

    if (!draw.default_model) {
      // Past ε nothing is guaranteed, so instead of asserting we record a
      // success indicator — its cell mean is the graceful-degradation
      // success fraction — and latency/overhead over the surviving runs
      // only.
      const ScheduleSimulator::Summary& result = summaries[legacy];
      FTSCHED_REQUIRE(result.success || drawn > schedules.epsilon,
                      "simulation failed with <= epsilon crashes (Thm 4.1 "
                      "bug)");
      sample[a.success_series] = result.success ? 1.0 : 0.0;
      if (result.success) {
        sample[a.drawn_series] = norm(result.latency);
        sample[a.oh_drawn_series] =
            overhead_percent(result.latency, schedules.ftsa_star);
      }
    }
  }
  return sample;
}

SeriesSample simulate_online_cell(const InstanceSchedules& schedules,
                                  const CellDraw& draw,
                                  ReschedulePolicy& policy) {
  const CostModel& costs = schedules.workload->costs();
  const std::size_t drawn = draw.victims.size();

  SeriesSample sample = schedules.schedule_series;
  auto norm = [&costs](double latency) {
    return normalized_latency(latency, costs);
  };
  sample["DrawnCrashes"] = static_cast<double>(drawn);

  for (const InstanceSchedules::Algo& a : schedules.algos) {
    const double anchor = a.schedule->lower_bound();
    // The timeline anchors exactly like make_scenario — same crash-time
    // doubles as the static path — plus the repair instants the static
    // path discards.  A degenerate zero-length outage (repair delay that
    // rounds to no time at all at this anchor) is recorded as never
    // repaired rather than violating the timeline's repair > crash
    // contract.
    FailureTimeline timeline;
    for (std::size_t i = 0; i < drawn; ++i) {
      const double crash = draw.unit_times[i] * anchor;
      double repair = std::numeric_limits<double>::infinity();
      if (i < draw.unit_repair_delays.size()) {
        const double candidate = crash + draw.unit_repair_delays[i] * anchor;
        if (candidate > crash) repair = candidate;
      }
      timeline.add(ProcId{draw.victims[i]}, crash, repair);
    }
    policy.prepare(*a.schedule);
    const ScheduleSimulator::OnlineSummary result =
        a.simulator->run_online(timeline, &policy);
    // Past-ε failures are legitimate here just as under a non-default
    // static model: record the success indicator and gate the latency
    // series on it.  (With a live policy even ≤ ε crashes carry no
    // Thm 4.1 guarantee — moves trade the static replication proof for
    // adaptivity — so no success assertion either way.)
    sample[a.success_series] = result.success ? 1.0 : 0.0;
    if (result.success) {
      sample[a.drawn_series] = norm(result.latency);
      sample[a.oh_drawn_series] =
          overhead_percent(result.latency, schedules.ftsa_star);
    }
    sample[a.moves_series] = static_cast<double>(result.moves);
  }
  return sample;
}

SeriesSample simulate_instance_cell(const InstanceSchedules& schedules,
                                    Rng& rng, const CrashTimeLaw& crash_law,
                                    const FailureModel& failure_model) {
  const CellDraw draw =
      draw_instance_cell(schedules, rng, crash_law, failure_model);
  return simulate_drawn_cell(schedules, draw, nullptr);
}

SeriesSample evaluate_instance(const Workload& workload, Rng& rng,
                               const InstanceOptions& options) {
  // Schedule phase then simulate phase.  The schedule phase draws nothing
  // from `rng`, so splitting here is stream-invariant: the victim and
  // crash-instant draws land on exactly the pre-split state.
  const InstanceSchedules schedules =
      build_instance_schedules(workload, options);
  return simulate_instance_cell(schedules, rng, options.crash_law,
                                options.failure_model);
}

std::string decorate_series_name(const std::string& series,
                                 const std::string& workload,
                                 const std::string& scenario, bool multi_cell,
                                 const std::string& failure,
                                 bool multi_failure,
                                 const std::string& policy,
                                 bool multi_policy) {
  if (!multi_cell) return series;
  std::string out = series + "[" + workload + "|" + scenario;
  // The failure and policy parts appear only when their dimension is
  // actually swept, so legacy (workload x scenario) grids keep their exact
  // names — and pre-policy grids keep their exact three-part names.
  if (multi_failure) out += "|" + failure;
  if (multi_policy) out += "|" + policy;
  return out + "]";
}

std::string sweep_series_name(const SweepResult& sweep,
                              const std::string& series,
                              const std::string& workload,
                              const std::string& scenario,
                              const std::string& failure,
                              const std::string& policy) {
  const std::size_t failure_cells =
      sweep.failures.empty() ? 1 : sweep.failures.size();
  const std::size_t policy_cells =
      sweep.policies.empty() ? 1 : sweep.policies.size();
  return decorate_series_name(
      series, workload, scenario,
      sweep.workloads.size() * sweep.scenarios.size() * failure_cells *
              policy_cells >
          1,
      failure, failure_cells > 1, policy, policy_cells > 1);
}

std::string sweep_series_name(const SweepResult& sweep,
                              const std::string& series,
                              const std::string& workload,
                              const std::string& scenario,
                              const std::string& failure) {
  return sweep_series_name(sweep, series, workload, scenario, failure,
                           sweep.policies.empty() ? "none"
                                                  : sweep.policies.front());
}

std::string sweep_series_name(const SweepResult& sweep,
                              const std::string& series,
                              const std::string& workload,
                              const std::string& scenario) {
  return sweep_series_name(sweep, series, workload, scenario,
                           sweep.failures.empty() ? "eps"
                                                  : sweep.failures.front());
}

bool sweep_results_identical(const SweepResult& a, const SweepResult& b) {
  if (a.granularities != b.granularities) return false;
  if (a.workloads != b.workloads || a.scenarios != b.scenarios) return false;
  if (a.failures != b.failures) return false;
  if (a.policies != b.policies) return false;
  if (a.series.size() != b.series.size()) return false;
  for (auto ita = a.series.begin(), itb = b.series.begin();
       ita != a.series.end(); ++ita, ++itb) {
    if (ita->first != itb->first) return false;
    const auto& sa = ita->second;
    const auto& sb = itb->second;
    if (sa.size() != sb.size()) return false;
    for (std::size_t i = 0; i < sa.size(); ++i) {
      if (sa[i].count() != sb[i].count() || sa[i].mean() != sb[i].mean() ||
          sa[i].variance() != sb[i].variance() || sa[i].min() != sb[i].min() ||
          sa[i].max() != sb[i].max()) {
        return false;
      }
    }
  }
  return true;
}

SweepResult run_sweep(const FigureConfig& config) {
  // Thin wrapper over the plan/execute pipeline: enumerate the full grid,
  // evaluate it in parallel, aggregate through the in-memory sink.  The
  // serial coordinate-order delivery of run_plan pins every OnlineStats
  // rounding, so the result is bit-identical for every thread count — and
  // to any sharded run of the same plan merged back with merge_shards.
  const SweepPlan plan(config);
  OnlineStatsSink sink(plan);
  run_plan(plan, sink);
  return sink.take();
}

}  // namespace ftsched
