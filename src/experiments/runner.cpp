#include "ftsched/experiments/runner.hpp"

#include <algorithm>
#include <memory>
#include <set>

#include "ftsched/metrics/metrics.hpp"
#include "ftsched/platform/failure.hpp"
#include "ftsched/util/error.hpp"
#include "ftsched/util/parallel.hpp"

namespace ftsched {

namespace {

/// Simulated latency of `schedule` with the first `count` victims of
/// `victims` crashing at their unit time scaled by the schedule's
/// failure-free lower bound (unit time 0 = the paper's t=0 worst case).
double crash_latency(const ReplicatedSchedule& schedule,
                     const std::vector<std::size_t>& victims,
                     const std::vector<double>& unit_times, std::size_t count,
                     const SimulationOptions& sim) {
  FailureScenario scenario;
  const double anchor = schedule.lower_bound();
  for (std::size_t i = 0; i < count; ++i) {
    scenario.add(ProcId{victims[i]}, unit_times[i] * anchor);
  }
  const SimulationResult result = simulate(schedule, scenario, sim);
  FTSCHED_REQUIRE(result.success,
                  "simulation failed with <= epsilon crashes (Thm 4.1 bug)");
  return result.latency;
}

/// Resolves a registry spec, injecting the instance's epsilon and seed as
/// defaults for algorithms that take them (explicit spec options win).
SchedulerPtr make_instance_scheduler(const std::string& spec,
                                     std::size_t epsilon, std::uint64_t seed) {
  return make_scheduler(spec, {{"eps", std::to_string(epsilon)},
                               {"seed", std::to_string(seed)}});
}

}  // namespace

std::vector<InstanceAlgo> default_instance_algos(
    const InstanceOptions& options) {
  // FTSA is simulated at 0 crashes, the extras, and epsilon; the others at
  // epsilon only — the paper's figure layout.
  InstanceAlgo ftsa;
  ftsa.key = "FTSA";
  ftsa.spec = "ftsa";
  ftsa.crash_counts.push_back(0);
  ftsa.crash_counts.insert(ftsa.crash_counts.end(),
                           options.extra_crash_counts.begin(),
                           options.extra_crash_counts.end());
  ftsa.crash_counts.push_back(options.epsilon);
  ftsa.overhead_of_lower_bound = true;

  InstanceAlgo mc;
  mc.key = "MC-FTSA";
  mc.spec = options.mc_selector == McSelector::kGreedy
                ? "mc-ftsa"
                : "mc-ftsa:selector=matching";
  mc.crash_counts.push_back(options.epsilon);
  mc.repair_series = "MC-RepairRate";

  InstanceAlgo ftbar;
  ftbar.key = "FTBAR";
  ftbar.spec = "ftbar";
  ftbar.crash_counts.push_back(options.epsilon);
  ftbar.overhead_of_lower_bound = true;

  return {ftsa, mc, ftbar};
}

SeriesSample evaluate_instance(const Workload& workload, Rng& rng,
                               const InstanceOptions& options) {
  const CostModel& costs = workload.costs();
  const std::size_t m = workload.platform().proc_count();
  FTSCHED_REQUIRE(options.epsilon < m, "epsilon must be < proc count");

  // Shared crash victims and unit crash instants for this instance: every
  // algorithm's curve faces the same failures (the default t=0 law draws no
  // randomness, keeping legacy streams bit-identical).
  const std::vector<std::size_t> victims =
      rng.sample_without_replacement(m, options.epsilon);
  const std::vector<double> unit_times =
      options.crash_law.sample(rng, options.epsilon);

  // Fault-free reference schedules; FTSA* anchors every overhead series.
  const ReplicatedSchedule ff_ftsa =
      make_instance_scheduler("ftsa:eps=0", 0, options.seed)->run(costs);
  const ReplicatedSchedule ff_ftbar =
      make_instance_scheduler("ftbar:npf=0", 0, options.seed)->run(costs);
  const double ftsa_star = ff_ftsa.lower_bound();  // FTSA* reference

  SeriesSample sample;
  auto norm = [&costs](double latency) {
    return normalized_latency(latency, costs);
  };
  sample["FaultFree-FTSA"] = norm(ftsa_star);
  sample["FaultFree-FTBAR"] = norm(ff_ftbar.lower_bound());

  const std::vector<InstanceAlgo> algos =
      options.algos.empty() ? default_instance_algos(options) : options.algos;
  for (const InstanceAlgo& algo : algos) {
    const ReplicatedSchedule schedule =
        make_instance_scheduler(algo.spec, options.epsilon, options.seed)
            ->run(costs);
    sample[algo.key + "-LowerBound"] = norm(schedule.lower_bound());
    sample[algo.key + "-UpperBound"] = norm(schedule.upper_bound());
    if (algo.overhead_of_lower_bound) {
      sample["OH-" + algo.key + "-LowerBound"] =
          overhead_percent(schedule.lower_bound(), ftsa_star);
    }

    std::vector<std::size_t> counts = algo.crash_counts;
    std::sort(counts.begin(), counts.end());
    counts.erase(std::unique(counts.begin(), counts.end()), counts.end());
    for (std::size_t k : counts) {
      FTSCHED_REQUIRE(k <= options.epsilon,
                      "crash count exceeds the tolerated epsilon");
      const double latency =
          crash_latency(schedule, victims, unit_times, k, options.sim);
      const std::string series =
          algo.key + "-" + std::to_string(k) + "Crash";
      sample[series] = norm(latency);
      sample["OH-" + series] = overhead_percent(latency, ftsa_star);
    }

    // Communication accounting for the ablation tables.
    sample["Msg-" + algo.key] =
        static_cast<double>(schedule.interproc_message_count());
    if (!algo.repair_series.empty()) {
      // Fraction of tasks whose channels the end-to-end repair touched
      // (quantifies the cost of fixing the paper's Prop.-4.3 gap).
      sample[algo.repair_series] =
          static_cast<double>(schedule.repaired_tasks().size()) /
          static_cast<double>(costs.graph().task_count());
    }
  }
  return sample;
}

std::string sweep_series_name(const SweepResult& sweep,
                              const std::string& series,
                              const std::string& workload,
                              const std::string& scenario) {
  if (sweep.workloads.size() * sweep.scenarios.size() <= 1) return series;
  return series + "[" + workload + "|" + scenario + "]";
}

bool sweep_results_identical(const SweepResult& a, const SweepResult& b) {
  if (a.granularities != b.granularities) return false;
  if (a.workloads != b.workloads || a.scenarios != b.scenarios) return false;
  if (a.series.size() != b.series.size()) return false;
  for (auto ita = a.series.begin(), itb = b.series.begin();
       ita != a.series.end(); ++ita, ++itb) {
    if (ita->first != itb->first) return false;
    const auto& sa = ita->second;
    const auto& sb = itb->second;
    if (sa.size() != sb.size()) return false;
    for (std::size_t i = 0; i < sa.size(); ++i) {
      if (sa[i].count() != sb[i].count() || sa[i].mean() != sb[i].mean() ||
          sa[i].variance() != sb[i].variance() || sa[i].min() != sb[i].min() ||
          sa[i].max() != sb[i].max()) {
        return false;
      }
    }
  }
  return true;
}

namespace {

/// One (workload family, crash scenario) cell of the sweep cross product.
/// The family is shared across the scenario cells of one workload spec
/// (generate is const and thread-safe), so specs are parsed — and trace
/// files loaded — once per workload, not once per cell.
struct SweepCell {
  std::shared_ptr<const WorkloadFamily> family;
  CrashTimeLaw law;
  std::string workload_label;
  std::string scenario_label;
};

}  // namespace

SweepResult run_sweep(const FigureConfig& config) {
  SweepResult result;
  result.granularities = config.granularities;

  // Resolve the (workload × scenario) cells.  An empty workload list means
  // the paper §6 family configured by config.workload — the figure
  // reproductions' exact generator, bypassing spec parsing.
  std::vector<SweepCell> cells;
  const std::vector<std::string> workload_specs =
      config.workloads.empty() ? std::vector<std::string>{std::string()}
                               : config.workloads;
  const std::vector<std::string> scenario_specs =
      config.scenarios.empty() ? std::vector<std::string>{"t0"}
                               : config.scenarios;
  // Duplicate labels would silently aggregate two cells into one series;
  // reject them up front.
  std::set<std::string> seen_cells;
  for (const std::string& wspec : workload_specs) {
    const std::shared_ptr<const WorkloadFamily> family =
        wspec.empty() ? make_paper_family(config.workload)
                      : make_workload_family(wspec);
    for (const std::string& sspec : scenario_specs) {
      const std::string label = (wspec.empty() ? "paper" : wspec) + "|" + sspec;
      FTSCHED_REQUIRE(seen_cells.insert(label).second,
                      "duplicate sweep cell (workload|scenario): " + label);
      SweepCell cell;
      cell.family = family;
      cell.law = CrashTimeLaw::parse(sspec);
      cell.workload_label = wspec.empty() ? "paper" : wspec;
      cell.scenario_label = sspec;
      cells.push_back(std::move(cell));
    }
  }
  result.workloads = workload_specs;
  if (config.workloads.empty()) result.workloads = {"paper"};
  result.scenarios = scenario_specs;

  const std::size_t points = config.granularities.size();
  const std::size_t reps = config.graphs_per_point;
  const std::size_t per_cell = points * reps;
  const std::size_t instances = cells.size() * per_cell;
  if (instances == 0) return result;

  // One RNG stream per (workload family, granularity, repetition), keyed
  // off the root seed via Rng::derive: every stream is reproducible in
  // isolation from (seed, coordinates) alone — no serial split chain — so
  // any subset of the grid can be recomputed independently (sharded
  // sweeps), and the result is bit-identical for every thread count.
  // Scenario cells of the same family deliberately share the key: each
  // scenario faces the same instances and crash victims (paired
  // comparison), extending the "every curve faces the same failures"
  // contract of evaluate_instance to the scenario dimension.
  const std::size_t scenario_count = scenario_specs.size();
  const Rng root(config.seed);

  InstanceOptions base_options;
  base_options.epsilon = config.epsilon;
  base_options.extra_crash_counts = config.extra_crash_counts;

  std::vector<SeriesSample> samples(instances);
  ParallelExecutor executor(config.threads);
  executor.for_each(instances, [&](std::size_t idx) {
    const std::size_t ci = idx / per_cell;
    const std::size_t gi = (idx % per_cell) / reps;
    const std::size_t rep = idx % reps;
    const std::size_t wi = ci / scenario_count;
    Rng instance_rng =
        root.derive(static_cast<std::uint64_t>((wi * points + gi) * reps + rep));
    const SweepPoint point{config.granularities[gi], config.proc_count};
    const auto workload = cells[ci].family->generate(instance_rng, point);
    InstanceOptions options = base_options;
    options.crash_law = cells[ci].law;
    options.seed = instance_rng();
    samples[idx] = evaluate_instance(*workload, instance_rng, options);
  });

  // Serial aggregation in (cell, granularity, repetition) order:
  // OnlineStats accumulation order — and with it every rounding — is fixed.
  for (std::size_t idx = 0; idx < instances; ++idx) {
    const std::size_t ci = idx / per_cell;
    const std::size_t gi = (idx % per_cell) / reps;
    for (const auto& [name, value] : samples[idx]) {
      auto& stats = result.series[sweep_series_name(
          result, name, cells[ci].workload_label, cells[ci].scenario_label)];
      if (stats.size() != points) {
        stats.resize(points);
      }
      stats[gi].add(value);
    }
  }
  return result;
}

}  // namespace ftsched
