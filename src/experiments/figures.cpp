#include "ftsched/experiments/figures.hpp"

#include <limits>
#include <ostream>
#include <string>
#include <vector>

#include "ftsched/core/scheduler.hpp"
#include "ftsched/experiments/sweep_plan.hpp"
#include "ftsched/util/ascii_chart.hpp"
#include "ftsched/util/error.hpp"
#include "ftsched/util/table.hpp"
#include "ftsched/util/timer.hpp"

namespace ftsched {

namespace {

/// Prints one block: rows = granularities, columns = the chosen series,
/// followed by the CSV rendition and an ASCII chart of the same data.
void print_block(std::ostream& os, const char* title,
                 const SweepResult& sweep,
                 const std::vector<std::string>& series_names) {
  os << title << '\n';
  std::vector<std::string> header{"granularity"};
  for (const auto& name : series_names) header.push_back(name);
  TextTable table(std::move(header));
  static constexpr char kMarkers[] = "*o+x#@%&";
  std::vector<ChartSeries> chart_series;
  for (std::size_t si = 0; si < series_names.size(); ++si) {
    const auto it = sweep.series.find(series_names[si]);
    FTSCHED_REQUIRE(it != sweep.series.end(),
                    "missing series: " + series_names[si]);
    ChartSeries cs;
    cs.name = series_names[si];
    cs.marker = kMarkers[si % (sizeof(kMarkers) - 1)];
    for (const OnlineStats& stats : it->second) cs.y.push_back(stats.mean());
    chart_series.push_back(std::move(cs));
  }
  for (std::size_t gi = 0; gi < sweep.granularities.size(); ++gi) {
    std::vector<double> row;
    row.reserve(series_names.size());
    for (const ChartSeries& cs : chart_series) row.push_back(cs.y[gi]);
    table.add_numeric_row(format_double(sweep.granularities[gi], 1), row);
  }
  table.print(os);
  os << "csv:\n" << table.csv() << '\n';
  if (sweep.granularities.size() > 1) {
    os << render_chart(sweep.granularities, chart_series) << '\n';
  }
}

}  // namespace

void print_figure(std::ostream& os, const FigureConfig& config,
                  const SweepResult& sweep) {
  const std::string eps = std::to_string(config.epsilon);
  os << "=== Figure " << config.figure << " (epsilon=" << eps
     << ", m=" << config.proc_count << ", graphs/point="
     << config.graphs_per_point << ", seed=" << config.seed << ") ===\n\n";

  if (config.figure != 4) {
    print_block(os,
                "--- (a) normalized latency: schedule bounds vs granularity ---",
                sweep,
                {"FTSA-LowerBound", "FTSA-UpperBound", "FTBAR-LowerBound",
                 "FTBAR-UpperBound", "MC-FTSA-LowerBound",
                 "MC-FTSA-UpperBound", "FaultFree-FTSA", "FaultFree-FTBAR"});
  }

  std::vector<std::string> crash_series;
  crash_series.push_back("FTSA-" + eps + "Crash");
  if (config.figure != 4) {
    crash_series.push_back("MC-FTSA-" + eps + "Crash");
    crash_series.push_back("FTBAR-" + eps + "Crash");
  }
  for (std::size_t k : config.extra_crash_counts) {
    crash_series.push_back("FTSA-" + std::to_string(k) + "Crash");
  }
  crash_series.push_back("FTSA-0Crash");
  crash_series.push_back("FaultFree-FTSA");
  print_block(
      os, "--- (b) normalized latency: simulated execution with crashes ---",
      sweep, crash_series);

  std::vector<std::string> overhead_series;
  for (const auto& name : crash_series) {
    if (name == "FaultFree-FTSA") continue;
    overhead_series.push_back("OH-" + name);
  }
  print_block(os, "--- (c) average overhead (%) ---", sweep, overhead_series);
}

void run_figure(std::ostream& os, int figure) {
  // The plan/execute path explicitly: identical to run_sweep(config), and
  // the SweepPlan is where a sharded reproduction would fork off.
  const FigureConfig config = figure_config(figure);
  const SweepPlan plan(config);
  OnlineStatsSink sink(plan);
  run_plan(plan, sink);
  print_figure(os, config, sink.take());
}

std::string sweep_to_csv(const SweepResult& sweep) {
  std::vector<std::string> header{"granularity"};
  for (const auto& [name, stats] : sweep.series) header.push_back(name);
  TextTable table(std::move(header));
  for (std::size_t gi = 0; gi < sweep.granularities.size(); ++gi) {
    std::vector<double> row;
    row.reserve(sweep.series.size());
    for (const auto& [name, stats] : sweep.series) {
      row.push_back(stats[gi].mean());
    }
    table.add_numeric_row(format_double(sweep.granularities[gi], 2), row);
  }
  return table.csv();
}

std::unique_ptr<Workload> make_table1_workload(Rng& row_rng, std::size_t tasks,
                                               const Table1Config& config) {
  PaperWorkloadParams params;
  params.task_min = params.task_max = tasks;
  params.proc_count = config.proc_count;
  params.granularity = 1.0;
  return make_paper_workload(row_rng, params);
}

void run_table1(std::ostream& os, const Table1Config& config) {
  os << "=== Table 1: running times in seconds (m=" << config.proc_count
     << ", epsilon=" << config.epsilon << ", reps=" << config.repetitions
     << ") ===\n";
  TextTable table({"tasks", "FTSA", "MC-FTSA", "FTBAR"});
  // The timed contenders, resolved once through the registry.  FTBAR is
  // O(P·N³); it is skipped above the configured task limit.
  const std::string eps_opt = ":eps=" + std::to_string(config.epsilon);
  struct Contender {
    SchedulerPtr scheduler;
    std::size_t task_limit;
  };
  std::vector<Contender> contenders;
  contenders.push_back({make_scheduler("ftsa" + eps_opt),
                        std::numeric_limits<std::size_t>::max()});
  contenders.push_back({make_scheduler("mc-ftsa" + eps_opt),
                        std::numeric_limits<std::size_t>::max()});
  contenders.push_back(
      {make_scheduler("ftbar" + eps_opt), config.ftbar_task_limit});

  Rng root(config.seed);
  for (std::size_t v : config.task_counts) {
    Rng rng = root.split();
    const auto workload = make_table1_workload(rng, v, config);
    const CostModel& costs = workload->costs();

    std::vector<double> times(contenders.size(), 0.0);
    for (std::size_t rep = 0; rep < config.repetitions; ++rep) {
      for (std::size_t ci = 0; ci < contenders.size(); ++ci) {
        if (v > contenders[ci].task_limit) continue;
        Stopwatch sw;
        const auto s = contenders[ci].scheduler->run(costs);
        times[ci] += sw.seconds();
        (void)s;
      }
    }
    const double reps = static_cast<double>(config.repetitions);
    std::vector<std::string> row{std::to_string(v)};
    for (std::size_t ci = 0; ci < contenders.size(); ++ci) {
      row.push_back(v <= contenders[ci].task_limit
                        ? format_double(times[ci] / reps, 4)
                        : std::string("(skipped; set FTSCHED_FULL=1)"));
    }
    table.add_row(std::move(row));
  }
  table.print(os);
  os << "csv:\n" << table.csv();
}

}  // namespace ftsched
