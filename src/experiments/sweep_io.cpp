#include "ftsched/experiments/sweep_io.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <sstream>

#include "ftsched/util/error.hpp"
#include "ftsched/util/jsonl.hpp"
#include "ftsched/util/spec.hpp"

namespace ftsched {

namespace {

// The JSONL line grammar (FlatJsonObject / json_escape) lives in
// util/jsonl.hpp, shared with the coordinator service's wire protocol.

std::vector<std::string> split_semicolons(const std::string& text) {
  std::vector<std::string> out;
  if (text.empty()) return out;
  std::istringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ';')) out.push_back(item);
  return out;
}

template <typename T, typename Fn>
std::string join_mapped(const std::vector<T>& items, Fn&& render) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i) out += ";";
    out += render(items[i]);
  }
  return out;
}

std::size_t parse_size(const std::string& key, const std::string& value) {
  return static_cast<std::size_t>(spec_detail::parse_u64(key, value));
}

/// Exact rendition of every PaperWorkloadParams field the paper cell's
/// generator reads (proc count and granularity come from the sweep point,
/// which the header already captures).  Empty when the grid has no
/// paper-configured cell.
std::string render_paper_params(const FigureConfig& config) {
  if (!config.workloads.empty()) return {};
  const PaperWorkloadParams& p = config.workload;
  std::string out = std::to_string(p.task_min);
  out += "," + std::to_string(p.task_max);
  out += "," + std::to_string(p.avg_layer_width);
  out += "," + double_to_hex(p.volume_min);
  out += "," + double_to_hex(p.volume_max);
  out += "," + double_to_hex(p.delay_min);
  out += "," + double_to_hex(p.delay_max);
  out += "," + double_to_hex(p.exec.base_min);
  out += "," + double_to_hex(p.exec.base_max);
  out += "," + double_to_hex(p.exec.spread);
  out += "," + std::to_string(static_cast<int>(p.exec.heterogeneity));
  return out;
}

}  // namespace

std::string ShardHeader::fingerprint() const {
  // The one renderer of the grid identity; SweepPlan::fingerprint()
  // delegates here through shard_header().
  std::string fp = "v1 seed=" + std::to_string(seed);
  fp += " eps=" + std::to_string(epsilon);
  fp += " m=" + std::to_string(procs);
  fp += " reps=" + std::to_string(reps);
  fp += " extra=" + join_mapped(extra_crash_counts, [](std::size_t k) {
          return std::to_string(k);
        });
  fp += " granularities=" +
        join_mapped(granularities, [](double g) { return double_to_hex(g); });
  fp += " workloads=" +
        join_mapped(workloads, [](const std::string& w) { return w; });
  fp += " scenarios=" +
        join_mapped(scenarios, [](const std::string& s) { return s; });
  fp += " failures=" +
        join_mapped(failures, [](const std::string& f) { return f; });
  fp += " policies=" +
        join_mapped(policies, [](const std::string& p) { return p; });
  fp += " paper=" + paper_params;
  return fp;
}

std::string SweepPlan::fingerprint() const {
  // Defined here rather than in sweep_plan.cpp so the grid identity has a
  // single renderer: the one merge_shards compares headers with.
  return shard_header(*this).fingerprint();
}

ShardHeader shard_header(const SweepPlan& plan) {
  ShardHeader h;
  h.seed = plan.config().seed;
  h.epsilon = plan.config().epsilon;
  h.procs = plan.config().proc_count;
  h.reps = plan.repetitions();
  h.extra_crash_counts = plan.config().extra_crash_counts;
  h.granularities = plan.granularities();
  h.workloads = plan.workloads();
  h.scenarios = plan.scenarios();
  h.failures = plan.failures();
  h.policies = plan.policies();
  h.paper_params = render_paper_params(plan.config());
  h.grid = plan.grid_size();
  h.selected = plan.size();
  h.shard = plan.shard_label();
  return h;
}

std::string render_shard_header(const SweepPlan& plan) {
  const ShardHeader h = shard_header(plan);
  std::string out = "{\"ftsched_sweep_shard\":1";
  out += ",\"seed\":\"" + std::to_string(h.seed) + "\"";
  out += ",\"epsilon\":\"" + std::to_string(h.epsilon) + "\"";
  out += ",\"m\":\"" + std::to_string(h.procs) + "\"";
  out += ",\"reps\":\"" + std::to_string(h.reps) + "\"";
  out += ",\"extra\":\"" +
         join_mapped(h.extra_crash_counts,
                     [](std::size_t k) { return std::to_string(k); }) +
         "\"";
  out += ",\"granularities\":\"" +
         join_mapped(h.granularities,
                     [](double g) { return double_to_hex(g); }) +
         "\"";
  out += ",\"workloads\":\"" +
         json_escape(join_mapped(h.workloads,
                                 [](const std::string& w) { return w; })) +
         "\"";
  out += ",\"scenarios\":\"" +
         json_escape(join_mapped(h.scenarios,
                                 [](const std::string& s) { return s; })) +
         "\"";
  out += ",\"failures\":\"" +
         json_escape(join_mapped(h.failures,
                                 [](const std::string& f) { return f; })) +
         "\"";
  out += ",\"policies\":\"" +
         json_escape(join_mapped(h.policies,
                                 [](const std::string& p) { return p; })) +
         "\"";
  out += ",\"paper\":\"" + json_escape(h.paper_params) + "\"";
  out += ",\"grid\":\"" + std::to_string(h.grid) + "\"";
  out += ",\"selected\":\"" + std::to_string(h.selected) + "\"";
  out += ",\"shard\":\"" + json_escape(h.shard) + "\"}\n";
  return out;
}

void append_sample_records(std::string& out, const SweepPlan& plan,
                           const InstanceCoord& coord,
                           const SeriesSample& sample) {
  for (const auto& [name, value] : sample) {
    const OnlineStats stats = OnlineStats::of(value);
    out += "{\"id\":\"" + std::to_string(coord.id) + "\"";
    out += ",\"w\":\"" + std::to_string(coord.workload) + "\"";
    out += ",\"s\":\"" + std::to_string(coord.scenario) + "\"";
    out += ",\"f\":\"" + std::to_string(coord.failure) + "\"";
    out += ",\"pol\":\"" + std::to_string(coord.policy) + "\"";
    out += ",\"g\":\"" + std::to_string(coord.gran) + "\"";
    out += ",\"r\":\"" + std::to_string(coord.rep) + "\"";
    out += ",\"series\":\"" +
           json_escape(plan.series_label(coord, name)) + "\"";
    out += ",\"n\":\"" + std::to_string(stats.count()) + "\"";
    out += ",\"mean\":\"" + double_to_hex(stats.mean()) + "\"";
    out += ",\"m2\":\"" + double_to_hex(stats.m2()) + "\"";
    out += ",\"min\":\"" + double_to_hex(stats.min()) + "\"";
    out += ",\"max\":\"" + double_to_hex(stats.max()) + "\"}\n";
  }
}

ShardRecord shard_record_from(const FlatJsonObject& object,
                              const std::string& where) {
  ShardRecord record;
  record.coord.id = spec_detail::parse_u64("id", object.field("id", where));
  record.coord.workload = parse_size("w", object.field("w", where));
  record.coord.scenario = parse_size("s", object.field("s", where));
  record.coord.failure = parse_size("f", object.field_or("f", "0"));
  record.coord.policy = parse_size("pol", object.field_or("pol", "0"));
  record.coord.gran = parse_size("g", object.field("g", where));
  record.coord.rep = parse_size("r", object.field("r", where));
  record.series = object.field("series", where);
  record.stats = OnlineStats::from_parts(
      parse_size("n", object.field("n", where)),
      hex_to_double(object.field("mean", where)),
      hex_to_double(object.field("m2", where)),
      hex_to_double(object.field("min", where)),
      hex_to_double(object.field("max", where)));
  return record;
}

ShardRecord parse_shard_record(const std::string& line,
                               const std::string& where) {
  FlatJsonObject object;
  object.parse(line, where);
  return shard_record_from(object, where);
}

bool undecorate_series(const SweepPlan& plan, const InstanceCoord& coord,
                       std::string& series) {
  // The cell suffix is a pure suffix ("series[w|s|f]"), and
  // series_label(coord, "") renders exactly it (empty for single-cell
  // grids), so stripping is exact — no guessing at '[' characters that may
  // legitimately appear in series names.
  const std::string suffix = plan.series_label(coord, "");
  if (suffix.empty()) return true;
  if (series.size() < suffix.size() ||
      series.compare(series.size() - suffix.size(), suffix.size(), suffix) !=
          0) {
    return false;
  }
  series.resize(series.size() - suffix.size());
  return true;
}

ShardWriterSink::ShardWriterSink(std::ostream& os, const SweepPlan& plan)
    : os_(&os), plan_(&plan) {
  *os_ << render_shard_header(plan);
}

void ShardWriterSink::on_sample(const InstanceCoord& coord,
                                const SeriesSample& sample) {
  buffer_.clear();
  append_sample_records(buffer_, *plan_, coord, sample);
  *os_ << buffer_;
  ++samples_;
}

ShardFile read_shard(std::istream& in, const std::string& name) {
  ShardFile shard;
  // Per-line scratch, allocated once: getline reuses `line`'s capacity,
  // `object` reuses its field strings, and `where` its buffer.
  std::string line;
  std::string where;
  FlatJsonObject object;
  std::size_t line_no = 0;
  bool have_header = false;
  while (std::getline(in, line)) {
    ++line_no;
    // Shard files that travelled through a Windows checkout or an editor
    // arrive with CRLF endings; the protocol is the JSON object per line,
    // so a trailing '\r' is transport noise, not content.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    where.assign(name);
    where += ':';
    where += std::to_string(line_no);
    object.parse(line, where);
    if (!have_header) {
      FTSCHED_REQUIRE(object.find("ftsched_sweep_shard") != nullptr,
                      where + ": not a ftsched sweep shard file");
      FTSCHED_REQUIRE(object.field("ftsched_sweep_shard", where) == "1",
                      where + ": unsupported shard protocol version");
      ShardHeader& h = shard.header;
      h.seed = spec_detail::parse_u64("seed", object.field("seed", where));
      h.epsilon = parse_size("epsilon", object.field("epsilon", where));
      h.procs = parse_size("m", object.field("m", where));
      h.reps = parse_size("reps", object.field("reps", where));
      for (const std::string& k :
           split_semicolons(object.field("extra", where))) {
        h.extra_crash_counts.push_back(parse_size("extra", k));
      }
      for (const std::string& g :
           split_semicolons(object.field("granularities", where))) {
        h.granularities.push_back(hex_to_double(g));
      }
      h.workloads = split_semicolons(object.field("workloads", where));
      h.scenarios = split_semicolons(object.field("scenarios", where));
      // Pre-failure-dimension shards carry the implicit single eps cell,
      // pre-policy-dimension shards the implicit single none cell.
      h.failures = split_semicolons(object.field_or("failures", "eps"));
      h.policies = split_semicolons(object.field_or("policies", "none"));
      h.paper_params = object.field("paper", where);
      h.grid = spec_detail::parse_u64("grid", object.field("grid", where));
      h.selected =
          spec_detail::parse_u64("selected", object.field("selected", where));
      h.shard = object.field("shard", where);
      have_header = true;
      continue;
    }
    shard.records.push_back(shard_record_from(object, where));
  }
  FTSCHED_REQUIRE(have_header, name + ": empty shard file (missing header)");
  return shard;
}

ShardFile read_shard_file(const std::string& path) {
  std::ifstream in(path);
  FTSCHED_REQUIRE(in.good(), "cannot open shard file: " + path);
  return read_shard(in, path);
}

SweepResult merge_shards(const std::vector<ShardFile>& shards) {
  FTSCHED_REQUIRE(!shards.empty(), "merge_shards: no shard files");

  const ShardHeader& head = shards.front().header;
  const std::string fp = head.fingerprint();
  for (const ShardFile& s : shards) {
    const std::string other = s.header.fingerprint();
    FTSCHED_REQUIRE(other == fp,
                    "merge_shards: shard plan mismatch\n  first: " + fp +
                        "\n  other: " + other);
  }

  SweepResult result;
  result.granularities = head.granularities;
  result.workloads = head.workloads;
  result.scenarios = head.scenarios;
  result.failures = head.failures;
  result.policies = head.policies;
  const std::size_t points = result.granularities.size();
  const std::size_t scenarios = head.scenarios.size();
  const std::size_t failures = head.failures.size();
  const std::size_t policies = head.policies.size();
  const std::size_t reps = head.reps;
  FTSCHED_REQUIRE(failures > 0,
                  "merge_shards: header declares no failure-model cells");
  FTSCHED_REQUIRE(policies > 0,
                  "merge_shards: header declares no policy cells");

  // The header's grid count is redundant with its fingerprint-checked
  // dimensions; cross-check it instead of trusting it (a mangled count
  // must fail loudly, not size the owner vector below).
  const std::uint64_t expected_grid =
      static_cast<std::uint64_t>(head.workloads.size()) * scenarios *
      failures * policies * points * reps;
  FTSCHED_REQUIRE(head.grid == expected_grid,
                  "merge_shards: header grid count " +
                      std::to_string(head.grid) +
                      " inconsistent with its dimensions (" +
                      std::to_string(expected_grid) + " instances)");

  // Overlap/coverage bookkeeping: every full-grid instance must be owned
  // by exactly one shard (each instance emits at least its FaultFree
  // reference series, so record coverage equals instance coverage).
  std::vector<int> owner(static_cast<std::size_t>(head.grid), -1);
  std::vector<const ShardRecord*> records;
  std::size_t total_records = 0;
  for (const ShardFile& s : shards) total_records += s.records.size();
  records.reserve(total_records);
  for (std::size_t si = 0; si < shards.size(); ++si) {
    for (const ShardRecord& r : shards[si].records) {
      FTSCHED_REQUIRE(r.coord.id < head.grid,
                      "merge_shards: record instance id " +
                          std::to_string(r.coord.id) +
                          " outside the grid of " + std::to_string(head.grid));
      // The record's w/s/g/r fields are redundant with its id; aggregating
      // by an inconsistent (corrupted) coordinate would silently land
      // samples on the wrong granularity point, so verify the decomposition.
      const std::uint64_t per_cell =
          static_cast<std::uint64_t>(points) * reps;
      const std::uint64_t ci = r.coord.id / per_cell;
      FTSCHED_REQUIRE(
          r.coord.workload == ci / (scenarios * failures * policies) &&
              r.coord.scenario ==
                  (ci / (failures * policies)) % scenarios &&
              r.coord.failure == (ci / policies) % failures &&
              r.coord.policy == ci % policies &&
              r.coord.gran == (r.coord.id % per_cell) / reps &&
              r.coord.rep == r.coord.id % reps,
          "merge_shards: record coordinates of instance " +
              std::to_string(r.coord.id) +
              " disagree with its id (corrupted shard file?)");
      int& own = owner[static_cast<std::size_t>(r.coord.id)];
      if (own == -1) {
        own = static_cast<int>(si);
      } else {
        FTSCHED_REQUIRE(own == static_cast<int>(si),
                        "merge_shards: overlapping shards — instance " +
                            std::to_string(r.coord.id) +
                            " appears in two shard files");
      }
      records.push_back(&r);
    }
  }
  std::size_t missing = 0;
  std::uint64_t first_missing = 0;
  for (std::size_t id = 0; id < owner.size(); ++id) {
    if (owner[id] == -1) {
      if (missing == 0) first_missing = id;
      ++missing;
    }
  }
  FTSCHED_REQUIRE(missing == 0,
                  "merge_shards: incomplete partition — " +
                      std::to_string(missing) + " of " +
                      std::to_string(head.grid) +
                      " instances missing (first: id " +
                      std::to_string(first_missing) + ")");

  // Canonical coordinate order: ascending full-grid id, exactly the serial
  // aggregation order of the unsharded sweep.  With single-sample records
  // and add() == merge(of(x)), the result below is bit-identical to
  // run_sweep whatever the partition was.
  std::stable_sort(records.begin(), records.end(),
                   [](const ShardRecord* a, const ShardRecord* b) {
                     return a->coord.id < b->coord.id;
                   });
  for (const ShardRecord* r : records) {
    auto& stats = result.series[r->series];
    if (stats.size() != points) {
      stats.resize(points);
    }
    stats[r->coord.gran].merge(r->stats);
  }
  return result;
}

SweepResult merge_shard_files(const std::vector<std::string>& paths) {
  std::vector<ShardFile> shards;
  shards.reserve(paths.size());
  for (const std::string& path : paths) {
    shards.push_back(read_shard_file(path));
  }
  return merge_shards(shards);
}

}  // namespace ftsched
