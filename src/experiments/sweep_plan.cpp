#include "ftsched/experiments/sweep_plan.hpp"

#include <set>
#include <utility>

#include "ftsched/util/error.hpp"
#include "ftsched/util/parallel.hpp"
#include "ftsched/util/stats.hpp"

namespace ftsched {

SweepPlan::SweepPlan(const FigureConfig& config)
    : config_(config), root_(config.seed) {
  // Resolve the (workload × scenario) cells.  An empty workload list means
  // the paper §6 family configured by config.workload — the figure
  // reproductions' exact generator, bypassing spec parsing.  The family is
  // shared across the scenario cells of one workload spec (generate is
  // const and thread-safe), so specs are parsed — and trace files loaded —
  // once per workload, not once per cell.
  const std::vector<std::string> workload_specs =
      config.workloads.empty() ? std::vector<std::string>{std::string()}
                               : config.workloads;
  const std::vector<std::string> scenario_specs =
      config.scenarios.empty() ? std::vector<std::string>{"t0"}
                               : config.scenarios;
  const std::vector<std::string> failure_specs =
      config.failure_models.empty() ? std::vector<std::string>{"eps"}
                                    : config.failure_models;
  // Parse the failure models once (shared across every workload/scenario).
  std::vector<FailureModel> models;
  models.reserve(failure_specs.size());
  for (const std::string& fspec : failure_specs) {
    models.push_back(FailureModel::parse(fspec));
  }
  // Duplicate labels would silently aggregate two cells into one series;
  // reject them up front.
  std::set<std::string> seen_cells;
  for (const std::string& wspec : workload_specs) {
    const std::shared_ptr<const WorkloadFamily> family =
        wspec.empty() ? make_paper_family(config.workload)
                      : make_workload_family(wspec);
    const std::string wlabel = wspec.empty() ? "paper" : wspec;
    for (const std::string& sspec : scenario_specs) {
      const CrashTimeLaw law = CrashTimeLaw::parse(sspec);
      for (std::size_t fi = 0; fi < failure_specs.size(); ++fi) {
        const std::string label =
            wlabel + "|" + sspec + "|" + failure_specs[fi];
        FTSCHED_REQUIRE(
            seen_cells.insert(label).second,
            "duplicate sweep cell (workload|scenario|failure): " + label);
        cells_.push_back(Cell{family, law, models[fi]});
      }
    }
    workload_labels_.push_back(wlabel);
  }
  scenario_labels_ = scenario_specs;
  failure_labels_ = failure_specs;

  selected_.reserve(grid_size());
  for (std::uint64_t id = 0; id < grid_size(); ++id) selected_.push_back(id);
}

std::uint64_t SweepPlan::grid_size() const noexcept {
  return static_cast<std::uint64_t>(cells_.size()) *
         config_.granularities.size() * config_.graphs_per_point;
}

InstanceCoord SweepPlan::coord(std::size_t k) const {
  FTSCHED_REQUIRE(k < selected_.size(), "instance index out of range");
  return coord_of_id(selected_[k]);
}

InstanceCoord SweepPlan::coord_of_id(std::uint64_t id) const {
  FTSCHED_REQUIRE(id < grid_size(), "instance id out of range");
  const std::uint64_t points = config_.granularities.size();
  const std::uint64_t reps = config_.graphs_per_point;
  const std::uint64_t scenarios = scenario_labels_.size();
  const std::uint64_t failures = failure_labels_.size();
  const std::uint64_t per_cell = points * reps;
  const std::uint64_t ci = id / per_cell;
  InstanceCoord c;
  c.workload = static_cast<std::size_t>(ci / (scenarios * failures));
  c.scenario = static_cast<std::size_t>((ci / failures) % scenarios);
  c.failure = static_cast<std::size_t>(ci % failures);
  c.gran = static_cast<std::size_t>((id % per_cell) / reps);
  c.rep = static_cast<std::size_t>(id % reps);
  c.id = id;
  return c;
}

SweepPlan SweepPlan::shard(std::size_t index, std::size_t count) const {
  FTSCHED_REQUIRE(count > 0, "shard count must be positive");
  FTSCHED_REQUIRE(index < count, "shard index " + std::to_string(index) +
                                     " out of range for " +
                                     std::to_string(count) + " shards");
  SweepPlan out = *this;
  out.selected_.clear();
  for (std::size_t k = index; k < selected_.size(); k += count) {
    out.selected_.push_back(selected_[k]);
  }
  const std::string step =
      std::to_string(index) + "/" + std::to_string(count);
  out.shard_label_ = shard_label_ == "full" ? step : shard_label_ + "," + step;
  return out;
}

std::string SweepPlan::series_label(const InstanceCoord& coord,
                                    const std::string& series) const {
  return decorate_series_name(
      series, workload_labels_[coord.workload],
      scenario_labels_[coord.scenario],
      workload_labels_.size() * scenario_labels_.size() *
              failure_labels_.size() >
          1,
      failure_labels_[coord.failure], failure_labels_.size() > 1);
}

// SweepPlan::fingerprint() is defined in sweep_io.cpp as the fingerprint
// of the plan's shard header, so the grid identity has exactly one
// renderer on both the write and the merge side.

SeriesSample SweepPlan::evaluate(const InstanceCoord& coord) const {
  // One RNG stream per (workload family, granularity, repetition), keyed
  // off the root seed via Rng::derive: every stream is reproducible in
  // isolation from (seed, coordinates) alone — no serial split chain — so
  // any subset of the grid can be recomputed independently, and results
  // never depend on thread count or shard layout.  Scenario and failure
  // cells of the same family deliberately share the key: each cell faces
  // the same instances (and, for cells whose count/victim laws draw the
  // same way, the same crash victims — paired comparison), extending the
  // "every curve faces the same failures" contract of evaluate_instance to
  // the scenario and failure dimensions.
  const std::size_t points = config_.granularities.size();
  const std::size_t reps = config_.graphs_per_point;
  Rng rng = root_.derive(static_cast<std::uint64_t>(
      (coord.workload * points + coord.gran) * reps + coord.rep));
  const Cell& cell =
      cells_[(coord.workload * scenario_labels_.size() + coord.scenario) *
                 failure_labels_.size() +
             coord.failure];
  const SweepPoint point{config_.granularities[coord.gran],
                         config_.proc_count};
  const auto workload = cell.family->generate(rng, point);
  InstanceOptions options;
  options.epsilon = config_.epsilon;
  options.extra_crash_counts = config_.extra_crash_counts;
  options.crash_law = cell.law;
  options.failure_model = cell.model;
  options.seed = rng();
  return evaluate_instance(*workload, rng, options);
}

void run_plan(const SweepPlan& plan, SweepSink& sink) {
  const std::size_t n = plan.size();
  if (n == 0) return;
  // Parallel evaluation into per-instance slots, then ordered delivery:
  // sinks observe exactly the serial coordinate order whatever the thread
  // count, so aggregation rounding is pinned.
  std::vector<SeriesSample> samples(n);
  ParallelExecutor executor(plan.config().threads);
  executor.for_each(
      n, [&](std::size_t k) { samples[k] = plan.evaluate(plan.coord(k)); });
  for (std::size_t k = 0; k < n; ++k) {
    sink.on_sample(plan.coord(k), samples[k]);
  }
}

OnlineStatsSink::OnlineStatsSink(const SweepPlan& plan) : plan_(&plan) {
  result_.granularities = plan.granularities();
  result_.workloads = plan.workloads();
  result_.scenarios = plan.scenarios();
  result_.failures = plan.failures();
}

void OnlineStatsSink::on_sample(const InstanceCoord& coord,
                                const SeriesSample& sample) {
  const std::size_t points = result_.granularities.size();
  for (const auto& [name, value] : sample) {
    auto& stats = result_.series[plan_->series_label(coord, name)];
    if (stats.size() != points) {
      stats.resize(points);
    }
    stats[coord.gran].add(value);
  }
}

SweepResult OnlineStatsSink::take() { return std::move(result_); }

}  // namespace ftsched
