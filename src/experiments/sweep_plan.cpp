#include "ftsched/experiments/sweep_plan.hpp"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <set>
#include <unordered_map>
#include <utility>

#include "ftsched/core/reschedule.hpp"
#include "ftsched/util/error.hpp"
#include "ftsched/util/parallel.hpp"
#include "ftsched/util/stats.hpp"

namespace ftsched {

SweepPlan::SweepPlan(const FigureConfig& config)
    : config_(config), root_(config.seed) {
  // Resolve the (workload × scenario) cells.  An empty workload list means
  // the paper §6 family configured by config.workload — the figure
  // reproductions' exact generator, bypassing spec parsing.  The family is
  // shared across the scenario cells of one workload spec (generate is
  // const and thread-safe), so specs are parsed — and trace files loaded —
  // once per workload, not once per cell.
  const std::vector<std::string> workload_specs =
      config.workloads.empty() ? std::vector<std::string>{std::string()}
                               : config.workloads;
  const std::vector<std::string> scenario_specs =
      config.scenarios.empty() ? std::vector<std::string>{"t0"}
                               : config.scenarios;
  const std::vector<std::string> failure_specs =
      config.failure_models.empty() ? std::vector<std::string>{"eps"}
                                    : config.failure_models;
  // Parse the failure models once (shared across every workload/scenario),
  // validating each against the grid's platform width up front — a repair/
  // burst domain wider than the machine would otherwise silently collapse
  // into one whole-platform mega-domain.
  std::vector<FailureModel> models;
  models.reserve(failure_specs.size());
  for (const std::string& fspec : failure_specs) {
    models.push_back(FailureModel::parse(fspec));
    models.back().validate(config.proc_count);
  }
  // The policy dimension: parsed once up front so a bad spec fails at plan
  // construction, not mid-sweep on a worker.  Policies are per-run mutable
  // (prepare/begin_run state), so the plan stores only the labels and the
  // evaluate paths instantiate fresh ones.
  const std::vector<std::string> policy_specs =
      config.policies.empty() ? std::vector<std::string>{"none"}
                              : config.policies;
  std::set<std::string> seen_policies;
  for (const std::string& pspec : policy_specs) {
    (void)make_reschedule_policy(pspec);
    FTSCHED_REQUIRE(seen_policies.insert(pspec).second,
                    "duplicate sweep policy: " + pspec);
  }
  // Duplicate labels would silently aggregate two cells into one series;
  // reject them up front.
  std::set<std::string> seen_cells;
  for (const std::string& wspec : workload_specs) {
    const std::shared_ptr<const WorkloadFamily> family =
        wspec.empty() ? make_paper_family(config.workload)
                      : make_workload_family(wspec);
    const std::string wlabel = wspec.empty() ? "paper" : wspec;
    for (const std::string& sspec : scenario_specs) {
      const CrashTimeLaw law = CrashTimeLaw::parse(sspec);
      for (std::size_t fi = 0; fi < failure_specs.size(); ++fi) {
        const std::string label =
            wlabel + "|" + sspec + "|" + failure_specs[fi];
        FTSCHED_REQUIRE(
            seen_cells.insert(label).second,
            "duplicate sweep cell (workload|scenario|failure): " + label);
        cells_.push_back(Cell{family, law, models[fi]});
      }
    }
    workload_labels_.push_back(wlabel);
  }
  scenario_labels_ = scenario_specs;
  failure_labels_ = failure_specs;
  policy_labels_ = policy_specs;

  selected_.reserve(grid_size());
  for (std::uint64_t id = 0; id < grid_size(); ++id) selected_.push_back(id);
}

std::uint64_t SweepPlan::grid_size() const noexcept {
  return static_cast<std::uint64_t>(cells_.size()) * policy_labels_.size() *
         config_.granularities.size() * config_.graphs_per_point;
}

InstanceCoord SweepPlan::coord(std::size_t k) const {
  FTSCHED_REQUIRE(k < selected_.size(), "instance index out of range");
  return coord_of_id(selected_[k]);
}

InstanceCoord SweepPlan::coord_of_id(std::uint64_t id) const {
  FTSCHED_REQUIRE(id < grid_size(), "instance id out of range");
  const std::uint64_t points = config_.granularities.size();
  const std::uint64_t reps = config_.graphs_per_point;
  const std::uint64_t scenarios = scenario_labels_.size();
  const std::uint64_t failures = failure_labels_.size();
  const std::uint64_t policies = policy_labels_.size();
  const std::uint64_t per_cell = points * reps;
  const std::uint64_t ci = id / per_cell;
  InstanceCoord c;
  c.workload = static_cast<std::size_t>(ci / (scenarios * failures * policies));
  c.scenario =
      static_cast<std::size_t>((ci / (failures * policies)) % scenarios);
  c.failure = static_cast<std::size_t>((ci / policies) % failures);
  c.policy = static_cast<std::size_t>(ci % policies);
  c.gran = static_cast<std::size_t>((id % per_cell) / reps);
  c.rep = static_cast<std::size_t>(id % reps);
  c.id = id;
  return c;
}

SweepPlan SweepPlan::shard(std::size_t index, std::size_t count) const {
  FTSCHED_REQUIRE(count > 0, "shard count must be positive");
  FTSCHED_REQUIRE(index < count, "shard index " + std::to_string(index) +
                                     " out of range for " +
                                     std::to_string(count) + " shards");
  SweepPlan out = *this;
  out.selected_.clear();
  for (std::size_t k = index; k < selected_.size(); k += count) {
    out.selected_.push_back(selected_[k]);
  }
  const std::string step =
      std::to_string(index) + "/" + std::to_string(count);
  out.shard_label_ = shard_label_ == "full" ? step : shard_label_ + "," + step;
  return out;
}

std::string SweepPlan::series_label(const InstanceCoord& coord,
                                    const std::string& series) const {
  return decorate_series_name(
      series, workload_labels_[coord.workload],
      scenario_labels_[coord.scenario],
      workload_labels_.size() * scenario_labels_.size() *
              failure_labels_.size() * policy_labels_.size() >
          1,
      failure_labels_[coord.failure], failure_labels_.size() > 1,
      policy_labels_[coord.policy], policy_labels_.size() > 1);
}

// SweepPlan::fingerprint() is defined in sweep_io.cpp as the fingerprint
// of the plan's shard header, so the grid identity has exactly one
// renderer on both the write and the merge side.

std::uint64_t SweepPlan::base_key(const InstanceCoord& coord) const noexcept {
  const std::uint64_t points = config_.granularities.size();
  const std::uint64_t reps = config_.graphs_per_point;
  return (coord.workload * points + coord.gran) * reps + coord.rep;
}

const SweepPlan::Cell& SweepPlan::cell(const InstanceCoord& coord) const {
  return cells_[(coord.workload * scenario_labels_.size() + coord.scenario) *
                    failure_labels_.size() +
                coord.failure];
}

SeriesSample SweepPlan::evaluate(const InstanceCoord& coord) const {
  // One RNG stream per (workload family, granularity, repetition), keyed
  // off the root seed via Rng::derive: every stream is reproducible in
  // isolation from (seed, coordinates) alone — no serial split chain — so
  // any subset of the grid can be recomputed independently, and results
  // never depend on thread count or shard layout.  Scenario and failure
  // cells of the same family deliberately share the key: each cell faces
  // the same instances (and, for cells whose count/victim laws draw the
  // same way, the same crash victims — paired comparison), extending the
  // "every curve faces the same failures" contract of evaluate_instance to
  // the scenario and failure dimensions.
  Rng rng = root_.derive(base_key(coord));
  const Cell& c = cell(coord);
  const SweepPoint point{config_.granularities[coord.gran],
                         config_.proc_count};
  const auto workload = c.family->generate(rng, point);
  InstanceOptions options;
  options.epsilon = config_.epsilon;
  options.extra_crash_counts = config_.extra_crash_counts;
  options.crash_law = c.law;
  options.failure_model = c.model;
  options.seed = rng();
  const ReschedulePolicyPtr policy =
      make_reschedule_policy(policy_labels_[coord.policy]);
  if (policy->is_noop()) {
    // `none` IS the legacy path — not a reimplementation of it — so the
    // degenerate policy cell stays byte-identical to the pre-policy sweep
    // by construction (streams, series, event ordering, everything).
    return evaluate_instance(*workload, rng, options);
  }
  const InstanceSchedules schedules =
      build_instance_schedules(*workload, options);
  const CellDraw draw = draw_instance_cell(schedules, rng, c.law, c.model);
  return simulate_online_cell(schedules, draw, *policy);
}

std::vector<std::vector<std::size_t>> SweepPlan::group_selection() const {
  std::vector<std::vector<std::size_t>> groups;
  std::unordered_map<std::uint64_t, std::size_t> group_of_key;
  group_of_key.reserve(selected_.size());
  for (std::size_t k = 0; k < selected_.size(); ++k) {
    const std::uint64_t key = base_key(coord_of_id(selected_[k]));
    const auto [it, fresh] = group_of_key.try_emplace(key, groups.size());
    if (fresh) groups.emplace_back();
    groups[it->second].push_back(k);
  }
  return groups;
}

std::vector<SeriesSample> SweepPlan::evaluate_group(
    const std::vector<std::size_t>& members,
    SimulationCache::Stats* stats) const {
  FTSCHED_REQUIRE(!members.empty(), "evaluate_group needs a non-empty group");
  const InstanceCoord first = coord(members.front());
  const std::uint64_t key = base_key(first);

  // Exactly the stream of evaluate(): derive, generate, draw the scheduler
  // seed — then snapshot.  The schedule phase consumes nothing from `rng`,
  // so each cell's victim/crash-instant draws start from the same state the
  // per-coordinate path would have given them.
  Rng rng = root_.derive(key);
  const SweepPoint point{config_.granularities[first.gran],
                         config_.proc_count};
  const auto workload = cell(first).family->generate(rng, point);
  InstanceOptions options;
  options.epsilon = config_.epsilon;
  options.extra_crash_counts = config_.extra_crash_counts;
  options.seed = rng();
  const InstanceSchedules schedules =
      build_instance_schedules(*workload, options);

  // One cache across the group's cells: identical (victims, instants)
  // draws — shared k = 0 scenarios, coinciding model draws — run the event
  // simulation once and fan the cached Summary out to every requester.
  SimulationCache sim_cache;
  std::vector<SeriesSample> out;
  out.reserve(members.size());
  for (const std::size_t k : members) {
    const InstanceCoord c = coord(k);
    FTSCHED_REQUIRE(base_key(c) == key,
                    "evaluate_group members must share one (workload, "
                    "granularity, repetition) base key");
    Rng cell_rng = rng;  // per-cell snapshot of the shared stream
    const CellDraw draw =
        draw_instance_cell(schedules, cell_rng, cell(c).law, cell(c).model);
    // Policy cells of one (scenario, failure) pair see the *same* draw
    // (the snapshot above plus the policy-independent draw stream), so the
    // static and reactive samples are paired run for run.  `none` keeps
    // the exact legacy static replay; online runs bypass the cache (their
    // outcome depends on the policy, not just the draw).
    const ReschedulePolicyPtr policy =
        make_reschedule_policy(policy_labels_[c.policy]);
    out.push_back(policy->is_noop()
                      ? simulate_drawn_cell(schedules, draw, &sim_cache)
                      : simulate_online_cell(schedules, draw, *policy));
  }
  if (stats != nullptr) {
    stats->simulations += sim_cache.stats().simulations;
    stats->hits += sim_cache.stats().hits;
  }
  return out;
}

void run_plan(const SweepPlan& plan, SweepSink& sink,
              const RunPlanOptions& options) {
  const std::size_t n = plan.size();
  if (n == 0) return;

  // One job per base-key group (schedule-once/simulate-many) or per
  // coordinate (legacy reference path).  Either way, jobs are ordered by
  // their first selected index and delivery is strictly in selected order,
  // so sinks observe exactly the serial coordinate order whatever the
  // thread count — aggregation rounding is pinned.
  std::vector<std::vector<std::size_t>> jobs;
  if (options.group) {
    jobs = plan.group_selection();
  } else {
    jobs.reserve(n);
    for (std::size_t k = 0; k < n; ++k) {
      jobs.push_back(std::vector<std::size_t>{k});
    }
  }
  const std::size_t job_count = jobs.size();

  // slot_of[k] = (job, position within the job) producing selected index k.
  std::vector<std::pair<std::size_t, std::size_t>> slot_of(n);
  for (std::size_t j = 0; j < job_count; ++j) {
    for (std::size_t p = 0; p < jobs[j].size(); ++p) {
      slot_of[jobs[j][p]] = {j, p};
    }
  }

  ParallelExecutor executor(options.threads.value_or(plan.config().threads));
  const std::size_t window = std::max<std::size_t>(
      options.window != 0 ? options.window
                          : std::max<std::size_t>(16, 4 * executor.thread_count()),
      1);

  // Shared state (all under `mutex`).  state: 0 = pending, 1 = done,
  // 2 = failed.  done_prefix counts the leading jobs no longer pending;
  // delivered counts the leading selected indices already handed to the
  // sink.  Completed samples are retained only until their delivery slot
  // comes up (then freed), so a large single-cell shard streams through a
  // bounded window instead of materialising everything; multi-cell grids
  // retain each group's later-cell samples until the id order reaches
  // them, which is still never more than the old all-n materialisation.
  std::mutex mutex;
  std::condition_variable window_cv;
  std::vector<std::vector<SeriesSample>> results(job_count);
  std::vector<char> state(job_count, 0);
  std::size_t done_prefix = 0;
  std::size_t delivered = 0;
  bool delivering = false;
  bool delivery_failed = false;

  executor.for_each(job_count, [&](std::size_t j) {
    {
      // Bounded reordering window: don't run ahead of the slowest
      // outstanding job by more than `window` jobs.  The job at the
      // window's base always satisfies the predicate, so this cannot
      // deadlock for any window >= 1.
      std::unique_lock<std::mutex> lock(mutex);
      window_cv.wait(lock, [&] { return j < done_prefix + window; });
    }
    std::vector<SeriesSample> samples;
    SimulationCache::Stats job_stats;
    try {
      samples = options.group
                    ? plan.evaluate_group(jobs[j], &job_stats)
                    : std::vector<SeriesSample>{
                          plan.evaluate(plan.coord(jobs[j].front()))};
    } catch (...) {
      // Record the failure before rethrowing so workers gated on the
      // window can't wait forever on a prefix that will never complete;
      // the executor propagates the exception to run_plan's caller.
      const std::lock_guard<std::mutex> lock(mutex);
      state[j] = 2;
      while (done_prefix < job_count && state[done_prefix] != 0) ++done_prefix;
      window_cv.notify_all();
      throw;
    }
    std::unique_lock<std::mutex> lock(mutex);
    results[j] = std::move(samples);
    state[j] = 1;
    if (options.stats != nullptr) {
      options.stats->simulations_run += job_stats.simulations;
      options.stats->dedupe_hits += job_stats.hits;
    }
    while (done_prefix < job_count && state[done_prefix] != 0) ++done_prefix;
    window_cv.notify_all();
    // Deliver the order-prefix that just became complete.  One deliverer
    // at a time (`delivering` flag) keeps the sink serial in selected
    // order, but the sink itself runs with the mutex *released* so a slow
    // sink (file I/O) never stalls the worker pool; the state re-check
    // after re-locking picks up jobs that completed meanwhile, so nothing
    // is stranded when the deliverer steps down.
    if (delivering || delivery_failed) return;
    delivering = true;
    while (delivered < n && !delivery_failed) {
      const auto [dj, dp] = slot_of[delivered];
      if (state[dj] != 1) break;
      SeriesSample sample = std::move(results[dj][dp]);
      results[dj][dp] = SeriesSample();  // free the delivered sample
      const std::size_t k = delivered;
      lock.unlock();
      try {
        sink.on_sample(plan.coord(k), sample);
      } catch (...) {
        // A sink failure must not be retried by the next deliverer (the
        // sink would observe a duplicate delivery).
        const std::lock_guard<std::mutex> relock(mutex);
        delivering = false;
        delivery_failed = true;
        throw;
      }
      lock.lock();
      ++delivered;
    }
    delivering = false;
  });
  FTSCHED_REQUIRE(delivered == n,
                  "run_plan did not deliver every selected instance");
}

OnlineStatsSink::OnlineStatsSink(const SweepPlan& plan)
    : plan_(&plan),
      label_cache_(plan.workloads().size() * plan.scenarios().size() *
                   plan.failures().size() * plan.policies().size()) {
  result_.granularities = plan.granularities();
  result_.workloads = plan.workloads();
  result_.scenarios = plan.scenarios();
  result_.failures = plan.failures();
  result_.policies = plan.policies();
}

void OnlineStatsSink::on_sample(const InstanceCoord& coord,
                                const SeriesSample& sample) {
  const std::size_t points = result_.granularities.size();
  auto& cache =
      label_cache_[((coord.workload * result_.scenarios.size() + coord.scenario) *
                        result_.failures.size() +
                    coord.failure) *
                       result_.policies.size() +
                   coord.policy];
  for (const auto& [name, value] : sample) {
    auto it = cache.find(name);
    if (it == cache.end()) {
      auto& stats = result_.series[plan_->series_label(coord, name)];
      if (stats.size() != points) {
        stats.resize(points);
      }
      it = cache.emplace(name, &stats).first;
    }
    (*it->second)[coord.gran].add(value);
  }
}

SweepResult OnlineStatsSink::take() {
  label_cache_.clear();  // the cached pointers die with the moved-out result
  return std::move(result_);
}

}  // namespace ftsched
