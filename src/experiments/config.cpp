#include "ftsched/experiments/config.hpp"

#include <limits>

#include "ftsched/util/cli.hpp"
#include "ftsched/util/error.hpp"

namespace ftsched {

FigureConfig figure_config(int figure) {
  FigureConfig config;
  config.figure = figure;
  switch (figure) {
    case 1:
      config.epsilon = 1;
      break;
    case 2:
      config.epsilon = 2;
      config.extra_crash_counts = {1};
      break;
    case 3:
      config.epsilon = 5;
      config.extra_crash_counts = {2};
      break;
    case 4:
      config.epsilon = 2;
      config.proc_count = 5;
      config.extra_crash_counts = {1};
      break;
    default:
      throw InvalidArgument("figure must be 1..4");
  }
  for (int i = 1; i <= 10; ++i) {
    config.granularities.push_back(0.2 * i);
  }
  config.graphs_per_point = static_cast<std::size_t>(
      env_int("FTSCHED_GRAPHS", static_cast<std::int64_t>(60)));
  config.seed =
      static_cast<std::uint64_t>(env_int("FTSCHED_SEED", 42));
  config.threads = static_cast<std::size_t>(env_int("FTSCHED_THREADS", 0));
  config.workload.proc_count = config.proc_count;
  return config;
}

Table1Config table1_config() {
  Table1Config config;
  config.seed = static_cast<std::uint64_t>(env_int("FTSCHED_SEED", 42));
  config.repetitions = static_cast<std::size_t>(env_int("FTSCHED_REPS", 3));
  if (env_int("FTSCHED_FULL", 0) != 0) {
    config.ftbar_task_limit = std::numeric_limits<std::size_t>::max();
  }
  return config;
}

}  // namespace ftsched
