#include "ftsched/dag/graph.hpp"

#include <algorithm>

#include "ftsched/util/error.hpp"

namespace ftsched {

void TaskGraph::check_task(TaskId t, const char* what) const {
  FTSCHED_REQUIRE(t.valid() && t.index() < labels_.size(),
                  std::string("unknown task id in ") + what);
}

TaskId TaskGraph::add_task(std::string label) {
  const TaskId id{labels_.size()};
  if (label.empty()) label = "t" + std::to_string(id.value());
  labels_.push_back(std::move(label));
  in_.emplace_back();
  out_.emplace_back();
  return id;
}

void TaskGraph::add_edge(TaskId src, TaskId dst, double volume) {
  check_task(src, "add_edge(src)");
  check_task(dst, "add_edge(dst)");
  FTSCHED_REQUIRE(src != dst, "self-loop edges are not allowed");
  FTSCHED_REQUIRE(volume >= 0.0, "edge volume must be non-negative");
  FTSCHED_REQUIRE(!has_edge(src, dst), "duplicate edge");
  const std::size_t e = edges_.size();
  edges_.push_back(Edge{src, dst, volume});
  out_[src.index()].push_back(e);
  in_[dst.index()].push_back(e);
}

const std::string& TaskGraph::label(TaskId t) const {
  check_task(t, "label");
  return labels_[t.index()];
}

std::span<const std::size_t> TaskGraph::in_edges(TaskId t) const {
  check_task(t, "in_edges");
  return in_[t.index()];
}

std::span<const std::size_t> TaskGraph::out_edges(TaskId t) const {
  check_task(t, "out_edges");
  return out_[t.index()];
}

bool TaskGraph::has_edge(TaskId src, TaskId dst) const noexcept {
  if (!src.valid() || src.index() >= out_.size()) return false;
  for (std::size_t e : out_[src.index()]) {
    if (edges_[e].dst == dst) return true;
  }
  return false;
}

double TaskGraph::volume(TaskId src, TaskId dst) const {
  check_task(src, "volume(src)");
  check_task(dst, "volume(dst)");
  for (std::size_t e : out_[src.index()]) {
    if (edges_[e].dst == dst) return edges_[e].volume;
  }
  throw InvalidArgument("volume: edge does not exist");
}

std::vector<TaskId> TaskGraph::entry_tasks() const {
  std::vector<TaskId> result;
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    if (in_[i].empty()) result.emplace_back(i);
  }
  return result;
}

std::vector<TaskId> TaskGraph::exit_tasks() const {
  std::vector<TaskId> result;
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    if (out_[i].empty()) result.emplace_back(i);
  }
  return result;
}

std::vector<TaskId> TaskGraph::tasks() const {
  std::vector<TaskId> result;
  result.reserve(labels_.size());
  for (std::size_t i = 0; i < labels_.size(); ++i) result.emplace_back(i);
  return result;
}

std::vector<TaskId> TaskGraph::topological_order() const {
  std::vector<std::size_t> indegree(labels_.size());
  for (std::size_t i = 0; i < labels_.size(); ++i) indegree[i] = in_[i].size();
  std::vector<TaskId> order;
  order.reserve(labels_.size());
  std::vector<TaskId> frontier = entry_tasks();
  while (!frontier.empty()) {
    const TaskId t = frontier.back();
    frontier.pop_back();
    order.push_back(t);
    for (std::size_t e : out_[t.index()]) {
      const TaskId s = edges_[e].dst;
      if (--indegree[s.index()] == 0) frontier.push_back(s);
    }
  }
  FTSCHED_REQUIRE(order.size() == labels_.size(),
                  "graph contains a cycle; not a DAG");
  return order;
}

bool TaskGraph::is_acyclic() const {
  try {
    (void)topological_order();
    return true;
  } catch (const InvalidArgument&) {
    return false;
  }
}

double TaskGraph::total_volume() const noexcept {
  double sum = 0.0;
  for (const Edge& e : edges_) sum += e.volume;
  return sum;
}

}  // namespace ftsched
