#include "ftsched/dag/analysis.hpp"

#include <algorithm>

#include "ftsched/util/error.hpp"

namespace ftsched {

std::vector<std::size_t> depths(const TaskGraph& g) {
  std::vector<std::size_t> depth(g.task_count(), 0);
  for (TaskId t : g.topological_order()) {
    for (std::size_t e : g.out_edges(t)) {
      const TaskId s = g.edge(e).dst;
      depth[s.index()] = std::max(depth[s.index()], depth[t.index()] + 1);
    }
  }
  return depth;
}

std::vector<std::vector<TaskId>> layers(const TaskGraph& g) {
  const auto depth = depths(g);
  std::size_t max_depth = 0;
  for (std::size_t d : depth) max_depth = std::max(max_depth, d);
  std::vector<std::vector<TaskId>> result(g.empty() ? 0 : max_depth + 1);
  for (std::size_t i = 0; i < depth.size(); ++i)
    result[depth[i]].emplace_back(i);
  return result;
}

std::size_t layer_width(const TaskGraph& g) {
  std::size_t w = 0;
  for (const auto& layer : layers(g)) w = std::max(w, layer.size());
  return w;
}

std::vector<char> transitive_closure(const TaskGraph& g) {
  const std::size_t v = g.task_count();
  std::vector<char> closure(v * v, 0);
  const auto order = g.topological_order();
  // Process in reverse topological order: reach(i) = union of successors.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const std::size_t i = it->index();
    for (std::size_t e : g.out_edges(*it)) {
      const std::size_t j = g.edge(e).dst.index();
      closure[i * v + j] = 1;
      for (std::size_t k = 0; k < v; ++k) {
        if (closure[j * v + k]) closure[i * v + k] = 1;
      }
    }
  }
  return closure;
}

namespace {
// Kuhn's augmenting-path matching on the comparability bipartite graph.
// Used only by exact_width; the scheduler's Hopcroft–Karp lives in core.
bool try_kuhn(std::size_t u, const std::vector<char>& closure, std::size_t v,
              std::vector<int>& match_right, std::vector<char>& used) {
  for (std::size_t w = 0; w < v; ++w) {
    if (!closure[u * v + w] || used[w]) continue;
    used[w] = 1;
    if (match_right[w] < 0 ||
        try_kuhn(static_cast<std::size_t>(match_right[w]), closure, v,
                 match_right, used)) {
      match_right[w] = static_cast<int>(u);
      return true;
    }
  }
  return false;
}
}  // namespace

std::size_t exact_width(const TaskGraph& g) {
  const std::size_t v = g.task_count();
  if (v == 0) return 0;
  // Dilworth: max antichain = v − max matching in the bipartite graph whose
  // edges are the comparable pairs (i precedes j in the transitive closure).
  const auto closure = transitive_closure(g);
  std::vector<int> match_right(v, -1);
  std::size_t matched = 0;
  for (std::size_t u = 0; u < v; ++u) {
    std::vector<char> used(v, 0);
    if (try_kuhn(u, closure, v, match_right, used)) ++matched;
  }
  return v - matched;
}

double longest_path(const TaskGraph& g, const std::vector<double>& node_cost,
                    const std::vector<double>& edge_cost) {
  FTSCHED_REQUIRE(node_cost.size() == g.task_count(),
                  "node_cost size mismatch");
  FTSCHED_REQUIRE(edge_cost.size() == g.edge_count(),
                  "edge_cost size mismatch");
  std::vector<double> finish(g.task_count(), 0.0);
  double best = 0.0;
  for (TaskId t : g.topological_order()) {
    finish[t.index()] += node_cost[t.index()];
    best = std::max(best, finish[t.index()]);
    for (std::size_t e : g.out_edges(t)) {
      const std::size_t s = g.edge(e).dst.index();
      finish[s] = std::max(finish[s], finish[t.index()] + edge_cost[e]);
    }
  }
  return best;
}

std::size_t critical_path_hops(const TaskGraph& g) {
  if (g.empty()) return 0;
  const auto depth = depths(g);
  return 1 + *std::max_element(depth.begin(), depth.end());
}

}  // namespace ftsched
