#include "ftsched/dag/serialize.hpp"

#include <iomanip>
#include <sstream>

#include "ftsched/util/error.hpp"

namespace ftsched {

void write_graph(std::ostream& os, const TaskGraph& g) {
  os << "taskgraph " << (g.name().empty() ? "unnamed" : g.name()) << '\n';
  for (TaskId t : g.tasks()) {
    os << "task " << g.label(t) << '\n';
  }
  os << std::setprecision(17);
  for (const Edge& e : g.edges()) {
    os << "edge " << e.src.value() << ' ' << e.dst.value() << ' ' << e.volume
       << '\n';
  }
}

std::string graph_to_string(const TaskGraph& g) {
  std::ostringstream os;
  write_graph(os, g);
  return os.str();
}

TaskGraph read_graph(std::istream& is) {
  TaskGraph g;
  std::string line;
  bool saw_header = false;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    if (kind == "taskgraph") {
      std::string name;
      ls >> name;
      g.set_name(name);
      saw_header = true;
    } else if (kind == "task") {
      std::string label;
      ls >> label;
      (void)g.add_task(label);
    } else if (kind == "edge") {
      std::uint32_t src = 0;
      std::uint32_t dst = 0;
      double volume = 0.0;
      ls >> src >> dst >> volume;
      FTSCHED_REQUIRE(!ls.fail(), "malformed edge line " +
                                      std::to_string(line_no) + ": " + line);
      g.add_edge(TaskId{src}, TaskId{dst}, volume);
    } else {
      throw InvalidArgument("unknown directive '" + kind + "' on line " +
                            std::to_string(line_no));
    }
  }
  FTSCHED_REQUIRE(saw_header, "missing 'taskgraph <name>' header");
  return g;
}

TaskGraph graph_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_graph(is);
}

}  // namespace ftsched
