#include "ftsched/dag/dot.hpp"

#include <iomanip>
#include <sstream>

namespace ftsched {

std::string to_dot(const TaskGraph& g, const DotOptions& options) {
  std::ostringstream os;
  os << "digraph \"" << (g.name().empty() ? "taskgraph" : g.name())
     << "\" {\n";
  if (options.left_to_right) os << "  rankdir=LR;\n";
  os << "  node [shape=ellipse];\n";
  for (TaskId t : g.tasks()) {
    os << "  n" << t.value() << " [label=\"" << g.label(t) << "\"];\n";
  }
  os << std::fixed << std::setprecision(1);
  for (const Edge& e : g.edges()) {
    os << "  n" << e.src.value() << " -> n" << e.dst.value();
    if (options.show_volumes) os << " [label=\"" << e.volume << "\"]";
    os << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace ftsched
