#include "ftsched/metrics/reliability.hpp"

#include <algorithm>

#include "ftsched/platform/failure.hpp"
#include "ftsched/util/error.hpp"

namespace ftsched {

namespace {
void check_probs(std::size_t m, const std::vector<double>& fail_prob) {
  FTSCHED_REQUIRE(fail_prob.size() == m,
                  "need one failure probability per processor");
  for (double p : fail_prob) {
    FTSCHED_REQUIRE(p >= 0.0 && p <= 1.0, "probabilities must be in [0,1]");
  }
}
}  // namespace

double exact_reliability(const ReplicatedSchedule& schedule,
                         const std::vector<double>& fail_prob) {
  const std::size_t m = schedule.platform().proc_count();
  check_probs(m, fail_prob);
  FTSCHED_REQUIRE(m <= 20, "exact_reliability limited to 20 processors");
  double reliability = 0.0;
  for (std::size_t mask = 0; mask < (std::size_t{1} << m); ++mask) {
    double prob = 1.0;
    FailureScenario scenario;
    for (std::size_t p = 0; p < m; ++p) {
      if (mask & (std::size_t{1} << p)) {
        prob *= fail_prob[p];
        scenario.add(ProcId{p}, 0.0);
      } else {
        prob *= 1.0 - fail_prob[p];
      }
    }
    if (prob == 0.0) continue;
    if (simulate(schedule, scenario).success) reliability += prob;
  }
  return reliability;
}

ReliabilityEstimate monte_carlo_reliability(
    const ReplicatedSchedule& schedule, const std::vector<double>& fail_prob,
    Rng& rng, std::size_t samples) {
  const std::size_t m = schedule.platform().proc_count();
  check_probs(m, fail_prob);
  FTSCHED_REQUIRE(samples > 0, "need at least one sample");
  ReliabilityEstimate estimate;
  estimate.samples = samples;
  double latency_sum = 0.0;
  std::size_t successes = 0;
  for (std::size_t s = 0; s < samples; ++s) {
    FailureScenario scenario;
    for (std::size_t p = 0; p < m; ++p) {
      if (rng.bernoulli(fail_prob[p])) scenario.add(ProcId{p}, 0.0);
    }
    const SimulationResult result = simulate(schedule, scenario);
    if (result.success) {
      ++successes;
      latency_sum += result.latency;
    } else {
      ++estimate.failures;
    }
  }
  estimate.reliability =
      static_cast<double>(successes) / static_cast<double>(samples);
  estimate.mean_latency =
      successes > 0 ? latency_sum / static_cast<double>(successes) : 0.0;
  return estimate;
}

double theorem_reliability_bound(std::size_t proc_count, std::size_t epsilon,
                                 const std::vector<double>& fail_prob) {
  check_probs(proc_count, fail_prob);
  // dp[k] = probability of exactly k failures among processors seen so far.
  std::vector<double> dp(proc_count + 1, 0.0);
  dp[0] = 1.0;
  for (std::size_t p = 0; p < proc_count; ++p) {
    for (std::size_t k = p + 1; k-- > 0;) {
      dp[k + 1] += dp[k] * fail_prob[p];
      dp[k] *= 1.0 - fail_prob[p];
    }
  }
  double bound = 0.0;
  for (std::size_t k = 0; k <= epsilon && k <= proc_count; ++k) bound += dp[k];
  return bound;
}

std::vector<double> heterogeneous_fail_probs(std::size_t proc_count,
                                             double base, double spread) {
  FTSCHED_REQUIRE(base >= 0.0 && base <= 1.0,
                  "base failure probability must be in [0, 1]");
  FTSCHED_REQUIRE(spread >= 0.0, "spread must be non-negative");
  std::vector<double> probs(proc_count, base);
  if (proc_count <= 1) return probs;
  const double denom = static_cast<double>(proc_count - 1);
  for (std::size_t k = 0; k < proc_count; ++k) {
    const double gradient =
        static_cast<double>(proc_count - 1 - k) / denom;
    probs[k] = std::min(1.0, base * (1.0 + spread * gradient));
  }
  return probs;
}

}  // namespace ftsched
