#include "ftsched/metrics/metrics.hpp"

#include <algorithm>
#include <limits>

#include "ftsched/util/error.hpp"

namespace ftsched {

double overhead_percent(double latency, double fault_free_latency) {
  FTSCHED_REQUIRE(fault_free_latency > 0.0,
                  "fault-free latency must be positive");
  return (latency - fault_free_latency) / fault_free_latency * 100.0;
}

double normalized_latency(double latency, const CostModel& costs) {
  const double unit =
      costs.mean_avg_comm() > 0.0 ? costs.mean_avg_comm() : costs.mean_avg_exec();
  FTSCHED_REQUIRE(unit > 0.0, "cost model has nothing to normalize by");
  return latency / unit;
}

CommStats comm_stats(const ReplicatedSchedule& schedule) {
  CommStats stats;
  stats.channels = schedule.channel_count();
  stats.interproc_messages = schedule.interproc_message_count();
  const std::size_t e = schedule.graph().edge_count();
  const std::size_t n = schedule.replica_count();
  stats.ftsa_bound = e * n * n;
  stats.mc_bound = e * n;
  return stats;
}

UtilizationStats utilization(const ReplicatedSchedule& schedule) {
  const std::size_t m = schedule.platform().proc_count();
  const double makespan = schedule.lower_bound();
  UtilizationStats stats;
  if (makespan <= 0.0 || m == 0) return stats;
  stats.min = std::numeric_limits<double>::infinity();
  double total = 0.0;
  for (std::size_t p = 0; p < m; ++p) {
    double busy = 0.0;
    for (const PlacedReplica& r : schedule.timeline(ProcId{p})) {
      busy += r.finish - r.start;
    }
    const double u = busy / makespan;
    total += u;
    stats.min = std::min(stats.min, u);
    stats.max = std::max(stats.max, u);
  }
  stats.mean = total / static_cast<double>(m);
  return stats;
}

}  // namespace ftsched
