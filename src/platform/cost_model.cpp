#include "ftsched/platform/cost_model.hpp"

#include <algorithm>
#include <atomic>
#include <limits>

#include "ftsched/util/error.hpp"

namespace ftsched {

namespace {
/// Never-repeating revision source shared by every CostModel (cheap:
/// one relaxed fetch_add per construction / scale_exec, never per query).
std::uint64_t next_revision() noexcept {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace

CostModel::CostModel(const TaskGraph& graph, const Platform& platform,
                     std::vector<std::vector<double>> exec)
    : graph_(&graph), platform_(&platform), m_(platform.proc_count()) {
  const std::size_t v = graph.task_count();
  FTSCHED_REQUIRE(exec.size() == v, "exec matrix must have one row per task");
  exec_.reserve(v * m_);
  for (std::size_t t = 0; t < v; ++t) {
    FTSCHED_REQUIRE(exec[t].size() == m_,
                    "exec matrix must have one column per processor");
    for (std::size_t p = 0; p < m_; ++p) {
      FTSCHED_REQUIRE(exec[t][p] > 0.0, "execution times must be positive");
      exec_.push_back(exec[t][p]);
    }
  }
  recompute_aggregates();
}

void CostModel::recompute_aggregates() {
  const std::size_t v = graph_->task_count();
  avg_exec_.assign(v, 0.0);
  max_exec_.assign(v, 0.0);
  min_exec_.assign(v, std::numeric_limits<double>::infinity());
  double total = 0.0;
  for (std::size_t t = 0; t < v; ++t) {
    double sum = 0.0;
    for (std::size_t p = 0; p < m_; ++p) {
      const double e = exec_[t * m_ + p];
      sum += e;
      max_exec_[t] = std::max(max_exec_[t], e);
      min_exec_[t] = std::min(min_exec_[t], e);
    }
    avg_exec_[t] = sum / static_cast<double>(m_);
    total += avg_exec_[t];
  }
  mean_avg_exec_ = v > 0 ? total / static_cast<double>(v) : 0.0;
  revision_ = next_revision();
}

double CostModel::avg_exec_on(TaskId t,
                              const std::vector<ProcId>& procs) const {
  FTSCHED_REQUIRE(!procs.empty(), "avg_exec_on needs at least one processor");
  double sum = 0.0;
  for (ProcId p : procs) sum += exec(t, p);
  return sum / static_cast<double>(procs.size());
}

double CostModel::mean_avg_comm() const {
  const std::size_t e = graph_->edge_count();
  if (e == 0) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < e; ++i) sum += avg_comm(i);
  return sum / static_cast<double>(e);
}

double CostModel::granularity() const {
  double comp = 0.0;
  for (std::size_t t = 0; t < graph_->task_count(); ++t) comp += max_exec_[t];
  double commv = 0.0;
  const double worst_delay = platform_->max_delay();
  for (const Edge& e : graph_->edges()) commv += e.volume * worst_delay;
  if (commv <= 0.0) return std::numeric_limits<double>::infinity();
  return comp / commv;
}

void CostModel::scale_exec(double factor) {
  FTSCHED_REQUIRE(factor > 0.0, "scale factor must be positive");
  for (double& e : exec_) e *= factor;
  recompute_aggregates();
}

}  // namespace ftsched
