#include "ftsched/platform/generator.hpp"

#include "ftsched/util/error.hpp"

namespace ftsched {

Platform make_random_platform(Rng& rng, const PlatformParams& params) {
  FTSCHED_REQUIRE(params.proc_count > 0, "need at least one processor");
  FTSCHED_REQUIRE(params.delay_min >= 0.0 &&
                      params.delay_max >= params.delay_min,
                  "invalid delay range");
  const std::size_t m = params.proc_count;
  std::vector<std::vector<double>> d(m, std::vector<double>(m, 0.0));
  for (std::size_t k = 0; k < m; ++k) {
    for (std::size_t h = 0; h < m; ++h) {
      if (k == h) continue;
      d[k][h] = rng.uniform(params.delay_min, params.delay_max);
    }
  }
  return Platform(std::move(d));
}

std::vector<std::vector<double>> make_exec_costs(Rng& rng,
                                                 const TaskGraph& graph,
                                                 std::size_t proc_count,
                                                 const ExecCostParams& params) {
  FTSCHED_REQUIRE(params.base_min > 0.0 && params.base_max >= params.base_min,
                  "invalid base cost range");
  FTSCHED_REQUIRE(params.spread >= 0.0, "spread must be non-negative");
  const std::size_t v = graph.task_count();
  std::vector<std::vector<double>> exec(v, std::vector<double>(proc_count));

  std::vector<double> speed(proc_count, 1.0);
  if (params.heterogeneity == Heterogeneity::kConsistent) {
    for (double& s : speed) s = rng.uniform(1.0, 1.0 + params.spread);
  }

  for (std::size_t t = 0; t < v; ++t) {
    const double base = rng.uniform(params.base_min, params.base_max);
    for (std::size_t p = 0; p < proc_count; ++p) {
      switch (params.heterogeneity) {
        case Heterogeneity::kConsistent:
          exec[t][p] = base / speed[p];
          break;
        case Heterogeneity::kInconsistent:
          exec[t][p] = base * rng.uniform(1.0, 1.0 + params.spread);
          break;
      }
    }
  }
  return exec;
}

}  // namespace ftsched
