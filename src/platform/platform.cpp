#include "ftsched/platform/platform.hpp"

#include <algorithm>
#include <numeric>

#include "ftsched/util/error.hpp"

namespace ftsched {

Platform::Platform(std::size_t proc_count, double unit_delay) : m_(proc_count) {
  FTSCHED_REQUIRE(proc_count > 0, "platform needs at least one processor");
  FTSCHED_REQUIRE(unit_delay >= 0.0, "unit delay must be non-negative");
  delay_.assign(m_ * m_, unit_delay);
  for (std::size_t k = 0; k < m_; ++k) delay_[k * m_ + k] = 0.0;
  finalize();
}

Platform::Platform(std::vector<std::vector<double>> delay) {
  m_ = delay.size();
  FTSCHED_REQUIRE(m_ > 0, "platform needs at least one processor");
  delay_.reserve(m_ * m_);
  for (std::size_t k = 0; k < m_; ++k) {
    FTSCHED_REQUIRE(delay[k].size() == m_, "delay matrix must be square");
    for (std::size_t h = 0; h < m_; ++h) {
      const double d = delay[k][h];
      FTSCHED_REQUIRE(d >= 0.0, "delays must be non-negative");
      if (k == h) FTSCHED_REQUIRE(d == 0.0, "diagonal delays must be zero");
      delay_.push_back(d);
    }
  }
  finalize();
}

void Platform::finalize() {
  max_from_.assign(m_, 0.0);
  double sum = 0.0;
  max_delay_ = 0.0;
  for (std::size_t k = 0; k < m_; ++k) {
    for (std::size_t h = 0; h < m_; ++h) {
      const double d = delay_[k * m_ + h];
      max_from_[k] = std::max(max_from_[k], d);
      max_delay_ = std::max(max_delay_, d);
      if (k != h) sum += d;
    }
  }
  avg_delay_ = m_ > 1 ? sum / static_cast<double>(m_ * (m_ - 1)) : 0.0;
}

std::vector<ProcId> Platform::procs() const {
  std::vector<ProcId> result;
  result.reserve(m_);
  for (std::size_t k = 0; k < m_; ++k) result.emplace_back(k);
  return result;
}

double Platform::delay(ProcId from, ProcId to) const {
  FTSCHED_REQUIRE(from.index() < m_ && to.index() < m_,
                  "processor id out of range");
  return delay_[from.index() * m_ + to.index()];
}

double Platform::max_delay_from(ProcId from) const {
  FTSCHED_REQUIRE(from.index() < m_, "processor id out of range");
  return max_from_[from.index()];
}

std::vector<double> Platform::off_diagonal_delays() const {
  std::vector<double> result;
  result.reserve(m_ * (m_ - 1));
  for (std::size_t k = 0; k < m_; ++k) {
    for (std::size_t h = 0; h < m_; ++h) {
      if (k != h) result.push_back(delay_[k * m_ + h]);
    }
  }
  return result;
}

std::vector<ProcId> Platform::fastest_links(std::size_t count) const {
  FTSCHED_REQUIRE(count <= m_, "asked for more processors than the platform has");
  std::vector<double> avg_out(m_, 0.0);
  for (std::size_t k = 0; k < m_; ++k) {
    double sum = 0.0;
    for (std::size_t h = 0; h < m_; ++h) sum += delay_[k * m_ + h];
    avg_out[k] = m_ > 1 ? sum / static_cast<double>(m_ - 1) : 0.0;
  }
  std::vector<std::size_t> idx(m_);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::stable_sort(idx.begin(), idx.end(), [&avg_out](std::size_t a, std::size_t b) {
    return avg_out[a] < avg_out[b];
  });
  std::vector<ProcId> result;
  result.reserve(count);
  for (std::size_t i = 0; i < count; ++i) result.emplace_back(idx[i]);
  return result;
}

}  // namespace ftsched
