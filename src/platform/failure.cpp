#include "ftsched/platform/failure.hpp"

#include <iomanip>
#include <sstream>

#include "ftsched/util/error.hpp"
#include "ftsched/util/spec.hpp"

namespace ftsched {

FailureScenario::FailureScenario(std::vector<Crash> crashes) {
  for (const Crash& c : crashes) add(c.proc, c.time);
}

void FailureScenario::add(ProcId proc, double time) {
  FTSCHED_REQUIRE(proc.valid(), "invalid processor id");
  FTSCHED_REQUIRE(time >= 0.0, "crash time must be non-negative");
  FTSCHED_REQUIRE(!is_failed(proc), "processor already crashes in scenario");
  crashes_.push_back(Crash{proc, time});
}

double FailureScenario::crash_time(ProcId proc) const noexcept {
  for (const Crash& c : crashes_) {
    if (c.proc == proc) return c.time;
  }
  return std::numeric_limits<double>::infinity();
}

FailureScenario random_crashes(Rng& rng, std::size_t proc_count,
                               std::size_t count, double crash_time) {
  FTSCHED_REQUIRE(count <= proc_count,
                  "cannot crash more processors than exist");
  FailureScenario scenario;
  for (std::size_t idx : rng.sample_without_replacement(proc_count, count)) {
    scenario.add(ProcId{idx}, crash_time);
  }
  return scenario;
}

FailureScenario random_timed_crashes(Rng& rng, std::size_t proc_count,
                                     std::size_t count, double horizon) {
  FTSCHED_REQUIRE(count <= proc_count,
                  "cannot crash more processors than exist");
  FTSCHED_REQUIRE(horizon >= 0.0, "horizon must be non-negative");
  FailureScenario scenario;
  for (std::size_t idx : rng.sample_without_replacement(proc_count, count)) {
    scenario.add(ProcId{idx}, rng.uniform(0.0, horizon));
  }
  return scenario;
}

namespace {
void enumerate_subsets(std::size_t proc_count, std::size_t count,
                       std::size_t start, std::vector<std::size_t>& current,
                       std::vector<FailureScenario>& out) {
  if (current.size() == count) {
    FailureScenario scenario;
    for (std::size_t p : current) scenario.add(ProcId{p}, 0.0);
    out.push_back(std::move(scenario));
    return;
  }
  for (std::size_t p = start; p < proc_count; ++p) {
    current.push_back(p);
    enumerate_subsets(proc_count, count, p + 1, current, out);
    current.pop_back();
  }
}
}  // namespace

std::vector<FailureScenario> all_crash_subsets(std::size_t proc_count,
                                               std::size_t count) {
  FTSCHED_REQUIRE(count <= proc_count,
                  "cannot crash more processors than exist");
  std::vector<FailureScenario> result;
  std::vector<std::size_t> current;
  enumerate_subsets(proc_count, count, 0, current, result);
  return result;
}

// -------------------------------------------------------------- CrashTimeLaw

namespace {

/// Rejects option keys the law does not take (same loud contract as the
/// registries).
void require_only(const SpecOptions& options, const std::string& law,
                  const std::string& allowed) {
  for (const std::string& key : options.keys()) {
    if (key != allowed) {
      throw InvalidArgument("crash law '" + law +
                            "' does not accept option '" + key + "'" +
                            (allowed.empty() ? std::string(" (no options)")
                                             : " (supported: " + allowed + ")"));
    }
  }
}

}  // namespace

CrashTimeLaw CrashTimeLaw::parse(const std::string& spec) {
  std::string name;
  std::string option_text;
  split_spec_string(spec, name, option_text);
  const SpecOptions options = SpecOptions::parse(option_text);

  CrashTimeLaw law;
  if (name == "t0") {
    require_only(options, name, "");
    law.kind_ = Kind::kAtZero;
    law.param_ = 0.0;
  } else if (name == "frac") {
    require_only(options, name, "f");
    law.kind_ = Kind::kFraction;
    law.param_ = options.get_double("f", 0.5);
    FTSCHED_REQUIRE(law.param_ >= 0.0, "crash law frac: f must be >= 0");
  } else if (name == "uniform") {
    require_only(options, name, "hi");
    law.kind_ = Kind::kUniform;
    law.param_ = options.get_double("hi", 1.0);
    FTSCHED_REQUIRE(law.param_ >= 0.0, "crash law uniform: hi must be >= 0");
  } else if (name == "exp") {
    require_only(options, name, "mean");
    law.kind_ = Kind::kExponential;
    law.param_ = options.get_double("mean", 0.5);
    FTSCHED_REQUIRE(law.param_ > 0.0, "crash law exp: mean must be > 0");
  } else {
    throw InvalidArgument("unknown crash law '" + name + "' (known: " +
                          spec_detail::join(known(), "|") + ")");
  }
  return law;
}

std::string CrashTimeLaw::to_string() const {
  switch (kind_) {
    case Kind::kAtZero:
      return "t0";
    case Kind::kFraction:
      return "frac:f=" + spec_detail::render_double(param_);
    case Kind::kUniform:
      return "uniform:hi=" + spec_detail::render_double(param_);
    case Kind::kExponential:
      return "exp:mean=" + spec_detail::render_double(param_);
  }
  return "t0";
}

std::string CrashTimeLaw::describe() const {
  switch (kind_) {
    case Kind::kAtZero:
      return "crashes at t = 0 (paper's worst case)";
    case Kind::kFraction:
      return "all victims crash at " + spec_detail::render_double(param_) +
             " x the failure-free latency";
    case Kind::kUniform:
      return "victim crash times ~ U[0, " + spec_detail::render_double(param_) +
             " x the failure-free latency)";
    case Kind::kExponential:
      return "victim crash times ~ Exp(mean " + spec_detail::render_double(param_) +
             " x the failure-free latency)";
  }
  return "crashes at t = 0";
}

std::vector<double> CrashTimeLaw::sample(Rng& rng, std::size_t count) const {
  std::vector<double> times(count, 0.0);
  switch (kind_) {
    case Kind::kAtZero:
      break;  // no randomness consumed: legacy streams stay bit-identical
    case Kind::kFraction:
      for (double& t : times) t = param_;
      break;
    case Kind::kUniform:
      for (double& t : times) t = rng.uniform(0.0, param_);
      break;
    case Kind::kExponential:
      for (double& t : times) t = rng.exponential(1.0 / param_);
      break;
  }
  return times;
}

std::vector<std::string> CrashTimeLaw::known() {
  return {"t0", "frac", "uniform", "exp"};
}

}  // namespace ftsched
