#include "ftsched/platform/failure.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "ftsched/metrics/reliability.hpp"
#include "ftsched/util/error.hpp"
#include "ftsched/util/spec.hpp"

namespace ftsched {

FailureScenario::FailureScenario(std::vector<Crash> crashes) {
  for (const Crash& c : crashes) add(c.proc, c.time);
}

void FailureScenario::add(ProcId proc, double time) {
  FTSCHED_REQUIRE(proc.valid(), "invalid processor id");
  FTSCHED_REQUIRE(time >= 0.0, "crash time must be non-negative");
  FTSCHED_REQUIRE(!is_failed(proc), "processor already crashes in scenario");
  crashes_.push_back(Crash{proc, time});
}

double FailureScenario::crash_time(ProcId proc) const noexcept {
  for (const Crash& c : crashes_) {
    if (c.proc == proc) return c.time;
  }
  return std::numeric_limits<double>::infinity();
}

void FailureTimeline::add(ProcId proc, double crash_time, double repair_time) {
  FTSCHED_REQUIRE(proc.valid(), "invalid processor id");
  FTSCHED_REQUIRE(crash_time >= 0.0, "crash time must be non-negative");
  FTSCHED_REQUIRE(repair_time > crash_time,
                  "repair must come strictly after the crash");
  for (const ProcOutage& o : outages_) {
    FTSCHED_REQUIRE(o.proc != proc, "processor already crashes in timeline");
  }
  outages_.push_back(ProcOutage{proc, crash_time, repair_time});
}

bool FailureTimeline::has_repairs() const noexcept {
  for (const ProcOutage& o : outages_) {
    if (o.repair_time < std::numeric_limits<double>::infinity()) return true;
  }
  return false;
}

FailureTimeline FailureTimeline::from_scenario(
    const FailureScenario& scenario) {
  FailureTimeline timeline;
  for (const Crash& c : scenario.crashes()) timeline.add(c.proc, c.time);
  return timeline;
}

FailureScenario FailureTimeline::crashes_only() const {
  FailureScenario scenario;
  for (const ProcOutage& o : outages_) scenario.add(o.proc, o.crash_time);
  return scenario;
}

FailureScenario random_crashes(Rng& rng, std::size_t proc_count,
                               std::size_t count, double crash_time) {
  FTSCHED_REQUIRE(count <= proc_count,
                  "cannot crash more processors than exist");
  FailureScenario scenario;
  for (std::size_t idx : rng.sample_without_replacement(proc_count, count)) {
    scenario.add(ProcId{idx}, crash_time);
  }
  return scenario;
}

FailureScenario random_timed_crashes(Rng& rng, std::size_t proc_count,
                                     std::size_t count, double horizon) {
  FTSCHED_REQUIRE(count <= proc_count,
                  "cannot crash more processors than exist");
  FTSCHED_REQUIRE(horizon >= 0.0, "horizon must be non-negative");
  FailureScenario scenario;
  for (std::size_t idx : rng.sample_without_replacement(proc_count, count)) {
    scenario.add(ProcId{idx}, rng.uniform(0.0, horizon));
  }
  return scenario;
}

namespace {
void enumerate_subsets(std::size_t proc_count, std::size_t count,
                       std::size_t start, std::vector<std::size_t>& current,
                       std::vector<FailureScenario>& out) {
  if (current.size() == count) {
    FailureScenario scenario;
    for (std::size_t p : current) scenario.add(ProcId{p}, 0.0);
    out.push_back(std::move(scenario));
    return;
  }
  for (std::size_t p = start; p < proc_count; ++p) {
    current.push_back(p);
    enumerate_subsets(proc_count, count, p + 1, current, out);
    current.pop_back();
  }
}
}  // namespace

std::vector<FailureScenario> all_crash_subsets(std::size_t proc_count,
                                               std::size_t count) {
  FTSCHED_REQUIRE(count <= proc_count,
                  "cannot crash more processors than exist");
  std::vector<FailureScenario> result;
  std::vector<std::size_t> current;
  enumerate_subsets(proc_count, count, 0, current, result);
  return result;
}

// -------------------------------------------------------------- CrashTimeLaw

namespace {

/// Rejects option keys the law does not take (same loud contract as the
/// registries).
void require_keys(const SpecOptions& options, const char* kind,
                  const std::string& law,
                  const std::vector<std::string>& allowed) {
  for (const std::string& key : options.keys()) {
    if (std::find(allowed.begin(), allowed.end(), key) == allowed.end()) {
      throw InvalidArgument(
          std::string(kind) + " '" + law + "' does not accept option '" + key +
          "'" +
          (allowed.empty() ? std::string(" (no options)")
                           : " (supported: " + spec_detail::join(allowed, "|") +
                                 ")"));
    }
  }
}

void require_only(const SpecOptions& options, const std::string& law,
                  const std::string& allowed) {
  require_keys(options, "crash law", law,
               allowed.empty() ? std::vector<std::string>{}
                               : std::vector<std::string>{allowed});
}

/// Spec-style rejection of meaningless law parameters: NaN and infinities
/// never pass (every comparison with NaN is false), and the bound itself is
/// spelled out in the message — the same loud contract as unknown keys,
/// instead of degenerate draws (NaN crash times) downstream.
void require_param(bool ok, const char* kind, const std::string& law,
                   const char* key, const char* constraint, double value) {
  if (ok && std::isfinite(value)) return;
  throw InvalidArgument(std::string(kind) + " '" + law + "': option '" + key +
                        "' must be " + constraint + ", got '" +
                        spec_detail::render_double(value) + "'");
}

}  // namespace

CrashTimeLaw CrashTimeLaw::parse(const std::string& spec) {
  std::string name;
  std::string option_text;
  split_spec_string(spec, name, option_text);
  const SpecOptions options = SpecOptions::parse(option_text);

  CrashTimeLaw law;
  if (name == "t0") {
    require_only(options, name, "");
    law.kind_ = Kind::kAtZero;
    law.param_ = 0.0;
  } else if (name == "frac") {
    require_only(options, name, "f");
    law.kind_ = Kind::kFraction;
    law.param_ = options.get_double("f", 0.5);
    require_param(law.param_ >= 0.0, "crash law", name, "f", "a finite value >= 0",
                  law.param_);
  } else if (name == "uniform") {
    require_only(options, name, "hi");
    law.kind_ = Kind::kUniform;
    law.param_ = options.get_double("hi", 1.0);
    require_param(law.param_ >= 0.0, "crash law", name, "hi",
                  "a finite value >= 0", law.param_);
  } else if (name == "exp") {
    require_only(options, name, "mean");
    law.kind_ = Kind::kExponential;
    law.param_ = options.get_double("mean", 0.5);
    require_param(law.param_ > 0.0, "crash law", name, "mean",
                  "a finite value > 0", law.param_);
  } else {
    throw InvalidArgument("unknown crash law '" + name + "' (known: " +
                          spec_detail::join(known(), "|") + ")");
  }
  return law;
}

std::string CrashTimeLaw::to_string() const {
  switch (kind_) {
    case Kind::kAtZero:
      return "t0";
    case Kind::kFraction:
      return "frac:f=" + spec_detail::render_double(param_);
    case Kind::kUniform:
      return "uniform:hi=" + spec_detail::render_double(param_);
    case Kind::kExponential:
      return "exp:mean=" + spec_detail::render_double(param_);
  }
  return "t0";
}

std::string CrashTimeLaw::describe() const {
  switch (kind_) {
    case Kind::kAtZero:
      return "crashes at t = 0 (paper's worst case)";
    case Kind::kFraction:
      return "all victims crash at " + spec_detail::render_double(param_) +
             " x the failure-free latency";
    case Kind::kUniform:
      return "victim crash times ~ U[0, " + spec_detail::render_double(param_) +
             " x the failure-free latency)";
    case Kind::kExponential:
      return "victim crash times ~ Exp(mean " + spec_detail::render_double(param_) +
             " x the failure-free latency)";
  }
  return "crashes at t = 0";
}

std::vector<double> CrashTimeLaw::sample(Rng& rng, std::size_t count) const {
  std::vector<double> times(count, 0.0);
  switch (kind_) {
    case Kind::kAtZero:
      break;  // no randomness consumed: legacy streams stay bit-identical
    case Kind::kFraction:
      for (double& t : times) t = param_;
      break;
    case Kind::kUniform:
      for (double& t : times) t = rng.uniform(0.0, param_);
      break;
    case Kind::kExponential:
      for (double& t : times) t = rng.exponential(1.0 / param_);
      break;
  }
  return times;
}

std::vector<std::string> CrashTimeLaw::known() {
  return {"t0", "frac", "uniform", "exp"};
}

// -------------------------------------------------------------- FailureModel

namespace {

/// Parses the shared `domain=S` victim-law option (S >= 1; absent keeps the
/// uniform default).
void apply_domain_option(FailureModel::VictimKind& victims,
                         std::size_t& domain_size, const SpecOptions& options,
                         const std::string& name) {
  if (!options.has("domain")) return;
  const std::size_t size = options.get_size("domain", 0);
  if (size == 0) {
    throw InvalidArgument("failure model '" + name +
                          "': option 'domain' must be a domain size >= 1, "
                          "got '" +
                          options.get("domain") + "'");
  }
  victims = FailureModel::VictimKind::kDomain;
  domain_size = size;
}

}  // namespace

FailureModel FailureModel::parse(const std::string& spec) {
  std::string name;
  std::string option_text;
  split_spec_string(spec, name, option_text);
  const SpecOptions options = SpecOptions::parse(option_text);

  FailureModel model;
  if (name == "eps") {
    require_keys(options, "failure model", name, {"domain"});
    model.count_ = CountKind::kEpsilon;
    // "eps:domain=S" canonicalizes to the "domain:size=S" shorthand.
    apply_domain_option(model.victims_, model.domain_size_, options, name);
  } else if (name == "fixed") {
    require_keys(options, "failure model", name, {"k", "domain"});
    model.count_ = CountKind::kFixed;
    model.fixed_k_ = options.get_size("k", 1);
    apply_domain_option(model.victims_, model.domain_size_, options, name);
  } else if (name == "bernoulli") {
    require_keys(options, "failure model", name, {"p", "domain"});
    model.count_ = CountKind::kBernoulli;
    model.prob_ = options.get_double("p", 0.1);
    require_param(model.prob_ >= 0.0 && model.prob_ <= 1.0, "failure model",
                  name, "p", "a probability in [0, 1]", model.prob_);
    apply_domain_option(model.victims_, model.domain_size_, options, name);
  } else if (name == "repair") {
    // Transient bernoulli crashes: victims restart after Exp(mttr) delays.
    require_keys(options, "failure model", name, {"mttr", "p", "domain"});
    model.count_ = CountKind::kBernoulli;
    model.prob_ = options.get_double("p", 0.1);
    require_param(model.prob_ >= 0.0 && model.prob_ <= 1.0, "failure model",
                  name, "p", "a probability in [0, 1]", model.prob_);
    model.repair_mttr_ = options.get_double("mttr", 0.5);
    require_param(model.repair_mttr_ > 0.0, "failure model", name, "mttr",
                  "a finite value > 0", model.repair_mttr_);
    apply_domain_option(model.victims_, model.domain_size_, options, name);
  } else if (name == "burst") {
    // Time-correlated bernoulli burst: all victims crash within `width` of
    // a common onset; optional mttr adds repairs.
    require_keys(options, "failure model", name,
                 {"p", "width", "mttr", "domain"});
    model.count_ = CountKind::kBernoulli;
    model.prob_ = options.get_double("p", 0.1);
    require_param(model.prob_ >= 0.0 && model.prob_ <= 1.0, "failure model",
                  name, "p", "a probability in [0, 1]", model.prob_);
    model.burst_width_ = options.get_double("width", 0.25);
    require_param(model.burst_width_ > 0.0, "failure model", name, "width",
                  "a finite value > 0", model.burst_width_);
    if (options.has("mttr")) {
      model.repair_mttr_ = options.get_double("mttr", 0.5);
      require_param(model.repair_mttr_ > 0.0, "failure model", name, "mttr",
                    "a finite value > 0", model.repair_mttr_);
    }
    apply_domain_option(model.victims_, model.domain_size_, options, name);
  } else if (name == "hetero") {
    // Per-processor heterogeneous rates (metrics/reliability.hpp gradient).
    require_keys(options, "failure model", name, {"base", "spread", "mttr"});
    model.count_ = CountKind::kHetero;
    model.hetero_base_ = options.get_double("base", 0.1);
    require_param(model.hetero_base_ >= 0.0 && model.hetero_base_ <= 1.0,
                  "failure model", name, "base", "a probability in [0, 1]",
                  model.hetero_base_);
    model.hetero_spread_ = options.get_double("spread", 1.0);
    require_param(model.hetero_spread_ >= 0.0, "failure model", name,
                  "spread", "a finite value >= 0", model.hetero_spread_);
    if (options.has("mttr")) {
      model.repair_mttr_ = options.get_double("mttr", 0.5);
      require_param(model.repair_mttr_ > 0.0, "failure model", name, "mttr",
                    "a finite value > 0", model.repair_mttr_);
    }
  } else if (name == "domain") {
    // Canonical shorthand for eps-count whole-domain victims.
    require_keys(options, "failure model", name, {"size"});
    model.count_ = CountKind::kEpsilon;
    model.victims_ = VictimKind::kDomain;
    model.domain_size_ = options.get_size("size", 4);
    if (model.domain_size_ == 0) {
      throw InvalidArgument(
          "failure model 'domain': option 'size' must be >= 1, got '" +
          options.get("size") + "'");
    }
  } else {
    throw InvalidArgument("unknown failure model '" + name + "' (known: " +
                          spec_detail::join(known(), "|") + ")");
  }
  return model;
}

std::string FailureModel::to_string() const {
  std::string out;
  switch (count_) {
    case CountKind::kEpsilon:
      if (victims_ == VictimKind::kDomain) {
        return "domain:size=" + std::to_string(domain_size_);
      }
      return "eps";
    case CountKind::kFixed:
      out = "fixed:k=" + std::to_string(fixed_k_);
      break;
    case CountKind::kBernoulli:
      if (is_burst()) {
        out = "burst:p=" + spec_detail::render_double(prob_) +
              ",width=" + spec_detail::render_double(burst_width_);
        if (has_repair()) {
          out += ",mttr=" + spec_detail::render_double(repair_mttr_);
        }
      } else if (has_repair()) {
        out = "repair:mttr=" + spec_detail::render_double(repair_mttr_) +
              ",p=" + spec_detail::render_double(prob_);
      } else {
        out = "bernoulli:p=" + spec_detail::render_double(prob_);
      }
      break;
    case CountKind::kHetero:
      out = "hetero:base=" + spec_detail::render_double(hetero_base_) +
            ",spread=" + spec_detail::render_double(hetero_spread_);
      if (has_repair()) {
        out += ",mttr=" + spec_detail::render_double(repair_mttr_);
      }
      return out;  // hetero takes no domain option
  }
  if (victims_ == VictimKind::kDomain) {
    out += ",domain=" + std::to_string(domain_size_);
  }
  return out;
}

std::string FailureModel::describe() const {
  std::string count;
  switch (count_) {
    case CountKind::kEpsilon:
      count = "exactly epsilon victims (the paper's setup)";
      break;
    case CountKind::kFixed:
      count = "exactly " + std::to_string(fixed_k_) +
              " victims (may exceed epsilon: graceful degradation)";
      break;
    case CountKind::kBernoulli:
      count = "each processor crashes with probability " +
              spec_detail::render_double(prob_) +
              " (Binomial count, may exceed epsilon)";
      if (is_burst()) {
        count += ", time-correlated within a " +
                 spec_detail::render_double(burst_width_) +
                 " x latency burst window";
      }
      break;
    case CountKind::kHetero:
      count = "heterogeneous per-processor rates: base " +
              spec_detail::render_double(hetero_base_) + ", spread " +
              spec_detail::render_double(hetero_spread_) +
              " (metrics/reliability gradient; first processors flakiest)";
      break;
  }
  if (victims_ == VictimKind::kDomain) {
    count += ", drawn as whole fault domains of " +
             std::to_string(domain_size_) + " processors (correlated)";
  } else if (count_ != CountKind::kHetero) {
    count += ", drawn uniformly";
  }
  if (has_repair()) {
    count += "; victims restart after Exp(mean " +
             spec_detail::render_double(repair_mttr_) +
             " x latency) repair delays";
  }
  return count;
}

std::vector<std::size_t> FailureModel::draw(Rng& rng, std::size_t proc_count,
                                            std::size_t epsilon) const {
  if (count_ == CountKind::kHetero) {
    // Heterogeneous rates decide count and victims at once: one flip per
    // processor against its own probability (always all m flips, so the
    // stream position never depends on the outcomes), victims in processor
    // order — the gradient makes low indices the likely prefix.
    const std::vector<double> probs =
        heterogeneous_fail_probs(proc_count, hetero_base_, hetero_spread_);
    std::vector<std::size_t> victims;
    for (std::size_t p = 0; p < proc_count; ++p) {
      if (rng.bernoulli(probs[p])) victims.push_back(p);
    }
    return victims;
  }

  // Count law first.  The count is clamped to the population: "crash 50 of
  // 20 processors" degrades to "crash everything", which the simulator then
  // reports as a failed (success-fraction 0) run rather than an error.
  std::size_t count = 0;
  switch (count_) {
    case CountKind::kEpsilon:
      count = std::min(epsilon, proc_count);
      break;
    case CountKind::kFixed:
      count = std::min(fixed_k_, proc_count);
      break;
    case CountKind::kBernoulli:
      // One flip per processor, always all m of them, so the RNG stream
      // position never depends on the outcome sequence.
      for (std::size_t p = 0; p < proc_count; ++p) {
        if (rng.bernoulli(prob_)) ++count;
      }
      break;
    case CountKind::kHetero:
      break;  // handled above
  }

  if (victims_ == VictimKind::kUniform) {
    // The default model's draw is bit-identical to the legacy
    // evaluate_instance victim draw (one sample_without_replacement).
    return rng.sample_without_replacement(proc_count, count);
  }

  // Domain victims: processors [d*S, (d+1)*S) form fault domain d.  Whole
  // domains crash in a random order; the last one is truncated so the count
  // law stays exact (counts <= epsilon therefore keep the Theorem-4.1
  // success guarantee even though the victims are correlated).
  const std::size_t domains =
      (proc_count + domain_size_ - 1) / domain_size_;
  const std::vector<std::size_t> order =
      rng.sample_without_replacement(domains, domains);
  std::vector<std::size_t> victims;
  victims.reserve(count);
  for (std::size_t d : order) {
    for (std::size_t p = d * domain_size_;
         p < std::min((d + 1) * domain_size_, proc_count); ++p) {
      if (victims.size() == count) return victims;
      victims.push_back(p);
    }
    if (victims.size() == count) break;
  }
  return victims;
}

std::vector<double> FailureModel::sample_repair_delays(
    Rng& rng, std::size_t count) const {
  FTSCHED_REQUIRE(has_repair(), "model has no repair law");
  std::vector<double> delays(count, 0.0);
  for (double& d : delays) d = rng.exponential(1.0 / repair_mttr_);
  return delays;
}

std::vector<double> FailureModel::sample_burst_offsets(
    Rng& rng, std::size_t count) const {
  FTSCHED_REQUIRE(is_burst(), "model has no burst law");
  std::vector<double> offsets(count, 0.0);
  for (double& o : offsets) o = rng.uniform(0.0, burst_width_);
  return offsets;
}

void FailureModel::validate(std::size_t proc_count) const {
  if (!(has_repair() || is_burst())) return;
  if (victims_ != VictimKind::kDomain) return;
  if (domain_size_ <= proc_count) return;
  const std::string law = is_burst() ? "burst" : "repair";
  throw InvalidArgument(
      "failure model '" + law + "': option 'domain' (=" +
      std::to_string(domain_size_) + ") exceeds the " +
      std::to_string(proc_count) +
      " available processors — a single whole-platform mega-domain; use "
      "domain<=m");
}

std::vector<std::string> FailureModel::known() {
  return {"eps", "fixed", "bernoulli", "repair", "burst", "hetero", "domain"};
}

}  // namespace ftsched
