#include "ftsched/platform/failure.hpp"

#include "ftsched/util/error.hpp"

namespace ftsched {

FailureScenario::FailureScenario(std::vector<Crash> crashes) {
  for (const Crash& c : crashes) add(c.proc, c.time);
}

void FailureScenario::add(ProcId proc, double time) {
  FTSCHED_REQUIRE(proc.valid(), "invalid processor id");
  FTSCHED_REQUIRE(time >= 0.0, "crash time must be non-negative");
  FTSCHED_REQUIRE(!is_failed(proc), "processor already crashes in scenario");
  crashes_.push_back(Crash{proc, time});
}

double FailureScenario::crash_time(ProcId proc) const noexcept {
  for (const Crash& c : crashes_) {
    if (c.proc == proc) return c.time;
  }
  return std::numeric_limits<double>::infinity();
}

FailureScenario random_crashes(Rng& rng, std::size_t proc_count,
                               std::size_t count, double crash_time) {
  FTSCHED_REQUIRE(count <= proc_count,
                  "cannot crash more processors than exist");
  FailureScenario scenario;
  for (std::size_t idx : rng.sample_without_replacement(proc_count, count)) {
    scenario.add(ProcId{idx}, crash_time);
  }
  return scenario;
}

FailureScenario random_timed_crashes(Rng& rng, std::size_t proc_count,
                                     std::size_t count, double horizon) {
  FTSCHED_REQUIRE(count <= proc_count,
                  "cannot crash more processors than exist");
  FTSCHED_REQUIRE(horizon >= 0.0, "horizon must be non-negative");
  FailureScenario scenario;
  for (std::size_t idx : rng.sample_without_replacement(proc_count, count)) {
    scenario.add(ProcId{idx}, rng.uniform(0.0, horizon));
  }
  return scenario;
}

namespace {
void enumerate_subsets(std::size_t proc_count, std::size_t count,
                       std::size_t start, std::vector<std::size_t>& current,
                       std::vector<FailureScenario>& out) {
  if (current.size() == count) {
    FailureScenario scenario;
    for (std::size_t p : current) scenario.add(ProcId{p}, 0.0);
    out.push_back(std::move(scenario));
    return;
  }
  for (std::size_t p = start; p < proc_count; ++p) {
    current.push_back(p);
    enumerate_subsets(proc_count, count, p + 1, current, out);
    current.pop_back();
  }
}
}  // namespace

std::vector<FailureScenario> all_crash_subsets(std::size_t proc_count,
                                               std::size_t count) {
  FTSCHED_REQUIRE(count <= proc_count,
                  "cannot crash more processors than exist");
  std::vector<FailureScenario> result;
  std::vector<std::size_t> current;
  enumerate_subsets(proc_count, count, 0, current, result);
  return result;
}

}  // namespace ftsched
