#include "ftsched/core/ftbar.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "ftsched/core/priorities.hpp"
#include "ftsched/util/error.hpp"
#include "ftsched/util/rng.hpp"

namespace ftsched {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

class FtbarEngine {
 public:
  FtbarEngine(const CostModel& costs, const FtbarOptions& options)
      : costs_(costs),
        g_(costs.graph()),
        platform_(costs.platform()),
        options_(options),
        m_(platform_.proc_count()),
        n_rep_(options.npf + 1),
        rng_(options.seed) {
    FTSCHED_REQUIRE(n_rep_ <= m_, "Npf+1 exceeds the number of processors");
  }

  ReplicatedSchedule run() {
    bl_ = bottom_levels(costs_);
    replicas_.assign(g_.task_count(), {});
    ready_.assign(m_, 0.0);
    ready_pess_.assign(m_, 0.0);
    pending_.assign(g_.task_count(), 0);
    for (TaskId t : g_.tasks()) pending_[t.index()] = g_.in_degree(t);
    free_ = g_.entry_tasks();
    schedule_length_ = 0.0;  // R(0)
    // Arrival-row memo (see select_most_urgent): one m-wide row per task,
    // valid while no predecessor replica list has changed since it was
    // computed.  rev 0 = "never computed"; list_rev_ starts at 1 so a fresh
    // row is always stamped newer than every initial list.
    arrival_rows_.assign(g_.task_count() * m_, 0.0);
    row_stamp_.assign(g_.task_count(), 0);
    list_rev_.assign(g_.task_count(), 1);
    global_rev_ = 1;
    sigma_.assign(m_, 0.0);

    while (!free_.empty()) {
      const auto [slot, procs] = select_most_urgent();
      const TaskId t = free_[slot];
      free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(slot));
      place(t, procs);
      for (std::size_t e : g_.out_edges(t)) {
        const TaskId s = g_.edge(e).dst;
        if (--pending_[s.index()] == 0) free_.push_back(s);
      }
    }
    return build_schedule();
  }

 private:
  /// min over replicas of predecessor `src` of (finish + comm to pj).
  double edge_arrival(const Edge& edge, ProcId pj) const {
    double best = kInf;
    for (const Replica& r : replicas_[edge.src.index()]) {
      best = std::min(best,
                      r.finish + edge.volume * platform_.delay(r.proc, pj));
    }
    return best;
  }

  /// Earliest start S(t, pj) given the current partial schedule.
  double earliest_start(TaskId t, ProcId pj) const {
    double arrival = 0.0;
    for (std::size_t e : g_.in_edges(t)) {
      arrival = std::max(arrival, edge_arrival(g_.edge(e), pj));
    }
    return std::max(arrival, ready_[pj.index()]);
  }

  /// The memoised message-arrival row of task t: arrival_rows_[t*m + j] =
  /// max over in-edges of edge_arrival(e, pj), i.e. earliest_start without
  /// the ready_ term.  The row depends only on the predecessors' replica
  /// lists, so it stays valid across selection rounds until some
  /// predecessor gains a replica (placement or MST duplication) — tracked
  /// by stamping each replica list with the global revision at its last
  /// change.  Recomputing lazily here turns the selection loop's
  /// per-round replica × proc × in-edge walk into an O(in-degree) validity
  /// check for the (common) unchanged tasks, which is what cuts FTBAR's
  /// cubic inner loop.  The recomputation iterates exactly like the
  /// original earliest_start fold, so every cached double is bit-identical
  /// to the value the unmemoised loop would produce.
  const double* arrival_row(TaskId t) {
    const std::size_t ti = t.index();
    bool valid = row_stamp_[ti] != 0;
    if (valid) {
      for (std::size_t e : g_.in_edges(t)) {
        if (list_rev_[g_.edge(e).src.index()] > row_stamp_[ti]) {
          valid = false;
          break;
        }
      }
    }
    double* row = arrival_rows_.data() + ti * m_;
    if (!valid) {
      for (std::size_t j = 0; j < m_; ++j) {
        double arrival = 0.0;
        for (std::size_t e : g_.in_edges(t)) {
          arrival = std::max(arrival, edge_arrival(g_.edge(e), ProcId{j}));
        }
        row[j] = arrival;
      }
      row_stamp_[ti] = global_rev_;
    }
    return row;
  }

  /// Evaluates schedule pressure for every free task; returns the index of
  /// the most urgent one and its Npf+1 minimum-pressure processors.
  std::pair<std::size_t, std::vector<ProcId>> select_most_urgent() {
    std::size_t best_slot = 0;
    std::vector<ProcId> best_procs;
    double best_urgency = -kInf;
    std::uint64_t best_tie = 0;
    // Partial selection scratch: the n_rep_ smallest (sigma, index) pairs
    // in ascending lexicographic order — exactly the first n_rep_ entries
    // a stable sort of the index range by sigma would produce.
    kept_.reserve(n_rep_);
    for (std::size_t slot = 0; slot < free_.size(); ++slot) {
      const TaskId t = free_[slot];
      // σ(t, pj) = S(t, pj) + s(t) − R; the task-constant terms do not
      // change the per-task argmin but do enter the urgency comparison.
      const double* arrival = arrival_row(t);
      const double shift = bl_[t.index()] - schedule_length_;
      kept_.clear();
      for (std::size_t j = 0; j < m_; ++j) {
        const double sigma = std::max(arrival[j], ready_[j]) + shift;
        sigma_[j] = sigma;
        // Insert into the kept set iff it beats the current worst (strict:
        // on equal sigma the earlier index wins, matching stable sort).
        if (kept_.size() == n_rep_ && sigma >= sigma_[kept_.back()]) continue;
        std::size_t pos = kept_.size();
        while (pos > 0 && sigma < sigma_[kept_[pos - 1]]) --pos;
        if (kept_.size() == n_rep_) kept_.pop_back();
        kept_.insert(kept_.begin() + static_cast<std::ptrdiff_t>(pos), j);
      }
      // Urgency of t: the maximum pressure within its kept set.
      const double urgency = sigma_[kept_.back()];
      const std::uint64_t tie = rng_();
      if (urgency > best_urgency ||
          (urgency == best_urgency && tie > best_tie)) {
        best_urgency = urgency;
        best_tie = tie;
        best_slot = slot;
        best_procs.clear();
        best_procs.reserve(n_rep_);
        for (std::size_t j : kept_) best_procs.emplace_back(j);
      }
    }
    return {best_slot, std::move(best_procs)};
  }

  /// One-level Minimize-Start-Time: duplicate the predecessor whose message
  /// dominates t's start on `pj` when that strictly lowers the start.
  void try_minimize_start_time(TaskId t, ProcId pj) {
    const auto in_edges = g_.in_edges(t);
    if (in_edges.empty()) return;
    // Find the dominating (critical) predecessor message.
    double worst = -kInf;
    std::size_t critical_edge = g_.edge_count();
    for (std::size_t e : in_edges) {
      const double a = edge_arrival(g_.edge(e), pj);
      if (a > worst) {
        worst = a;
        critical_edge = e;
      }
    }
    if (worst <= ready_[pj.index()]) return;  // processor-bound, not message-bound
    const Edge& edge = g_.edge(critical_edge);
    const TaskId tc = edge.src;
    for (const Replica& r : replicas_[tc.index()]) {
      if (r.proc == pj) return;  // already local; nothing to gain
    }
    // Hypothetical duplicate of tc on pj.
    double dup_arrival = 0.0;
    for (std::size_t e : g_.in_edges(tc)) {
      dup_arrival = std::max(dup_arrival, edge_arrival(g_.edge(e), pj));
    }
    const double dup_start = std::max(dup_arrival, ready_[pj.index()]);
    const double dup_finish = dup_start + costs_.exec(tc, pj);
    // Start of t with the duplicate in place.
    double other = dup_finish;  // critical edge now arrives locally
    for (std::size_t e : in_edges) {
      if (e == critical_edge) continue;
      other = std::max(other, edge_arrival(g_.edge(e), pj));
    }
    const double new_start = std::max(other, dup_finish);
    const double old_start = std::max(worst, ready_[pj.index()]);
    if (new_start + 1e-12 >= old_start) return;  // no strict improvement

    Replica dup;
    dup.proc = pj;
    dup.start = dup_start;
    dup.finish = dup_finish;
    double pess_arrival = 0.0;
    for (std::size_t e : g_.in_edges(tc)) {
      pess_arrival = std::max(pess_arrival, pess_edge_arrival(g_.edge(e), pj));
    }
    dup.pess_start = std::max(pess_arrival, ready_pess_[pj.index()]);
    dup.pess_finish = dup.pess_start + costs_.exec(tc, pj);
    ready_[pj.index()] = dup.finish;
    ready_pess_[pj.index()] = dup.pess_finish;
    replicas_[tc.index()].push_back(dup);
    list_rev_[tc.index()] = ++global_rev_;  // invalidate successors' rows
  }

  /// Worst-case arrival (eq.-(3) style): max over predecessor replicas,
  /// with the intra-processor shortcut.
  double pess_edge_arrival(const Edge& edge, ProcId pj) const {
    const auto& reps = replicas_[edge.src.index()];
    for (const Replica& r : reps) {
      if (r.proc == pj) return r.pess_finish;
    }
    double worst = 0.0;
    for (const Replica& r : reps) {
      worst = std::max(worst,
                       r.pess_finish + edge.volume * platform_.delay(r.proc, pj));
    }
    return worst;
  }

  void place(TaskId t, const std::vector<ProcId>& procs) {
    for (ProcId pj : procs) {
      if (options_.use_minimize_start_time) try_minimize_start_time(t, pj);
      Replica r;
      r.proc = pj;
      r.start = earliest_start(t, pj);
      r.finish = r.start + costs_.exec(t, pj);
      double pess_arrival = 0.0;
      for (std::size_t e : g_.in_edges(t)) {
        pess_arrival = std::max(pess_arrival, pess_edge_arrival(g_.edge(e), pj));
      }
      r.pess_start = std::max(pess_arrival, ready_pess_[pj.index()]);
      r.pess_finish = r.pess_start + costs_.exec(t, pj);
      ready_[pj.index()] = r.finish;
      ready_pess_[pj.index()] = r.pess_finish;
      schedule_length_ = std::max(schedule_length_, r.finish);
      replicas_[t.index()].push_back(r);
    }
    list_rev_[t.index()] = ++global_rev_;  // t's successors must recompute
  }

  ReplicatedSchedule build_schedule() {
    ReplicatedSchedule schedule(costs_, options_.npf, "FTBAR");
    for (TaskId t : g_.tasks()) {
      schedule.place_task(t, replicas_[t.index()]);
    }
    // All-pairs channels with the intra-processor shortcut, over the final
    // replica sets (duplication included).
    for (std::size_t e = 0; e < g_.edge_count(); ++e) {
      const Edge& edge = g_.edge(e);
      const auto& src_reps = replicas_[edge.src.index()];
      const auto& dst_reps = replicas_[edge.dst.index()];
      std::vector<Channel> channels;
      for (std::size_t dk = 0; dk < dst_reps.size(); ++dk) {
        std::size_t local = src_reps.size();
        for (std::size_t sk = 0; sk < src_reps.size(); ++sk) {
          if (src_reps[sk].proc == dst_reps[dk].proc) {
            local = sk;
            break;
          }
        }
        if (local < src_reps.size()) {
          channels.push_back(Channel{local, dk});
        } else {
          for (std::size_t sk = 0; sk < src_reps.size(); ++sk) {
            channels.push_back(Channel{sk, dk});
          }
        }
      }
      schedule.set_channels(e, std::move(channels));
    }
    return schedule;
  }

  const CostModel& costs_;
  const TaskGraph& g_;
  const Platform& platform_;
  FtbarOptions options_;
  std::size_t m_;
  std::size_t n_rep_;
  Rng rng_;
  std::vector<double> bl_;
  std::vector<std::vector<Replica>> replicas_;
  std::vector<double> ready_;
  std::vector<double> ready_pess_;
  std::vector<std::size_t> pending_;
  std::vector<TaskId> free_;
  double schedule_length_ = 0.0;
  // Arrival-row memo (task × processor) with replica-list revisions; see
  // arrival_row().  sigma_ and kept_ are per-round scratch hoisted out of
  // the selection loop.
  std::vector<double> arrival_rows_;
  std::vector<std::uint64_t> row_stamp_;
  std::vector<std::uint64_t> list_rev_;
  std::uint64_t global_rev_ = 1;
  std::vector<double> sigma_;
  std::vector<std::size_t> kept_;
};

}  // namespace

ReplicatedSchedule ftbar_schedule(const CostModel& costs,
                                  const FtbarOptions& options) {
  FtbarEngine engine(costs, options);
  return engine.run();
}

}  // namespace ftsched
